package hazard

import (
	"fmt"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/sysmodel"
)

// GenericRequirements derives one hazard requirement per model
// requirement: violated when any component marked criticality H/VH
// exhibits any error mode. Models without explicit requirements get a
// default integrity requirement over the critical assets. This is the
// requirement derivation both riskassess and riskserve apply to
// submitted models, kept in one place so the two front-ends assess
// identical inputs identically.
func GenericRequirements(m *sysmodel.Model) ([]Requirement, error) {
	var criticalConds []Condition
	for _, c := range m.Components {
		switch c.Attr("criticality") {
		case "H", "VH":
			for _, mode := range epa.AllModes {
				criticalConds = append(criticalConds, Comp(c.ID, mode))
			}
		}
	}
	if len(criticalConds) == 0 {
		return nil, fmt.Errorf("no component carries criticality H/VH; annotate the model")
	}
	cond := Any(criticalConds...)
	if len(m.Requirements) == 0 {
		return []Requirement{{
			ID:          "RC",
			Description: "critical assets must stay error free",
			Severity:    qual.High,
			Condition:   cond,
		}}, nil
	}
	five := qual.FiveLevel()
	out := make([]Requirement, 0, len(m.Requirements))
	for _, r := range m.Requirements {
		sev := qual.High
		if r.Severity != "" {
			l, err := five.Parse(r.Severity)
			if err != nil {
				return nil, fmt.Errorf("requirement %s: %w", r.ID, err)
			}
			sev = l
		}
		out = append(out, Requirement{
			ID:          r.ID,
			Description: r.Description,
			Severity:    sev,
			Condition:   cond,
		})
	}
	return out, nil
}
