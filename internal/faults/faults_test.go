package faults

import (
	"fmt"
	"math"
	"testing"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/sysmodel"
)

func testSetup(t testing.TB) (*sysmodel.Model, *sysmodel.TypeLibrary, *kb.KB) {
	t.Helper()
	lib := sysmodel.NewTypeLibrary()
	lib.MustAdd(&sysmodel.ComponentType{
		Name: "workstation",
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised", Likelihood: "M"},
			{Name: "crash", Likelihood: "VL"},
		},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: "hmi",
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "no_signal", Likelihood: "L"},
		},
	})
	m := sysmodel.NewModel("test")
	m.MustAddComponent(&sysmodel.Component{ID: "ews", Type: "workstation",
		Attrs: map[string]string{"exposure": "public", "version": "10"}})
	m.MustAddComponent(&sysmodel.Component{ID: "panel", Type: "hmi"})
	return m, lib, kb.MustDefaultKB()
}

func TestCandidatesSpontaneousOnly(t *testing.T) {
	m, lib, _ := testSetup(t)
	muts, err := Candidates(m, lib, nil, Options{IncludeSpontaneous: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 3 {
		t.Fatalf("mutations = %v", muts)
	}
	// Sorted by component then fault.
	if muts[0].Component != "ews" || muts[0].Fault != "compromised" {
		t.Errorf("first = %+v", muts[0])
	}
	if muts[0].Likelihood != qual.Medium {
		t.Errorf("likelihood = %v", muts[0].Likelihood)
	}
	if muts[2].Component != "panel" || muts[2].Likelihood != qual.Low {
		t.Errorf("panel = %+v", muts[2])
	}
}

func TestCandidatesWithKB(t *testing.T) {
	m, lib, k := testSetup(t)
	muts, err := Candidates(m, lib, k, AllSources())
	if err != nil {
		t.Fatal(err)
	}
	// The public workstation picks up spearphishing (T-1566) etc., merged
	// into the existing "compromised" candidate with sources recorded.
	var ews *Mutation
	for i := range muts {
		if muts[i].Component == "ews" && muts[i].Fault == "compromised" {
			ews = &muts[i]
		}
	}
	if ews == nil {
		t.Fatal("ews compromised candidate missing")
	}
	hasTechnique := false
	hasVuln := false
	for _, s := range ews.Sources {
		if s == "T-1566" {
			hasTechnique = true
		}
		if s == "V-2023-0104" {
			hasVuln = true
		}
	}
	if !hasTechnique || !hasVuln {
		t.Errorf("ews sources = %v", ews.Sources)
	}
	// Likelihood is the max over sources: the critical (9.8) default-
	// credential vulnerability maps to VH, dominating spearphishing's H.
	if ews.Likelihood != qual.VeryHigh {
		t.Errorf("merged likelihood = %v", ews.Likelihood)
	}
}

func TestCandidatesExposureGating(t *testing.T) {
	m, lib, k := testSetup(t)
	comp, _ := m.Component("ews")
	comp.SetAttr("exposure", "internal")
	muts, err := Candidates(m, lib, k, Options{IncludeTechniques: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mu := range muts {
		for _, s := range mu.Sources {
			if s == "T-1566" {
				t.Errorf("public-only technique on internal asset: %+v", mu)
			}
		}
	}
}

func TestCandidatesUndeclaredVulnFaultFails(t *testing.T) {
	lib := sysmodel.NewTypeLibrary()
	lib.MustAdd(&sysmodel.ComponentType{Name: "plc"}) // no fault modes declared
	m := sysmodel.NewModel("x")
	m.MustAddComponent(&sysmodel.Component{ID: "p", Type: "plc",
		Attrs: map[string]string{"version": "fw2.3"}})
	k := kb.MustDefaultKB()
	if _, err := Candidates(m, lib, k, Options{IncludeVulnerabilities: true}); err == nil {
		t.Error("vulnerability with undeclared fault mode must fail loudly")
	}
}

func TestSpaceSize(t *testing.T) {
	tests := []struct {
		n, maxCard int
		want       int64
	}{
		{4, 0, 1},
		{4, 1, 5},
		{4, 2, 11},
		{4, 4, 16},
		{4, -1, 16},
		{4, 9, 16},
		{0, -1, 1},
		{7, 3, 1 + 7 + 21 + 35},
		{62, -1, 1 << 62},
	}
	for _, tt := range tests {
		got, ok := SpaceSize(tt.n, tt.maxCard)
		if got != tt.want || !ok {
			t.Errorf("SpaceSize(%d,%d) = %d,%v, want %d,true", tt.n, tt.maxCard, got, ok, tt.want)
		}
	}
	// Overflow saturates with an explicit flag instead of wrapping: 2^200
	// scenarios do not fit an int64.
	if got, ok := SpaceSize(200, -1); ok || got != math.MaxInt64 {
		t.Errorf("SpaceSize(200,-1) = %d,%v, want saturated,false", got, ok)
	}
	if got, ok := SpaceSize(500, 80); ok || got != math.MaxInt64 {
		t.Errorf("SpaceSize(500,80) = %d,%v, want saturated,false", got, ok)
	}
}

func TestBinomial64(t *testing.T) {
	if c, ok := Binomial64(52, 5); !ok || c != 2598960 {
		t.Errorf("C(52,5) = %d,%v", c, ok)
	}
	if c, ok := Binomial64(10, 0); !ok || c != 1 {
		t.Errorf("C(10,0) = %d,%v", c, ok)
	}
	if c, ok := Binomial64(10, 12); !ok || c != 0 {
		t.Errorf("C(10,12) = %d,%v", c, ok)
	}
	if c, ok := Binomial64(200, 100); ok || c != math.MaxInt64 {
		t.Errorf("C(200,100) = %d,%v, want saturated,false", c, ok)
	}
}

func TestEnumerateMatchesSpaceSize(t *testing.T) {
	m, lib, _ := testSetup(t)
	muts, err := Candidates(m, lib, nil, Options{IncludeSpontaneous: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, maxCard := range []int{0, 1, 2, -1} {
		scenarios := Enumerate(muts, maxCard)
		want, _ := SpaceSize(len(muts), maxCard)
		if int64(len(scenarios)) != want {
			t.Errorf("maxCard=%d: enumerated %d, want %d", maxCard, len(scenarios), want)
		}
		// No duplicates; first is empty; cardinality respected and sorted.
		seen := map[string]bool{}
		for i, sc := range scenarios {
			key := sc.Key()
			if seen[key] {
				t.Fatalf("duplicate scenario %s", key)
			}
			seen[key] = true
			if maxCard >= 0 && len(sc) > maxCard {
				t.Fatalf("scenario %s exceeds cardinality", key)
			}
			if i == 0 && len(sc) != 0 {
				t.Fatal("first scenario must be empty")
			}
			if i > 0 && len(sc) < len(scenarios[i-1]) {
				t.Fatal("scenarios not ordered by cardinality")
			}
		}
	}
}

func TestLikelihoodIndex(t *testing.T) {
	m, lib, _ := testSetup(t)
	muts, _ := Candidates(m, lib, nil, Options{IncludeSpontaneous: true})
	idx := LikelihoodIndex(muts)
	if idx[epa.Activation{Component: "ews", Fault: "compromised"}] != qual.Medium {
		t.Errorf("index = %v", idx)
	}
}

// EncodeChoice must make the solver enumerate exactly the scenario space.
func TestEncodeChoiceEnumeratesSpace(t *testing.T) {
	m, lib, _ := testSetup(t)
	muts, _ := Candidates(m, lib, nil, Options{IncludeSpontaneous: true})
	for _, maxCard := range []int{1, 2, -1} {
		p := &logic.Program{}
		EncodeChoice(p, muts, maxCard)
		res, err := solver.SolveProgram(p, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := SpaceSize(len(muts), maxCard)
		if int64(len(res.Models)) != want {
			t.Errorf("maxCard=%d: ASP models = %d, want %d", maxCard, len(res.Models), want)
		}
	}
}

func BenchmarkEnumerate(b *testing.B) {
	muts := make([]Mutation, 16)
	for i := range muts {
		muts[i] = Mutation{Activation: epa.Activation{
			Component: fmt.Sprintf("c%d", i), Fault: "f"}}
	}
	for _, card := range []int{2, 3} {
		b.Run(fmt.Sprintf("n=16,k=%d", card), func(b *testing.B) {
			want, _ := SpaceSize(16, card)
			for i := 0; i < b.N; i++ {
				if got := Enumerate(muts, card); int64(len(got)) != want {
					b.Fatal("size mismatch")
				}
			}
		})
	}
}
