package logic

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF       tokenKind = iota + 1
	tokIdent               // lowercase identifier
	tokVariable            // Uppercase or _ identifier
	tokNumber              // integer
	tokString              // "quoted"
	tokLParen              // (
	tokRParen              // )
	tokLBrace              // {
	tokRBrace              // }
	tokLBracket            // [
	tokRBracket            // ]
	tokComma               // ,
	tokSemicolon           // ;
	tokColon               // :
	tokDot                 // .
	tokDotDot              // ..
	tokIf                  // :-
	tokWeakIf              // :~
	tokNot                 // not
	tokEq                  // =
	tokNeq                 // != or <>
	tokLt                  // <
	tokLeq                 // <=
	tokGt                  // >
	tokGeq                 // >=
	tokPlus                // +
	tokMinus               // -
	tokStar                // *
	tokSlash               // /
	tokBackslash           // \
	tokAt                  // @
	tokDirective           // #minimize, #show, ...
)

type token struct {
	kind tokenKind
	text string
	num  int
	pos  int // byte offset, for error messages
	line int
}

// SyntaxError reports a lexical or parse error with position info.
type SyntaxError struct {
	Line    int
	Message string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("logic: syntax error at line %d: %s", e.Line, e.Message)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: lx.line, Message: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '%':
			// Comment to end of line.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return
		}
	}
}

func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start, line: lx.line}, nil
	}
	c := lx.src[lx.pos]
	mk := func(kind tokenKind, text string) token {
		return token{kind: kind, text: text, pos: start, line: lx.line}
	}
	switch {
	case c == '(':
		lx.pos++
		return mk(tokLParen, "("), nil
	case c == ')':
		lx.pos++
		return mk(tokRParen, ")"), nil
	case c == '{':
		lx.pos++
		return mk(tokLBrace, "{"), nil
	case c == '}':
		lx.pos++
		return mk(tokRBrace, "}"), nil
	case c == '[':
		lx.pos++
		return mk(tokLBracket, "["), nil
	case c == ']':
		lx.pos++
		return mk(tokRBracket, "]"), nil
	case c == ',':
		lx.pos++
		return mk(tokComma, ","), nil
	case c == ';':
		lx.pos++
		return mk(tokSemicolon, ";"), nil
	case c == '@':
		lx.pos++
		return mk(tokAt, "@"), nil
	case c == '+':
		lx.pos++
		return mk(tokPlus, "+"), nil
	case c == '-':
		lx.pos++
		return mk(tokMinus, "-"), nil
	case c == '*':
		lx.pos++
		return mk(tokStar, "*"), nil
	case c == '/':
		lx.pos++
		return mk(tokSlash, "/"), nil
	case c == '\\':
		lx.pos++
		return mk(tokBackslash, "\\"), nil
	case c == '.':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '.' {
			lx.pos += 2
			return mk(tokDotDot, ".."), nil
		}
		lx.pos++
		return mk(tokDot, "."), nil
	case c == ':':
		if lx.pos+1 < len(lx.src) {
			switch lx.src[lx.pos+1] {
			case '-':
				lx.pos += 2
				return mk(tokIf, ":-"), nil
			case '~':
				lx.pos += 2
				return mk(tokWeakIf, ":~"), nil
			}
		}
		lx.pos++
		return mk(tokColon, ":"), nil
	case c == '=':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
		} else {
			lx.pos++
		}
		return mk(tokEq, "="), nil
	case c == '!':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return mk(tokNeq, "!="), nil
		}
		return token{}, lx.errorf("unexpected character %q", c)
	case c == '<':
		if lx.pos+1 < len(lx.src) {
			switch lx.src[lx.pos+1] {
			case '=':
				lx.pos += 2
				return mk(tokLeq, "<="), nil
			case '>':
				lx.pos += 2
				return mk(tokNeq, "<>"), nil
			}
		}
		lx.pos++
		return mk(tokLt, "<"), nil
	case c == '>':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return mk(tokGeq, ">="), nil
		}
		lx.pos++
		return mk(tokGt, ">"), nil
	case c == '"':
		lx.pos++
		var sb strings.Builder
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
			ch := lx.src[lx.pos]
			if ch == '\\' && lx.pos+1 < len(lx.src) {
				lx.pos++
				ch = lx.src[lx.pos]
				switch ch {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				}
			}
			if ch == '\n' {
				lx.line++
			}
			sb.WriteByte(ch)
			lx.pos++
		}
		if lx.pos >= len(lx.src) {
			return token{}, lx.errorf("unterminated string")
		}
		lx.pos++ // closing quote
		return mk(tokString, sb.String()), nil
	case c == '#':
		lx.pos++
		word := lx.readIdentTail()
		return mk(tokDirective, "#"+word), nil
	case c >= '0' && c <= '9':
		word := lx.readIdentTail()
		n, err := strconv.Atoi(word)
		if err != nil {
			return token{}, lx.errorf("invalid number %q", word)
		}
		t := mk(tokNumber, word)
		t.num = n
		return t, nil
	case c == '_' || c >= 'A' && c <= 'Z':
		word := lx.readIdentTail()
		return mk(tokVariable, word), nil
	case c >= 'a' && c <= 'z':
		word := lx.readIdentTail()
		if word == "not" {
			return mk(tokNot, word), nil
		}
		return mk(tokIdent, word), nil
	default:
		// Identifiers are ASCII; anything else (including non-ASCII
		// bytes) is rejected so the lexer always makes progress.
		return token{}, lx.errorf("unexpected character %q", c)
	}
}

func (lx *lexer) readIdentTail() string {
	start := lx.pos
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '_' || c >= '0' && c <= '9' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			lx.pos++
			continue
		}
		break
	}
	return lx.src[start:lx.pos]
}
