package dynamics

import (
	"testing"

	"cpsrisk/internal/temporal"
)

var (
	reqR1 = temporal.MustParseFormula("G !holds(level,overflow)")
	reqR2 = temporal.MustParseFormula("G (holds(level,overflow) -> F holds(alert,on))")
)

// Synthesize finds the single-fault attack violating R1: the compromised
// workstation — and the replayed schedule indeed overflows.
func TestSynthesizeFindsF4Attack(t *testing.T) {
	sys := WaterTank()
	schedule, ok, err := Synthesize(sys, 10,
		[]string{KeyF1, KeyF2, KeyF3, KeyF4}, 1, reqR1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no attack found")
	}
	if len(schedule) != 1 || schedule[0].Key != KeyF4 {
		t.Fatalf("schedule = %v, want a single F4 injection", schedule)
	}
	// Replay: the schedule reproduces the violation.
	tr, err := sys.Run(10, schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !Overflowed(tr) {
		t.Fatal("synthesized schedule does not replay")
	}
	if temporal.Eval(reqR1, tr.PropTrace()) {
		t.Fatal("replayed trace satisfies the requirement it should violate")
	}
}

// Without F4, violating R1 takes the F1+F2 pair: with maxActive 1 no
// schedule exists (bounded safety proof); with 2 the pair is found.
func TestSynthesizeNeedsThePair(t *testing.T) {
	sys := WaterTank()
	candidates := []string{KeyF1, KeyF2, KeyF3}

	_, ok, err := Synthesize(sys, 12, candidates, 1, reqR1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no single physical fault should overflow the controlled tank")
	}

	schedule, ok, err := Synthesize(sys, 12, candidates, 2, reqR1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("F1+F2 attack not found")
	}
	keys := map[string]bool{}
	for _, inj := range schedule {
		keys[inj.Key] = true
	}
	if !keys[KeyF1] || !keys[KeyF2] || len(schedule) != 2 {
		t.Fatalf("schedule = %v, want F1+F2", schedule)
	}
	// Replay.
	tr, err := sys.Run(12, schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !Overflowed(tr) {
		t.Fatal("pair schedule does not replay")
	}
}

// Silent overflow (R2) additionally needs the HMI silenced (or F4): with
// only F1+F2 allowed, R2 stays satisfiable; allowing three faults finds
// F1+F2+F3.
func TestSynthesizeSilentOverflow(t *testing.T) {
	sys := WaterTank()
	_, ok, err := Synthesize(sys, 12, []string{KeyF1, KeyF2}, 2, reqR2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("F1+F2 alone alerts, R2 must hold")
	}
	schedule, ok, err := Synthesize(sys, 12, []string{KeyF1, KeyF2, KeyF3}, 3, reqR2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("silent-overflow attack not found")
	}
	keys := map[string]bool{}
	for _, inj := range schedule {
		keys[inj.Key] = true
	}
	if !keys[KeyF3] {
		t.Fatalf("schedule %v must silence the HMI", schedule)
	}
	tr, err := sys.Run(12, schedule)
	if err != nil {
		t.Fatal(err)
	}
	if temporal.Eval(reqR2, tr.PropTrace()) {
		t.Fatal("replayed schedule does not violate R2")
	}
}

// The optimizer prefers the smallest schedule: with F4 available and
// maxActive unbounded, the minimum attack is still the single F4.
func TestSynthesizeMinimizesSchedule(t *testing.T) {
	sys := WaterTank()
	schedule, ok, err := Synthesize(sys, 10,
		[]string{KeyF1, KeyF2, KeyF3, KeyF4}, -1, reqR1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(schedule) != 1 {
		t.Fatalf("schedule = %v ok=%v, want minimal single-fault attack", schedule, ok)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	sys := WaterTank()
	if _, _, err := Synthesize(sys, 10, nil, 1, reqR1); err == nil {
		t.Error("no candidates must fail")
	}
	if _, _, err := Synthesize(sys, 0, []string{KeyF4}, 1, reqR1); err == nil {
		t.Error("bad horizon must fail")
	}
}

func TestScheduleKey(t *testing.T) {
	s := Schedule{{Key: KeyF2, AtStep: 3}, {Key: KeyF1, AtStep: 0}}
	want := "{" + KeyF1 + "@0," + KeyF2 + "@3}"
	if s.Key() != want {
		t.Errorf("Key = %q, want %q", s.Key(), want)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	sys := WaterTank()
	cands := []string{KeyF1, KeyF2, KeyF3, KeyF4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := Synthesize(sys, 10, cands, 2, reqR1)
		if err != nil || !ok {
			b.Fatalf("err=%v ok=%v", err, ok)
		}
	}
}
