package hazard

import (
	"strings"
	"testing"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/sysmodel"
)

// setup builds src -> guard -> sink where the guard masks value errors
// unless bypassed, plus requirements over the sink.
func setup(t testing.TB) (*epa.Engine, []faults.Mutation, []Requirement) {
	t.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "node",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "corrupt", Likelihood: "M"},
			{Name: "bypass", Likelihood: "L"},
		},
	})
	m := sysmodel.NewModel("guarded-chain")
	for _, id := range []string{"src", "guard", "sink"} {
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: "node"})
	}
	m.Connect("src", "out", "guard", "in", sysmodel.SignalFlow)
	m.Connect("guard", "out", "sink", "in", sysmodel.SignalFlow)

	lib := epa.NewBehaviorLibrary(types)
	lib.MustRegister(&epa.TypeBehavior{
		Type: "node",
		Effects: []epa.FaultEffect{
			{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrValue)},
		},
		Transfers: []epa.TransferRule{
			{From: "in", Match: epa.StateOf(epa.ErrValue), To: "out",
				Emit: epa.StateOf(epa.ErrValue), WhenFault: "bypass"},
		},
	})
	eng, err := epa.NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates: only the interesting ones to keep the space small.
	muts := []faults.Mutation{
		{Activation: epa.Activation{Component: "src", Fault: "corrupt"},
			Likelihood: qual.Medium, Sources: []string{"fault_mode"}},
		{Activation: epa.Activation{Component: "guard", Fault: "bypass"},
			Likelihood: qual.Low, Sources: []string{"fault_mode"}},
		{Activation: epa.Activation{Component: "sink", Fault: "corrupt"},
			Likelihood: qual.VeryLow, Sources: []string{"fault_mode"}},
	}
	reqs := []Requirement{
		{ID: "R1", Description: "sink integrity", Severity: qual.High,
			Condition: Comp("sink", epa.ErrValue)},
		{ID: "R2", Description: "guard must not be bypassed while corrupt flows", Severity: qual.Medium,
			Condition: All(Fault("guard", "bypass"), Comp("guard", epa.ErrValue))},
	}
	return eng, muts, reqs
}

func TestAnalyzeExhaustive(t *testing.T) {
	eng, muts, reqs := setup(t)
	a, err := Analyze(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scenarios) != 8 {
		t.Fatalf("scenarios = %d, want 8", len(a.Scenarios))
	}
	// The fault-free scenario is clean.
	if a.Scenarios[0].IsHazardous() || a.Scenarios[0].ID != "S1" {
		t.Errorf("S1 = %+v", a.Scenarios[0])
	}
	// sink corrupt alone violates R1 (its own output emits value errors).
	r, ok := a.ByScenario(epa.Scenario{{Component: "sink", Fault: "corrupt"}})
	if !ok || !r.Violates("R1") || r.Violates("R2") {
		t.Errorf("sink corrupt = %+v", r)
	}
	// src corrupt alone: guard masks -> no violation.
	r, ok = a.ByScenario(epa.Scenario{{Component: "src", Fault: "corrupt"}})
	if !ok || r.IsHazardous() {
		t.Errorf("src corrupt = %+v", r)
	}
	// src corrupt + guard bypass: R1 and R2 both violated.
	r, ok = a.ByScenario(epa.Scenario{
		{Component: "src", Fault: "corrupt"},
		{Component: "guard", Fault: "bypass"},
	})
	if !ok || !r.Violates("R1") || !r.Violates("R2") {
		t.Errorf("src+bypass = %+v", r)
	}
	if got := len(a.Hazards()); got != 5 {
		t.Errorf("hazard count = %d\n%s", got, a.Summary())
	}
}

func TestAnalyzeCardinalityBound(t *testing.T) {
	eng, muts, reqs := setup(t)
	a, err := Analyze(eng, muts, 1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scenarios) != 4 { // empty + 3 singletons
		t.Fatalf("scenarios = %d", len(a.Scenarios))
	}
}

// The central cross-check: the ASP path and the native path produce the
// same scenario -> violation mapping over the whole space.
func TestASPAgreesWithNative(t *testing.T) {
	eng, muts, reqs := setup(t)
	native, err := Analyze(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	asp, err := AnalyzeASP(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(native.Scenarios) != len(asp.Scenarios) {
		t.Fatalf("scenario counts differ: native %d vs asp %d",
			len(native.Scenarios), len(asp.Scenarios))
	}
	for _, ns := range native.Scenarios {
		as, ok := asp.ByScenario(ns.Scenario)
		if !ok {
			t.Fatalf("ASP missing scenario %s", ns.Scenario)
		}
		if strings.Join(ns.Violated, ",") != strings.Join(as.Violated, ",") {
			t.Errorf("scenario %s: native %v vs asp %v",
				ns.Scenario, ns.Violated, as.Violated)
		}
	}
}

func TestRanked(t *testing.T) {
	eng, muts, reqs := setup(t)
	a, err := Analyze(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	ranked := a.Ranked()
	if len(ranked) != len(a.Scenarios) {
		t.Fatal("ranking dropped scenarios")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Risk.Risk < ranked[i].Risk.Risk {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
	// The top scenario must be hazardous.
	if !ranked[0].IsHazardous() {
		t.Errorf("top ranked = %+v", ranked[0])
	}
}

func TestMinimalCuts(t *testing.T) {
	eng, muts, reqs := setup(t)
	a, err := Analyze(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cuts := a.MinimalCuts("R1")
	// Minimal R1 violators: {sink corrupt} and {src corrupt, guard bypass}.
	if len(cuts) != 2 {
		var keys []string
		for _, c := range cuts {
			keys = append(keys, c.Scenario.Key())
		}
		t.Fatalf("minimal cuts = %v", keys)
	}
	for _, c := range cuts {
		switch c.Scenario.Key() {
		case "{sink:corrupt}", "{guard:bypass,src:corrupt}":
		default:
			t.Errorf("unexpected minimal cut %s", c.Scenario.Key())
		}
	}
}

func TestRequirementValidation(t *testing.T) {
	eng, muts, _ := setup(t)
	bad := [][]Requirement{
		{{ID: "", Condition: Comp("x", epa.ErrValue)}},
		{{ID: "R", Condition: nil}},
		{{ID: "R", Condition: Comp("x", epa.ErrValue)},
			{ID: "R", Condition: Comp("y", epa.ErrValue)}},
	}
	for i, reqs := range bad {
		if _, err := Analyze(eng, muts, 0, reqs); err == nil {
			t.Errorf("case %d: expected error", i)
		}
		if _, err := AnalyzeASP(eng, muts, 0, reqs); err == nil {
			t.Errorf("case %d (asp): expected error", i)
		}
	}
}

func TestConditionEval(t *testing.T) {
	eng, _, _ := setup(t)
	sc := epa.Scenario{{Component: "src", Fault: "corrupt"}}
	res, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		cond Condition
		want bool
	}{
		{Comp("src", epa.ErrValue), true},
		{Comp("sink", epa.ErrValue), false},
		{Port("guard", "in", epa.ErrValue), true},
		{Port("guard", "out", epa.ErrValue), false},
		{Fault("src", "corrupt"), true},
		{Fault("guard", "bypass"), false},
		{Not(Fault("guard", "bypass")), true},
		{All(Comp("src", epa.ErrValue), Not(Comp("sink", epa.ErrValue))), true},
		{Any(Comp("sink", epa.ErrValue), Fault("src", "corrupt")), true},
		{All(), true},
		{Any(), false},
	}
	for _, tt := range tests {
		if got := Eval(tt.cond, sc, res); got != tt.want {
			t.Errorf("Eval(%s) = %v, want %v", tt.cond, got, tt.want)
		}
	}
}

func TestConditionStrings(t *testing.T) {
	c := All(Comp("a", epa.ErrValue), Not(Any(Fault("b", "f"), Port("c", "p", epa.ErrOmission))))
	s := c.String()
	for _, want := range []string{"err(a,value_err)", "active(b,f)", "err(c.p,omission)", "!"} {
		if !strings.Contains(s, want) {
			t.Errorf("condition string %q missing %q", s, want)
		}
	}
}

func BenchmarkAnalyzeNative(b *testing.B) {
	eng, muts, reqs := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(eng, muts, -1, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeASP(b *testing.B) {
	eng, muts, reqs := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeASP(eng, muts, -1, reqs); err != nil {
			b.Fatal(err)
		}
	}
}
