package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkS2_EPAScaling/chain10-8     	  331498	      3482 ns/op	    1296 B/op	       9 allocs/op
BenchmarkS3_ScenarioSpace/k=1/enumerate-8 	   51862	     23434 ns/op
PASS
`

func TestParseStripsProcsSuffixAndCapturesMem(t *testing.T) {
	entries, err := parse(strings.NewReader(sample), new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := entries["BenchmarkS2_EPAScaling/chain10"]
	if !ok || e.NsPerOp != 3482 || e.BytesPerOp != 1296 || e.AllocsPerOp != 9 {
		t.Fatalf("entries = %+v", entries)
	}
	if e, ok := entries["BenchmarkS3_ScenarioSpace/k=1/enumerate"]; !ok || e.NsPerOp != 23434 || e.BytesPerOp != 0 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestRunMergesLabelsAndReplacesOnRerun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sample), new(bytes.Buffer), "before", out); err != nil {
		t.Fatal(err)
	}
	after := strings.ReplaceAll(sample, "3482", "1000")
	if err := run(strings.NewReader(after), new(bytes.Buffer), "after", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var ledger map[string]map[string]Entry
	if err := json.Unmarshal(data, &ledger); err != nil {
		t.Fatal(err)
	}
	if ledger["before"]["BenchmarkS2_EPAScaling/chain10"].NsPerOp != 3482 {
		t.Errorf("before lost: %+v", ledger["before"])
	}
	if ledger["after"]["BenchmarkS2_EPAScaling/chain10"].NsPerOp != 1000 {
		t.Errorf("after wrong: %+v", ledger["after"])
	}
}

func TestColdWarmTable(t *testing.T) {
	const s6 = `goos: linux
BenchmarkS6_DeltaReassess/fig1/cold-8         	    2102	    500000 ns/op
BenchmarkS6_DeltaReassess/fig1/warm-delta-8   	   12916	     50000 ns/op
BenchmarkS6_DeltaReassess/sme-plant/cold-8    	    4741	    300000 ns/op
PASS
`
	out := filepath.Join(t.TempDir(), "bench.json")
	var echo bytes.Buffer
	if err := run(strings.NewReader(s6), &echo, "after", out); err != nil {
		t.Fatal(err)
	}
	got := echo.String()
	if !strings.Contains(got, "cold vs warm-delta") {
		t.Fatalf("comparison table missing:\n%s", got)
	}
	if !strings.Contains(got, "BenchmarkS6_DeltaReassess/fig1") || !strings.Contains(got, "10.0x") {
		t.Fatalf("fig1 speedup row wrong:\n%s", got)
	}
	// sme-plant has no warm sibling in this run — it must not appear.
	if strings.Contains(got, "sme-plant ") {
		t.Fatalf("unpaired benchmark listed:\n%s", got)
	}
}

func TestColdWarmTableAbsentWithoutPairs(t *testing.T) {
	if tbl := coldWarmTable(map[string]Entry{"BenchmarkS1/x": {NsPerOp: 1}}); tbl != "" {
		t.Fatalf("table for pairless entries: %q", tbl)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader("no benchmarks here\n"), new(bytes.Buffer), "x", out); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}
