package mitigation

import (
	"cpsrisk/internal/faults"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/logic"
)

// EncodeASP renders the paper's Listing 1 fault-activation semantics as a
// logic program: a candidate fault stays potential while any of its
// sources lacks an active blocking mitigation.
//
//	candidate(C, F).
//	mit_source(C, F, S).              % one per provenance source
//	source_blocker(S, M).             % mitigations blocking a source
//	active_mitigation(M).             % the analyst's selection
//	source_blocked(C, F, S) :- mit_source(C, F, S),
//	    source_blocker(S, M), active_mitigation(M).
//	potential_fault(C, F) :- mit_source(C, F, S),
//	    not source_blocked(C, F, S).
//
// Layering `{ active(C,F) : potential_fault(C,F) } k.` on top restricts
// the exhaustive scenario search to unmitigated candidates — the ASP
// counterpart of Filter.
func EncodeASP(prog *logic.Program, k *kb.KB, muts []faults.Mutation, selected map[string]bool) error {
	sym := logic.Sym
	rules, err := logic.Parse(`
		source_blocked(C, F, S) :- mit_source(C, F, S),
			source_blocker(S, M), active_mitigation(M).
		potential_fault(C, F) :- mit_source(C, F, S),
			not source_blocked(C, F, S).
	`)
	if err != nil {
		return err
	}
	prog.Extend(rules)
	declaredBlocker := map[string]bool{}
	for _, mut := range muts {
		prog.AddFact(logic.A("candidate", sym(mut.Component), sym(mut.Fault)))
		for _, source := range mut.Sources {
			prog.AddFact(logic.A("mit_source", sym(mut.Component), sym(mut.Fault), sym(source)))
			for _, m := range SourceBlockers(k, source) {
				key := source + "|" + m
				if !declaredBlocker[key] {
					declaredBlocker[key] = true
					prog.AddFact(logic.A("source_blocker", sym(source), sym(m)))
				}
			}
		}
	}
	for m, on := range selected {
		if on {
			prog.AddFact(logic.A("active_mitigation", sym(m)))
		}
	}
	return nil
}

// EncodePotentialChoice adds the scenario-space choice over potential
// faults (used after EncodeASP instead of faults.EncodeChoice).
func EncodePotentialChoice(prog *logic.Program, maxCard int) {
	upper := maxCard
	if upper < 0 {
		upper = logic.Unbounded
	}
	prog.AddRule(logic.ChoiceRule(logic.Unbounded, upper, []logic.ChoiceElem{{
		Atom: logic.A("active", logic.Var("C"), logic.Var("F")),
		Cond: []logic.Literal{logic.Pos(logic.A("potential_fault", logic.Var("C"), logic.Var("F")))},
	}}))
}
