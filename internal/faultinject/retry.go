package faultinject

import (
	"context"
	"errors"
	"time"
)

// transientError marks a failure as retryable. Both injected transient
// faults and real-world transient conditions (a cache segment that could
// not be written, a flaky oracle) wear this wrapper so the pipeline's
// retry sites treat them uniformly.
type transientError struct{ err error }

// Error implements error.
func (e *transientError) Error() string { return "transient: " + e.err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err as retryable (nil stays nil).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Retry runs fn and retries it while it fails transiently, sleeping
// base<<attempt between tries (exponential backoff) and giving up after
// `retries` additional attempts, on a non-transient error, or when ctx is
// done. It returns fn's last error. Permanent errors are never retried —
// retry is for failures that a second attempt can plausibly clear, not
// for masking bugs.
func Retry(ctx context.Context, retries int, base time.Duration, fn func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !IsTransient(err) || attempt >= retries {
			return err
		}
		if d := base << uint(attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return err
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return err
		}
	}
}
