package mitigation

import (
	"testing"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/qual"
)

func mut(comp, fault string, sources ...string) faults.Mutation {
	return faults.Mutation{
		Activation: epa.Activation{Component: comp, Fault: fault},
		Sources:    sources,
		Likelihood: qual.Medium,
	}
}

func TestSourceBlockers(t *testing.T) {
	k := kb.MustDefaultKB()
	if got := SourceBlockers(k, SpontaneousSource); got != nil {
		t.Errorf("spontaneous blockers = %v", got)
	}
	got := SourceBlockers(k, "T-1566")
	if len(got) != 1 || got[0] != "M-0917" {
		t.Errorf("T-1566 blockers = %v", got)
	}
	got = SourceBlockers(k, "V-2023-0102")
	if len(got) != 2 {
		t.Errorf("vuln blockers = %v", got)
	}
	if got := SourceBlockers(k, "nonsense"); got != nil {
		t.Errorf("unknown source blockers = %v", got)
	}
}

func TestBlockedAllSourcesSemantics(t *testing.T) {
	k := kb.MustDefaultKB()
	// Compromise reachable via spearphishing (M-0917) AND drive-by
	// (M-0949/M-0951): blocking only one source leaves the fault
	// potential.
	m := mut("ews", "compromised", "T-1566", "T-1189")
	if Blocked(k, m, map[string]bool{"M-0917": true}) {
		t.Error("blocking one of two paths must not block the mutation")
	}
	if !Blocked(k, m, map[string]bool{"M-0917": true, "M-0949": true}) {
		t.Error("blocking every path must block the mutation")
	}
	// A spontaneous source is never blockable.
	sp := mut("valve", "stuck_at_open", SpontaneousSource)
	if Blocked(k, sp, map[string]bool{"M-0917": true, "M-0949": true}) {
		t.Error("spontaneous faults are unblockable")
	}
	mixed := mut("ews", "compromised", "T-1566", SpontaneousSource)
	if Blocked(k, mixed, map[string]bool{"M-0917": true}) {
		t.Error("a spontaneous path keeps the fault potential")
	}
	if Blocked(k, faults.Mutation{Activation: epa.Activation{Component: "x", Fault: "f"}}, nil) {
		t.Error("sourceless mutation must not be considered blocked")
	}
}

func TestFilterListing1Semantics(t *testing.T) {
	// Paper Listing 1: with the mitigation active, the fault is no longer
	// potential and drops from the evaluation.
	k := kb.MustDefaultKB()
	muts := []faults.Mutation{
		mut("ews", "compromised", "T-1566"),
		mut("valve", "stuck_at_open", SpontaneousSource),
	}
	remaining := Filter(k, muts, map[string]bool{"M-0917": true})
	if len(remaining) != 1 || remaining[0].Component != "valve" {
		t.Fatalf("remaining = %v", remaining)
	}
	// Without mitigations everything stays.
	if got := Filter(k, muts, nil); len(got) != 2 {
		t.Fatalf("unfiltered = %v", got)
	}
}

func TestRelevantAndCoverage(t *testing.T) {
	k := kb.MustDefaultKB()
	muts := []faults.Mutation{
		mut("ews", "compromised", "T-1566", "T-1189"),
		mut("panel", "no_signal", "T-0814"),
		mut("valve", "stuck_at_open", SpontaneousSource),
	}
	rel := Relevant(k, muts)
	ids := map[string]bool{}
	for _, m := range rel {
		ids[m.ID] = true
	}
	for _, want := range []string{"M-0917", "M-0949", "M-0951", "M-0815", "M-0930"} {
		if !ids[want] {
			t.Errorf("relevant missing %s: %v", want, ids)
		}
	}
	cov := Coverage(k, muts)
	if len(cov["M-0917"]) != 1 || cov["M-0917"][0].Component != "ews" {
		t.Errorf("coverage M-0917 = %v", cov["M-0917"])
	}
	if len(cov["M-0930"]) != 1 || cov["M-0930"][0].Component != "panel" {
		t.Errorf("coverage M-0930 = %v", cov["M-0930"])
	}
}

func TestScenarioLossBlockedBy(t *testing.T) {
	s := ScenarioLoss{
		ID:   "S2",
		Loss: 200,
		Activations: [][][]string{
			// activation 0: two sources, blockable by {a} and {b,c}
			{{"a"}, {"b", "c"}},
			// activation 1: unblockable source
			{{}},
		},
	}
	if s.BlockedBy(map[string]bool{"a": true}) {
		t.Error("one blocked source of two is not enough")
	}
	if !s.BlockedBy(map[string]bool{"a": true, "c": true}) {
		t.Error("blocking all sources of one activation blocks the scenario")
	}
	if s.BlockedBy(map[string]bool{"b": true, "c": true}) {
		t.Error("source {a} unblocked")
	}
	empty := ScenarioLoss{ID: "S0", Loss: 10}
	if empty.BlockedBy(map[string]bool{"a": true}) {
		t.Error("scenario with no activations is never blocked")
	}
	unblockable := ScenarioLoss{ID: "S1", Loss: 10, Activations: [][][]string{{{}}}}
	if unblockable.BlockedBy(map[string]bool{"a": true}) {
		t.Error("unblockable activation")
	}
}

func TestLossWeightsOrdered(t *testing.T) {
	prev := -1
	for l := qual.VeryLow; l <= qual.VeryHigh; l++ {
		w, ok := LossWeights[l]
		if !ok {
			t.Fatalf("missing weight for level %v", l)
		}
		if w <= prev {
			t.Fatalf("weights not strictly increasing at %v", l)
		}
		prev = w
	}
}
