package artifact

import (
	"testing"

	"cpsrisk/internal/hazard"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/sysmodel"
)

func testModel(typ string) *sysmodel.Model {
	return &sysmodel.Model{
		Components: []*sysmodel.Component{
			{ID: "a", Type: typ},
			{ID: "b", Type: "actuator"},
		},
		Connections: []sysmodel.Connection{
			{From: sysmodel.PortRef{Component: "a", Port: "out"}, To: sysmodel.PortRef{Component: "b", Port: "in"}, Flow: sysmodel.SignalFlow},
		},
	}
}

func testEntry(typ string, complete bool) (*Entry, Key) {
	m := testModel(typ)
	fp := m.Fingerprint()
	return &Entry{
		Fingerprint: fp,
		Model:       m,
		Analysis:    &hazard.Analysis{},
		Complete:    complete,
	}, Key{Model: fp.ModelHash, Cfg: 7}
}

func TestGetPutLRU(t *testing.T) {
	c := New(2)
	e1, k1 := testEntry("sensor", true)
	e2, k2 := testEntry("valve", true)
	e3, k3 := testEntry("pump", true)

	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k1, e1)
	c.Put(k2, e2)
	if got, ok := c.Get(k1); !ok || got != e1 {
		t.Fatal("k1 lookup failed")
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.Put(k3, e3)
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 should have survived")
	}
	if _, ok := c.Get(k3); !ok {
		t.Fatal("k3 should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 3/2", st.Hits, st.Misses)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestEvictionClosesSession(t *testing.T) {
	sess, err := solver.NewSession(logic.MustParse("a."), solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e1, k1 := testEntry("sensor", true)
	e1.Session = sess
	c := New(1)
	c.Put(k1, e1)
	e2, k2 := testEntry("valve", true)
	c.Put(k2, e2) // evicts e1
	if got, _ := e1.LockSession(); got != nil {
		t.Fatal("evicted entry should have a closed, nil session")
	}

	// Close() drains the rest.
	sess2, err := solver.NewSession(logic.MustParse("b."), solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e2.Session = sess2
	c.Close()
	if got, _ := e2.LockSession(); got != nil {
		t.Fatal("Close should close remaining sessions")
	}
	if c.Len() != 0 {
		t.Fatal("Close should empty the cache")
	}
}

func TestNearest(t *testing.T) {
	c := New(8)
	parent, pk := testEntry("sensor", true)
	c.Put(pk, parent)

	// One-component edit: nearest under the same cfg.
	child := testModel("probe").Fingerprint()
	e, d := c.Nearest(7, child)
	if e != parent {
		t.Fatal("expected the parent entry")
	}
	if d.Touched() != 1 || len(d.ChangedBehavior) != 1 || d.ChangedBehavior[0] != "a" {
		t.Fatalf("delta = %+v", d)
	}

	// Different cfg hash: no parent.
	if e, _ := c.Nearest(8, child); e != nil {
		t.Fatal("cfg mismatch must not match")
	}

	// Incomplete entries are not eligible parents.
	inc, ik := testEntry("pump", false)
	c.Put(ik, inc)
	if e, _ := c.Nearest(7, testModel("pump").Fingerprint()); e != parent {
		t.Fatal("incomplete entry must not be chosen")
	}

	// Among several candidates the smallest delta wins.
	p2, p2k := testEntry("probe", true)
	c.Put(p2k, p2)
	e, d = c.Nearest(7, child)
	if e != p2 || !d.Identical() {
		t.Fatalf("expected exact-structure parent, got touched=%d", d.Touched())
	}

	// A requirement-set change disqualifies.
	rm := testModel("sensor")
	rm.Requirements = []sysmodel.Requirement{{ID: "R9", Severity: "H"}}
	if e, _ := c.Nearest(7, rm.Fingerprint()); e != nil {
		t.Fatal("requirement change must not yield a delta parent")
	}

	if e, d := (*Cache)(nil).Nearest(7, child); e != nil || d != nil {
		t.Fatal("nil cache must return nothing")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("nil get")
	}
	e, _ := testEntry("sensor", true)
	c.Put(Key{}, e)
	c.Close()
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache stats")
	}
}
