package epa

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cpsrisk/internal/solver"
	"cpsrisk/internal/sysmodel"
)

// chainModel builds src -> mid -> dst with signal flows.
func chainModel(t testing.TB) (*sysmodel.Model, *BehaviorLibrary) {
	t.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "node",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "crash"}, {Name: "corrupt"},
		},
	})
	m := sysmodel.NewModel("chain")
	for _, id := range []string{"src", "mid", "dst"} {
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: "node"})
	}
	m.Connect("src", "out", "mid", "in", sysmodel.SignalFlow)
	m.Connect("mid", "out", "dst", "in", sysmodel.SignalFlow)

	lib := NewBehaviorLibrary(types)
	lib.MustRegister(&TypeBehavior{
		Type: "node",
		Effects: []FaultEffect{
			{Fault: "crash", Port: "out", Emit: StateOf(ErrOmission)},
			{Fault: "corrupt", Port: "out", Emit: StateOf(ErrValue)},
		},
		Transfers: IdentityTransfers("in", "out"),
	})
	return m, lib
}

func TestErrStateOps(t *testing.T) {
	s := StateOf(ErrValue, ErrOmission)
	if !s.Has(ErrValue) || !s.Has(ErrOmission) || s.Has(ErrTiming) {
		t.Errorf("StateOf = %v", s)
	}
	if s.String() != "value_err+omission" {
		t.Errorf("String = %q", s)
	}
	parsed, err := ParseState("value_err+omission")
	if err != nil || parsed != s {
		t.Errorf("ParseState = %v, %v", parsed, err)
	}
	if okState, err := ParseState("ok"); err != nil || okState != OK {
		t.Errorf("ParseState(ok) = %v, %v", okState, err)
	}
	if _, err := ParseState("bogus"); err == nil {
		t.Error("bad state must fail")
	}
	if !OK.Leq(s) || s.Leq(OK) {
		t.Error("Leq ordering broken")
	}
	if !s.Leq(AnyError) {
		t.Error("AnyError must be top")
	}
}

func TestChainPropagation(t *testing.T) {
	m, lib := chainModel(t)
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(Scenario{{Component: "src", Fault: "corrupt"}})
	if err != nil {
		t.Fatal(err)
	}
	// Value error flows src.out -> mid.in -> mid.out -> dst.in.
	for _, pk := range []PortKey{
		{"src", "out"}, {"mid", "in"}, {"mid", "out"}, {"dst", "in"},
	} {
		if st := res.PortState(pk.Component, pk.Port); !st.Has(ErrValue) {
			t.Errorf("port %v missing value error: %v", pk, st)
		}
	}
	// Nothing flows upstream.
	if !res.PortState("src", "in").IsOK() {
		t.Errorf("src.in = %v", res.PortState("src", "in"))
	}
	if got := res.Affected(); len(got) != 3 {
		t.Errorf("affected = %v", got)
	}
	if st := res.ComponentState("dst"); !st.Has(ErrValue) || st.Has(ErrOmission) {
		t.Errorf("dst state = %v", st)
	}
}

func TestEmptyScenarioIsClean(t *testing.T) {
	m, lib := chainModel(t)
	eng, _ := NewEngine(m, lib)
	res, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Affected(); len(got) != 0 {
		t.Errorf("affected = %v", got)
	}
}

func TestScenarioValidation(t *testing.T) {
	m, lib := chainModel(t)
	eng, _ := NewEngine(m, lib)
	if _, err := eng.Run(Scenario{{Component: "ghost", Fault: "crash"}}); err == nil {
		t.Error("unknown component must fail")
	}
	if _, err := eng.Run(Scenario{{Component: "src", Fault: "melt"}}); err == nil {
		t.Error("unknown fault must fail")
	}
}

func TestPathProvenance(t *testing.T) {
	m, lib := chainModel(t)
	eng, _ := NewEngine(m, lib)
	res, _ := eng.Run(Scenario{{Component: "src", Fault: "corrupt"}})
	path := res.Path("dst", "in", ErrValue)
	if len(path) == 0 {
		t.Fatal("no path")
	}
	if path[0].Cause.Kind != "fault" || path[0].Cause.Fault.Component != "src" {
		t.Errorf("path origin = %+v", path[0])
	}
	if last := path[len(path)-1]; last.Port != (PortKey{"dst", "in"}) {
		t.Errorf("path end = %+v", last)
	}
	// Path alternates through mid.
	var comps []string
	for _, st := range path {
		comps = append(comps, st.Port.Component)
	}
	joined := strings.Join(comps, ",")
	if !strings.Contains(joined, "mid") {
		t.Errorf("path misses mid: %v", joined)
	}
	if got := res.Path("dst", "in", ErrTiming); got != nil {
		t.Errorf("absent mode path = %v", got)
	}
}

func TestQuantityFlowBidirectional(t *testing.T) {
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "vessel",
		Ports: []sysmodel.PortSpec{
			{Name: "pipe", Dir: sysmodel.InOut, Flow: sysmodel.QuantityFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "leak"}},
	})
	m := sysmodel.NewModel("pipes")
	m.MustAddComponent(&sysmodel.Component{ID: "a", Type: "vessel"})
	m.MustAddComponent(&sysmodel.Component{ID: "b", Type: "vessel"})
	m.Connect("a", "pipe", "b", "pipe", sysmodel.QuantityFlow)
	lib := NewBehaviorLibrary(types)
	lib.MustRegister(&TypeBehavior{
		Type:    "vessel",
		Effects: []FaultEffect{{Fault: "leak", Port: "pipe", Emit: StateOf(ErrValue)}},
	})
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Fault on b must reach a against the connection direction.
	res, _ := eng.Run(Scenario{{Component: "b", Fault: "leak"}})
	if !res.PortState("a", "pipe").Has(ErrValue) {
		t.Error("quantity flow must propagate bidirectionally")
	}
}

func TestGuardedTransfers(t *testing.T) {
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "filter",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "bypass"}},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "src",
		Ports: []sysmodel.PortSpec{
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "corrupt"}},
	})
	m := sysmodel.NewModel("filtered")
	m.MustAddComponent(&sysmodel.Component{ID: "s", Type: "src"})
	m.MustAddComponent(&sysmodel.Component{ID: "f", Type: "filter"})
	m.Connect("s", "out", "f", "in", sysmodel.SignalFlow)

	lib := NewBehaviorLibrary(types)
	lib.MustRegister(&TypeBehavior{
		Type:    "src",
		Effects: []FaultEffect{{Fault: "corrupt", Port: "out", Emit: StateOf(ErrValue)}},
	})
	// The filter masks value errors unless bypassed.
	lib.MustRegister(&TypeBehavior{
		Type: "filter",
		Transfers: []TransferRule{
			{From: "in", Match: StateOf(ErrValue), To: "out", Emit: StateOf(ErrValue), WhenFault: "bypass"},
			{From: "in", Match: StateOf(ErrOmission), To: "out", Emit: StateOf(ErrOmission)},
		},
	})
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Without bypass the filter masks the error.
	res, _ := eng.Run(Scenario{{Component: "s", Fault: "corrupt"}})
	if !res.PortState("f", "out").IsOK() {
		t.Errorf("filter must mask: %v", res.PortState("f", "out"))
	}
	// With bypass it propagates.
	res, _ = eng.Run(Scenario{
		{Component: "s", Fault: "corrupt"},
		{Component: "f", Fault: "bypass"},
	})
	if !res.PortState("f", "out").Has(ErrValue) {
		t.Error("bypassed filter must propagate")
	}
}

func TestUnlessFaultSuppression(t *testing.T) {
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "relay",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "stuck"}, {Name: "noise"}},
	})
	m := sysmodel.NewModel("relay")
	m.MustAddComponent(&sysmodel.Component{ID: "r", Type: "relay"})
	lib := NewBehaviorLibrary(types)
	lib.MustRegister(&TypeBehavior{
		Type: "relay",
		Effects: []FaultEffect{
			{Fault: "noise", Port: "in", Emit: StateOf(ErrValue)},
			{Fault: "stuck", Port: "out", Emit: StateOf(ErrOmission)},
		},
		Transfers: []TransferRule{
			// A stuck relay does not forward input errors.
			{From: "in", Match: StateOf(ErrValue), To: "out", Emit: StateOf(ErrValue), UnlessFault: "stuck"},
		},
	})
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := eng.Run(Scenario{{Component: "r", Fault: "noise"}})
	if !res.PortState("r", "out").Has(ErrValue) {
		t.Error("value must forward when not stuck")
	}
	res, _ = eng.Run(Scenario{
		{Component: "r", Fault: "noise"},
		{Component: "r", Fault: "stuck"},
	})
	if res.PortState("r", "out").Has(ErrValue) {
		t.Error("stuck relay must not forward")
	}
	if !res.PortState("r", "out").Has(ErrOmission) {
		t.Error("stuck relay must emit omission")
	}
}

// Monotonicity property: adding activations never removes derived errors
// when no UnlessFault guards are present ("no hazardous attack is
// overlooked" under scenario growth).
func TestMonotoneInScenario(t *testing.T) {
	m, lib := chainModel(t)
	eng, _ := NewEngine(m, lib)
	small := Scenario{{Component: "mid", Fault: "crash"}}
	large := Scenario{
		{Component: "mid", Fault: "crash"},
		{Component: "src", Fault: "corrupt"},
		{Component: "dst", Fault: "crash"},
	}
	rs, _ := eng.Run(small)
	rl, _ := eng.Run(large)
	for _, pk := range eng.ports {
		ss, sl := rs.PortState(pk.Component, pk.Port), rl.PortState(pk.Component, pk.Port)
		if !ss.Leq(sl) {
			t.Errorf("port %v: %v not <= %v", pk, ss, sl)
		}
	}
}

func TestDefaultBehaviorConservative(t *testing.T) {
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "blackbox",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "any"}},
	})
	b := DefaultBehavior(mustGet(t, types, "blackbox"))
	if len(b.Transfers) != len(AllModes) {
		t.Errorf("default transfers = %d", len(b.Transfers))
	}
	if len(b.Effects) != 1 || b.Effects[0].Emit != AnyError {
		t.Errorf("default effects = %+v", b.Effects)
	}
}

func mustGet(t *testing.T, lib *sysmodel.TypeLibrary, name string) *sysmodel.ComponentType {
	t.Helper()
	ct, ok := lib.Get(name)
	if !ok {
		t.Fatalf("type %q missing", name)
	}
	return ct
}

func TestBehaviorRegisterValidation(t *testing.T) {
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name:       "n",
		Ports:      []sysmodel.PortSpec{{Name: "p", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow}},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "f"}},
	})
	lib := NewBehaviorLibrary(types)
	tests := []struct {
		name string
		b    *TypeBehavior
	}{
		{"unknown type", &TypeBehavior{Type: "ghost"}},
		{"unknown fault", &TypeBehavior{Type: "n", Effects: []FaultEffect{{Fault: "ghost"}}}},
		{"unknown port", &TypeBehavior{Type: "n", Effects: []FaultEffect{{Fault: "f", Port: "ghost"}}}},
		{"unknown transfer port", &TypeBehavior{Type: "n",
			Transfers: []TransferRule{{From: "ghost", Match: AnyError, To: "p", Emit: AnyError}}}},
		{"empty match", &TypeBehavior{Type: "n",
			Transfers: []TransferRule{{From: "p", Match: OK, To: "p", Emit: AnyError}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := lib.Register(tt.b); err == nil {
				t.Error("expected error")
			}
		})
	}
	if err := lib.Register(&TypeBehavior{Type: "n"}); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(&TypeBehavior{Type: "n"}); err == nil {
		t.Error("duplicate must fail")
	}
}

func TestEngineRejectsComposite(t *testing.T) {
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{Name: "box"})
	m := sysmodel.NewModel("x")
	inner := sysmodel.NewModel("inner")
	inner.MustAddComponent(&sysmodel.Component{ID: "i", Type: "box"})
	m.MustAddComponent(&sysmodel.Component{ID: "c", Type: "box", Sub: inner})
	lib := NewBehaviorLibrary(types)
	if _, err := NewEngine(m, lib); err == nil {
		t.Error("composite model must be rejected")
	}
}

// TestASPAgreesWithNative cross-checks the ASP encoding against the native
// fixpoint on randomized ring/chain/tree models and random scenarios —
// the central semantic equivalence invariant of the two EPA engines.
func TestASPAgreesWithNative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		m, lib := randomModel(t, rng, 3+rng.Intn(4))
		eng, err := NewEngine(m, lib)
		if err != nil {
			t.Fatal(err)
		}
		// Random scenario.
		var sc Scenario
		for _, c := range m.Components {
			if rng.Intn(3) == 0 {
				fault := []string{"crash", "corrupt"}[rng.Intn(2)]
				sc = append(sc, Activation{Component: c.ID, Fault: fault})
			}
		}
		native, err := eng.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := eng.EncodeASP()
		if err != nil {
			t.Fatal(err)
		}
		EncodeScenario(prog, sc)
		res, err := solver.SolveProgram(prog, solver.Options{})
		if err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		if len(res.Models) != 1 {
			t.Fatalf("trial %d: deterministic EPA program has %d models", trial, len(res.Models))
		}
		model := res.Models[0]
		for _, pk := range eng.ports {
			for _, mode := range AllModes {
				key := ErrAtom(pk.Component, pk.Port, mode).Key()
				aspHas := model.Contains(key)
				nativeHas := native.PortState(pk.Component, pk.Port).Has(mode)
				if aspHas != nativeHas {
					t.Fatalf("trial %d scenario %v port %v mode %v: asp=%v native=%v",
						trial, sc, pk, mode, aspHas, nativeHas)
				}
			}
		}
	}
}

// randomModel builds a random connected digraph of "node" components,
// including cycles, to exercise the fixpoint.
func randomModel(t testing.TB, rng *rand.Rand, n int) (*sysmodel.Model, *BehaviorLibrary) {
	t.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "node",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "crash"}, {Name: "corrupt"}},
	})
	m := sysmodel.NewModel("rand")
	for i := 0; i < n; i++ {
		m.MustAddComponent(&sysmodel.Component{ID: fmt.Sprintf("n%d", i), Type: "node"})
	}
	// Ring for connectivity + random chords (cycles included).
	for i := 0; i < n; i++ {
		m.Connect(fmt.Sprintf("n%d", i), "out", fmt.Sprintf("n%d", (i+1)%n), "in", sysmodel.SignalFlow)
	}
	for i := 0; i < n/2; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			m.Connect(fmt.Sprintf("n%d", a), "out", fmt.Sprintf("n%d", b), "in", sysmodel.SignalFlow)
		}
	}
	lib := NewBehaviorLibrary(types)
	lib.MustRegister(&TypeBehavior{
		Type: "node",
		Effects: []FaultEffect{
			{Fault: "crash", Port: "out", Emit: StateOf(ErrOmission)},
			{Fault: "corrupt", Port: "out", Emit: StateOf(ErrValue)},
		},
		Transfers: IdentityTransfers("in", "out"),
	})
	return m, lib
}

func BenchmarkEPAChain(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			types := sysmodel.NewTypeLibrary()
			types.MustAdd(&sysmodel.ComponentType{
				Name: "node",
				Ports: []sysmodel.PortSpec{
					{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
					{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
				},
				FaultModes: []sysmodel.FaultModeSpec{{Name: "corrupt"}},
			})
			m := sysmodel.NewModel("chain")
			for i := 0; i < n; i++ {
				m.MustAddComponent(&sysmodel.Component{ID: fmt.Sprintf("n%d", i), Type: "node"})
			}
			for i := 0; i+1 < n; i++ {
				m.Connect(fmt.Sprintf("n%d", i), "out", fmt.Sprintf("n%d", i+1), "in", sysmodel.SignalFlow)
			}
			lib := NewBehaviorLibrary(types)
			lib.MustRegister(&TypeBehavior{
				Type:      "node",
				Effects:   []FaultEffect{{Fault: "corrupt", Port: "out", Emit: StateOf(ErrValue)}},
				Transfers: IdentityTransfers("in", "out"),
			})
			eng, err := NewEngine(m, lib)
			if err != nil {
				b.Fatal(err)
			}
			sc := Scenario{{Component: "n0", Fault: "corrupt"}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				if !res.PortState(fmt.Sprintf("n%d", n-1), "in").Has(ErrValue) {
					b.Fatal("propagation incomplete")
				}
			}
		})
	}
}
