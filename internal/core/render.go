package core

import (
	"fmt"
	"strings"
	"time"

	"cpsrisk/internal/qual"
	"cpsrisk/internal/report"
	"cpsrisk/internal/risk"
)

// Render produces a complete, SME-readable report of the assessment:
// model summary, candidate surface, attack reachability, scenario
// prioritization with treatment advice, CEGAR verdicts, and the
// mitigation plan. This is the deliverable the paper's tool hands to a
// manager of average IT skills (§II-A).
func (a *Assessment) Render() string {
	var sb strings.Builder
	s := qual.FiveLevel()

	fmt.Fprintf(&sb, "SYSTEM\n  %d components, %d connections",
		a.ModelStats.Components, a.ModelStats.Connections)
	if a.ModelStats.Composites > 0 {
		fmt.Fprintf(&sb, " (%d composite, depth %d)", a.ModelStats.Composites, a.ModelStats.Depth)
	}
	if a.Duration > 0 {
		fmt.Fprintf(&sb, "\n  assessed in %s", a.Duration.Round(time.Microsecond))
	}
	sb.WriteString("\n\n")

	fmt.Fprintf(&sb, "ATTACK & FAULT SURFACE\n")
	fmt.Fprintf(&sb, "  %d candidate mutations (%d analyzed after mitigation filtering)\n",
		len(a.Candidates), len(a.Analyzed))
	for _, m := range a.Candidates {
		fmt.Fprintf(&sb, "    %-40s likelihood %-2s via %s\n",
			m.Activation.String(), s.Label(m.Likelihood), strings.Join(m.Sources, ", "))
	}
	if len(a.Compromisable) > 0 {
		fmt.Fprintf(&sb, "  attacker foothold possible on: %s\n", strings.Join(a.Compromisable, ", "))
	}
	sb.WriteString("\n")

	hazards := a.Analysis.Hazards()
	fmt.Fprintf(&sb, "HAZARD IDENTIFICATION\n  %d scenarios analyzed, %d hazardous\n",
		len(a.Analysis.Scenarios), len(hazards))
	if ar := a.Artifact; ar != nil {
		fmt.Fprintf(&sb, "  artifact: %s run (model %s)", ar.Path, ar.ModelHash)
		if ar.Path == "delta" {
			fmt.Fprintf(&sb, ", %d component(s) touched, %d invalidated", ar.Touched, ar.Affected)
		}
		sb.WriteString("\n")
	}
	if sw := a.Analysis.Sweep; sw != nil {
		fmt.Fprintf(&sb, "  sweep: %d worker(s), %.0f scenarios/s", sw.Workers, sw.Throughput())
		if sw.Shard != "" {
			fmt.Fprintf(&sb, ", shard %s", sw.Shard)
		}
		if sw.Pruned+sw.OrbitHits > 0 {
			fmt.Fprintf(&sb, ", %d executed, %d dominance-pruned, %d orbit-replicated (%d symmetry classes)",
				sw.Executed, sw.Pruned, sw.OrbitHits, sw.OrbitClasses)
		}
		if sw.Reused > 0 {
			fmt.Fprintf(&sb, ", %d row(s) reused from the cached parent", sw.Reused)
		}
		sb.WriteString("\n")
		if sw.CacheHits+sw.CacheMisses > 0 {
			fmt.Fprintf(&sb, "  cache: %d hits, %d misses\n", sw.CacheHits, sw.CacheMisses)
		}
		if sw.Retries > 0 {
			fmt.Fprintf(&sb, "  retries: %d transient failure(s) recovered\n", sw.Retries)
		}
	}
	if r := a.Analysis.Resume; r != nil {
		fmt.Fprintf(&sb, "  resumed from checkpoint at rank %d\n", r.FromRank)
	}
	if st := a.Analysis.SolverStats; st != nil {
		fmt.Fprintf(&sb, "  solver: %d decisions, %d conflicts, %d learned, %d backjumps, %d restarts, %d db-reductions\n",
			st.Decisions, st.Conflicts, st.LearnedClauses, st.Backjumps, st.Restarts, st.DBReductions)
		if st.Sessions > 0 {
			fmt.Fprintf(&sb, "  multi-shot: %d session(s), %d queries, %d incremental adds, %d ground atoms reused, %d learned clauses retained\n",
				st.Sessions, st.Queries, st.Adds, st.GroundAtomsReused, st.LearnedReused)
		}
		if st.PortfolioWorkers > 0 {
			fmt.Fprintf(&sb, "  portfolio: %d helper(s), %d helper wins, %d clauses shared (%d imported, %d ring drops)\n",
				st.PortfolioWorkers, st.PortfolioWins, st.ClausesExported, st.ClausesImported, st.ExchangeDrops)
		}
	}
	sb.WriteString("\n")

	if a.Degradation.Degraded() {
		fmt.Fprintf(&sb, "DEGRADED RESULTS\n")
		fmt.Fprintf(&sb, "  the resource budget interrupted the run; results below are partial:\n")
		for _, t := range a.Degradation.Truncations {
			fmt.Fprintf(&sb, "    %s\n", t)
		}
		sb.WriteString("\n")
	}

	fmt.Fprintf(&sb, "PRIORITIZED FINDINGS\n")
	shown := 0
	for _, sc := range a.Ranked {
		if !sc.IsHazardous() {
			continue
		}
		shown++
		if shown > 10 {
			fmt.Fprintf(&sb, "  ... and %d more hazardous scenarios\n", len(hazards)-10)
			break
		}
		fmt.Fprintf(&sb, "  %2d. %-55s %s\n", shown, sc.Scenario.Key(), risk.Explain(sc.Risk))
	}
	sb.WriteString("\n")

	if a.Refinement != nil {
		fmt.Fprintf(&sb, "VALIDATION (CEGAR against the concrete model)\n")
		fmt.Fprintf(&sb, "  confirmed %d, spurious %d, needs expert review %d\n",
			len(a.Refinement.Confirmed()), len(a.Refinement.Spurious()),
			len(a.Refinement.Undetermined()))
		for _, j := range a.Refinement.Spurious() {
			fmt.Fprintf(&sb, "    spurious: %s\n", j.Finding)
		}
		for _, j := range a.Refinement.Undetermined() {
			fmt.Fprintf(&sb, "    review:   %s\n", j.Finding)
		}
		sb.WriteString("\n")
	}

	if len(a.RelevantMitigations) > 0 {
		fmt.Fprintf(&sb, "MITIGATION SOLUTION SPACE\n")
		for _, m := range a.RelevantMitigations {
			fmt.Fprintf(&sb, "  %-8s %-35s cost %d (+%d/period)\n",
				m.ID, m.Name, m.Cost, m.MaintenanceCost)
		}
		sb.WriteString("\n")
	}
	if len(a.Plan.Selected) > 0 || a.Plan.ResidualLoss > 0 {
		fmt.Fprintf(&sb, "RECOMMENDED PLAN\n")
		for i, p := range a.Phases {
			fmt.Fprintf(&sb, "  phase %d: deploy %s (cost %d, removes %d loss)\n",
				i+1, p.MitigationID, p.Cost, p.LossReduction)
		}
		fmt.Fprintf(&sb, "  optimal selection: {%s}  cost %d  residual loss %d  total %d\n",
			strings.Join(a.Plan.Selected, ", "), a.Plan.Cost, a.Plan.ResidualLoss, a.Plan.Total)
		if len(a.Plan.Blocked) > 0 {
			fmt.Fprintf(&sb, "  blocked scenarios: %s\n", strings.Join(a.Plan.Blocked, ", "))
		}
	}

	if a.Trace != nil {
		sb.WriteString("\nTIMING\n")
		sb.WriteString(a.Trace.Tree())
	}
	if a.Metrics != nil {
		if body := a.Metrics.Render(); body != "" {
			sb.WriteString("\nMETRICS\n")
			sb.WriteString(body)
		}
	}
	return sb.String()
}

// RenderFull is the complete text deliverable: the report body plus the
// risk-prioritized scenario table (truncated to topN rows when topN > 0)
// and the degradation summary. The CLI's default output and the
// service's text report endpoint both print exactly this, so the two
// front-ends stay byte-identical by construction.
func (a *Assessment) RenderFull(topN int) string {
	var sb strings.Builder
	sb.WriteString(a.Render())
	sb.WriteString("\n")
	sb.WriteString("== Risk-prioritized scenarios ==\n")
	limit := a.Ranked
	if topN > 0 && len(limit) > topN {
		limit = limit[:topN]
	}
	sb.WriteString(report.Ranked(limit))
	sb.WriteString("\n")
	if a.Degradation.Degraded() {
		sb.WriteString("== Degraded results ==\n")
		sb.WriteString(a.Degradation.Summary())
		sb.WriteString("\n")
	}
	return sb.String()
}
