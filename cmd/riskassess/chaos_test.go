package main

import (
	"bytes"
	"encoding/json"
	"io"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"cpsrisk/internal/faultinject"
)

// stripNondeterministic removes the report lines that carry wall-clock
// numbers or run provenance — everything else must be byte-identical
// across crashed-and-resumed runs.
func stripNondeterministic(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		switch {
		case strings.Contains(line, "sweep:"),
			strings.Contains(line, "assessed in"),
			strings.Contains(line, "cache:"),
			strings.Contains(line, "retries:"),
			strings.Contains(line, "resumed from checkpoint"):
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func assertNoTmpFiles(t *testing.T, dir string) {
	t.Helper()
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			t.Errorf("stray temp file %s", path)
		}
		return nil
	})
}

// TestChaosResumeMatchesBaseline is the end-to-end chaos gate: crash the
// CLI sweep via the env-armed injector, resume with the same checkpoint
// directory, and demand the report match an undisturbed baseline.
func TestChaosResumeMatchesBaseline(t *testing.T) {
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
		"-parallel", "4",
	}
	var baseline bytes.Buffer
	if err := run(base, &baseline); err != nil {
		t.Fatal(err)
	}
	want := stripNondeterministic(baseline.String())

	for _, spec := range []string{
		faultinject.SiteEPARun + "=panic@9",
		faultinject.SiteEPARun + "=err@5",
		faultinject.SiteEPARun + "=cancel@13",
		faultinject.SiteStoreWrite + "=torn@1",
		faultinject.SiteCheckpointWrite + "=torn@1",
	} {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			args := append(append([]string(nil), base...), "-checkpoint", dir)

			// Run 1: crash (or degrade — cancel truncates instead of
			// erroring). Either way no temp files may survive.
			t.Setenv(faultinject.EnvSpec, spec)
			t.Setenv(faultinject.EnvSeed, "1")
			_ = run(args, io.Discard)
			assertNoTmpFiles(t, dir)

			// Run 2: clean resume, identical report.
			t.Setenv(faultinject.EnvSpec, "")
			var out bytes.Buffer
			if err := run(args, &out); err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if got := stripNondeterministic(out.String()); got != want {
				t.Fatalf("resumed report diverged from baseline:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
			assertNoTmpFiles(t, dir)
		})
	}
}

// TestResumeProvenanceInOutputs pins the satellite: a resumed, still
// budget-capped run stamps its provenance into both the text report and
// the JSON summary.
func TestResumeProvenanceInOutputs(t *testing.T) {
	// The cap charges executed scenarios only, so each resumed run
	// advances the frontier by 5. The pruned sweep executes 17 of the 56
	// rows here; 3 runs cover 15 < 17, keeping the third run truncated.
	dir := t.TempDir()
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
		"-checkpoint", dir,
		"-max-scenarios", "5",
	}
	if err := run(base, io.Discard); err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := run(base, &text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "resumed from checkpoint at rank") {
		t.Fatalf("text report lacks resume provenance:\n%s", text.String())
	}

	var jsonOut bytes.Buffer
	if err := run(append(base, "-json"), &jsonOut); err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Sweep *struct {
			ResumedFromRank int   `json:"resumedFromRank"`
			CacheHits       int64 `json:"cacheHits"`
		} `json:"sweep"`
		Degradation []struct {
			Detail string `json:"detail"`
		} `json:"degradation"`
	}
	if err := json.Unmarshal(jsonOut.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Sweep == nil || sum.Sweep.ResumedFromRank == 0 {
		t.Fatalf("JSON summary lacks resume provenance: %+v", sum.Sweep)
	}
	if sum.Sweep.CacheHits == 0 {
		t.Fatal("resumed run should restore results from the cache")
	}
	found := false
	for _, d := range sum.Degradation {
		if strings.Contains(d.Detail, "resumed from checkpoint at rank") {
			found = true
		}
	}
	if !found {
		t.Fatalf("JSON degradation detail lacks resume provenance: %+v", sum.Degradation)
	}
}

// TestCacheFlagSpeedsSecondRun sanity-checks the standalone -cache flag:
// a second run over the same inputs reports cache hits.
func TestCacheFlagSpeedsSecondRun(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
		"-cache", dir,
		"-json",
	}
	if err := run(base, io.Discard); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(base, &out); err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Sweep *struct {
			CacheHits   int64 `json:"cacheHits"`
			CacheMisses int64 `json:"cacheMisses"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Sweep == nil || sum.Sweep.CacheHits == 0 || sum.Sweep.CacheMisses != 0 {
		t.Fatalf("second -cache run stats: %+v", sum.Sweep)
	}
}
