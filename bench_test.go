// Package cpsrisk holds the top-level experiment harness: one benchmark
// per table and figure of the paper's evaluation (see DESIGN.md for the
// experiment index) plus scalability sweeps for the substrates. Run with:
//
//	go test -bench=. -benchmem
package cpsrisk

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"cpsrisk/internal/artifact"
	"cpsrisk/internal/budget"
	"cpsrisk/internal/cegar"
	"cpsrisk/internal/core"
	"cpsrisk/internal/dynamics"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/hierarchy"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/mitigation"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/optimize"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/report"
	"cpsrisk/internal/risk"
	"cpsrisk/internal/rough"
	"cpsrisk/internal/sensitivity"
	"cpsrisk/internal/serve"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/sysmodel"
	"cpsrisk/internal/temporal"
	"cpsrisk/internal/watertank"
)

// BenchmarkTableI_RiskMatrix regenerates paper Table I (experiment T1).
func BenchmarkTableI_RiskMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := report.TableI()
		if !strings.Contains(out, "VH") {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTableII_CaseStudy regenerates paper Table II (experiment T2)
// through both analysis paths.
func BenchmarkTableII_CaseStudy(b *testing.B) {
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := watertank.PaperTableII(false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("asp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := watertank.PaperTableII(true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig1_PipelineEndToEnd runs the full Fig. 1 pipeline on the case
// study (experiment F1), including CEGAR validation and optimization.
func BenchmarkFig1_PipelineEndToEnd(b *testing.B) {
	types := watertank.Types()
	cfg := core.Config{
		Model:          watertank.Model(),
		Types:          types,
		Behaviors:      watertank.Behaviors(types),
		KB:             kb.MustDefaultKB(),
		Requirements:   watertank.Requirements(),
		ExtraMutations: watertank.PaperCandidates(),
		MaxCardinality: -1,
		Optimize:       true,
		Budget:         -1,
		Oracle:         cegar.NewPlantOracle(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Analysis.Hazards()) == 0 {
			b.Fatal("no hazards")
		}
	}
}

// BenchmarkObsOverhead measures the observability tax on the Fig. 1
// pipeline: "off" runs with no trace or metrics configured — the hot
// paths must collapse to one nil pointer check each — while "on"
// attaches a span tree and metrics registry and snapshots both. The
// pair is the evidence behind the overhead contract (disabled tracing
// regresses the tracked suite by <= 2%).
func BenchmarkObsOverhead(b *testing.B) {
	types := watertank.Types()
	base := core.Config{
		Model:          watertank.Model(),
		Types:          types,
		Behaviors:      watertank.Behaviors(types),
		KB:             kb.MustDefaultKB(),
		Requirements:   watertank.Requirements(),
		ExtraMutations: watertank.PaperCandidates(),
		MaxCardinality: -1,
		Optimize:       true,
		Budget:         -1,
		Oracle:         cegar.NewPlantOracle(),
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := base
			cfg.Trace = obs.New("assessment")
			cfg.Metrics = obs.NewRegistry()
			a, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if a.Trace == nil || a.Trace.Count("hazard") != 1 || a.Metrics == nil {
				b.Fatal("observability output missing")
			}
		}
	})
}

// BenchmarkFig2_RiskAttributeTree sweeps the O-RA attribute tree
// derivation over all leaf combinations (experiment F2).
func BenchmarkFig2_RiskAttributeTree(b *testing.B) {
	s := qual.FiveLevel()
	for i := 0; i < b.N; i++ {
		var checksum int
		for cf := s.Min(); cf <= s.Max(); cf++ {
			for tc := s.Min(); tc <= s.Max(); tc++ {
				for rs := s.Min(); rs <= s.Max(); rs++ {
					d := risk.Derive(risk.Attributes{
						ContactFrequency:    cf,
						ProbabilityOfAction: qual.Medium,
						ThreatCapability:    tc,
						ResistanceStrength:  rs,
						PrimaryLoss:         qual.High,
					})
					checksum += int(d.Risk)
				}
			}
		}
		if checksum == 0 {
			b.Fatal("degenerate sweep")
		}
	}
}

// BenchmarkFig3_HierarchicalEvaluation runs the three evaluation focuses
// of the Fig. 3 matrix on the hierarchical case study (experiment F3).
func BenchmarkFig3_HierarchicalEvaluation(b *testing.B) {
	k := kb.MustDefaultKB()
	types := watertank.Types()
	for i := 0; i < b.N; i++ {
		// Focus 1: topology propagation on the abstract model.
		m := watertank.HierarchicalModel()
		tank, _ := m.Component(plant.CompTank)
		tank.SetAttr(hierarchy.CriticalityAttr, "VH")
		topo, err := hierarchy.Topology(m, []string{plant.CompEWS})
		if err != nil {
			b.Fatal(err)
		}
		// Refine the hot composites, then focus 2: detailed EPA.
		for _, id := range hierarchy.RefinementPlan(m, topo) {
			if err := m.RefineComponent(id); err != nil {
				b.Fatal(err)
			}
		}
		eng, err := epa.NewEngine(m, watertank.Behaviors(types))
		if err != nil {
			b.Fatal(err)
		}
		muts, err := faults.Candidates(m, types, k, faults.AllSources())
		if err != nil {
			b.Fatal(err)
		}
		analysis, err := hazard.Analyze(eng, muts, 1, watertank.Requirements())
		if err != nil {
			b.Fatal(err)
		}
		// Focus 3: mitigation plan.
		problem := &optimize.Problem{Budget: -1}
		for _, mi := range mitigation.Relevant(k, muts) {
			problem.Options = append(problem.Options, optimize.Option{ID: mi.ID, Cost: mi.Cost})
		}
		problem.Scenarios = mitigation.PrepareLosses(k, analysis, muts)
		if _, _, err := problem.MultiPhase(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_AssetRefinement measures the Fig. 4 asset refinement
// operation itself (experiment F4).
func BenchmarkFig4_AssetRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := watertank.HierarchicalModel()
		if err := m.RefineComponent(plant.CompEWS); err != nil {
			b.Fatal(err)
		}
		if err := m.Validate(watertank.Types()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX1_Sensitivity runs the §V-A sensitivity analysis (experiment
// X1) over the full five-factor FAIR tree.
func BenchmarkX1_Sensitivity(b *testing.B) {
	all := []qual.Level{qual.VeryLow, qual.Low, qual.Medium, qual.High, qual.VeryHigh}
	factors := []sensitivity.Factor{
		{Name: "LM", Levels: all},
		{Name: "LEF", Levels: all},
	}
	base := sensitivity.Assignment{"LM": qual.Medium, "LEF": qual.Medium}
	out := func(a sensitivity.Assignment) qual.Level { return risk.ORARisk(a["LM"], a["LEF"]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sensitivity.Analyze(base, factors, out)
		if err != nil {
			b.Fatal(err)
		}
		if len(sensitivity.Tornado(res)) != 2 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkX2_ScenarioRanking scores and ranks the full case-study
// scenario space (experiment X2).
func BenchmarkX2_ScenarioRanking(b *testing.B) {
	eng, err := watertank.Engine()
	if err != nil {
		b.Fatal(err)
	}
	analysis, err := hazard.Analyze(eng, watertank.PaperCandidates(), -1, watertank.Requirements())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := analysis.Ranked(); len(got) != 16 {
			b.Fatal("bad ranking")
		}
	}
}

// BenchmarkX3_RoughSets approximates, reduces, and classifies the risk
// decision table (experiment X3).
func BenchmarkX3_RoughSets(b *testing.B) {
	s := qual.FiveLevel()
	var objects []rough.Object
	for lm := s.Min(); lm <= s.Max(); lm++ {
		for lef := s.Min(); lef <= s.Max(); lef++ {
			objects = append(objects, rough.Object{
				ID:       "c" + s.Label(lm) + "_" + s.Label(lef),
				Values:   map[string]string{"LM": s.Label(lm), "LEF": s.Label(lef)},
				Decision: s.Label(risk.ORARisk(lm, lef)),
			})
		}
	}
	tbl, err := rough.NewTable([]string{"LM", "LEF"}, objects)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ap := tbl.ApproximateDecision([]string{"LEF"}, "VH")
		if len(ap.Lower) != 0 {
			b.Fatal("unexpected certainty")
		}
		if len(tbl.Reducts()) != 1 {
			b.Fatal("bad reducts")
		}
	}
}

// BenchmarkX4_CEGARLoop runs the two-level abstraction refinement loop
// with the plant oracle (experiment X4).
func BenchmarkX4_CEGARLoop(b *testing.B) {
	types := watertank.Types()
	coarse, err := epa.NewEngine(watertank.Model(), epa.NewBehaviorLibrary(types))
	if err != nil {
		b.Fatal(err)
	}
	fine, err := watertank.Engine()
	if err != nil {
		b.Fatal(err)
	}
	levels := []cegar.Level{
		{Name: "coarse", Engine: coarse,
			Mutations: watertank.PaperCandidates(), Requirements: watertank.Requirements()},
		{Name: "fine", Engine: fine,
			Mutations: watertank.PaperCandidates(), Requirements: watertank.Requirements()},
	}
	oracle := cegar.NewPlantOracle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cegar.Run(levels, oracle, -1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations != 2 {
			b.Fatal("unexpected iterations")
		}
	}
}

// BenchmarkX5_MitigationOptimization solves the §IV-D cost-benefit
// problem exactly and greedily (experiment X5).
func BenchmarkX5_MitigationOptimization(b *testing.B) {
	k := kb.MustDefaultKB()
	eng, err := watertank.Engine()
	if err != nil {
		b.Fatal(err)
	}
	muts := watertank.PaperCandidates()
	analysis, err := hazard.Analyze(eng, muts, -1, watertank.Requirements())
	if err != nil {
		b.Fatal(err)
	}
	problem := &optimize.Problem{Budget: -1}
	for _, m := range mitigation.Relevant(k, muts) {
		problem.Options = append(problem.Options, optimize.Option{ID: m.ID, Cost: m.Cost + m.MaintenanceCost})
	}
	problem.Scenarios = mitigation.PrepareLosses(k, analysis, muts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := problem.Optimal(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := problem.MultiPhase(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkS1_SolverScaling solves growing EPA encodings exhaustively
// (experiment S1): chains of n guarded nodes, full scenario choice.
func BenchmarkS1_SolverScaling(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			eng, muts := epaChain(b, n)
			prog, err := eng.EncodeASP()
			if err != nil {
				b.Fatal(err)
			}
			faults.EncodeChoice(prog, muts, -1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := solver.SolveProgram(prog, solver.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Models) != 1<<uint(n) {
					b.Fatalf("models = %d", len(res.Models))
				}
			}
		})
	}
}

// BenchmarkS2_EPAScaling runs the native fixpoint on growing chains
// (experiment S2).
func BenchmarkS2_EPAScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			eng, muts := epaChain(b, n)
			sc := epa.Scenario{muts[0].Activation}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkS3_ScenarioSpace enumerates k-of-n scenario spaces and checks
// the combinatorial growth, then sweeps each space through the EPA engine
// sequentially and with the worker pool (experiment S3). sweep-par uses
// GOMAXPROCS workers, so the speedup over sweep-seq shows only on
// multi-core hardware; results are identical either way.
func BenchmarkS3_ScenarioSpace(b *testing.B) {
	eng, muts := epaChain(b, 18)
	reqs := []hazard.Requirement{{
		ID:        "R-S3",
		Severity:  qual.High,
		Condition: hazard.Comp("n17", epa.ErrValue),
	}}
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("k=%d/enumerate", k), func(b *testing.B) {
			want, _ := faults.SpaceSize(len(muts), k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := faults.Enumerate(muts, k); int64(len(got)) != want {
					b.Fatal("size mismatch")
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/sweep-seq", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := hazard.AnalyzeParallel(eng, muts, k, reqs, 1)
				if err != nil {
					b.Fatal(err)
				}
				if len(a.Hazards()) == 0 {
					b.Fatal("no hazards")
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/sweep-par", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := hazard.AnalyzeParallel(eng, muts, k, reqs, 0)
				if err != nil {
					b.Fatal(err)
				}
				if len(a.Hazards()) == 0 {
					b.Fatal("no hazards")
				}
			}
		})
	}
}

// redundantStar builds the pruning worst-case-turned-best-case: n
// identical sensors (corrupt violates, stuck does not) feeding one hub
// watched by the requirement. Dominance kills every superset of a
// violating singleton and symmetry folds the sensors into one orbit
// class, so the pruned sweep executes a tiny fraction of the space.
func redundantStar(b *testing.B, n int) (*epa.Engine, []faults.Mutation, []hazard.Requirement) {
	b.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "sensor",
		Ports: []sysmodel.PortSpec{
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "corrupt", Likelihood: "M"}, {Name: "stuck", Likelihood: "L"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "hub",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "crash", Likelihood: "L"}},
	})
	m := sysmodel.NewModel("redundant-star")
	m.MustAddComponent(&sysmodel.Component{ID: "hub", Type: "hub"})
	var muts []faults.Mutation
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%02d", i)
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: "sensor"})
		m.Connect(id, "out", "hub", "in", sysmodel.SignalFlow)
		muts = append(muts,
			faults.Mutation{Activation: epa.Activation{Component: id, Fault: "corrupt"}, Likelihood: qual.Medium},
			faults.Mutation{Activation: epa.Activation{Component: id, Fault: "stuck"}, Likelihood: qual.Low})
	}
	muts = append(muts, faults.Mutation{
		Activation: epa.Activation{Component: "hub", Fault: "crash"}, Likelihood: qual.Low})
	lib := epa.NewBehaviorLibrary(types)
	lib.MustRegister(&epa.TypeBehavior{
		Type: "sensor",
		Effects: []epa.FaultEffect{
			{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrValue)},
			{Fault: "stuck", Port: "out", Emit: epa.StateOf(epa.ErrTiming)},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type:      "hub",
		Effects:   []epa.FaultEffect{{Fault: "crash", Port: "out", Emit: epa.StateOf(epa.ErrOmission)}},
		Transfers: epa.IdentityTransfers("in", "out"),
	})
	eng, err := epa.NewEngine(m, lib)
	if err != nil {
		b.Fatal(err)
	}
	reqs := []hazard.Requirement{{
		ID: "R-HUB", Severity: qual.High, Condition: hazard.Comp("hub", epa.ErrValue),
	}}
	return eng, muts, reqs
}

// BenchmarkS3_PrunedSweep measures the tentpole of the pruning work
// (experiment S3, pruned arms): the same redundant plant swept
// exhaustively, with dominance + symmetry pruning, and as two
// rank-range shards. The pruned arm asserts the >= 5x reduction in
// executed scenarios that the report-identity tests license.
func BenchmarkS3_PrunedSweep(b *testing.B) {
	eng, muts, reqs := redundantStar(b, 12) // 25 candidates
	for _, k := range []int{4, 5} {
		total, ok := faults.SpaceSize(len(muts), k)
		if !ok {
			b.Fatal("space overflows")
		}
		b.Run(fmt.Sprintf("k=%d/exhaustive", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := hazard.AnalyzeSweep(eng, muts, k, reqs, hazard.SweepConfig{Parallelism: 2})
				if err != nil {
					b.Fatal(err)
				}
				if int64(len(a.Scenarios)) != total {
					b.Fatal("short sweep")
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/pruned", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := hazard.AnalyzeSweep(eng, muts, k, reqs, hazard.SweepConfig{Parallelism: 2, Prune: true})
				if err != nil {
					b.Fatal(err)
				}
				if int64(len(a.Scenarios)) != total {
					b.Fatal("short sweep")
				}
				if a.Sweep.Executed*5 > total {
					b.Fatalf("pruning reduction < 5x: executed %d of %d", a.Sweep.Executed, total)
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/sharded-2", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for s := 0; s < 2; s++ {
					a, err := hazard.AnalyzeSweep(eng, muts, k, reqs, hazard.SweepConfig{
						Parallelism: 2, Prune: true, ShardIndex: s, ShardCount: 2,
					})
					if err != nil {
						b.Fatal(err)
					}
					if len(a.Scenarios) == 0 {
						b.Fatal("empty shard")
					}
				}
			}
		})
	}
}

// epaChain builds a linear n-node model with one fault mode per node.
func epaChain(b *testing.B, n int) (*epa.Engine, []faults.Mutation) {
	b.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "node",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "corrupt", Likelihood: "L"}},
	})
	m := sysmodel.NewModel("chain")
	for i := 0; i < n; i++ {
		m.MustAddComponent(&sysmodel.Component{ID: fmt.Sprintf("n%d", i), Type: "node"})
	}
	for i := 0; i+1 < n; i++ {
		m.Connect(fmt.Sprintf("n%d", i), "out", fmt.Sprintf("n%d", i+1), "in", sysmodel.SignalFlow)
	}
	lib := epa.NewBehaviorLibrary(types)
	lib.MustRegister(&epa.TypeBehavior{
		Type:      "node",
		Effects:   []epa.FaultEffect{{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrValue)}},
		Transfers: epa.IdentityTransfers("in", "out"),
	})
	eng, err := epa.NewEngine(m, lib)
	if err != nil {
		b.Fatal(err)
	}
	muts, err := faults.Candidates(m, types, nil, faults.Options{IncludeSpontaneous: true})
	if err != nil {
		b.Fatal(err)
	}
	return eng, muts
}

// guardedChain builds src -> g1 -> ... -> gk -> sink where every guard
// can corrupt its output or (under a bypass fault) pass corruption
// through. Minimal cuts for "sink sees a corrupt value" then span k+1
// cardinality levels — {gk:corrupt}, {g(k-1):corrupt, gk:bypass}, ...,
// {src:corrupt, g1..gk:bypass} — so the enumeration climbs one
// optimization round per level, the workload experiment S4 measures.
func guardedChain(b *testing.B, k int) (*epa.Engine, []faults.Mutation, hazard.Requirement) {
	b.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "node",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "corrupt", Likelihood: "M"},
			{Name: "bypass", Likelihood: "L"},
		},
	})
	m := sysmodel.NewModel("guarded-chain")
	ids := []string{"src"}
	for i := 1; i <= k; i++ {
		ids = append(ids, fmt.Sprintf("g%d", i))
	}
	ids = append(ids, "sink")
	for _, id := range ids {
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: "node"})
	}
	for i := 0; i+1 < len(ids); i++ {
		m.Connect(ids[i], "out", ids[i+1], "in", sysmodel.SignalFlow)
	}
	lib := epa.NewBehaviorLibrary(types)
	lib.MustRegister(&epa.TypeBehavior{
		Type:    "node",
		Effects: []epa.FaultEffect{{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrValue)}},
		Transfers: []epa.TransferRule{
			{From: "in", Match: epa.StateOf(epa.ErrValue), To: "out",
				Emit: epa.StateOf(epa.ErrValue), WhenFault: "bypass"},
		},
	})
	eng, err := epa.NewEngine(m, lib)
	if err != nil {
		b.Fatal(err)
	}
	muts := []faults.Mutation{{
		Activation: epa.Activation{Component: "src", Fault: "corrupt"},
		Likelihood: qual.Medium, Sources: []string{"fault_mode"},
	}}
	for i := 1; i <= k; i++ {
		g := fmt.Sprintf("g%d", i)
		muts = append(muts,
			faults.Mutation{Activation: epa.Activation{Component: g, Fault: "corrupt"},
				Likelihood: qual.Medium, Sources: []string{"fault_mode"}},
			faults.Mutation{Activation: epa.Activation{Component: g, Fault: "bypass"},
				Likelihood: qual.Low, Sources: []string{"fault_mode"}})
	}
	req := hazard.Requirement{
		ID: "S4", Severity: qual.High,
		Condition: hazard.Comp("sink", epa.ErrValue),
	}
	return eng, muts, req
}

// BenchmarkS4_MultiShot contrasts persistent solver sessions with their
// single-shot equivalents (experiment S4). The cuts pair enumerates the
// guarded chain's minimal cut sets: the single-shot arm re-grounds the
// EPA encoding on every optimization round, the incremental arm grounds
// once and streams blocking constraints into the live session. The
// horizon pair checks a bounded-liveness property at growing horizons:
// the rebuild arm recompiles and re-grounds the unrolling per horizon,
// the incremental arm extends one session with only the new time steps.
func BenchmarkS4_MultiShot(b *testing.B) {
	const guards = 6
	eng, muts, req := guardedChain(b, guards)
	b.Run("cuts/incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cuts, err := hazard.MinimalCutsASP(eng, muts, req, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(cuts) != guards+1 {
				b.Fatalf("cuts = %d, want %d", len(cuts), guards+1)
			}
		}
	})
	b.Run("cuts/single-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cuts, err := hazard.MinimalCutsASPSingleShot(eng, muts, req, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(cuts) != guards+1 {
				b.Fatalf("cuts = %d, want %d", len(cuts), guards+1)
			}
		}
	})

	// A requirement suite over the tank events, checked at every horizon:
	// the per-horizon work is dominated by compiling and grounding the
	// formula encodings, which the incremental arm does exactly once.
	suite := []temporal.Formula{
		temporal.Globally(temporal.Implies(temporal.P("overflow"), temporal.Finally(temporal.P("alerted")))),
		temporal.Finally(temporal.P("overflow")),
		temporal.Globally(temporal.Not(temporal.And(temporal.P("overflow"), temporal.P("alerted")))),
		temporal.Until(temporal.Not(temporal.P("alerted")), temporal.P("overflow")),
		temporal.Release(temporal.P("overflow"), temporal.Not(temporal.P("alerted"))),
		temporal.Finally(temporal.And(temporal.P("overflow"), temporal.Next(temporal.P("alerted")))),
		temporal.Globally(temporal.Or(temporal.P("overflow"), temporal.WeakNext(temporal.P("alerted")))),
		temporal.Implies(temporal.Finally(temporal.P("alerted")), temporal.Finally(temporal.P("overflow"))),
	}
	horizons := []int{5, 10, 15, 20}
	tick := func(prog *logic.Program, t int) {
		if t%3 == 1 {
			prog.AddFact(logic.A("overflow", logic.Num(t)))
		}
		if t%3 == 2 {
			prog.AddFact(logic.A("alerted", logic.Num(t)))
		}
	}
	// Ground truth per horizon from the native evaluator.
	want := map[int][]bool{}
	for _, h := range horizons {
		tr := make(temporal.Trace, h)
		for t := 0; t < h; t++ {
			st := temporal.State{}
			if t%3 == 1 {
				st["overflow"] = true
			}
			if t%3 == 2 {
				st["alerted"] = true
			}
			tr[t] = st
		}
		for _, f := range suite {
			want[h] = append(want[h], temporal.Eval(f, tr))
		}
	}
	check := func(b *testing.B, h int, m solver.Model, preds []string) {
		b.Helper()
		for fi, pred := range preds {
			if m.Contains(pred+"(0)") != want[h][fi] {
				b.Fatalf("h=%d formula %d: wrong verdict", h, fi)
			}
		}
	}
	b.Run("horizon/incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inc, err := temporal.NewIncremental(horizons[0])
			if err != nil {
				b.Fatal(err)
			}
			preds := make([]string, len(suite))
			for fi, f := range suite {
				if preds[fi], err = inc.Compile(f); err != nil {
					b.Fatal(err)
				}
			}
			next := 0
			for hi, h := range horizons {
				if h > inc.Horizon() {
					if err := inc.Extend(h - inc.Horizon()); err != nil {
						b.Fatal(err)
					}
				}
				facts := &logic.Program{}
				for ; next < h; next++ {
					tick(facts, next)
				}
				if err := inc.Add(facts); err != nil {
					b.Fatal(err)
				}
				// Re-verify the suite at every tracked horizon — the single
				// grounding answers each bound by one assumption flip.
				for _, q := range horizons[:hi+1] {
					res, err := inc.Solve(q, nil, solver.Options{MaxModels: 1})
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Models) != 1 {
						b.Fatalf("h=%d: %d models", q, len(res.Models))
					}
					check(b, q, res.Models[0], preds)
				}
			}
			inc.Close()
		}
	})
	b.Run("horizon/rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for hi := range horizons {
				for _, q := range horizons[:hi+1] {
					prog := &logic.Program{}
					for t := 0; t < q; t++ {
						tick(prog, t)
					}
					u := temporal.NewUnroller(q)
					u.EnsureTime(prog)
					preds := make([]string, len(suite))
					var err error
					for fi, f := range suite {
						if preds[fi], err = u.Compile(prog, f); err != nil {
							b.Fatal(err)
						}
					}
					res, err := solver.SolveProgram(prog, solver.Options{MaxModels: 1})
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Models) != 1 {
						b.Fatalf("h=%d: %d models", q, len(res.Models))
					}
					check(b, q, res.Models[0], preds)
				}
			}
		}
	})
}

// redundantCutsProgram encodes minimal-cut enumeration over a
// defense-in-depth architecture: the system is violated only when every
// one of `groups` defensive layers is breached, and a layer is breached
// when any of its `size` (randomly shared) elements is compromised. A
// minimal cut is then a minimum hitting set over the layers — the
// NP-hard core of minimal-cut analysis that the EPA chain models never
// reach (their OR-only propagation keeps cuts propagation-easy). The
// fixed seed makes the instance reproducible across runs and arms.
func redundantCutsProgram(elems, groups, size int, seed int64) *logic.Program {
	rng := rand.New(rand.NewSource(seed))
	prog := &logic.Program{}
	name := func(e int) logic.Term { return logic.Sym(fmt.Sprintf("e%02d", e)) }
	for i := 0; i < elems; i++ {
		prog.AddFact(logic.A("elem", name(i)))
	}
	prog.AddRule(logic.ChoiceRule(logic.Unbounded, logic.Unbounded, []logic.ChoiceElem{{
		Atom: logic.A("active", logic.Var("E")),
		Cond: []logic.Literal{logic.Pos(logic.A("elem", logic.Var("E")))},
	}}))
	var all []logic.BodyElem
	for g := 0; g < groups; g++ {
		breached := logic.A("breached", logic.Num(g))
		seen := map[int]bool{}
		for len(seen) < size {
			e := rng.Intn(elems)
			if seen[e] {
				continue
			}
			seen[e] = true
			prog.AddRule(logic.NormalRule(breached, logic.Pos(logic.A("active", name(e)))))
		}
		all = append(all, logic.Pos(breached))
	}
	prog.AddRule(logic.NormalRule(logic.A("violated"), all...))
	prog.AddRule(logic.Constraint(logic.Not(logic.A("violated"))))
	prog.AddMinimize(logic.MinimizeElem{
		Weight: logic.Num(1), Priority: 1,
		Tuple: []logic.Term{logic.Var("E")},
		Cond:  []logic.BodyElem{logic.Pos(logic.A("active", logic.Var("E")))},
	})
	return prog
}

// enumerateRedundantCuts runs the deep cut-enumeration loop on one
// session: each round proves the current cardinality level optimal,
// collects its complete cut batch, blocks every cut, and re-queries the
// retained session — the MinimalCutsASP loop at the solver level. A nil
// bud leaves the worker pool ungoverned (helpers always launch).
func enumerateRedundantCuts(prog *logic.Program, workers, rounds int, bud *budget.Budget) (int, error) {
	sess, err := solver.NewSession(prog, solver.Options{Workers: workers, Budget: bud})
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	cuts := 0
	for r := 0; r < rounds; r++ {
		res, err := sess.SolveAssuming(nil, solver.Options{Optimize: true})
		if err != nil {
			return 0, err
		}
		if len(res.Models) == 0 {
			break
		}
		cuts += len(res.Models)
		block := &logic.Program{}
		for _, m := range res.Models {
			var body []logic.BodyElem
			for _, atom := range m.WithPredicate("active") {
				elem := strings.TrimSuffix(strings.TrimPrefix(atom, "active("), ")")
				body = append(body, logic.Pos(logic.A("active", logic.Sym(elem))))
			}
			block.AddRule(logic.Constraint(body...))
		}
		if err := sess.Add(block); err != nil {
			return 0, err
		}
	}
	return cuts, nil
}

// BenchmarkS5_PortfolioCuts races the solver portfolio against the
// single engine on the hardest ASP workload in the suite: deep
// minimal-cut enumeration over a redundant defense-in-depth instance
// (experiment S5). The optimization round proves the cardinality level
// optimal before enumerating its cuts, so search dominates grounding;
// the portfolio arms race diversified engines, sharing learned clauses
// and `#minimize` bounds. Three arms:
//
//   - workers=1 is byte-for-byte the pre-portfolio code path — its
//     number doubles as the regression baseline;
//   - workers=4 is the raw portfolio: on multi-core hardware the race
//     wins wall-clock, on a single core it pays the time-sharing tax
//     (all engines share one CPU), which this arm bounds;
//   - workers=4-governed is the production wiring: a worker-pool
//     governor sized by GOMAXPROCS grants helpers only when cores
//     exist, so the arm matches workers=4 on multi-core and collapses
//     to the workers=1 baseline on one core.
//
// Run with -cpu=1,4 to see the governed arm flip between the two
// behaviors.
func BenchmarkS5_PortfolioCuts(b *testing.B) {
	const (
		elems  = 36
		groups = 80
		size   = 3
		seed   = 7
		rounds = 1
	)
	prog := redundantCutsProgram(elems, groups, size, seed)
	want, err := enumerateRedundantCuts(prog, 1, rounds, nil)
	if err != nil {
		b.Fatal(err)
	}
	if want == 0 {
		b.Fatal("degenerate instance: no cuts")
	}
	run := func(b *testing.B, workers int, governed bool) {
		for i := 0; i < b.N; i++ {
			var bud *budget.Budget
			if governed {
				gov := budget.NewGovernor(0) // GOMAXPROCS-sized, as core.RunCtx wires it
				ctx := budget.ContextWithGovernor(context.Background(), gov)
				bud = budget.New(ctx, budget.Limits{})
			}
			got, err := enumerateRedundantCuts(prog, workers, rounds, bud)
			if err != nil {
				b.Fatal(err)
			}
			if got != want {
				b.Fatalf("cuts = %d, want %d", got, want)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1, false) })
	b.Run("workers=4", func(b *testing.B) { run(b, 4, false) })
	b.Run("workers=4-governed", func(b *testing.B) { run(b, 4, true) })
}

// BenchmarkAblation_Abstraction contrasts the two abstraction levels of
// the behaviour model (DESIGN.md ablation): the conservative default
// behaviours against the detailed case-study behaviours, measuring both
// runtime and the hazard over-approximation each produces.
func BenchmarkAblation_Abstraction(b *testing.B) {
	types := watertank.Types()
	coarseEng, err := epa.NewEngine(watertank.Model(), epa.NewBehaviorLibrary(types))
	if err != nil {
		b.Fatal(err)
	}
	fineEng, err := watertank.Engine()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		eng  *epa.Engine
	}{
		{"coarse-default-behaviors", coarseEng},
		{"fine-detailed-behaviors", fineEng},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var hazards int
			for i := 0; i < b.N; i++ {
				analysis, err := hazard.Analyze(tc.eng, watertank.PaperCandidates(), -1, watertank.Requirements())
				if err != nil {
					b.Fatal(err)
				}
				hazards = len(analysis.Hazards())
			}
			b.ReportMetric(float64(hazards), "hazards")
		})
	}
}

// BenchmarkAblation_MaxCardinality sweeps the scenario-cardinality bound:
// the analysis cost grows with the scenario space while the hazard set
// saturates (monotone analyses find every singleton-rooted hazard early).
func BenchmarkAblation_MaxCardinality(b *testing.B) {
	eng, err := watertank.Engine()
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var hazards int
			for i := 0; i < b.N; i++ {
				analysis, err := hazard.Analyze(eng, watertank.PaperCandidates(), k, watertank.Requirements())
				if err != nil {
					b.Fatal(err)
				}
				hazards = len(analysis.Hazards())
			}
			b.ReportMetric(float64(hazards), "hazards")
		})
	}
}

// s6Fixture builds the per-arm config factory for the delta
// re-assessment benchmark: make(rev) returns a fresh Config whose model
// carries a one-component metadata edit stamped rev ("" = the baseline
// model). The libraries behind the config are constructed once and
// shared — the artifact cache identifies them by pointer.
type s6Fixture struct {
	name string
	make func(rev string) core.Config
}

func s6Fixtures(b *testing.B) []s6Fixture {
	b.Helper()
	// Fig. 1 case study over the full mutation surface: spontaneous and
	// KB-derived candidates on top of the paper's scenario set, at
	// cardinality 4.
	wtTypes := watertank.Types()
	wtBehaviors := watertank.Behaviors(wtTypes)
	wtReqs := watertank.Requirements()
	wtKB := kb.MustDefaultKB()
	fig1 := func(rev string) core.Config {
		m := watertank.Model()
		if rev != "" {
			c, _ := m.Component(plant.CompTank)
			c.SetAttr("rev", rev)
		}
		return core.Config{
			Model:           m,
			Types:           wtTypes,
			Behaviors:       wtBehaviors,
			KB:              wtKB,
			Requirements:    wtReqs,
			ExtraMutations:  watertank.PaperCandidates(),
			MutationSources: faults.AllSources(),
			MaxCardinality:  4,
		}
	}

	// The sme-plant model (models/sme-plant.json rebuilt in code — the
	// benchmark measures re-assessment, not JSON decoding) at cardinality
	// 3, mirroring the CLI's derived requirement over the criticality-VH
	// press.
	typesData, err := os.ReadFile("models/types.json")
	if err != nil {
		b.Fatal(err)
	}
	smeTypes, err := sysmodel.ReadTypesJSON(bytes.NewReader(typesData))
	if err != nil {
		b.Fatal(err)
	}
	var pressConds []hazard.Condition
	for _, mode := range epa.AllModes {
		pressConds = append(pressConds, hazard.Comp("press", mode))
	}
	smeReqs := []hazard.Requirement{{
		ID: "RC", Severity: qual.High, Condition: hazard.Any(pressConds...),
	}}
	sme := func(rev string) core.Config {
		m := sysmodel.NewModel("sme-plant")
		m.MustAddComponent(&sysmodel.Component{ID: "office_ws", Type: "workstation",
			Attrs: map[string]string{"exposure": "public", "version": "10"}})
		m.MustAddComponent(&sysmodel.Component{ID: "scada", Type: "scada_server",
			Attrs: map[string]string{"version": "5.0"}})
		m.MustAddComponent(&sysmodel.Component{ID: "plc1", Type: "plc",
			Attrs: map[string]string{"version": "fw2.3"}})
		m.MustAddComponent(&sysmodel.Component{ID: "panel", Type: "hmi"})
		m.MustAddComponent(&sysmodel.Component{ID: "press", Type: "actuator",
			Attrs: map[string]string{"criticality": "VH"}})
		m.Connect("office_ws", "net", "scada", "fromit", sysmodel.SignalFlow)
		m.Connect("scada", "toplc", "plc1", "in", sysmodel.SignalFlow)
		m.Connect("scada", "tohmi", "panel", "in", sysmodel.SignalFlow)
		m.Connect("plc1", "cmd", "press", "cmd", sysmodel.SignalFlow)
		if rev != "" {
			c, _ := m.Component("panel")
			c.SetAttr("rev", rev)
		}
		return core.Config{
			Model:           m,
			Types:           smeTypes,
			KB:              wtKB,
			Requirements:    smeReqs,
			MutationSources: faults.AllSources(),
			MaxCardinality:  3,
		}
	}
	return []s6Fixture{{"fig1", fig1}, {"sme-plant", sme}}
}

// s6Canonical renders the report content that must match between a
// delta re-assessment and a cold run (effort statistics and the
// resolution stamp excluded).
func s6Canonical(b *testing.B, a *core.Assessment) string {
	b.Helper()
	s := a.Summarize()
	s.Sweep = nil
	s.Solver = nil
	s.Artifact = nil
	s.DurationMS = 0
	data, err := json.Marshal(s)
	if err != nil {
		b.Fatal(err)
	}
	return string(data)
}

// BenchmarkS6_DeltaReassess measures the artifact cache's repeat-run
// promise (experiment S6): assess a base model cold, then re-assess
// after a one-component edit. The cold arm pays the full pipeline every
// iteration; the warm-delta arm resolves against the cached parent and
// re-executes only the invalidated scenario ranks — each iteration uses
// a fresh edit stamp so it exercises the delta path, never the exact
// warm hit. The warm-delta arm also asserts, outside the timed loop,
// that the delta report is byte-identical to a cold run of the same
// edited model.
func BenchmarkS6_DeltaReassess(b *testing.B) {
	for _, fx := range s6Fixtures(b) {
		b.Run(fx.name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := core.Run(fx.make(""))
				if err != nil {
					b.Fatal(err)
				}
				if len(a.Analysis.Scenarios) == 0 {
					b.Fatal("empty analysis")
				}
			}
		})
		b.Run(fx.name+"/warm-delta", func(b *testing.B) {
			ac := artifact.New(0)
			defer ac.Close()
			seed := fx.make("")
			seed.ArtifactCache = ac
			if _, err := core.Run(seed); err != nil {
				b.Fatal(err)
			}
			// Identity gate: delta report == cold report for one edit.
			check := fx.make("identity-check")
			check.ArtifactCache = ac
			warm, err := core.Run(check)
			if err != nil {
				b.Fatal(err)
			}
			if warm.Artifact == nil || warm.Artifact.Path != "delta" {
				b.Fatalf("artifact = %+v, want delta", warm.Artifact)
			}
			cold, err := core.Run(fx.make("identity-check"))
			if err != nil {
				b.Fatal(err)
			}
			if s6Canonical(b, warm) != s6Canonical(b, cold) {
				b.Fatal("delta report diverged from cold run")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := fx.make("rev" + strconv.Itoa(i))
				cfg.ArtifactCache = ac
				a, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if a.Artifact == nil || a.Artifact.Path != "delta" {
					b.Fatalf("artifact = %+v, want delta", a.Artifact)
				}
			}
		})
	}
}

// BenchmarkX6_DynamicTrajectory solves the Listing 2-style dynamic
// qualitative model of the tank over a 20-step horizon (experiment X6).
func BenchmarkX6_DynamicTrajectory(b *testing.B) {
	sys := dynamics.WaterTank()
	inj := []dynamics.Injection{{Key: dynamics.KeyF4}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := sys.Run(20, inj)
		if err != nil {
			b.Fatal(err)
		}
		if !dynamics.Overflowed(tr) {
			b.Fatal("no overflow")
		}
	}
}

// BenchmarkS7_ServedWarmPath compares the warm-path latency of the two
// front-ends on the same model (experiment S7): "cli" is an in-process
// core.Run resolving warm against the artifact cache — what a
// riskassess -watch cycle pays — and "served" is the full service round
// trip (HTTP submit, job queue, poll, report fetch) against a riskserve
// instance whose cache is equally warm. The gap is the price of the
// service envelope: HTTP, the async job model, and per-request
// observability.
func BenchmarkS7_ServedWarmPath(b *testing.B) {
	modelBytes, err := os.ReadFile("models/sme-plant.json")
	if err != nil {
		b.Fatal(err)
	}
	tf, err := os.Open("models/types.json")
	if err != nil {
		b.Fatal(err)
	}
	types, err := sysmodel.ReadTypesJSON(tf)
	tf.Close()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cli", func(b *testing.B) {
		model, err := sysmodel.ReadJSON(bytes.NewReader(modelBytes))
		if err != nil {
			b.Fatal(err)
		}
		reqs, err := hazard.GenericRequirements(model)
		if err != nil {
			b.Fatal(err)
		}
		ac := artifact.New(0)
		defer ac.Close()
		cfg := core.Config{
			Model:           model,
			Types:           types,
			KB:              kb.MustDefaultKB(),
			Requirements:    reqs,
			MutationSources: faults.AllSources(),
			MaxCardinality:  1,
			Budget:          -1,
			ArtifactCache:   ac,
		}
		if _, err := core.Run(cfg); err != nil { // cold fill
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if a.Artifact == nil || a.Artifact.Path != "warm" {
				b.Fatalf("artifact = %+v, want warm", a.Artifact)
			}
		}
	})

	b.Run("served", func(b *testing.B) {
		s, err := serve.New(serve.Options{Types: types, MaxCardinality: 1})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s)
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Drain(ctx)
		}()
		roundTrip := func() string {
			req, err := http.NewRequest("POST", ts.URL+"/v1/assess", bytes.NewReader(modelBytes))
			if err != nil {
				b.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			var st struct {
				ID           string `json:"id"`
				State        string `json:"state"`
				ArtifactPath string `json:"artifactPath"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			for st.State != "done" && st.State != "failed" {
				r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
				if err != nil {
					b.Fatal(err)
				}
				if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
					b.Fatal(err)
				}
				r.Body.Close()
			}
			if st.State != "done" {
				b.Fatalf("job state %s", st.State)
			}
			r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/report")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			return st.ArtifactPath
		}
		if path := roundTrip(); path != "cold" { // cold fill
			b.Fatalf("first round trip resolved %q, want cold", path)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if path := roundTrip(); path != "warm" {
				b.Fatalf("artifact %q, want warm", path)
			}
		}
	})
}
