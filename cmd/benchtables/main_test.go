package main

import "testing"

func TestRunAll(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleSections(t *testing.T) {
	for _, flag := range []string{"-table1", "-table2", "-fig1", "-fig2", "-fig3", "-fig4"} {
		if err := run([]string{flag}); err != nil {
			t.Fatalf("%s: %v", flag, err)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("expected flag error")
	}
}
