package sysmodel

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	m, _ := testModel(t)
	ls, _ := m.Component("ls")
	ls.Layer = "physical"
	ls.SetAttr("exposure", "public")
	tank, _ := m.Component("tank")
	tank.Layer = "physical"
	tank.SetAttr("criticality", "VH")

	var buf bytes.Buffer
	if err := m.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"mini-plant\"",
		"subgraph cluster_",
		"\"ls\" ->",
		"dir=both style=dashed", // quantity flows
		"fillcolor=lightcoral",  // exposure highlight
		"fillcolor=lightgoldenrod",
		"rankdir=LR",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Deterministic rendering.
	var buf2 bytes.Buffer
	if err := m.WriteDOT(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("DOT output not deterministic")
	}
}

func TestWriteDOTComposite(t *testing.T) {
	m := NewModel("h")
	m.MustAddComponent(compositeWorkstation())
	var buf bytes.Buffer
	if err := m.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "peripheries=2") {
		t.Error("composite marker missing")
	}
}

func TestEscapeDOT(t *testing.T) {
	m := NewModel(`quo"ted`)
	m.MustAddComponent(&Component{ID: "a", Type: "t", Name: `we"ird`})
	var buf bytes.Buffer
	if err := m.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `we"ird`) {
		t.Error("unescaped quote in DOT output")
	}
}
