// Command riskassess runs the full assessment pipeline on a system model
// loaded from JSON: candidate-mutation generation from the built-in
// security knowledge base, exhaustive hazard identification against the
// model's LTLf requirements (interpreted as topology-criticality checks
// when no behaviour library exists), risk ranking, and mitigation
// optimization.
//
// Usage:
//
//	riskassess -model model.json -types types.json [-maxcard 2] [-asp]
//	           [-optimize] [-budget N] [-mitigations M-0917,M-0949]
//	           [-timeout 30s] [-max-decisions N] [-max-scenarios N]
//	           [-parallel N] [-top N] [-trace out.json]
//	           [-checkpoint dir] [-cache dir]
//	           [-delta old.json] [-watch [-watch-interval d] [-watch-max N]]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Repeat runs: -delta old.json assesses the older model first to warm an
// in-process artifact cache, then assesses -model incrementally — only
// scenarios invalidated by the edit re-execute. -watch keeps the process
// alive, re-assessing -model whenever the file changes; successive runs
// resolve warm (unchanged) or delta (small edit) against the cache.
//
// Requirements in the model file carry LTLf formulas for documentation;
// the generic violation condition used here flags a requirement when any
// component marked criticality H/VH exhibits any error mode.
//
// The resource flags make the run an anytime computation: when the
// timeout or a cap fires, the tool reports the partial results it
// completed plus a degradation summary saying exactly what was cut short.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"cpsrisk/internal/artifact"
	"cpsrisk/internal/budget"
	"cpsrisk/internal/core"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/serve"
	"cpsrisk/internal/sysmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riskassess:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("riskassess", flag.ContinueOnError)
	modelPath := fs.String("model", "", "system model JSON (required)")
	typesPath := fs.String("types", "", "component-type library JSON (required)")
	maxCard := fs.Int("maxcard", 2, "maximum simultaneous activations (-1 = unbounded)")
	useASP := fs.Bool("asp", false, "use the ASP engine for hazard identification")
	doOpt := fs.Bool("optimize", false, "run mitigation cost-benefit optimization")
	mitBudget := fs.Int("budget", -1, "mitigation budget (-1 = unlimited)")
	mitigations := fs.String("mitigations", "", "comma-separated active mitigation IDs")
	jsonOut := fs.Bool("json", false, "emit the machine-readable JSON summary instead of text")
	dotPath := fs.String("dot", "", "also write the model as GraphViz DOT to this file")
	timeout := fs.Duration("timeout", 0, "wall-clock limit for the whole run (0 = none); partial results on expiry")
	maxDecisions := fs.Int64("max-decisions", 0, "cap on ASP solver branching decisions (0 = unlimited)")
	maxScenarios := fs.Int("max-scenarios", 0, "cap on analyzed scenarios (0 = unlimited)")
	parallel := fs.Int("parallel", runtime.NumCPU(), "scenario-sweep workers (1 = sequential; results are identical)")
	solverWorkers := fs.Int("solver-workers", 1, "ASP portfolio engines per query (0 = derive from -parallel, 1 = single engine)")
	solverDet := fs.Bool("solver-det", false, "deterministic ASP search: forces a single engine so reports are byte-identical across runs")
	topN := fs.Int("top", 20, "ranked scenarios to print (0 = all)")
	noPrune := fs.Bool("no-prune", false, "disable sweep pruning (dominance skipping + symmetry orbits); every scenario runs through the EPA engine")
	shard := fs.String("shard", "", "sweep one rank-range shard of the scenario space, as \"i/m\" (0-based index i of m shards); shards share -cache and merge via a final whole-space run")
	checkpointDir := fs.String("checkpoint", "", "persist sweep checkpoints (and the result cache) in this directory; an interrupted run resumes from it")
	cacheDir := fs.String("cache", "", "persist the EPA result cache in this directory (defaults to <checkpoint>/cache when -checkpoint is set)")
	deltaOld := fs.String("delta", "", "assess this older model first to warm the artifact cache, then assess -model incrementally against it")
	watch := fs.Bool("watch", false, "keep running and re-assess -model whenever the file changes; repeat runs resolve warm or delta from the artifact cache")
	watchInterval := fs.Duration("watch-interval", 500*time.Millisecond, "poll interval for -watch")
	watchMax := fs.Int("watch-max", 0, "stop -watch after this many assessments (0 = run until interrupted)")
	tracePath := fs.String("trace", "", "trace the run and write Chrome trace_event JSON to this file (chrome://tracing, Perfetto)")
	traceID := fs.String("trace-id", "", "correlation ID stamped into the report summary and the trace export")
	artifactCache := fs.Bool("artifact-cache", false, "arm the in-process artifact cache even for a single run (the service default); the run reports its cold/warm/delta resolution")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *typesPath == "" {
		fs.Usage()
		return fmt.Errorf("-model and -types are required")
	}
	shardIndex, shardCount, err := parseShard(*shard)
	if err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "riskassess: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "riskassess: memprofile:", err)
			}
		}()
	}

	// Fault injection is armed exclusively from the environment
	// (CPSRISK_FAULTS / CPSRISK_FAULT_SEED) so production invocations
	// can't trip it by flag typo; unset env means a nil injector and
	// nil-check-only overhead.
	injector, err := faultinject.FromEnv()
	if err != nil {
		return err
	}

	types, err := loadTypes(*typesPath)
	if err != nil {
		return err
	}
	active := map[string]bool{}
	if *mitigations != "" {
		for _, id := range strings.Split(*mitigations, ",") {
			active[strings.TrimSpace(id)] = true
		}
	}
	knowledge := kb.MustDefaultKB()

	// The artifact cache pays off only across runs inside one process, so
	// it is armed exactly for the repeat-run modes.
	var ac *artifact.Cache
	if *watch || *deltaOld != "" || *artifactCache {
		ac = artifact.New(0)
		defer ac.Close()
	}

	// assess loads and runs one model file. The type library and KB are
	// shared across every run in this process — the artifact cache
	// identifies them by pointer, so repeat runs must present the same
	// instances to hash to the same configuration. Tracing is
	// per-assessment: the trace file always holds the latest run.
	assess := func(path string) (*core.Assessment, *sysmodel.Model, error) {
		var trace *obs.Trace
		var metrics *obs.Registry
		if *tracePath != "" {
			trace = obs.New("assessment")
			metrics = obs.NewRegistry()
		}
		model, err := loadModel(path)
		if err != nil {
			return nil, nil, err
		}
		reqs, err := hazard.GenericRequirements(model)
		if err != nil {
			return nil, nil, err
		}
		a, err := core.Run(core.Config{
			Model:               model,
			Types:               types,
			KB:                  knowledge,
			Requirements:        reqs,
			MutationSources:     faults.AllSources(),
			ActiveMitigations:   active,
			MaxCardinality:      *maxCard,
			UseASP:              *useASP,
			Optimize:            *doOpt,
			Budget:              *mitBudget,
			Parallelism:         *parallel,
			SolverWorkers:       *solverWorkers,
			SolverDeterministic: *solverDet,
			TraceID:             *traceID,
			Trace:               trace,
			Metrics:             metrics,
			CheckpointDir:       *checkpointDir,
			CacheDir:            *cacheDir,
			NoPrune:             *noPrune,
			ShardIndex:          shardIndex,
			ShardCount:          shardCount,
			Faults:              injector,
			ArtifactCache:       ac,
			Resources: budget.Limits{
				Timeout:      *timeout,
				MaxDecisions: *maxDecisions,
				MaxScenarios: *maxScenarios,
			},
		})
		return a, model, err
	}

	emit := func(a *core.Assessment, model *sysmodel.Model) error {
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			// The correlation ID rides on the root span so downstream trace
			// tooling can join the export against logs and reports.
			var args map[string]any
			if *traceID != "" {
				args = map[string]any{"traceId": *traceID}
			}
			if err := obs.WriteChromeTraceSnapshotArgs(f, a.Trace, args); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *dotPath != "" {
			f, err := os.Create(*dotPath)
			if err != nil {
				return err
			}
			if err := model.WriteDOT(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *jsonOut {
			return a.WriteJSON(stdout)
		}
		fmt.Fprint(stdout, a.RenderFull(*topN))
		return nil
	}

	// -delta: warm the cache with the baseline model, discarding its
	// report; the main assessment below then resolves incrementally.
	if *deltaOld != "" {
		if _, _, err := assess(*deltaOld); err != nil {
			return fmt.Errorf("delta baseline %s: %v", *deltaOld, err)
		}
	}

	if *watch {
		// Each re-assessment cycle logs one structured line to stderr
		// (stdout stays the report stream), in the same JSON dialect the
		// service emits, so a supervised watch process is grep- and
		// dashboard-friendly.
		wlog := serve.NewJSONLogger(os.Stderr)
		runs := 0
		var last time.Time
		for {
			st, err := os.Stat(*modelPath)
			if err != nil {
				return err
			}
			if st.ModTime().Equal(last) {
				time.Sleep(*watchInterval)
				continue
			}
			cycleStart := time.Now()
			a, model, err := assess(*modelPath)
			if err != nil {
				// The file may be mid-write; report and retry next tick.
				fmt.Fprintln(os.Stderr, "riskassess: watch:", err)
				time.Sleep(*watchInterval)
				continue
			}
			last = st.ModTime()
			runs++
			artifactPath := ""
			if a.Artifact != nil {
				artifactPath = a.Artifact.Path
			}
			wlog.LogAttrs(context.Background(), slog.LevelInfo, "watch-cycle",
				slog.Int("run", runs),
				slog.String("model", *modelPath),
				slog.Time("trigger", st.ModTime()),
				slog.String("artifact", artifactPath),
				slog.Int64("durationMs", time.Since(cycleStart).Milliseconds()),
			)
			if !*jsonOut {
				fmt.Fprintf(stdout, "== watch run %d ==\n", runs)
			}
			if err := emit(a, model); err != nil {
				return err
			}
			if *watchMax > 0 && runs >= *watchMax {
				return nil
			}
		}
	}

	a, model, err := assess(*modelPath)
	if err != nil {
		return err
	}
	return emit(a, model)
}

// parseShard parses the -shard flag ("" = whole space, "i/m" = shard i
// of m, 0-based).
func parseShard(s string) (index, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/m\", e.g. 0/4", s)
	}
	index, err = strconv.Atoi(s[:i])
	if err == nil {
		count, err = strconv.Atoi(s[i+1:])
	}
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/m\", e.g. 0/4", s)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-shard %q: index must be in [0,%d)", s, count)
	}
	return index, count, nil
}

func loadModel(path string) (*sysmodel.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sysmodel.ReadJSON(f)
}

func loadTypes(path string) (*sysmodel.TypeLibrary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sysmodel.ReadTypesJSON(f)
}
