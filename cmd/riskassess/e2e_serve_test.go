package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"cpsrisk/internal/serve"
	"cpsrisk/internal/sysmodel"
)

// startServer boots an in-process riskserve configured identically to
// the CLI flags used by the e2e comparisons.
func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	f, err := os.Open("../../models/types.json")
	if err != nil {
		t.Fatal(err)
	}
	types, err := sysmodel.ReadTypesJSON(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Options{Types: types, MaxCardinality: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// serveReport submits the model and fetches the finished report body
// from the given endpoint suffix.
func serveReport(t *testing.T, ts *httptest.Server, traceID, suffix string) []byte {
	t.Helper()
	body, err := os.ReadFile("../../models/sme-plant.json")
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/assess", bytes.NewReader(body))
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + suffix)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", r.StatusCode)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// stripVolatile removes the lines carrying wall-clock numbers — the only
// fields allowed to differ between a served report and a CLI run.
func stripVolatile(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, `"durationMs"`) {
			// durationMs is omitempty, so a sub-millisecond run omits it
			// entirely. When it was the object's last field, dropping the
			// line leaves a dangling comma on the previous one — trim it
			// so presence vs absence of the field can't affect the diff.
			if !strings.HasSuffix(line, ",") && len(keep) > 0 {
				keep[len(keep)-1] = strings.TrimSuffix(keep[len(keep)-1], ",")
			}
			continue
		}
		if strings.Contains(line, "assessed in") ||
			strings.Contains(line, "sweep:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestServedReportMatchesCLIJSON: the service's JSON report for a model
// is byte-identical to `riskassess -json` on the same model — same
// configuration hash, same trace ID, same artifact-cache arming — once
// wall-clock duration lines are stripped. This is the contract that lets
// clients switch between the CLI and the service without re-parsing.
func TestServedReportMatchesCLIJSON(t *testing.T) {
	ts := startServer(t)
	served := serveReport(t, ts, "e2e-json", "/report")

	var cli bytes.Buffer
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-json",
		"-trace-id", "e2e-json",
		"-artifact-cache",
	}, &cli)
	if err != nil {
		t.Fatal(err)
	}

	got, want := stripVolatile(string(served)), stripVolatile(cli.String())
	if got != want {
		t.Errorf("served JSON report diverges from the CLI:\n--- served ---\n%s\n--- cli ---\n%s", got, want)
	}
}

// TestServedReportMatchesCLIText: same contract for the text deliverable.
func TestServedReportMatchesCLIText(t *testing.T) {
	ts := startServer(t)
	served := serveReport(t, ts, "e2e-text", "/report?format=text")

	var cli bytes.Buffer
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-artifact-cache",
	}, &cli)
	if err != nil {
		t.Fatal(err)
	}

	got, want := stripVolatile(string(served)), stripVolatile(cli.String())
	if got != want {
		t.Errorf("served text report diverges from the CLI:\n--- served ---\n%s\n--- cli ---\n%s", got, want)
	}
}
