package obs

import "context"

// The pipeline threads observability through context.Context — the same
// channel the resource budget already rides — so stages, worker pools,
// and solver sessions attach spans and metrics without API churn: a
// stage derives a context carrying its span, rebinds it into the budget
// it passes down, and every callee picks the span up with SpanFromContext.
// Lookups happen once per stage/worker/query (call boundaries), never in
// inner loops; inner loops hold the resolved *Span / *Counter and pay
// one nil check.

type spanKey struct{}
type registryKey struct{}

// ContextWithSpan returns ctx carrying s as the current span. A nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil when ctx carries none
// (including a nil ctx).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of ctx's current span and returns a context
// carrying it. Without a span in ctx this is a no-op returning (ctx,
// nil); the nil span is safe to End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return context.WithValue(ctx, spanKey{}, c), c
}

// ContextWithRegistry returns ctx carrying the metrics registry. A nil
// registry returns ctx unchanged.
func ContextWithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// RegistryFromContext returns the registry, or nil when ctx carries none
// (including a nil ctx). All Registry methods are nil-safe, so callers
// use the result unconditionally.
func RegistryFromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}
