// Command genmodels regenerates the sample JSON inputs under models/.
package main

import (
	"fmt"
	"os"

	"cpsrisk/internal/sysmodel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genmodels:", err)
		os.Exit(1)
	}
}

func run() error {
	types := sysmodel.NewTypeLibrary()
	sig := func(n string, d sysmodel.PortDir) sysmodel.PortSpec {
		return sysmodel.PortSpec{Name: n, Dir: d, Flow: sysmodel.SignalFlow}
	}
	types.MustAdd(&sysmodel.ComponentType{
		Name: "workstation", Layer: "application",
		Ports: []sysmodel.PortSpec{sig("net", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised", Likelihood: "M", AttackOnly: true},
			{Name: "crash", Likelihood: "VL"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "scada_server", Layer: "technology",
		Ports: []sysmodel.PortSpec{
			sig("fromit", sysmodel.In), sig("toplc", sysmodel.Out), sig("tohmi", sysmodel.Out),
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised", Likelihood: "L", AttackOnly: true},
			{Name: "crash", Likelihood: "VL"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "plc", Layer: "technology",
		Ports: []sysmodel.PortSpec{sig("in", sysmodel.In), sig("cmd", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised", Likelihood: "L", AttackOnly: true},
			{Name: "bad_command", Likelihood: "VL"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "hmi", Layer: "application",
		Ports: []sysmodel.PortSpec{sig("in", sysmodel.In)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "no_signal", Likelihood: "L"},
			{Name: "compromised", Likelihood: "L", AttackOnly: true},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "actuator", Layer: "physical",
		Ports: []sysmodel.PortSpec{sig("cmd", sysmodel.In)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "bad_command", Likelihood: "VL"},
			{Name: "jam", Likelihood: "L"},
		},
	})

	m := sysmodel.NewModel("sme-plant")
	add := func(id, typ string, attrs map[string]string) {
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: typ, Attrs: attrs})
	}
	add("office_ws", "workstation", map[string]string{"exposure": "public", "version": "10"})
	add("scada", "scada_server", map[string]string{"version": "5.0"})
	add("plc1", "plc", map[string]string{"version": "fw2.3"})
	add("panel", "hmi", nil)
	add("press", "actuator", map[string]string{"criticality": "VH"})
	s := sysmodel.SignalFlow
	m.Connect("office_ws", "net", "scada", "fromit", s)
	m.Connect("scada", "toplc", "plc1", "in", s)
	m.Connect("scada", "tohmi", "panel", "in", s)
	m.Connect("plc1", "cmd", "press", "cmd", s)
	m.AddRequirement(sysmodel.Requirement{
		ID: "R1", Description: "the press must stay error free",
		Formula: "G !comp_err(press)", Severity: "VH",
	})
	if err := m.Validate(types); err != nil {
		return err
	}

	tf, err := os.Create("models/types.json")
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := types.WriteJSON(tf); err != nil {
		return err
	}
	mf, err := os.Create("models/sme-plant.json")
	if err != nil {
		return err
	}
	defer mf.Close()
	return m.WriteJSON(mf)
}
