// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON benchmark ledger, merging the run under a label so that
// before/after snapshots of the same suite can live in one file:
//
//	go test -bench=. -benchmem ./... | benchjson -label after -out BENCH_PR3.json
//
// The output maps label -> benchmark name -> {nsPerOp, bytesPerOp,
// allocsPerOp}. Existing labels in -out are preserved; re-running with
// the same label replaces that label's entries. The trailing -<procs>
// GOMAXPROCS suffix go adds to benchmark names is stripped, so ledgers
// from machines with different core counts stay comparable by name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// benchLine matches `BenchmarkName-8  123  456 ns/op [789 B/op 12 allocs/op]`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "run", "label to file this run under")
	out := flag.String("out", "BENCH_PR3.json", "ledger file to merge into")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *label, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, echo io.Writer, label, outPath string) error {
	entries, err := parse(in, echo)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	ledger := map[string]map[string]Entry{}
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			return fmt.Errorf("existing ledger %s: %w", outPath, err)
		}
	}
	ledger[label] = entries
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(echo, "benchjson: %d benchmarks -> %s under label %q\n", len(names), outPath, label)
	if t := coldWarmTable(entries); t != "" {
		fmt.Fprint(echo, t)
	}
	return nil
}

// coldWarmTable renders the repeat-run comparison for benchmarks that
// come as `<base>/cold` + `<base>/warm-delta` sibling pairs (the
// artifact-cache suite): per-op time of each arm and the cold/warm
// speedup factor. Returns "" when the run holds no such pair.
func coldWarmTable(entries map[string]Entry) string {
	var bases []string
	for name := range entries {
		base, ok := strings.CutSuffix(name, "/cold")
		if !ok {
			continue
		}
		if _, ok := entries[base+"/warm-delta"]; ok {
			bases = append(bases, base)
		}
	}
	if len(bases) == 0 {
		return ""
	}
	sort.Strings(bases)
	var sb strings.Builder
	sb.WriteString("benchjson: cold vs warm-delta\n")
	for _, base := range bases {
		cold, warm := entries[base+"/cold"], entries[base+"/warm-delta"]
		speedup := 0.0
		if warm.NsPerOp > 0 {
			speedup = cold.NsPerOp / warm.NsPerOp
		}
		fmt.Fprintf(&sb, "  %-42s %11.0f ns cold %11.0f ns warm %6.1fx\n",
			base, cold.NsPerOp, warm.NsPerOp, speedup)
	}
	return sb.String()
}

// parse extracts benchmark entries from go test output, echoing every
// line so the tool is pipeline-transparent.
func parse(in io.Reader, echo io.Writer) (map[string]Entry, error) {
	entries := map[string]Entry{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		e := Entry{NsPerOp: ns}
		if m[3] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			e.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		entries[m[1]] = e
	}
	return entries, sc.Err()
}
