// Package faultinject is a deterministic, seed-driven fault-injection
// harness for the assessment pipeline. Robustness claims — the sweep
// resumes from its checkpoint, the cache quarantines torn writes, worker
// panics degrade instead of crashing — are only real if the failure
// paths run in tests. An Injector arms named sites scattered through the
// pipeline (worker chunks, EPA runs, cache writes, oracle checks, core
// stages) with failures that fire on exact, reproducible arrivals.
//
// The harness rides the same context carriage as the resource budget and
// the observability registry: a run installs its injector with
// ContextWith, internal/budget captures it once per Budget, and every
// instrumented site pays one pointer nil check when injection is off —
// the same disabled-cost contract the tracer honors.
//
// Failures are deterministic, not probabilistic: a site fires on its
// Nth arrival (an atomic per-site counter), on every arrival, or on a
// pseudo-random arrival derived from the seed and the site name — the
// same seed always yields the same schedule, so a chaos run is exactly
// reproducible and its report byte-comparable across executions.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical injection sites. Free-form site names work too; these
// constants document where the pipeline is instrumented.
const (
	// SiteEPARun fires at the entry of every EPA propagation run.
	SiteEPARun = "epa.run"
	// SiteSweepChunk fires at the start of every sweep worker chunk.
	SiteSweepChunk = "hazard.chunk"
	// SiteCheckpointWrite fires before the sweep frontier is persisted.
	SiteCheckpointWrite = "hazard.checkpoint"
	// SiteStoreWrite fires before a cache segment is written.
	SiteStoreWrite = "store.write"
	// SiteStoreRead fires on every cache lookup.
	SiteStoreRead = "store.read"
	// SiteOracle fires before every CEGAR oracle check.
	SiteOracle = "cegar.oracle"
	// SiteStagePrefix prefixes per-stage sites in core ("core.stage.hazard").
	SiteStagePrefix = "core.stage."
)

// Environment knobs read by FromEnv (and therefore by riskassess and the
// chaos scripts).
const (
	// EnvSpec holds the injection spec, e.g.
	// "hazard.chunk=panic@2,store.write=torn@1".
	EnvSpec = "CPSRISK_FAULTS"
	// EnvSeed holds the integer seed for @r sites (default 1).
	EnvSeed = "CPSRISK_FAULT_SEED"
)

// Action is what an armed site does when it fires.
type Action uint8

// Actions.
const (
	// ActErr returns a permanent *InjectedError (callers fail hard).
	ActErr Action = iota + 1
	// ActTransient returns an *InjectedError wrapped as transient
	// (callers retry with backoff).
	ActTransient
	// ActPanic panics inside the caller (exercises recover paths).
	ActPanic
	// ActCancel calls the cancel function bound with BindCancel
	// (simulates mid-flight cancellation) and returns nil.
	ActCancel
	// ActTorn returns an *InjectedError with Torn set; writers interpret
	// it by leaving a deliberately truncated file behind (simulating a
	// crash mid-write) before failing.
	ActTorn
)

var actionNames = map[string]Action{
	"err":       ActErr,
	"transient": ActTransient,
	"panic":     ActPanic,
	"cancel":    ActCancel,
	"torn":      ActTorn,
}

// String implements fmt.Stringer.
func (a Action) String() string {
	for n, v := range actionNames {
		if v == a {
			return n
		}
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// InjectedError is the failure an armed site returns.
type InjectedError struct {
	// Site is the injection site that fired.
	Site string
	// Arrival is the 1-based arrival index at which it fired.
	Arrival int64
	// Torn asks the writer to simulate a torn (partial) write.
	Torn bool
}

// Error implements error.
func (e *InjectedError) Error() string {
	kind := "failure"
	if e.Torn {
		kind = "torn write"
	}
	return fmt.Sprintf("faultinject: injected %s at %s (arrival %d)", kind, e.Site, e.Arrival)
}

// IsInjected unwraps err as an *InjectedError.
func IsInjected(err error) (*InjectedError, bool) {
	var e *InjectedError
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// IsTorn reports whether err asks for a torn-write simulation.
func IsTorn(err error) bool {
	e, ok := IsInjected(err)
	return ok && e.Torn
}

// armed is one site's arming plus its live arrival counter.
type armed struct {
	action   Action
	at       int64 // arrival that fires (1-based); 0 with every=true
	every    bool
	arrivals atomic.Int64
	fired    atomic.Int64
}

// Injector holds the armed sites of one chaos run. A nil *Injector is
// valid and inert; every method is nil-receiver safe. The rules map is
// immutable after New, so Fire is lock-free.
type Injector struct {
	seed  int64
	rules map[string]*armed

	mu     sync.Mutex
	cancel func()
}

// New parses a spec into an injector. The spec is a comma-separated list
// of armings:
//
//	site=action@N   fire on exactly the Nth arrival (1-based)
//	site=action@*   fire on every arrival
//	site=action@rM  fire once, on a seed-derived arrival in [1, M]
//
// with action one of err, transient, panic, cancel, torn. An empty spec
// yields a nil (inert) injector.
func New(seed int64, spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &Injector{seed: seed, rules: map[string]*armed{}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rest, ok := strings.Cut(part, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("faultinject: arming %q: want site=action@arrival", part)
		}
		actName, arr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: arming %q: missing @arrival", part)
		}
		action, ok := actionNames[actName]
		if !ok {
			return nil, fmt.Errorf("faultinject: arming %q: unknown action %q", part, actName)
		}
		a := &armed{action: action}
		switch {
		case arr == "*":
			a.every = true
		case strings.HasPrefix(arr, "r"):
			max, err := strconv.ParseInt(arr[1:], 10, 64)
			if err != nil || max < 1 {
				return nil, fmt.Errorf("faultinject: arming %q: bad random bound %q", part, arr)
			}
			a.at = 1 + int64(seededArrival(seed, site)%uint64(max))
		default:
			n, err := strconv.ParseInt(arr, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: arming %q: bad arrival %q", part, arr)
			}
			a.at = n
		}
		if _, dup := inj.rules[site]; dup {
			return nil, fmt.Errorf("faultinject: site %q armed twice", site)
		}
		inj.rules[site] = a
	}
	return inj, nil
}

// FromEnv builds an injector from the CPSRISK_FAULTS / CPSRISK_FAULT_SEED
// environment knobs; (nil, nil) when unset.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvSpec)
	if spec == "" {
		return nil, nil
	}
	seed := int64(1)
	if s := os.Getenv(EnvSeed); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s=%q: %w", EnvSeed, s, err)
		}
		seed = n
	}
	return New(seed, spec)
}

// seededArrival mixes the seed and the site name into a stable 64-bit
// value (FNV-1a then a splitmix64 finalizer) so @r armings are
// deterministic per (seed, site) yet spread across sites.
func seededArrival(seed int64, site string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, site)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// BindCancel installs the function ActCancel sites call — typically the
// cancel of the run's budget context.
func (i *Injector) BindCancel(fn func()) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.cancel = fn
	i.mu.Unlock()
}

// Seed returns the injector's seed (0 for nil).
func (i *Injector) Seed() int64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// Fire registers one arrival at the site and triggers its armed failure
// when the schedule says so: it panics (ActPanic), cancels (ActCancel,
// returning nil — the cancellation surfaces through the context), or
// returns the injected error. Unarmed sites and nil injectors return nil.
func (i *Injector) Fire(site string) error {
	if i == nil {
		return nil
	}
	a := i.rules[site]
	if a == nil {
		return nil
	}
	n := a.arrivals.Add(1)
	if !a.every && n != a.at {
		return nil
	}
	a.fired.Add(1)
	switch a.action {
	case ActPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s (arrival %d)", site, n))
	case ActCancel:
		i.mu.Lock()
		cancel := i.cancel
		i.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	case ActTransient:
		return Transient(&InjectedError{Site: site, Arrival: n})
	case ActTorn:
		return &InjectedError{Site: site, Arrival: n, Torn: true}
	default:
		return &InjectedError{Site: site, Arrival: n}
	}
}

// Fired returns how many times the site has triggered (0 for nil or
// unarmed sites).
func (i *Injector) Fired(site string) int64 {
	if i == nil {
		return 0
	}
	a := i.rules[site]
	if a == nil {
		return 0
	}
	return a.fired.Load()
}

// Counts returns fired counts per armed site, sorted by name — the
// chaos-report projection.
func (i *Injector) Counts() []SiteCount {
	if i == nil {
		return nil
	}
	out := make([]SiteCount, 0, len(i.rules))
	for site, a := range i.rules {
		out = append(out, SiteCount{Site: site, Arrivals: a.arrivals.Load(), Fired: a.fired.Load()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Site < out[b].Site })
	return out
}

// SiteCount is one site's arrival/fired tally.
type SiteCount struct {
	Site     string
	Arrivals int64
	Fired    int64
}

type injectorKey struct{}

// ContextWith returns ctx carrying the injector (ctx unchanged for nil).
func ContextWith(ctx context.Context, i *Injector) context.Context {
	if i == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey{}, i)
}

// FromContext returns the carried injector, or nil.
func FromContext(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	i, _ := ctx.Value(injectorKey{}).(*Injector)
	return i
}
