package epa

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cpsrisk/internal/sysmodel"
)

// TestEngineConcurrentRuns hammers one shared Engine from 8 goroutines
// (run under -race by scripts/check.sh): the engine is documented
// immutable after NewEngine, so concurrent Run calls must neither race
// nor interfere. Every goroutine re-runs a mix of scenarios and checks
// each result against the single-threaded reference outcome.
func TestEngineConcurrentRuns(t *testing.T) {
	m, lib := chainModel(t)
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []Scenario{
		nil,
		{{Component: "src", Fault: "corrupt"}},
		{{Component: "mid", Fault: "crash"}},
		{{Component: "src", Fault: "corrupt"}, {Component: "mid", Fault: "crash"}},
		{{Component: "src", Fault: "corrupt"}, {Component: "dst", Fault: "crash"}},
	}
	type snapshot struct {
		affected []string
		states   []ErrState
	}
	snap := func(r *Result) snapshot {
		s := snapshot{affected: r.Affected()}
		for _, pk := range eng.ports {
			s.states = append(s.states, r.PortState(pk.Component, pk.Port))
		}
		return s
	}
	want := make([]snapshot, len(scenarios))
	for i, sc := range scenarios {
		r, err := eng.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = snap(r)
	}

	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				i := (g + round) % len(scenarios)
				r, err := eng.Run(scenarios[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d scenario %d: %w", g, i, err)
					return
				}
				if got := snap(r); !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("goroutine %d scenario %d: result diverged: %+v vs %+v", g, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestComponentStateUsesPortSpans checks the span-indexed ComponentState
// against a brute-force union over PortState, and the unknown-component
// and unknown-port fallbacks.
func TestComponentStateUsesPortSpans(t *testing.T) {
	m, lib := chainModel(t)
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.Run(Scenario{{Component: "src", Fault: "corrupt"}, {Component: "mid", Fault: "crash"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Components {
		var brute ErrState
		for _, pk := range eng.ports {
			if pk.Component == c.ID {
				brute = brute.Union(r.PortState(pk.Component, pk.Port))
			}
		}
		if got := r.ComponentState(c.ID); got != brute {
			t.Errorf("ComponentState(%s) = %v, brute-force union = %v", c.ID, got, brute)
		}
	}
	if got := r.ComponentState("ghost"); !got.IsOK() {
		t.Errorf("ComponentState(ghost) = %v, want ok", got)
	}
	if got := r.PortState("src", "ghost"); !got.IsOK() {
		t.Errorf("PortState(src.ghost) = %v, want ok", got)
	}
}

// TestWorklistMatchesRescanOnRandomModels cross-checks the worklist
// fixpoint against an independent, naive full-rescan implementation on
// random cyclic models — the reference semantics the optimized engine
// must preserve.
func TestWorklistMatchesRescanOnRandomModels(t *testing.T) {
	// Dense diamond with a cycle and guarded transfers.
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "relay",
		Ports: []sysmodel.PortSpec{
			{Name: "a", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "b", Dir: sysmodel.InOut, Flow: sysmodel.QuantityFlow},
			{Name: "x", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
			{Name: "y", Dir: sysmodel.InOut, Flow: sysmodel.QuantityFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "glitch"}, {Name: "mute"}},
	})
	m := sysmodel.NewModel("diamond")
	for _, id := range []string{"p", "q", "r", "s"} {
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: "relay"})
	}
	m.Connect("p", "x", "q", "a", sysmodel.SignalFlow)
	m.Connect("q", "x", "s", "a", sysmodel.SignalFlow)
	m.Connect("p", "y", "r", "b", sysmodel.QuantityFlow) // propagates both ways
	m.Connect("r", "y", "s", "b", sysmodel.QuantityFlow)
	m.Connect("s", "x", "p", "a", sysmodel.SignalFlow) // cycle

	lib := NewBehaviorLibrary(types)
	behavior := &TypeBehavior{
		Type: "relay",
		Effects: []FaultEffect{
			{Fault: "glitch", Port: "x", Emit: StateOf(ErrValue, ErrTiming)},
			{Fault: "mute", Emit: StateOf(ErrOmission)}, // all outputs
		},
		Transfers: append(append(IdentityTransfers("a", "x"), IdentityTransfers("b", "y")...),
			TransferRule{From: "a", Match: StateOf(ErrValue), To: "y", Emit: StateOf(ErrValue), UnlessFault: "mute"},
			TransferRule{From: "b", Match: StateOf(ErrOmission), To: "x", Emit: StateOf(ErrTiming), WhenFault: "glitch"},
		),
	}
	lib.MustRegister(behavior)
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}

	scenarios := []Scenario{
		nil,
		{{Component: "p", Fault: "glitch"}},
		{{Component: "q", Fault: "mute"}},
		{{Component: "p", Fault: "glitch"}, {Component: "s", Fault: "mute"}},
		{{Component: "r", Fault: "glitch"}, {Component: "r", Fault: "mute"}},
		{{Component: "p", Fault: "glitch"}, {Component: "q", Fault: "glitch"},
			{Component: "r", Fault: "mute"}, {Component: "s", Fault: "glitch"}},
	}
	for _, sc := range scenarios {
		got, err := eng.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		want := rescanFixpoint(eng, behavior, m, sc)
		for _, pk := range eng.ports {
			if g := got.PortState(pk.Component, pk.Port); g != want[pk] {
				t.Errorf("scenario %v port %v: worklist=%v rescan=%v", sc, pk, g, want[pk])
			}
		}
	}
}

// rescanFixpoint is a deliberately naive reference: rescan every
// connection and every transfer until nothing changes.
func rescanFixpoint(eng *Engine, b *TypeBehavior, m *sysmodel.Model, sc Scenario) map[PortKey]ErrState {
	states := map[PortKey]ErrState{}
	for _, act := range sc {
		comp, _ := m.Component(act.Component)
		ct, _ := eng.lib.Types().Get(comp.Type)
		for _, eff := range b.Effects {
			if eff.Fault != act.Fault {
				continue
			}
			for _, pk := range eng.effectPorts(comp, ct, eff) {
				states[pk] = states[pk].Union(eff.Emit)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, conn := range m.Connections {
			pairs := [][2]PortKey{{
				{Component: conn.From.Component, Port: conn.From.Port},
				{Component: conn.To.Component, Port: conn.To.Port},
			}}
			if conn.Flow == sysmodel.QuantityFlow {
				pairs = append(pairs, [2]PortKey{pairs[0][1], pairs[0][0]})
			}
			for _, pr := range pairs {
				merged := states[pr[1]].Union(states[pr[0]])
				if merged != states[pr[1]] {
					states[pr[1]] = merged
					changed = true
				}
			}
		}
		for _, c := range m.Components {
			for _, tr := range b.Transfers {
				if tr.WhenFault != "" && !sc.Has(c.ID, tr.WhenFault) {
					continue
				}
				if tr.UnlessFault != "" && sc.Has(c.ID, tr.UnlessFault) {
					continue
				}
				from := PortKey{Component: c.ID, Port: tr.From}
				if !states[from].Intersects(tr.Match) {
					continue
				}
				to := PortKey{Component: c.ID, Port: tr.To}
				merged := states[to].Union(tr.Emit)
				if merged != states[to] {
					states[to] = merged
					changed = true
				}
			}
		}
	}
	return states
}
