package logic

import (
	"fmt"
	"strconv"
	"strings"
)

// ChoiceElem is a conditional head element of a choice rule,
// "atom : cond1, cond2" — the atom is a candidate when the (positive)
// conditions hold.
type ChoiceElem struct {
	Atom Atom
	Cond []Literal
}

// String implements fmt.Stringer.
func (e ChoiceElem) String() string {
	if len(e.Cond) == 0 {
		return e.Atom.String()
	}
	parts := make([]string, len(e.Cond))
	for i, c := range e.Cond {
		parts[i] = c.String()
	}
	return e.Atom.String() + " : " + strings.Join(parts, ", ")
}

// Unbounded marks a missing cardinality bound on a choice rule.
const Unbounded = -1

// Rule is an ASP rule. The zero Head with Choice=false is an integrity
// constraint; a single head atom is a normal rule; Choice=true makes the
// head a cardinality-bounded choice over Elems.
type Rule struct {
	Head   *Atom        // normal rule head; nil for constraints and choices
	Choice bool         // head is a choice
	Elems  []ChoiceElem // choice elements
	Lower  int          // choice lower bound (Unbounded if none)
	Upper  int          // choice upper bound (Unbounded if none)
	Body   []BodyElem
}

// Fact constructs a fact rule.
func Fact(a Atom) Rule { h := a; return Rule{Head: &h} }

// NormalRule constructs head :- body.
func NormalRule(head Atom, body ...BodyElem) Rule {
	h := head
	return Rule{Head: &h, Body: body}
}

// Constraint constructs :- body.
func Constraint(body ...BodyElem) Rule { return Rule{Body: body} }

// ChoiceRule constructs lower { elems } upper :- body.
func ChoiceRule(lower, upper int, elems []ChoiceElem, body ...BodyElem) Rule {
	return Rule{Choice: true, Elems: elems, Lower: lower, Upper: upper, Body: body}
}

// IsFact reports whether the rule is a ground or range fact (normal rule
// with an empty body).
func (r Rule) IsFact() bool { return r.Head != nil && !r.Choice && len(r.Body) == 0 }

// IsConstraint reports whether the rule is an integrity constraint.
func (r Rule) IsConstraint() bool { return r.Head == nil && !r.Choice }

// Vars collects all variables of the rule.
func (r Rule) Vars() []string {
	var vs []string
	if r.Head != nil {
		vs = r.Head.Vars(vs)
	}
	for _, e := range r.Elems {
		vs = e.Atom.Vars(vs)
		for _, c := range e.Cond {
			vs = c.Atom.Vars(vs)
		}
	}
	for _, b := range r.Body {
		switch be := b.(type) {
		case Literal:
			vs = be.Atom.Vars(vs)
		case Comparison:
			vs = be.Vars(vs)
		}
	}
	return vs
}

// String implements fmt.Stringer.
func (r Rule) String() string {
	var sb strings.Builder
	switch {
	case r.Choice:
		if r.Lower != Unbounded {
			sb.WriteString(strconv.Itoa(r.Lower))
			sb.WriteByte(' ')
		}
		sb.WriteString("{ ")
		for i, e := range r.Elems {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteString(" }")
		if r.Upper != Unbounded {
			sb.WriteByte(' ')
			sb.WriteString(strconv.Itoa(r.Upper))
		}
	case r.Head != nil:
		sb.WriteString(r.Head.String())
	}
	if len(r.Body) > 0 {
		sb.WriteString(" :- ")
		for i, b := range r.Body {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(b.String())
		}
	}
	sb.WriteByte('.')
	return sb.String()
}

// MinimizeElem is one weighted element of a #minimize statement (or an
// equivalent weak constraint): weight@priority with an identifying tuple,
// counted once per distinct ground tuple whose condition holds.
type MinimizeElem struct {
	Weight   Term
	Priority int
	Tuple    []Term
	Cond     []BodyElem
}

// Vars collects all variables of the element.
func (m MinimizeElem) Vars() []string {
	vs := m.Weight.Vars(nil)
	for _, t := range m.Tuple {
		vs = t.Vars(vs)
	}
	for _, b := range m.Cond {
		switch be := b.(type) {
		case Literal:
			vs = be.Atom.Vars(vs)
		case Comparison:
			vs = be.Vars(vs)
		}
	}
	return vs
}

// String implements fmt.Stringer.
func (m MinimizeElem) String() string {
	var sb strings.Builder
	sb.WriteString(m.Weight.String())
	sb.WriteString("@")
	sb.WriteString(strconv.Itoa(m.Priority))
	for _, t := range m.Tuple {
		sb.WriteByte(',')
		sb.WriteString(t.String())
	}
	if len(m.Cond) > 0 {
		sb.WriteString(" : ")
		for i, b := range m.Cond {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(b.String())
		}
	}
	return sb.String()
}

// Program is a collection of rules and optimization statements.
type Program struct {
	Rules    []Rule
	Minimize []MinimizeElem
}

// AddRule appends a rule.
func (p *Program) AddRule(r Rule) { p.Rules = append(p.Rules, r) }

// AddFact appends a fact.
func (p *Program) AddFact(a Atom) { p.Rules = append(p.Rules, Fact(a)) }

// AddMinimize appends a minimize element.
func (p *Program) AddMinimize(m MinimizeElem) { p.Minimize = append(p.Minimize, m) }

// Extend appends all rules and minimize elements of q.
func (p *Program) Extend(q *Program) {
	p.Rules = append(p.Rules, q.Rules...)
	p.Minimize = append(p.Minimize, q.Minimize...)
}

// String renders the program in parseable surface syntax.
func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	if len(p.Minimize) > 0 {
		sb.WriteString("#minimize { ")
		for i, m := range p.Minimize {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(m.String())
		}
		sb.WriteString(" }.\n")
	}
	return sb.String()
}

// CheckSafety verifies rule safety: every variable of a rule must occur in
// a positive body literal (choice-element condition variables may instead
// be bound by the element's own positive conditions; comparison assignment
// X = expr binds X when expr's variables are safe). Unsafe rules cannot be
// grounded.
func (p *Program) CheckSafety() error {
	for i, r := range p.Rules {
		if err := checkRuleSafety(r); err != nil {
			return fmt.Errorf("rule %d (%s): %w", i, r, err)
		}
	}
	for i, m := range p.Minimize {
		safe := map[string]bool{}
		for _, b := range m.Cond {
			if lit, ok := b.(Literal); ok && !lit.Negated {
				for _, v := range lit.Atom.Vars(nil) {
					safe[v] = true
				}
			}
		}
		bindAssignments(m.Cond, safe)
		for _, v := range m.Vars() {
			if !safe[v] {
				return fmt.Errorf("minimize element %d (%s): unsafe variable %s", i, m, v)
			}
		}
	}
	return nil
}

func checkRuleSafety(r Rule) error {
	safe := map[string]bool{}
	for _, b := range r.Body {
		if lit, ok := b.(Literal); ok && !lit.Negated {
			for _, v := range lit.Atom.Vars(nil) {
				safe[v] = true
			}
		}
	}
	bindAssignments(r.Body, safe)

	var need []string
	if r.Head != nil {
		need = r.Head.Vars(need)
	}
	for _, b := range r.Body {
		switch be := b.(type) {
		case Literal:
			need = be.Atom.Vars(need)
		case Comparison:
			need = be.Vars(need)
		}
	}
	for _, v := range need {
		if !safe[v] {
			return fmt.Errorf("unsafe variable %s", v)
		}
	}
	// Choice elements: atom vars must be safe via body or the element's own
	// positive conditions.
	for _, e := range r.Elems {
		local := map[string]bool{}
		for k := range safe {
			local[k] = true
		}
		for _, c := range e.Cond {
			if !c.Negated {
				for _, v := range c.Atom.Vars(nil) {
					local[v] = true
				}
			}
		}
		for _, v := range e.Atom.Vars(nil) {
			if !local[v] {
				return fmt.Errorf("unsafe variable %s in choice element %s", v, e)
			}
		}
		for _, c := range e.Cond {
			for _, v := range c.Atom.Vars(nil) {
				if !local[v] {
					return fmt.Errorf("unsafe variable %s in choice condition %s", v, c)
				}
			}
		}
	}
	return nil
}

// bindAssignments iteratively marks variables bound through `V = expr` (or
// `expr = V`) comparisons whose other side is already safe.
func bindAssignments(body []BodyElem, safe map[string]bool) {
	for changed := true; changed; {
		changed = false
		for _, b := range body {
			cmp, ok := b.(Comparison)
			if !ok || cmp.Op != CmpEq {
				continue
			}
			if v, ok := cmp.Left.(Variable); ok && !safe[v.Name] && allSafe(cmp.Right, safe) {
				safe[v.Name] = true
				changed = true
			}
			if v, ok := cmp.Right.(Variable); ok && !safe[v.Name] && allSafe(cmp.Left, safe) {
				safe[v.Name] = true
				changed = true
			}
		}
	}
}

func allSafe(t Term, safe map[string]bool) bool {
	for _, v := range t.Vars(nil) {
		if !safe[v] {
			return false
		}
	}
	return true
}
