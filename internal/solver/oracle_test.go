package solver

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cpsrisk/internal/logic"
)

// bruteForceStableModels enumerates all subsets of (non-internal) atoms of
// the ground program and keeps those that are stable models, using the
// independent reduct fixpoint check from solver_test.go. It is the
// exponential reference oracle for randomized cross-checking.
func bruteForceStableModels(t *testing.T, gp *GroundProgram) []string {
	t.Helper()
	var external []AtomID
	for id := AtomID(1); id <= AtomID(gp.NumAtoms()); id++ {
		if !gp.IsInternal(id) {
			external = append(external, id)
		}
	}
	if len(external) > 16 {
		t.Fatalf("oracle limited to 16 atoms, got %d", len(external))
	}
	// Internal atoms (aux guards) are defined by basic rules from the
	// external ones, handled inside isStableModel's truth completion.
	var out []string
	for mask := 0; mask < 1<<uint(len(external)); mask++ {
		var atoms []string
		for i, id := range external {
			if mask>>uint(i)&1 == 1 {
				atoms = append(atoms, gp.AtomName(id))
			}
		}
		sort.Strings(atoms)
		m := Model{Atoms: atoms}
		if isStableModel(gp, m) {
			out = append(out, strings.Join(atoms, ","))
		}
	}
	sort.Strings(out)
	return out
}

// randomProgram generates a small random normal program with facts,
// rules with default negation, choice rules, and constraints over
// propositional atoms a0..a(n-1).
func randomProgram(rng *rand.Rand, n int) string {
	atom := func() string { return fmt.Sprintf("a%d", rng.Intn(n)) }
	var sb strings.Builder
	// A couple of facts.
	for i := 0; i < 1+rng.Intn(2); i++ {
		fmt.Fprintf(&sb, "%s.\n", atom())
	}
	// A free choice over one or two atoms.
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&sb, "{ %s }.\n", atom())
	} else {
		fmt.Fprintf(&sb, "{ %s; %s } 1.\n", atom(), atom())
	}
	// Random rules.
	rules := 2 + rng.Intn(4)
	for i := 0; i < rules; i++ {
		head := atom()
		nBody := 1 + rng.Intn(2)
		var body []string
		for j := 0; j < nBody; j++ {
			lit := atom()
			if rng.Intn(3) == 0 {
				lit = "not " + lit
			}
			body = append(body, lit)
		}
		fmt.Fprintf(&sb, "%s :- %s.\n", head, strings.Join(body, ", "))
	}
	// Occasionally a constraint.
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&sb, ":- %s, %s.\n", atom(), atom())
	}
	return sb.String()
}

// TestSolverAgreesWithBruteForce cross-checks the DPLL+loop-formula engine
// against exhaustive subset enumeration on 200 random programs. This is
// the strongest correctness test of the stable-model semantics, covering
// positive loops through choices, double negation effects, and
// constraint pruning.
func TestSolverAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		src := randomProgram(rng, 4+rng.Intn(3))
		prog, err := logic.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		gp, err := Ground(prog)
		if err != nil {
			t.Fatalf("trial %d: ground: %v\n%s", trial, err, src)
		}
		res, err := Solve(gp, Options{})
		if err != nil {
			t.Fatalf("trial %d: solve: %v\n%s", trial, err, src)
		}
		got := renderModels(res)
		want := bruteForceStableModels(t, gp)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Fatalf("trial %d: models differ\nprogram:\n%s\ngot:  %v\nwant: %v",
				trial, src, got, want)
		}
	}
}

// TestOptimizeAgreesWithBruteForce: for random programs with random
// weights, the optimizer's cost equals the minimum cost over the
// brute-force model set.
func TestOptimizeAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		n := 4 + rng.Intn(2)
		src := randomProgram(rng, n)
		// Weigh every atom.
		var weights []string
		costOf := map[string]int{}
		for i := 0; i < n; i++ {
			w := 1 + rng.Intn(9)
			costOf[fmt.Sprintf("a%d", i)] = w
			weights = append(weights, fmt.Sprintf("%d,a%d : a%d", w, i, i))
		}
		src += "#minimize { " + strings.Join(weights, "; ") + " }.\n"

		prog, err := logic.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		gp, err := Ground(prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		all, err := Solve(gp, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(all.Models) == 0 {
			continue // UNSAT instance: optimization has nothing to do
		}
		best := 1 << 30
		for _, m := range all.Models {
			cost := 0
			for _, a := range m.Atoms {
				cost += costOf[a]
			}
			if cost < best {
				best = cost
			}
		}
		opt, err := Solve(gp, Options{Optimize: true, MaxModels: 1})
		if err != nil {
			t.Fatalf("trial %d: optimize: %v", trial, err)
		}
		if len(opt.Models) != 1 {
			t.Fatalf("trial %d: no optimal model\n%s", trial, src)
		}
		gotCost := 0
		for _, pc := range opt.Models[0].Cost {
			gotCost += pc.Cost
		}
		if gotCost != best {
			t.Fatalf("trial %d: optimum %d, brute force %d\n%s\nmodel: %v",
				trial, gotCost, best, src, opt.Models[0].Atoms)
		}
	}
}

// TestEnumerationCountStress: on slightly larger random programs, model
// enumeration must terminate and return a duplicate-free set where every
// returned model passes the independent stability check.
func TestEnumerationCountStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		src := randomProgram(rng, 8)
		src += "{ a6; a7 }.\n"
		prog, err := logic.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		gp, err := Ground(prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(gp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, m := range res.Models {
			key := strings.Join(m.Atoms, ",")
			if seen[key] {
				t.Fatalf("trial %d: duplicate model %q", trial, key)
			}
			seen[key] = true
			if !isStableModel(gp, m) {
				t.Fatalf("trial %d: unstable model %q\n%s", trial, key, src)
			}
		}
	}
}
