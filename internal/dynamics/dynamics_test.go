package dynamics

import (
	"fmt"
	"strings"
	"testing"

	"cpsrisk/internal/plant"
	"cpsrisk/internal/temporal"
)

// toggle is a minimal two-state system: a lamp that flips every step
// unless frozen by a stuck fault (Listing 2 shape).
func toggle() *System {
	return &System{
		Domains: []Domain{{Name: "onoff", Values: []string{"on", "off"}}},
		Vars:    []Var{{Name: "lamp", Domain: "onoff", Init: "off"}},
		Rules: []Rule{
			{Target: "lamp", Next: "on", When: []Cond{{Var: "lamp", Val: "off"}},
				UnlessFaults: []string{"lamp:stuck"}},
			{Target: "lamp", Next: "off", When: []Cond{{Var: "lamp", Val: "on"}},
				UnlessFaults: []string{"lamp:stuck"}},
		},
	}
}

func TestToggleNominal(t *testing.T) {
	tr, err := toggle().Run(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"off", "on", "off", "on", "off", "on"}
	for i, w := range want {
		if got := tr.Value(i, "lamp"); got != w {
			t.Errorf("step %d: lamp = %q, want %q", i, got, w)
		}
	}
}

// TestListing2FrameRule: with the stuck fault active the state freezes —
// the paper's Listing 2 semantics realized by inertia plus suppression.
func TestListing2FrameRule(t *testing.T) {
	tr, err := toggle().Run(6, []Injection{{Key: "lamp:stuck", AtStep: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"off", "on", "off", "off", "off", "off"}
	for i, w := range want {
		if got := tr.Value(i, "lamp"); got != w {
			t.Errorf("step %d: lamp = %q, want %q", i, got, w)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*System)
	}{
		{"empty domain", func(s *System) { s.Domains = append(s.Domains, Domain{Name: "d"}) }},
		{"dup domain", func(s *System) { s.Domains = append(s.Domains, s.Domains[0]) }},
		{"dup value", func(s *System) { s.Domains[0].Values = []string{"on", "on"} }},
		{"bad var domain", func(s *System) { s.Vars[0].Domain = "ghost" }},
		{"bad init", func(s *System) { s.Vars[0].Init = "blue" }},
		{"dup var", func(s *System) { s.Vars = append(s.Vars, s.Vars[0]) }},
		{"bad target", func(s *System) { s.Rules[0].Target = "ghost" }},
		{"bad next", func(s *System) { s.Rules[0].Next = "blue" }},
		{"bad cond var", func(s *System) { s.Rules[0].When[0].Var = "ghost" }},
		{"bad cond val", func(s *System) { s.Rules[0].When[0].Val = "blue" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := toggle()
			tc.mutate(s)
			if err := s.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestEncodeErrors(t *testing.T) {
	s := toggle()
	if _, err := s.Encode(0, nil); err == nil {
		t.Error("horizon 0 must fail")
	}
	if _, err := s.Encode(4, []Injection{{Key: "lamp:stuck", AtStep: 9}}); err == nil {
		t.Error("out-of-horizon injection must fail")
	}
	if _, err := s.Encode(4, []Injection{{Key: "lamp:stuck", AtStep: -1}}); err == nil {
		t.Error("negative injection step must fail")
	}
}

func TestConflictingAssignmentsDetected(t *testing.T) {
	s := toggle()
	// A second rule forcing "off" while the first forces "on".
	s.Rules = append(s.Rules, Rule{
		Target: "lamp", Next: "off", When: []Cond{{Var: "lamp", Val: "off"}},
	})
	if _, err := s.Run(3, nil); err == nil ||
		!strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("err = %v, want inconsistency", err)
	}
}

func TestPropTrace(t *testing.T) {
	tr, err := toggle().Run(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	trace := tr.PropTrace()
	f := temporal.MustParseFormula("holds(lamp,off) & X holds(lamp,on)")
	if !temporal.Eval(f, trace) {
		t.Errorf("trace formula failed on %v", trace)
	}
	alternates := temporal.MustParseFormula(
		"G (holds(lamp,off) -> WX holds(lamp,on))")
	if !temporal.Eval(alternates, trace) {
		t.Error("alternation property failed")
	}
}

func TestWaterTankNominalSafe(t *testing.T) {
	tr, err := WaterTank().Run(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Overflowed(tr) {
		t.Fatalf("nominal trajectory overflows: %v", tr.Values)
	}
	if Alerted(tr) {
		t.Fatal("nominal trajectory must not alert")
	}
}

func TestWaterTankF4Attack(t *testing.T) {
	tr, err := WaterTank().Run(16, []Injection{{Key: KeyF4}})
	if err != nil {
		t.Fatal(err)
	}
	if !Overflowed(tr) {
		t.Fatalf("F4 must overflow: %v", tr.Values)
	}
	if Alerted(tr) {
		t.Fatal("F4 must suppress the alert")
	}
}

// TestWaterTankMatchesPlant cross-checks the dynamic qualitative model
// against the concrete plant simulator on all 16 combinations of F1..F4:
// the refined abstraction level agrees with the concrete verdicts,
// closing the CEGAR hierarchy (static EPA over-approximates per Table II;
// the dynamic model is exact on this fault set).
func TestWaterTankMatchesPlant(t *testing.T) {
	injKeys := []string{KeyF1, KeyF2, KeyF3, KeyF4}
	plantInj := []plant.Injection{
		{Component: plant.CompInValve, Fault: plant.FaultStuckOpen},
		{Component: plant.CompOutValve, Fault: plant.FaultStuckClosed},
		{Component: plant.CompHMI, Fault: plant.FaultNoSignal},
		{Component: plant.CompEWS, Fault: plant.FaultCompromised},
	}
	sys := WaterTank()
	cfg := plant.DefaultConfig()
	for mask := 0; mask < 16; mask++ {
		var dynInj []Injection
		var simInj []plant.Injection
		for i := 0; i < 4; i++ {
			if mask>>uint(i)&1 == 1 {
				dynInj = append(dynInj, Injection{Key: injKeys[i]})
				simInj = append(simInj, plantInj[i])
			}
		}
		tr, err := sys.Run(20, dynInj)
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		sim, err := plant.Simulate(cfg, simInj)
		if err != nil {
			t.Fatal(err)
		}
		dynR1 := Overflowed(tr)
		simR1 := sim.Overflowed()
		if dynR1 != simR1 {
			t.Errorf("mask %04b: overflow dyn=%v plant=%v\n%v", mask, dynR1, simR1, tr.Values)
		}
		dynR2 := dynR1 && !Alerted(tr)
		simR2 := simR1 && !sim.AlertedAfterOverflow()
		if dynR2 != simR2 {
			t.Errorf("mask %04b: silent-overflow dyn=%v plant=%v", mask, dynR2, simR2)
		}
	}
}

// Requirements as LTLf over the trajectory trace.
func TestWaterTankTemporalRequirements(t *testing.T) {
	r1 := temporal.MustParseFormula("G !holds(level,overflow)")
	r2 := temporal.MustParseFormula("G (holds(level,overflow) -> F holds(alert,on))")

	safe, err := WaterTank().Run(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.Eval(r1, safe.PropTrace()) || !temporal.Eval(r2, safe.PropTrace()) {
		t.Error("nominal trajectory must satisfy R1 and R2")
	}
	attack, err := WaterTank().Run(16, []Injection{{Key: KeyF4}})
	if err != nil {
		t.Fatal(err)
	}
	if temporal.Eval(r1, attack.PropTrace()) {
		t.Error("R1 must fail under F4")
	}
	if temporal.Eval(r2, attack.PropTrace()) {
		t.Error("R2 must fail under F4")
	}
	// F1+F2 overflows but alerts: R1 fails, R2 holds.
	noisy, err := WaterTank().Run(16, []Injection{{Key: KeyF1}, {Key: KeyF2}})
	if err != nil {
		t.Fatal(err)
	}
	if temporal.Eval(r1, noisy.PropTrace()) {
		t.Error("R1 must fail under F1+F2")
	}
	if !temporal.Eval(r2, noisy.PropTrace()) {
		t.Error("R2 must hold under F1+F2 (alert delivered)")
	}
}

func TestInjectionTimingMidRun(t *testing.T) {
	// F4 injected late: the prefix stays nominal.
	tr, err := WaterTank().Run(16, []Injection{{Key: KeyF4, AtStep: 8}})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s <= 8; s++ {
		if tr.Value(s, VarLevel) == "overflow" {
			t.Fatalf("overflow before injection at step %d", s)
		}
	}
	if !Overflowed(tr) {
		t.Fatal("late F4 must still overflow")
	}
}

func BenchmarkWaterTankTrajectory(b *testing.B) {
	sys := WaterTank()
	inj := []Injection{{Key: KeyF4}}
	for i := 0; i < b.N; i++ {
		tr, err := sys.Run(20, inj)
		if err != nil {
			b.Fatal(err)
		}
		if !Overflowed(tr) {
			b.Fatal("no overflow")
		}
	}
}

func BenchmarkDynamicsHorizonScaling(b *testing.B) {
	sys := WaterTank()
	for _, h := range []int{10, 40, 160} {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Run(h, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
