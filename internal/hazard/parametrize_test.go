package hazard

import (
	"testing"

	"cpsrisk/internal/qual"
)

func TestParametrizationSensitivity(t *testing.T) {
	eng, muts, reqs := setup(t)
	results, err := ParametrizationSensitivity(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(muts) {
		t.Fatalf("results = %d, want %d", len(results), len(muts))
	}
	// The sink:corrupt likelihood drives the nominal top scenario
	// ({sink:corrupt} alone violates R1 at the highest joint likelihood
	// once raised); the analysis must flag at least one estimate as
	// ranking-critical and report zero displacement for immaterial ones.
	anySensitive := false
	for _, r := range results {
		if r.TopChanged || r.RankDisplacement > 0 {
			anySensitive = true
		}
		if r.RankDisplacement < 0 {
			t.Fatalf("negative displacement: %+v", r)
		}
	}
	if !anySensitive {
		t.Error("expected at least one ranking-critical likelihood estimate")
	}
}

func TestParametrizationSensitivityStableUnderIrrelevantFactor(t *testing.T) {
	eng, muts, reqs := setup(t)
	// Make every mutation maximally likely: saturation blocks the upward
	// perturbation, and a single downward step cannot reorder equal-risk
	// peers deterministically ranked by ID... the check here is weaker:
	// the function runs and reports consistent displacements.
	for i := range muts {
		muts[i].Likelihood = qual.VeryHigh
	}
	results, err := ParametrizationSensitivity(eng, muts, 1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.RankDisplacement > len(muts)+1 {
			t.Fatalf("displacement out of range: %+v", r)
		}
	}
}

func TestParametrizationSensitivityEmpty(t *testing.T) {
	eng, _, reqs := setup(t)
	results, err := ParametrizationSensitivity(eng, nil, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("results = %v", results)
	}
}
