// Package hierarchy implements the hierarchical evaluation of the
// framework (paper §VI, Fig. 3): asset refinement levels crossed with
// threat refinement levels, the three evaluation focuses (topology-based
// propagation, detailed propagation analysis, mitigation plan), and the
// topology-based preliminary analysis used when detailed component
// information is unavailable.
package hierarchy

import (
	"fmt"
	"sort"

	"cpsrisk/internal/report"
	"cpsrisk/internal/sysmodel"
)

// AssetLevel is the asset refinement level (Fig. 3, vertical axis).
type AssetLevel int

// Asset levels.
const (
	// AssetAbstract keeps composite assets opaque ("main assets in broad
	// terms").
	AssetAbstract AssetLevel = iota + 1
	// AssetRefined flattens composites into their internal components.
	AssetRefined
)

// String implements fmt.Stringer.
func (l AssetLevel) String() string {
	switch l {
	case AssetAbstract:
		return "abstract-assets"
	case AssetRefined:
		return "refined-assets"
	default:
		return "unknown-asset-level"
	}
}

// ThreatLevel is the threat refinement level (Fig. 3, horizontal axis).
type ThreatLevel int

// Threat levels (paper §VI: three threat refinement levels).
const (
	// ThreatAspects covers high-level aspects: reliability, availability,
	// timeliness.
	ThreatAspects ThreatLevel = iota + 1
	// ThreatFaults identifies specific faults and vulnerabilities.
	ThreatFaults
	// ThreatMitigations introduces mitigation mechanisms.
	ThreatMitigations
)

// String implements fmt.Stringer.
func (l ThreatLevel) String() string {
	switch l {
	case ThreatAspects:
		return "high-level-aspects"
	case ThreatFaults:
		return "specific-faults"
	case ThreatMitigations:
		return "mitigations"
	default:
		return "unknown-threat-level"
	}
}

// Focus is an evaluation focus (paper §VI's three key focuses).
type Focus int

// Evaluation focuses.
const (
	// TopologyPropagation: preliminary analysis over main assets and
	// high-level aspects.
	TopologyPropagation Focus = iota + 1
	// DetailedPropagation: qualitative EPA with component behaviour.
	DetailedPropagation
	// MitigationPlan: mitigation selection with cost metrics.
	MitigationPlan
)

// String implements fmt.Stringer.
func (f Focus) String() string {
	switch f {
	case TopologyPropagation:
		return "topology-based-propagation"
	case DetailedPropagation:
		return "detailed-propagation-analysis"
	case MitigationPlan:
		return "mitigation-plan"
	default:
		return "unknown-focus"
	}
}

// FocusFor maps a cell of the Fig. 3 matrix to its evaluation focus:
// abstract assets with high-level threats call for topology propagation;
// refined threats (specific faults) call for detailed EPA; the mitigation
// threat level always drives mitigation planning.
func FocusFor(asset AssetLevel, threat ThreatLevel) Focus {
	switch threat {
	case ThreatMitigations:
		return MitigationPlan
	case ThreatFaults:
		return DetailedPropagation
	default:
		if asset == AssetRefined {
			return DetailedPropagation
		}
		return TopologyPropagation
	}
}

// MatrixCell describes one cell of the Fig. 3 evaluation matrix.
type MatrixCell struct {
	Asset  AssetLevel
	Threat ThreatLevel
	Focus  Focus
}

// Matrix enumerates the full Fig. 3 matrix, assets outermost.
func Matrix() []MatrixCell {
	var out []MatrixCell
	for _, a := range []AssetLevel{AssetAbstract, AssetRefined} {
		for _, t := range []ThreatLevel{ThreatAspects, ThreatFaults, ThreatMitigations} {
			out = append(out, MatrixCell{Asset: a, Threat: t, Focus: FocusFor(a, t)})
		}
	}
	return out
}

// CriticalityAttr is the component attribute marking asset criticality
// (qualitative VL..VH); assets at High or above are treated as critical in
// the topology analysis.
const CriticalityAttr = "criticality"

// TopologyResult is the preliminary impact of one fault/attack seed: the
// reachable components and the critical ones among them (paper §VI focus
// 1: "useful for early system development or initial risk assessments").
type TopologyResult struct {
	Seed     string
	Affected []string
	Critical []string
}

// Topology performs topology-based propagation analysis: for each seed
// component, everything reachable in the propagation graph is potentially
// affected; components marked critical and reached are the preliminary
// hazards. No behaviour knowledge is needed.
func Topology(m *sysmodel.Model, seeds []string) ([]TopologyResult, error) {
	g := m.BuildGraph()
	critical := map[string]bool{}
	for _, c := range m.Components {
		switch c.Attr(CriticalityAttr) {
		case "H", "VH", "h", "vh":
			critical[c.ID] = true
		}
	}
	out := make([]TopologyResult, 0, len(seeds))
	for _, seed := range seeds {
		if _, ok := m.Component(seed); !ok {
			return nil, fmt.Errorf("hierarchy: unknown seed component %q", seed)
		}
		affected := g.Reachable(seed)
		res := TopologyResult{Seed: seed, Affected: affected}
		for _, a := range affected {
			if critical[a] {
				res.Critical = append(res.Critical, a)
			}
		}
		sort.Strings(res.Critical)
		out = append(out, res)
	}
	return out, nil
}

// RefinementPlan lists the composite assets worth refining: those whose
// abstract analysis reached critical components (the paper's "drill down
// from the critical points").
func RefinementPlan(m *sysmodel.Model, topo []TopologyResult) []string {
	hot := map[string]bool{}
	for _, r := range topo {
		if len(r.Critical) > 0 {
			hot[r.Seed] = true
		}
	}
	var out []string
	for _, c := range m.Components {
		if c.IsComposite() && hot[c.ID] {
			out = append(out, c.ID)
		}
	}
	sort.Strings(out)
	return out
}

// RenderMatrix renders the Fig. 3 evaluation matrix as a text table.
func RenderMatrix() string {
	var rows [][]string
	for _, cell := range Matrix() {
		rows = append(rows, []string{
			cell.Asset.String(), cell.Threat.String(), cell.Focus.String(),
		})
	}
	return report.Table([]string{"Asset level", "Threat level", "Evaluation focus"}, rows)
}
