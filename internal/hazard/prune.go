package hazard

// Sweep pruning skips scenario executions whose outcome is already
// implied, without changing a single reported byte:
//
//   - Dominance: on a monotone engine (no UnlessFault transfers — see
//     epa.Engine.Monotone) with monotone conditions (no NotCond), fault
//     activation only ever grows the reachable error states, so a
//     superset of a scenario that violates requirement R also violates
//     R. The pruner indexes the minimal violating bitmasks per
//     requirement; a scenario whose mask has a recorded violating
//     subset for EVERY requirement is known to violate all of them and
//     its row is synthesized instead of simulated. Pruning only fires
//     when all requirements are covered — a superset of a
//     non-violating scenario may still violate (WhenFault can arm new
//     propagation), so partial knowledge never skips work.
//
//   - Symmetry orbits: components verified interchangeable by
//     epa.InterchangeableClasses (exact transposition automorphisms of
//     the compiled tables) yield EPA results that are equivariant under
//     member swaps. Classes are refined by mutation profile (same fault
//     set with the same likelihoods) and exclude every component named
//     in a requirement condition, so two scenarios in the same orbit
//     have identical violation vectors AND identical risk scores. The
//     first orbit member encountered executes; the rest replicate its
//     violated set. Orbit replication is sound on any engine — it does
//     not need monotonicity.
//
// Synthesized rows are also persisted to the result cache as
// synthesized-result records (scenario mask + 'S' suffix, payload =
// requirement-set hash + violated bitmap) so a resumed or re-run sweep
// restores them as cache hits exactly like executed rows — checkpoint
// frontier and cache semantics are identical for pruned and executed
// ranks.

import (
	"encoding/binary"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/risk"
	"cpsrisk/internal/store"
)

// synthSuffix terminates a synthesized-result cache key. Scenario-mask
// keys are exactly maskLen bytes, synthesized keys maskLen+1, so the two
// record kinds cannot collide inside one namespace.
const synthSuffix = byte('S')

// pruner holds the in-memory pruning state of one sweep. All methods
// are safe for concurrent use by the sweep workers.
type pruner struct {
	reqs        []Requirement
	reqIdx      map[string]int
	allViolated []string // every requirement ID, sorted
	reqsHash    uint64

	// dominance is armed only when both the engine and every condition
	// are monotone.
	dominance bool

	classes []int // sizes only, for stats
	classOf map[string]int

	mu        sync.RWMutex
	violating [][]string // per requirement: minimal violating masks
	orbits    map[string][]string
}

// newPruner analyzes the engine and requirement set and builds the
// pruning state. The returned pruner may have dominance disabled (and
// possibly no symmetry classes) but is always safe to use.
func newPruner(eng *epa.Engine, muts []faults.Mutation, reqs []Requirement) *pruner {
	p := &pruner{
		reqs:      reqs,
		reqIdx:    make(map[string]int, len(reqs)),
		reqsHash:  hashReqs(reqs),
		dominance: eng.Monotone(),
		classOf:   map[string]int{},
		violating: make([][]string, len(reqs)),
		orbits:    map[string][]string{},
	}
	for i, r := range reqs {
		p.reqIdx[r.ID] = i
		p.allViolated = append(p.allViolated, r.ID)
		if !conditionMonotone(r.Condition) {
			p.dominance = false
		}
	}
	sort.Strings(p.allViolated)

	// Symmetry classes: protected components (any component a condition
	// can distinguish) never join a class, and engine-level classes are
	// refined by mutation profile so orbit members carry identical
	// likelihoods for identical fault sets.
	protected := map[string]bool{}
	for _, r := range reqs {
		collectConditionComponents(r.Condition, protected)
	}
	profile := map[string][]string{}
	for _, m := range muts {
		profile[m.Component] = append(profile[m.Component],
			m.Fault+"\x00"+itoa(int(m.Likelihood)))
	}
	for _, cl := range eng.InterchangeableClasses(protected) {
		byProfile := map[string][]string{}
		var order []string
		for _, comp := range cl {
			pr := append([]string(nil), profile[comp]...)
			sort.Strings(pr)
			key := strings.Join(pr, "\x01")
			if _, seen := byProfile[key]; !seen {
				order = append(order, key)
			}
			byProfile[key] = append(byProfile[key], comp)
		}
		for _, key := range order {
			members := byProfile[key]
			if len(members) < 2 {
				continue
			}
			id := len(p.classes)
			p.classes = append(p.classes, len(members))
			for _, comp := range members {
				p.classOf[comp] = id
			}
		}
	}
	return p
}

// conditionMonotone reports whether the condition is monotone in the
// fault set: growing the scenario (and therefore, on a monotone engine,
// the error states) can only turn it true, never false. NotCond is the
// single non-monotone connective.
func conditionMonotone(c Condition) bool {
	switch cc := c.(type) {
	case AndCond:
		for _, s := range cc.Subs {
			if !conditionMonotone(s) {
				return false
			}
		}
		return true
	case OrCond:
		for _, s := range cc.Subs {
			if !conditionMonotone(s) {
				return false
			}
		}
		return true
	case NotCond:
		return false
	default:
		return true
	}
}

// collectConditionComponents gathers every component a condition
// references (including under negation) into out.
func collectConditionComponents(c Condition, out map[string]bool) {
	switch cc := c.(type) {
	case CompErr:
		out[cc.Component] = true
	case PortErr:
		out[cc.Component] = true
	case ActiveFault:
		out[cc.Component] = true
	case AndCond:
		for _, s := range cc.Subs {
			collectConditionComponents(s, out)
		}
	case OrCond:
		for _, s := range cc.Subs {
			collectConditionComponents(s, out)
		}
	case NotCond:
		collectConditionComponents(cc.Sub, out)
	}
}

// numClasses reports how many refined symmetry classes the sweep uses.
func (p *pruner) numClasses() int { return len(p.classes) }

// tryDominate reports whether the scenario mask has a recorded
// violating subset for every requirement; if so it returns the full
// (sorted) requirement ID list — by monotonicity the scenario violates
// everything.
func (p *pruner) tryDominate(mask []byte) ([]string, bool) {
	if !p.dominance || len(p.reqs) == 0 {
		return nil, false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	for i := range p.reqs {
		if !hasViolatingSubset(p.violating[i], mask) {
			return nil, false
		}
	}
	return p.allViolated, true
}

// tryOrbit returns the memoized violated set of the scenario's symmetry
// orbit, if another member of the orbit has already been evaluated.
func (p *pruner) tryOrbit(sc epa.Scenario) ([]string, bool) {
	key, ok := p.orbitKey(sc)
	if !ok {
		return nil, false
	}
	p.mu.RLock()
	v, hit := p.orbits[key]
	p.mu.RUnlock()
	return v, hit
}

// record feeds one evaluated (or synthesized) scenario back into the
// pruning state: its mask into the per-requirement dominance index when
// it violates, and its violated set into the orbit memo.
func (p *pruner) record(sc epa.Scenario, mask []byte, violated []string) {
	key, hasOrbit := p.orbitKey(sc)
	if !p.dominance && !hasOrbit {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dominance {
		ms := string(mask)
		for _, id := range violated {
			i, ok := p.reqIdx[id]
			if !ok {
				continue
			}
			p.violating[i] = insertMinimalMask(p.violating[i], ms)
		}
	}
	if hasOrbit {
		if _, seen := p.orbits[key]; !seen {
			// Copy: the caller's slice may alias a ScenarioResult.
			p.orbits[key] = append([]string(nil), violated...)
		}
	}
}

// seedFromCache warms the pruning state from every record already in
// the persistent result cache: synthesized-result records decode to
// their violated sets directly; state-vector records re-evaluate the
// requirements against the restored EPA result. A rank-range shard
// starting past the low-cardinality ranks thereby inherits the minimal
// violating masks earlier shards (or runs) discovered, instead of
// rediscovering nothing — the cross-shard dominance-starvation fix.
// Seeding only ever adds facts that are true of this exact engine and
// requirement set (the cache namespace binds the engine and candidate
// set; synth payloads bind the requirement hash), so it cannot change a
// reported byte — only how many scenarios execute. Returns the number
// of records seeded.
func (p *pruner) seedFromCache(c *store.Cache, eng *epa.Engine, muts []faults.Mutation, maskLen int) int {
	if c == nil || maskLen == 0 {
		return 0
	}
	seeded := 0
	c.Range(func(k, v []byte) bool {
		var mask []byte
		var violated []string
		switch len(k) {
		case maskLen + 1: // synthesized-result record
			if k[maskLen] != synthSuffix {
				return true
			}
			var ok bool
			if violated, ok = p.decodeSynth(v); !ok {
				return true
			}
			mask = k[:maskLen]
		case maskLen: // executed state-vector record
			res, err := eng.ResultFromStates(v)
			if err != nil {
				return true
			}
			sc, ok := scenarioFromMask(k, muts)
			if !ok {
				return true
			}
			for _, r := range p.reqs {
				if Eval(r.Condition, sc, res) {
					violated = append(violated, r.ID)
				}
			}
			sort.Strings(violated)
			mask = k
		default:
			return true
		}
		sc, ok := scenarioFromMask(mask, muts)
		if !ok {
			return true
		}
		p.record(sc, mask, violated)
		seeded++
		return true
	})
	return seeded
}

// scenarioFromMask reconstructs the scenario a cache mask denotes: the
// activations of the set bits in candidate-set order — exactly how the
// enumerator builds it. ok is false when the mask has bits outside the
// candidate set (a record from an incompatible writer).
func scenarioFromMask(mask []byte, muts []faults.Mutation) (epa.Scenario, bool) {
	sc := epa.Scenario{}
	set := 0
	for _, b := range mask {
		set += bits.OnesCount8(b)
	}
	for i := range muts {
		if mask[i/8]&(1<<(i%8)) != 0 {
			sc = append(sc, muts[i].Activation)
		}
	}
	return sc, len(sc) == set
}

// orbitKey canonicalizes a scenario under the symmetric groups of the
// refined classes: activations on unclassed components stay literal,
// activations on classed components collapse to the multiset of
// per-member fault sets within each class. Two scenarios share a key
// iff one is the image of the other under some verified automorphism.
// ok is false when no classed component participates (singleton orbit —
// nothing to memoize).
func (p *pruner) orbitKey(sc epa.Scenario) (string, bool) {
	if len(p.classes) == 0 {
		return "", false
	}
	classed := false
	var lines []string
	perMember := map[string][]string{} // classed component -> faults
	for _, a := range sc {
		if _, ok := p.classOf[a.Component]; ok {
			classed = true
			perMember[a.Component] = append(perMember[a.Component], a.Fault)
		} else {
			lines = append(lines, "u\x00"+a.Component+"\x00"+a.Fault)
		}
	}
	if !classed {
		return "", false
	}
	perClass := map[int][]string{} // class -> member fault-set strings
	for comp, fs := range perMember {
		sort.Strings(fs)
		cl := p.classOf[comp]
		perClass[cl] = append(perClass[cl], strings.Join(fs, "+"))
	}
	for cl, sets := range perClass {
		sort.Strings(sets)
		lines = append(lines, "c\x00"+itoa(cl)+"\x00"+strings.Join(sets, "\x01"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), true
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// hasViolatingSubset reports whether any recorded mask is a subset of m.
func hasViolatingSubset(recorded []string, m []byte) bool {
	for _, v := range recorded {
		if isSubsetMask(v, m) {
			return true
		}
	}
	return false
}

func isSubsetMask(sub string, super []byte) bool {
	if len(sub) != len(super) {
		return false
	}
	for i := 0; i < len(sub); i++ {
		if sub[i]&^super[i] != 0 {
			return false
		}
	}
	return true
}

// maxViolatingMasks caps the per-requirement minimal-mask index. The
// antichain stays tiny when small cut sets exist (they subsume their
// supersets on insert), but a sweep that only ever sees high-cardinality
// violations — a rank-range shard starting mid-space, say — would
// otherwise accumulate thousands of incomparable masks and turn every
// index scan quadratic. Dominance is an optimization: dropping masks
// beyond the cap costs prune reach, never correctness.
const maxViolatingMasks = 512

// insertMinimalMask keeps the index antichain-minimal: a new mask with
// an existing subset is redundant; an accepted mask evicts its
// supersets. Minimality bounds the index and maximizes prune reach.
func insertMinimalMask(recorded []string, m string) []string {
	mb := []byte(m)
	for _, v := range recorded {
		if isSubsetMask(v, mb) {
			return recorded
		}
	}
	kept := recorded[:0]
	for _, v := range recorded {
		if !isSubsetMask(m, []byte(v)) {
			kept = append(kept, v)
		}
	}
	if len(kept) >= maxViolatingMasks {
		return kept
	}
	return append(kept, m)
}

// synthKey derives the synthesized-result cache key from a scenario
// mask.
func synthKey(mask []byte) []byte {
	return append(append(make([]byte, 0, len(mask)+1), mask...), synthSuffix)
}

// encodeSynth renders a synthesized-result payload: the requirement-set
// hash (synthesized rows, unlike EPA state vectors, DO depend on the
// requirements) followed by the violated bitmap in requirement order.
func (p *pruner) encodeSynth(violated []string) []byte {
	out := make([]byte, 8+(len(p.reqs)+7)/8)
	binary.BigEndian.PutUint64(out, p.reqsHash)
	for _, id := range violated {
		if i, ok := p.reqIdx[id]; ok {
			out[8+i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// decodeSynth parses a synthesized-result payload, rejecting records
// written under a different requirement set.
func (p *pruner) decodeSynth(b []byte) ([]string, bool) {
	if len(b) != 8+(len(p.reqs)+7)/8 || binary.BigEndian.Uint64(b) != p.reqsHash {
		return nil, false
	}
	var violated []string
	for i, r := range p.reqs {
		if b[8+i/8]&(1<<(i%8)) != 0 {
			violated = append(violated, r.ID)
		}
	}
	sort.Strings(violated)
	return violated, true
}

// synthesizeResult builds the ScenarioResult a full evaluation would
// have produced, from the known violated set. It mirrors scoreResult
// exactly — same Violated content and order, same severity order, same
// risk scoring — which is what makes pruned reports byte-identical.
func synthesizeResult(seq int, sc epa.Scenario, violated []string, reqs []Requirement, likelihoods map[epa.Activation]qual.Level) ScenarioResult {
	sr := ScenarioResult{
		ID:       "S" + itoa(seq+1),
		Scenario: sc,
	}
	var severities []qual.Level
	for _, r := range reqs {
		i := sort.SearchStrings(violated, r.ID)
		if i < len(violated) && violated[i] == r.ID {
			sr.Violated = append(sr.Violated, r.ID)
			severities = append(severities, r.Severity)
		}
	}
	sort.Strings(sr.Violated)
	sr.Risk = risk.ScoreScenario(risk.ScenarioInput{
		ID:                 sr.ID,
		FaultLikelihoods:   scenarioLikelihoods(sc, likelihoods),
		ViolatedSeverities: severities,
	})
	return sr
}
