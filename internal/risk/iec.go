package risk

import "fmt"

// IEC 61508 qualitative hazard analysis (paper §IV-B): six categories of
// likelihood of occurrence and four of consequence combined into a risk
// class matrix.

// Likelihood is an IEC 61508 likelihood-of-occurrence category.
type Likelihood int

// Likelihood categories, most frequent first.
const (
	Frequent Likelihood = iota + 1
	Probable
	Occasional
	Remote
	Improbable
	Incredible
)

// String implements fmt.Stringer.
func (l Likelihood) String() string {
	switch l {
	case Frequent:
		return "frequent"
	case Probable:
		return "probable"
	case Occasional:
		return "occasional"
	case Remote:
		return "remote"
	case Improbable:
		return "improbable"
	case Incredible:
		return "incredible"
	default:
		return "unknown-likelihood"
	}
}

// Consequence is an IEC 61508 consequence category.
type Consequence int

// Consequence categories, most severe first.
const (
	Catastrophic Consequence = iota + 1
	Critical
	Marginal
	Negligible
)

// String implements fmt.Stringer.
func (c Consequence) String() string {
	switch c {
	case Catastrophic:
		return "catastrophic"
	case Critical:
		return "critical"
	case Marginal:
		return "marginal"
	case Negligible:
		return "negligible"
	default:
		return "unknown-consequence"
	}
}

// Class is an IEC 61508 risk class: I (intolerable) .. IV (negligible).
type Class int

// Risk classes.
const (
	ClassI Class = iota + 1
	ClassII
	ClassIII
	ClassIV
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassI:
		return "I"
	case ClassII:
		return "II"
	case ClassIII:
		return "III"
	case ClassIV:
		return "IV"
	default:
		return "?"
	}
}

// iecMatrix rows are likelihood (Frequent..Incredible), columns are
// consequence (Catastrophic..Negligible) — the standard's example
// risk-class matrix.
var iecMatrix = [6][4]Class{
	/* frequent   */ {ClassI, ClassI, ClassI, ClassII},
	/* probable   */ {ClassI, ClassI, ClassII, ClassIII},
	/* occasional */ {ClassI, ClassII, ClassIII, ClassIII},
	/* remote     */ {ClassII, ClassIII, ClassIII, ClassIV},
	/* improbable */ {ClassIII, ClassIII, ClassIV, ClassIV},
	/* incredible */ {ClassIV, ClassIV, ClassIV, ClassIV},
}

// IECClass evaluates the IEC 61508 risk-class matrix.
func IECClass(l Likelihood, c Consequence) (Class, error) {
	if l < Frequent || l > Incredible {
		return 0, fmt.Errorf("risk: invalid likelihood %d", int(l))
	}
	if c < Catastrophic || c > Negligible {
		return 0, fmt.Errorf("risk: invalid consequence %d", int(c))
	}
	return iecMatrix[l-Frequent][c-Catastrophic], nil
}

// IECMatrix returns a copy of the risk-class matrix.
func IECMatrix() [6][4]Class { return iecMatrix }
