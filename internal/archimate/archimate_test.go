package archimate

import (
	"bytes"
	"strings"
	"testing"

	"cpsrisk/internal/sysmodel"
)

// paperStyleModel builds an ArchiMate view resembling the paper's case
// study: an engineering workstation (application) controls valve equipment
// through a PLC node; the valve shares a physical quantity with a tank.
func paperStyleModel() *Model {
	m := &Model{Name: "water-tank-view"}
	m.AddElement(Element{ID: "ews", Name: "Engineering Workstation", Type: ApplicationComponent,
		Props: map[string]string{"exposure": "public", "version": "1.2"}})
	m.AddElement(Element{ID: "plc", Name: "Valve Controller PLC", Type: Device})
	m.AddElement(Element{ID: "valve", Name: "Input Valve", Type: Equipment})
	m.AddElement(Element{ID: "tank", Name: "Water Tank", Type: Equipment})
	m.AddRelation(Relation{Type: Flow, From: "ews", To: "plc", Label: "reconfigure"})
	m.AddRelation(Relation{Type: Flow, From: "plc", To: "valve", Label: "command"})
	m.AddRelation(Relation{Type: Association, From: "valve", To: "tank",
		Props: map[string]string{"quantity": "true"}})
	m.Reqs = append(m.Reqs, sysmodel.Requirement{ID: "R1", Formula: "G !state(tank,overflow)", Severity: "H"})
	return m
}

func TestValidateOK(t *testing.T) {
	if err := paperStyleModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Model)
	}{
		{"empty id", func(m *Model) { m.Elements[0].ID = "" }},
		{"dup id", func(m *Model) { m.AddElement(Element{ID: "ews", Type: Device}) }},
		{"bad type", func(m *Model) { m.Elements[0].Type = "spaceship" }},
		{"dangling from", func(m *Model) { m.Relations[0].From = "ghost" }},
		{"dangling to", func(m *Model) { m.Relations[0].To = "ghost" }},
		{"bad relation", func(m *Model) { m.Relations[0].Type = "teleport" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := paperStyleModel()
			tt.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestLayerDefaults(t *testing.T) {
	e := Element{ID: "x", Type: Equipment}
	if e.ElementLayer() != Physical {
		t.Errorf("layer = %v", e.ElementLayer())
	}
	e.Layer = Technology
	if e.ElementLayer() != Technology {
		t.Errorf("override layer = %v", e.ElementLayer())
	}
}

func TestLowerBasic(t *testing.T) {
	sm, lib, err := paperStyleModel().Lower()
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Validate(lib); err != nil {
		t.Fatalf("lowered model invalid: %v", err)
	}
	if len(sm.Components) != 4 {
		t.Fatalf("components = %d", len(sm.Components))
	}
	ews, ok := sm.Component("ews")
	if !ok {
		t.Fatal("ews missing")
	}
	if ews.Attr("exposure") != "public" || ews.Layer != "application" {
		t.Errorf("ews = %+v", ews)
	}
	// Flow connections are directed signal; association is quantity.
	var signals, quantities int
	for _, c := range sm.Connections {
		switch c.Flow {
		case sysmodel.SignalFlow:
			signals++
		case sysmodel.QuantityFlow:
			quantities++
		}
	}
	if signals != 2 || quantities != 1 {
		t.Errorf("signals=%d quantities=%d", signals, quantities)
	}
	// Propagation graph: ews reaches the tank (the IT-to-OT path the paper
	// is about).
	g := sm.BuildGraph()
	path := g.ShortestPath("ews", "tank")
	if len(path) != 4 {
		t.Errorf("ews->tank path = %v", path)
	}
	if len(sm.Requirements) != 1 || sm.Requirements[0].ID != "R1" {
		t.Errorf("requirements = %v", sm.Requirements)
	}
}

func TestLowerComposition(t *testing.T) {
	m := &Model{Name: "hier"}
	m.AddElement(Element{ID: "ews", Type: ApplicationComponent})
	m.AddElement(Element{ID: "email", Type: ApplicationService})
	m.AddElement(Element{ID: "browser", Type: ApplicationService})
	m.AddRelation(Relation{Type: Composition, From: "ews", To: "email"})
	m.AddRelation(Relation{Type: Composition, From: "ews", To: "browser"})
	m.AddRelation(Relation{Type: Flow, From: "email", To: "browser", Label: "open link"})

	sm, lib, err := m.Lower()
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Validate(lib); err != nil {
		t.Fatal(err)
	}
	ews, ok := sm.Component("ews")
	if !ok || !ews.IsComposite() {
		t.Fatalf("ews not composite: %+v", ews)
	}
	if _, ok := ews.Sub.Component("email"); !ok {
		t.Error("inner email missing")
	}
	if len(ews.Sub.Connections) != 1 {
		t.Errorf("inner connections = %v", ews.Sub.Connections)
	}
	st := sm.Stats()
	if st.Composites != 1 || st.Depth != 1 || st.Components != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLowerCompositionErrors(t *testing.T) {
	m := &Model{Name: "bad"}
	m.AddElement(Element{ID: "a", Type: Node})
	m.AddElement(Element{ID: "b", Type: Node})
	m.AddRelation(Relation{Type: Composition, From: "a", To: "b"})
	m.AddRelation(Relation{Type: Composition, From: "b", To: "a"})
	if _, _, err := m.Lower(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("composition cycle error = %v", err)
	}

	m2 := &Model{Name: "twoparents"}
	m2.AddElement(Element{ID: "a", Type: Node})
	m2.AddElement(Element{ID: "b", Type: Node})
	m2.AddElement(Element{ID: "c", Type: Node})
	m2.AddRelation(Relation{Type: Composition, From: "a", To: "c"})
	m2.AddRelation(Relation{Type: Composition, From: "b", To: "c"})
	if _, _, err := m2.Lower(); err == nil || !strings.Contains(err.Error(), "composed into both") {
		t.Errorf("two-parent error = %v", err)
	}

	m3 := &Model{Name: "crossing"}
	m3.AddElement(Element{ID: "a", Type: Node})
	m3.AddElement(Element{ID: "b", Type: Node})
	m3.AddElement(Element{ID: "inner", Type: SystemSoftware})
	m3.AddRelation(Relation{Type: Composition, From: "a", To: "inner"})
	m3.AddRelation(Relation{Type: Flow, From: "inner", To: "b"})
	if _, _, err := m3.Lower(); err == nil || !strings.Contains(err.Error(), "boundary") {
		t.Errorf("boundary error = %v", err)
	}
}

func TestLowerStructuralRelations(t *testing.T) {
	m := &Model{Name: "deploy"}
	m.AddElement(Element{ID: "scada", Type: ApplicationComponent})
	m.AddElement(Element{ID: "server", Type: Node})
	m.AddRelation(Relation{Type: Assignment, From: "scada", To: "server"})
	m.AddRelation(Relation{Type: Association, From: "scada", To: "server"})
	sm, _, err := m.Lower()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := sm.Component("scada")
	if c.Attr("assignedTo") != "server" {
		t.Errorf("assignedTo = %q", c.Attr("assignedTo"))
	}
	if c.Attr("associatedWith") != "server" {
		t.Errorf("associatedWith = %q", c.Attr("associatedWith"))
	}
	if len(sm.Connections) != 0 {
		t.Errorf("structural relations must not create connections: %v", sm.Connections)
	}
}

func TestComponentTypeOverride(t *testing.T) {
	m := &Model{Name: "override"}
	m.AddElement(Element{ID: "v1", Type: Equipment,
		Props: map[string]string{"componentType": "valve"}})
	sm, lib, err := m.Lower()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := sm.Component("v1")
	if c.Type != "am:valve" {
		t.Errorf("type = %q", c.Type)
	}
	if _, ok := lib.Get("am:valve"); !ok {
		t.Error("override type not registered")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := paperStyleModel()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Elements) != len(m.Elements) || len(m2.Relations) != len(m.Relations) {
		t.Error("round trip lost elements")
	}
	if _, _, err := m2.Lower(); err != nil {
		t.Fatalf("round-tripped model fails to lower: %v", err)
	}
}

func TestReadJSONRejects(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","elements":[{"id":"a","type":"nope"}]}`)); err == nil {
		t.Error("bad element type must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"bogus":true}`)); err == nil {
		t.Error("unknown field must fail")
	}
}
