package core

import (
	"strings"
	"testing"

	"cpsrisk/internal/cegar"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/watertank"
)

func caseStudyConfig() Config {
	types := watertank.Types()
	return Config{
		Model:           watertank.Model(),
		Types:           types,
		Behaviors:       watertank.Behaviors(types),
		KB:              kb.MustDefaultKB(),
		Requirements:    watertank.Requirements(),
		ExtraMutations:  watertank.PaperCandidates(),
		MaxCardinality:  2,
		MutationSources: faults.Options{}, // paper candidates only
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.Optimize = true
	cfg.Budget = -1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ModelStats.Components != 9 {
		t.Errorf("model stats = %+v", a.ModelStats)
	}
	if len(a.Candidates) != 4 {
		t.Errorf("candidates = %v", a.Candidates)
	}
	// Attack graph: the public workstation is compromisable.
	found := false
	for _, c := range a.Compromisable {
		if c == plant.CompEWS {
			found = true
		}
	}
	if !found {
		t.Errorf("compromisable = %v", a.Compromisable)
	}
	// Scenario space: 1 + 4 + 6 = 11 with cardinality 2.
	if len(a.Analysis.Scenarios) != 11 {
		t.Errorf("scenarios = %d", len(a.Analysis.Scenarios))
	}
	if len(a.Ranked) != len(a.Analysis.Scenarios) {
		t.Error("ranking incomplete")
	}
	// F4 (the attack) ranks first.
	if !a.Ranked[0].Scenario.Has(plant.CompEWS, plant.FaultCompromised) {
		t.Errorf("top scenario = %s", a.Ranked[0].Scenario.Key())
	}
	if len(a.RelevantMitigations) == 0 {
		t.Error("no relevant mitigations")
	}
	// The optimizer buys something: blocking F4 scenarios is worthwhile.
	if len(a.Plan.Selected) == 0 {
		t.Errorf("plan = %+v", a.Plan)
	}
	if len(a.Phases) == 0 {
		t.Error("no phases")
	}
}

func TestPipelineWithActiveMitigations(t *testing.T) {
	cfg := caseStudyConfig()
	// M1 + M2 block the paper's F4 paths; MFA additionally blocks the
	// valid-accounts entry the KB knows about, closing the attack graph.
	cfg.ActiveMitigations = map[string]bool{"M-0917": true, "M-0949": true, "M-0932": true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// F4 filtered: only the three physical faults remain.
	if len(a.Analyzed) != 3 {
		t.Fatalf("analyzed = %v", a.Analyzed)
	}
	for _, s := range a.Analysis.Scenarios {
		if s.Scenario.Has(plant.CompEWS, plant.FaultCompromised) {
			t.Error("mitigated attack scenario still analyzed")
		}
	}
	// The attack graph shrinks too.
	for _, c := range a.Compromisable {
		if c == plant.CompEWS {
			t.Error("mitigations must remove the workstation entry")
		}
	}
}

func TestPipelineASPPathAgrees(t *testing.T) {
	native, err := Run(caseStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := caseStudyConfig()
	cfg.UseASP = true
	asp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(native.Analysis.Scenarios) != len(asp.Analysis.Scenarios) {
		t.Fatalf("scenario counts differ: %d vs %d",
			len(native.Analysis.Scenarios), len(asp.Analysis.Scenarios))
	}
	for _, ns := range native.Analysis.Scenarios {
		as, ok := asp.Analysis.ByScenario(ns.Scenario)
		if !ok {
			t.Fatalf("ASP missing %s", ns.Scenario.Key())
		}
		if strings.Join(ns.Violated, ",") != strings.Join(as.Violated, ",") {
			t.Errorf("%s: %v vs %v", ns.Scenario.Key(), ns.Violated, as.Violated)
		}
	}
}

func TestPipelineWithOracle(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.Oracle = cegar.NewPlantOracle()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Refinement == nil {
		t.Fatal("refinement missing")
	}
	if len(a.Refinement.Confirmed()) == 0 {
		t.Error("F4 finding must be confirmed")
	}
	if len(a.Refinement.Spurious()) == 0 {
		t.Error("F2-alone finding must be spurious")
	}
}

func TestPipelineHierarchicalModel(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.Model = watertank.HierarchicalModel()
	cfg.ExtraMutations = nil
	cfg.MutationSources = faults.AllSources()
	cfg.MaxCardinality = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The inner chain produced candidates on the refined components.
	foundInner := false
	for _, m := range a.Candidates {
		if strings.HasPrefix(m.Component, "ews.") {
			foundInner = true
		}
	}
	if !foundInner {
		t.Errorf("no inner candidates: %v", a.Candidates)
	}
	// Compromising the e-mail client is a hazardous singleton scenario.
	hazardous := false
	for _, s := range a.Analysis.Hazards() {
		if s.Scenario.Has("ews.email_client", plant.FaultCompromised) {
			hazardous = true
		}
	}
	if !hazardous {
		t.Error("refined e-mail compromise must be hazardous")
	}
	// The original model is untouched (Run clones).
	if len(cfg.Model.Composites()) != 1 {
		t.Error("Run mutated the input model")
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.Model = nil
	if _, err := Run(cfg); err == nil {
		t.Error("nil model must fail")
	}
	cfg = caseStudyConfig()
	cfg.Requirements = nil
	if _, err := Run(cfg); err == nil {
		t.Error("no requirements must fail")
	}
}

func TestPipelineBudgetedOptimization(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.Optimize = true
	cfg.Budget = 30 // only user training (20+5) fits
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.Cost > 30 {
		t.Errorf("budget violated: %+v", a.Plan)
	}
}

func BenchmarkPipelineEndToEnd(b *testing.B) {
	cfg := caseStudyConfig()
	cfg.Optimize = true
	cfg.Budget = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMergeMutationsOverlap(t *testing.T) {
	// Generated candidates and extra candidates overlap on the ews
	// compromise: sources union, max likelihood wins.
	cfg := caseStudyConfig()
	cfg.MutationSources = faults.AllSources()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var f4 *faults.Mutation
	for i := range a.Candidates {
		if a.Candidates[i].Component == plant.CompEWS &&
			a.Candidates[i].Fault == plant.FaultCompromised {
			f4 = &a.Candidates[i]
		}
	}
	if f4 == nil {
		t.Fatal("merged F4 candidate missing")
	}
	// Sources from both the generator (vulnerabilities, techniques) and
	// the hand-written paper candidates (T-1566, T-1189), deduplicated.
	seen := map[string]bool{}
	for _, s := range f4.Sources {
		if seen[s] {
			t.Fatalf("duplicate source %q after merge: %v", s, f4.Sources)
		}
		seen[s] = true
	}
	if !seen["T-1566"] || !seen["V-2023-0104"] {
		t.Errorf("merged sources incomplete: %v", f4.Sources)
	}
}
