package solver

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/obs"
)

// Portfolio search: N diversified CDCL engines race on the same ground
// translation. Every engine translates the program identically (translate
// is deterministic), so all workers agree on variable numbering and can
// exchange clauses by index. Diversification only perturbs *search order*
// — restart schedule, EVSIDS decay, initial polarity, seeded random
// polarity noise — never the clause database, so any worker's answer is
// an answer for the shared program.
//
// Sharing is sound because only program consequences travel: clauses
// learned purely from problem clauses (and imported consequences) are
// exported; anything derived from a blocking clause, an objective bound,
// or another query-local construct is tainted at learn time and kept
// private (see clause.local in sat.go). Objective bounds are shared as a
// race-wide achieved cost instead — an incumbent cost is a fact about the
// program, unlike the bound *clause* derived from it, which excludes the
// incumbent itself.

const (
	// exchangeSlots bounds the clause-exchange ring. Writers never block:
	// a slow reader gets lapped and counts the overwritten publications
	// as drops.
	exchangeSlots = 1024
	// importInterval is how many search-loop iterations pass between
	// exchange drains (restarts drain too).
	importInterval = 128
	// maxPortfolioWorkers caps Options.Workers defensively.
	maxPortfolioWorkers = 64
)

type atomicInt64 = atomic.Int64

// prng is a splitmix64 generator: deterministic per seed, cheap enough
// for the branching loop, and independent of the global math/rand state.
type prng struct{ state uint64 }

func newPrng(seed uint64) *prng { return &prng{state: seed} }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ---- clause exchange -------------------------------------------------

// xrec is one published clause. Immutable after Store: readers share the
// lits slice and copy before installing.
type xrec struct {
	pos  uint64
	src  int32
	lits []lit
}

// exchange is a bounded lock-free broadcast ring. Writers claim a slot
// with a fetch-add on head and overwrite whatever is there; each reader
// keeps a private cursor and detects overwrites by comparing the stored
// record's position with the cursor (a mismatch means the reader was
// lapped — the gap is counted as drops, never delivered out of order).
type exchange struct {
	slots []atomic.Pointer[xrec]
	head  atomic.Uint64
}

func newExchange(n int) *exchange {
	return &exchange{slots: make([]atomic.Pointer[xrec], n)}
}

// publish broadcasts a clause. The literals are copied: the caller keeps
// ownership (learned clauses are mutated in place by watch maintenance).
func (e *exchange) publish(src int, lits []lit) {
	cp := make([]lit, len(lits))
	copy(cp, lits)
	pos := e.head.Add(1) - 1
	e.slots[pos%uint64(len(e.slots))].Store(&xrec{pos: pos, src: int32(src), lits: cp})
}

// importShared drains the exchange ring into this engine: every clause
// published by a peer since the last drain is installed as a learned
// clause (with backjumping when it is conflicting under the current
// assignment). Lapped publications are counted as drops.
func (s *sat) importShared() {
	e := s.exch
	if e == nil {
		return
	}
	head := e.head.Load()
	n := uint64(len(e.slots))
	if head > s.exchCursor+n {
		// Fell a whole ring behind: skip to the oldest surviving slot.
		s.shDrops += int64(head - n - s.exchCursor)
		s.exchCursor = head - n
	}
	for s.exchCursor < head {
		rec := e.slots[s.exchCursor%n].Load()
		if rec == nil || rec.pos < s.exchCursor {
			// Slot claimed by a writer that has not stored yet; retry at
			// the next drain.
			return
		}
		if rec.pos > s.exchCursor {
			// Lapped while reading.
			s.shDrops += int64(rec.pos - s.exchCursor)
			s.exchCursor = rec.pos
			continue
		}
		s.exchCursor++
		if int(rec.src) == s.exchID {
			continue
		}
		s.importClause(rec.lits)
		if s.unsatRoot {
			return
		}
	}
}

// importClause installs one peer-learned clause. Peers share this
// engine's variable numbering (identical translation), so literals are
// meaningful as-is; level-0-false literals are stripped and level-0-true
// clauses skipped. An empty remainder proves the program unsatisfiable —
// soundly, because only program consequences are ever exported.
func (s *sat) importClause(src []lit) {
	ls := make([]lit, 0, len(src))
	for _, l := range src {
		v := l.variable()
		if v <= 0 || v >= s.nVars {
			return // foreign variable: stale record, drop defensively
		}
		if s.assign[v] != 0 && s.level[v] == 0 {
			switch s.value(l) {
			case 1:
				return // satisfied at the root forever
			case -1:
				continue // false at the root forever
			}
		}
		ls = append(ls, l)
	}
	s.shImported++
	if len(ls) == 0 {
		s.unsatRoot = true
		return
	}
	if len(ls) == 1 {
		// A unit consequence is fixed at level 0, like addClause units.
		if s.decisionLevel() > 0 {
			s.restarts++
			s.cancelUntil(0)
		}
		switch s.value(ls[0]) {
		case 1:
		case -1:
			s.unsatRoot = true
		default:
			s.uncheckedEnqueue(ls[0], nil)
		}
		return
	}
	s.backtrackForClause(ls)
	if s.clauseStatus(ls) == -1 {
		s.unsatRoot = true
		return
	}
	w1, w2 := s.pickWatches(ls)
	ls[0], ls[w1] = ls[w1], ls[0]
	if w2 == 0 {
		w2 = w1
	}
	ls[1], ls[w2] = ls[w2], ls[1]
	c := &clause{lits: ls, learnt: true, act: s.claInc}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	if s.value(ls[0]) == 0 && s.value(ls[1]) == -1 {
		s.uncheckedEnqueue(ls[0], c)
	}
}

// ---- shared objective state ------------------------------------------

// raceShared is the race-wide optimization state: the best achieved
// combined cost and the model that achieved it. The incumbent is stored
// before the bound is lowered, so any worker that observes a tightened
// bound can harvest an incumbent at (or below) that cost.
type raceShared struct {
	bound   atomicInt64
	mu      sync.Mutex
	inc     Model
	incCost int64
	hasInc  bool
}

func newRaceShared() *raceShared {
	r := &raceShared{}
	r.bound.Store(1 << 62)
	return r
}

func (r *raceShared) publish(cost int64, m Model) {
	r.mu.Lock()
	if !r.hasInc || cost < r.incCost {
		r.inc, r.incCost, r.hasInc = m, cost, true
	}
	r.mu.Unlock()
	for {
		cur := r.bound.Load()
		if cost >= cur || r.bound.CompareAndSwap(cur, cost) {
			return
		}
	}
}

func (r *raceShared) best() (Model, int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inc, r.incCost, r.hasInc
}

// harvestShared returns the race-wide best incumbent, when racing.
func (tr *translation) harvestShared() (Model, int64, bool) {
	if tr.shared == nil {
		return Model{}, 0, false
	}
	return tr.shared.best()
}

// ---- diversification -------------------------------------------------

// divProfile perturbs one helper's search order. Worker 0 always keeps
// the engine defaults, so the primary is the exact single-threaded
// solver and deterministic mode falls out for free.
type divProfile struct {
	restartUnit int64
	decay       float64
	phase       int8
	randPolPct  int
}

var divProfiles = []divProfile{
	{restartUnit: 40, decay: 0.95, phase: -1, randPolPct: 0},   // rapid restarts
	{restartUnit: 100, decay: 0.95, phase: 1, randPolPct: 0},   // prefer-true polarity
	{restartUnit: 250, decay: 0.85, phase: -1, randPolPct: 5},  // aggressive decay, light noise
	{restartUnit: 100, decay: 0.99, phase: -1, randPolPct: 10}, // slow decay, noisy
	{restartUnit: 700, decay: 0.95, phase: 1, randPolPct: 5},   // long runs, prefer-true
	{restartUnit: 60, decay: 0.90, phase: 1, randPolPct: 15},   // chaotic short runs
	{restartUnit: 400, decay: 0.97, phase: -1, randPolPct: 2},  // steady long runs
}

// diversify gives helper id its search personality. resetPhases is set
// for fresh engines; a rebuilt engine keeps the phases carried over from
// its predecessor (the personality lives in its saved phases by then).
func diversify(s *sat, id int, resetPhases bool) {
	if id == 0 {
		return
	}
	p := divProfiles[(id-1)%len(divProfiles)]
	s.restartUnit = p.restartUnit
	s.restartLimit = p.restartUnit * luby(s.lubySeq)
	s.decayInv = 1 / p.decay
	s.randPolPct = p.randPolPct
	s.rng = newPrng(uint64(id)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	if resetPhases {
		for v := 1; v < s.nVars; v++ {
			s.phase[v] = p.phase
		}
	}
}

// wireWorker connects one engine to the race: the clause exchange and
// (for optimizing solves) the shared bound. The read cursor starts at
// the current head so pre-wiring publications are not replayed.
func wireWorker(s *sat, id int, e *exchange, bound *atomicInt64) {
	s.exch = e
	s.exchID = id
	s.exchCursor = e.head.Load()
	s.importTick = 0
	s.sharedBound = bound
}

// ---- single-shot portfolio solve -------------------------------------

// raceOutcome is one worker's result in a portfolio race.
type raceOutcome struct {
	res  *Result
	err  error
	lost bool // interrupted by the race being decided, not by the budget
}

// raceLost reports whether a worker's interruption came from the race
// cancel rather than the caller's own budget: the race context is dead
// but the caller's context is still live.
func raceLost(res *Result, parent *budget.Budget, raceCtx context.Context) bool {
	return res.Interrupted && raceCtx.Err() != nil && parent.Context().Err() == nil
}

// runRaceWorker runs one engine to completion under the race context,
// converting panics into errors (the engine is corrupt afterwards; the
// caller poisons what owns it).
func runRaceWorker(tr *translation, id int, opts Options, raceBud *budget.Budget) (out raceOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("solver: portfolio worker %d panicked: %v", id, r)
		}
	}()
	if err := raceBud.Injector().Fire("solver.worker"); err != nil {
		out.err = err
		return out
	}
	tr.s.applyBudget(raceBud)
	res := &Result{}
	var err error
	if opts.Optimize && len(tr.gp.Minimize) > 0 {
		err = tr.solveOptimize(opts, res)
	} else {
		err = tr.solveEnumerate(opts, res, -1)
	}
	res.Satisfiable = len(res.Models) > 0
	out.res, out.err = res, err
	return out
}

// solvePortfolio is Solve with Workers > 1: build one diversified engine
// per worker, race them under a shared cancel, first finisher wins. The
// worker-pool governor (when present on the budget) throttles how many
// helpers actually launch; zero grants degrade to the single-threaded
// path.
func solvePortfolio(gp *GroundProgram, opts Options) (*Result, error) {
	start := time.Now()
	want := effectiveWorkers(opts)
	gov := opts.Budget.Governor()
	granted := gov.AcquireUpTo(want - 1)
	defer gov.Release(granted)
	n := 1 + granted

	exch := newExchange(exchangeSlots)
	shared := newRaceShared()
	trs := make([]*translation, n)
	for i := 0; i < n; i++ {
		tr, err := translate(gp)
		if err != nil {
			return nil, err
		}
		tr.shared = shared
		wireWorker(tr.s, i, exch, &shared.bound)
		diversify(tr.s, i, true)
		trs[i] = tr
	}

	raceCtx, cancelRace := context.WithCancel(opts.Budget.Context())
	defer cancelRace()
	limits := opts.Budget.Limits()

	outs := make([]raceOutcome, n)
	var winner atomic.Int32
	winner.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raceBud := budget.New(raceCtx, limits)
			out := runRaceWorker(trs[i], i, opts, raceBud)
			if out.err == nil && out.res != nil {
				out.lost = raceLost(out.res, opts.Budget, raceCtx)
			}
			outs[i] = out
			if out.err == nil && !out.lost {
				if winner.CompareAndSwap(-1, int32(i)) {
					cancelRace()
				}
			}
		}(i)
	}
	wg.Wait()

	for _, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
	}
	w := int(winner.Load())
	if w < 0 {
		// Everyone was cancelled from outside the race (caller's budget
		// died before any worker finished): the primary's partial result
		// is the canonical answer.
		w = 0
	}
	res := outs[w].res
	trs[w].fillStats(&res.Stats)
	for i, tr := range trs {
		if i == w {
			continue
		}
		var tmp Stats
		tr.fillStats(&tmp)
		addEngineStats(&res.Stats, &tmp)
	}
	res.Stats.PortfolioWorkers = int64(n - 1)
	res.Stats.PortfolioWinner = w
	if w != 0 {
		res.Stats.PortfolioWins = 1
	}
	res.Stats.Duration = time.Since(start)
	PublishStats(obs.RegistryFromContext(opts.Budget.Context()), &res.Stats)
	return res, nil
}
