#!/bin/sh
# loadtest.sh boots a real riskserve process on an ephemeral port, drives
# it with cmd/loadgen's fixed request mix (multi-tenant, cold and warm
# rounds), asserts zero critical events and a clean /metrics exposition,
# then shuts the server down with SIGTERM and checks the drain exits
# cleanly. `make check` runs this unless CHECK_SHORT=1.
set -eu

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build riskserve + loadgen =="
go build -o "$workdir/riskserve" ./cmd/riskserve
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== start riskserve =="
"$workdir/riskserve" \
  -addr 127.0.0.1:0 \
  -addr-file "$workdir/addr" \
  -types models/types.json \
  -maxcard 1 \
  -job-workers 4 \
  -cache "$workdir/cache" \
  2> "$workdir/server.log" &
server_pid=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$workdir/addr" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "riskserve did not start; log:" >&2
    cat "$workdir/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
addr="$(cat "$workdir/addr")"

status=0
"$workdir/loadgen" -addr "$addr" -model models/sme-plant.json \
  -tenants 3 -rounds 2 || status=$?

echo "== drain (SIGTERM) =="
kill -TERM "$server_pid"
drain_status=0
wait "$server_pid" || drain_status=$?

if [ "$status" -ne 0 ]; then
  echo "loadgen failed; server log:" >&2
  cat "$workdir/server.log" >&2
  exit "$status"
fi
if [ "$drain_status" -ne 0 ]; then
  echo "riskserve drain exited $drain_status; log:" >&2
  cat "$workdir/server.log" >&2
  exit "$drain_status"
fi

echo "OK"
