package solver

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/logic"
)

// Ground instantiates a logic program into a GroundProgram using semi-naive
// bottom-up evaluation over the over-approximation of derivable atoms
// (negative literals are ignored while computing possibility, so every atom
// of every stable model is instantiated — the same guarantee clingo gives).
func Ground(prog *logic.Program) (*GroundProgram, error) {
	return GroundBudget(prog, nil)
}

// GroundBudget grounds with resource governance: the context is polled
// periodically during instantiation and MaxGroundRules bounds the emitted
// ground rules. Exceeding either aborts with an *budget.ExhaustedError
// (stage "ground") — a partially grounded program would be unsound to
// solve, so grounding has no partial-result mode; callers degrade by
// switching engine instead.
func GroundBudget(prog *logic.Program, bud *budget.Budget) (*GroundProgram, error) {
	if err := prog.CheckSafety(); err != nil {
		return nil, err
	}
	gr := &grounder{
		out:      NewGroundProgram(),
		possible: map[string]*atomPool{},
		isPoss:   map[string]bool{},
		seen:     map[string]bool{},
		symIDs:   map[string]int32{},
		termIDs:  map[string]int32{},
		bud:      bud,
	}
	rules, err := expandIntervalFacts(prog.Rules)
	if err != nil {
		return nil, err
	}
	if err := gr.run(rules); err != nil {
		return nil, err
	}
	if err := gr.groundMinimize(prog.Minimize); err != nil {
		return nil, err
	}
	gr.simplifyNegatives()
	return gr.out, nil
}

// atomPool holds the possible ground atoms of one predicate signature in
// insertion order, plus lazily built per-argument-position indexes
// mapping a ground argument value (its canonical string) to the
// positions of the atoms carrying it. Index lists preserve insertion
// order, so an indexed scan visits atoms in the same order a linear
// scan would — grounding output stays byte-identical.
type atomPool struct {
	atoms []logic.Atom
	index []map[string][]int32 // per arg position; nil until first used
}

// indexThreshold is the pool size below which a linear scan beats
// building and probing an argument index.
const indexThreshold = 8

func (p *atomPool) buildIndex(i int) {
	idx := make(map[string][]int32, len(p.atoms))
	for pi, a := range p.atoms {
		k := a.Args[i].String()
		idx[k] = append(idx[k], int32(pi))
	}
	p.index[i] = idx
}

type grounder struct {
	out      *GroundProgram
	possible map[string]*atomPool    // signature -> possible-atom pool
	isPoss   map[string]bool         // atom key -> possible
	delta    map[string][]logic.Atom // frontier of the current iteration
	seen     map[string]bool         // rule-instantiation dedup keys
	minGuard map[string]AtomID       // minimize (prio,weight,tuple) -> guard

	// Instantiation-key interning: per-rule sorted unique variables,
	// symbol/term id tables, and a reusable key buffer so the dedup
	// lookup in the hot instantiation path does not allocate.
	ruleVars [][]string
	symIDs   map[string]int32
	termIDs  map[string]int32
	keyBuf   []byte

	// Incremental (multi-shot session) state: the full rule list persists
	// across addRules calls so old rules re-ground against new frontier
	// atoms; choiceInst maps a choice-rule instantiation key to its
	// emitted rule index so a later delta that grows the possible set can
	// re-emit the instantiation with the full element set and retract the
	// stale one; numPossible counts pool atoms for the reuse statistics.
	incremental bool
	rules       []logic.Rule
	choiceInst  map[string]int
	condSeen    map[AtomID]bool
	retracted   []int
	numPossible int64

	bud      *budget.Budget
	ctxPolls int
}

// newSessionGrounder creates a persistent grounder for a multi-shot
// session: rules accumulate across addRules calls and choice
// instantiations are tracked for growth-driven re-emission.
func newSessionGrounder(bud *budget.Budget) *grounder {
	return &grounder{
		out:         NewGroundProgram(),
		possible:    map[string]*atomPool{},
		isPoss:      map[string]bool{},
		seen:        map[string]bool{},
		symIDs:      map[string]int32{},
		termIDs:     map[string]int32{},
		choiceInst:  map[string]int{},
		condSeen:    map[AtomID]bool{},
		incremental: true,
		bud:         bud,
	}
}

// addRules incrementally grounds newRules against the persistent possible
// set: iteration 0 runs only the new rules (against the full pool), then
// the usual semi-naive loop re-grounds ALL rules against the new frontier,
// then choice rules are (re-)emitted — old choice rules only when the pool
// grew, and an instantiation whose element set grew is retracted and
// re-emitted in full. Reports whether any rule was retracted (the caller
// must then rebuild its translation; retracted rules have already been
// compacted away). Unlike single-shot grounding, never-possible negative
// body literals are NOT simplified away: a later delta could make the atom
// possible, and the completion already pins underivable atoms false.
func (gr *grounder) addRules(newRules []logic.Rule) (retractedAny bool, err error) {
	newRules, err = expandIntervalFacts(newRules)
	if err != nil {
		return false, err
	}
	base := len(gr.rules)
	gr.rules = append(gr.rules, newRules...)
	for _, r := range newRules {
		vs := r.Vars()
		sort.Strings(vs)
		uniq := vs[:0]
		prev := ""
		for _, v := range vs {
			if v != prev {
				uniq = append(uniq, v)
				prev = v
			}
		}
		gr.ruleVars = append(gr.ruleVars, uniq)
	}
	poolBefore := gr.numPossible
	// Iteration 0: the new rules against the full current possible set.
	gr.delta = map[string][]logic.Atom{}
	next := map[string][]logic.Atom{}
	for i, r := range newRules {
		if err := gr.groundRule(base+i, r, -1, next, !r.Choice); err != nil {
			return false, err
		}
	}
	// Semi-naive iterations over all rules with the new frontier; old
	// rules re-fire only for instantiations touching frontier atoms, and
	// instSeen dedup keeps previously emitted instantiations out.
	for len(next) > 0 {
		gr.delta = next
		next = map[string][]logic.Atom{}
		for ri, r := range gr.rules {
			for _, i := range positiveIndices(r.Body) {
				if gr.deltaHas(r.Body[i].(logic.Literal).Atom) {
					if err := gr.groundRule(ri, r, i, next, !r.Choice); err != nil {
						return false, err
					}
				}
			}
			if r.Choice && gr.choiceCondInDelta(r) {
				if err := gr.groundRule(ri, r, -1, next, false); err != nil {
					return false, err
				}
			}
		}
	}
	// Choice emission over the stable possible set: new choice rules
	// always; old ones only if the pool grew (their instantiation and
	// element sets are otherwise unchanged).
	gr.delta = map[string][]logic.Atom{}
	poolGrew := gr.numPossible > poolBefore
	for ri, r := range gr.rules {
		if !r.Choice || (ri < base && !poolGrew) {
			continue
		}
		if err := gr.groundChoiceIncremental(ri, r); err != nil {
			return false, err
		}
	}
	if len(gr.retracted) > 0 {
		gr.compactRules()
		return true, nil
	}
	return false, nil
}

// groundChoiceIncremental enumerates a choice rule's body instantiations
// and reconciles each against the previously emitted ground rule (if any)
// via choiceInst — bypassing instSeen, which would hide instantiations
// whose element sets may have grown.
func (gr *grounder) groundChoiceIncremental(ri int, r logic.Rule) error {
	next := map[string][]logic.Atom{}
	handle := func(b logic.Bindings) error {
		if err := gr.checkBudget(); err != nil {
			return err
		}
		return gr.emitChoiceInc(ri, r, b, next)
	}
	return gr.join(r.Body, -1, logic.Bindings{}, handle)
}

func (gr *grounder) emitChoiceInc(ri int, r logic.Rule, b logic.Bindings, next map[string][]logic.Atom) error {
	key := string(gr.instKey(ri, b))
	if oldIdx, ok := gr.choiceInst[key]; ok {
		n, err := gr.countChoiceInsts(r, b)
		if err != nil {
			return err
		}
		if n == len(gr.out.Rules[oldIdx].Heads) {
			return nil // element set unchanged; the emitted rule stands
		}
		// The possible set grew under this instantiation: retract the
		// stale rule (or empty-choice bound constraint) and re-emit with
		// the full element set. Possible sets only grow, so a changed
		// element count always means growth.
		gr.retracted = append(gr.retracted, oldIdx)
	}
	pos, neg, err := gr.groundBody(r.Body, b)
	if err != nil {
		return err
	}
	before := len(gr.out.Rules)
	if err := gr.emitChoice(r, b, pos, neg, next); err != nil {
		return err
	}
	if len(gr.out.Rules) > before {
		// The choice rule (or its bound constraint) is always emitted
		// last, after any condition-guard support rules.
		gr.choiceInst[key] = len(gr.out.Rules) - 1
	}
	return nil
}

// countChoiceInsts counts the element instantiations of a choice rule
// body instantiation under the current possible set, with no side effects.
func (gr *grounder) countChoiceInsts(r logic.Rule, b logic.Bindings) (int, error) {
	n := 0
	for _, e := range r.Elems {
		err := gr.expandChoiceElem(e, b, func(logic.Bindings) error {
			n++
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// compactRules splices retracted rules out of the ground program and
// remaps choiceInst indexes. Only called when retractions happened, which
// forces the owning session to rebuild its translation anyway.
func (gr *grounder) compactRules() {
	dead := make(map[int]bool, len(gr.retracted))
	for _, i := range gr.retracted {
		dead[i] = true
	}
	remap := make([]int, len(gr.out.Rules))
	kept := gr.out.Rules[:0]
	for i, r := range gr.out.Rules {
		if dead[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		kept = append(kept, r)
	}
	gr.out.Rules = kept
	for k, v := range gr.choiceInst {
		// Retracted entries were overwritten by their re-emission, so no
		// live entry maps to -1; guard anyway.
		if nv := remap[v]; nv >= 0 {
			gr.choiceInst[k] = nv
		} else {
			delete(gr.choiceInst, k)
		}
	}
	gr.retracted = gr.retracted[:0]
}

// checkBudget enforces the grounding-rule cap and polls the context every
// ctxPollInterval instantiations.
func (gr *grounder) checkBudget() error {
	if gr.bud == nil {
		return nil
	}
	if maxRules := gr.bud.Limits().MaxGroundRules; maxRules > 0 && len(gr.out.Rules) >= maxRules {
		return &budget.ExhaustedError{
			Stage: "ground", Reason: budget.ReasonGroundRules,
			Detail: fmt.Sprintf("%d ground rules", len(gr.out.Rules)),
		}
	}
	gr.ctxPolls++
	if gr.ctxPolls >= ctxPollInterval {
		gr.ctxPolls = 0
		if err := gr.bud.Err("ground"); err != nil {
			return err
		}
	}
	return nil
}

func (gr *grounder) run(rules []logic.Rule) error {
	// Fixpoint phase: compute the possible-atom set. Basic rules are also
	// emitted here (their instantiation is fully determined by the body
	// binding); choice rules only mark their heads possible, because the
	// element conditions must be expanded over the *final* possible set.
	//
	// Iteration 0: all rules against the (initially empty) possible set;
	// rules without positive body literals fire only here.
	gr.ruleVars = make([][]string, len(rules))
	for ri, r := range rules {
		vs := r.Vars()
		sort.Strings(vs)
		uniq := vs[:0]
		prev := ""
		for _, v := range vs {
			if v != prev {
				uniq = append(uniq, v)
				prev = v
			}
		}
		gr.ruleVars[ri] = uniq
	}
	gr.delta = map[string][]logic.Atom{}
	next := map[string][]logic.Atom{}
	for ri, r := range rules {
		if err := gr.groundRule(ri, r, -1, next, !r.Choice); err != nil {
			return err
		}
	}
	// Semi-naive iterations: re-ground rules requiring at least one
	// positive body literal to match the frontier. Choice rules also
	// re-run (with a full join) when an element-condition predicate grew.
	for len(next) > 0 {
		gr.delta = next
		next = map[string][]logic.Atom{}
		for ri, r := range rules {
			for _, i := range positiveIndices(r.Body) {
				if gr.deltaHas(r.Body[i].(logic.Literal).Atom) {
					if err := gr.groundRule(ri, r, i, next, !r.Choice); err != nil {
						return err
					}
				}
			}
			if r.Choice && gr.choiceCondInDelta(r) {
				if err := gr.groundRule(ri, r, -1, next, false); err != nil {
					return err
				}
			}
		}
	}
	// Emission phase for choice rules, over the stable possible set.
	gr.delta = map[string][]logic.Atom{}
	for ri, r := range rules {
		if !r.Choice {
			continue
		}
		if err := gr.groundRule(ri, r, -1, next, true); err != nil {
			return err
		}
	}
	return nil
}

func (gr *grounder) choiceCondInDelta(r logic.Rule) bool {
	for _, e := range r.Elems {
		for _, c := range e.Cond {
			if gr.deltaHas(c.Atom) {
				return true
			}
		}
	}
	return false
}

func positiveIndices(body []logic.BodyElem) []int {
	var out []int
	for i, b := range body {
		if lit, ok := b.(logic.Literal); ok && !lit.Negated {
			out = append(out, i)
		}
	}
	return out
}

func (gr *grounder) deltaHas(a logic.Atom) bool {
	return len(gr.delta[a.Signature()]) > 0
}

// groundRule enumerates instantiations of rule ri. If deltaIdx >= 0 that
// positive body literal matches only frontier atoms (semi-naive join).
// When emit is false (choice rules during the fixpoint phase) the
// instantiation only marks head atoms possible.
func (gr *grounder) groundRule(ri int, r logic.Rule, deltaIdx int, next map[string][]logic.Atom, emit bool) error {
	handle := func(b logic.Bindings) error {
		if err := gr.checkBudget(); err != nil {
			return err
		}
		if !emit {
			return gr.markChoiceHeads(r, b, next)
		}
		if gr.instSeen(ri, b) {
			return nil
		}
		return gr.emitGround(r, b, next)
	}
	return gr.join(r.Body, deltaIdx, logic.Bindings{}, handle)
}

// markChoiceHeads expands choice elements under the current possible set
// and marks head atoms possible without emitting rules.
func (gr *grounder) markChoiceHeads(r logic.Rule, b logic.Bindings, next map[string][]logic.Atom) error {
	for _, e := range r.Elems {
		err := gr.expandChoiceElem(e, b, func(bb logic.Bindings) error {
			h, err := e.Atom.Substitute(bb).Eval()
			if err != nil {
				return err
			}
			gr.markPossible(h, next)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// instSeen canonically identifies a rule instantiation by (rule index,
// interned binding tuple) and records it, reporting whether it was seen
// before. The key is built as binary ids in a reused buffer, so the
// lookup on the already-seen path is allocation-free.
func (gr *grounder) instSeen(ri int, b logic.Bindings) bool {
	buf := gr.instKey(ri, b)
	if gr.seen[string(buf)] {
		return true
	}
	gr.seen[string(buf)] = true
	return false
}

// instKey builds the canonical (rule index, interned binding tuple) key in
// the reused buffer and returns it; the buffer is invalidated by the next
// instKey call.
func (gr *grounder) instKey(ri int, b logic.Bindings) []byte {
	buf := gr.keyBuf[:0]
	buf = binary.AppendUvarint(buf, uint64(ri))
	for _, v := range gr.ruleVars[ri] {
		t, ok := b[v]
		if !ok {
			buf = append(buf, 0)
			continue
		}
		switch tt := t.(type) {
		case logic.Number:
			buf = append(buf, 1)
			buf = binary.AppendVarint(buf, int64(tt.Value))
		case logic.Symbol:
			buf = append(buf, 2)
			buf = binary.AppendUvarint(buf, uint64(internID(gr.symIDs, tt.Name)))
		default:
			buf = append(buf, 3)
			buf = binary.AppendUvarint(buf, uint64(internID(gr.termIDs, t.String())))
		}
	}
	gr.keyBuf = buf
	return buf
}

func internID(tab map[string]int32, key string) int32 {
	if id, ok := tab[key]; ok {
		return id
	}
	id := int32(len(tab) + 1)
	tab[key] = id
	return id
}

// join enumerates bindings satisfying the body: positive literals match
// possible atoms (structural unification), comparisons test or assign.
// Negative literals are skipped here (handled at emission). Elements are
// selected dynamically so arithmetic becomes evaluable as bindings grow.
func (gr *grounder) join(body []logic.BodyElem, deltaIdx int, b logic.Bindings, emit func(logic.Bindings) error) error {
	done := make([]bool, len(body))
	return gr.joinStep(body, deltaIdx, done, b, emit)
}

func (gr *grounder) joinStep(body []logic.BodyElem, deltaIdx int, done []bool, b logic.Bindings, emit func(logic.Bindings) error) error {
	// Pick the next ready element; prefer the delta literal first so the
	// semi-naive restriction prunes early, then comparisons (cheap filters),
	// then other positive literals.
	idx := -1
	// Selection order: ready comparisons (cheap filters), then the delta
	// literal if its arithmetic arguments are evaluable, then any other
	// ready positive literal, then unready positive literals as a last
	// resort (their arithmetic arguments cannot match yet).
	for i, e := range body {
		if done[i] {
			continue
		}
		if cmp, ok := e.(logic.Comparison); ok && cmpReady(cmp, b) {
			idx = i
			break
		}
	}
	if idx < 0 && deltaIdx >= 0 && !done[deltaIdx] &&
		litReady(body[deltaIdx].(logic.Literal), b) {
		idx = deltaIdx
	}
	if idx < 0 {
		for i, e := range body {
			if done[i] {
				continue
			}
			if lit, ok := e.(logic.Literal); ok && !lit.Negated && litReady(lit, b) {
				idx = i
				break
			}
		}
	}
	if idx < 0 && deltaIdx >= 0 && !done[deltaIdx] {
		idx = deltaIdx
	}
	if idx < 0 {
		for i, e := range body {
			if done[i] {
				continue
			}
			if lit, ok := e.(logic.Literal); ok && !lit.Negated {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		// Only negative literals and (by safety) no unready comparisons
		// remain — check that indeed nothing is pending.
		for i, e := range body {
			if done[i] {
				continue
			}
			if cmp, ok := e.(logic.Comparison); ok {
				return fmt.Errorf("solver: comparison %s has unbound variables after join", cmp.Substitute(b))
			}
		}
		return emit(b)
	}
	done[idx] = true
	defer func() { done[idx] = false }()

	switch e := body[idx].(type) {
	case logic.Comparison:
		cmp := e.Substitute(b)
		if v, t, ok := assignment(cmp); ok {
			val, err := logic.Eval(t)
			if err != nil {
				return err
			}
			b[v] = val
			err = gr.joinStep(body, deltaIdx, done, b, emit)
			delete(b, v)
			return err
		}
		holds, err := cmp.Holds()
		if err != nil {
			return err
		}
		if !holds {
			return nil
		}
		return gr.joinStep(body, deltaIdx, done, b, emit)
	case logic.Literal:
		step := func(cand logic.Atom) error {
			bound, undo := unifyAtom(e.Atom, cand, b)
			if bound {
				if err := gr.joinStep(body, deltaIdx, done, b, emit); err != nil {
					undo(b)
					return err
				}
			}
			undo(b)
			return nil
		}
		if idx == deltaIdx {
			// Delta frontiers are small: always scan linearly.
			for _, cand := range gr.delta[e.Atom.Signature()] {
				if err := step(cand); err != nil {
					return err
				}
			}
			return nil
		}
		p := gr.possible[e.Atom.Signature()]
		if p == nil {
			return nil
		}
		if cands, ok := gr.poolCandidates(p, e.Atom, b); ok {
			for _, pi := range cands {
				if err := step(p.atoms[pi]); err != nil {
					return err
				}
			}
			return nil
		}
		for _, cand := range p.atoms {
			if err := step(cand); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("solver: unknown body element %T", e)
	}
}

// poolCandidates narrows a possible-atom pool using the argument indexes:
// every pattern argument that is ground under b probes its position
// index, and the shortest candidate list wins. It reports ok=false when
// no argument is ground (or the pool is too small to bother), in which
// case the caller falls back to a linear scan. Candidate lists are in
// insertion order, so the visit order matches the linear scan exactly.
func (gr *grounder) poolCandidates(p *atomPool, pattern logic.Atom, b logic.Bindings) ([]int32, bool) {
	if len(p.atoms) < indexThreshold {
		return nil, false
	}
	var best []int32
	found := false
	for i, arg := range pattern.Args {
		sub := arg.Substitute(b)
		if !sub.Ground() {
			continue
		}
		ev, err := logic.Eval(sub)
		if err != nil {
			// Unevaluable ground argument (e.g. an interval): unification
			// rejects every candidate, so there is nothing to visit.
			return nil, true
		}
		if p.index[i] == nil {
			p.buildIndex(i)
		}
		cands := p.index[i][ev.String()]
		if !found || len(cands) < len(best) {
			best, found = cands, true
		}
		if len(best) == 0 {
			break
		}
	}
	return best, found
}

func cmpReady(c logic.Comparison, b logic.Bindings) bool {
	sub := c.Substitute(b)
	if _, _, ok := assignment(sub); ok {
		return true
	}
	return sub.Left.Ground() && sub.Right.Ground()
}

// litReady reports whether all arithmetic sub-terms of the literal's
// arguments are evaluable under b, so unification against ground atoms can
// succeed. Plain variables and compounds of them are always matchable.
func litReady(lit logic.Literal, b logic.Bindings) bool {
	for _, arg := range lit.Atom.Args {
		if !termMatchReady(arg.Substitute(b)) {
			return false
		}
	}
	return true
}

func termMatchReady(t logic.Term) bool {
	switch tt := t.(type) {
	case logic.BinOp:
		return tt.Ground()
	case logic.Compound:
		for _, a := range tt.Args {
			if !termMatchReady(a) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// assignment recognizes V = expr / expr = V with a single unbound variable.
func assignment(c logic.Comparison) (string, logic.Term, bool) {
	if c.Op != logic.CmpEq {
		return "", nil, false
	}
	if v, ok := c.Left.(logic.Variable); ok && c.Right.Ground() {
		return v.Name, c.Right, true
	}
	if v, ok := c.Right.(logic.Variable); ok && c.Left.Ground() {
		return v.Name, c.Left, true
	}
	return "", nil, false
}

// unifyAtom structurally unifies pattern (under bindings b) against a
// ground atom, extending b in place. It returns whether unification
// succeeded and an undo function restoring b.
func unifyAtom(pattern, ground logic.Atom, b logic.Bindings) (bool, func(logic.Bindings)) {
	if pattern.Pred != ground.Pred || len(pattern.Args) != len(ground.Args) {
		return false, func(logic.Bindings) {}
	}
	var added []string
	undo := func(bb logic.Bindings) {
		for _, v := range added {
			delete(bb, v)
		}
	}
	for i := range pattern.Args {
		ok, vs := unifyTerm(pattern.Args[i], ground.Args[i], b)
		added = append(added, vs...)
		if !ok {
			return false, undo
		}
	}
	return true, undo
}

func unifyTerm(pat logic.Term, ground logic.Term, b logic.Bindings) (bool, []string) {
	switch p := pat.(type) {
	case logic.Variable:
		if bound, ok := b[p.Name]; ok {
			return logic.Compare(bound, ground) == 0, nil
		}
		b[p.Name] = ground
		return true, []string{p.Name}
	case logic.Symbol, logic.Number:
		return logic.Compare(pat, ground) == 0, nil
	case logic.Compound:
		g, ok := ground.(logic.Compound)
		if !ok || g.Functor != p.Functor || len(g.Args) != len(p.Args) {
			return false, nil
		}
		var added []string
		for i := range p.Args {
			ok, vs := unifyTerm(p.Args[i], g.Args[i], b)
			added = append(added, vs...)
			if !ok {
				return false, added
			}
		}
		return true, added
	case logic.BinOp:
		sub := p.Substitute(b)
		if !sub.Ground() {
			return false, nil
		}
		v, err := logic.Eval(sub)
		if err != nil {
			return false, nil
		}
		return logic.Compare(v, ground) == 0, nil
	default:
		return false, nil
	}
}

// emitGround materializes one rule instantiation into the ground program
// and records newly possible head atoms in next.
func (gr *grounder) emitGround(r logic.Rule, b logic.Bindings, next map[string][]logic.Atom) error {
	pos, neg, err := gr.groundBody(r.Body, b)
	if err != nil {
		return err
	}
	if r.Choice {
		return gr.emitChoice(r, b, pos, neg, next)
	}
	var head AtomID
	if r.Head != nil {
		h, err := r.Head.Substitute(b).Eval()
		if err != nil {
			return err
		}
		head = gr.out.AtomIDFor(h.Key())
		gr.markPossible(h, next)
	}
	gr.out.AddBasic(head, pos, neg)
	return nil
}

func (gr *grounder) groundBody(body []logic.BodyElem, b logic.Bindings) (pos, neg []AtomID, err error) {
	for _, e := range body {
		lit, ok := e.(logic.Literal)
		if !ok {
			continue // comparisons already verified during the join
		}
		atom, err := lit.Atom.Substitute(b).Eval()
		if err != nil {
			return nil, nil, err
		}
		id := gr.out.AtomIDFor(atom.Key())
		if lit.Negated {
			neg = append(neg, id)
		} else {
			pos = append(pos, id)
		}
	}
	return pos, neg, nil
}

func (gr *grounder) emitChoice(r logic.Rule, b logic.Bindings, pos, neg []AtomID, next map[string][]logic.Atom) error {
	var heads, conds []AtomID
	for _, e := range r.Elems {
		for _, c := range e.Cond {
			if c.Negated {
				return fmt.Errorf("solver: negated choice-element condition %s is not supported", c)
			}
		}
		err := gr.expandChoiceElem(e, b, func(bb logic.Bindings) error {
			h, err := e.Atom.Substitute(bb).Eval()
			if err != nil {
				return err
			}
			hid := gr.out.AtomIDFor(h.Key())
			gr.markPossible(h, next)
			var guard AtomID
			if len(e.Cond) > 0 {
				guard, err = gr.condGuard(e.Cond, bb)
				if err != nil {
					return err
				}
			}
			heads = append(heads, hid)
			conds = append(conds, guard)
			return nil
		})
		if err != nil {
			return err
		}
	}
	if len(heads) == 0 {
		// An empty choice with a lower bound > 0 is unsatisfiable when the
		// body holds.
		if r.Lower != logic.Unbounded && r.Lower > 0 {
			gr.out.AddConstraint(pos, neg)
		}
		return nil
	}
	gr.out.AddChoice(heads, conds, r.Lower, r.Upper, pos, neg)
	return nil
}

// expandChoiceElem joins the element's positive conditions over possible
// atoms, invoking fn per condition instantiation (once if no conditions).
func (gr *grounder) expandChoiceElem(e logic.ChoiceElem, b logic.Bindings, fn func(logic.Bindings) error) error {
	if len(e.Cond) == 0 {
		return fn(b)
	}
	body := make([]logic.BodyElem, len(e.Cond))
	for i, c := range e.Cond {
		body[i] = c
	}
	return gr.join(body, -1, b, fn)
}

// condGuard interns a guard atom equivalent to the conjunction of the
// (ground) condition literals. Single positive conditions reuse the
// condition atom itself.
func (gr *grounder) condGuard(cond []logic.Literal, b logic.Bindings) (AtomID, error) {
	if len(cond) == 1 && !cond[0].Negated {
		atom, err := cond[0].Atom.Substitute(b).Eval()
		if err != nil {
			return 0, err
		}
		return gr.out.AtomIDFor(atom.Key()), nil
	}
	var pos []AtomID
	keys := make([]string, 0, len(cond))
	for _, c := range cond {
		atom, err := c.Atom.Substitute(b).Eval()
		if err != nil {
			return 0, err
		}
		pos = append(pos, gr.out.AtomIDFor(atom.Key()))
		keys = append(keys, atom.Key())
	}
	guard := gr.out.AtomIDFor("__cond(" + strings.Join(keys, ",") + ")")
	gr.out.internal[int(guard)-1] = true
	if gr.incremental {
		// Re-emission after choice growth revisits old elements; the
		// guard's support rule is identical (the key encodes the
		// conjunction), so emit it once per session.
		if gr.condSeen[guard] {
			return guard, nil
		}
		gr.condSeen[guard] = true
	}
	gr.out.AddBasic(guard, pos, nil)
	return guard, nil
}

func (gr *grounder) markPossible(a logic.Atom, next map[string][]logic.Atom) {
	key := a.Key()
	if gr.isPoss[key] {
		return
	}
	gr.isPoss[key] = true
	gr.numPossible++
	sig := a.Signature()
	p := gr.possible[sig]
	if p == nil {
		p = &atomPool{index: make([]map[string][]int32, len(a.Args))}
		gr.possible[sig] = p
	}
	pi := int32(len(p.atoms))
	p.atoms = append(p.atoms, a)
	// Keep any already-built argument indexes current.
	for i, idx := range p.index {
		if idx != nil {
			idx[a.Args[i].String()] = append(idx[a.Args[i].String()], pi)
		}
	}
	next[sig] = append(next[sig], a)
}

// groundMinimize instantiates #minimize elements. Each ground element gets
// a guard atom derived from its condition; elements with equal
// (priority, weight, tuple) share a guard (counted once, like clingo).
func (gr *grounder) groundMinimize(elems []logic.MinimizeElem) error {
	gr.minGuard = map[string]AtomID{}
	for _, m := range elems {
		body := m.Cond
		emit := func(b logic.Bindings) error {
			w, err := logic.EvalInt(m.Weight.Substitute(b))
			if err != nil {
				return err
			}
			tuple := make([]string, 0, len(m.Tuple))
			for _, t := range m.Tuple {
				et, err := logic.Eval(t.Substitute(b))
				if err != nil {
					return err
				}
				tuple = append(tuple, et.String())
			}
			tupleKey := strings.Join(tuple, ",")
			pos, neg, err := gr.groundBody(body, b)
			if err != nil {
				return err
			}
			dedupKey := fmt.Sprintf("%d@%d[%s]", w, m.Priority, tupleKey)
			guard, ok := gr.minGuard[dedupKey]
			if !ok {
				guard = gr.out.NewInternalAtom("min")
				gr.minGuard[dedupKey] = guard
				gr.out.Minimize = append(gr.out.Minimize, GroundMinimize{
					Weight: w, Priority: m.Priority, Tuple: tupleKey, Guard: guard,
				})
			}
			gr.out.AddBasic(guard, pos, neg)
			return nil
		}
		if err := gr.join(body, -1, logic.Bindings{}, emit); err != nil {
			return err
		}
	}
	return nil
}

// simplifyNegatives drops negative body literals whose atom can never be
// derived (not possible): such literals are trivially true.
func (gr *grounder) simplifyNegatives() {
	poss := make([]bool, gr.out.NumAtoms()+1)
	for key, ok := range gr.isPoss {
		if !ok {
			continue
		}
		if id, found := gr.out.LookupAtom(key); found {
			poss[id] = true
		}
	}
	// Guard/internal atoms have rules; they are derivable.
	for _, r := range gr.out.Rules {
		if r.Kind == KindBasic && r.Head != 0 {
			poss[r.Head] = true
		}
	}
	for i := range gr.out.Rules {
		r := &gr.out.Rules[i]
		kept := r.Neg[:0]
		for _, n := range r.Neg {
			if poss[n] {
				kept = append(kept, n)
			}
		}
		r.Neg = kept
	}
}

// expandIntervalFacts replaces facts whose head arguments contain intervals
// with one fact per member of the cartesian product.
func expandIntervalFacts(rules []logic.Rule) ([]logic.Rule, error) {
	out := make([]logic.Rule, 0, len(rules))
	for _, r := range rules {
		if !r.IsFact() || !hasInterval(r.Head.Args) {
			if r.Head != nil && hasInterval(r.Head.Args) {
				return nil, fmt.Errorf("solver: interval in non-fact head of %s", r)
			}
			out = append(out, r)
			continue
		}
		expanded, err := expandArgs(r.Head.Args)
		if err != nil {
			return nil, fmt.Errorf("solver: fact %s: %w", r, err)
		}
		for _, args := range expanded {
			out = append(out, logic.Fact(logic.Atom{Pred: r.Head.Pred, Args: args}))
		}
	}
	return out, nil
}

func hasInterval(args []logic.Term) bool {
	for _, a := range args {
		if _, ok := a.(logic.Interval); ok {
			return true
		}
	}
	return false
}

func expandArgs(args []logic.Term) ([][]logic.Term, error) {
	result := [][]logic.Term{{}}
	for _, a := range args {
		iv, ok := a.(logic.Interval)
		if !ok {
			for i := range result {
				result[i] = append(result[i], a)
			}
			continue
		}
		lo, err := logic.EvalInt(iv.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := logic.EvalInt(iv.Hi)
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("empty interval %d..%d", lo, hi)
		}
		grown := make([][]logic.Term, 0, len(result)*(hi-lo+1))
		for _, prefix := range result {
			for v := lo; v <= hi; v++ {
				row := make([]logic.Term, len(prefix), len(prefix)+1)
				copy(row, prefix)
				grown = append(grown, append(row, logic.Num(v)))
			}
		}
		result = grown
	}
	return result, nil
}
