package logic

import (
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{Sym("tank"), "tank"},
		{Sym("With Space"), `"With Space"`},
		{Sym("Upper"), `"Upper"`},
		{Sym(""), `""`},
		{Num(42), "42"},
		{Num(-7), "-7"},
		{Var("X"), "X"},
		{Func("state", Sym("tank"), Var("S")), "state(tank,S)"},
		{Func("f", Func("g", Num(1))), "f(g(1))"},
		{Interval{Lo: Num(0), Hi: Num(4)}, "0..4"},
		{BinOp{Op: OpAdd, Left: Var("X"), Right: Num(1)}, "(X+1)"},
	}
	for _, tt := range tests {
		if got := tt.term.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.term, got, tt.want)
		}
	}
}

func TestGroundAndVars(t *testing.T) {
	tm := Func("state", Sym("tank"), Var("S"), BinOp{Op: OpAdd, Left: Var("T"), Right: Num(1)})
	if tm.Ground() {
		t.Error("term with variables reported ground")
	}
	vars := tm.Vars(nil)
	if len(vars) != 2 || vars[0] != "S" || vars[1] != "T" {
		t.Errorf("Vars = %v", vars)
	}
	if !Func("f", Num(1), Sym("a")).Ground() {
		t.Error("ground term reported non-ground")
	}
}

func TestSubstitute(t *testing.T) {
	b := Bindings{"X": Num(3), "Y": Sym("tank")}
	tm := Func("p", Var("X"), Var("Y"), Var("Z"))
	got := tm.Substitute(b).String()
	if got != "p(3,tank,Z)" {
		t.Errorf("Substitute = %q", got)
	}
	// Original must be unchanged.
	if tm.String() != "p(X,Y,Z)" {
		t.Error("Substitute mutated the original term")
	}
}

func TestBindingsClone(t *testing.T) {
	b := Bindings{"X": Num(1)}
	c := b.Clone()
	c["Y"] = Num(2)
	if _, ok := b["Y"]; ok {
		t.Error("Clone must not share storage")
	}
}

func TestEvalArithmetic(t *testing.T) {
	tests := []struct {
		term    Term
		want    int
		wantErr bool
	}{
		{BinOp{Op: OpAdd, Left: Num(2), Right: Num(3)}, 5, false},
		{BinOp{Op: OpSub, Left: Num(2), Right: Num(3)}, -1, false},
		{BinOp{Op: OpMul, Left: Num(4), Right: Num(3)}, 12, false},
		{BinOp{Op: OpDiv, Left: Num(7), Right: Num(2)}, 3, false},
		{BinOp{Op: OpMod, Left: Num(7), Right: Num(2)}, 1, false},
		{BinOp{Op: OpDiv, Left: Num(7), Right: Num(0)}, 0, true},
		{BinOp{Op: OpMod, Left: Num(7), Right: Num(0)}, 0, true},
		{BinOp{Op: OpAdd, Left: Sym("a"), Right: Num(1)}, 0, true},
		{BinOp{Op: OpAdd, Left: Var("X"), Right: Num(1)}, 0, true},
		{BinOp{Op: OpMul, Left: BinOp{Op: OpAdd, Left: Num(1), Right: Num(2)}, Right: Num(3)}, 9, false},
	}
	for _, tt := range tests {
		got, err := EvalInt(tt.term)
		if (err != nil) != tt.wantErr {
			t.Errorf("EvalInt(%s) err = %v, wantErr %v", tt.term, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("EvalInt(%s) = %d, want %d", tt.term, got, tt.want)
		}
	}
}

func TestEvalInsideCompound(t *testing.T) {
	tm := Func("cost", BinOp{Op: OpAdd, Left: Num(10), Right: Num(5)})
	e, err := Eval(tm)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "cost(15)" {
		t.Errorf("Eval = %s", e)
	}
}

func TestEvalRejectsInterval(t *testing.T) {
	if _, err := Eval(Interval{Lo: Num(1), Hi: Num(3)}); err == nil {
		t.Error("Eval(interval) must fail outside fact positions")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// numbers < symbols < compounds
	ordered := []Term{
		Num(-5), Num(0), Num(7),
		Sym("alpha"), Sym("beta"),
		Func("f", Num(1)), Func("f", Num(2)), Func("f", Num(1), Num(1)), Func("g", Num(0)),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%s,%s) = %d, want <0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%s,%s) = %d, want 0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%s,%s) = %d, want >0", ordered[i], ordered[j], got)
			}
		}
	}
}

// Property: Compare is antisymmetric on evaluated simple terms.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int, sa, sb string) bool {
		ta, tb := Term(Num(a)), Term(Num(b))
		if len(sa)%2 == 0 {
			ta = Sym(sa)
		}
		if len(sb)%2 == 0 {
			tb = Sym(sb)
		}
		x, y := Compare(ta, tb), Compare(tb, ta)
		return (x == 0) == (y == 0) && (x < 0) == (y > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomBasics(t *testing.T) {
	a := A("state", Sym("tank"), Var("S"))
	if a.Ground() {
		t.Error("atom with variable reported ground")
	}
	if a.Signature() != "state/2" {
		t.Errorf("Signature = %s", a.Signature())
	}
	sub := a.Substitute(Bindings{"S": Sym("high")})
	if sub.Key() != "state(tank,high)" {
		t.Errorf("Key = %s", sub.Key())
	}
	if A("overflow").String() != "overflow" {
		t.Error("propositional atom rendering")
	}
}

func TestAtomEval(t *testing.T) {
	a := A("cost", BinOp{Op: OpMul, Left: Num(3), Right: Num(4)})
	e, err := a.Eval()
	if err != nil {
		t.Fatal(err)
	}
	if e.Key() != "cost(12)" {
		t.Errorf("Eval = %s", e.Key())
	}
	bad := A("cost", Var("X"))
	if _, err := bad.Eval(); err == nil {
		t.Error("Eval of non-ground atom must fail")
	}
}

func TestComparisonHolds(t *testing.T) {
	tests := []struct {
		cmp  Comparison
		want bool
	}{
		{Comparison{Op: CmpLt, Left: Num(1), Right: Num(2)}, true},
		{Comparison{Op: CmpLt, Left: Num(2), Right: Num(2)}, false},
		{Comparison{Op: CmpLeq, Left: Num(2), Right: Num(2)}, true},
		{Comparison{Op: CmpGt, Left: Num(3), Right: Num(2)}, true},
		{Comparison{Op: CmpGeq, Left: Num(2), Right: Num(3)}, false},
		{Comparison{Op: CmpEq, Left: Sym("a"), Right: Sym("a")}, true},
		{Comparison{Op: CmpNeq, Left: Sym("a"), Right: Sym("b")}, true},
		{Comparison{Op: CmpEq, Left: BinOp{Op: OpAdd, Left: Num(1), Right: Num(1)}, Right: Num(2)}, true},
		{Comparison{Op: CmpLt, Left: Sym("a"), Right: Sym("b")}, true},
	}
	for _, tt := range tests {
		got, err := tt.cmp.Holds()
		if err != nil {
			t.Errorf("Holds(%s): %v", tt.cmp, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Holds(%s) = %v, want %v", tt.cmp, got, tt.want)
		}
	}
	unbound := Comparison{Op: CmpLt, Left: Var("X"), Right: Num(1)}
	if _, err := unbound.Holds(); err == nil {
		t.Error("Holds with unbound variable must fail")
	}
}
