package solver

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cpsrisk/internal/logic"
)

// solve is a test helper: parse, ground, solve, and render each model as a
// sorted comma-joined atom string.
func solve(t *testing.T, src string, opts Options) []string {
	t.Helper()
	res, err := SolveSource(src, opts)
	if err != nil {
		t.Fatalf("SolveSource: %v", err)
	}
	return renderModels(res)
}

func renderModels(res *Result) []string {
	out := make([]string, 0, len(res.Models))
	for _, m := range res.Models {
		out = append(out, strings.Join(m.Atoms, ","))
	}
	sort.Strings(out)
	return out
}

func wantModels(t *testing.T, got []string, want ...string) {
	t.Helper()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("model count = %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("model[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFactsOnly(t *testing.T) {
	got := solve(t, `a. b(1). b(2).`, Options{})
	wantModels(t, got, "a,b(1),b(2)")
}

func TestStratifiedDeduction(t *testing.T) {
	got := solve(t, `
		edge(a,b). edge(b,c). edge(c,d).
		reach(a).
		reach(Y) :- reach(X), edge(X,Y).
	`, Options{})
	wantModels(t, got, "edge(a,b),edge(b,c),edge(c,d),reach(a),reach(b),reach(c),reach(d)")
}

func TestNegationDefault(t *testing.T) {
	// Classic: bird flies unless abnormal.
	got := solve(t, `
		bird(tweety). bird(ostrich).
		abnormal(ostrich).
		flies(X) :- bird(X), not abnormal(X).
	`, Options{})
	wantModels(t, got, "abnormal(ostrich),bird(ostrich),bird(tweety),flies(tweety)")
}

func TestEvenLoopTwoModels(t *testing.T) {
	// a :- not b. b :- not a.  => two stable models.
	got := solve(t, `
		a :- not b.
		b :- not a.
	`, Options{})
	wantModels(t, got, "a", "b")
}

func TestOddLoopNoModel(t *testing.T) {
	// a :- not a.  => no stable model.
	got := solve(t, `a :- not a.`, Options{})
	wantModels(t, got)
}

func TestPositiveLoopUnfounded(t *testing.T) {
	// a :- b. b :- a.  => only the empty model; {a,b} is unfounded.
	got := solve(t, `
		a :- b.
		b :- a.
	`, Options{})
	wantModels(t, got, "")
}

func TestPositiveLoopWithExternalSupport(t *testing.T) {
	got := solve(t, `
		a :- b.
		b :- a.
		b :- c.
		c.
	`, Options{})
	wantModels(t, got, "a,b,c")
}

func TestLoopThroughChoice(t *testing.T) {
	// The loop {a,b} must not be self-supporting even when a choice atom
	// feeds it.
	got := solve(t, `
		{ c }.
		a :- b.
		b :- a.
		b :- c.
	`, Options{})
	wantModels(t, got, "", "a,b,c")
}

func TestConstraintPrunes(t *testing.T) {
	got := solve(t, `
		a :- not b.
		b :- not a.
		:- b.
	`, Options{})
	wantModels(t, got, "a")
}

func TestUnsatConstraint(t *testing.T) {
	res, err := SolveSource(`a. :- a.`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable || len(res.Models) != 0 {
		t.Fatalf("expected UNSAT, got %v", res.Models)
	}
}

func TestChoiceFree(t *testing.T) {
	got := solve(t, `{ a }. { b }.`, Options{})
	wantModels(t, got, "", "a", "a,b", "b")
}

func TestChoiceBounds(t *testing.T) {
	got := solve(t, `1 { a; b } 1.`, Options{})
	wantModels(t, got, "a", "b")
}

func TestChoiceExactlyTwoOfThree(t *testing.T) {
	got := solve(t, `2 { a; b; c } 2.`, Options{})
	wantModels(t, got, "a,b", "a,c", "b,c")
}

func TestChoiceLowerOnly(t *testing.T) {
	got := solve(t, `2 { a; b; c }.`, Options{})
	wantModels(t, got, "a,b", "a,c", "b,c", "a,b,c")
}

func TestChoiceUpperOnly(t *testing.T) {
	got := solve(t, `{ a; b } 1.`, Options{})
	wantModels(t, got, "", "a", "b")
}

func TestChoiceConditional(t *testing.T) {
	got := solve(t, `
		candidate(f1). candidate(f2).
		{ active(F) : candidate(F) }.
	`, Options{})
	wantModels(t, got,
		"candidate(f1),candidate(f2)",
		"active(f1),candidate(f1),candidate(f2)",
		"active(f2),candidate(f1),candidate(f2)",
		"active(f1),active(f2),candidate(f1),candidate(f2)")
}

func TestChoiceConditionDerivedLate(t *testing.T) {
	// The condition atom is derived through a rule chain, exercising the
	// fixpoint re-expansion of choice elements.
	got := solve(t, `
		seed(f1).
		candidate(X) :- seed(X).
		{ active(F) : candidate(F) }.
	`, Options{})
	wantModels(t, got,
		"candidate(f1),seed(f1)",
		"active(f1),candidate(f1),seed(f1)")
}

func TestChoiceWithBodyGuard(t *testing.T) {
	got := solve(t, `
		go.
		1 { pick(a); pick(b) } 1 :- go.
	`, Options{})
	wantModels(t, got, "go,pick(a)", "go,pick(b)")
}

func TestChoiceBodyFalse(t *testing.T) {
	got := solve(t, `
		1 { pick(a); pick(b) } 1 :- go.
	`, Options{})
	// go is not derivable, so the choice never fires; pick atoms stay false.
	wantModels(t, got, "")
}

func TestGraphColoring(t *testing.T) {
	// Triangle with 3 colors: 6 proper colorings.
	src := `
		node(1). node(2). node(3).
		edge(1,2). edge(2,3). edge(1,3).
		col(r). col(g). col(b).
		1 { color(N,C) : col(C) } 1 :- node(N).
		:- edge(X,Y), color(X,C), color(Y,C).
	`
	got := solve(t, src, Options{})
	if len(got) != 6 {
		t.Fatalf("triangle 3-coloring count = %d, want 6\n%v", len(got), got)
	}
	// And with 2 colors it is impossible.
	src2 := strings.Replace(src, "col(r). col(g). col(b).", "col(r). col(g).", 1)
	got2 := solve(t, src2, Options{})
	if len(got2) != 0 {
		t.Fatalf("triangle 2-coloring should be UNSAT, got %d models", len(got2))
	}
}

func TestIndependentSetCount(t *testing.T) {
	// Path a-b-c: independent sets: {}, {a}, {b}, {c}, {a,c} = 5.
	got := solve(t, `
		node(a). node(b). node(c).
		edge(a,b). edge(b,c).
		{ in(N) : node(N) }.
		:- edge(X,Y), in(X), in(Y).
	`, Options{})
	if len(got) != 5 {
		t.Fatalf("independent sets = %d, want 5: %v", len(got), got)
	}
}

func TestArithmeticInRules(t *testing.T) {
	got := solve(t, `
		n(1). n(2). n(3).
		double(X, Y) :- n(X), Y = X * 2.
		big(X) :- n(X), X >= 2.
	`, Options{})
	wantModels(t, got, "big(2),big(3),double(1,2),double(2,4),double(3,6),n(1),n(2),n(3)")
}

func TestIntervalFacts(t *testing.T) {
	got := solve(t, `
		time(0..3).
		last(T) :- time(T), not time(T+1).
	`, Options{})
	wantModels(t, got, "last(3),time(0),time(1),time(2),time(3)")
}

func TestIntervalPairFacts(t *testing.T) {
	res, err := SolveSource(`grid(1..2, 1..2).`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 || len(res.Models[0].Atoms) != 4 {
		t.Fatalf("grid expansion = %v", res.Models)
	}
}

func TestMaxModelsLimit(t *testing.T) {
	got := solve(t, `{ a }. { b }. { c }.`, Options{MaxModels: 3})
	if len(got) != 3 {
		t.Fatalf("MaxModels: got %d", len(got))
	}
}

func TestOptimizeSimple(t *testing.T) {
	res, err := SolveSource(`
		item(a, 3). item(b, 5). item(c, 2).
		1 { pick(X) : item(X, W) }.
		#minimize { W,X : pick(X), item(X, W) }.
	`, Options{Optimize: true, MaxModels: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("expected optimal result")
	}
	got := renderModels(res)
	wantModels(t, got, "item(a,3),item(b,5),item(c,2),pick(c)")
	if res.Models[0].Cost[0].Cost != 2 {
		t.Errorf("cost = %+v, want 2", res.Models[0].Cost)
	}
}

func TestOptimizeCoversAll(t *testing.T) {
	// Weighted vertex cover of path a-b-c with weights a=1,b=5,c=1:
	// optimal cover is {a,c} with cost 2.
	res, err := SolveSource(`
		node(a,1). node(b,5). node(c,1).
		edge(a,b). edge(b,c).
		{ in(N) : node(N,W) }.
		:- edge(X,Y), not in(X), not in(Y).
		#minimize { W,N : in(N), node(N,W) }.
	`, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("models = %v", renderModels(res))
	}
	m := res.Models[0]
	if !m.Contains("in(a)") || !m.Contains("in(c)") || m.Contains("in(b)") {
		t.Errorf("optimal cover = %v", m.Atoms)
	}
	if m.Cost[0].Cost != 2 {
		t.Errorf("cost = %+v", m.Cost)
	}
}

func TestOptimizeEnumeratesAllOptima(t *testing.T) {
	// Two symmetric optima.
	res, err := SolveSource(`
		1 { pick(a); pick(b) } 1.
		cost(a, 4). cost(b, 4).
		#minimize { C,X : pick(X), cost(X, C) }.
	`, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 2 {
		t.Fatalf("optima = %v", renderModels(res))
	}
}

func TestOptimizeMultiPriority(t *testing.T) {
	// Higher priority dominates: first minimize violations (prio 2), then
	// cost (prio 1).
	res, err := SolveSource(`
		1 { plan(cheap); plan(safe) } 1.
		violation(1) :- plan(cheap).
		price(cheap, 1). price(safe, 10).
		#minimize { 1@2,V : violation(V) }.
		#minimize { P@1,X : plan(X), price(X, P) }.
	`, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 || !res.Models[0].Contains("plan(safe)") {
		t.Fatalf("models = %v", renderModels(res))
	}
	costs := res.Models[0].Cost
	if len(costs) != 2 || costs[0].Priority != 2 || costs[0].Cost != 0 || costs[1].Cost != 10 {
		t.Errorf("costs = %+v", costs)
	}
}

func TestOptimizeWithMaximize(t *testing.T) {
	res, err := SolveSource(`
		item(a, 3). item(b, 5).
		{ pick(X) : item(X, V) } 1.
		#maximize { V,X : pick(X), item(X, V) }.
	`, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 || !res.Models[0].Contains("pick(b)") {
		t.Fatalf("maximize models = %v", renderModels(res))
	}
}

func TestWeakConstraint(t *testing.T) {
	res, err := SolveSource(`
		1 { pick(a); pick(b) } 1.
		:~ pick(a). [3@1, a]
		:~ pick(b). [1@1, b]
	`, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 || !res.Models[0].Contains("pick(b)") {
		t.Fatalf("weak constraint models = %v", renderModels(res))
	}
}

func TestMinimizeTupleDeduplication(t *testing.T) {
	// Two minimize elements with the same (weight, tuple) must count once.
	res, err := SolveSource(`
		a. b.
		hit :- a.
		hit :- b.
		#minimize { 5,t : a ; 5,t : b }.
	`, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("models = %v", renderModels(res))
	}
	if got := res.Models[0].Cost[0].Cost; got != 5 {
		t.Errorf("deduplicated cost = %d, want 5", got)
	}
}

func TestPaperListing1FaultActivation(t *testing.T) {
	// The paper's Listing 1 shape: a fault is potential when no mitigation
	// is active for it on the component.
	got := solve(t, `
		component(ws).
		fault(malware).
		mitigation(malware, endpoint).
		potential_fault(C, F) :- component(C), fault(F),
			mitigation(F, M), not active_mitigation(C, M).
	`, Options{})
	wantModels(t, got,
		"component(ws),fault(malware),mitigation(malware,endpoint),potential_fault(ws,malware)")
}

func TestPaperListing1WithMitigation(t *testing.T) {
	got := solve(t, `
		component(ws).
		fault(malware).
		mitigation(malware, endpoint).
		active_mitigation(ws, endpoint).
		potential_fault(C, F) :- component(C), fault(F),
			mitigation(F, M), not active_mitigation(C, M).
	`, Options{})
	if len(got) != 1 || strings.Contains(got[0], "potential_fault") {
		t.Fatalf("mitigated fault must not be potential: %v", got)
	}
}

func TestHamiltonianCycleSmall(t *testing.T) {
	// Directed 3-cycle has exactly one Hamiltonian cycle. The reachability
	// part exercises loop formulas on derived predicates under choices.
	got := solve(t, `
		node(a). node(b). node(c).
		arc(a,b). arc(b,c). arc(c,a). arc(a,c).
		1 { in(X,Y) : arc(X,Y) } 1 :- node(X).
		:- in(X,Y), in(Z,Y), X != Z.
		reach(a).
		reach(Y) :- reach(X), in(X,Y).
		:- node(X), not reach(X).
	`, Options{})
	if len(got) != 1 {
		t.Fatalf("hamiltonian cycles = %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "in(a,b)") || !strings.Contains(got[0], "in(b,c)") || !strings.Contains(got[0], "in(c,a)") {
		t.Errorf("cycle = %v", got[0])
	}
}

func TestStableModelsAreFixpoints(t *testing.T) {
	// Property-style check across a battery of programs: every returned
	// model equals the least model of its reduct.
	programs := []string{
		`a :- not b. b :- not a.`,
		`{ a; b; c }.`,
		`p(1..3). q(X) :- p(X), not r(X). { r(X) : p(X) }.`,
		`a :- b. b :- a. b :- c. { c }.`,
		`1 { x; y } 1. z :- x. z :- y.`,
	}
	for pi, src := range programs {
		prog, err := logic.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		gp, err := Ground(prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(gp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for mi, m := range res.Models {
			if !isStableModel(gp, m) {
				t.Errorf("program %d model %d (%v) is not a reduct fixpoint", pi, mi, m.Atoms)
			}
		}
		// And no duplicates.
		seen := map[string]bool{}
		for _, m := range res.Models {
			key := strings.Join(m.Atoms, ",")
			if seen[key] {
				t.Errorf("program %d: duplicate model %q", pi, key)
			}
			seen[key] = true
		}
	}
}

// isStableModel independently checks stability: compute the least model of
// the reduct of gp w.r.t. the model and compare.
func isStableModel(gp *GroundProgram, m Model) bool {
	inModel := func(id AtomID) bool {
		name := gp.AtomName(id)
		if gp.IsInternal(id) {
			// Internal guard atoms: derive truth from their defining rules
			// during the fixpoint below; treat as "in model" when derived.
			return true // participation handled conservatively below
		}
		return m.Contains(name)
	}
	_ = inModel
	// Reconstruct the full truth assignment over atoms: non-internal from
	// the model; internal atoms from their defining basic rules, iterated.
	truth := make([]bool, gp.NumAtoms()+1)
	for id := AtomID(1); id <= AtomID(gp.NumAtoms()); id++ {
		if !gp.IsInternal(id) {
			truth[id] = m.Contains(gp.AtomName(id))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range gp.Rules {
			if r.Kind != KindBasic || r.Head == 0 || !gp.IsInternal(r.Head) || truth[r.Head] {
				continue
			}
			ok := true
			for _, p := range r.Pos {
				if !truth[p] {
					ok = false
					break
				}
			}
			for _, n := range r.Neg {
				if truth[n] {
					ok = false
					break
				}
			}
			if ok {
				truth[r.Head] = true
				changed = true
			}
		}
	}
	// Integrity constraints must not fire under the model truth.
	for _, r := range gp.Rules {
		if r.Kind != KindBasic || r.Head != 0 {
			continue
		}
		fires := true
		for _, p := range r.Pos {
			if !truth[p] {
				fires = false
				break
			}
		}
		for _, n := range r.Neg {
			if truth[n] {
				fires = false
				break
			}
		}
		if fires {
			return false
		}
	}

	// Cardinality bounds of choice rules must hold under the model truth.
	for _, r := range gp.Rules {
		if r.Kind != KindChoice {
			continue
		}
		bodyOK := true
		for _, p := range r.Pos {
			if !truth[p] {
				bodyOK = false
				break
			}
		}
		for _, n := range r.Neg {
			if truth[n] {
				bodyOK = false
				break
			}
		}
		if !bodyOK {
			continue
		}
		count := 0
		for i, h := range r.Heads {
			condOK := r.Conds[i] == 0 || truth[r.Conds[i]]
			if condOK && truth[h] {
				count++
			}
		}
		if r.Lower != logic.Unbounded && count < r.Lower {
			return false
		}
		if r.Upper != logic.Unbounded && count > r.Upper {
			return false
		}
	}

	// Least model of the reduct.
	derived := make([]bool, gp.NumAtoms()+1)
	for changed := true; changed; {
		changed = false
		for _, r := range gp.Rules {
			negOK := true
			for _, n := range r.Neg {
				if truth[n] {
					negOK = false
					break
				}
			}
			if !negOK {
				continue
			}
			posOK := true
			for _, p := range r.Pos {
				if !derived[p] {
					posOK = false
					break
				}
			}
			if !posOK {
				continue
			}
			switch r.Kind {
			case KindBasic:
				if r.Head != 0 && !derived[r.Head] {
					derived[r.Head] = true
					changed = true
				}
			case KindChoice:
				for i, h := range r.Heads {
					condOK := r.Conds[i] == 0 || derived[r.Conds[i]]
					if condOK && truth[h] && !derived[h] {
						derived[h] = true
						changed = true
					}
				}
			}
		}
	}
	for id := AtomID(1); id <= AtomID(gp.NumAtoms()); id++ {
		if truth[id] != derived[id] {
			return false
		}
	}
	return true
}

func TestGroundProgramString(t *testing.T) {
	prog := logic.MustParse(`
		a. b :- a, not c. { d } 1.
	`)
	gp, err := Ground(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := gp.String()
	for _, want := range []string{"a.", "b :- a."} {
		if !strings.Contains(s, want) {
			t.Errorf("ground string missing %q:\n%s", want, s)
		}
	}
	// "not c" must be simplified away: c is never derivable.
	if strings.Contains(s, "not c") {
		t.Errorf("underivable negative literal not simplified:\n%s", s)
	}
}

func TestSolverStats(t *testing.T) {
	res, err := SolveSource(`{ a; b; c }. :- a, b.`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Atoms == 0 || res.Stats.Vars == 0 || res.Stats.Clauses == 0 {
		t.Errorf("stats not filled: %+v", res.Stats)
	}
	if res.Stats.Decisions == 0 {
		t.Errorf("expected some decisions: %+v", res.Stats)
	}
}

func TestLargeStratifiedChain(t *testing.T) {
	// A long deduction chain exercises semi-naive grounding.
	var sb strings.Builder
	sb.WriteString("p(0).\n")
	sb.WriteString("p(Y) :- p(X), Y = X + 1, Y <= 200.\n")
	res, err := SolveSource(sb.String(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 || len(res.Models[0].Atoms) != 201 {
		t.Fatalf("chain length = %d", len(res.Models[0].Atoms))
	}
}

func TestModelWithPredicate(t *testing.T) {
	res, err := SolveSource(`p(1). p(2). pq(3). q.`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Models[0]
	if got := m.WithPredicate("p"); len(got) != 2 {
		t.Errorf("WithPredicate(p) = %v", got)
	}
	if got := m.WithPredicate("q"); len(got) != 1 || got[0] != "q" {
		t.Errorf("WithPredicate(q) = %v", got)
	}
}

func TestNoModelsForContradictoryFacts(t *testing.T) {
	res, err := SolveSource(`a. b. :- a, b.`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Fatal("expected UNSAT")
	}
}

func TestQueensFour(t *testing.T) {
	// 4-queens has 2 solutions.
	src := `
		row(1..4). colnum(1..4).
		1 { q(R,C) : colnum(C) } 1 :- row(R).
		:- q(R1,C), q(R2,C), R1 < R2.
		:- q(R1,C1), q(R2,C2), R1 < R2, C2 = C1 + (R2 - R1).
		:- q(R1,C1), q(R2,C2), R1 < R2, C2 = C1 - (R2 - R1).
	`
	got := solve(t, src, Options{})
	if len(got) != 2 {
		t.Fatalf("4-queens solutions = %d, want 2\n%s", len(got), strings.Join(got, "\n"))
	}
}

func BenchmarkSolveColoring(b *testing.B) {
	// Ring of n nodes, 3 colors, count one model.
	for _, n := range []int{10, 20, 40} {
		b.Run(fmt.Sprintf("ring%d", n), func(b *testing.B) {
			var sb strings.Builder
			for i := 0; i < n; i++ {
				fmt.Fprintf(&sb, "node(%d). edge(%d,%d).\n", i, i, (i+1)%n)
			}
			sb.WriteString("col(r). col(g). col(b).\n")
			sb.WriteString("1 { color(N,C) : col(C) } 1 :- node(N).\n")
			sb.WriteString(":- edge(X,Y), color(X,C), color(Y,C).\n")
			src := sb.String()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := SolveSource(src, Options{MaxModels: 1})
				if err != nil || !res.Satisfiable {
					b.Fatalf("err=%v sat=%v", err, res != nil && res.Satisfiable)
				}
			}
		})
	}
}

func BenchmarkGroundChain(b *testing.B) {
	src := "p(0).\np(Y) :- p(X), Y = X + 1, Y <= 500.\n"
	prog := logic.MustParse(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Ground(prog); err != nil {
			b.Fatal(err)
		}
	}
}
