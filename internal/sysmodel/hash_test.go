package sysmodel

import "testing"

func hashModel() *Model {
	return &Model{
		Name: "plant",
		Components: []*Component{
			{ID: "a", Name: "A", Type: "sensor", Layer: "physical", Attrs: map[string]string{"version": "1.0"}},
			{ID: "b", Name: "B", Type: "controller", Layer: "cyber"},
			{ID: "c", Name: "C", Type: "actuator", Layer: "physical", Attrs: map[string]string{"criticality": "VH"}},
		},
		Connections: []Connection{
			{From: PortRef{"a", "out"}, To: PortRef{"b", "in"}, Flow: SignalFlow},
			{From: PortRef{"b", "cmd"}, To: PortRef{"c", "cmd"}, Flow: SignalFlow, Label: "bus"},
		},
		Requirements: []Requirement{
			{ID: "R1", Description: "actuator ok", Formula: "ok(c)", Severity: "VH"},
		},
	}
}

func TestHashDeterministicAndOrderIndependent(t *testing.T) {
	m := hashModel()
	h1 := m.Hash()
	if h1 != m.Hash() {
		t.Fatal("hash not deterministic")
	}
	// Reorder components and connections: same model, same hash.
	r := hashModel()
	r.Components[0], r.Components[2] = r.Components[2], r.Components[0]
	r.Connections[0], r.Connections[1] = r.Connections[1], r.Connections[0]
	if r.Hash() != h1 {
		t.Fatal("hash depends on declaration order")
	}
	// Display name excluded.
	n := hashModel()
	n.Name = "renamed"
	if n.Hash() != h1 {
		t.Fatal("hash depends on model display name")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := hashModel().Hash()
	edits := map[string]func(*Model){
		"attr":        func(m *Model) { m.Components[0].Attrs["version"] = "2.0" },
		"type":        func(m *Model) { m.Components[1].Type = "scada_server" },
		"layer":       func(m *Model) { m.Components[1].Layer = "physical" },
		"comp-name":   func(m *Model) { m.Components[1].Name = "B2" },
		"add-comp":    func(m *Model) { m.Components = append(m.Components, &Component{ID: "d", Type: "hmi"}) },
		"drop-comp":   func(m *Model) { m.Components = m.Components[:2]; m.Connections = m.Connections[:1] },
		"rewire":      func(m *Model) { m.Connections[0].To = PortRef{"c", "cmd"} },
		"flow":        func(m *Model) { m.Connections[0].Flow = QuantityFlow },
		"label":       func(m *Model) { m.Connections[1].Label = "fieldbus" },
		"requirement": func(m *Model) { m.Requirements[0].Severity = "H" },
	}
	for name, edit := range edits {
		m := hashModel()
		edit(m)
		if m.Hash() == base {
			t.Errorf("edit %q did not change the model hash", name)
		}
	}
}

func TestBehavioralVsMetaSplit(t *testing.T) {
	a := hashModel().Fingerprint()

	meta := hashModel()
	meta.Components[0].Attrs["version"] = "9.9"
	meta.Components[0].Layer = "cyber"
	fm := meta.Fingerprint()
	if fm.Components["a"] == a.Components["a"] {
		t.Fatal("meta edit should change the full component hash")
	}
	if fm.Behavior["a"] != a.Behavior["a"] {
		t.Fatal("attr/layer edit must not change the behavioral hash")
	}

	behav := hashModel()
	behav.Components[0].Type = "valve"
	fb := behav.Fingerprint()
	if fb.Behavior["a"] == a.Behavior["a"] {
		t.Fatal("type edit must change the behavioral hash")
	}
}

func TestDiff(t *testing.T) {
	a := hashModel().Fingerprint()

	b := hashModel()
	b.Components[0].Attrs["version"] = "2.0"          // meta change on a
	b.Components[1].Type = "scada_server"             // behavior change on b
	b.Components = append(b.Components, &Component{ID: "d", Type: "hmi"}) // add d
	b.Connections[0].Flow = QuantityFlow              // change a>b slot
	d := a.Diff(b.Fingerprint())

	if got, want := join(d.ChangedMeta), "a"; got != want {
		t.Errorf("ChangedMeta = %q, want %q", got, want)
	}
	if got, want := join(d.ChangedBehavior), "b"; got != want {
		t.Errorf("ChangedBehavior = %q, want %q", got, want)
	}
	if got, want := join(d.Added), "d"; got != want {
		t.Errorf("Added = %q, want %q", got, want)
	}
	if len(d.Removed) != 0 {
		t.Errorf("Removed = %v, want none", d.Removed)
	}
	// The rewired slot appears twice: old signal key gone, new quantity key new.
	if len(d.ConnsChanged) != 2 {
		t.Errorf("ConnsChanged = %v, want 2 entries", d.ConnsChanged)
	}
	if d.RequirementsChanged {
		t.Error("requirements did not change")
	}
	if d.Touched() != 3 {
		t.Errorf("Touched = %d, want 3", d.Touched())
	}

	// Removal shows up from the other direction.
	rd := b.Fingerprint().Diff(a)
	if got, want := join(rd.Removed), "d"; got != want {
		t.Errorf("reverse Removed = %q, want %q", got, want)
	}

	// Identity.
	if !a.Diff(hashModel().Fingerprint()).Identical() {
		t.Error("self-diff not identical")
	}

	// Requirement edits flip the flag only.
	r := hashModel()
	r.Requirements[0].Severity = "H"
	dr := a.Diff(r.Fingerprint())
	if !dr.RequirementsChanged || dr.Touched() != 0 || len(dr.ConnsChanged) != 0 {
		t.Errorf("requirement-only diff = %+v", dr)
	}
}

func TestCompositeHash(t *testing.T) {
	inner := func() *Model {
		return &Model{
			Components: []*Component{
				{ID: "x", Type: "sensor"},
				{ID: "y", Type: "filter", Attrs: map[string]string{"gain": "2"}},
			},
			Connections: []Connection{{From: PortRef{"x", "out"}, To: PortRef{"y", "in"}, Flow: SignalFlow}},
		}
	}
	mk := func() *Model {
		return &Model{Components: []*Component{{
			ID: "sub", Type: "composite", Sub: inner(),
			Bindings: map[string]PortRef{"out": {"y", "out"}},
		}}}
	}
	base := mk().Fingerprint()

	// Inner structural edit changes both hashes.
	m1 := mk()
	m1.Components[0].Sub.Components[0].Type = "probe"
	f1 := m1.Fingerprint()
	if f1.Behavior["sub"] == base.Behavior["sub"] {
		t.Fatal("inner type edit must change outer behavioral hash")
	}
	// Inner attr edit changes the full hash but not the behavioral one.
	m2 := mk()
	m2.Components[0].Sub.Components[1].Attrs["gain"] = "3"
	f2 := m2.Fingerprint()
	if f2.Components["sub"] == base.Components["sub"] {
		t.Fatal("inner attr edit must change outer full hash")
	}
	if f2.Behavior["sub"] != base.Behavior["sub"] {
		t.Fatal("inner attr edit must not change outer behavioral hash")
	}
	// Binding edit changes the behavioral hash.
	m3 := mk()
	m3.Components[0].Bindings["out"] = PortRef{"x", "out"}
	if m3.Fingerprint().Behavior["sub"] == base.Behavior["sub"] {
		t.Fatal("binding edit must change behavioral hash")
	}
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
