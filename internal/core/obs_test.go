package core

import (
	"strings"
	"testing"

	"cpsrisk/internal/cegar"
	"cpsrisk/internal/obs"
)

// TestRunSpanTreeShape runs the full case study with tracing on and
// checks the span tree against the pipeline's shape: one root, every
// stage exactly once, the sweep nested under hazard, and the metrics
// and report projections populated from the same run.
func TestRunSpanTreeShape(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.Optimize = true
	cfg.Budget = -1
	cfg.Oracle = cegar.NewPlantOracle()
	cfg.Trace = obs.New("assessment")
	cfg.Metrics = obs.NewRegistry()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if a.Trace == nil {
		t.Fatal("no trace snapshot on assessment")
	}
	if a.Trace.Name != "assessment" {
		t.Errorf("root span = %q", a.Trace.Name)
	}
	for _, stage := range []string{"model", "candidates", "hazard", "validate", "mitigation"} {
		if n := a.Trace.Count(stage); n != 1 {
			t.Errorf("stage %q spans = %d, want exactly 1", stage, n)
		}
	}
	hz := a.Trace.Find("hazard")
	if hz == nil || hz.Find("sweep") == nil {
		t.Error("sweep span not nested under hazard")
	}
	if a.Trace.Find("validate").Find("level[assessment]") == nil {
		t.Error("cegar level span not nested under validate")
	}

	if a.Duration <= 0 {
		t.Error("Assessment.Duration not populated")
	}
	if rootDur := a.Trace.DurUS; a.Duration.Microseconds() != rootDur {
		t.Errorf("Duration %dus != root span %dus", a.Duration.Microseconds(), rootDur)
	}

	if a.Metrics == nil {
		t.Fatal("no metrics snapshot on assessment")
	}
	if a.Metrics.Counters["sweep.scenarios"] == 0 {
		t.Errorf("metrics = %+v", a.Metrics.Counters)
	}
	if a.Metrics.Counters["cegar.levels"] != 1 {
		t.Errorf("cegar.levels = %d, want 1", a.Metrics.Counters["cegar.levels"])
	}

	rep := a.Render()
	for _, want := range []string{"assessed in", "TIMING", "METRICS", "sweep.scenarios"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestRunUntracedHasNoObservabilityOutput pins the inverse: with no
// trace or registry configured the assessment carries no snapshots and
// the report stays free of the observability sections, while Duration
// is still populated from the wall clock.
func TestRunUntracedHasNoObservabilityOutput(t *testing.T) {
	cfg := caseStudyConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != nil || a.Metrics != nil {
		t.Error("untraced run produced observability snapshots")
	}
	if a.Duration <= 0 {
		t.Error("Assessment.Duration not populated")
	}
	rep := a.Render()
	if strings.Contains(rep, "TIMING") || strings.Contains(rep, "METRICS") {
		t.Error("untraced report carries observability sections")
	}
}
