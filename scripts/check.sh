#!/bin/sh
# check.sh is the canonical pre-merge verification: static checks, the
# full test suite under the race detector, and a short run of every
# native fuzz target. CI and `make check` both run exactly this script.
set -eu

cd "$(dirname "$0")/.."

fuzztime="${FUZZTIME:-5s}"

echo "== go vet =="
go vet ./...

# staticcheck is optional: offline builders don't have the module. Run
# it whenever the module cache already holds honnef.co (dev machines, CI
# images with a warm cache); skip with a notice otherwise.
if [ -d "$(go env GOMODCACHE)/honnef.co" ]; then
  echo "== staticcheck =="
  go run honnef.co/go/tools/cmd/staticcheck@latest ./...
else
  echo "== staticcheck == (skipped: honnef.co not in the module cache)"
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# The engine, the sweep, the result cache, the rank/unrank enumerator,
# and the solver portfolio are documented safe for concurrent use;
# hammer them under the race detector at both ends of the parallelism
# range.
echo "== go test -race -cpu=1,4 (epa, hazard, faults, store, solver, serve) =="
go test -race -cpu=1,4 -count=1 ./internal/epa ./internal/hazard ./internal/faults ./internal/store ./internal/solver ./internal/serve

# Differential corpus for delta re-assessment: ~20 scripted model edits,
# each asserting the incremental report is byte-identical to a cold run
# of the edited model, plus warm-hit and ASP session-migration checks.
echo "== go test -race -cpu=1,4 -run TestDelta|TestArtifact (core) =="
go test -race -cpu=1,4 -count=1 -run 'TestDelta|TestArtifact' ./internal/core

# Differential check: CDCL answer sets vs a brute-force stable-model
# enumerator over a seeded random program battery, always re-run fresh.
# The battery covers both the single-shot entry point and the incremental
# Session arm (assumption queries and incremental Add against fresh
# ground-truth re-solves).
echo "== go test -run TestDifferential (solver) =="
go test -run TestDifferential -count=1 ./internal/solver

# Portfolio battery: the same differential generators race 4 diversified
# engines against the sequential reference (models, costs, cores), plus
# determinism-mode collapse, cancellation promptness, and panic
# poisoning — under the race detector at both parallelism extremes.
echo "== go test -race -cpu=1,4 -run TestPortfolio|TestSessionPortfolio (solver) =="
go test -race -cpu=1,4 -count=1 -run 'TestPortfolio|TestSessionPortfolio' ./internal/solver

# Trace exporter end-to-end: assess the sample plant with tracing on and
# validate the emitted Chrome trace (sorted timestamps, matched B/E
# pairs, every executed pipeline stage present, and the correlation ID
# riding on the root span's args).
echo "== trace exporter (riskassess -trace -trace-id + tracecheck) =="
trace_out="$(mktemp)"
go run ./cmd/riskassess -model models/sme-plant.json -types models/types.json \
  -maxcard 1 -optimize -trace "$trace_out" -trace-id check-e2e >/dev/null
go run ./cmd/tracecheck \
  -require assessment,model,candidates,hazard,sweep,mitigation \
  -trace-id check-e2e "$trace_out"
rm -f "$trace_out"

# Service mode end-to-end: boot riskserve, drive a multi-tenant mix with
# loadgen, assert zero critical events, drain on SIGTERM. Skipped in
# short mode (CHECK_SHORT=1).
if [ -z "${CHECK_SHORT:-}" ]; then
  echo "== service loadtest (scripts/loadtest.sh) =="
  ./scripts/loadtest.sh
else
  echo "== service loadtest == (skipped: CHECK_SHORT set)"
fi

# Crash-safety battery: fault injection, corruption/self-heal, the
# crash matrix, and a real kill-and-resume of the CLI (fixed seeds).
echo "== chaos (scripts/chaos.sh) =="
./scripts/chaos.sh

echo "== fuzz (${fuzztime} each) =="
go test -run='^$' -fuzz=FuzzParse -fuzztime="$fuzztime" ./internal/logic
go test -run='^$' -fuzz=FuzzParseFormula -fuzztime="$fuzztime" ./internal/temporal
go test -run='^$' -fuzz=FuzzReadJSON -fuzztime="$fuzztime" ./internal/sysmodel
go test -run='^$' -fuzz=FuzzCacheRecord -fuzztime="$fuzztime" ./internal/store
go test -run='^$' -fuzz=FuzzCheckpoint -fuzztime="$fuzztime" ./internal/hazard
go test -run='^$' -fuzz=FuzzRankUnrank -fuzztime="$fuzztime" ./internal/faults

echo "OK"
