// Package mitigation implements the mitigation-analysis step of the
// framework (paper §IV-C): deriving, from the attack scenario space and
// the knowledge base, which mitigations block which candidate mutations,
// filtering the candidate set under an active mitigation selection (the
// semantics of the paper's Listing 1), and constructing the mitigation
// solution space handed to the cost-benefit optimizer.
package mitigation

import (
	"sort"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/qual"
)

// SpontaneousSource is the provenance tag of fault-mode candidates that do
// not come from the knowledge base; they are not blockable by security
// mitigations.
const SpontaneousSource = "fault_mode"

// SourceBlockers returns the mitigation IDs that block one mutation
// source: the technique's or vulnerability's mitigation list, or nil for
// spontaneous fault modes (unblockable).
func SourceBlockers(k *kb.KB, source string) []string {
	if source == SpontaneousSource {
		return nil
	}
	if t, ok := k.Technique(source); ok {
		return append([]string(nil), t.Mitigations...)
	}
	if v, ok := k.Vulnerability(source); ok {
		return append([]string(nil), v.Mitigations...)
	}
	return nil
}

// BlockersFor returns, per source of the mutation, the blocking mitigation
// IDs. The mutation is blocked by a selection iff EVERY source has at
// least one selected blocker (a fault reachable through an unmitigated
// path stays potential).
func BlockersFor(k *kb.KB, mut faults.Mutation) [][]string {
	out := make([][]string, 0, len(mut.Sources))
	for _, s := range mut.Sources {
		out = append(out, SourceBlockers(k, s))
	}
	return out
}

// Blocked reports whether the selection blocks the mutation.
func Blocked(k *kb.KB, mut faults.Mutation, selected map[string]bool) bool {
	if len(mut.Sources) == 0 {
		return false
	}
	for _, blockers := range BlockersFor(k, mut) {
		sourceBlocked := false
		for _, m := range blockers {
			if selected[m] {
				sourceBlocked = true
				break
			}
		}
		if !sourceBlocked {
			return false
		}
	}
	return true
}

// Filter removes blocked mutations from the candidate set — the paper's
// Listing 1 ("potential_fault(C,F) :- ..., not active_mitigation(C,M)")
// applied natively: with a mitigation active, its scenarios drop out of
// the evaluation.
func Filter(k *kb.KB, muts []faults.Mutation, selected map[string]bool) []faults.Mutation {
	out := make([]faults.Mutation, 0, len(muts))
	for _, m := range muts {
		if !Blocked(k, m, selected) {
			out = append(out, m)
		}
	}
	return out
}

// Relevant returns the mitigations referenced by any source of the
// candidate set, sorted by ID — the dimension of the mitigation solution
// space.
func Relevant(k *kb.KB, muts []faults.Mutation) []*kb.Mitigation {
	ids := map[string]bool{}
	for _, mut := range muts {
		for _, blockers := range BlockersFor(k, mut) {
			for _, id := range blockers {
				ids[id] = true
			}
		}
	}
	out := make([]*kb.Mitigation, 0, len(ids))
	for id := range ids {
		if m, ok := k.Mitigation(id); ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Coverage maps each relevant mitigation to the candidate mutations it
// participates in blocking (appears among the blockers of some source).
func Coverage(k *kb.KB, muts []faults.Mutation) map[string][]epa.Activation {
	out := map[string][]epa.Activation{}
	for _, mut := range muts {
		seen := map[string]bool{}
		for _, blockers := range BlockersFor(k, mut) {
			for _, id := range blockers {
				if !seen[id] {
					seen[id] = true
					out[id] = append(out[id], mut.Activation)
				}
			}
		}
	}
	return out
}

// ScenarioLoss is a hazardous scenario prepared for the cost-benefit
// optimizer: its numeric loss and the blocking structure
// (activation -> sources -> blocking mitigation IDs).
type ScenarioLoss struct {
	ID   string
	Loss int
	// Activations[i][j] lists the mitigation IDs blocking source j of
	// activation i; an empty inner list marks an unblockable source. The
	// scenario is blocked iff SOME activation has ALL sources blocked.
	Activations [][][]string
}

// BlockedBy reports whether the selection prevents the scenario.
func (s ScenarioLoss) BlockedBy(selected map[string]bool) bool {
	for _, sources := range s.Activations {
		if len(sources) == 0 {
			continue
		}
		all := true
		for _, blockers := range sources {
			one := false
			for _, m := range blockers {
				if selected[m] {
					one = true
					break
				}
			}
			if !one {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// LossWeights maps qualitative risk levels to numeric losses for the
// cost-benefit analysis (paper §IV-D "Failure Impact/Cost"). The default
// is an exponential-ish spread keeping level ordering strict.
var LossWeights = map[qual.Level]int{
	qual.VeryLow:  0,
	qual.Low:      10,
	qual.Medium:   50,
	qual.High:     200,
	qual.VeryHigh: 1000,
}

// PrepareLosses converts hazardous scenarios into the optimizer input,
// using the candidate-mutation index for blocking structure and the
// scenario risk level for loss.
func PrepareLosses(k *kb.KB, a *hazard.Analysis, muts []faults.Mutation) []ScenarioLoss {
	byAct := map[epa.Activation]faults.Mutation{}
	for _, m := range muts {
		byAct[m.Activation] = m
	}
	var out []ScenarioLoss
	for _, s := range a.Hazards() {
		sl := ScenarioLoss{ID: s.ID, Loss: LossWeights[s.Risk.Risk]}
		for _, act := range s.Scenario {
			mut, ok := byAct[act]
			if !ok {
				mut = faults.Mutation{Activation: act, Sources: []string{SpontaneousSource}}
			}
			sl.Activations = append(sl.Activations, BlockersFor(k, mut))
		}
		out = append(out, sl)
	}
	return out
}
