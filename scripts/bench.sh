#!/bin/sh
# bench.sh runs the perf-tracked benchmark suite (the scalability sweeps
# S1-S3, the multi-shot solving pair S4, the portfolio hard-instance
# race S5, the artifact-cache delta re-assessment pair S6, the
# served-vs-CLI warm-path pair S7, and the Fig. 1 end-to-end pipeline,
# plus the observability on/off overhead pair) with -benchmem and files
# the numbers into the BENCH_PR10.json ledger via cmd/benchjson. CI and
# `make bench` both run exactly this script. benchjson prints the S6
# cold-vs-warm speedup table after the ledger write.
#
# The S5 portfolio benchmark additionally runs pinned to -cpu=1 and
# -cpu=4 (labels <label>-cpu1 / <label>-cpu4): cpu1 shows the governor
# collapsing the portfolio on a single core, cpu4 shows the race on
# multi-core hardware.
#
#   BENCH_LABEL=after ./scripts/bench.sh          # label in the ledger (default: after)
#   BENCH_OUT=BENCH_PR10.json ./scripts/bench.sh  # ledger file (default: BENCH_PR10.json)
#   BENCHTIME=2s ./scripts/bench.sh               # per-benchmark time (default: 1s)
set -eu

cd "$(dirname "$0")/.."

label="${BENCH_LABEL:-after}"
out="${BENCH_OUT:-BENCH_PR10.json}"
benchtime="${BENCHTIME:-1s}"
pattern='BenchmarkS1_SolverScaling|BenchmarkS2_EPAScaling|BenchmarkS3_ScenarioSpace|BenchmarkS3_PrunedSweep|BenchmarkS4_MultiShot|BenchmarkS5_PortfolioCuts|BenchmarkS6_DeltaReassess|BenchmarkS7_ServedWarmPath|BenchmarkFig1_PipelineEndToEnd|BenchmarkObsOverhead'

echo "== bench (${benchtime} each) -> ${out} [${label}] =="
go test -run='^$' -bench="$pattern" -benchmem -benchtime="$benchtime" . \
  | go run ./cmd/benchjson -label "$label" -out "$out"

for cpus in 1 4; do
  echo "== bench portfolio -cpu=${cpus} -> ${out} [${label}-cpu${cpus}] =="
  go test -run='^$' -bench='BenchmarkS5_PortfolioCuts' -benchmem \
    -benchtime="$benchtime" -cpu="$cpus" . \
    | go run ./cmd/benchjson -label "${label}-cpu${cpus}" -out "$out"
done
