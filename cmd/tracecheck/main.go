// Command tracecheck validates a Chrome trace_event JSON file as emitted
// by riskassess -trace: well-formed envelope, known phases, per-lane
// timestamps sorted, and every duration-begin event matched by a
// stack-ordered end event. It exits non-zero on the first violation —
// the CI teeth behind the trace exporter.
//
// Usage:
//
//	tracecheck [-require span,span,...] trace.json
//
// -require lists span names that must each appear at least once in the
// trace (e.g. the pipeline stage names).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cpsrisk/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	require := fs.String("require", "", "comma-separated span names that must appear in the trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one trace file required")
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pairs, err := obs.ValidateChromeTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if pairs == 0 {
		return fmt.Errorf("%s: no complete spans in trace", path)
	}

	if *require != "" {
		names, err := spanNames(path)
		if err != nil {
			return err
		}
		var missing []string
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want != "" && !names[want] {
				missing = append(missing, want)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: required spans missing: %s", path, strings.Join(missing, ", "))
		}
	}

	fmt.Printf("%s: ok (%d spans)\n", path, pairs)
	return nil
}

// spanNames collects the names of begin events in the trace, accepting
// both the {"traceEvents": [...]} envelope and a bare event array.
func spanNames(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var envelope struct {
		TraceEvents []obs.ChromeEvent `json:"traceEvents"`
	}
	events := envelope.TraceEvents
	if err := json.Unmarshal(data, &envelope); err != nil || envelope.TraceEvents == nil {
		if err := json.Unmarshal(data, &events); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	} else {
		events = envelope.TraceEvents
	}
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Ph == "B" || ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	return names, nil
}
