package epa

import (
	"cpsrisk/internal/logic"
	"cpsrisk/internal/sysmodel"
)

// ASP encoding predicates:
//
//	comp(C).                          component instances
//	conn(C1,P1,C2,P2).                directed propagation edges
//	fault_effect(C,F,P,M).            local fault impacts
//	transfer(C,PI,MI,PO,MO).          unguarded transfer pairs
//	transfer_when(C,PI,MI,PO,MO,F).   fires only with active(C,F)
//	transfer_unless(C,PI,MI,PO,MO,F). suppressed by active(C,F)
//	active(C,F).                      scenario input (facts or choices)
//	err(C,P,M).                       derived port error states
//	comp_err(C,M).                    derived component error states
//
// The encoding interprets exactly the same behaviour data as the native
// engine; TestASPAgreesWithNative cross-checks the two.

// ActiveAtom builds active(C, F).
func ActiveAtom(component, fault string) logic.Atom {
	return logic.A("active", logic.Sym(component), logic.Sym(fault))
}

// ErrAtom builds err(C, P, M).
func ErrAtom(component, port string, m ErrMode) logic.Atom {
	return logic.A("err", logic.Sym(component), logic.Sym(port), logic.Sym(m.String()))
}

// CompErrAtom builds comp_err(C, M).
func CompErrAtom(component string, m ErrMode) logic.Atom {
	return logic.A("comp_err", logic.Sym(component), logic.Sym(m.String()))
}

// EncodeASP renders the model structure, behaviour, and propagation
// dynamics as a logic program. Scenario activations (or scenario-space
// choice rules) are layered on top by the caller.
func (e *Engine) EncodeASP() (*logic.Program, error) {
	prog := &logic.Program{}
	sym := logic.Sym

	for _, c := range e.model.Components {
		prog.AddFact(logic.A("comp", sym(c.ID)))
	}
	for _, conn := range e.model.Connections {
		prog.AddFact(logic.A("conn",
			sym(conn.From.Component), sym(conn.From.Port),
			sym(conn.To.Component), sym(conn.To.Port)))
		if conn.Flow == sysmodel.QuantityFlow {
			prog.AddFact(logic.A("conn",
				sym(conn.To.Component), sym(conn.To.Port),
				sym(conn.From.Component), sym(conn.From.Port)))
		}
	}
	for _, c := range e.model.Components {
		b := e.behaviors[c.ID]
		ct, _ := e.lib.Types().Get(c.Type)
		for _, eff := range b.Effects {
			for _, pk := range e.effectPorts(c, ct, eff) {
				for _, m := range eff.Emit.Modes() {
					prog.AddFact(logic.A("fault_effect",
						sym(c.ID), sym(eff.Fault), sym(pk.Port), sym(m.String())))
				}
			}
		}
		for _, tr := range b.Transfers {
			for _, mi := range tr.Match.Modes() {
				for _, mo := range tr.Emit.Modes() {
					switch {
					case tr.WhenFault != "":
						prog.AddFact(logic.A("transfer_when",
							sym(c.ID), sym(tr.From), sym(mi.String()),
							sym(tr.To), sym(mo.String()), sym(tr.WhenFault)))
					case tr.UnlessFault != "":
						prog.AddFact(logic.A("transfer_unless",
							sym(c.ID), sym(tr.From), sym(mi.String()),
							sym(tr.To), sym(mo.String()), sym(tr.UnlessFault)))
					default:
						prog.AddFact(logic.A("transfer",
							sym(c.ID), sym(tr.From), sym(mi.String()),
							sym(tr.To), sym(mo.String())))
					}
				}
			}
		}
	}
	dyn, err := logic.Parse(`
		err(C, P, M) :- active(C, F), fault_effect(C, F, P, M).
		err(C2, P2, M) :- conn(C1, P1, C2, P2), err(C1, P1, M).
		err(C, PO, MO) :- transfer(C, PI, MI, PO, MO), err(C, PI, MI).
		err(C, PO, MO) :- transfer_when(C, PI, MI, PO, MO, F), err(C, PI, MI), active(C, F).
		err(C, PO, MO) :- transfer_unless(C, PI, MI, PO, MO, F), err(C, PI, MI), not active(C, F).
		comp_err(C, M) :- err(C, P, M).
	`)
	if err != nil {
		return nil, err
	}
	prog.Extend(dyn)
	return prog, nil
}

// EncodeScenario appends the activation facts of a concrete scenario.
func EncodeScenario(prog *logic.Program, s Scenario) {
	for _, a := range s {
		prog.AddFact(ActiveAtom(a.Component, a.Fault))
	}
}
