package attack

import (
	"sort"
)

// Goal is an attacker objective: achieving a fault mode on a target asset
// with the defender's loss if it succeeds (numeric, from the risk layer's
// loss weights).
type Goal struct {
	Target string
	Fault  string
	Loss   int
}

// RatedAttack pairs a goal with its cheapest attack and the
// loss-per-cost efficiency the paper's §IV-D calls the "most efficient
// attack" metric.
type RatedAttack struct {
	Goal   Goal
	Attack Attack
	// Efficiency is Loss divided by attack cost (0 for unreachable
	// goals, which are excluded from the ranking).
	Efficiency float64
}

// MostEfficientAttacks rates every reachable goal by loss/cost and
// returns them ranked best-for-the-attacker first (ties by lower cost,
// then target for determinism). The head of the list is the attack a
// rational adversary prefers — and therefore the defender's first
// mitigation priority.
func (g *Graph) MostEfficientAttacks(goals []Goal) []RatedAttack {
	out := make([]RatedAttack, 0, len(goals))
	for _, goal := range goals {
		atk, ok := g.CheapestAttack(goal.Target, goal.Fault)
		if !ok || atk.Cost <= 0 {
			continue
		}
		out = append(out, RatedAttack{
			Goal:       goal,
			Attack:     atk,
			Efficiency: float64(goal.Loss) / float64(atk.Cost),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Efficiency != b.Efficiency {
			return a.Efficiency > b.Efficiency
		}
		if a.Attack.Cost != b.Attack.Cost {
			return a.Attack.Cost < b.Attack.Cost
		}
		return a.Goal.Target < b.Goal.Target
	})
	return out
}
