package budget

import (
	"context"
	"sync"
	"testing"
)

func TestGovernorNilIsUnlimited(t *testing.T) {
	var g *Governor
	if got := g.AcquireUpTo(7); got != 7 {
		t.Fatalf("nil governor granted %d, want 7", got)
	}
	g.Release(7) // must not panic
	if g.Capacity() != 0 || g.InUse() != 0 || g.Granted() != 0 || g.Denied() != 0 {
		t.Fatalf("nil governor stats not zero")
	}
}

func TestGovernorCapsGrants(t *testing.T) {
	// A 4-worker budget yields a pool of 3 extras: each construct's own
	// goroutine is the implicit first worker.
	g := NewGovernor(4)
	if g.Capacity() != 3 {
		t.Fatalf("Capacity = %d, want 3 extras for limit 4", g.Capacity())
	}
	if got := g.AcquireUpTo(2); got != 2 {
		t.Fatalf("first acquire got %d, want 2", got)
	}
	if got := g.AcquireUpTo(5); got != 1 {
		t.Fatalf("second acquire got %d, want 1 (pool of 3)", got)
	}
	if got := g.AcquireUpTo(1); got != 0 {
		t.Fatalf("third acquire got %d, want 0 (pool full)", got)
	}
	if g.InUse() != 3 {
		t.Fatalf("InUse = %d, want 3", g.InUse())
	}
	g.Release(3)
	if g.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", g.InUse())
	}
	if got := g.AcquireUpTo(3); got != 3 {
		t.Fatalf("acquire after release got %d, want 3", got)
	}
	g.Release(3)
	if g.Granted() != 6 {
		t.Fatalf("Granted = %d, want 6", g.Granted())
	}
	if g.Denied() != 5 {
		t.Fatalf("Denied = %d, want 5 (4 from second acquire, 1 from third)", g.Denied())
	}
}

func TestGovernorDefaultsCapacity(t *testing.T) {
	if NewGovernor(0).Capacity() < 0 {
		t.Fatalf("zero-limit governor must default to GOMAXPROCS-1 extras")
	}
	// limit=1 (sequential run or single core) means an empty pool: every
	// helper request is denied so constructs collapse to their sequential
	// paths instead of time-sharing one core.
	g := NewGovernor(1)
	if g.Capacity() != 0 {
		t.Fatalf("limit-1 governor capacity = %d, want 0", g.Capacity())
	}
	if got := g.AcquireUpTo(3); got != 0 {
		t.Fatalf("limit-1 governor granted %d, want 0", got)
	}
	if g.Denied() != 3 {
		t.Fatalf("Denied = %d, want 3", g.Denied())
	}
}

func TestGovernorConcurrent(t *testing.T) {
	g := NewGovernor(4) // pool of 3 extras
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				n := g.AcquireUpTo(3)
				if u := g.InUse(); u > 3 {
					t.Errorf("InUse = %d exceeds capacity 3", u)
				}
				g.Release(n)
			}
		}()
	}
	wg.Wait()
	if g.InUse() != 0 {
		t.Fatalf("InUse = %d after all released, want 0", g.InUse())
	}
	if g.Granted() == 0 {
		t.Fatalf("expected some grants under contention")
	}
}

func TestGovernorRidesBudgetContext(t *testing.T) {
	g := NewGovernor(2)
	ctx := ContextWithGovernor(context.Background(), g)
	b := New(ctx, Limits{})
	if b.Governor() != g {
		t.Fatalf("budget did not capture the governor from its context")
	}
	// Derived budgets (stage budgets built from b.Context()) inherit it.
	b2 := New(b.Context(), Limits{MaxScenarios: 1})
	if b2.Governor() != g {
		t.Fatalf("derived budget lost the governor")
	}
	var nilB *Budget
	if nilB.Governor() != nil {
		t.Fatalf("nil budget must return nil governor")
	}
}
