package hazard

import (
	"sort"
	"strings"
	"testing"

	"cpsrisk/internal/epa"
)

func cutKeys(cuts []epa.Scenario) []string {
	out := make([]string, 0, len(cuts))
	for _, c := range cuts {
		out = append(out, c.Key())
	}
	sort.Strings(out)
	return out
}

// The ASP minimal-cut enumeration matches the native subset-based
// computation on the guarded-chain model, for every requirement.
func TestMinimalCutsASPAgreesWithNative(t *testing.T) {
	eng, muts, reqs := setup(t)
	analysis, err := Analyze(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		native := analysis.MinimalCuts(req.ID)
		var nativeScenarios []epa.Scenario
		for _, n := range native {
			nativeScenarios = append(nativeScenarios, n.Scenario)
		}
		asp, err := MinimalCutsASP(eng, muts, req, 0)
		if err != nil {
			t.Fatalf("%s: %v", req.ID, err)
		}
		got, want := cutKeys(asp), cutKeys(nativeScenarios)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Errorf("%s: ASP cuts %v != native %v", req.ID, got, want)
		}
	}
}

func TestMinimalCutsASPNoViolation(t *testing.T) {
	eng, muts, _ := setup(t)
	impossible := Requirement{
		ID: "RX", Severity: 0,
		Condition: All(Fault("src", "corrupt"), Not(Fault("src", "corrupt"))),
	}
	cuts, err := MinimalCutsASP(eng, muts, impossible, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 0 {
		t.Errorf("unsatisfiable condition yielded cuts: %v", cuts)
	}
}

func TestMinimalCutsASPValidation(t *testing.T) {
	eng, muts, _ := setup(t)
	if _, err := MinimalCutsASP(eng, muts, Requirement{ID: ""}, 0); err == nil {
		t.Error("empty requirement must fail")
	}
	// A tiny round budget must be reported, not silently truncated.
	reqs := []Requirement{{ID: "R1", Condition: Comp("sink", epa.ErrValue)}}
	if _, err := MinimalCutsASP(eng, muts, reqs[0], 1); err == nil {
		t.Error("exceeding maxRounds must error (two cardinality levels exist)")
	}
}

func BenchmarkMinimalCutsASP(b *testing.B) {
	eng, muts, reqs := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinimalCutsASP(eng, muts, reqs[0], 0); err != nil {
			b.Fatal(err)
		}
	}
}

// The multi-shot enumeration must be byte-identical to the single-shot
// reference: same cuts, same order (both sort each round's batch by key,
// and round membership is determined by the program alone).
func TestMinimalCutsASPIncrementalMatchesSingleShot(t *testing.T) {
	eng, muts, reqs := setup(t)
	for _, req := range reqs {
		inc, err := MinimalCutsASP(eng, muts, req, 0)
		if err != nil {
			t.Fatalf("%s incremental: %v", req.ID, err)
		}
		ss, err := MinimalCutsASPSingleShot(eng, muts, req, 0)
		if err != nil {
			t.Fatalf("%s single-shot: %v", req.ID, err)
		}
		ordered := func(cuts []epa.Scenario) string {
			keys := make([]string, 0, len(cuts))
			for _, c := range cuts {
				keys = append(keys, c.Key())
			}
			return strings.Join(keys, "|")
		}
		if got, want := ordered(inc), ordered(ss); got != want {
			t.Errorf("%s: incremental cuts %q != single-shot %q", req.ID, got, want)
		}
	}
}

// maxRounds <= 0 must clamp instead of overflowing 1 << len(muts) for
// large candidate sets (>= 63 mutations used to shift to zero and abort
// immediately with the exceeded-rounds error).
func TestMinimalCutsDefaultRoundsClamp(t *testing.T) {
	if got := defaultCutRounds(64); got != maxCutRoundsCap {
		t.Errorf("defaultCutRounds(64) = %d, want clamp %d", got, maxCutRoundsCap)
	}
	if got := defaultCutRounds(70); got <= 0 {
		t.Errorf("defaultCutRounds(70) = %d, overflowed", got)
	}
	if got := defaultCutRounds(3); got != 8 {
		t.Errorf("defaultCutRounds(3) = %d, want 8", got)
	}
}
