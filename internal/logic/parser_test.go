package logic

import (
	"errors"
	"strings"
	"testing"
)

func TestParseFactsAndRules(t *testing.T) {
	prog, err := Parse(`
		% the paper's Listing 1 fault-activation rule
		potential_fault(C, F) :-
			component(C), fault(F),
			mitigation(F, M),
			not active_mitigation(C, M).

		component(workstation).
		fault(infected).
		mitigation(infected, endpoint_security).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("rule count = %d", len(prog.Rules))
	}
	r := prog.Rules[0]
	if r.Head == nil || r.Head.Pred != "potential_fault" {
		t.Fatalf("head = %v", r.Head)
	}
	if len(r.Body) != 4 {
		t.Fatalf("body len = %d", len(r.Body))
	}
	last, ok := r.Body[3].(Literal)
	if !ok || !last.Negated || last.Atom.Pred != "active_mitigation" {
		t.Errorf("negated literal parse: %v", r.Body[3])
	}
}

func TestParsePaperListing2(t *testing.T) {
	prog, err := Parse(`
		component_state(C, X) :-
			prev_component_state(C, X),
			active_fault(C, stuck_at_x).
	`)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Rules[0]
	if got := r.String(); got != "component_state(C,X) :- prev_component_state(C,X), active_fault(C,stuck_at_x)." {
		t.Errorf("round trip = %q", got)
	}
}

func TestParseConstraint(t *testing.T) {
	prog, err := Parse(`:- overflow, not alerted.`)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Rules[0].IsConstraint() {
		t.Error("expected constraint")
	}
	if len(prog.Rules[0].Body) != 2 {
		t.Errorf("body len = %d", len(prog.Rules[0].Body))
	}
}

func TestParseChoice(t *testing.T) {
	prog, err := Parse(`
		candidate(f1). candidate(f2).
		{ active(F) : candidate(F) }.
		1 { pick(a); pick(b) } 1.
	`)
	if err != nil {
		t.Fatal(err)
	}
	choice := prog.Rules[2]
	if !choice.Choice || choice.Lower != Unbounded || choice.Upper != Unbounded {
		t.Errorf("unbounded choice = %+v", choice)
	}
	if len(choice.Elems) != 1 || len(choice.Elems[0].Cond) != 1 {
		t.Errorf("choice elems = %v", choice.Elems)
	}
	bounded := prog.Rules[3]
	if bounded.Lower != 1 || bounded.Upper != 1 || len(bounded.Elems) != 2 {
		t.Errorf("bounded choice = %+v", bounded)
	}
}

func TestParseChoiceWithBody(t *testing.T) {
	prog, err := Parse(`
		node(n1). col(red). col(blue).
		1 { color(N,C) : col(C) } 1 :- node(N).
	`)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Rules[3]
	if !r.Choice || r.Lower != 1 || r.Upper != 1 || len(r.Body) != 1 {
		t.Errorf("choice rule = %+v", r)
	}
}

func TestParseIntervalFact(t *testing.T) {
	prog, err := Parse(`time(0..5).`)
	if err != nil {
		t.Fatal(err)
	}
	arg := prog.Rules[0].Head.Args[0]
	iv, ok := arg.(Interval)
	if !ok {
		t.Fatalf("arg = %T", arg)
	}
	if iv.String() != "0..5" {
		t.Errorf("interval = %s", iv)
	}
}

func TestParseArithmeticAndComparison(t *testing.T) {
	prog, err := Parse(`
		base(5).
		total(T) :- base(B), T = B * 2 + 1.
		big(B) :- base(B), B >= 4.
		diff(B) :- base(B), B != 3.
	`)
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := prog.Rules[1].Body[1].(Comparison)
	if !ok || cmp.Op != CmpEq {
		t.Fatalf("assignment parse: %v", prog.Rules[1].Body[1])
	}
	// precedence: B*2+1 == ((B*2)+1)
	if got := cmp.Right.String(); got != "((B*2)+1)" {
		t.Errorf("precedence = %q", got)
	}
}

func TestParseMinimize(t *testing.T) {
	prog, err := Parse(`
		weight(f1, 3). weight(f2, 5).
		{ active(F) : weight(F, W) }.
		#minimize { W@1,F : active(F), weight(F,W) }.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Minimize) != 1 {
		t.Fatalf("minimize count = %d", len(prog.Minimize))
	}
	m := prog.Minimize[0]
	if m.Priority != 1 || len(m.Tuple) != 1 || len(m.Cond) != 2 {
		t.Errorf("minimize elem = %+v", m)
	}
}

func TestParseWeakConstraint(t *testing.T) {
	prog, err := Parse(`
		weight(f1, 3).
		{ active(F) : weight(F, W) }.
		:~ active(F), weight(F,W). [W@1, F]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Minimize) != 1 {
		t.Fatalf("minimize count = %d", len(prog.Minimize))
	}
	m := prog.Minimize[0]
	if m.Weight.String() != "W" || m.Priority != 1 || len(m.Tuple) != 1 {
		t.Errorf("weak constraint = %+v", m)
	}
}

func TestParseMaximizeDesugarsToNegatedMinimize(t *testing.T) {
	prog, err := Parse(`
		value(a, 2).
		{ pick(X) : value(X, V) }.
		#maximize { V,X : pick(X), value(X,V) }.
	`)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := prog.Minimize[0].Weight.(BinOp)
	if !ok || w.Op != OpSub {
		t.Errorf("maximize must negate the weight, got %v", prog.Minimize[0].Weight)
	}
}

func TestParseStringsAndComments(t *testing.T) {
	prog, err := Parse(`
		% leading comment
		label(c1, "Engineering Workstation"). % trailing comment
	`)
	if err != nil {
		t.Fatal(err)
	}
	arg := prog.Rules[0].Head.Args[1]
	s, ok := arg.(Symbol)
	if !ok || s.Name != "Engineering Workstation" {
		t.Errorf("string arg = %v", arg)
	}
}

func TestParseShowIgnored(t *testing.T) {
	prog, err := Parse(`
		p(1).
		#show p/1.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Errorf("rules = %d", len(prog.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"missing dot", `p(1)`},
		{"unterminated string", `p("abc`},
		{"bad char", `p(1) ? q.`},
		{"unsafe head var", `p(X) :- q.`},
		{"unsafe negated var", `p :- not q(X).`},
		{"unsupported directive", `#const n = 3.`},
		{"lone bang", "p :- a ! b."},
		{"unsafe comparison", `p :- q, X < 3.`},
		{"empty", `p :- .`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse(%q) expected error", tt.src)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("p(1).\nq(2).\nbroken(")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T", err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
}

func TestSafetyAssignmentChains(t *testing.T) {
	// Y is bound through X which is bound through a positive literal.
	_, err := Parse(`q(1). p(Y) :- q(X), Y = X + 1.`)
	if err != nil {
		t.Errorf("chained assignment should be safe: %v", err)
	}
	// Circular assignments are unsafe.
	_, err = Parse(`p(X) :- X = Y, Y = X.`)
	if err == nil {
		t.Error("circular assignment must be unsafe")
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	src := `
		component(tank). component(valve).
		fault(stuck).
		state(C, err) :- component(C), fault(stuck), not ok(C).
		{ active(F) : fault(F) }.
		:- state(tank, err).
		#minimize { 1@1,F : active(F) }.
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", text, err)
	}
	if prog2.String() != text {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", text, prog2.String())
	}
	if !strings.Contains(text, "#minimize") {
		t.Error("minimize lost in rendering")
	}
}
