package core_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cpsrisk/internal/cegar"
	"cpsrisk/internal/core"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/watertank"
)

func TestAssessmentRender(t *testing.T) {
	types := watertank.Types()
	a, err := core.Run(core.Config{
		Model:          watertank.Model(),
		Types:          types,
		Behaviors:      watertank.Behaviors(types),
		KB:             kb.MustDefaultKB(),
		Requirements:   watertank.Requirements(),
		ExtraMutations: watertank.PaperCandidates(),
		MaxCardinality: -1,
		Optimize:       true,
		Budget:         -1,
		Oracle:         cegar.NewPlantOracle(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{
		"SYSTEM", "ATTACK & FAULT SURFACE", "HAZARD IDENTIFICATION",
		"PRIORITIZED FINDINGS", "VALIDATION", "MITIGATION SOLUTION SPACE",
		"RECOMMENDED PLAN",
		"ews:compromised",   // the top finding
		"spurious",          // CEGAR classification appears
		"optimal selection", // plan summary
		"mitigate",          // treatment advice wording
	} {
		if !strings.Contains(out, want) {
			t.Errorf("assessment report missing %q:\n%s", want, out)
		}
	}
}

func TestAssessmentRenderMinimal(t *testing.T) {
	// Without KB, oracle, or optimization the report must still render
	// its core sections and omit the optional ones.
	types := watertank.Types()
	a, err := core.Run(core.Config{
		Model:          watertank.Model(),
		Types:          types,
		Behaviors:      watertank.Behaviors(types),
		Requirements:   watertank.Requirements(),
		ExtraMutations: watertank.PaperCandidates(),
		MaxCardinality: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	if strings.Contains(out, "VALIDATION") || strings.Contains(out, "MITIGATION SOLUTION SPACE") {
		t.Errorf("optional sections rendered without inputs:\n%s", out)
	}
	if !strings.Contains(out, "HAZARD IDENTIFICATION") {
		t.Errorf("core section missing:\n%s", out)
	}
}

func TestAssessmentRenderMultiShotCounters(t *testing.T) {
	types := watertank.Types()
	a, err := core.Run(core.Config{
		Model:          watertank.Model(),
		Types:          types,
		Behaviors:      watertank.Behaviors(types),
		Requirements:   watertank.Requirements(),
		ExtraMutations: watertank.PaperCandidates(),
		MaxCardinality: -1,
		UseASP:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	if !strings.Contains(out, "multi-shot: 1 session(s)") {
		t.Errorf("ASP report missing the multi-shot solver line:\n%s", out)
	}
}

func TestAssessmentSummaryJSON(t *testing.T) {
	types := watertank.Types()
	a, err := core.Run(core.Config{
		Model:          watertank.Model(),
		Types:          types,
		Behaviors:      watertank.Behaviors(types),
		KB:             kb.MustDefaultKB(),
		Requirements:   watertank.Requirements(),
		ExtraMutations: watertank.PaperCandidates(),
		MaxCardinality: -1,
		Optimize:       true,
		Budget:         -1,
		Oracle:         cegar.NewPlantOracle(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s core.Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if s.Model.Components != 9 || len(s.Candidates) != 4 || len(s.Scenarios) != 16 {
		t.Errorf("summary shape: %+v", s.Model)
	}
	if s.Plan == nil || len(s.Plan.Selected) == 0 {
		t.Errorf("plan missing: %+v", s.Plan)
	}
	if s.Refinement == nil || len(s.Refinement.Confirmed) == 0 {
		t.Error("refinement missing")
	}
	// The top-ranked scenario carries the treatment recommendation.
	top := s.Scenarios[0]
	if top.Risk != "H" || top.Treatment != "mitigate" {
		t.Errorf("top scenario = %+v", top)
	}
}
