// Package faults implements step 2 of the framework pipeline (paper
// Fig. 1): extending the system model with a set of candidate mutations —
// fault modes from the component-type library plus attack-induced faults
// injected from the security knowledge bases — and enumerating the
// scenario space (all relevant combinations of activations, §IV-A).
package faults

import (
	"fmt"
	"math"
	"sort"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/sysmodel"
)

// Mutation is one candidate system mutation: an activatable fault mode on
// a component instance, with its provenance and qualitative likelihood.
type Mutation struct {
	epa.Activation
	// Sources lists where the candidate came from: "fault_mode" for
	// spontaneous faults declared on the type, or KB vulnerability /
	// technique IDs for attack-induced ones.
	Sources []string
	// Likelihood is the qualitative activation frequency (the maximum
	// over sources when several inject the same fault).
	Likelihood qual.Level
}

// Options controls candidate generation.
type Options struct {
	// IncludeSpontaneous adds the type library's declared fault modes.
	IncludeSpontaneous bool
	// IncludeVulnerabilities adds KB vulnerabilities matching component
	// type and version.
	IncludeVulnerabilities bool
	// IncludeTechniques adds KB techniques matching component type and
	// exposure.
	IncludeTechniques bool
}

// AllSources enables every mutation source.
func AllSources() Options {
	return Options{IncludeSpontaneous: true, IncludeVulnerabilities: true, IncludeTechniques: true}
}

// DefaultLikelihood is assumed when a fault mode declares none.
const DefaultLikelihood = qual.Low

// Candidates computes the candidate mutation set of a model. The model
// must be flat; components must have types in lib. Component attributes
// drive KB matching: "version" filters vulnerabilities, "exposure"
// ("public"/"internal") gates techniques requiring public exposure.
// Techniques requiring "adjacent" exposure are included as candidates —
// whether an adjacent compromise exists is scenario-dependent and handled
// by the attack-graph layer.
func Candidates(m *sysmodel.Model, lib *sysmodel.TypeLibrary, k *kb.KB, opt Options) ([]Mutation, error) {
	if comps := m.Composites(); len(comps) > 0 {
		return nil, fmt.Errorf("faults: model has unresolved composites %v", comps)
	}
	five := qual.FiveLevel()
	byKey := map[epa.Activation]*Mutation{}
	var order []epa.Activation

	add := func(act epa.Activation, source string, likelihood qual.Level) {
		mut, ok := byKey[act]
		if !ok {
			mut = &Mutation{Activation: act, Likelihood: likelihood}
			byKey[act] = mut
			order = append(order, act)
		}
		mut.Sources = append(mut.Sources, source)
		if likelihood > mut.Likelihood {
			mut.Likelihood = likelihood
		}
	}

	for _, c := range m.Components {
		ct, ok := lib.Get(c.Type)
		if !ok {
			return nil, fmt.Errorf("faults: component %q has unknown type %q", c.ID, c.Type)
		}
		if opt.IncludeSpontaneous {
			for _, fm := range ct.FaultModes {
				if fm.AttackOnly {
					continue
				}
				likelihood := DefaultLikelihood
				if fm.Likelihood != "" {
					l, err := five.Parse(fm.Likelihood)
					if err != nil {
						return nil, fmt.Errorf("faults: type %q fault %q: %w", ct.Name, fm.Name, err)
					}
					likelihood = l
				}
				add(epa.Activation{Component: c.ID, Fault: fm.Name}, "fault_mode", likelihood)
			}
		}
		if opt.IncludeVulnerabilities && k != nil {
			for _, v := range k.VulnsFor(c.Type, c.Attr("version")) {
				if _, declared := ct.FaultMode(v.FaultMode); !declared {
					return nil, fmt.Errorf("faults: vulnerability %s injects fault %q not declared on type %q",
						v.ID, v.FaultMode, ct.Name)
				}
				score, err := v.Score()
				if err != nil {
					return nil, err
				}
				add(epa.Activation{Component: c.ID, Fault: v.FaultMode}, v.ID, kb.QualLevel(score))
			}
		}
		if opt.IncludeTechniques && k != nil {
			for _, tq := range k.TechniquesFor(c.Type) {
				if tq.FaultMode == "" {
					continue
				}
				if _, declared := ct.FaultMode(tq.FaultMode); !declared {
					continue // technique not meaningful for this type
				}
				if tq.RequiresExposure == "public" && c.Attr("exposure") != "public" {
					continue
				}
				likelihood := DefaultLikelihood
				if tq.Likelihood != "" {
					l, err := five.Parse(tq.Likelihood)
					if err != nil {
						return nil, err
					}
					likelihood = l
				}
				add(epa.Activation{Component: c.ID, Fault: tq.FaultMode}, tq.ID, likelihood)
			}
		}
	}

	out := make([]Mutation, 0, len(order))
	for _, act := range order {
		mut := byKey[act]
		sort.Strings(mut.Sources)
		out = append(out, *mut)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Fault < out[j].Fault
	})
	return out, nil
}

// LikelihoodIndex maps activations to their likelihood for risk scoring.
func LikelihoodIndex(muts []Mutation) map[epa.Activation]qual.Level {
	out := make(map[epa.Activation]qual.Level, len(muts))
	for _, m := range muts {
		out[m.Activation] = m.Likelihood
	}
	return out
}

// Binomial64 computes C(n, k) in int64. The second result is false when
// the value overflows; it then saturates at math.MaxInt64 so comparisons
// against real counts stay conservative.
func Binomial64(n, k int) (int64, bool) {
	if k < 0 || k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	c := int64(1)
	for i := 0; i < k; i++ {
		m, d := int64(n-i), int64(i+1)
		// c*m/d with the division split out first so the intermediate
		// product cannot overflow when the final value still fits:
		// c*m/d = (c/d)*m + (c%d)*m/d, and d divides (c%d)*m exactly
		// because d divides c*m.
		q, rem := c/d, c%d
		if q > math.MaxInt64/m || (rem != 0 && rem > math.MaxInt64/m) {
			return math.MaxInt64, false
		}
		lo := rem * m / d
		if q*m > math.MaxInt64-lo {
			return math.MaxInt64, false
		}
		c = q*m + lo
	}
	return c, true
}

// SpaceSize returns the number of scenarios with at most maxCard
// activations out of n candidates: sum of C(n, i) for i = 0..maxCard.
// maxCard < 0 means unbounded (2^n). The second result is false when the
// count overflows int64; the value then saturates at math.MaxInt64, so
// k>=4 sweeps over large plants degrade to an explicit "space too large"
// signal instead of silently wrapping negative.
func SpaceSize(n, maxCard int) (int64, bool) {
	if maxCard < 0 || maxCard > n {
		maxCard = n
	}
	var total int64
	for i := 0; i <= maxCard; i++ {
		c, ok := Binomial64(n, i)
		if !ok || total > math.MaxInt64-c {
			return math.MaxInt64, false
		}
		total += c
	}
	return total, true
}

// Enumerate yields every scenario (combination of candidate activations)
// with cardinality at most maxCard (negative = unbounded), in
// deterministic order: by cardinality, then lexicographically by candidate
// index. The empty scenario comes first — the paper's Table II includes
// the fault-free row S1.
//
// The full list is materialized; for large spaces prefer EnumerateStream,
// which produces the same order lazily and can be stopped early.
func Enumerate(muts []Mutation, maxCard int) []epa.Scenario {
	var out []epa.Scenario
	EnumerateStream(muts, maxCard, func(sc epa.Scenario) bool {
		out = append(out, sc)
		return true
	})
	return out
}

// EnumerateStream yields the same scenarios as Enumerate, in the same
// order (cardinality ascending, then lexicographic candidate order), but
// one at a time without materializing the space: resource-governed
// consumers can stop at any point by returning false from yield. This is
// what keeps an unbounded-cardinality analysis interruptible — 2^n
// scenarios never exist in memory at once.
func EnumerateStream(muts []Mutation, maxCard int, yield func(epa.Scenario) bool) {
	n := len(muts)
	if maxCard < 0 || maxCard > n {
		maxCard = n
	}
	idx := make([]int, 0, maxCard)
	stopped := false
	// Per-cardinality streaming: combinations of each size in
	// lexicographic index order reproduce Enumerate's sorted order.
	for card := 0; card <= maxCard && !stopped; card++ {
		idx = idx[:0]
		var combo func(start, remaining int)
		combo = func(start, remaining int) {
			if stopped {
				return
			}
			if remaining == 0 {
				sc := make(epa.Scenario, len(idx))
				for i, j := range idx {
					sc[i] = muts[j].Activation
				}
				if !yield(sc) {
					stopped = true
				}
				return
			}
			for j := start; j <= n-remaining && !stopped; j++ {
				idx = append(idx, j)
				combo(j+1, remaining-1)
				idx = idx[:len(idx)-1]
			}
		}
		combo(0, card)
	}
}

// comboRank returns the lexicographic rank of a strictly increasing
// index combination idx over [0, n). It is the inverse of comboUnrank.
func comboRank(n int, idx []int) int64 {
	k := len(idx)
	var rank int64
	prev := -1
	for i, v := range idx {
		for j := prev + 1; j < v; j++ {
			c, ok := Binomial64(n-1-j, k-1-i)
			if !ok {
				return math.MaxInt64
			}
			rank += c
		}
		prev = v
	}
	return rank
}

// comboUnrank writes the k-combination of [0, n) with the given
// lexicographic rank into idx (which must have length k). rank must be
// in [0, C(n, k)).
func comboUnrank(n, k int, rank int64, idx []int) {
	j := 0
	for i := 0; i < k; i++ {
		for {
			c, _ := Binomial64(n-1-j, k-1-i)
			if rank < c {
				idx[i] = j
				j++
				break
			}
			rank -= c
			j++
		}
	}
}

// nextCombo advances idx to the lexicographically next k-combination of
// [0, n), reporting false from the last one.
func nextCombo(n int, idx []int) bool {
	k := len(idx)
	i := k - 1
	for i >= 0 && idx[i] == n-k+i {
		i--
	}
	if i < 0 {
		return false
	}
	idx[i]++
	for j := i + 1; j < k; j++ {
		idx[j] = idx[j-1] + 1
	}
	return true
}

// EnumerateRange yields exactly the scenarios whose global stream rank —
// the 0-based position in EnumerateStream's order (cardinality
// ascending, lexicographic within a cardinality) — falls in [lo, hi).
// hi < 0 means "to the end of the space". The first scenario yielded has
// rank lo: shard i of m sweeps EnumerateRange over its slice of the
// space and still sees globally consistent ranks, which is what keeps
// scenario IDs and checkpoint frontiers shard-mergeable. yield may stop
// the stream early by returning false.
//
// Seeking costs one combinatorial unrank per cardinality level touched;
// iteration within the range is successor-based and allocation-light.
func EnumerateRange(muts []Mutation, maxCard int, lo, hi int64, yield func(sc epa.Scenario) bool) {
	n := len(muts)
	if maxCard < 0 || maxCard > n {
		maxCard = n
	}
	if hi < 0 {
		hi = math.MaxInt64
	}
	if lo < 0 {
		lo = 0
	}
	var base int64
	for card := 0; card <= maxCard; card++ {
		size, ok := Binomial64(n, card)
		if !ok {
			// A level too large to count is too large to finish sweeping;
			// the caller's budget will stop the walk long before then.
			size = math.MaxInt64 - base
		}
		if base >= hi {
			return
		}
		if lo >= base+size {
			base += size
			continue
		}
		localLo := int64(0)
		if lo > base {
			localLo = lo - base
		}
		localHi := size
		if hi-base < localHi {
			localHi = hi - base
		}
		idx := make([]int, card)
		comboUnrank(n, card, localLo, idx)
		for r := localLo; r < localHi; r++ {
			sc := make(epa.Scenario, card)
			for i, j := range idx {
				sc[i] = muts[j].Activation
			}
			if !yield(sc) {
				return
			}
			if r+1 < localHi && !nextCombo(n, idx) {
				return // defensive: size said more ranks remain
			}
		}
		base += size
	}
}

// EncodeChoice adds the scenario space to an ASP program as candidate
// facts plus a cardinality-bounded choice over activations:
//
//	candidate(C, F).
//	{ active(C, F) : candidate(C, F) } maxCard.
//
// Exhaustive hazard identification then enumerates the space as answer
// sets (paper Fig. 1 step 4).
func EncodeChoice(prog *logic.Program, muts []Mutation, maxCard int) {
	for _, m := range muts {
		prog.AddFact(logic.A("candidate", logic.Sym(m.Component), logic.Sym(m.Fault)))
	}
	upper := maxCard
	if upper < 0 || upper > len(muts) {
		upper = logic.Unbounded
	}
	prog.AddRule(logic.ChoiceRule(logic.Unbounded, upper, []logic.ChoiceElem{{
		Atom: logic.A("active", logic.Var("C"), logic.Var("F")),
		Cond: []logic.Literal{logic.Pos(logic.A("candidate", logic.Var("C"), logic.Var("F")))},
	}}))
}
