package watertank

import (
	"cpsrisk/internal/epa"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/report"
)

// PaperRowSpecs lists the rows of the paper's Table II in print order:
// the fault-mode combination and whether the mitigation columns (M1 user
// training, M2 endpoint security) are shown Active. S2 — the compromised
// workstation — is the one row only possible without the mitigations.
var PaperRowSpecs = []struct {
	Label             string
	Faults            []string
	MitigationsActive bool
}{
	{"S1", nil, true},
	{"S2", []string{"F4"}, false},
	{"S3", []string{"F1"}, true},
	{"S4", []string{"F2"}, true},
	{"S5", []string{"F2", "F3"}, true},
	{"S6", []string{"F1", "F3"}, true},
	{"S7", []string{"F1", "F2", "F3"}, true},
}

// PaperTableII runs the exhaustive case-study analysis and renders the
// paper's Table II layout. useASP selects the embedded-formal-method path.
func PaperTableII(useASP bool) (string, error) {
	eng, err := Engine()
	if err != nil {
		return "", err
	}
	var analysis *hazard.Analysis
	if useASP {
		analysis, err = hazard.AnalyzeASP(eng, PaperCandidates(), -1, Requirements())
	} else {
		analysis, err = hazard.Analyze(eng, PaperCandidates(), -1, Requirements())
	}
	if err != nil {
		return "", err
	}
	labels := []string{"F1", "F2", "F3", "F4"}
	acts := make([]epa.Activation, len(labels))
	for i, l := range labels {
		acts[i] = FaultLabels[l]
	}
	rows := make([]report.TableIIRow, 0, len(PaperRowSpecs))
	for _, spec := range PaperRowSpecs {
		var sc epa.Scenario
		for _, f := range spec.Faults {
			sc = append(sc, FaultLabels[f])
		}
		rows = append(rows, report.TableIIRow{
			Label:             spec.Label,
			Scenario:          sc,
			MitigationsActive: spec.MitigationsActive,
		})
	}
	return report.TableII(analysis, labels, acts, []string{"M1", "M2"}, rows)
}
