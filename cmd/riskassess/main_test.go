package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunOnSampleModel(t *testing.T) {
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-optimize",
		"-maxcard", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMitigations(t *testing.T) {
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-mitigations", "M-0917,M-0949,M-0932",
		"-maxcard", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingArgs(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunMissingFiles(t *testing.T) {
	if err := run([]string{"-model", "nope.json", "-types", "nope.json"}); err == nil {
		t.Fatal("expected file error")
	}
}

func TestRunJSONAndDot(t *testing.T) {
	dot := t.TempDir() + "/model.dot"
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-json",
		"-dot", dot,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("dot output = %q", data)
	}
}
