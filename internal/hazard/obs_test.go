package hazard

import (
	"context"
	"strings"
	"sync"
	"testing"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/obs"
)

// TestParallelSweepObservabilityRace hammers one shared metrics registry
// and trace from several concurrent parallel sweeps, each with its own
// worker pool — the contention pattern of repeated assessments reporting
// to a single sink. check.sh runs this package under -race -cpu=1,4,
// which is where the test has teeth; the counter totals below catch
// lost updates either way.
func TestParallelSweepObservabilityRace(t *testing.T) {
	eng, muts, reqs := setup(t)
	tr := obs.New("assessment")
	reg := obs.NewRegistry()
	ctx := obs.ContextWithSpan(obs.ContextWithRegistry(context.Background(), reg), tr.Root())

	const sweeps = 4
	var wg sync.WaitGroup
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bud := budget.New(ctx, budget.Limits{})
			a, err := AnalyzeParallelBudget(eng, muts, -1, reqs, bud, 4)
			if err != nil {
				t.Error(err)
				return
			}
			if len(a.Scenarios) != 8 {
				t.Errorf("scenarios = %d, want 8", len(a.Scenarios))
			}
		}()
	}
	wg.Wait()
	tr.Finish()

	if got := reg.Counter("sweep.scenarios").Value(); got != sweeps*8 {
		t.Errorf("sweep.scenarios = %d, want %d", got, sweeps*8)
	}
	if got := reg.Counter("epa.runs").Value(); got != sweeps*8 {
		t.Errorf("epa.runs = %d, want %d", got, sweeps*8)
	}
	if got := reg.Counter("sweep.chunks").Value(); got < sweeps {
		t.Errorf("sweep.chunks = %d, want >= %d", got, sweeps)
	}
	if got := reg.Histogram("sweep.duration_us").Count(); got != sweeps {
		t.Errorf("sweep.duration_us count = %d, want %d", got, sweeps)
	}

	snap := tr.Snapshot()
	if n := snap.Count("sweep"); n != sweeps {
		t.Errorf("sweep spans = %d, want %d", n, sweeps)
	}
	workers := 0
	snap.Walk(func(s *obs.SpanSnapshot, _ int) {
		if strings.HasPrefix(s.Name, "worker#") {
			workers++
		}
	})
	if workers != sweeps*4 {
		t.Errorf("worker spans = %d, want %d", workers, sweeps*4)
	}
}
