// Command riskserve runs the assessment pipeline as a long-lived
// HTTP/JSON service: clients POST system models and poll for reports,
// while the process keeps a shared artifact cache warm across requests
// and tenants, meters all concurrent work through one concurrency
// governor, and exports service-grade telemetry — Prometheus /metrics,
// per-request trace IDs with Chrome trace export, structured JSON logs,
// and an SLO critical-event monitor wired into /readyz.
//
// Usage:
//
//	riskserve -types types.json [-addr :8080] [-addr-file path]
//	          [-maxcard 2] [-asp] [-optimize] [-budget N]
//	          [-mitigations M-0917,M-0949] [-parallel N]
//	          [-solver-workers N] [-solver-det] [-no-prune]
//	          [-timeout 30s] [-max-decisions N] [-max-scenarios N]
//	          [-cache dir] [-artifact-cap N] [-job-workers N] [-top N]
//	          [-slo-window 168h] [-slo-threshold 5] [-drain-timeout 30s]
//
// API:
//
//	POST /v1/assess               submit a model (async; returns a job)
//	GET  /v1/jobs/{id}            poll job state
//	GET  /v1/jobs/{id}/report     finished report (JSON; ?format=text, ?full=1)
//	GET  /v1/jobs/{id}/trace      Chrome trace_event JSON of the run
//	GET  /v1/slo                  critical-event journal and compliance
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 liveness
//	GET  /readyz                  readiness (503 on SLO breach or drain)
//
// Submissions may carry X-Trace-Id (propagated end to end; minted when
// absent) and X-Tenant (partitions the artifact cache per tenant).
// SIGINT/SIGTERM drains gracefully: in-flight jobs finish under
// -drain-timeout, then stragglers are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/serve"
	"cpsrisk/internal/sysmodel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "riskserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("riskserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	typesPath := fs.String("types", "", "component-type library JSON (required)")
	maxCard := fs.Int("maxcard", 2, "maximum simultaneous activations (-1 = unbounded)")
	useASP := fs.Bool("asp", false, "use the ASP engine for hazard identification")
	doOpt := fs.Bool("optimize", false, "run mitigation cost-benefit optimization")
	mitBudget := fs.Int("budget", -1, "mitigation budget (-1 = unlimited)")
	mitigations := fs.String("mitigations", "", "comma-separated active mitigation IDs")
	parallel := fs.Int("parallel", runtime.NumCPU(), "shared worker pool metering sweeps and solvers across all jobs")
	solverWorkers := fs.Int("solver-workers", 1, "ASP portfolio engines per query (0 = derive from -parallel)")
	solverDet := fs.Bool("solver-det", false, "deterministic ASP search")
	noPrune := fs.Bool("no-prune", false, "disable sweep pruning")
	timeout := fs.Duration("timeout", 0, "per-job wall-clock budget (0 = none); partial results on expiry")
	maxDecisions := fs.Int64("max-decisions", 0, "per-job cap on ASP solver branching decisions (0 = unlimited)")
	maxScenarios := fs.Int("max-scenarios", 0, "per-job cap on analyzed scenarios (0 = unlimited)")
	cacheDir := fs.String("cache", "", "persist the EPA result cache in this directory across jobs")
	artifactCap := fs.Int("artifact-cap", 0, "artifact cache entry cap (0 = default)")
	jobWorkers := fs.Int("job-workers", 2, "concurrent assessment jobs")
	topN := fs.Int("top", 20, "ranked scenarios in text reports (0 = all)")
	sloWindow := fs.Duration("slo-window", serve.DefaultSLOWindow, "rolling window for the critical-event SLO")
	sloThreshold := fs.Int("slo-threshold", serve.DefaultSLOThreshold, "critical events per window before /readyz flips")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *typesPath == "" {
		fs.Usage()
		return fmt.Errorf("-types is required")
	}

	f, err := os.Open(*typesPath)
	if err != nil {
		return err
	}
	types, err := sysmodel.ReadTypesJSON(f)
	f.Close()
	if err != nil {
		return err
	}

	active := map[string]bool{}
	if *mitigations != "" {
		for _, id := range strings.Split(*mitigations, ",") {
			active[strings.TrimSpace(id)] = true
		}
	}

	// Fault injection arms from the environment only, like the CLI.
	injector, err := faultinject.FromEnv()
	if err != nil {
		return err
	}

	logger := serve.NewJSONLogger(os.Stderr)
	s, err := serve.New(serve.Options{
		Types:               types,
		MaxCardinality:      *maxCard,
		UseASP:              *useASP,
		Optimize:            *doOpt,
		MitBudget:           *mitBudget,
		ActiveMitigations:   active,
		Parallelism:         *parallel,
		SolverWorkers:       *solverWorkers,
		SolverDeterministic: *solverDet,
		NoPrune:             *noPrune,
		Limits: budget.Limits{
			Timeout:      *timeout,
			MaxDecisions: *maxDecisions,
			MaxScenarios: *maxScenarios,
		},
		CacheDir:     *cacheDir,
		TopN:         *topN,
		ArtifactCap:  *artifactCap,
		JobWorkers:   *jobWorkers,
		SLOWindow:    *sloWindow,
		SLOThreshold: *sloThreshold,
		Injector:     injector,
		Logger:       logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	httpSrv := &http.Server{Handler: s}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.LogAttrs(ctx, slog.LevelInfo, "listening", slog.String("addr", ln.Addr().String()))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let in-flight jobs
	// finish under the deadline, cancel stragglers.
	logger.LogAttrs(context.Background(), slog.LevelInfo, "draining",
		slog.Duration("deadline", *drainTimeout))
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.LogAttrs(context.Background(), slog.LevelWarn, "shutdown",
			slog.String("error", err.Error()))
	}
	if err := s.Drain(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
