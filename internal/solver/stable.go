package solver

import (
	"fmt"
	"sort"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/obs"
)

// Options configures Solve.
type Options struct {
	// MaxModels bounds the number of returned models; 0 means all.
	MaxModels int
	// Optimize enables #minimize optimization: only optimal models are
	// returned (ignored when the program has no minimize statements).
	Optimize bool
	// Budget governs solver effort: context cancellation/deadline plus
	// decision and conflict caps (and, via SolveProgram, the grounding
	// cap). Nil means unlimited. When the budget trips mid-search, Solve
	// returns the models found so far with Result.Interrupted set instead
	// of an error.
	Budget *budget.Budget
	// Workers is the portfolio width: how many diversified CDCL engines
	// race on the same ground translation, sharing short learned clauses
	// and objective bounds. 0 and 1 mean the exact single-threaded
	// engine. Helpers beyond the first worker are throttled by the
	// worker-pool governor carried on Budget (when one is present), so a
	// wide portfolio under a busy sweep degrades to fewer helpers rather
	// than oversubscribing the machine.
	Workers int
	// Deterministic pins the answer to the primary engine: no helpers
	// are launched, no clauses are imported, and the output is
	// byte-identical to Workers=1 regardless of the Workers value. Use
	// it when reports must be reproducible (differential batteries,
	// chaos baselines); it trades the portfolio speedup for stability.
	Deterministic bool
}

// effectiveWorkers resolves the portfolio width: deterministic mode and
// widths below 2 collapse to the single-threaded engine.
func effectiveWorkers(opts Options) int {
	if opts.Deterministic || opts.Workers < 2 {
		return 1
	}
	if opts.Workers > maxPortfolioWorkers {
		return maxPortfolioWorkers
	}
	return opts.Workers
}

// Model is one answer set.
type Model struct {
	// Atoms are the true, non-auxiliary ground atom keys, sorted.
	Atoms []string
	// Cost holds the objective per priority level for optimizing solves,
	// highest priority first.
	Cost []PriorityCost
}

// PriorityCost is the objective value at one priority level.
type PriorityCost struct {
	Priority int
	Cost     int
}

// Contains reports whether the model contains the atom key.
func (m *Model) Contains(key string) bool {
	i := sort.SearchStrings(m.Atoms, key)
	return i < len(m.Atoms) && m.Atoms[i] == key
}

// WithPredicate returns the atom keys of the model with the given
// predicate name.
func (m *Model) WithPredicate(pred string) []string {
	var out []string
	for _, a := range m.Atoms {
		if len(a) >= len(pred) && a[:len(pred)] == pred &&
			(len(a) == len(pred) || a[len(pred)] == '(') {
			out = append(out, a)
		}
	}
	return out
}

// Stats reports solver effort.
type Stats struct {
	Atoms        int
	GroundRules  int
	Vars         int
	Clauses      int
	Decisions    int64
	Conflicts    int64
	Propagations int64
	LoopClauses  int64
	StableChecks int64
	// Restarts counts level-0 restarts: Luby scheduled restarts, unit
	// clauses learned mid-search, plus the optimization re-enumeration
	// pass.
	Restarts int64
	// LearnedClauses counts clauses learned from first-UIP conflict
	// analysis (units excluded).
	LearnedClauses int64
	// Backjumps counts non-chronological backtracks: conflicts whose
	// backjump skipped more than one decision level.
	Backjumps int64
	// DBReductions counts learned-clause database reductions.
	DBReductions int64
	// Duration is the wall-clock time spent in Solve (translation plus
	// search).
	Duration time.Duration

	// Multi-shot counters, zero for single-shot solves. Sessions counts
	// persistent solver sessions opened; Queries counts SolveAssuming
	// calls answered across them; Adds counts incremental program deltas
	// grounded into live sessions.
	Sessions int64
	Queries  int64
	Adds     int64
	// GroundAtomsReused counts possible ground atoms already present in a
	// session's atom pool when an incremental Add ran — grounding work
	// amortized instead of redone.
	GroundAtomsReused int64
	// LearnedReused counts learned clauses carried into a query from
	// earlier queries of the same session instead of being rediscovered.
	LearnedReused int64

	// Portfolio counters, zero when portfolio search was off. Workers
	// launched, who answered, and exchange-ring traffic: clauses a worker
	// published, clauses actually installed by peers, and publications
	// overwritten before every peer read them (ring bounded, writers never
	// block).
	PortfolioWorkers int64
	PortfolioWins    int64 // races answered by a helper instead of worker 0
	PortfolioWinner  int   // worker ID that produced the most recent answer
	ClausesExported  int64
	ClausesImported  int64
	ExchangeDrops    int64
}

// Result is the outcome of a Solve call.
type Result struct {
	Satisfiable bool
	Models      []Model
	// Optimal is true when Models are proven optimal.
	Optimal bool
	// Interrupted is true when the search stopped on budget exhaustion:
	// Models holds whatever was found up to that point (for optimizing
	// solves, the best model known so far) and InterruptReason says why
	// ("deadline", "cancelled", "decision-cap", "conflict-cap").
	Interrupted     bool
	InterruptReason string
	// Core names the assumptions responsible for unsatisfiability, in
	// sorted order, when a Session.SolveAssuming query fails: a (non-
	// minimal but conflict-directed) unsat core from final-conflict
	// analysis. Nil for satisfiable queries and for programs that are
	// unsatisfiable regardless of assumptions.
	Core  []string
	Stats Stats
}

// SolveProgram grounds and solves a logic program. Grounding is governed
// by opts.Budget too: exceeding the grounding-rule cap (or the deadline
// during grounding) aborts with an *budget.ExhaustedError, because a
// partially grounded program would be unsound to solve.
func SolveProgram(prog *logic.Program, opts Options) (*Result, error) {
	gp, err := GroundBudget(prog, opts.Budget)
	if err != nil {
		return nil, err
	}
	return Solve(gp, opts)
}

// SolveSource parses, grounds, and solves program text.
func SolveSource(src string, opts Options) (*Result, error) {
	prog, err := logic.Parse(src)
	if err != nil {
		return nil, err
	}
	return SolveProgram(prog, opts)
}

// Solve computes stable models of a ground program. With a budget in
// opts, an exhausted cap does not error: the models found so far are
// returned with Result.Interrupted set and the final Stats filled in.
func Solve(gp *GroundProgram, opts Options) (*Result, error) {
	if effectiveWorkers(opts) > 1 {
		return solvePortfolio(gp, opts)
	}
	start := time.Now()
	tr, err := translate(gp)
	if err != nil {
		return nil, err
	}
	tr.s.applyBudget(opts.Budget)
	res := &Result{}
	if opts.Optimize && len(gp.Minimize) > 0 {
		if err := tr.solveOptimize(opts, res); err != nil {
			return nil, err
		}
	} else {
		if err := tr.solveEnumerate(opts, res, -1); err != nil {
			return nil, err
		}
	}
	res.Satisfiable = len(res.Models) > 0
	tr.fillStats(&res.Stats)
	res.Stats.Duration = time.Since(start)
	PublishStats(obs.RegistryFromContext(opts.Budget.Context()), &res.Stats)
	return res, nil
}

// derivRule is the reduct-derivation view of a ground rule: one entry per
// basic rule head and per choice-rule head element (whose guard condition
// counts as a positive dependency).
type derivRule struct {
	head    AtomID
	pos     []AtomID
	neg     []AtomID
	choice  bool
	support lit // body var (basic) or body∧cond var (choice)
}

type translation struct {
	gp *GroundProgram
	s  *sat

	atomVar []int // AtomID -> sat var (0 = none)
	vTrue   int   // var forced true

	deriv  []derivRule
	posOcc [][]int32 // atom -> deriv rule indices with it in pos

	bodyMemo map[string]lit
	andMemo  map[[2]lit]lit

	costOffset int64
	loopAdds   int64
	stableCks  int64

	// tight is true when the positive dependency graph is acyclic: then
	// the Clark completion is exact, every model of the completion is
	// stable, and the unfounded-set check short-circuits.
	tight bool

	// sortedExt caches the non-internal atom IDs in name order so model
	// extraction avoids a per-model string sort.
	sortedExt []AtomID

	// unfounded-set scratch buffers, reused across stability checks.
	ufDerived   []bool
	ufRemaining []int
	ufQueue     []AtomID

	// Incremental extension state (multi-shot sessions): supports and
	// factHead persist so completion clauses for atoms introduced by a
	// later Add can be emitted against the full support picture;
	// translatedRules and knownAtoms record how far translation has
	// progressed into gp.
	supports        map[AtomID][]lit
	factHead        map[AtomID]bool
	translatedRules int
	knownAtoms      int

	// shared, when non-nil, is the race-wide objective state of a
	// portfolio solve: optimize passes publish incumbents to it and
	// harvest the global best before re-enumeration.
	shared *raceShared
}

func translate(gp *GroundProgram) (*translation, error) {
	tr := &translation{
		gp:       gp,
		s:        newSAT(),
		atomVar:  make([]int, gp.NumAtoms()+1),
		bodyMemo: map[string]lit{},
		andMemo:  map[[2]lit]lit{},
		posOcc:   make([][]int32, gp.NumAtoms()+1),
	}
	tr.vTrue = tr.s.newVar()
	tr.s.addClause([]lit{lit(tr.vTrue)})
	for id := AtomID(1); id <= AtomID(gp.NumAtoms()); id++ {
		tr.atomVar[id] = tr.s.newVar()
	}

	tr.supports = make(map[AtomID][]lit)
	tr.factHead = make(map[AtomID]bool)

	for _, r := range gp.Rules {
		switch r.Kind {
		case KindBasic:
			if err := tr.translateBasic(r, tr.supports, tr.factHead); err != nil {
				return nil, err
			}
		case KindChoice:
			if err := tr.translateChoice(r, tr.supports); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("solver: unknown ground rule kind %d", r.Kind)
		}
	}

	// Completion support clauses: a true atom needs some support.
	for id := AtomID(1); id <= AtomID(gp.NumAtoms()); id++ {
		tr.emitCompletion(id)
	}

	if err := tr.translateObjective(); err != nil {
		return nil, err
	}
	tr.tight = tr.detectTight()
	tr.buildOrder()
	tr.translatedRules = len(gp.Rules)
	tr.knownAtoms = gp.NumAtoms()
	return tr, nil
}

// emitCompletion adds the support clause of one atom: a true atom needs
// some support (¬a ∨ sup1 ∨ ... ∨ supK). Fact heads and tautological
// supports skip the clause.
func (tr *translation) emitCompletion(id AtomID) {
	if tr.factHead[id] {
		return
	}
	sup := tr.supports[id]
	clause := make([]lit, 0, len(sup)+1)
	clause = append(clause, -tr.atomLit(id))
	for _, l := range sup {
		if l == tr.trueLit() {
			return
		}
		clause = append(clause, l)
	}
	tr.s.addClause(clause)
}

// growAtoms allocates solver variables (and completion clauses, when
// emitNewCompletions is set) for atoms interned into gp since the last
// translation pass.
func (tr *translation) growAtoms(emitNewCompletions bool) {
	gp := tr.gp
	if gp.NumAtoms() <= tr.knownAtoms {
		return
	}
	first := AtomID(tr.knownAtoms + 1)
	for id := first; id <= AtomID(gp.NumAtoms()); id++ {
		tr.atomVar = append(tr.atomVar, tr.s.newVar())
		tr.posOcc = append(tr.posOcc, nil)
	}
	if emitNewCompletions {
		for id := first; id <= AtomID(gp.NumAtoms()); id++ {
			tr.emitCompletion(id)
		}
	}
	tr.knownAtoms = gp.NumAtoms()
	tr.sortedExt = nil
	tr.ufDerived = nil // forces the unfounded-set scratch to resize
}

// extendTranslation incorporates the rules appended to gp since the last
// translation pass. Precondition (enforced by Session.Add): every new
// rule head is an atom first interned by this delta, so no existing
// completion clause loses exactness — all previously learned clauses
// remain logical consequences of the extended program. Must run at
// decision level 0; a level-0 propagation conflict afterwards proves the
// extended program unsatisfiable.
func (tr *translation) extendTranslation() error {
	gp := tr.gp
	firstNew := AtomID(tr.knownAtoms + 1)
	tr.growAtoms(false)
	for _, r := range gp.Rules[tr.translatedRules:] {
		switch r.Kind {
		case KindBasic:
			if err := tr.translateBasic(r, tr.supports, tr.factHead); err != nil {
				return err
			}
		case KindChoice:
			if err := tr.translateChoice(r, tr.supports); err != nil {
				return err
			}
		default:
			return fmt.Errorf("solver: unknown ground rule kind %d", r.Kind)
		}
	}
	for id := firstNew; id <= AtomID(gp.NumAtoms()); id++ {
		tr.emitCompletion(id)
	}
	tr.translatedRules = len(gp.Rules)
	tr.tight = tr.detectTight()
	if !tr.s.unsatRoot {
		if confl := tr.s.propagate(); confl != nil {
			tr.s.unsatRoot = true
		}
	}
	return nil
}

// addConstraintsInSearch injects a constraints-only delta into a live
// search through the backjump-then-add path, preserving the search state
// (learned clauses, activities, phases, and the trail above the deepest
// conflicting level). This is the hot path of iterated enumeration:
// blocking constraints land as single clauses, no restart. Atoms first
// interned by the delta head no rule anywhere, so they are pinned false
// by their (empty-support) completion unit.
func (tr *translation) addConstraintsInSearch() {
	gp := tr.gp
	tr.growAtoms(true)
	for _, r := range gp.Rules[tr.translatedRules:] {
		clause := make([]lit, 0, len(r.Pos)+len(r.Neg))
		for _, p := range r.Pos {
			clause = append(clause, -tr.atomLit(p))
		}
		for _, n := range r.Neg {
			clause = append(clause, tr.atomLit(n))
		}
		tr.addSearchClause(clause)
		if tr.s.unsatRoot {
			break
		}
	}
	tr.translatedRules = len(gp.Rules)
}

// detectTight reports whether the positive dependency graph (head ->
// positive body atoms over all derivation rules) is acyclic. Tight
// programs need no loop formulas: the completion already characterizes
// the stable models (Fages' theorem).
func (tr *translation) detectTight() bool {
	n := tr.gp.NumAtoms()
	// color: 0 unvisited, 1 on stack, 2 done.
	color := make([]int8, n+1)
	type frame struct {
		id AtomID
		ri int // next posOcc-rule index to expand (rules with id in head)
		pi int // next pos-atom index within that rule
	}
	// Successor edges: head -> pos. Build head -> rule indices.
	headRules := make([][]int32, n+1)
	for ri := range tr.deriv {
		h := tr.deriv[ri].head
		if h != 0 {
			headRules[h] = append(headRules[h], int32(ri))
		}
	}
	var stack []frame
	for start := AtomID(1); start <= AtomID(n); start++ {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		stack = append(stack[:0], frame{id: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.ri < len(headRules[f.id]) {
				pos := tr.deriv[headRules[f.id][f.ri]].pos
				if f.pi >= len(pos) {
					f.ri++
					f.pi = 0
					continue
				}
				next := pos[f.pi]
				f.pi++
				switch color[next] {
				case 1:
					return false // positive cycle
				case 0:
					color[next] = 1
					stack = append(stack, frame{id: next})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if !advanced {
				color[f.id] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}

func (tr *translation) trueLit() lit  { return lit(tr.vTrue) }
func (tr *translation) falseLit() lit { return -lit(tr.vTrue) }

func (tr *translation) atomLit(id AtomID) lit { return lit(tr.atomVar[id]) }

func (tr *translation) translateBasic(r GroundRule, supports map[AtomID][]lit, factHead map[AtomID]bool) error {
	beta := tr.bodyVar(r.Pos, r.Neg)
	if r.Head == 0 {
		// Integrity constraint: body must be false.
		if beta == tr.trueLit() {
			tr.s.unsatRoot = true
			return nil
		}
		tr.s.addClause([]lit{-beta})
		return nil
	}
	h := tr.atomLit(r.Head)
	if beta == tr.trueLit() {
		tr.s.addClause([]lit{h})
		factHead[r.Head] = true
	} else {
		tr.s.addClause([]lit{-beta, h}) // forward: body -> head
	}
	supports[r.Head] = append(supports[r.Head], beta)
	tr.addDeriv(derivRule{head: r.Head, pos: r.Pos, neg: r.Neg, support: beta})
	return nil
}

func (tr *translation) translateChoice(r GroundRule, supports map[AtomID][]lit) error {
	beta := tr.bodyVar(r.Pos, r.Neg)
	n := len(r.Heads)
	counted := make([]lit, 0, n)
	for i, h := range r.Heads {
		condLit := tr.trueLit()
		var pos []AtomID
		pos = append(pos, r.Pos...)
		if r.Conds[i] != 0 {
			condLit = tr.atomLit(r.Conds[i])
			pos = append(pos, r.Conds[i])
		}
		sigma := tr.and(beta, condLit)
		supports[h] = append(supports[h], sigma)
		tr.addDeriv(derivRule{head: h, pos: pos, neg: r.Neg, choice: true, support: sigma})
		counted = append(counted, tr.and(tr.atomLit(h), condLit))
	}
	lower, upper := r.Lower, r.Upper
	if lower == logic.Unbounded {
		lower = 0
	}
	if lower == 0 && (upper == logic.Unbounded || upper >= n) {
		return nil // no cardinality constraint
	}
	if lower > n {
		// Impossible bound: body must be false.
		if beta == tr.trueLit() {
			tr.s.unsatRoot = true
			return nil
		}
		tr.s.addClause([]lit{-beta})
		return nil
	}
	atLeast := tr.seqCounter(counted, maxBoundCol(lower, upper, n))
	if lower > 0 {
		tr.s.addClause([]lit{-beta, atLeast(lower)})
	}
	if upper != logic.Unbounded && upper < n {
		tr.s.addClause([]lit{-beta, -atLeast(upper + 1)})
	}
	return nil
}

func maxBoundCol(lower, upper, n int) int {
	k := lower
	if upper != logic.Unbounded && upper+1 > k {
		k = upper + 1
	}
	if k > n {
		k = n
	}
	return k
}

func (tr *translation) addDeriv(dr derivRule) {
	idx := int32(len(tr.deriv))
	tr.deriv = append(tr.deriv, dr)
	for _, p := range dr.pos {
		tr.posOcc[p] = append(tr.posOcc[p], idx)
	}
}

// bodyVar returns a literal equivalent to the conjunction of the body.
func (tr *translation) bodyVar(pos, neg []AtomID) lit {
	if len(pos) == 0 && len(neg) == 0 {
		return tr.trueLit()
	}
	if len(pos) == 1 && len(neg) == 0 {
		return tr.atomLit(pos[0])
	}
	if len(pos) == 0 && len(neg) == 1 {
		return -tr.atomLit(neg[0])
	}
	key := bodyKey(pos, neg)
	if b, ok := tr.bodyMemo[key]; ok {
		return b
	}
	v := tr.s.newVar()
	beta := lit(v)
	long := make([]lit, 0, len(pos)+len(neg)+1)
	long = append(long, beta)
	for _, p := range pos {
		l := tr.atomLit(p)
		tr.s.addClause([]lit{-beta, l})
		long = append(long, -l)
	}
	for _, n := range neg {
		l := -tr.atomLit(n)
		tr.s.addClause([]lit{-beta, l})
		long = append(long, -l)
	}
	tr.s.addClause(long)
	tr.bodyMemo[key] = beta
	return beta
}

func bodyKey(pos, neg []AtomID) string {
	ps := make([]int, len(pos))
	for i, p := range pos {
		ps[i] = int(p)
	}
	ns := make([]int, len(neg))
	for i, n := range neg {
		ns[i] = int(n)
	}
	sort.Ints(ps)
	sort.Ints(ns)
	return fmt.Sprint(ps, "~", ns)
}

// and returns a literal equivalent to a ∧ b.
func (tr *translation) and(a, b lit) lit {
	if a == tr.trueLit() {
		return b
	}
	if b == tr.trueLit() {
		return a
	}
	if a == tr.falseLit() || b == tr.falseLit() {
		return tr.falseLit()
	}
	if a == b {
		return a
	}
	if a == -b {
		return tr.falseLit()
	}
	key := [2]lit{a, b}
	if a > b {
		key = [2]lit{b, a}
	}
	if x, ok := tr.andMemo[key]; ok {
		return x
	}
	x := lit(tr.s.newVar())
	tr.s.addClause([]lit{-x, a})
	tr.s.addClause([]lit{-x, b})
	tr.s.addClause([]lit{x, -a, -b})
	tr.andMemo[key] = x
	return x
}

// or returns a literal equivalent to a ∨ b.
func (tr *translation) or(a, b lit) lit { return -tr.and(-a, -b) }

// seqCounter builds a sequential cardinality counter over lits and returns
// a function mapping k (1..maxK) to a literal equivalent to
// "at least k of lits are true".
func (tr *translation) seqCounter(lits []lit, maxK int) func(int) lit {
	n := len(lits)
	// prev[j] = at-least-j among first i literals.
	prev := make([]lit, maxK+1)
	prev[0] = tr.trueLit()
	for j := 1; j <= maxK; j++ {
		prev[j] = tr.falseLit()
	}
	for i := 1; i <= n; i++ {
		cur := make([]lit, maxK+1)
		cur[0] = tr.trueLit()
		for j := 1; j <= maxK; j++ {
			// cur[j] = prev[j] ∨ (lits[i-1] ∧ prev[j-1])
			cur[j] = tr.or(prev[j], tr.and(lits[i-1], prev[j-1]))
		}
		prev = cur
	}
	return func(k int) lit {
		if k <= 0 {
			return tr.trueLit()
		}
		if k > maxK {
			return tr.falseLit()
		}
		return prev[k]
	}
}

// translateObjective folds multi-priority minimize elements into a single
// nonnegative objective on sat variables (big-M combination of priorities;
// negative weights are shifted through the complement literal).
func (tr *translation) translateObjective() error {
	if len(tr.gp.Minimize) == 0 {
		return nil
	}
	// Per-priority sum of |weights| to size the scales.
	sums := map[int]int64{}
	prios := []int{}
	for _, m := range tr.gp.Minimize {
		if _, ok := sums[m.Priority]; !ok {
			prios = append(prios, m.Priority)
		}
		w := int64(m.Weight)
		if w < 0 {
			w = -w
		}
		sums[m.Priority] += w
	}
	sort.Ints(prios) // ascending: lowest priority least significant
	scale := map[int]int64{}
	var acc int64 = 1
	for _, p := range prios {
		scale[p] = acc
		next := acc * (sums[p] + 1)
		if next < acc || next > 1<<60 {
			return fmt.Errorf("solver: objective overflow combining priorities")
		}
		acc = next
	}
	for _, m := range tr.gp.Minimize {
		g := tr.atomLit(m.Guard)
		w := int64(m.Weight) * scale[m.Priority]
		if w >= 0 {
			tr.s.weight[g.variable()] += w
			continue
		}
		// w*g == w + (-w)*(¬g): put -w on a complement variable.
		x := tr.s.newVar()
		tr.s.addClause([]lit{lit(x), g})
		tr.s.addClause([]lit{-lit(x), -g})
		tr.s.weight[x] += -w
		tr.costOffset += w
	}
	return nil
}

// buildOrder seeds the branching activities so choice-supported atoms
// (the generators) are tried first, then everything else in index order,
// until conflict-driven bumps take over.
func (tr *translation) buildOrder() {
	choiceVars := map[int]bool{}
	for _, dr := range tr.deriv {
		if dr.choice {
			choiceVars[tr.atomVar[dr.head]] = true
		}
	}
	order := make([]int, 0, tr.s.nVars)
	for v := 1; v < tr.s.nVars; v++ {
		if choiceVars[v] {
			order = append(order, v)
		}
	}
	for v := 1; v < tr.s.nVars; v++ {
		if !choiceVars[v] {
			order = append(order, v)
		}
	}
	tr.s.seedActivities(order)
}

func (tr *translation) fillStats(st *Stats) {
	st.Atoms = tr.gp.NumAtoms()
	st.GroundRules = len(tr.gp.Rules)
	st.Vars = tr.s.nVars - 1
	st.Clauses = len(tr.s.clauses)
	st.Decisions = tr.s.decisions
	st.Conflicts = tr.s.conflicts
	st.Propagations = tr.s.propagations
	st.LoopClauses = tr.loopAdds
	st.StableChecks = tr.stableCks
	st.Restarts = tr.s.restarts
	st.LearnedClauses = tr.s.learned
	st.Backjumps = tr.s.backjumps
	st.DBReductions = tr.s.dbReductions
	st.ClausesExported = tr.s.shExported
	st.ClausesImported = tr.s.shImported
	st.ExchangeDrops = tr.s.shDrops
}

// atomTrue reports the truth of an atom in the current total assignment.
func (tr *translation) atomTrue(id AtomID) bool {
	return tr.s.assign[tr.atomVar[id]] == 1
}

// unfoundedSet returns the set of true-but-underivable atoms for the
// current total assignment, or nil if the assignment is stable.
func (tr *translation) unfoundedSet() []AtomID {
	tr.stableCks++
	if tr.tight {
		return nil
	}
	if tr.ufDerived == nil {
		tr.ufDerived = make([]bool, tr.gp.NumAtoms()+1)
		tr.ufRemaining = make([]int, len(tr.deriv))
		tr.ufQueue = make([]AtomID, 0, 64)
	} else {
		for i := range tr.ufDerived {
			tr.ufDerived[i] = false
		}
	}
	derived := tr.ufDerived
	remaining := tr.ufRemaining
	queue := tr.ufQueue[:0]

	deriveAtom := func(id AtomID) {
		if id != 0 && !derived[id] && tr.atomTrue(id) {
			derived[id] = true
			queue = append(queue, id)
		}
	}
	fire := func(ri int) {
		dr := &tr.deriv[ri]
		for _, n := range dr.neg {
			if tr.atomTrue(n) {
				return
			}
		}
		deriveAtom(dr.head)
	}

	for ri := range tr.deriv {
		dr := &tr.deriv[ri]
		cnt := 0
		for _, p := range dr.pos {
			if !derived[p] {
				cnt++
			}
		}
		remaining[ri] = cnt
		if cnt == 0 {
			fire(ri)
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range tr.posOcc[a] {
			ri := int(ri)
			dr := &tr.deriv[ri]
			// Decrement once per occurrence of a in pos.
			for _, p := range dr.pos {
				if p == a {
					remaining[ri]--
				}
			}
			if remaining[ri] <= 0 {
				// Fire only if truly all pos derived (duplicates handled by
				// exact re-count).
				ok := true
				for _, p := range dr.pos {
					if !derived[p] {
						ok = false
						break
					}
				}
				if ok {
					fire(ri)
				}
			}
		}
	}

	tr.ufQueue = queue[:0]

	var unfounded []AtomID
	for id := AtomID(1); id <= AtomID(tr.gp.NumAtoms()); id++ {
		if tr.atomTrue(id) && !derived[id] {
			unfounded = append(unfounded, id)
		}
	}
	return unfounded
}

// loopClause builds the loop formula for an unfounded set:
// ⋁_{u∈U} ¬u  ∨  ⋁ external supports of U.
func (tr *translation) loopClause(unfounded []AtomID) []lit {
	inU := map[AtomID]bool{}
	for _, u := range unfounded {
		inU[u] = true
	}
	clause := make([]lit, 0, len(unfounded)+4)
	for _, u := range unfounded {
		clause = append(clause, -tr.atomLit(u))
	}
	seen := map[lit]bool{}
	for _, dr := range tr.deriv {
		if !inU[dr.head] {
			continue
		}
		external := true
		for _, p := range dr.pos {
			if inU[p] {
				external = false
				break
			}
		}
		if !external || dr.support == tr.trueLit() || seen[dr.support] {
			continue
		}
		seen[dr.support] = true
		clause = append(clause, dr.support)
	}
	return clause
}

func (tr *translation) addSearchClause(c []lit) {
	tr.searchClauseTagged(c, false)
}

// addLocalSearchClause is addSearchClause for clauses that are not
// program consequences (blocking clauses, exact-cost filters): the
// clause is tagged so portfolio workers never export anything derived
// from it.
func (tr *translation) addLocalSearchClause(c []lit) {
	tr.searchClauseTagged(c, true)
}

func (tr *translation) searchClauseTagged(c []lit, local bool) {
	tr.s.backtrackForClause(c)
	if tr.s.clauseStatus(c) == -1 {
		// Conflicting even at level 0: no further models exist.
		tr.s.unsatRoot = true
		return
	}
	tr.s.addClauseTagged(c, local)
}

// sortedExternal returns (and caches) the non-internal atom IDs sorted
// by atom name.
func (tr *translation) sortedExternal() []AtomID {
	if tr.sortedExt == nil {
		ids := make([]AtomID, 0, tr.gp.NumAtoms())
		for id := AtomID(1); id <= AtomID(tr.gp.NumAtoms()); id++ {
			if !tr.gp.IsInternal(id) {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool {
			return tr.gp.AtomName(ids[i]) < tr.gp.AtomName(ids[j])
		})
		tr.sortedExt = ids
	}
	return tr.sortedExt
}

// extractModel reads the current stable assignment into a Model.
func (tr *translation) extractModel() Model {
	atoms := make([]string, 0, len(tr.sortedExternal()))
	for _, id := range tr.sortedExternal() {
		if tr.atomTrue(id) {
			atoms = append(atoms, tr.gp.AtomName(id))
		}
	}
	m := Model{Atoms: atoms}
	if len(tr.gp.Minimize) > 0 {
		m.Cost = tr.modelCosts()
	}
	return m
}

func (tr *translation) modelCosts() []PriorityCost {
	per := map[int]int{}
	prios := []int{}
	for _, gm := range tr.gp.Minimize {
		if _, ok := per[gm.Priority]; !ok {
			prios = append(prios, gm.Priority)
			per[gm.Priority] = 0
		}
		if tr.atomTrue(gm.Guard) {
			per[gm.Priority] += gm.Weight
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))
	out := make([]PriorityCost, 0, len(prios))
	for _, p := range prios {
		out = append(out, PriorityCost{Priority: p, Cost: per[p]})
	}
	return out
}

// blockingClause excludes the current atom assignment.
func (tr *translation) blockingClause() []lit {
	clause := make([]lit, 0, tr.gp.NumAtoms())
	for id := AtomID(1); id <= AtomID(tr.gp.NumAtoms()); id++ {
		l := tr.atomLit(id)
		if tr.s.assign[l.variable()] == 1 {
			clause = append(clause, -l)
		} else {
			clause = append(clause, l)
		}
	}
	return clause
}

// solveEnumerate enumerates stable models. If exactCost >= 0 only models
// whose combined objective equals exactCost are kept (with pruning above
// it).
func (tr *translation) solveEnumerate(opts Options, res *Result, exactCost int64) error {
	if exactCost >= 0 {
		tr.s.pruning = true
		tr.s.bound = exactCost + 1
	}
	var searchErr error
	onTotal := func() bool {
		if err := tr.s.validateTotal(); err != nil {
			searchErr = err
			return true
		}
		if u := tr.unfoundedSet(); len(u) > 0 {
			tr.loopAdds++
			tr.addSearchClause(tr.loopClause(u))
			return false
		}
		if exactCost >= 0 && tr.s.curCost != exactCost {
			tr.addLocalSearchClause(tr.blockingClause())
			return false
		}
		res.Models = append(res.Models, tr.extractModel())
		if opts.MaxModels > 0 && len(res.Models) >= opts.MaxModels {
			return true
		}
		tr.addLocalSearchClause(tr.blockingClause())
		return false
	}
	err := tr.s.search(onTotal)
	if ex, ok := budget.Exhausted(err); ok {
		res.Interrupted = true
		res.InterruptReason = ex.Reason
		err = nil
	}
	if err != nil {
		return err
	}
	return searchErr
}

// solveOptimize runs branch-and-bound to the optimum, then re-enumerates
// the optimal models. On budget exhaustion the best model found so far
// is returned with Interrupted set (anytime optimization): it is the
// incumbent of the interrupted branch-and-bound, not a proven optimum.
func (tr *translation) solveOptimize(opts Options, res *Result) error {
	tr.s.pruning = true
	tr.s.bound = 1 << 62
	var best int64 = -1
	var incumbent Model
	found := false
	var searchErr error
	onTotal := func() bool {
		if err := tr.s.validateTotal(); err != nil {
			searchErr = err
			return true
		}
		if u := tr.unfoundedSet(); len(u) > 0 {
			tr.loopAdds++
			tr.addSearchClause(tr.loopClause(u))
			return false
		}
		found = true
		best = tr.s.curCost
		incumbent = tr.extractModel()
		tr.s.bound = best // require strictly better from now on
		if tr.shared != nil {
			tr.shared.publish(best, incumbent)
		}
		return false
	}
	err := tr.s.search(onTotal)
	if ex, ok := budget.Exhausted(err); ok {
		res.Interrupted = true
		res.InterruptReason = ex.Reason
		if m, c, ok := tr.harvestShared(); ok && (!found || c < best) {
			found, best, incumbent = true, c, m
		}
		if found {
			res.Models = []Model{incumbent}
		}
		return nil
	}
	if err != nil {
		return err
	}
	if searchErr != nil {
		return searchErr
	}
	// Exhaustion under pruning proves no model costs less than the final
	// bound; the race-wide incumbent at that bound may live in another
	// worker (its published cost tightened our pruning past our own best).
	if m, c, ok := tr.harvestShared(); ok && (!found || c < best) {
		found, best, incumbent = true, c, m
	}
	if !found {
		return nil
	}
	// Re-enumerate models at exactly the optimal cost on a fresh engine
	// (the first pass consumed the search space). The second pass runs
	// under whatever decision/conflict budget the first pass left over.
	tr2, err := translate(tr.gp)
	if err != nil {
		return err
	}
	tr2.s.pruning = true
	tr2.s.ctx = tr.s.ctx
	tr2.s.ctxPolls = ctxPollInterval
	tr2.s.maxDecisions = remainingCap(tr.s.maxDecisions, tr.s.decisions)
	tr2.s.maxConflicts = remainingCap(tr.s.maxConflicts, tr.s.conflicts)
	if err := tr2.solveEnumerate(opts, res, best); err != nil {
		return err
	}
	if res.Interrupted && len(res.Models) == 0 {
		// Enumeration could not rediscover the optimum in the leftover
		// budget: fall back to the incumbent from the first pass.
		res.Models = []Model{incumbent}
	}
	res.Optimal = !res.Interrupted
	// Merge stats from both passes; the re-enumeration is one restart.
	tr.loopAdds += tr2.loopAdds
	tr.stableCks += tr2.stableCks
	tr.s.decisions += tr2.s.decisions
	tr.s.conflicts += tr2.s.conflicts
	tr.s.propagations += tr2.s.propagations
	tr.s.restarts += tr2.s.restarts + 1
	tr.s.learned += tr2.s.learned
	tr.s.backjumps += tr2.s.backjumps
	tr.s.dbReductions += tr2.s.dbReductions
	return nil
}

// remainingCap returns the unspent part of a cap (minimum 1 so a capped
// second pass still terminates immediately rather than running free).
func remainingCap(limit, spent int64) int64 {
	if limit <= 0 {
		return 0
	}
	if left := limit - spent; left > 1 {
		return left
	}
	return 1
}
