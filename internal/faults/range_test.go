package faults

import (
	"fmt"
	"testing"

	"cpsrisk/internal/epa"
)

func rangeMuts(n int) []Mutation {
	muts := make([]Mutation, n)
	for i := range muts {
		muts[i] = Mutation{Activation: epa.Activation{
			Component: fmt.Sprintf("c%02d", i), Fault: "f"}}
	}
	return muts
}

func TestComboRankUnrankRoundTrip(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n; k++ {
			total, _ := Binomial64(n, k)
			idx := make([]int, k)
			for r := int64(0); r < total; r++ {
				comboUnrank(n, k, r, idx)
				for i := 1; i < k; i++ {
					if idx[i] <= idx[i-1] {
						t.Fatalf("n=%d k=%d r=%d: not strictly increasing: %v", n, k, r, idx)
					}
				}
				if got := comboRank(n, idx); got != r {
					t.Fatalf("n=%d k=%d: rank(unrank(%d)) = %d", n, k, r, got)
				}
			}
		}
	}
}

// EnumerateRange(lo, hi) must be exactly the [lo, hi) slice of the
// stream, for every split of the space.
func TestEnumerateRangeMatchesStreamSlice(t *testing.T) {
	muts := rangeMuts(7)
	for _, maxCard := range []int{0, 1, 3, -1} {
		var all []epa.Scenario
		EnumerateStream(muts, maxCard, func(sc epa.Scenario) bool {
			all = append(all, sc)
			return true
		})
		total := int64(len(all))
		for _, span := range [][2]int64{
			{0, total}, {0, 0}, {0, 1}, {1, 5}, {total - 3, total},
			{total / 2, total/2 + 7}, {total, total + 4}, {3, -1},
		} {
			lo, hi := span[0], span[1]
			var got []epa.Scenario
			EnumerateRange(muts, maxCard, lo, hi, func(sc epa.Scenario) bool {
				got = append(got, sc)
				return true
			})
			wantHi := hi
			if wantHi < 0 || wantHi > total {
				wantHi = total
			}
			wantLo := lo
			if wantLo < 0 {
				wantLo = 0
			}
			if wantLo > wantHi {
				wantLo = wantHi
			}
			want := all[wantLo:wantHi]
			if len(got) != len(want) {
				t.Fatalf("maxCard=%d [%d,%d): got %d scenarios, want %d",
					maxCard, lo, hi, len(got), len(want))
			}
			for i := range got {
				if got[i].Key() != want[i].Key() {
					t.Fatalf("maxCard=%d [%d,%d) pos %d: %s != %s",
						maxCard, lo, hi, i, got[i].Key(), want[i].Key())
				}
			}
		}
	}
}

// Contiguous shard ranges must partition the stream exactly.
func TestEnumerateRangeShardsPartitionSpace(t *testing.T) {
	muts := rangeMuts(8)
	maxCard := 3
	total, ok := SpaceSize(len(muts), maxCard)
	if !ok {
		t.Fatal("space overflow")
	}
	for _, m := range []int64{2, 3, 5} {
		var union []string
		for i := int64(0); i < m; i++ {
			lo := i * (total / m)
			if i < total%m {
				lo += i
			} else {
				lo += total % m
			}
			hi := lo + total/m
			if i < total%m {
				hi++
			}
			EnumerateRange(muts, maxCard, lo, hi, func(sc epa.Scenario) bool {
				union = append(union, sc.Key())
				return true
			})
		}
		if int64(len(union)) != total {
			t.Fatalf("m=%d: union has %d scenarios, want %d", m, len(union), total)
		}
		pos := 0
		EnumerateStream(muts, maxCard, func(sc epa.Scenario) bool {
			if union[pos] != sc.Key() {
				t.Fatalf("m=%d rank %d: %s != %s", m, pos, union[pos], sc.Key())
			}
			pos++
			return true
		})
	}
}

func TestEnumerateRangeEarlyStop(t *testing.T) {
	muts := rangeMuts(6)
	count := 0
	EnumerateRange(muts, -1, 2, 40, func(sc epa.Scenario) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("yield=false did not stop the range: %d", count)
	}
}

// FuzzRankUnrank drives the combinatorial rank machinery with arbitrary
// shapes: the rank<->combination round-trip must hold and
// EnumerateRange(lo, hi) must equal the corresponding slice of
// EnumerateStream for any (n, maxCard, lo, hi).
func FuzzRankUnrank(f *testing.F) {
	f.Add(uint8(5), int8(2), uint16(0), uint16(10))
	f.Add(uint8(9), int8(-1), uint16(7), uint16(300))
	f.Add(uint8(12), int8(4), uint16(100), uint16(90))
	f.Add(uint8(0), int8(0), uint16(0), uint16(1))
	f.Fuzz(func(t *testing.T, nRaw uint8, cardRaw int8, loRaw, hiRaw uint16) {
		n := int(nRaw % 13) // keep the space enumerable in fuzz time
		maxCard := int(cardRaw)
		if maxCard > n {
			maxCard = n
		}
		muts := rangeMuts(n)

		var all []epa.Scenario
		EnumerateStream(muts, maxCard, func(sc epa.Scenario) bool {
			all = append(all, sc)
			return true
		})
		total, ok := SpaceSize(n, maxCard)
		if !ok || total != int64(len(all)) {
			t.Fatalf("SpaceSize(%d,%d) = %d,%v but stream has %d", n, maxCard, total, ok, len(all))
		}

		// Round-trip every rank of a mid-size cardinality.
		k := 0
		if maxCard != 0 && n > 0 {
			k = 2
			if maxCard > 0 && k > maxCard {
				k = maxCard
			}
			if k > n {
				k = n
			}
		}
		levels, _ := Binomial64(n, k)
		idx := make([]int, k)
		for r := int64(0); r < levels; r++ {
			comboUnrank(n, k, r, idx)
			if got := comboRank(n, idx); got != r {
				t.Fatalf("rank(unrank(%d)) = %d (n=%d k=%d)", r, got, n, k)
			}
		}

		lo := int64(loRaw) % (total + 1)
		hi := int64(hiRaw) % (total + 2)
		var got []epa.Scenario
		EnumerateRange(muts, maxCard, lo, hi, func(sc epa.Scenario) bool {
			got = append(got, sc)
			return true
		})
		wantLo, wantHi := lo, hi
		if wantHi > total {
			wantHi = total
		}
		if wantLo > wantHi {
			wantLo = wantHi
		}
		want := all[wantLo:wantHi]
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d) of %d: got %d, want %d", lo, hi, total, len(got), len(want))
		}
		for i := range got {
			if got[i].Key() != want[i].Key() {
				t.Fatalf("range [%d,%d) pos %d: %s != %s", lo, hi, i, got[i].Key(), want[i].Key())
			}
		}
	})
}
