package hazard

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/store"
)

// The parallel sweep fans the scenario stream out to a worker pool and
// merges per-scenario results back in enumeration order. It is
// observably identical to the sequential AnalyzeBudget — same S<n> IDs,
// same ordering, same risks, same budget and truncation semantics
// (largest fully-completed cardinality) — because:
//
//   - the producer assigns each scenario its 0-based stream position
//     (seq) before fan-out, and IDs derive from seq alone;
//   - the MaxScenarios cap is enforced by the producer, so exactly the
//     same prefix of the stream is analyzed as sequentially;
//   - the merge keeps only the contiguous prefix of completed scenarios
//     below the earliest failure/exhaustion, then applies the same
//     completed-cardinality fallback.
//
// Only the epa.Engine is shared between workers; it is immutable after
// construction and documented safe for concurrent Run calls.
//
// With a SweepConfig the sweep additionally becomes crash-safe: EPA
// results are memoized in a persistent store.Cache keyed by (engine
// hash, scenario bitmask), the contiguous completion frontier is
// checkpointed (cache flushed first — write-ahead), transient failures
// are retried with backoff, and a worker panic degrades to a truncation
// boundary instead of taking the process down.

// sweepChunkSize is how many scenarios ride one channel send. Scenario
// analyses are individually cheap (microseconds on small plants), so
// per-scenario channel operations dominated the parallel sweep and made
// it slower than sequential at high scenario counts; chunking amortizes
// the synchronization without changing which scenarios are analyzed or
// in what order they are merged.
const sweepChunkSize = 32

// sweepRetries bounds the retry-with-backoff attempts for transient
// per-scenario failures before the failure is treated as real.
const sweepRetries = 3

// SweepConfig bundles the optional machinery around a sweep. The zero
// value is a plain in-memory sweep with default parallelism.
type SweepConfig struct {
	// Budget governs the sweep (nil = unlimited).
	Budget *budget.Budget
	// Parallelism sizes the worker pool (<= 0 = GOMAXPROCS).
	Parallelism int
	// Cache, when set, memoizes EPA state vectors across runs.
	Cache *store.Cache
	// Checkpoint, when set, persists the completion frontier and arms
	// resume-from-checkpoint on the next run over the same inputs.
	Checkpoint *Checkpoint
	// Prune enables dominance pruning and symmetry-orbit replication
	// (see prune.go). The reported Analysis is byte-identical with or
	// without pruning; only the executed-scenario count changes.
	Prune bool
	// ShardIndex/ShardCount split the rank space into ShardCount
	// contiguous balanced ranges; this sweep covers range ShardIndex
	// (0-based). ShardCount <= 1 sweeps the whole space. Shards share a
	// cache namespace, so a final whole-space run over the common cache
	// directory merges their results without recomputation.
	ShardIndex, ShardCount int
	// Reuse, when set, is the delta re-assessment oracle (see
	// internal/artifact and core's delta path): it returns the known
	// violated-requirement set for a scenario whose outcome is provably
	// unchanged from a cached parent analysis. Rows it answers are
	// synthesized without an EPA run and counted in SweepStats.Reused.
	// The oracle must be deterministic for the duration of the sweep and
	// safe for concurrent calls.
	Reuse func(sc epa.Scenario) ([]string, bool)
}

// sweepChunk is a contiguous run of scenarios starting at stream
// position baseSeq.
type sweepChunk struct {
	baseSeq int
	scs     []epa.Scenario
}

// sweepOutcome is one worker's verdict on a chunk: the results of the
// completed prefix, plus — if the chunk stopped early — the stream
// position of the first failed scenario with its truncation or error.
// n is the chunk length, which the merge needs to advance the
// completion frontier past fully-completed chunks.
type sweepOutcome struct {
	baseSeq int
	n       int
	srs     []ScenarioResult
	badSeq  int // first failed seq in the chunk, or -1
	trunc   *budget.Truncation
	err     error
}

// producerOutcome reports how enumeration ended: how many jobs were
// emitted and whether a cap or the budget stopped the stream.
type producerOutcome struct {
	emitted int
	trunc   *budget.Truncation
}

// AnalyzeParallel is Analyze with a worker pool of the given size
// sweeping the scenario space. parallelism <= 0 uses
// runtime.GOMAXPROCS(0); parallelism == 1 is exactly the sequential
// path. The output is deterministic and identical to Analyze.
func AnalyzeParallel(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, parallelism int) (*Analysis, error) {
	return AnalyzeParallelBudget(eng, muts, maxCard, reqs, nil, parallelism)
}

// AnalyzeParallelBudget is AnalyzeParallel under resource governance,
// with AnalyzeBudget's degradation semantics: the budget is polled per
// scenario (producer and workers), exhaustion truncates to the largest
// fully completed cardinality, and MaxScenarios caps the analyzed
// prefix deterministically.
func AnalyzeParallelBudget(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, bud *budget.Budget, parallelism int) (*Analysis, error) {
	return AnalyzeSweep(eng, muts, maxCard, reqs, SweepConfig{Budget: bud, Parallelism: parallelism})
}

// AnalyzeSweep is the full sweep engine: AnalyzeParallelBudget plus the
// optional persistent result cache and checkpoint/resume. A resumed
// sweep replays enumeration from rank 0 — cached scenarios become
// lookups, uncached ones recompute — so the final Analysis is identical
// to an uninterrupted run; Analysis.Resume records the provenance.
func AnalyzeSweep(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, cfg SweepConfig) (*Analysis, error) {
	parallelism := cfg.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	bud := cfg.Budget
	if parallelism == 1 && cfg.Cache == nil && cfg.Checkpoint == nil &&
		!cfg.Prune && cfg.ShardCount <= 1 && cfg.Reuse == nil {
		return AnalyzeBudget(eng, muts, maxCard, reqs, bud)
	}
	if err := validateReqs(reqs); err != nil {
		return nil, err
	}
	// Shard range: absolute stream ranks, balanced split. Scenario IDs
	// derive from the global rank, so shard reports merge coherently.
	shardLo, shardHi := 0, math.MaxInt
	sharded := cfg.ShardCount > 1
	if sharded {
		if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount {
			return nil, fmt.Errorf("hazard: shard index %d outside [0,%d)", cfg.ShardIndex, cfg.ShardCount)
		}
		total, ok := faults.SpaceSize(len(muts), maxCard)
		if !ok {
			return nil, fmt.Errorf("hazard: scenario space overflows int64; cannot shard")
		}
		m, i := int64(cfg.ShardCount), int64(cfg.ShardIndex)
		lo := i*(total/m) + min(i, total%m)
		size := total / m
		if i < total%m {
			size++
		}
		shardLo, shardHi = int(lo), int(lo+size)
	}
	// Workers beyond the first draw launch slots from the run-wide
	// worker-pool governor when the budget carries one, so a sweep racing
	// other parallel stages (CEGAR validation, solver portfolios) shares
	// one machine-sized pool instead of multiplying. Without a governor
	// the grant is the full request. The first worker always runs.
	gov := bud.Governor()
	grantedWorkers := gov.AcquireUpTo(parallelism - 1)
	defer gov.Release(grantedWorkers)
	parallelism = 1 + grantedWorkers
	start := time.Now()
	likelihoods := faults.LikelihoodIndex(muts)
	limits := bud.Limits()
	inj := bud.Injector()
	cfg.Checkpoint.SetInjector(inj)

	// Resume: a checkpoint whose hashes match this exact sweep yields the
	// frontier rank below which scenarios are already paid for — they are
	// replayed through the cache but exempt from the MaxScenarios cap.
	// A shard's floor is its range start, checkpoint or not.
	resumeFrom := max(cfg.Checkpoint.Resume(eng.Hash(), hashMuts(muts), hashReqs(reqs), maxCard), shardLo)

	// Cache keys are bitmasks over the candidate-set index; the candidate
	// set is part of the cache namespace, so the index is stable.
	mutIdx := make(map[epa.Activation]int, len(muts))
	for i, m := range muts {
		mutIdx[m.Activation] = i
	}
	maskLen := (len(muts) + 7) / 8

	// Pruning state: dominance index, symmetry orbits, synthesized-result
	// codec. nil when pruning is off — the hot path then pays nothing.
	// With a persistent cache the dominance antichain and orbit memo are
	// seeded from every record already on disk, so a shard starting
	// mid-space (or any warm rerun) prunes from rank one instead of
	// rediscovering its index from scratch.
	var pr *pruner
	if cfg.Prune {
		pr = newPruner(eng, muts, reqs)
		pr.seedFromCache(cfg.Cache, eng, muts, maskLen)
	}

	// MaxScenarios accounting. A plain sweep charges every emitted rank
	// at the producer and stops at the cap, exactly like the sequential
	// path. When pruning or reuse can synthesize rows, the cap must
	// charge executed-equivalent work only — implied and reused rows are
	// free, or a pruned run would truncate earlier than an exhaustive one
	// despite doing less work. Which rows are implied is worker-timing-
	// dependent, so the charge is decided by the merge instead: a shadow,
	// UNSEEDED pruner replays the merged rows in contiguous rank order —
	// the deterministic sequential-equivalent of the sweep — and the
	// accountant raises the stop flag when the charge reaches the cap.
	// The producer polls the flag; workers in flight overshoot by at most
	// the pipeline depth, and the surplus rows fall above the
	// accountant's truncation rank, which is deterministic across
	// parallelism, cache state, and seeding.
	var acct *capAccountant
	var prodStop atomic.Bool
	if limits.MaxScenarios > 0 && (cfg.Prune || cfg.Reuse != nil) {
		acct = &capAccountant{
			limit:      limits.MaxScenarios,
			resumeFrom: resumeFrom,
			reuse:      cfg.Reuse,
			mutIdx:     mutIdx,
			maskLen:    maskLen,
			cut:        math.MaxInt,
			stop:       &prodStop,
		}
		if cfg.Prune {
			acct.shadow = newPruner(eng, muts, reqs)
		}
	}

	// Observability: one span per sweep and per worker, one span per
	// chunk when traced; metrics instruments are resolved once here and
	// updated at chunk granularity from the workers — the race test
	// hammers exactly this path. Untraced runs pay a nil check per chunk.
	obsCtx, sweepSpan := obs.StartSpan(bud.Context(), "sweep")
	defer sweepSpan.End()
	reg := obs.RegistryFromContext(obsCtx)
	cChunks := reg.Counter("sweep.chunks")
	hChunk := reg.Histogram("sweep.chunk_us")

	jobs := make(chan sweepChunk, parallelism*4)
	outcomes := make(chan sweepOutcome, parallelism*4)
	produced := make(chan producerOutcome, 1)

	// Producer: enumerate in order, batching scenarios into chunks tagged
	// with their starting stream position. Budget poll and scenario cap
	// live here, per scenario, so the analyzed prefix matches the
	// sequential sweep exactly. Ranks below the resume frontier are
	// emitted (the report needs their rows) but not charged to the cap.
	go func() {
		defer close(jobs)
		seq := shardLo
		var trunc *budget.Truncation
		chunk := sweepChunk{}
		flush := func() {
			if len(chunk.scs) > 0 {
				jobs <- chunk
				chunk = sweepChunk{}
			}
		}
		faults.EnumerateRange(muts, maxCard, int64(shardLo), int64(shardHi), func(sc epa.Scenario) bool {
			if acct == nil {
				charged := seq - resumeFrom
				if limits.MaxScenarios > 0 && charged >= limits.MaxScenarios {
					trunc = &budget.Truncation{Stage: "hazard", Reason: budget.ReasonScenarios}
					trunc.Stamp(obsCtx)
					return false
				}
			} else if prodStop.Load() {
				// The merge-side accountant reached the cap; its
				// deterministic truncation rank defines the cut.
				return false
			}
			if err := bud.Err("hazard"); err != nil {
				ex, _ := budget.Exhausted(err)
				trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
				trunc.Stamp(obsCtx)
				return false
			}
			if len(chunk.scs) == 0 {
				chunk.baseSeq = seq
				chunk.scs = make([]epa.Scenario, 0, sweepChunkSize)
			}
			chunk.scs = append(chunk.scs, sc)
			if len(chunk.scs) == sweepChunkSize {
				flush()
			}
			seq++
			return true
		})
		flush()
		produced <- producerOutcome{emitted: seq, trunc: trunc}
	}()

	// Workers: one EPA run (or cache lookup) plus requirement evaluation
	// per scenario, against the shared immutable engine. A chunk stops at
	// its first failure — everything after it would be discarded by the
	// merge anyway. A panic anywhere in the chunk (including injected
	// ones) is recovered into a chunk failure at the first unprocessed
	// rank, so one poisoned scenario degrades the sweep instead of
	// killing the process.
	var cacheHits, cacheMisses, retries atomic.Int64
	var executed, prunedCnt, orbitHits, reused atomic.Int64
	runChunk := func(jb sweepChunk, wCtx context.Context) (o sweepOutcome) {
		o = sweepOutcome{baseSeq: jb.baseSeq, n: len(jb.scs), badSeq: -1}
		defer func() {
			if r := recover(); r != nil {
				o.badSeq = jb.baseSeq + len(o.srs)
				o.err = fmt.Errorf("hazard: sweep worker panic: %v", r)
			}
		}()
		if inj != nil {
			if err := inj.Fire(faultinject.SiteSweepChunk); err != nil {
				// Chunk-level faults (transient or not) surface as a
				// failure at the chunk head; a resume replays the chunk.
				o.badSeq = jb.baseSeq
				o.err = err
				return o
			}
		}
		for i, sc := range jb.scs {
			seq := jb.baseSeq + i
			if err := bud.Err("hazard"); err != nil {
				ex, _ := budget.Exhausted(err)
				o.badSeq = seq
				o.trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
				o.trunc.Stamp(wCtx)
				return o
			}
			var res *epa.Result
			var mask []byte
			if cfg.Cache != nil || pr != nil {
				mask = scenarioMask(sc, mutIdx, maskLen)
			}
			// Delta re-assessment: a row the oracle can answer is carried
			// over from the cached parent analysis without touching the
			// engine. Reused rows feed the pruner and the persistent cache
			// like synthesized ones, so in-sweep dominance and future runs
			// both benefit.
			if cfg.Reuse != nil {
				if violated, known := cfg.Reuse(sc); known {
					reused.Add(1)
					if pr != nil && mask != nil {
						pr.record(sc, mask, violated)
						if cfg.Cache != nil {
							cfg.Cache.Put(synthKey(mask), pr.encodeSynth(violated))
						}
					}
					o.srs = append(o.srs, synthesizeResult(seq, sc, violated, reqs, likelihoods))
					continue
				}
			}
			// Pruning: synthesize the row when the outcome is already
			// implied — by dominance, by a symmetry orbit sibling, or by a
			// synthesized-result record persisted by an earlier run.
			// Synthesized rows flow through the frontier and the merge
			// exactly like executed ones.
			if pr != nil && mask != nil {
				var violated []string
				var known bool
				if violated, known = pr.tryDominate(mask); known {
					prunedCnt.Add(1)
				} else if violated, known = pr.tryOrbit(sc); known {
					orbitHits.Add(1)
				} else if cfg.Cache != nil {
					if b, ok := cfg.Cache.Get(synthKey(mask)); ok {
						if violated, known = pr.decodeSynth(b); known {
							cacheHits.Add(1)
							prunedCnt.Add(1)
						}
					}
				}
				if known {
					pr.record(sc, mask, violated)
					if cfg.Cache != nil {
						cfg.Cache.Put(synthKey(mask), pr.encodeSynth(violated))
					}
					o.srs = append(o.srs, synthesizeResult(seq, sc, violated, reqs, likelihoods))
					continue
				}
			}
			if cfg.Cache != nil && mask != nil {
				if v, ok := cfg.Cache.Get(mask); ok {
					if r, err := eng.ResultFromStates(v); err == nil {
						res = r
						cacheHits.Add(1)
					}
					// A shape mismatch means the entry belongs to another
					// compilation; fall through and recompute.
				}
			}
			if res == nil {
				if cfg.Cache != nil && mask != nil {
					cacheMisses.Add(1)
				}
				attempts := 0
				err := faultinject.Retry(bud.Context(), sweepRetries, time.Millisecond, func() error {
					attempts++
					r, rerr := eng.RunBudget(sc, bud)
					if rerr == nil {
						res = r
					}
					return rerr
				})
				retries.Add(int64(attempts - 1))
				if err != nil {
					o.badSeq = seq
					if ex, ok := budget.Exhausted(err); ok {
						o.trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
						o.trunc.Stamp(wCtx)
					} else {
						o.err = err
					}
					return o
				}
				if cfg.Cache != nil && mask != nil {
					cfg.Cache.Put(mask, res.StateVector())
				}
			}
			executed.Add(1)
			sr := scoreResult(seq, sc, res, reqs, likelihoods)
			if pr != nil && mask != nil {
				pr.record(sc, mask, sr.Violated)
			}
			o.srs = append(o.srs, sr)
		}
		return o
	}

	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wSpan *obs.Span
			wCtx := obsCtx
			if sweepSpan != nil {
				wSpan = sweepSpan.StartChild(fmt.Sprintf("worker#%d", w))
				wCtx = obs.ContextWithSpan(obsCtx, wSpan)
			}
			defer wSpan.End()
			for jb := range jobs {
				var cSpan *obs.Span
				if wSpan != nil {
					cSpan = wSpan.StartChild(fmt.Sprintf("chunk[%d+%d]", jb.baseSeq, len(jb.scs)))
				}
				chunkStart := time.Now()
				o := runChunk(jb, wCtx)
				cChunks.Inc()
				hChunk.Observe(time.Since(chunkStart).Microseconds())
				cSpan.End()
				outcomes <- o
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Merge: collect chunk outcomes, advancing the contiguous completion
	// frontier online. Every checkpoint interval the result cache is
	// flushed and THEN the frontier persisted — write-ahead ordering, so
	// a crash between the two leaves a frontier that under-promises.
	chunks := map[int]sweepOutcome{}
	frontier := shardLo
	lastSaved := -1
	saveFrontier := func(complete bool) {
		// The frontier persisted never exceeds the accountant's
		// truncation rank: rows the overshooting pipeline completed above
		// the cap are cut from this report, so promising them to a resume
		// would let the resumed run report rows this run did not.
		front := frontier
		if acct != nil && acct.cut < front {
			front = acct.cut
		}
		if cfg.Checkpoint == nil || front == lastSaved && !complete {
			return
		}
		if err := cfg.Cache.Flush(); err != nil {
			// An unflushed cache makes the frontier a lie; keep the old
			// checkpoint rather than persisting an over-promise.
			return
		}
		st := ckptState{
			Version:    ckptVersion,
			EngineHash: fmt.Sprintf("%016x", eng.Hash()),
			MutsHash:   fmt.Sprintf("%016x", hashMuts(muts)),
			ReqsHash:   fmt.Sprintf("%016x", hashReqs(reqs)),
			MaxCard:    maxCard,
			Frontier:   front,
			Ranges:     frontierRanges(len(muts), maxCard, front),
			Complete:   complete,
		}
		if err := cfg.Checkpoint.save(st); err == nil {
			lastSaved = front
		}
	}
	advance := func() {
		for {
			o, ok := chunks[frontier]
			if !ok {
				return
			}
			// The accountant replays the contiguous row stream exactly
			// once, here, in rank order — the only place rank order
			// exists during a parallel sweep.
			if acct != nil {
				for i, sr := range o.srs {
					acct.row(o.baseSeq+i, sr)
				}
			}
			frontier += len(o.srs)
			if len(o.srs) < o.n {
				return // partial chunk: the gap never closes this run
			}
		}
	}

	firstBad := math.MaxInt
	var badTrunc *budget.Truncation
	var badErr error
	every := 0
	if cfg.Checkpoint != nil {
		every = cfg.Checkpoint.every
	}
	for o := range outcomes {
		chunks[o.baseSeq] = o
		if o.badSeq >= 0 && o.badSeq < firstBad {
			firstBad = o.badSeq
			badTrunc, badErr = o.trunc, o.err
		}
		advance()
		if every > 0 && frontier-max(lastSaved, shardLo) >= every {
			saveFrontier(false)
		}
	}
	prod := <-produced

	cut := prod.emitted
	trunc := prod.trunc
	if acct != nil && acct.cut < cut {
		cut = acct.cut
		trunc = &budget.Truncation{Stage: "hazard", Reason: budget.ReasonScenarios}
		trunc.Stamp(obsCtx)
	}
	if firstBad < cut {
		cut = firstBad
		trunc = badTrunc
	}
	if frontier > cut {
		frontier = cut
	}
	// Persist the final frontier before any return — including the hard
	// error below: the process is about to report failure, and the whole
	// point of the checkpoint is surviving exactly that.
	complete := trunc == nil && badErr == nil && firstBad == math.MaxInt
	saveFrontier(complete)
	if firstBad < prod.emitted && badErr != nil {
		// Earliest event is a hard error: fail like the sequential sweep
		// would on that scenario. The checkpoint above makes the failure
		// resumable.
		return nil, badErr
	}
	out := &Analysis{Requirements: reqs}
	if resumeFrom > shardLo {
		out.Resume = &ResumeInfo{FromRank: resumeFrom}
	}
merge:
	for seq := shardLo; seq < cut; {
		o, ok := chunks[seq]
		if !ok {
			// Defensive: a hole below the cut means a worker died
			// without reporting; treat the prefix up to it as the
			// result rather than mislabeling later scenarios.
			break
		}
		for _, sr := range o.srs {
			if seq >= cut {
				break merge
			}
			out.Scenarios = append(out.Scenarios, sr)
			seq++
		}
		if len(o.srs) == 0 {
			break
		}
	}
	if trunc != nil {
		out.Truncation = trunc
		if sharded {
			// A shard covers an arbitrary rank slice, so the
			// completed-cardinality policy does not apply; the contiguous
			// completed prefix of the range is the answer.
			out.Truncation.Detail = fmt.Sprintf("shard %d/%d analyzed %d scenarios of range [%d,%d)",
				cfg.ShardIndex, cfg.ShardCount, len(out.Scenarios), shardLo, shardHi)
		} else {
			out.truncateToCompletedCardinality(muts, maxCard)
		}
		if resumeFrom > shardLo {
			out.Truncation.Detail += fmt.Sprintf("; resumed from checkpoint at rank %d", resumeFrom)
		}
	}
	restored := 0
	if resumeFrom > shardLo {
		restored = resumeFrom
	}
	shardTag := ""
	if sharded {
		shardTag = fmt.Sprintf("%d/%d", cfg.ShardIndex, cfg.ShardCount)
	}
	orbitClasses := 0
	if pr != nil {
		orbitClasses = pr.numClasses()
	}
	out.Sweep = &SweepStats{
		Workers:      parallelism,
		Scenarios:    len(out.Scenarios),
		Duration:     time.Since(start),
		CacheHits:    cacheHits.Load(),
		CacheMisses:  cacheMisses.Load(),
		Retries:      retries.Load(),
		Restored:     restored,
		Executed:     executed.Load(),
		Pruned:       prunedCnt.Load(),
		OrbitHits:    orbitHits.Load(),
		OrbitClasses: orbitClasses,
		Reused:       reused.Load(),
		Shard:        shardTag,
	}
	publishSweep(reg, out.Sweep, prod.emitted-shardLo)
	return out, nil
}

// capAccountant decides which rows the MaxScenarios cap charges when
// synthesized rows are possible. It replays the merged row stream in
// contiguous rank order — the merge guarantees that — through a shadow
// pruner that starts empty, i.e. the deterministic accounting of the
// equivalent sequential pruned sweep. A row is exempt (free) when it is
// below the resume frontier, answered by the delta-reuse oracle, or
// implied by earlier rows via shadow dominance or a shadow orbit
// sibling; every other row charges one unit. The first charged row past
// the limit fixes cut — the exclusive truncation rank — and raises the
// producer stop flag. Because its inputs (row content, rank order, the
// oracle) are deterministic, the cut is identical across parallelism,
// cache warmth, and worker-pruner seeding.
type capAccountant struct {
	limit      int
	resumeFrom int
	reuse      func(sc epa.Scenario) ([]string, bool)
	shadow     *pruner // nil when pruning is off (reuse-only accounting)
	mutIdx     map[epa.Activation]int
	maskLen    int
	charged    int
	cut        int // math.MaxInt until the cap is reached
	stop       *atomic.Bool
}

func (a *capAccountant) row(seq int, sr ScenarioResult) {
	if a.cut != math.MaxInt {
		return
	}
	var mask []byte
	if a.shadow != nil {
		mask = scenarioMask(sr.Scenario, a.mutIdx, a.maskLen)
	}
	exempt := seq < a.resumeFrom
	if !exempt && a.reuse != nil {
		_, exempt = a.reuse(sr.Scenario)
	}
	if !exempt && a.shadow != nil && mask != nil {
		if _, ok := a.shadow.tryDominate(mask); ok {
			exempt = true
		} else if _, ok := a.shadow.tryOrbit(sr.Scenario); ok {
			exempt = true
		}
	}
	if !exempt {
		if a.charged >= a.limit {
			a.cut = seq
			a.stop.Store(true)
			return
		}
		a.charged++
	}
	if a.shadow != nil && mask != nil {
		a.shadow.record(sr.Scenario, mask, sr.Violated)
	}
}

// scenarioMask renders a scenario as a bitmask over the candidate-set
// index — the persistent cache key. Returns nil (uncacheable) if any
// activation is outside the candidate set.
func scenarioMask(sc epa.Scenario, idx map[epa.Activation]int, maskLen int) []byte {
	mask := make([]byte, maskLen)
	for _, a := range sc {
		i, ok := idx[a]
		if !ok {
			return nil
		}
		mask[i/8] |= 1 << (i % 8)
	}
	return mask
}
