package risk

import (
	"sort"

	"cpsrisk/internal/qual"
)

// ScenarioInput is the risk-relevant abstraction of one analyzed scenario:
// the qualitative likelihood of each activated fault/attack and the
// severities of the requirements the scenario violates. It decouples the
// risk layer from the hazard-identification machinery.
type ScenarioInput struct {
	ID string
	// FaultLikelihoods holds one level per activated fault mode.
	FaultLikelihoods []qual.Level
	// ViolatedSeverities holds one level per violated requirement.
	ViolatedSeverities []qual.Level
}

// ScenarioRisk is the scored result.
type ScenarioRisk struct {
	ID string
	// Likelihood is the scenario's loss-event frequency: simultaneous
	// independent activations compound downward (each extra fault lowers
	// the joint frequency one level), reproducing the paper's §VII
	// observation that S7 (three simultaneous faults) is less probable
	// than S5 (two) despite equal violations.
	Likelihood qual.Level
	// Severity is the scenario loss magnitude: the worst violated
	// requirement.
	Severity qual.Level
	// Risk is the O-RA matrix cell of (Severity, Likelihood).
	Risk qual.Level
	// Violations counts violated requirements.
	Violations int
	// Faults counts activated fault modes.
	Faults int
}

// ScoreScenario computes the qualitative risk of a scenario. A scenario
// with no violations has VeryLow risk regardless of likelihood.
func ScoreScenario(in ScenarioInput) ScenarioRisk {
	s := qual.FiveLevel()
	out := ScenarioRisk{
		ID:         in.ID,
		Violations: len(in.ViolatedSeverities),
		Faults:     len(in.FaultLikelihoods),
	}
	if len(in.FaultLikelihoods) == 0 {
		out.Likelihood = qual.VeryLow
	} else {
		out.Likelihood = s.MinOf(in.FaultLikelihoods[0], in.FaultLikelihoods[1:]...)
		out.Likelihood = s.Add(out.Likelihood, -(len(in.FaultLikelihoods) - 1))
	}
	if len(in.ViolatedSeverities) == 0 {
		out.Severity = qual.VeryLow
		out.Risk = qual.VeryLow
		return out
	}
	out.Severity = s.MaxOf(in.ViolatedSeverities[0], in.ViolatedSeverities[1:]...)
	out.Risk = ORARisk(out.Severity, out.Likelihood)
	return out
}

// Rank orders scored scenarios for prioritization (paper §IV: "prioritize
// the faults and vulnerabilities based on their severity and potential
// impact"): by risk, then severity, then likelihood, all descending; ties
// break toward fewer faults (more plausible), then by ID for determinism.
func Rank(scenarios []ScenarioRisk) []ScenarioRisk {
	out := append([]ScenarioRisk(nil), scenarios...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Risk != b.Risk {
			return a.Risk > b.Risk
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Likelihood != b.Likelihood {
			return a.Likelihood > b.Likelihood
		}
		if a.Faults != b.Faults {
			return a.Faults < b.Faults
		}
		return a.ID < b.ID
	})
	return out
}
