package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cpsrisk/internal/artifact"
	"cpsrisk/internal/budget"
	"cpsrisk/internal/core"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/sysmodel"
)

// Options configures a Server. The zero value plus Types is runnable:
// nil/zero fields pick the same defaults the riskassess CLI uses.
type Options struct {
	// Types is the component-type library every submitted model is
	// validated against (required).
	Types *sysmodel.TypeLibrary
	// KB is the security knowledge base (nil = the built-in default).
	KB *kb.KB

	// Assessment configuration, mirroring the riskassess flags.
	MaxCardinality      int // 0 = 2
	UseASP              bool
	Optimize            bool
	MitBudget           int // 0 = unlimited
	ActiveMitigations   map[string]bool
	Parallelism         int // 0 = NumCPU; also sizes the shared governor
	SolverWorkers       int
	SolverDeterministic bool
	NoPrune             bool
	// Limits is the per-job resource budget (anytime degradation).
	Limits budget.Limits
	// CacheDir persists the EPA result cache across jobs (optional).
	CacheDir string
	// TopN bounds the ranked table in text reports (0 = 20).
	TopN int

	// ArtifactCap is the LRU entry cap of the shared artifact cache
	// (0 = the cache package default). The cache is shared by all
	// tenants; tenant isolation comes from folding the tenant into the
	// configuration hash, partitioning the key space.
	ArtifactCap int

	// JobWorkers is the number of concurrent assessment workers
	// (0 = 2). Queued jobs beyond the worker pool wait in FIFO order.
	JobWorkers int
	// MaxQueue bounds the job queue; submits beyond it get 429
	// (0 = 64).
	MaxQueue int
	// MaxJobs bounds the retained job table; the oldest finished jobs
	// are evicted beyond it (0 = 256).
	MaxJobs int
	// MaxBodyBytes bounds a submitted model document (0 = 8 MiB).
	MaxBodyBytes int64

	// SLOWindow / SLOThreshold configure the critical-event SLO
	// (zero values pick the package defaults: 5 events per 7 days).
	SLOWindow    time.Duration
	SLOThreshold int

	// Injector is a pre-armed fault injector (chaos drills); nil = off.
	Injector *faultinject.Injector

	// Logger receives the structured request/job log (nil = discard).
	Logger *slog.Logger
	// Clock overrides time.Now for the SLO monitor (tests).
	Clock func() time.Time
}

// Server is the assessment-as-a-service front end: an async job queue
// over core.Run with a shared artifact cache, a shared concurrency
// governor, Prometheus metrics, per-request tracing, structured logs,
// and an SLO critical-event monitor.
type Server struct {
	opts Options
	log  *slog.Logger
	mux  *http.ServeMux

	reg   *obs.Registry
	gov   *budget.Governor
	cache *artifact.Cache
	slo   *SLOMonitor

	jobMu    sync.Mutex
	jobs     map[string]*job
	jobOrder []string // insertion order, for eviction
	queue    chan *job
	seq      atomic.Int64

	inFlight atomic.Int64
	draining atomic.Bool
	wg       sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc

	// faultMu guards lastFired, the high-water mark of injector trips
	// already journaled as critical events.
	faultMu   sync.Mutex
	lastFired int64

	start time.Time
}

// New builds and starts a server: routes registered, workers running.
// Callers serve s (it implements http.Handler) and Drain it on the way
// down.
func New(opts Options) (*Server, error) {
	if opts.Types == nil {
		return nil, fmt.Errorf("serve: Options.Types is required")
	}
	if opts.KB == nil {
		opts.KB = kb.MustDefaultKB()
	}
	if opts.MaxCardinality == 0 {
		opts.MaxCardinality = 2
	}
	if opts.MitBudget == 0 {
		opts.MitBudget = -1
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 2
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 256
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	if opts.TopN == 0 {
		opts.TopN = 20
	}
	if opts.Logger == nil {
		opts.Logger = NewJSONLogger(io.Discard)
	}
	s := &Server{
		opts:  opts,
		log:   opts.Logger,
		reg:   obs.NewRegistry(),
		gov:   budget.NewGovernor(opts.Parallelism),
		cache: artifact.New(opts.ArtifactCap),
		slo:   NewSLOMonitor(opts.SLOWindow, opts.SLOThreshold, opts.Clock),
		jobs:  make(map[string]*job),
		queue: make(chan *job, opts.MaxQueue),
		start: time.Now(),
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/assess", s.instrument("assess", s.handleAssess))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.instrument("report", s.handleReport))
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.instrument("trace", s.handleTrace))
	s.mux.HandleFunc("GET /v1/slo", s.instrument("slo", s.handleSLO))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	for i := 0; i < opts.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry exposes the server-wide metrics registry (tests, embedding).
func (s *Server) Registry() *obs.Registry { return s.reg }

// SLO exposes the critical-event monitor (tests, embedding).
func (s *Server) SLO() *SLOMonitor { return s.slo }

// Drain stops accepting submissions, lets in-flight and queued jobs
// finish until ctx expires, then cancels whatever is still running and
// releases the artifact cache. Safe to call once.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.jobMu.Lock()
	close(s.queue) // submits are rejected before enqueue once draining
	s.jobMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: cancel every running job and wait for the workers
		// to observe it.
		s.baseStop()
		<-done
		err = ctx.Err()
	}
	s.baseStop()
	s.cache.Close()
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "drained",
		slog.Int64("uptimeMs", time.Since(s.start).Milliseconds()))
	return err
}

// ---- middleware ----

type ctxKey int

const (
	ctxTraceID ctxKey = iota
	ctxTenant
)

// statusRecorder captures the response status for logging/metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status, r.wrote = code, true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.status, r.wrote = http.StatusOK, true
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the service telemetry: trace-ID
// propagation (inbound X-Trace-Id honored, one minted otherwise),
// tenant extraction, in-flight and latency instruments, panic recovery,
// 5xx critical-event classification, and one structured log line per
// request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		traceID := sanitizeHeaderToken(r.Header.Get("X-Trace-Id"))
		if traceID == "" {
			traceID = newTraceID()
		}
		tenant := sanitizeHeaderToken(r.Header.Get("X-Tenant"))
		ctx := context.WithValue(r.Context(), ctxTraceID, traceID)
		ctx = context.WithValue(ctx, ctxTenant, tenant)
		r = r.WithContext(ctx)
		w.Header().Set("X-Trace-Id", traceID)

		s.reg.Gauge("http.in_flight").Set(s.inFlight.Add(1))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

		defer func() {
			s.reg.Gauge("http.in_flight").Set(s.inFlight.Add(-1))
			if p := recover(); p != nil {
				s.reg.Counter("http.panics").Inc()
				s.slo.Record(EventPanic, traceID, tenant, fmt.Sprintf("route %s: %v", route, p))
				if !rec.wrote {
					writeJSON(rec, http.StatusInternalServerError, map[string]string{"error": "internal error"})
				}
				rec.status = http.StatusInternalServerError
			}
			dur := time.Since(start)
			s.reg.Counter("http.requests." + route).Inc()
			s.reg.Histogram("http.latency_us." + route).Observe(dur.Microseconds())
			// 503 is deliberate backpressure (draining, not-ready) — a
			// signal, not a failure — so only true 5xx responses count
			// against the SLO.
			if rec.status >= 500 && rec.status != http.StatusServiceUnavailable {
				s.reg.Counter("http.errors." + route).Inc()
				s.slo.Record(EventServerError, traceID, tenant,
					fmt.Sprintf("%s %s -> %d", r.Method, r.URL.Path, rec.status))
			}
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("durationUs", dur.Microseconds()),
				slog.String("traceId", traceID),
				slog.String("tenant", tenant),
			)
		}()
		h(rec, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort once the status is out
}

// ---- handlers ----

func (s *Server) handleAssess(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	traceID, _ := r.Context().Value(ctxTraceID).(string)
	tenant, _ := r.Context().Value(ctxTenant).(string)

	model, err := sysmodel.ReadJSON(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "model: " + err.Error()})
		return
	}
	reqs, err := hazard.GenericRequirements(model)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}

	j := &job{
		id:        newID(s.seq.Add(1)),
		traceID:   traceID,
		tenant:    tenant,
		model:     model,
		reqs:      reqs,
		state:     JobQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}

	s.jobMu.Lock()
	if s.draining.Load() {
		s.jobMu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	select {
	case s.queue <- j:
	default:
		s.jobMu.Unlock()
		s.reg.Counter("jobs.rejected").Inc()
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "job queue full"})
		return
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.evictJobsLocked()
	s.jobMu.Unlock()

	s.reg.Counter("jobs.submitted").Inc()
	s.reg.Gauge("jobs.queue_depth").Set(int64(len(s.queue)))
	writeJSON(w, http.StatusAccepted, j.status())
}

// evictJobsLocked drops the oldest finished jobs beyond the retention
// cap. Jobs still queued or running are never evicted — the table can
// exceed the cap transiently while they finish.
func (s *Server) evictJobsLocked() {
	for len(s.jobOrder) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.jobOrder {
			j := s.jobs[id]
			j.mu.Lock()
			terminal := j.state == JobDone || j.state == JobFailed
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

func (s *Server) lookup(r *http.Request) *job {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	a, _, state, errMsg := j.result()
	switch state {
	case JobQueued, JobRunning:
		writeJSON(w, http.StatusConflict, map[string]string{"error": "job not finished", "state": state})
		return
	case JobFailed:
		// The failure was journaled when the job finished; reporting it
		// is a client read, not a fresh server error.
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": errMsg})
		return
	}
	full := r.URL.Query().Get("full") == "1"
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// The text report is the CLI's default output, byte for byte:
		// report body, ranked table, degradation summary. Jobs always
		// run traced and metered for /trace and /metrics, so the TIMING
		// and METRICS tails are stripped unless ?full=1 asks for them.
		view := *a
		if !full {
			view.Trace = nil
			view.Metrics = nil
		}
		io.WriteString(w, view.RenderFull(s.opts.TopN)) //nolint:errcheck
		return
	}
	if full {
		w.Header().Set("Content-Type", "application/json")
		a.WriteJSON(w) //nolint:errcheck
		return
	}
	// Default JSON projection: the CLI's -json output, with the trace
	// and metrics blocks stripped for the same reason as above.
	sum := a.Summarize()
	sum.Trace = nil
	sum.Metrics = nil
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	_, snap, state, _ := j.result()
	if snap == nil || (state != JobDone && state != JobFailed) {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "job not finished", "state": state})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	args := map[string]any{"traceId": j.traceID}
	if j.tenant != "" {
		args["tenant"] = j.tenant
	}
	obs.WriteChromeTraceSnapshotArgs(w, snap, args) //nolint:errcheck
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	recent := 0
	if q := r.URL.Query().Get("recent"); q != "" {
		recent, _ = strconv.Atoi(q)
	}
	writeJSON(w, http.StatusOK, s.slo.Report(recent))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Scrape-time gauges: point-in-time state owned by other components.
	st := s.cache.Stats()
	s.reg.Gauge("artifact.cache.len").Set(int64(s.cache.Len()))
	s.reg.Counter("artifact.cache.hits").Add(st.Hits - s.reg.Counter("artifact.cache.hits").Value())
	s.reg.Counter("artifact.cache.misses").Add(st.Misses - s.reg.Counter("artifact.cache.misses").Value())
	s.reg.Counter("artifact.cache.evictions").Add(st.Evictions - s.reg.Counter("artifact.cache.evictions").Value())
	s.reg.Gauge("governor.capacity").Set(int64(s.gov.Capacity()))
	s.reg.Gauge("governor.in_use").Set(int64(s.gov.InUse()))
	s.reg.Gauge("jobs.queue_depth").Set(int64(len(s.queue)))
	s.reg.Gauge("slo.window_events").Set(int64(s.slo.WindowCount()))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	compliant := s.slo.Compliant()
	draining := s.draining.Load()
	body := map[string]any{
		"ready":    compliant && !draining,
		"draining": draining,
		"slo": map[string]any{
			"compliant":   compliant,
			"windowCount": s.slo.WindowCount(),
		},
	}
	status := http.StatusOK
	if !compliant || draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// ---- job execution ----

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
		s.reg.Gauge("jobs.queue_depth").Set(int64(len(s.queue)))
	}
}

// runJob executes one queued assessment: a traced, metered core run
// against the shared artifact cache and governor, followed by outcome
// classification into the metrics registry and the SLO journal.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	// The shared governor meters sweep/solver helpers across every
	// concurrent job; core reuses a governor installed in the context.
	ctx = budget.ContextWithGovernor(ctx, s.gov)

	trace := obs.New("assessment")
	metrics := obs.NewRegistry()

	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	a, err := core.RunCtx(ctx, core.Config{
		Model:               j.model,
		Types:               s.opts.Types,
		KB:                  s.opts.KB,
		Requirements:        j.reqs,
		MutationSources:     faults.AllSources(),
		ActiveMitigations:   s.opts.ActiveMitigations,
		MaxCardinality:      s.opts.MaxCardinality,
		UseASP:              s.opts.UseASP,
		Optimize:            s.opts.Optimize,
		Budget:              s.opts.MitBudget,
		Parallelism:         s.opts.Parallelism,
		SolverWorkers:       s.opts.SolverWorkers,
		SolverDeterministic: s.opts.SolverDeterministic,
		NoPrune:             s.opts.NoPrune,
		CacheDir:            s.opts.CacheDir,
		Resources:           s.opts.Limits,
		TraceID:             j.traceID,
		Tenant:              j.tenant,
		Trace:               trace,
		Metrics:             metrics,
		ArtifactCache:       s.cache,
		Faults:              s.opts.Injector,
	})

	now := time.Now()
	j.mu.Lock()
	j.finished = now
	j.assessment = a
	j.traceSnap = trace.Snapshot()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
	}
	started := j.started
	j.mu.Unlock()
	close(j.done)

	snap := metrics.Snapshot()
	s.classify(j, a, err, snap)
	// Fold the job's pipeline metrics (stage timings, sweep counters,
	// store traffic) into the server-wide registry; the log2 buckets
	// merge exactly.
	s.reg.MergeSnapshot(snap)
	s.reg.Histogram("jobs.duration_us").Observe(now.Sub(started).Microseconds())

	s.log.LogAttrs(context.Background(), slog.LevelInfo, "job",
		slog.String("id", j.id),
		slog.String("traceId", j.traceID),
		slog.String("tenant", j.tenant),
		slog.String("state", j.status().State),
		slog.String("artifact", j.status().ArtifactPath),
		slog.Int64("durationMs", now.Sub(started).Milliseconds()),
		slog.String("error", j.status().Error),
	)
}

// classify journals the job's outcome: completion counters, artifact
// path, and the critical-event taxonomy (panic, budget degradation,
// cache quarantine, fault trips). snap is the job's private metrics
// snapshot — the quarantine counter in it is attributable to this job,
// which the merged server-wide counter is not.
func (s *Server) classify(j *job, a *core.Assessment, err error, snap *obs.MetricsSnapshot) {
	if err != nil {
		s.reg.Counter("jobs.failed").Inc()
		if strings.Contains(err.Error(), "panic") {
			s.slo.Record(EventPanic, j.traceID, j.tenant, err.Error())
		}
	} else {
		s.reg.Counter("jobs.completed").Inc()
	}
	if a != nil {
		if a.Artifact != nil {
			s.reg.Counter("jobs.artifact." + a.Artifact.Path).Inc()
		}
		if a.Degradation.Degraded() {
			s.reg.Counter("jobs.degraded").Inc()
			detail := ""
			if ts := a.Degradation.Truncations; len(ts) > 0 {
				detail = ts[0].String()
			}
			s.slo.Record(EventBudgetDegraded, j.traceID, j.tenant, detail)
		}
	}
	if snap != nil {
		if q := snap.Counters["store.quarantined"]; q > 0 {
			s.slo.Record(EventCacheQuarantine, j.traceID, j.tenant,
				fmt.Sprintf("%d cache segment(s) quarantined", q))
		}
	}
	if inj := s.opts.Injector; inj != nil {
		var total int64
		for _, sc := range inj.Counts() {
			total += sc.Fired
		}
		s.faultMu.Lock()
		delta := total - s.lastFired
		if delta > 0 {
			s.lastFired = total
		}
		s.faultMu.Unlock()
		if delta > 0 {
			s.reg.Counter("faults.tripped").Add(delta)
			s.slo.Record(EventFaultTrip, j.traceID, j.tenant,
				fmt.Sprintf("%d fault site trip(s) during job %s", delta, j.id))
		}
	}
}
