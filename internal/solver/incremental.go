package solver

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/obs"
)

// Session is a persistent multi-shot solver, the clingo-style counterpart
// to single-shot SolveProgram: the base program is grounded and translated
// once, incremental deltas are grounded only against the new frontier of
// the persistent atom pool, and a stream of queries is answered under
// assumptions while learned clauses, EVSIDS activities, and saved phases
// carry over from query to query.
//
// A Session is strictly single-goroutine: concurrent use panics. Callers
// that parallelize (hazard sweeps, CEGAR oracles) keep one session per
// worker.
//
// With Options.Workers > 1 a session becomes a portfolio: it keeps
// additional diversified engines in lockstep with the primary (same
// deltas, same variable numbering) and races all of them on each query,
// sharing learned clauses through the session's exchange ring. The first
// engine to answer wins; the others are cancelled but keep whatever they
// learned for the next query. The Session API is unchanged and remains
// single-goroutine from the caller's perspective.
type Session struct {
	gr   *grounder
	tr   *translation
	opts Options

	inUse  atomic.Bool
	broken error // set when an Add/solve error leaves the state inconsistent
	closed bool

	// Cached cardinality circuits: predicate -> at-least-k literal
	// function over the predicate's ground atoms. Dropped whenever an Add
	// emits non-constraint rules (the predicate's atom set may grow).
	cardFns map[string]func(int) lit

	// Portfolio state: helper engines kept in lockstep with the primary,
	// the clause exchange they share, and cumulative race counters.
	// helpers is empty for single-worker sessions.
	helpers        []*sessHelper
	exch           *exchange
	helperLaunches int64
	helperWins     int64
	lastWinner     int

	// Cumulative session counters and engine counters banked from
	// translations discarded by slow-path rebuilds.
	queries, adds               int64
	groundReused, learnedReused int64
	accum                       Stats
}

// sessHelper is one portfolio engine of a session: its translation plus
// its own cardinality-circuit cache (circuits allocate variables, so each
// engine builds its own, in lockstep with the primary to keep the
// variable spaces aligned).
type sessHelper struct {
	id      int
	tr      *translation
	cardFns map[string]func(int) lit
}

// Assumption fixes a literal for the duration of one SolveAssuming call
// without changing the program. Either Atom or Count is set:
//
//   - Atom names a ground atom key (e.g. "active(c1,stuck)"); the query
//     is restricted to answer sets where it is True (or false).
//   - Count names a predicate; the query is restricted to answer sets
//     with at least K true atoms of that predicate (True), or fewer than
//     K (False). The cardinality circuit is built lazily per predicate
//     and shared by all bounds.
//
// Assumptions are decisions, not axioms: clauses learned under them are
// consequences of the program alone and stay valid for later queries.
type Assumption struct {
	Atom  string
	Count string
	K     int
	True  bool
}

// AssumeTrue restricts a query to answer sets containing the atom.
func AssumeTrue(atom string) Assumption { return Assumption{Atom: atom, True: true} }

// AssumeFalse restricts a query to answer sets excluding the atom.
func AssumeFalse(atom string) Assumption { return Assumption{Atom: atom} }

// AssumeCountGE restricts a query to answer sets with at least k true
// atoms of the predicate.
func AssumeCountGE(pred string, k int) Assumption {
	return Assumption{Count: pred, K: k, True: true}
}

// AssumeCountLT restricts a query to answer sets with fewer than k true
// atoms of the predicate.
func AssumeCountLT(pred string, k int) Assumption {
	return Assumption{Count: pred, K: k}
}

func (a Assumption) describe() string {
	if a.Count != "" {
		if a.True {
			return fmt.Sprintf("#count{%s} >= %d", a.Count, a.K)
		}
		return fmt.Sprintf("#count{%s} < %d", a.Count, a.K)
	}
	if a.True {
		return a.Atom
	}
	return "not " + a.Atom
}

// NewSession grounds and translates the base program into a persistent
// solver. opts supplies the default budget and solve options for queries;
// MaxModels/Optimize can be overridden per SolveAssuming call. #minimize
// statements are allowed only in the base program.
func NewSession(prog *logic.Program, opts Options) (*Session, error) {
	if err := prog.CheckSafety(); err != nil {
		return nil, err
	}
	sp := startSpan(opts.Budget, "session-ground")
	defer sp.End()
	gr := newSessionGrounder(opts.Budget)
	if _, err := gr.addRules(prog.Rules); err != nil {
		return nil, err
	}
	if err := gr.groundMinimize(prog.Minimize); err != nil {
		return nil, err
	}
	tr, err := translate(gr.out)
	if err != nil {
		return nil, err
	}
	sess := &Session{
		gr:      gr,
		tr:      tr,
		opts:    opts,
		cardFns: map[string]func(int) lit{},
	}
	if n := effectiveWorkers(opts); n > 1 {
		sess.exch = newExchange(exchangeSlots)
		wireWorker(tr.s, 0, sess.exch, nil)
		for i := 1; i < n; i++ {
			htr, err := translate(gr.out)
			if err != nil {
				return nil, err
			}
			diversify(htr.s, i, true)
			wireWorker(htr.s, i, sess.exch, nil)
			sess.helpers = append(sess.helpers, &sessHelper{
				id: i, tr: htr, cardFns: map[string]func(int) lit{},
			})
		}
	}
	return sess, nil
}

func (s *Session) acquire() {
	if !s.inUse.CompareAndSwap(false, true) {
		panic("solver: concurrent use of Session (a Session is single-goroutine; use one per worker)")
	}
}

func (s *Session) release() { s.inUse.Store(false) }

func (s *Session) usable() error {
	if s.closed {
		return fmt.Errorf("solver: session is closed")
	}
	return s.broken
}

func (s *Session) fail(err error) {
	s.broken = fmt.Errorf("solver: session unusable after error: %w", err)
}

// Close releases the session. Further calls error.
func (s *Session) Close() {
	s.acquire()
	defer s.release()
	s.closed = true
	s.gr = nil
	s.tr = nil
	s.cardFns = nil
	s.helpers = nil
	s.exch = nil
}

// Add grounds a program delta into the live session. The delta is
// classified by what it actually grounds to:
//
//   - constraints only: each lands as a single clause through the
//     backjump-then-add path — no restart, full search state retained
//     (the hot path of iterated enumeration);
//   - every new rule head first interned by this delta: the existing
//     completion clauses stay exact, so the translation is extended in
//     place at decision level 0, keeping learned clauses, activities,
//     and phases;
//   - anything else (new support for an existing atom, or a choice
//     instantiation whose element set grew, forcing a retraction): the
//     translation is rebuilt, carrying per-atom activities and phases
//     but dropping learned clauses.
//
// Deltas cannot introduce #minimize statements.
func (s *Session) Add(prog *logic.Program) error {
	s.acquire()
	defer s.release()
	if err := s.usable(); err != nil {
		return err
	}
	if len(prog.Minimize) > 0 {
		return fmt.Errorf("solver: session Add cannot introduce #minimize statements")
	}
	if err := prog.CheckSafety(); err != nil {
		return err
	}
	s.adds++
	asp := startSpan(s.opts.Budget, "add#%d", s.adds)
	defer asp.End()
	s.groundReused += s.gr.numPossible
	prevKnown := s.tr.knownAtoms
	retracted, err := s.gr.addRules(prog.Rules)
	if err != nil {
		s.fail(err)
		return err
	}
	if retracted {
		s.clearCardFns()
		if err := s.rebuildTranslation(); err != nil {
			s.fail(err)
			return err
		}
		return nil
	}
	constraintsOnly, freshHeads := true, true
	for _, r := range s.tr.gp.Rules[s.tr.translatedRules:] {
		switch r.Kind {
		case KindBasic:
			if r.Head != 0 {
				constraintsOnly = false
				if int(r.Head) <= prevKnown {
					freshHeads = false
				}
			}
		case KindChoice:
			constraintsOnly = false
			for _, h := range r.Heads {
				if int(h) <= prevKnown {
					freshHeads = false
				}
			}
		default:
			constraintsOnly, freshHeads = false, false
		}
	}
	if constraintsOnly {
		s.tr.addConstraintsInSearch()
		for _, h := range s.helpers {
			h.tr.addConstraintsInSearch()
		}
		return nil
	}
	s.clearCardFns()
	if freshHeads {
		s.tr.s.cancelUntil(0)
		if err := s.tr.extendTranslation(); err != nil {
			s.fail(err)
			return err
		}
		for _, h := range s.helpers {
			h.tr.s.cancelUntil(0)
			if err := h.tr.extendTranslation(); err != nil {
				s.fail(err)
				return err
			}
		}
		return nil
	}
	if err := s.rebuildTranslation(); err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// clearCardFns drops every engine's cached cardinality circuits.
func (s *Session) clearCardFns() {
	s.cardFns = map[string]func(int) lit{}
	for _, h := range s.helpers {
		h.cardFns = map[string]func(int) lit{}
	}
}

// rebuildTranslation retranslates the (compacted) ground program from
// scratch, banking the old engines' statistics and carrying each atom's
// branching activity and saved phase into the new engines. Learned
// clauses are dropped: after a retraction they may no longer be
// consequences of the program. In a portfolio session every engine is
// rebuilt and the clause exchange is replaced wholesale — clauses learned
// before the retraction are no longer safe to share either.
func (s *Session) rebuildTranslation() error {
	ntr, err := s.rebuildOne(s.tr)
	if err != nil {
		return err
	}
	s.tr = ntr
	if len(s.helpers) == 0 {
		return nil
	}
	s.exch = newExchange(exchangeSlots)
	wireWorker(s.tr.s, 0, s.exch, nil)
	for _, h := range s.helpers {
		nh, err := s.rebuildOne(h.tr)
		if err != nil {
			return err
		}
		h.tr = nh
		// The carried phases already encode this engine's personality;
		// re-apply only the search-schedule knobs.
		diversify(nh.s, h.id, false)
		wireWorker(nh.s, h.id, s.exch, nil)
	}
	return nil
}

// rebuildOne rebuilds a single engine, banking its statistics into the
// session accumulator and carrying activities and phases across.
func (s *Session) rebuildOne(old *translation) (*translation, error) {
	var tmp Stats
	old.fillStats(&tmp)
	addEngineStats(&s.accum, &tmp)
	ntr, err := translate(old.gp)
	if err != nil {
		return nil, err
	}
	oldS, newS := old.s, ntr.s
	newS.varInc = oldS.varInc
	for id := 1; id <= old.knownAtoms; id++ {
		ov, nv := old.atomVar[id], ntr.atomVar[id]
		newS.activity[nv] = oldS.activity[ov]
		if v := oldS.assign[ov]; v != 0 {
			newS.phase[nv] = v
		} else if oldS.phase[ov] != 0 {
			newS.phase[nv] = oldS.phase[ov]
		}
	}
	// Restore the heap invariant under the carried activities.
	for i := len(newS.heap)/2 - 1; i >= 0; i-- {
		newS.heapDown(i)
	}
	return ntr, nil
}

func addEngineStats(dst, src *Stats) {
	dst.Decisions += src.Decisions
	dst.Conflicts += src.Conflicts
	dst.Propagations += src.Propagations
	dst.LoopClauses += src.LoopClauses
	dst.StableChecks += src.StableChecks
	dst.Restarts += src.Restarts
	dst.LearnedClauses += src.LearnedClauses
	dst.Backjumps += src.Backjumps
	dst.DBReductions += src.DBReductions
	dst.ClausesExported += src.ClausesExported
	dst.ClausesImported += src.ClausesImported
	dst.ExchangeDrops += src.ExchangeDrops
}

// countFn returns (building and caching on first use) the at-least-k
// literal function over the predicate's ground atoms, in atom-id order.
// Must be called at decision level 0.
func (s *Session) countFn(pred string) func(int) lit {
	return countFnFor(s.tr, s.cardFns, pred)
}

// countFnFor is countFn against an explicit engine and circuit cache, so
// portfolio helpers build their circuits in lockstep with the primary.
func countFnFor(tr *translation, cache map[string]func(int) lit, pred string) func(int) lit {
	if fn, ok := cache[pred]; ok {
		return fn
	}
	gp := tr.gp
	var lits []lit
	for id := AtomID(1); id <= AtomID(gp.NumAtoms()); id++ {
		if gp.IsInternal(id) {
			continue
		}
		name := gp.AtomName(id)
		if len(name) >= len(pred) && name[:len(pred)] == pred &&
			(len(name) == len(pred) || name[len(pred)] == '(') {
			lits = append(lits, tr.atomLit(id))
		}
	}
	fn := tr.seqCounter(lits, len(lits))
	cache[pred] = fn
	return fn
}

// assumptionLit maps one assumption to the literal to assert. known is
// false when the assumption names an atom absent from the ground program:
// such an atom is false in every answer set, so assuming it false is
// vacuous and assuming it true is immediately unsatisfiable.
func (s *Session) assumptionLit(a Assumption) (l lit, known bool) {
	return assumptionLitFor(s.tr, s.cardFns, a)
}

func assumptionLitFor(tr *translation, cache map[string]func(int) lit, a Assumption) (l lit, known bool) {
	if a.Count != "" {
		l = countFnFor(tr, cache, a.Count)(a.K)
		if !a.True {
			l = -l
		}
		return l, true
	}
	id, ok := tr.gp.LookupAtom(a.Atom)
	if !ok {
		return 0, false
	}
	l = tr.atomLit(id)
	if !a.True {
		l = -l
	}
	return l, true
}

// SolveAssuming answers one query under the given assumptions, retaining
// all search state for the next one. Enumerated models, optimization
// bounds, and blocking clauses are query-local (guarded by a per-query
// literal and retired afterwards); loop formulas and learned clauses are
// program consequences and persist. An unsatisfiable assumption set
// reports the responsible subset in Result.Core.
func (s *Session) SolveAssuming(assumptions []Assumption, opts Options) (*Result, error) {
	s.acquire()
	defer s.release()
	if err := s.usable(); err != nil {
		return nil, err
	}
	start := time.Now()
	if opts.Budget == nil {
		opts.Budget = s.opts.Budget
	}
	if len(s.helpers) > 0 {
		return s.solveAssumingPortfolio(assumptions, opts, start)
	}
	st := s.tr.s
	st.applyBudget(opts.Budget)
	s.queries++
	qsp := startSpan(opts.Budget, "query#%d", s.queries)
	defer qsp.End()
	defer func() {
		obs.RegistryFromContext(opts.Budget.Context()).
			Histogram("solver.query_us").Observe(time.Since(start).Microseconds())
	}()
	s.learnedReused += int64(len(st.learnts))
	res := &Result{}
	if st.unsatRoot {
		s.finishStats(res, start)
		return res, nil
	}
	st.cancelUntil(0)
	lits := make([]lit, 0, len(assumptions)+1)
	names := map[lit]string{}
	for _, a := range assumptions {
		l, known := s.assumptionLit(a)
		if !known {
			if a.True {
				res.Core = []string{a.describe()}
				s.finishStats(res, start)
				return res, nil
			}
			continue
		}
		lits = append(lits, l)
		if _, ok := names[l]; !ok {
			names[l] = a.describe()
		}
	}
	qg := lit(st.newVar())
	st.assumps = append([]lit{-qg}, lits...)
	st.assumpFailed = false
	st.finalCore = nil

	var err error
	if opts.Optimize && len(s.tr.gp.Minimize) > 0 {
		qg, err = s.solveOptimizeSession(opts, res, qg)
	} else {
		err = s.enumerate(opts, res, -1, qg)
	}

	// Wind the query down: clear the assumption state, drop any leftover
	// objective bound, and retire this query's guarded clauses by fixing
	// the guard true (restoring the enumeration space for later queries).
	core, failed := st.finalCore, st.assumpFailed
	st.assumps = nil
	st.assumpFailed = false
	st.finalCore = nil
	st.pruning = false
	st.bound = 1 << 62
	st.costGuard = 0
	st.addClause([]lit{qg})
	if err != nil {
		s.fail(err)
		return nil, err
	}
	if len(res.Models) == 0 && failed {
		for _, l := range core {
			if l.variable() == qg.variable() {
				continue
			}
			if n, ok := names[l]; ok {
				res.Core = append(res.Core, n)
			}
		}
		sort.Strings(res.Core)
	}
	res.Satisfiable = len(res.Models) > 0
	s.finishStats(res, start)
	return res, nil
}

// queryPrep is one engine's per-query state: the query guard (and, for
// optimizing queries, the pass-2 guard, pre-allocated so every engine's
// variable space stays aligned whether or not it runs pass 2).
type queryPrep struct {
	qg, qg2 lit
}

// solveAssumingPortfolio is SolveAssuming for portfolio sessions: every
// engine is prepared for the query in lockstep (cancel to level 0, build
// assumption circuits, allocate guards), then the primary plus as many
// helpers as the worker-pool governor grants race under a shared cancel.
// The first engine to answer wins; the rest are cancelled but keep their
// learned clauses, activities, and phases for the next query.
func (s *Session) solveAssumingPortfolio(assumptions []Assumption, opts Options, start time.Time) (*Result, error) {
	s.queries++
	qsp := startSpan(opts.Budget, "query#%d", s.queries)
	defer qsp.End()
	defer func() {
		obs.RegistryFromContext(opts.Budget.Context()).
			Histogram("solver.query_us").Observe(time.Since(start).Microseconds())
	}()

	workers := make([]*sessHelper, 0, 1+len(s.helpers))
	workers = append(workers, &sessHelper{id: 0, tr: s.tr, cardFns: s.cardFns})
	workers = append(workers, s.helpers...)
	for _, w := range workers {
		s.learnedReused += int64(len(w.tr.s.learnts))
	}

	res := &Result{}
	if s.tr.s.unsatRoot {
		s.finishStats(res, start)
		return res, nil
	}
	optimize := opts.Optimize && len(s.tr.gp.Minimize) > 0

	// Per-engine query prep, in lockstep: assumption circuits and guard
	// variables allocate in the same order everywhere, so the literals
	// carry the same meaning in every engine (the basis for clause
	// sharing and for reading any worker's unsat core).
	for _, w := range workers {
		w.tr.s.cancelUntil(0)
	}
	names := map[lit]string{}
	rawLits := make([][]lit, len(workers))
	for _, a := range assumptions {
		l0, known := assumptionLitFor(workers[0].tr, workers[0].cardFns, a)
		if !known {
			// Unknown atoms allocate nothing anywhere, so the lockstep
			// short-circuit keeps the var spaces aligned.
			if a.True {
				res.Core = []string{a.describe()}
				s.finishStats(res, start)
				return res, nil
			}
			continue
		}
		rawLits[0] = append(rawLits[0], l0)
		if _, ok := names[l0]; !ok {
			names[l0] = a.describe()
		}
		for i := 1; i < len(workers); i++ {
			li, _ := assumptionLitFor(workers[i].tr, workers[i].cardFns, a)
			rawLits[i] = append(rawLits[i], li)
		}
	}
	preps := make([]queryPrep, len(workers))
	for i, w := range workers {
		st := w.tr.s
		p := &preps[i]
		p.qg = lit(st.newVar())
		if optimize {
			// The pass-2 guard rides the assumption prefix so it is never
			// branched on while unused (a free variable would perturb the
			// search and the model count).
			p.qg2 = lit(st.newVar())
			st.assumps = append([]lit{-p.qg, -p.qg2}, rawLits[i]...)
		} else {
			st.assumps = append([]lit{-p.qg}, rawLits[i]...)
		}
		st.assumpFailed = false
		st.finalCore = nil
	}
	var shared *raceShared
	if optimize {
		shared = newRaceShared()
	}
	for _, w := range workers {
		w.tr.shared = shared
		if shared != nil {
			w.tr.s.sharedBound = &shared.bound
		} else {
			w.tr.s.sharedBound = nil
		}
	}

	// Race: the primary runs on the calling goroutine (progress is
	// guaranteed even with zero governor grants); granted helpers race it.
	gov := opts.Budget.Governor()
	granted := gov.AcquireUpTo(len(s.helpers))
	s.helperLaunches += int64(granted)
	active := 1 + granted
	raceCtx, cancelRace := context.WithCancel(opts.Budget.Context())
	defer cancelRace()
	limits := opts.Budget.Limits()

	outs := make([]sessOutcome, active)
	var winner atomic.Int32
	winner.Store(-1)
	finish := func(i int) {
		out := &outs[i]
		if out.err == nil && out.res != nil {
			out.lost = raceLost(out.res, opts.Budget, raceCtx)
			if !out.lost && winner.CompareAndSwap(-1, int32(i)) {
				cancelRace()
			}
		}
	}
	var wg sync.WaitGroup
	for i := 1; i < active; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = s.runQueryWorker(workers[i], preps[i], opts, budget.New(raceCtx, limits), optimize)
			finish(i)
		}(i)
	}
	outs[0] = s.runQueryWorker(workers[0], preps[0], opts, budget.New(raceCtx, limits), optimize)
	finish(0)
	wg.Wait()
	gov.Release(granted)

	for _, out := range outs {
		if out.err != nil {
			s.fail(out.err)
			return nil, out.err
		}
	}
	w := int(winner.Load())
	if w < 0 {
		w = 0
	}
	winSt := workers[w].tr.s
	core, failed := winSt.finalCore, winSt.assumpFailed

	// Wind every engine down — including helpers that were prepped but not
	// granted a slot: the guards must be retired everywhere to keep the
	// engines aligned and the enumeration space whole for later queries.
	for i, wk := range workers {
		st := wk.tr.s
		st.assumps = nil
		st.assumpFailed = false
		st.finalCore = nil
		st.pruning = false
		st.bound = 1 << 62
		st.costGuard = 0
		st.sharedBound = nil
		wk.tr.shared = nil
		st.addClause([]lit{preps[i].qg})
		if optimize {
			st.addClause([]lit{preps[i].qg2})
		}
	}

	res = outs[w].res
	if w != 0 {
		s.helperWins++
	}
	s.lastWinner = w
	if len(res.Models) == 0 && failed {
		for _, l := range core {
			v := l.variable()
			if v == preps[w].qg.variable() || (optimize && v == preps[w].qg2.variable()) {
				continue
			}
			if n, ok := names[l]; ok {
				res.Core = append(res.Core, n)
			}
		}
		sort.Strings(res.Core)
	}
	res.Satisfiable = len(res.Models) > 0
	s.finishStats(res, start)
	return res, nil
}

// sessOutcome is one engine's result in a session query race.
type sessOutcome struct {
	res  *Result
	err  error
	lost bool
}

// runQueryWorker runs one engine's query under the race budget,
// converting panics into errors; a panicked engine's clause database is
// suspect, so the caller poisons the whole session.
func (s *Session) runQueryWorker(w *sessHelper, p queryPrep, opts Options, bud *budget.Budget, optimize bool) (out sessOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("solver: portfolio worker %d panicked: %v", w.id, r)
		}
	}()
	if err := bud.Injector().Fire("solver.worker"); err != nil {
		out.err = err
		return out
	}
	st := w.tr.s
	st.applyBudget(bud)
	res := &Result{}
	if st.unsatRoot {
		// Imports proved the program unsatisfiable outright.
		out.res = res
		return out
	}
	var err error
	if optimize {
		err = s.optimizeQueryWorker(w, p, opts, res)
	} else {
		err = enumerateOn(w.tr, opts, res, -1, p.qg)
	}
	out.res, out.err = res, err
	return out
}

// optimizeQueryWorker is solveOptimizeSession for one racing engine:
// branch-and-bound under the first guard, with incumbents published to
// (and bounds adopted from) the race-wide shared state, then exact-cost
// re-enumeration under the pre-allocated second guard. Pass-1 exhaustion
// proves no model beats the final bound — even when that bound was
// adopted from a peer — so the best incumbent race-wide at or below it is
// the optimum.
func (s *Session) optimizeQueryWorker(w *sessHelper, p queryPrep, opts Options, res *Result) error {
	tr := w.tr
	st := tr.s
	st.pruning = true
	st.bound = 1 << 62
	st.costGuard = p.qg
	var best int64
	var incumbent Model
	found := false
	var searchErr error
	onTotal := func() bool {
		if err := st.validateTotal(); err != nil {
			searchErr = err
			return true
		}
		if u := tr.unfoundedSet(); len(u) > 0 {
			tr.loopAdds++
			tr.addSearchClause(tr.loopClause(u))
			return false
		}
		found = true
		best = st.curCost
		incumbent = tr.extractModel()
		st.bound = best // require strictly better from now on
		if tr.shared != nil {
			tr.shared.publish(best, incumbent)
		}
		return false
	}
	err := st.search(onTotal)
	harvest := func() {
		if m, c, ok := tr.harvestShared(); ok && (!found || c < best) {
			found, best, incumbent = true, c, m
		}
	}
	if ex, ok := budget.Exhausted(err); ok {
		res.Interrupted = true
		res.InterruptReason = ex.Reason
		harvest()
		if found {
			res.Models = []Model{incumbent}
		}
		return nil
	}
	if err != nil {
		return err
	}
	if searchErr != nil {
		return searchErr
	}
	harvest()
	if !found {
		// Unsatisfiable under the assumptions; finalCore (if any) is
		// harvested by the caller.
		return nil
	}
	// Optimum proven. Drop -qg from the assumption prefix BEFORE fixing qg
	// true (the unit would conflict with the live assumption), retire pass
	// 1's bound clauses, and re-enumerate at exactly the optimal cost.
	st.pruning = false
	st.costGuard = 0
	st.bound = 1 << 62
	st.sharedBound = nil // the exact cost is fixed; no more bound racing
	st.assumps = append([]lit{-p.qg2}, st.assumps[2:]...)
	st.assumpFailed = false
	st.finalCore = nil
	st.addClause([]lit{p.qg})
	if err := enumerateOn(tr, opts, res, best, p.qg2); err != nil {
		return err
	}
	if res.Interrupted && len(res.Models) == 0 {
		// Enumeration could not rediscover the optimum in the leftover
		// budget: fall back to the incumbent.
		res.Models = []Model{incumbent}
	}
	res.Optimal = !res.Interrupted
	return nil
}

// enumerate is the session counterpart of solveEnumerate: blocking
// clauses (and, when exactCost >= 0, objective-bound clauses) carry the
// query guard so they can be retired afterwards.
func (s *Session) enumerate(opts Options, res *Result, exactCost int64, qg lit) error {
	return enumerateOn(s.tr, opts, res, exactCost, qg)
}

// enumerateOn runs the guarded enumeration on one engine. Guarded
// blocking clauses are engine-local: the guard variable is aligned across
// portfolio workers, but the clause itself is a per-engine axiom, not a
// program consequence, so it must never be exported.
func enumerateOn(tr *translation, opts Options, res *Result, exactCost int64, qg lit) error {
	st := tr.s
	if exactCost >= 0 {
		st.pruning = true
		st.bound = exactCost + 1
		st.costGuard = qg
	}
	var searchErr error
	onTotal := func() bool {
		if err := st.validateTotal(); err != nil {
			searchErr = err
			return true
		}
		if u := tr.unfoundedSet(); len(u) > 0 {
			tr.loopAdds++
			tr.addSearchClause(tr.loopClause(u))
			return false
		}
		if exactCost >= 0 && st.curCost != exactCost {
			tr.addLocalSearchClause(append(tr.blockingClause(), qg))
			return false
		}
		res.Models = append(res.Models, tr.extractModel())
		if opts.MaxModels > 0 && len(res.Models) >= opts.MaxModels {
			return true
		}
		tr.addLocalSearchClause(append(tr.blockingClause(), qg))
		return false
	}
	err := st.search(onTotal)
	if ex, ok := budget.Exhausted(err); ok {
		res.Interrupted = true
		res.InterruptReason = ex.Reason
		err = nil
	}
	if err != nil {
		return err
	}
	return searchErr
}

// solveOptimizeSession runs in-session branch-and-bound, then
// re-enumerates at exactly the optimal cost. Both passes are query-local:
// pass 1's bound clauses are guarded by qg and retired before pass 2 runs
// under a fresh guard (they would otherwise prune the optimum itself).
// Returns the guard active at the end, for final retirement.
func (s *Session) solveOptimizeSession(opts Options, res *Result, qg lit) (lit, error) {
	tr := s.tr
	st := tr.s
	st.pruning = true
	st.bound = 1 << 62
	st.costGuard = qg
	var best int64
	var incumbent Model
	found := false
	var searchErr error
	onTotal := func() bool {
		if err := st.validateTotal(); err != nil {
			searchErr = err
			return true
		}
		if u := tr.unfoundedSet(); len(u) > 0 {
			tr.loopAdds++
			tr.addSearchClause(tr.loopClause(u))
			return false
		}
		found = true
		best = st.curCost
		incumbent = tr.extractModel()
		st.bound = best // require strictly better from now on
		return false
	}
	err := st.search(onTotal)
	if ex, ok := budget.Exhausted(err); ok {
		res.Interrupted = true
		res.InterruptReason = ex.Reason
		if found {
			res.Models = []Model{incumbent}
		}
		return qg, nil
	}
	if err != nil {
		return qg, err
	}
	if searchErr != nil {
		return qg, searchErr
	}
	if !found {
		// Unsatisfiable under the assumptions; finalCore (if any) is
		// harvested by the caller.
		return qg, nil
	}
	// Optimum proven. Retire pass 1's bound clauses and re-enumerate all
	// models at exactly the optimal cost under a fresh guard.
	st.pruning = false
	st.costGuard = 0
	st.bound = 1 << 62
	st.addClause([]lit{qg})
	qg2 := lit(st.newVar())
	st.assumps[0] = -qg2
	st.assumpFailed = false
	st.finalCore = nil
	if err := s.enumerate(opts, res, best, qg2); err != nil {
		return qg2, err
	}
	if res.Interrupted && len(res.Models) == 0 {
		// Enumeration could not rediscover the optimum in the leftover
		// budget: fall back to the incumbent.
		res.Models = []Model{incumbent}
	}
	res.Optimal = !res.Interrupted
	return qg2, nil
}

func (s *Session) finishStats(res *Result, start time.Time) {
	s.tr.fillStats(&res.Stats)
	addEngineStats(&res.Stats, &s.accum)
	for _, h := range s.helpers {
		var tmp Stats
		h.tr.fillStats(&tmp)
		addEngineStats(&res.Stats, &tmp)
	}
	res.Stats.Duration = time.Since(start)
	res.Stats.Sessions = 1
	res.Stats.Queries = s.queries
	res.Stats.Adds = s.adds
	res.Stats.GroundAtomsReused = s.groundReused
	res.Stats.LearnedReused = s.learnedReused
	res.Stats.PortfolioWorkers = s.helperLaunches
	res.Stats.PortfolioWins = s.helperWins
	res.Stats.PortfolioWinner = s.lastWinner
}

// Stats returns a cumulative snapshot of the session's effort counters.
func (s *Session) Stats() Stats {
	s.acquire()
	defer s.release()
	var st Stats
	if s.tr != nil {
		s.tr.fillStats(&st)
	}
	addEngineStats(&st, &s.accum)
	for _, h := range s.helpers {
		var tmp Stats
		h.tr.fillStats(&tmp)
		addEngineStats(&st, &tmp)
	}
	st.Sessions = 1
	st.Queries = s.queries
	st.Adds = s.adds
	st.GroundAtomsReused = s.groundReused
	st.LearnedReused = s.learnedReused
	st.PortfolioWorkers = s.helperLaunches
	st.PortfolioWins = s.helperWins
	st.PortfolioWinner = s.lastWinner
	return st
}
