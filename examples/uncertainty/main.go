// Uncertainty demonstrates the framework's §V machinery: qualitative
// sensitivity analysis of risk factors (including the paper's exact §V-A
// worked example), joint solution-space estimation, and Rough Set Theory
// over an incomplete risk decision table — positive/boundary/negative
// regions, reducts, and certain/possible classification.
package main

import (
	"fmt"
	"os"
	"strings"

	"cpsrisk/internal/qual"
	"cpsrisk/internal/risk"
	"cpsrisk/internal/rough"
	"cpsrisk/internal/sensitivity"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uncertainty:", err)
		os.Exit(1)
	}
}

func run() error {
	s := qual.FiveLevel()
	out := func(a sensitivity.Assignment) qual.Level {
		return risk.ORARisk(a["LM"], a["LEF"])
	}

	// --- The paper's §V-A example, verbatim. ---
	fmt.Println("== Sensitivity analysis (paper §V-A example) ==")
	base := sensitivity.Assignment{"LEF": qual.Low, "LM": qual.Low}
	narrow, err := sensitivity.Analyze(base, []sensitivity.Factor{
		{Name: "LM", Levels: []qual.Level{qual.VeryLow, qual.Low}},
	}, out)
	if err != nil {
		return err
	}
	fmt.Printf("LEF=L, LM uncertain in {VL,L}: sensitive=%v (risk stays %s)\n",
		narrow[0].Sensitive, s.Label(narrow[0].Outputs[0]))

	wide, err := sensitivity.Analyze(base, []sensitivity.Factor{
		{Name: "LM", Levels: []qual.Level{qual.Low, qual.Medium, qual.High, qual.VeryHigh}},
	}, out)
	if err != nil {
		return err
	}
	labels := make([]string, len(wide[0].Outputs))
	for i, l := range wide[0].Outputs {
		labels[i] = s.Label(l)
	}
	fmt.Printf("LEF=L, LM uncertain in L..VH:  sensitive=%v (risk varies over %s)\n",
		wide[0].Sensitive, strings.Join(labels, ","))
	fmt.Println("-> a sensitive factor requires further evaluation (paper §V-A)")

	// --- Joint solution space. ---
	fmt.Println("\n== Joint solution-space estimation ==")
	joint, err := sensitivity.Joint(sensitivity.Assignment{}, []sensitivity.Factor{
		{Name: "LM", Levels: []qual.Level{qual.Medium, qual.High}},
		{Name: "LEF", Levels: []qual.Level{qual.Low, qual.Medium, qual.High}},
	}, out)
	if err != nil {
		return err
	}
	fmt.Printf("%d combinations explored; risk between %s and %s\n",
		joint.Combinations, s.Label(joint.BestCase), s.Label(joint.WorstCase))

	// --- Rough sets over an incomplete risk table. ---
	fmt.Println("\n== Rough-set analysis of an incomplete risk table ==")
	// Observed incidents with LM hidden: only LEF and exposure recorded.
	objects := []rough.Object{
		{ID: "i1", Values: map[string]string{"LEF": "H", "exposure": "public"}, Decision: "high-risk"},
		{ID: "i2", Values: map[string]string{"LEF": "H", "exposure": "public"}, Decision: "high-risk"},
		{ID: "i3", Values: map[string]string{"LEF": "H", "exposure": "internal"}, Decision: "high-risk"},
		{ID: "i4", Values: map[string]string{"LEF": "H", "exposure": "internal"}, Decision: "low-risk"},
		{ID: "i5", Values: map[string]string{"LEF": "L", "exposure": "internal"}, Decision: "low-risk"},
		{ID: "i6", Values: map[string]string{"LEF": "L", "exposure": "public"}, Decision: "low-risk"},
	}
	tbl, err := rough.NewTable([]string{"LEF", "exposure"}, objects)
	if err != nil {
		return err
	}
	ap := tbl.ApproximateDecision(tbl.Attributes, "high-risk")
	fmt.Printf("positive region (certainly high-risk): %v\n", ap.Lower)
	fmt.Printf("boundary region (needs expert review): %v\n", ap.Boundary)
	fmt.Printf("negative region (certainly not):       %v\n", ap.Negative)
	fmt.Printf("approximation accuracy: %.2f\n", ap.Accuracy())
	fmt.Printf("dependency of decision on {LEF, exposure}: %.2f\n",
		tbl.Dependency(tbl.Attributes))
	fmt.Printf("reducts: %v  core: %v\n", tbl.Reducts(), tbl.Core())

	fmt.Println("\ninduced decision rules:")
	for _, r := range tbl.DecisionRules(tbl.Attributes) {
		fmt.Printf("  %s\n", r)
	}

	dec, certain := tbl.Classify(tbl.Attributes,
		map[string]string{"LEF": "H", "exposure": "internal"})
	fmt.Printf("\nclassify {LEF=H, exposure=internal}: %v (certain=%v)\n", dec, certain)
	fmt.Println("-> the boundary region filters spurious certainty (paper §V-A)")

	// --- Qualitative envisioning (paper §II-B: estimation of the
	// solution space through qualitative reasoning). ---
	fmt.Println("\n== Qualitative envisioning of the tank level ==")
	space := qual.MustQuantitySpace("level",
		[]float64{0.1, 0.3, 0.7, 0.9},
		[]string{"empty", "low", "normal", "high", "overflow"})
	scale := space.Scale()
	start := qual.State{Magnitude: scale.MustParse("normal"), Trend: qual.SignZero}

	free := qual.Envision(scale, []qual.State{start})
	fmt.Printf("uncontrolled tank: %d reachable qualitative states; overflow reachable=%v\n",
		len(free.States()), free.Reachable(scale.MustParse("overflow")))
	if path := free.PathTo(scale.MustParse("overflow")); path != nil {
		steps := make([]string, len(path))
		for i, st := range path {
			steps[i] = st.LabelIn(scale)
		}
		fmt.Printf("abstract counterexample: %s\n", strings.Join(steps, " -> "))
	}
	controlled := free.Constrain(func(st qual.State) bool {
		// The controller never lets the level keep rising at or above
		// "high" — the qualitative control knowledge.
		return !(st.Magnitude >= scale.MustParse("high") && st.Trend == qual.SignPos)
	})
	fmt.Printf("with control knowledge: overflow reachable=%v\n",
		controlled.Reachable(scale.MustParse("overflow")))
	return nil
}
