// Command loadgen drives a running riskserve instance with a fixed,
// deterministic request mix and asserts the service-level outcome: every
// job completes, repeat submissions resolve warm from the per-tenant
// artifact cache, the SLO journal stays empty, and /metrics exposes the
// expected series. It exits non-zero on any violation — the CI teeth
// behind the service mode.
//
// Usage:
//
//	loadgen -addr host:port -model model.json [-tenants 3] [-rounds 2]
//	        [-timeout 120s]
//
// The mix is rounds × tenants submissions: every round submits the same
// model once per tenant, so round 1 is all cold compiles and every later
// round must hit each tenant's own warm cache entry.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type jobStatus struct {
	ID           string `json:"id"`
	TraceID      string `json:"traceId"`
	State        string `json:"state"`
	ArtifactPath string `json:"artifactPath"`
	Error        string `json:"error"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "riskserve address, host:port (required)")
	modelPath := fs.String("model", "", "model JSON to submit (required)")
	tenants := fs.Int("tenants", 3, "distinct tenants in the mix")
	rounds := fs.Int("rounds", 2, "submission rounds (round 1 cold, later rounds warm)")
	timeout := fs.Duration("timeout", 120*time.Second, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" || *modelPath == "" {
		fs.Usage()
		return fmt.Errorf("-addr and -model are required")
	}
	base := "http://" + *addr
	model, err := os.ReadFile(*modelPath)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(*timeout)

	warm, cold := 0, 0
	for round := 1; round <= *rounds; round++ {
		// Submit the whole round before polling: the rounds exercise
		// concurrent jobs from distinct tenants against the shared cache.
		ids := make([]string, 0, *tenants)
		for ten := 0; ten < *tenants; ten++ {
			tenant := fmt.Sprintf("tenant-%d", ten)
			traceID := fmt.Sprintf("load-r%d-%s", round, tenant)
			st, err := submit(base, model, traceID, tenant)
			if err != nil {
				return fmt.Errorf("round %d %s: %w", round, tenant, err)
			}
			if st.TraceID != traceID {
				return fmt.Errorf("round %d %s: trace ID %q not honored", round, tenant, st.TraceID)
			}
			ids = append(ids, st.ID)
		}
		for i, id := range ids {
			st, err := await(base, id, deadline)
			if err != nil {
				return err
			}
			if st.State != "done" {
				return fmt.Errorf("job %s: state %s (%s)", id, st.State, st.Error)
			}
			wantPath := "warm"
			if round == 1 {
				wantPath = "cold"
			}
			if st.ArtifactPath != wantPath {
				return fmt.Errorf("round %d tenant-%d: artifact %q, want %q",
					round, i, st.ArtifactPath, wantPath)
			}
			if st.ArtifactPath == "warm" {
				warm++
			} else {
				cold++
			}
		}
	}

	// Service-level assertions: zero critical events, ready, and the
	// exposition carries the job counters.
	var slo struct {
		Compliant   bool `json:"compliant"`
		WindowCount int  `json:"windowCount"`
	}
	if err := getJSON(base+"/v1/slo", &slo); err != nil {
		return err
	}
	if slo.WindowCount != 0 || !slo.Compliant {
		return fmt.Errorf("SLO violated: %d critical event(s) in window", slo.WindowCount)
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/readyz = %d after a clean run", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	total := *rounds * *tenants
	for _, want := range []string{
		fmt.Sprintf("cpsrisk_jobs_completed %d", total),
		fmt.Sprintf("cpsrisk_jobs_submitted %d", total),
		"cpsrisk_jobs_duration_us_count",
		"cpsrisk_http_requests_assess",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("/metrics lacks %q", want)
		}
	}

	fmt.Printf("loadgen: ok — %d jobs (%d cold, %d warm), 0 critical events\n",
		total, cold, warm)
	return nil
}

func submit(base string, model []byte, traceID, tenant string) (*jobStatus, error) {
	req, err := http.NewRequest("POST", base+"/v1/assess", bytes.NewReader(model))
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Trace-Id", traceID)
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("submit: %d: %s", resp.StatusCode, body)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func await(base, id string, deadline time.Time) (*jobStatus, error) {
	for time.Now().Before(deadline) {
		var st jobStatus
		if err := getJSON(base+"/v1/jobs/"+id, &st); err != nil {
			return nil, err
		}
		if st.State == "done" || st.State == "failed" {
			return &st, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("job %s: deadline exceeded", id)
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
