package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"cpsrisk/internal/core"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/sysmodel"
)

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// job is one submitted assessment riding the queue. Fields under mu are
// written by the accepting handler and the running worker and read by
// the status/report/trace handlers.
type job struct {
	id      string
	traceID string
	tenant  string

	model *sysmodel.Model
	reqs  []hazard.Requirement

	mu         sync.Mutex
	state      string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	assessment *core.Assessment
	traceSnap  *obs.SpanSnapshot
	errMsg     string
	cancel     func() // cancels the running assessment (drain deadline)
	done       chan struct{}
}

// JobStatus is the GET /v1/jobs/{id} body (and the POST /v1/assess
// acceptance body).
type JobStatus struct {
	ID        string `json:"id"`
	TraceID   string `json:"traceId"`
	Tenant    string `json:"tenant,omitempty"`
	State     string `json:"state"`
	Submitted string `json:"submitted"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
	// DurationMS is the run's wall time once finished.
	DurationMS int64 `json:"durationMs,omitempty"`
	// ArtifactPath is the cache resolution the run took: "warm", "delta",
	// or "cold" (absent until finished).
	ArtifactPath string `json:"artifactPath,omitempty"`
	// Degraded reports resource-budget truncations in the result.
	Degraded bool `json:"degraded,omitempty"`
	// Scenarios / Hazardous summarize the finished analysis.
	Scenarios int    `json:"scenarios,omitempty"`
	Hazardous int    `json:"hazardous,omitempty"`
	Error     string `json:"error,omitempty"`
}

// status snapshots the job into its wire form.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		TraceID:   j.traceID,
		Tenant:    j.tenant,
		State:     j.state,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		Error:     j.errMsg,
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
		st.DurationMS = j.finished.Sub(j.started).Milliseconds()
	}
	if a := j.assessment; a != nil {
		if a.Artifact != nil {
			st.ArtifactPath = a.Artifact.Path
		}
		st.Degraded = a.Degradation.Degraded()
		if a.Analysis != nil {
			st.Scenarios = len(a.Analysis.Scenarios)
			st.Hazardous = len(a.Analysis.Hazards())
		}
	}
	return st
}

// result returns the terminal-state view used by the report and trace
// handlers: the assessment (nil while running or on failure), the trace
// snapshot, and whether the job reached a terminal state.
func (j *job) result() (a *core.Assessment, trace *obs.SpanSnapshot, state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.assessment, j.traceSnap, j.state, j.errMsg
}

// newID returns "j<seq>-<random>" — monotonic for log ordering, random
// so IDs are not guessable across restarts.
func newID(seq int64) string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to sequence-only IDs; uniqueness within the process
		// is all the job table needs.
		return fmt.Sprintf("j%d", seq)
	}
	return fmt.Sprintf("j%d-%s", seq, hex.EncodeToString(b[:]))
}

// newTraceID returns a 16-hex-digit random trace ID.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// sanitizeHeaderToken bounds and cleans an inbound correlation header
// (trace ID, tenant): printable ASCII without spaces, at most 64 bytes.
// Anything else is dropped (returns "").
func sanitizeHeaderToken(s string) string {
	if len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return s
}
