package hazard

import (
	"fmt"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/solver"
)

// MinimalCutsASP enumerates the minimal fault combinations violating one
// requirement through the embedded formal method: the EPA encoding plus
// the scenario choice, an integrity constraint demanding the violation,
// and cardinality `#minimize` over the activations. Each optimization
// round yields minimum-cardinality cuts; blocking each found cut (as a
// conjunction) and re-solving climbs the cardinality levels until no
// violating scenario remains, which enumerates exactly the minimal cuts —
// the qualitative analogue of FTA minimal cut sets computed by the
// reasoner itself (§III-A, §IV-D "the engine selects the active faults").
//
// maxRounds bounds the iteration defensively; the space of minimal cuts
// over n candidates is finite, so the loop always terminates on its own.
func MinimalCutsASP(eng *epa.Engine, muts []faults.Mutation, req Requirement, maxRounds int) ([]epa.Scenario, error) {
	if err := validateReqs([]Requirement{req}); err != nil {
		return nil, err
	}
	base, err := eng.EncodeASP()
	if err != nil {
		return nil, err
	}
	faults.EncodeChoice(base, muts, -1)
	if err := EncodeViolation(base, req.ID, req.Condition); err != nil {
		return nil, err
	}
	base.AddRule(logic.Constraint(logic.Not(logic.A("violated", logic.Sym(req.ID)))))
	base.AddMinimize(logic.MinimizeElem{
		Weight:   logic.Num(1),
		Priority: 1,
		Tuple:    []logic.Term{logic.Func("cut", logic.Var("C"), logic.Var("F"))},
		Cond: []logic.BodyElem{
			logic.Pos(logic.A("active", logic.Var("C"), logic.Var("F"))),
		},
	})

	var cuts []epa.Scenario
	if maxRounds <= 0 {
		maxRounds = 1 << len(muts)
	}
	for round := 0; round < maxRounds; round++ {
		prog := &logic.Program{}
		prog.Extend(base)
		// Block supersets of every found cut.
		for _, cut := range cuts {
			body := make([]logic.BodyElem, 0, len(cut))
			for _, a := range cut {
				body = append(body, logic.Pos(epa.ActiveAtom(a.Component, a.Fault)))
			}
			prog.AddRule(logic.Constraint(body...))
		}
		res, err := solver.SolveProgram(prog, solver.Options{Optimize: true})
		if err != nil {
			return nil, err
		}
		if len(res.Models) == 0 {
			return cuts, nil // space exhausted
		}
		// All optimal models of this round share the minimum cardinality:
		// each is a minimal cut (no proper subset violates, or it would
		// have been optimal in an earlier round or this one).
		for _, m := range res.Models {
			var cut epa.Scenario
			for _, mu := range muts {
				if m.Contains(epa.ActiveAtom(mu.Component, mu.Fault).Key()) {
					cut = append(cut, mu.Activation)
				}
			}
			cuts = append(cuts, cut)
		}
	}
	return nil, fmt.Errorf("hazard: minimal-cut enumeration exceeded %d rounds", maxRounds)
}
