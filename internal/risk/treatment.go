package risk

import (
	"strconv"

	"cpsrisk/internal/qual"
)

// Treatment is the SME-facing recommendation derived from a qualitative
// risk level (§II-A: results must be interpretable by managers of average
// skills; §IV: "limited resources and time can be allocated more
// efficiently").
type Treatment int

// Treatments, from most to least urgent.
const (
	// TreatImmediately: intolerable risk; stop or fix before operation.
	TreatImmediately Treatment = iota + 1
	// TreatMitigate: plan and fund mitigation in the current cycle.
	TreatMitigate
	// TreatPlan: schedule mitigation; monitor in the meantime.
	TreatPlan
	// TreatAccept: document and accept.
	TreatAccept
)

// String implements fmt.Stringer.
func (t Treatment) String() string {
	switch t {
	case TreatImmediately:
		return "treat-immediately"
	case TreatMitigate:
		return "mitigate"
	case TreatPlan:
		return "plan"
	case TreatAccept:
		return "accept"
	default:
		return "unknown-treatment"
	}
}

// TreatmentFor maps a qualitative risk level to its recommendation.
func TreatmentFor(risk qual.Level) Treatment {
	switch {
	case risk >= qual.VeryHigh:
		return TreatImmediately
	case risk >= qual.High:
		return TreatMitigate
	case risk >= qual.Medium:
		return TreatPlan
	default:
		return TreatAccept
	}
}

// Explain renders a one-line human rationale for a scored scenario — the
// explainability requirement of §II-A.
func Explain(sr ScenarioRisk) string {
	s := qual.FiveLevel()
	switch {
	case sr.Violations == 0:
		return "no requirement violated; risk " + s.Label(sr.Risk)
	default:
		return "violates " + strconv.Itoa(sr.Violations) + " requirement(s) at severity " +
			s.Label(sr.Severity) + " with likelihood " + s.Label(sr.Likelihood) +
			" -> risk " + s.Label(sr.Risk) + ", " + TreatmentFor(sr.Risk).String()
	}
}
