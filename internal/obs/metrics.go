package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a race-safe registry of named counters, gauges, and
// histograms — the single aggregation surface that replaces per-package
// Stats plumbing. Instruments are created on first use and live for the
// registry's lifetime; looking one up is a lock + map hit, so hot paths
// resolve their instruments once and then pay a single atomic per
// update. A nil *Registry hands out nil instruments whose methods are
// one-pointer-check no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use (nil for a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil for a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil
// for a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing race-safe counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by 1 (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a race-safe last-write-wins value.
type Gauge struct{ v atomic.Int64 }

// Set stores v (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every histogram: bucket 0
// holds observations <= 0, bucket i (i >= 1) holds values in
// [2^(i-1), 2^i), and the last bucket absorbs everything beyond. Fixed
// log-scale buckets keep Observe allocation-free and snapshots mergeable
// across runs.
const histBuckets = 64

// Histogram is a race-safe fixed-log-bucket histogram of int64
// observations (typically microseconds or counts).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0; stored as seen
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its log2 bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v)) // floor(log2(v)) + 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; races with concurrent first
		// observations are resolved by the CAS loops below.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketCount is one non-empty histogram bucket: observations v with
// Lo <= v < Hi (Lo is math.MinInt64 for the underflow bucket).
type BucketCount struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is an immutable histogram copy. P50/P95/P99 are
// quantile estimates derived from the log2 buckets at snapshot time (see
// Quantile); they are projections of Buckets, not extra state.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	P50     int64         `json:"p50,omitempty"`
	P95     int64         `json:"p95,omitempty"`
	P99     int64         `json:"p99,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the log2 buckets,
// interpolating linearly inside the bucket holding the target rank and
// clamping to the observed Min/Max so estimates never leave the data
// range. The log2 scheme bounds the relative error of an interior
// estimate by the bucket width (a factor of 2); Min/Max clamping makes
// the extremes exact. Returns 0 when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	// rank is the 1-based index of the target observation in sorted order.
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range h.Buckets {
		if seen+b.Count < rank {
			seen += b.Count
			continue
		}
		lo, hi := b.Lo, b.Hi
		if lo < h.Min {
			lo = h.Min
		}
		if mx := h.Max; mx < math.MaxInt64 && hi > mx+1 {
			hi = mx + 1
		}
		if hi <= lo {
			return lo
		}
		// Position of the target rank inside this bucket, in (0, 1].
		frac := float64(rank-seen) / float64(b.Count)
		v := lo + int64(frac*float64(hi-lo))
		if v >= hi {
			v = hi - 1
		}
		return v
	}
	return h.Max
}

// quantiles fills the exported quantile estimates (snapshot time).
func (h *HistogramSnapshot) quantiles() {
	if h.Count == 0 {
		return
	}
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
}

// MetricsSnapshot is a point-in-time copy of every instrument, ready for
// JSON export.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument. Nil-safe (returns nil). Concurrent
// updates during the copy land in either the snapshot or the next one;
// each individual instrument read is atomic.
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &MetricsSnapshot{}
	if len(r.counters) > 0 {
		out.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			out.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		out.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			out.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
			if hs.Count > 0 {
				hs.Min = h.min.Load()
				hs.Max = h.max.Load()
			}
			for i := range h.buckets {
				n := h.buckets[i].Load()
				if n == 0 {
					continue
				}
				b := BucketCount{Count: n}
				if i == 0 {
					b.Lo, b.Hi = math.MinInt64, 1
				} else {
					b.Lo = int64(1) << uint(i-1)
					if i == histBuckets-1 {
						b.Hi = math.MaxInt64
					} else {
						b.Hi = int64(1) << uint(i)
					}
				}
				hs.Buckets = append(hs.Buckets, b)
			}
			hs.quantiles()
			out.Histograms[name] = hs
		}
	}
	return out
}

// Render writes the snapshot as sorted "name value" lines, histograms as
// count/mean/min/max — the text-report projection.
func (m *MetricsSnapshot) Render() string {
	if m == nil {
		return ""
	}
	var sb strings.Builder
	names := make([]string, 0, len(m.Counters))
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-36s %d\n", n, m.Counters[n])
	}
	names = names[:0]
	for n := range m.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-36s %d\n", n, m.Gauges[n])
	}
	names = names[:0]
	for n := range m.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.Histograms[n]
		fmt.Fprintf(&sb, "  %-36s n=%d mean=%.1f min=%d max=%d p50=%d p95=%d p99=%d\n",
			n, h.Count, h.Mean(), h.Min, h.Max, h.P50, h.P95, h.P99)
	}
	return sb.String()
}

// MergeSnapshot folds a snapshot into the registry: counters add, gauges
// take the snapshot's value, histograms merge bucket-by-bucket (the
// fixed log2 bucketing makes snapshots from different registries
// mergeable by construction). The server uses this to aggregate each
// job's private registry into the process-wide /metrics registry.
// Nil-safe on both sides.
func (r *Registry) MergeSnapshot(m *MetricsSnapshot) {
	if r == nil || m == nil {
		return
	}
	for name, v := range m.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range m.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range m.Histograms {
		r.Histogram(name).merge(hs)
	}
}

// merge folds a snapshot into the histogram. Bucket boundaries are
// identical across all histograms (fixed log2 scheme), so counts map
// back to bucket indexes exactly.
func (h *Histogram) merge(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	for _, b := range s.Buckets {
		idx := 0
		if b.Lo > 0 {
			idx = bucketIndex(b.Lo)
		}
		h.buckets[idx].Add(b.Count)
	}
	h.sum.Add(s.Sum)
	if h.count.Add(s.Count) == s.Count {
		h.min.Store(s.Min)
		h.max.Store(s.Max)
	}
	for {
		cur := h.min.Load()
		if s.Min >= cur || h.min.CompareAndSwap(cur, s.Min) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
}
