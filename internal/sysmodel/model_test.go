package sysmodel

import (
	"bytes"
	"strings"
	"testing"
)

// testLib builds a small library: a sensor (signal out), a controller
// (signal in/out), a valve (signal in, quantity inout), a tank (quantity
// inout x2), and a composite-capable workstation.
func testLib(t testing.TB) *TypeLibrary {
	lib := NewTypeLibrary()
	for _, ct := range []*ComponentType{
		{
			Name:  "sensor",
			Layer: "physical",
			Ports: []PortSpec{
				{Name: "measure", Dir: InOut, Flow: QuantityFlow},
				{Name: "reading", Dir: Out, Flow: SignalFlow},
			},
			FaultModes: []FaultModeSpec{{Name: "no_signal", Likelihood: "L"}},
		},
		{
			Name:  "controller",
			Layer: "technology",
			Ports: []PortSpec{
				{Name: "in", Dir: In, Flow: SignalFlow},
				{Name: "out", Dir: Out, Flow: SignalFlow},
			},
			FaultModes: []FaultModeSpec{{Name: "crash", Likelihood: "VL"}},
		},
		{
			Name:  "valve",
			Layer: "physical",
			Ports: []PortSpec{
				{Name: "cmd", Dir: In, Flow: SignalFlow},
				{Name: "pipe", Dir: InOut, Flow: QuantityFlow},
			},
			FaultModes: []FaultModeSpec{
				{Name: "stuck_at_open", Likelihood: "L"},
				{Name: "stuck_at_closed", Likelihood: "L"},
			},
		},
		{
			Name:  "tank",
			Layer: "physical",
			Ports: []PortSpec{
				{Name: "inflow", Dir: InOut, Flow: QuantityFlow},
				{Name: "outflow", Dir: InOut, Flow: QuantityFlow},
			},
		},
		{
			Name:  "workstation",
			Layer: "application",
			Ports: []PortSpec{
				{Name: "net", Dir: Out, Flow: SignalFlow},
			},
			FaultModes: []FaultModeSpec{{Name: "infected", Likelihood: "M"}},
		},
		{
			Name:  "app",
			Layer: "application",
			Ports: []PortSpec{
				{Name: "out", Dir: Out, Flow: SignalFlow},
				{Name: "in", Dir: In, Flow: SignalFlow},
			},
		},
	} {
		lib.MustAdd(ct)
	}
	return lib
}

// testModel wires sensor -> controller -> valve -> tank.
func testModel(t testing.TB) (*Model, *TypeLibrary) {
	lib := testLib(t)
	m := NewModel("mini-plant")
	m.MustAddComponent(&Component{ID: "ls", Type: "sensor"})
	m.MustAddComponent(&Component{ID: "ctrl", Type: "controller"})
	m.MustAddComponent(&Component{ID: "valve", Type: "valve"})
	m.MustAddComponent(&Component{ID: "tank", Type: "tank"})
	m.Connect("ls", "reading", "ctrl", "in", SignalFlow)
	m.Connect("ctrl", "out", "valve", "cmd", SignalFlow)
	m.Connect("valve", "pipe", "tank", "inflow", QuantityFlow)
	m.Connect("ls", "measure", "tank", "outflow", QuantityFlow)
	m.AddRequirement(Requirement{ID: "R1", Formula: "G !state(tank,overflow)", Severity: "H"})
	return m, lib
}

func TestValidateOK(t *testing.T) {
	m, lib := testModel(t)
	if err := m.Validate(lib); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Model)
		substr string
	}{
		{"unknown type", func(m *Model) { m.Components[0].Type = "ghost" }, "unknown type"},
		{"unknown component", func(m *Model) { m.Connections[0].To.Component = "ghost" }, "unknown component"},
		{"unknown port", func(m *Model) { m.Connections[0].From.Port = "ghost" }, "no port"},
		{"flow mismatch", func(m *Model) { m.Connections[0].Flow = QuantityFlow }, "flow mismatch"},
		{"signal direction", func(m *Model) {
			m.Connections[0] = Connection{
				From: PortRef{"ctrl", "in"}, To: PortRef{"ls", "reading"}, Flow: SignalFlow}
		}, "out -> in"},
		{"dup requirement", func(m *Model) {
			m.AddRequirement(Requirement{ID: "R1", Formula: "true"})
		}, "duplicate requirement"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, lib := testModel(t)
			tt.mutate(m)
			err := m.Validate(lib)
			if err == nil || !strings.Contains(err.Error(), tt.substr) {
				t.Fatalf("err = %v, want substring %q", err, tt.substr)
			}
		})
	}
}

func TestDuplicateComponentID(t *testing.T) {
	m := NewModel("x")
	m.MustAddComponent(&Component{ID: "a", Type: "tank"})
	if err := m.AddComponent(&Component{ID: "a", Type: "tank"}); err == nil {
		t.Fatal("duplicate ID must fail")
	}
}

func TestTypeLibrary(t *testing.T) {
	lib := testLib(t)
	if _, ok := lib.Get("valve"); !ok {
		t.Fatal("valve missing")
	}
	ct, _ := lib.Get("valve")
	if _, ok := ct.Port("pipe"); !ok {
		t.Error("pipe port missing")
	}
	if _, ok := ct.FaultMode("stuck_at_open"); !ok {
		t.Error("fault mode missing")
	}
	if err := lib.Add(&ComponentType{Name: "valve"}); err == nil {
		t.Error("duplicate type must fail")
	}
	other := NewTypeLibrary()
	other.MustAdd(&ComponentType{Name: "hmi"})
	if err := lib.Merge(other); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if _, ok := lib.Get("hmi"); !ok {
		t.Error("merged type missing")
	}
}

func TestGraphPropagation(t *testing.T) {
	m, _ := testModel(t)
	g := m.BuildGraph()
	// Signal edges directed; quantity edges bidirectional.
	succ := g.Successors("valve")
	if len(succ) != 1 || succ[0] != "tank" {
		t.Errorf("valve successors = %v", succ)
	}
	succ = g.Successors("tank")
	// tank shares quantity flows with valve and ls.
	if len(succ) != 2 || succ[0] != "ls" || succ[1] != "valve" {
		t.Errorf("tank successors = %v", succ)
	}
	if got := g.Predecessors("ctrl"); len(got) != 1 || got[0] != "ls" {
		t.Errorf("ctrl preds = %v", got)
	}
}

func TestGraphReachable(t *testing.T) {
	m, _ := testModel(t)
	g := m.BuildGraph()
	reach := g.Reachable("ctrl")
	// ctrl -> valve -> tank <-> ls -> ctrl: everything reachable.
	if len(reach) != 4 {
		t.Errorf("reachable from ctrl = %v", reach)
	}
	if !g.HasCycle() {
		t.Error("quantity loop should create a cycle")
	}
}

func TestGraphShortestPath(t *testing.T) {
	m, _ := testModel(t)
	g := m.BuildGraph()
	path := g.ShortestPath("ctrl", "ls")
	want := []string{"ctrl", "valve", "tank", "ls"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if got := g.ShortestPath("tank", "tank"); len(got) != 1 {
		t.Errorf("self path = %v", got)
	}
	m2 := NewModel("disconnected")
	m2.MustAddComponent(&Component{ID: "a", Type: "tank"})
	m2.MustAddComponent(&Component{ID: "b", Type: "tank"})
	if got := m2.BuildGraph().ShortestPath("a", "b"); got != nil {
		t.Errorf("unreachable path = %v", got)
	}
}

func compositeWorkstation() *Component {
	inner := NewModel("ws-inner")
	inner.MustAddComponent(&Component{ID: "email", Type: "app"})
	inner.MustAddComponent(&Component{ID: "browser", Type: "app"})
	inner.Connect("email", "out", "browser", "in", SignalFlow)
	return &Component{
		ID:   "ews",
		Type: "workstation",
		Sub:  inner,
		Bindings: map[string]PortRef{
			"net": {Component: "browser", Port: "out"},
		},
	}
}

func TestRefineComponent(t *testing.T) {
	lib := testLib(t)
	m := NewModel("plant")
	m.MustAddComponent(compositeWorkstation())
	m.MustAddComponent(&Component{ID: "ctrl", Type: "controller"})
	m.Connect("ews", "net", "ctrl", "in", SignalFlow)
	if err := m.Validate(lib); err != nil {
		t.Fatalf("pre-refine validate: %v", err)
	}

	if err := m.RefineComponent("ews"); err != nil {
		t.Fatalf("refine: %v", err)
	}
	if err := m.Validate(lib); err != nil {
		t.Fatalf("post-refine validate: %v", err)
	}
	if _, ok := m.Component("ews"); ok {
		t.Error("composite must be removed")
	}
	if _, ok := m.Component("ews.email"); !ok {
		t.Error("namespaced inner component missing")
	}
	// The outer connection must now come from ews.browser.out.
	found := false
	for _, c := range m.Connections {
		if c.From.Component == "ews.browser" && c.To.Component == "ctrl" {
			found = true
		}
	}
	if !found {
		t.Errorf("rewired connection missing: %v", m.Connections)
	}
}

func TestRefineErrors(t *testing.T) {
	m, _ := testModel(t)
	if err := m.RefineComponent("ghost"); err == nil {
		t.Error("unknown component must fail")
	}
	if err := m.RefineComponent("tank"); err == nil {
		t.Error("non-composite must fail")
	}
	// Missing binding for a connected port.
	m2 := NewModel("x")
	ws := compositeWorkstation()
	ws.Bindings = nil
	m2.MustAddComponent(ws)
	m2.MustAddComponent(&Component{ID: "ctrl", Type: "controller"})
	m2.Connect("ews", "net", "ctrl", "in", SignalFlow)
	if err := m2.RefineComponent("ews"); err == nil || !strings.Contains(err.Error(), "binding") {
		t.Errorf("missing binding error = %v", err)
	}
}

func TestRefineAllAndStats(t *testing.T) {
	m := NewModel("plant")
	m.MustAddComponent(compositeWorkstation())
	m.MustAddComponent(&Component{ID: "ctrl", Type: "controller"})
	st := m.Stats()
	if st.Components != 4 || st.Composites != 1 || st.Depth != 1 {
		t.Errorf("stats = %+v", st)
	}
	if err := m.RefineAll(); err != nil {
		t.Fatal(err)
	}
	if len(m.Composites()) != 0 {
		t.Error("composites remain after RefineAll")
	}
	st = m.Stats()
	if st.Components != 3 || st.Depth != 0 {
		t.Errorf("flattened stats = %+v", st)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, _ := testModel(t)
	m.Components[0].SetAttr("exposure", "internal")
	c := m.Clone()
	c.Components[0].SetAttr("exposure", "public")
	if m.Components[0].Attr("exposure") != "internal" {
		t.Error("clone shares attrs")
	}
	c.Connect("tank", "inflow", "tank", "outflow", QuantityFlow)
	if len(m.Connections) == len(c.Connections) {
		t.Error("clone shares connections")
	}
}

func TestMergeAspects(t *testing.T) {
	arch := NewModel("architecture")
	arch.MustAddComponent(&Component{ID: "ctrl", Type: "controller"})
	arch.MustAddComponent(&Component{ID: "valve", Type: "valve"})
	arch.Connect("ctrl", "out", "valve", "cmd", SignalFlow)

	deploy := NewModel("deployment")
	deploy.MustAddComponent(&Component{ID: "ctrl", Type: "controller",
		Attrs: map[string]string{"deployedOn": "plc1"}})

	sec := NewModel("security")
	sec.MustAddComponent(&Component{ID: "ctrl", Type: "controller",
		Attrs: map[string]string{"exposure": "internal"}})
	sec.AddRequirement(Requirement{ID: "R1", Formula: "true"})

	merged, err := Merge("system", arch, deploy, sec)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, _ := merged.Component("ctrl")
	if ctrl.Attr("deployedOn") != "plc1" || ctrl.Attr("exposure") != "internal" {
		t.Errorf("merged attrs = %v", ctrl.Attrs)
	}
	if len(merged.Requirements) != 1 {
		t.Errorf("requirements = %v", merged.Requirements)
	}
	if len(merged.Components) != 2 || len(merged.Connections) != 1 {
		t.Errorf("merged size = %d comps %d conns", len(merged.Components), len(merged.Connections))
	}
}

func TestMergeConflicts(t *testing.T) {
	a := NewModel("a")
	a.MustAddComponent(&Component{ID: "x", Type: "controller"})
	b := NewModel("b")
	b.MustAddComponent(&Component{ID: "x", Type: "valve"})
	if _, err := Merge("m", a, b); err == nil {
		t.Error("type conflict must fail")
	}

	c := NewModel("c")
	c.MustAddComponent(&Component{ID: "x", Type: "controller",
		Attrs: map[string]string{"exposure": "public"}})
	d := NewModel("d")
	d.MustAddComponent(&Component{ID: "x", Type: "controller",
		Attrs: map[string]string{"exposure": "internal"}})
	if _, err := Merge("m", c, d); err == nil {
		t.Error("attr conflict must fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m, lib := testModel(t)
	m.Components[0].SetAttr("exposure", "internal")
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(lib); err != nil {
		t.Fatalf("round-tripped model invalid: %v", err)
	}
	if len(m2.Components) != len(m.Components) || len(m2.Connections) != len(m.Connections) {
		t.Error("round trip lost elements")
	}
	c, ok := m2.Component("ls")
	if !ok || c.Attr("exposure") != "internal" {
		t.Error("round trip lost attributes")
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","components":[{"id":"a","type":"t"},{"id":"a","type":"t"}],"connections":[]}`)); err == nil {
		t.Error("duplicate IDs must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Error("unknown fields must fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Error("syntax error must fail")
	}
}

func TestTypeLibraryJSONRoundTrip(t *testing.T) {
	lib := testLib(t)
	var buf bytes.Buffer
	if err := lib.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lib2, err := ReadTypesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib2.Names()) != len(lib.Names()) {
		t.Errorf("round trip: %v vs %v", lib2.Names(), lib.Names())
	}
	ct, ok := lib2.Get("valve")
	if !ok {
		t.Fatal("valve lost")
	}
	if p, _ := ct.Port("pipe"); p.Flow != QuantityFlow || p.Dir != InOut {
		t.Errorf("valve pipe spec = %+v", p)
	}
}
