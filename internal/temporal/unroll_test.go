package temporal

import (
	"fmt"
	"math/bits"
	"strconv"
	"testing"

	"cpsrisk/internal/logic"
	"cpsrisk/internal/solver"
)

// traceProgram encodes a concrete trace of propositions a/b as timed facts.
func traceProgram(tr Trace) *logic.Program {
	prog := &logic.Program{}
	for t, st := range tr {
		for key := range st {
			prog.AddFact(logic.A(key, logic.Num(t)))
		}
	}
	return prog
}

// holdsViaASP compiles f over the horizon, adds the trace facts, solves,
// and reports whether the root predicate holds at state 0.
func holdsViaASP(t *testing.T, f Formula, tr Trace) bool {
	t.Helper()
	prog := traceProgram(tr)
	u := NewUnroller(len(tr))
	u.EnsureTime(prog)
	pred, err := u.Compile(prog, f)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := solver.SolveProgram(prog, solver.Options{MaxModels: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("deterministic trace program must have exactly 1 model, got %d", len(res.Models))
	}
	return res.Models[0].Contains(pred + "(0)")
}

// TestUnrollAgreesWithEval exhaustively cross-checks the ASP unrolling
// against the native evaluator on all traces of length 1..3 over {a,b} for
// a battery of formulas. This is the key soundness property of the Telingo
// substitute.
func TestUnrollAgreesWithEval(t *testing.T) {
	formulas := []Formula{
		P("a"),
		Not(P("a")),
		And(P("a"), P("b")),
		Or(P("a"), P("b")),
		Implies(P("a"), P("b")),
		Next(P("a")),
		WeakNext(P("a")),
		Finally(P("a")),
		Globally(P("a")),
		Until(P("a"), P("b")),
		Release(P("a"), P("b")),
		Globally(Implies(P("a"), Finally(P("b")))),
		Finally(And(P("a"), Next(P("b")))),
		Not(Until(P("a"), P("b"))),
		Globally(Not(P("a"))),
		And(Globally(P("a")), Finally(P("b"))),
	}
	for _, n := range []int{1, 2, 3} {
		// Each state is 2 bits: a present, b present.
		total := 1 << uint(2*n)
		for mask := 0; mask < total; mask++ {
			tr := make(Trace, n)
			for i := 0; i < n; i++ {
				st := State{}
				if mask>>(2*i)&1 == 1 {
					st["a"] = true
				}
				if mask>>(2*i+1)&1 == 1 {
					st["b"] = true
				}
				tr[i] = st
			}
			for fi, f := range formulas {
				want := Eval(f, tr)
				got := holdsViaASP(t, f, tr)
				if got != want {
					t.Fatalf("formula %d (%s) on trace %v (n=%d mask=%b): ASP=%v eval=%v",
						fi, f, tr, n, mask, got, want)
				}
			}
		}
	}
	_ = bits.OnesCount // keep math/bits for potential debugging
}

func TestRequireConstrainsModels(t *testing.T) {
	// Choice of when (if ever) to raise "p" over 3 steps; require F p.
	prog := logic.MustParse(`{ p(T) : time(T) }.`)
	u := NewUnroller(3)
	u.EnsureTime(prog)
	if err := u.Require(prog, Finally(P("p"))); err != nil {
		t.Fatal(err)
	}
	res, err := solver.SolveProgram(prog, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 2^3 subsets minus the empty one.
	if len(res.Models) != 7 {
		t.Fatalf("models = %d, want 7", len(res.Models))
	}
}

func TestViolationAtom(t *testing.T) {
	// p never holds -> violated(r1) derived.
	prog := &logic.Program{}
	u := NewUnroller(2)
	u.EnsureTime(prog)
	if err := u.Violation(prog, "r1", Globally(P("p"))); err != nil {
		t.Fatal(err)
	}
	res, err := solver.SolveProgram(prog, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 || !res.Models[0].Contains("violated(r1)") {
		t.Fatalf("models = %v", res.Models)
	}

	// p always holds -> no violation.
	prog2 := logic.MustParse(`p(0). p(1).`)
	u2 := NewUnroller(2)
	u2.EnsureTime(prog2)
	if err := u2.Violation(prog2, "r1", Globally(P("p"))); err != nil {
		t.Fatal(err)
	}
	res2, err := solver.SolveProgram(prog2, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Models[0].Contains("violated(r1)") {
		t.Fatalf("unexpected violation: %v", res2.Models[0].Atoms)
	}
}

func TestUnrollMemoReusesSubformulas(t *testing.T) {
	prog := &logic.Program{}
	u := NewUnroller(2)
	u.EnsureTime(prog)
	f := And(Finally(P("a")), Finally(P("a")))
	if _, err := u.Compile(prog, f); err != nil {
		t.Fatal(err)
	}
	// F a compiled once: predicates tl1 (root or sub) count must be 3
	// distinct predicates at most (and, Fa, a-prop).
	preds := map[string]bool{}
	for _, r := range prog.Rules {
		if r.Head != nil {
			preds[r.Head.Pred] = true
		}
	}
	delete(preds, "time")
	if len(preds) != 3 {
		t.Errorf("distinct aux predicates = %d, want 3 (memoized)", len(preds))
	}
}

func TestUnrollHorizonValidation(t *testing.T) {
	u := NewUnroller(0)
	if _, err := u.Compile(&logic.Program{}, P("a")); err == nil {
		t.Error("horizon 0 must be rejected")
	}
}

func TestCustomPropMap(t *testing.T) {
	// Map proposition p to holds(p, T).
	prog := logic.MustParse(`holds(p, 0).`)
	u := NewUnroller(1)
	u.PropMap = func(a logic.Atom, tm logic.Term) logic.Atom {
		return logic.A("holds", logic.Sym(a.Pred), tm)
	}
	u.EnsureTime(prog)
	pred, err := u.Compile(prog, P("p"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.SolveProgram(prog, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Models[0].Contains(pred + "(0)") {
		t.Errorf("custom prop map failed: %v", res.Models[0].Atoms)
	}
}

func BenchmarkUnrollAndSolve(b *testing.B) {
	f := Globally(Implies(P("overflow"), Finally(P("alerted"))))
	for _, h := range []int{5, 10, 20} {
		b.Run("h="+strconv.Itoa(h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog := &logic.Program{}
				for t := 0; t < h; t++ {
					if t%3 == 1 {
						prog.AddFact(logic.A("overflow", logic.Num(t)))
					}
					if t%3 == 2 {
						prog.AddFact(logic.A("alerted", logic.Num(t)))
					}
				}
				u := NewUnroller(h)
				u.EnsureTime(prog)
				if err := u.Require(prog, f); err != nil {
					b.Fatal(err)
				}
				if _, err := solver.SolveProgram(prog, solver.Options{MaxModels: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	_ = fmt.Sprint
}
