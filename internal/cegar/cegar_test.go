package cegar

import (
	"testing"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/watertank"
)

// levels builds the two abstraction levels of the case study: the coarse
// level uses the conservative default behaviours (everything propagates),
// the fine level the detailed water-tank behaviours.
func levels(t testing.TB) []Level {
	t.Helper()
	types := watertank.Types()

	coarseEng, err := epa.NewEngine(watertank.Model(), epa.NewBehaviorLibrary(types))
	if err != nil {
		t.Fatal(err)
	}
	fineEng, err := epa.NewEngine(watertank.Model(), watertank.Behaviors(types))
	if err != nil {
		t.Fatal(err)
	}
	return []Level{
		{Name: "coarse", Engine: coarseEng,
			Mutations: watertank.PaperCandidates(), Requirements: watertank.Requirements()},
		{Name: "fine", Engine: fineEng,
			Mutations: watertank.PaperCandidates(), Requirements: watertank.Requirements()},
	}
}

func TestLoopRefinesAndClassifies(t *testing.T) {
	res, err := Run(levels(t), NewPlantOracle(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2 (coarse must produce spurious findings)", res.Iterations)
	}
	if len(res.PerLevelFindings) != 2 || res.PerLevelFindings[1] >= res.PerLevelFindings[0] {
		t.Fatalf("refinement must shrink findings: %v", res.PerLevelFindings)
	}
	// The genuine attack (F4) must be confirmed for both requirements.
	f4 := epa.Scenario{{Component: plant.CompEWS, Fault: plant.FaultCompromised}}
	confirmedF4 := map[string]bool{}
	for _, j := range res.Confirmed() {
		if j.Finding.Scenario.Key() == f4.Key() {
			confirmedF4[j.Finding.ReqID] = true
		}
	}
	if !confirmedF4["R1"] || !confirmedF4["R2"] {
		t.Errorf("F4 must be confirmed for R1 and R2: %v", confirmedF4)
	}
	// F2 alone is the paper's qualitative hazard that the concrete
	// controller compensates: it must end up spurious, not lost.
	f2 := epa.Scenario{{Component: plant.CompOutValve, Fault: plant.FaultStuckClosed}}
	spuriousF2 := false
	for _, j := range res.Spurious() {
		if j.Finding.Scenario.Key() == f2.Key() && j.Finding.ReqID == "R1" {
			spuriousF2 = true
		}
	}
	if !spuriousF2 {
		t.Error("F2-alone R1 finding must be classified spurious by the oracle")
	}
	// Nothing undetermined on the representable candidate set.
	if got := res.Undetermined(); len(got) != 0 {
		t.Errorf("undetermined findings: %v", got)
	}
}

// The loop must keep confirmed findings across refinement: every finding
// confirmed at the fine level corresponds to a real concrete violation
// (oracle soundness is exercised through the plant directly).
func TestNoConfirmedFindingIsFalse(t *testing.T) {
	res, err := Run(levels(t), NewPlantOracle(), -1)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewPlantOracle()
	for _, j := range res.Confirmed() {
		v, err := oracle.Check(j.Finding)
		if err != nil {
			t.Fatal(err)
		}
		if v != Confirmed {
			t.Errorf("finding %s not reproducible", j.Finding)
		}
	}
}

func TestSingleLevelStopsImmediately(t *testing.T) {
	ls := levels(t)
	res, err := Run(ls[1:], NewPlantOracle(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, NewPlantOracle(), -1); err == nil {
		t.Error("no levels must fail")
	}
}

// An all-confirming oracle makes the loop stop at the coarse level (no
// spurious findings -> no refinement needed).
type yesOracle struct{}

func (yesOracle) Check(Finding) (Verdict, error) { return Confirmed, nil }

func TestLoopStopsWhenAllConfirmed(t *testing.T) {
	res, err := Run(levels(t), yesOracle{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
	if len(res.Spurious()) != 0 {
		t.Error("all-confirming oracle cannot yield spurious findings")
	}
}

// Unrepresentable scenarios go to expert review rather than being dropped.
func TestUndeterminedRouting(t *testing.T) {
	o := NewPlantOracle()
	v, err := o.Check(Finding{
		Scenario: epa.Scenario{{Component: "alien_asset", Fault: "weird"}},
		ReqID:    "R1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != Undetermined {
		t.Errorf("verdict = %v, want undetermined", v)
	}
	v, err = o.Check(Finding{
		Scenario: epa.Scenario{{Component: plant.CompEWS, Fault: plant.FaultCompromised}},
		ReqID:    "R99",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != Undetermined {
		t.Errorf("unknown requirement verdict = %v", v)
	}
}

// The oracle's timing probes matter: sensor blindness only overflows when
// injected mid-fill, and the oracle must find that probe.
func TestOracleProbesTiming(t *testing.T) {
	o := NewPlantOracle()
	v, err := o.Check(Finding{
		Scenario: epa.Scenario{{Component: plant.CompLevelSensor, Fault: plant.FaultNoSignal}},
		ReqID:    "R1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != Confirmed {
		t.Errorf("timed sensor loss must be confirmed, got %v", v)
	}
}

// The formal re-check screen must agree with the native analysis that
// produced the findings (it refutes nothing on the case study), and it
// must refute a fabricated counterexample the formal model rejects —
// without involving any oracle.
func TestScreenFindings(t *testing.T) {
	fine := levels(t)[1]
	genuine := Finding{
		Scenario: epa.Scenario{{Component: plant.CompEWS, Fault: plant.FaultCompromised}},
		ReqID:    "R1",
	}
	fabricated := Finding{Scenario: nil, ReqID: "R1"} // fault-free run violates nothing
	verdicts, err := screenFindings(fine, []Finding{genuine, fabricated}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0] != 0 {
		t.Errorf("genuine finding screened as %v, want pass-through", verdicts[0])
	}
	if verdicts[1] != Spurious {
		t.Errorf("fabricated finding screened as %v, want spurious", verdicts[1])
	}
}

// On the case study the screen and the native analysis agree exactly, so
// every finding must reach the oracle (the screen only guards drift),
// and the screened loop must classify identically to the plain one.
func TestScreenAgreesWithNativeOnCaseStudy(t *testing.T) {
	res, err := RunParallelScreened(levels(t), NewPlantOracle(), -1, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLevelScreened) != res.Iterations {
		t.Fatalf("screen counts = %v for %d iterations", res.PerLevelScreened, res.Iterations)
	}
	for li, n := range res.PerLevelScreened {
		if n != 0 {
			t.Errorf("level %d: screen refuted %d findings the native analysis produced", li, n)
		}
	}
	plain, err := Run(levels(t), NewPlantOracle(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Findings) != len(res.Findings) {
		t.Fatalf("screened loop found %d findings, plain %d", len(res.Findings), len(plain.Findings))
	}
	for i := range plain.Findings {
		p, s := plain.Findings[i], res.Findings[i]
		if p.Finding.String() != s.Finding.String() || p.Verdict != s.Verdict || p.Level != s.Level {
			t.Errorf("finding %d: screened %+v != plain %+v", i, s, p)
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	for _, v := range []Verdict{Confirmed, Spurious, Undetermined} {
		if v.String() == "" || v.String() == "unknown-verdict" {
			t.Errorf("verdict %d stringer broken", v)
		}
	}
	f := Finding{Scenario: epa.Scenario{{Component: "a", Fault: "b"}}, ReqID: "R1"}
	if f.String() != "{a:b} violates R1" {
		t.Errorf("finding string = %q", f.String())
	}
	_ = hazard.Requirement{}
}

func BenchmarkCEGARLoop(b *testing.B) {
	ls := levels(b)
	oracle := NewPlantOracle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ls, oracle, -1); err != nil {
			b.Fatal(err)
		}
	}
}
