package kb

import (
	"strings"
	"testing"
)

func TestDefaultKBConsistent(t *testing.T) {
	k, err := DefaultKB()
	if err != nil {
		t.Fatal(err)
	}
	counts := k.Counts()
	if counts.Weaknesses < 10 || counts.Vulnerabilities < 12 ||
		counts.Techniques < 14 || counts.Mitigations < 10 ||
		counts.Tactics < 8 || counts.Patterns < 8 {
		t.Errorf("catalog too small: %+v", counts)
	}
}

func TestDefaultKBPaperChain(t *testing.T) {
	// The paper's §VII attack chain must be representable end-to-end:
	// spearphishing link (user training mitigates) and drive-by malware
	// (endpoint security mitigates).
	k := MustDefaultKB()
	spear, ok := k.Technique("T-1566")
	if !ok {
		t.Fatal("T-1566 missing")
	}
	ms := k.MitigationsFor(spear.ID)
	if len(ms) != 1 || ms[0].Name != "User Training" {
		t.Errorf("spearphishing mitigations = %v", ms)
	}
	driveBy, ok := k.Technique("T-1189")
	if !ok {
		t.Fatal("T-1189 missing")
	}
	found := false
	for _, m := range k.MitigationsFor(driveBy.ID) {
		if m.Name == "Endpoint Security" {
			found = true
		}
	}
	if !found {
		t.Error("drive-by must be mitigated by endpoint security")
	}
	// Exploitation of Remote Services exists (paper names it explicitly).
	if _, ok := k.Technique("T-0866"); !ok {
		t.Error("T-0866 Exploitation of Remote Services missing")
	}
}

func TestVulnsForVersionFiltering(t *testing.T) {
	k := MustDefaultKB()
	all := k.VulnsFor("plc", "fw2.3")
	if len(all) != 2 {
		t.Fatalf("plc fw2.3 vulns = %d", len(all))
	}
	newer := k.VulnsFor("plc", "fw9.9")
	if len(newer) != 0 {
		t.Fatalf("plc fw9.9 vulns = %v", newer)
	}
	anyVersion := k.VulnsFor("hmi", "whatever")
	if len(anyVersion) != 1 {
		t.Fatalf("hmi vulns = %d", len(anyVersion))
	}
	if got := k.VulnsFor("toaster", "1"); got != nil {
		t.Errorf("unknown type vulns = %v", got)
	}
}

func TestTechniquesForIncludesUniversal(t *testing.T) {
	k := MustDefaultKB()
	// T-0846 has no component types: applicable anywhere.
	ts := k.TechniquesFor("tank")
	found := false
	for _, tq := range ts {
		if tq.ID == "T-0846" {
			found = true
		}
	}
	if !found {
		t.Error("universal technique missing from TechniquesFor")
	}
	hmiTechs := k.TechniquesFor("hmi")
	var ids []string
	for _, tq := range hmiTechs {
		ids = append(ids, tq.ID)
	}
	joined := strings.Join(ids, ",")
	for _, want := range []string{"T-0814", "T-0878", "T-0883"} {
		if !strings.Contains(joined, want) {
			t.Errorf("hmi techniques missing %s: %v", want, ids)
		}
	}
}

func TestVulnerabilityScores(t *testing.T) {
	k := MustDefaultKB()
	v, _ := k.Vulnerability("V-2023-0104")
	score, err := v.Score()
	if err != nil {
		t.Fatal(err)
	}
	if score != 9.8 {
		t.Errorf("V-2023-0104 score = %v, want 9.8", score)
	}
	if Severity(score) != "Critical" {
		t.Errorf("severity = %s", Severity(score))
	}
}

func TestKBValidationCatchesDangling(t *testing.T) {
	k := New()
	if err := k.AddTactic(&Tactic{ID: "TA-1", Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := k.AddTechnique(&Technique{ID: "T-1", Name: "t", TacticID: "TA-1",
		Mitigations: []string{"M-none"}}); err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "unknown mitigation") {
		t.Errorf("validate = %v", err)
	}
}

func TestKBValidationBadLabels(t *testing.T) {
	k := New()
	if err := k.AddTactic(&Tactic{ID: "TA-1", Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := k.AddTechnique(&Technique{ID: "T-1", Name: "t", TacticID: "TA-1",
		AttackCost: "HUGE"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err == nil {
		t.Error("bad qualitative label must fail validation")
	}
}

func TestKBAddErrors(t *testing.T) {
	k := New()
	if err := k.AddVulnerability(&Vulnerability{ID: "V-1", Vector: "garbage",
		ComponentType: "x", FaultMode: "f"}); err == nil {
		t.Error("bad vector must fail")
	}
	if err := k.AddVulnerability(&Vulnerability{ID: "V-1",
		Vector:        "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
		ComponentType: "", FaultMode: "f"}); err == nil {
		t.Error("missing component type must fail")
	}
	if err := k.AddMitigation(&Mitigation{ID: "M-1", Cost: -5}); err == nil {
		t.Error("negative cost must fail")
	}
	ok := &Mitigation{ID: "M-1", Cost: 5}
	if err := k.AddMitigation(ok); err != nil {
		t.Fatal(err)
	}
	if err := k.AddMitigation(ok); err == nil {
		t.Error("duplicate mitigation must fail")
	}
}

func TestMitigationsSorted(t *testing.T) {
	k := MustDefaultKB()
	ms := k.Mitigations()
	for i := 1; i < len(ms); i++ {
		if ms[i-1].ID >= ms[i].ID {
			t.Fatalf("mitigations not sorted at %d: %s >= %s", i, ms[i-1].ID, ms[i].ID)
		}
	}
	ts := k.Techniques()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].ID >= ts[i].ID {
			t.Fatalf("techniques not sorted at %d", i)
		}
	}
}

func BenchmarkCVSSBaseScore(b *testing.B) {
	v, err := ParseCVSS31("CVSS:3.1/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.BaseScore() != 5.4 {
			b.Fatal("wrong score")
		}
	}
}

func BenchmarkKBQueries(b *testing.B) {
	k := MustDefaultKB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.VulnsFor("plc", "fw2.3")
		_ = k.TechniquesFor("workstation")
		_ = k.MitigationsFor("T-1566")
	}
}
