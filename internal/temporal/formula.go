// Package temporal implements linear temporal logic over finite traces
// (LTLf): the requirement-specification language of the framework. It is
// the substitute for Telingo's temporal extension of ASP: formulas can be
// evaluated directly over recorded qualitative traces, or unrolled over a
// bounded horizon into ASP rules for exhaustive model checking by the
// solver (paper §II-C).
package temporal

import (
	"fmt"

	"cpsrisk/internal/logic"
)

// Formula is an LTLf formula.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Truth constants.
type (
	// TrueF is the constant true formula.
	TrueF struct{}
	// FalseF is the constant false formula.
	FalseF struct{}
)

// Prop is an atomic proposition, a ground logic atom such as
// state(tank,overflow).
type Prop struct{ Atom logic.Atom }

// Unary connectives and temporal operators.
type (
	// NotF is logical negation.
	NotF struct{ Sub Formula }
	// NextF is the strong next operator: there is a next state and Sub
	// holds there.
	NextF struct{ Sub Formula }
	// WeakNextF holds if there is no next state, or Sub holds there.
	WeakNextF struct{ Sub Formula }
	// FinallyF is the eventually operator.
	FinallyF struct{ Sub Formula }
	// GloballyF is the always operator.
	GloballyF struct{ Sub Formula }
)

// Binary connectives and temporal operators.
type (
	// AndF is conjunction.
	AndF struct{ L, R Formula }
	// OrF is disjunction.
	OrF struct{ L, R Formula }
	// ImpliesF is implication.
	ImpliesF struct{ L, R Formula }
	// UntilF is the (strong) until operator.
	UntilF struct{ L, R Formula }
	// ReleaseF is the release operator.
	ReleaseF struct{ L, R Formula }
)

func (TrueF) isFormula()     {}
func (FalseF) isFormula()    {}
func (Prop) isFormula()      {}
func (NotF) isFormula()      {}
func (NextF) isFormula()     {}
func (WeakNextF) isFormula() {}
func (FinallyF) isFormula()  {}
func (GloballyF) isFormula() {}
func (AndF) isFormula()      {}
func (OrF) isFormula()       {}
func (ImpliesF) isFormula()  {}
func (UntilF) isFormula()    {}
func (ReleaseF) isFormula()  {}

// Constructor helpers.

// T returns the true formula.
func T() Formula { return TrueF{} }

// F returns the false formula.
func F() Formula { return FalseF{} }

// P builds an atomic proposition.
func P(pred string, args ...logic.Term) Formula {
	return Prop{Atom: logic.A(pred, args...)}
}

// PAtom wraps an existing atom as a proposition.
func PAtom(a logic.Atom) Formula { return Prop{Atom: a} }

// Not negates a formula.
func Not(f Formula) Formula { return NotF{Sub: f} }

// Next is the strong next operator.
func Next(f Formula) Formula { return NextF{Sub: f} }

// WeakNext is the weak next operator.
func WeakNext(f Formula) Formula { return WeakNextF{Sub: f} }

// Finally is the eventually operator.
func Finally(f Formula) Formula { return FinallyF{Sub: f} }

// Globally is the always operator.
func Globally(f Formula) Formula { return GloballyF{Sub: f} }

// And builds the conjunction of one or more formulas.
func And(fs ...Formula) Formula { return fold(fs, func(l, r Formula) Formula { return AndF{l, r} }) }

// Or builds the disjunction of one or more formulas.
func Or(fs ...Formula) Formula { return fold(fs, func(l, r Formula) Formula { return OrF{l, r} }) }

func fold(fs []Formula, join func(l, r Formula) Formula) Formula {
	switch len(fs) {
	case 0:
		return TrueF{}
	case 1:
		return fs[0]
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = join(out, f)
	}
	return out
}

// Implies builds l -> r.
func Implies(l, r Formula) Formula { return ImpliesF{L: l, R: r} }

// Until builds l U r.
func Until(l, r Formula) Formula { return UntilF{L: l, R: r} }

// Release builds l R r.
func Release(l, r Formula) Formula { return ReleaseF{L: l, R: r} }

// String implementations render in the parseable surface syntax.

// String implements fmt.Stringer.
func (TrueF) String() string { return "true" }

// String implements fmt.Stringer.
func (FalseF) String() string { return "false" }

// String implements fmt.Stringer.
func (p Prop) String() string { return p.Atom.String() }

// String implements fmt.Stringer.
func (f NotF) String() string { return "!" + paren(f.Sub) }

// String implements fmt.Stringer.
func (f NextF) String() string { return "X " + paren(f.Sub) }

// String implements fmt.Stringer.
func (f WeakNextF) String() string { return "WX " + paren(f.Sub) }

// String implements fmt.Stringer.
func (f FinallyF) String() string { return "F " + paren(f.Sub) }

// String implements fmt.Stringer.
func (f GloballyF) String() string { return "G " + paren(f.Sub) }

// String implements fmt.Stringer.
func (f AndF) String() string { return paren(f.L) + " & " + paren(f.R) }

// String implements fmt.Stringer.
func (f OrF) String() string { return paren(f.L) + " | " + paren(f.R) }

// String implements fmt.Stringer.
func (f ImpliesF) String() string { return paren(f.L) + " -> " + paren(f.R) }

// String implements fmt.Stringer.
func (f UntilF) String() string { return paren(f.L) + " U " + paren(f.R) }

// String implements fmt.Stringer.
func (f ReleaseF) String() string { return paren(f.L) + " R " + paren(f.R) }

func paren(f Formula) string {
	switch f.(type) {
	case TrueF, FalseF, Prop, NotF:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Props returns the distinct atomic propositions of the formula in
// first-appearance order.
func Props(f Formula) []logic.Atom {
	var out []logic.Atom
	seen := map[string]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch ff := f.(type) {
		case Prop:
			k := ff.Atom.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, ff.Atom)
			}
		case NotF:
			walk(ff.Sub)
		case NextF:
			walk(ff.Sub)
		case WeakNextF:
			walk(ff.Sub)
		case FinallyF:
			walk(ff.Sub)
		case GloballyF:
			walk(ff.Sub)
		case AndF:
			walk(ff.L)
			walk(ff.R)
		case OrF:
			walk(ff.L)
			walk(ff.R)
		case ImpliesF:
			walk(ff.L)
			walk(ff.R)
		case UntilF:
			walk(ff.L)
			walk(ff.R)
		case ReleaseF:
			walk(ff.L)
			walk(ff.R)
		}
	}
	walk(f)
	return out
}

// State is a single trace state: the set of true proposition keys.
type State map[string]bool

// Trace is a finite sequence of states.
type Trace []State

// TraceFromKeys builds a trace from per-step lists of true atom keys.
func TraceFromKeys(steps ...[]string) Trace {
	tr := make(Trace, len(steps))
	for i, step := range steps {
		st := make(State, len(step))
		for _, k := range step {
			st[k] = true
		}
		tr[i] = st
	}
	return tr
}

// Eval checks whether the trace satisfies the formula at position 0.
// An empty trace satisfies no strong-next/prop obligations (vacuous
// semantics: G φ holds, F φ fails).
func Eval(f Formula, tr Trace) bool { return evalAt(f, tr, 0) }

// EvalAt checks satisfaction at position i.
func EvalAt(f Formula, tr Trace, i int) bool { return evalAt(f, tr, i) }

func evalAt(f Formula, tr Trace, i int) bool {
	n := len(tr)
	if i >= n {
		// Past the end: only formulas vacuously true on the empty suffix.
		switch ff := f.(type) {
		case TrueF:
			return true
		case GloballyF, WeakNextF:
			return true
		case NotF:
			return !evalAt(ff.Sub, tr, i)
		case AndF:
			return evalAt(ff.L, tr, i) && evalAt(ff.R, tr, i)
		case OrF:
			return evalAt(ff.L, tr, i) || evalAt(ff.R, tr, i)
		case ImpliesF:
			return !evalAt(ff.L, tr, i) || evalAt(ff.R, tr, i)
		case ReleaseF:
			return true
		default:
			return false
		}
	}
	switch ff := f.(type) {
	case TrueF:
		return true
	case FalseF:
		return false
	case Prop:
		return tr[i][ff.Atom.Key()]
	case NotF:
		return !evalAt(ff.Sub, tr, i)
	case NextF:
		return i+1 < n && evalAt(ff.Sub, tr, i+1)
	case WeakNextF:
		return i+1 >= n || evalAt(ff.Sub, tr, i+1)
	case FinallyF:
		for j := i; j < n; j++ {
			if evalAt(ff.Sub, tr, j) {
				return true
			}
		}
		return false
	case GloballyF:
		for j := i; j < n; j++ {
			if !evalAt(ff.Sub, tr, j) {
				return false
			}
		}
		return true
	case AndF:
		return evalAt(ff.L, tr, i) && evalAt(ff.R, tr, i)
	case OrF:
		return evalAt(ff.L, tr, i) || evalAt(ff.R, tr, i)
	case ImpliesF:
		return !evalAt(ff.L, tr, i) || evalAt(ff.R, tr, i)
	case UntilF:
		for j := i; j < n; j++ {
			if evalAt(ff.R, tr, j) {
				return true
			}
			if !evalAt(ff.L, tr, j) {
				return false
			}
		}
		return false
	case ReleaseF:
		for j := i; j < n; j++ {
			if !evalAt(ff.R, tr, j) {
				return false
			}
			if evalAt(ff.L, tr, j) {
				return true
			}
		}
		return true
	default:
		return false
	}
}

// describe renders a compact human explanation of the formula class, used
// in reports.
func describe(f Formula) string {
	switch f.(type) {
	case GloballyF:
		return "invariant"
	case FinallyF:
		return "liveness"
	case ImpliesF:
		return "conditional"
	default:
		return "property"
	}
}

// Kind classifies a requirement formula for reporting ("invariant",
// "liveness", "conditional", "property").
func Kind(f Formula) string { return describe(f) }
