package sysmodel

import (
	"fmt"
)

// RefineComponent replaces a composite component with its inner model
// (paper Fig. 4 asset refinement: the Engineering Workstation expands into
// e-mail client, browser, infected computer...). Inner component IDs are
// namespaced as "<outer>.<inner>"; connections touching the composite's
// outer ports are rewired through the port bindings. The receiver is
// modified in place; use Clone first to keep the abstract model.
func (m *Model) RefineComponent(id string) error {
	comp, ok := m.Component(id)
	if !ok {
		return fmt.Errorf("sysmodel: refine: unknown component %q", id)
	}
	if !comp.IsComposite() {
		return fmt.Errorf("sysmodel: refine: component %q is not composite", id)
	}
	sub := comp.Sub
	prefix := id + "."

	// Remove the composite from the model.
	kept := m.Components[:0]
	for _, c := range m.Components {
		if c.ID != id {
			kept = append(kept, c)
		}
	}
	m.Components = kept
	m.index = nil

	// Insert namespaced inner components.
	for _, inner := range sub.Components {
		clone := cloneComponent(inner)
		clone.ID = prefix + inner.ID
		if err := m.AddComponent(clone); err != nil {
			return err
		}
	}
	// Inner connections, namespaced.
	for _, conn := range sub.Connections {
		m.Connections = append(m.Connections, Connection{
			From:  PortRef{Component: prefix + conn.From.Component, Port: conn.From.Port},
			To:    PortRef{Component: prefix + conn.To.Component, Port: conn.To.Port},
			Flow:  conn.Flow,
			Label: conn.Label,
		})
	}
	// Rewire outer connections through bindings.
	for i := range m.Connections {
		conn := &m.Connections[i]
		if conn.From.Component == id {
			ref, err := resolveBinding(comp, conn.From.Port, prefix)
			if err != nil {
				return err
			}
			conn.From = ref
		}
		if conn.To.Component == id {
			ref, err := resolveBinding(comp, conn.To.Port, prefix)
			if err != nil {
				return err
			}
			conn.To = ref
		}
	}
	// Inner requirements propagate up (IDs must stay unique).
	m.Requirements = append(m.Requirements, sub.Requirements...)
	return nil
}

func resolveBinding(comp *Component, outerPort, prefix string) (PortRef, error) {
	inner, ok := comp.Bindings[outerPort]
	if !ok {
		return PortRef{}, fmt.Errorf("sysmodel: refine: composite %q has no binding for connected port %q",
			comp.ID, outerPort)
	}
	return PortRef{Component: prefix + inner.Component, Port: inner.Port}, nil
}

// Composites lists the IDs of composite components.
func (m *Model) Composites() []string {
	var out []string
	for _, c := range m.Components {
		if c.IsComposite() {
			out = append(out, c.ID)
		}
	}
	return out
}

// RefineAll fully flattens the model by refining composites until none
// remain.
func (m *Model) RefineAll() error {
	for guard := 0; guard <= maxBindingDepth; guard++ {
		comps := m.Composites()
		if len(comps) == 0 {
			return nil
		}
		for _, id := range comps {
			if err := m.RefineComponent(id); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("sysmodel: refine: nesting deeper than %d", maxBindingDepth)
}
