package kb

import "fmt"

// DefaultKB returns the built-in curated knowledge base. The entries are a
// synthetic, self-consistent subset shaped after the public catalogs the
// paper uses (CWE / CVE+CVSS / CAPEC / MITRE ATT&CK for ICS): IDs follow
// the same numbering style (W-79 ~ CWE-79, T-0866 ~ ATT&CK ICS T0866), and
// the water-tank case study's attack chain (spearphishing link -> drive-by
// malware -> infected engineering workstation -> actuator reconfiguration)
// is fully represented, together with the paper's mitigations M1 "User
// Training" and M2 "Endpoint Security".
func DefaultKB() (*KB, error) {
	k := New()

	weaknesses := []*Weakness{
		{ID: "W-79", Name: "Improper Neutralization of Input During Web Page Generation",
			Patterns: []string{"P-591"}},
		{ID: "W-94", Name: "Improper Control of Generation of Code",
			Patterns: []string{"P-242"}},
		{ID: "W-287", Name: "Improper Authentication",
			Patterns: []string{"P-114"}},
		{ID: "W-306", Name: "Missing Authentication for Critical Function",
			Patterns: []string{"P-114"}},
		{ID: "W-319", Name: "Cleartext Transmission of Sensitive Information",
			Patterns: []string{"P-158"}},
		{ID: "W-400", Name: "Uncontrolled Resource Consumption",
			Patterns: []string{"P-125"}},
		{ID: "W-494", Name: "Download of Code Without Integrity Check",
			Patterns: []string{"P-185"}},
		{ID: "W-502", Name: "Deserialization of Untrusted Data",
			Patterns: []string{"P-586"}},
		{ID: "W-787", Name: "Out-of-bounds Write",
			Patterns: []string{"P-100"}},
		{ID: "W-1188", Name: "Insecure Default Initialization of Resource",
			Patterns: []string{"P-114"}},
	}

	tactics := []*Tactic{
		{ID: "TA-01", Name: "Initial Access"},
		{ID: "TA-02", Name: "Execution"},
		{ID: "TA-03", Name: "Persistence"},
		{ID: "TA-04", Name: "Lateral Movement"},
		{ID: "TA-05", Name: "Inhibit Response Function"},
		{ID: "TA-06", Name: "Impair Process Control"},
		{ID: "TA-07", Name: "Impact"},
		{ID: "TA-08", Name: "Collection"},
	}

	mitigations := []*Mitigation{
		{ID: "M-0917", Name: "User Training", Cost: 20, MaintenanceCost: 5,
			Description: "Train users to recognize spearphishing and social engineering."},
		{ID: "M-0949", Name: "Endpoint Security", Cost: 45, MaintenanceCost: 10,
			Description: "Antivirus/anti-malware and endpoint detection on workstations."},
		{ID: "M-0930", Name: "Network Segmentation", Cost: 80, MaintenanceCost: 15,
			Description: "Segment IT and OT networks; restrict lateral movement."},
		{ID: "M-0932", Name: "Multi-factor Authentication", Cost: 35, MaintenanceCost: 8,
			Description: "Require MFA for remote and engineering access."},
		{ID: "M-0951", Name: "Update Software", Cost: 25, MaintenanceCost: 12,
			Description: "Patch management for known vulnerabilities."},
		{ID: "M-0945", Name: "Code Signing", Cost: 40, MaintenanceCost: 6,
			Description: "Verify firmware and software integrity before installation."},
		{ID: "M-0807", Name: "Network Allowlists", Cost: 30, MaintenanceCost: 7,
			Description: "Allowlist communication peers of control devices."},
		{ID: "M-0810", Name: "Out-of-Band Communications Channel", Cost: 55, MaintenanceCost: 9,
			Description: "Redundant alarm channel independent of the primary HMI path."},
		{ID: "M-0815", Name: "Watchdog Timers", Cost: 15, MaintenanceCost: 3,
			Description: "Hardware watchdogs reset hung controllers."},
		{ID: "M-0801", Name: "Access Management", Cost: 28, MaintenanceCost: 6,
			Description: "Role-based access control on engineering functions."},
	}

	techniques := []*Technique{
		{ID: "T-1566", Name: "Spearphishing Link", TacticID: "TA-01",
			ComponentTypes:   []string{"email_client", "workstation"},
			RequiresExposure: "public", FaultMode: "compromised",
			Mitigations: []string{"M-0917"},
			AttackCost:  "L", Likelihood: "H",
			Description: "User opens a link in a spam e-mail (paper §VII scenario)."},
		{ID: "T-1189", Name: "Drive-by Compromise", TacticID: "TA-01",
			ComponentTypes:   []string{"browser", "workstation"},
			RequiresExposure: "public", FaultMode: "compromised",
			Mitigations: []string{"M-0949", "M-0951"},
			AttackCost:  "M", Likelihood: "M",
			Description: "Malware downloaded from a malicious website infects the computer."},
		{ID: "T-0866", Name: "Exploitation of Remote Services", TacticID: "TA-04",
			ComponentTypes:   []string{"workstation", "scada_server", "historian", "controller", "plc"},
			RequiresExposure: "adjacent", FaultMode: "compromised",
			Mitigations: []string{"M-0930", "M-0951"},
			AttackCost:  "M", Likelihood: "M",
			Description: "Exploit a service reachable from an already compromised neighbor."},
		{ID: "T-0886", Name: "Remote Services", TacticID: "TA-04",
			ComponentTypes:   []string{"workstation", "scada_server", "hmi"},
			RequiresExposure: "adjacent", FaultMode: "compromised",
			Mitigations: []string{"M-0932", "M-0801"},
			AttackCost:  "L", Likelihood: "M",
			Description: "Abuse legitimate remote-access services with stolen credentials."},
		{ID: "T-0831", Name: "Manipulation of Control", TacticID: "TA-06",
			ComponentTypes:   []string{"plc", "controller", "valve_controller"},
			RequiresExposure: "adjacent", FaultMode: "bad_command",
			Mitigations: []string{"M-0807", "M-0945"},
			AttackCost:  "H", Likelihood: "L",
			Description: "Send forged control commands to actuator controllers."},
		{ID: "T-0855", Name: "Unauthorized Command Message", TacticID: "TA-06",
			ComponentTypes:   []string{"plc", "controller", "valve_controller", "valve"},
			RequiresExposure: "adjacent", FaultMode: "bad_command",
			Mitigations: []string{"M-0807", "M-0930"},
			AttackCost:  "M", Likelihood: "M",
			Description: "Directly reconfigure input/output valve actuators (case-study F4 effect)."},
		{ID: "T-0814", Name: "Denial of Service", TacticID: "TA-05",
			ComponentTypes:   []string{"hmi", "scada_server", "historian"},
			RequiresExposure: "adjacent", FaultMode: "no_signal",
			Mitigations: []string{"M-0815", "M-0930"},
			AttackCost:  "L", Likelihood: "M",
			Description: "Exhaust the HMI/server so that operator alerts are lost."},
		{ID: "T-0878", Name: "Alarm Suppression", TacticID: "TA-05",
			ComponentTypes:   []string{"hmi"},
			RequiresExposure: "adjacent", FaultMode: "no_signal",
			Mitigations: []string{"M-0810"},
			AttackCost:  "H", Likelihood: "L",
			Description: "Suppress alarms so the operator never sees the violation."},
		{ID: "T-0817", Name: "Drive-by Leading to Persistence", TacticID: "TA-03",
			ComponentTypes:   []string{"workstation", "os"},
			RequiresExposure: "adjacent", FaultMode: "compromised",
			Mitigations: []string{"M-0949"},
			AttackCost:  "M", Likelihood: "L",
			Description: "Install persistent implant on the engineering OS."},
		{ID: "T-0846", Name: "Remote System Discovery", TacticID: "TA-08",
			RequiresExposure: "adjacent", FaultMode: "",
			Mitigations: []string{"M-0930"},
			AttackCost:  "VL", Likelihood: "H",
			Description: "Enumerate reachable OT assets from a compromised host."},
		{ID: "T-0883", Name: "Internet Accessible Device", TacticID: "TA-01",
			ComponentTypes:   []string{"plc", "hmi", "controller"},
			RequiresExposure: "public", FaultMode: "compromised",
			Mitigations: []string{"M-0930", "M-0807"},
			AttackCost:  "L", Likelihood: "M",
			Description: "Directly reach an exposed control device from the Internet."},
		{ID: "T-0826", Name: "Loss of Availability", TacticID: "TA-07",
			ComponentTypes:   []string{"scada_server", "historian"},
			RequiresExposure: "adjacent", FaultMode: "crash",
			Mitigations: []string{"M-0815"},
			AttackCost:  "M", Likelihood: "L",
			Description: "Crash supervisory services."},
		{ID: "T-1078", Name: "Valid Accounts", TacticID: "TA-01",
			ComponentTypes:   []string{"workstation", "scada_server"},
			RequiresExposure: "public", FaultMode: "compromised",
			Mitigations: []string{"M-0932", "M-0801"},
			AttackCost:  "M", Likelihood: "M",
			Description: "Log in with stolen or default credentials."},
		{ID: "T-0873", Name: "Project File Infection", TacticID: "TA-02",
			ComponentTypes:   []string{"workstation", "plc"},
			RequiresExposure: "adjacent", FaultMode: "bad_command",
			Mitigations: []string{"M-0945"},
			AttackCost:  "H", Likelihood: "VL",
			Description: "Tamper with controller project files on the engineering host."},
	}

	patterns := []*AttackPattern{
		{ID: "P-98", Name: "Phishing", Techniques: []string{"T-1566"}, Severity: "H"},
		{ID: "P-100", Name: "Overflow Buffers", Techniques: []string{"T-0866"}, Severity: "VH"},
		{ID: "P-114", Name: "Authentication Abuse", Techniques: []string{"T-1078", "T-0886"}, Severity: "H"},
		{ID: "P-125", Name: "Flooding", Techniques: []string{"T-0814"}, Severity: "M"},
		{ID: "P-158", Name: "Sniffing Network Traffic", Techniques: []string{"T-0846"}, Severity: "L"},
		{ID: "P-185", Name: "Malicious Software Download", Techniques: []string{"T-1189"}, Severity: "H"},
		{ID: "P-242", Name: "Code Injection", Techniques: []string{"T-0873"}, Severity: "VH"},
		{ID: "P-586", Name: "Object Injection", Techniques: []string{"T-0866"}, Severity: "H"},
		{ID: "P-591", Name: "Reflected XSS", Techniques: []string{"T-1189"}, Severity: "M"},
	}

	vulns := []*Vulnerability{
		{ID: "V-2023-0101", ComponentType: "email_client", Versions: []string{"1.0", "1.1"},
			WeaknessID: "W-79", FaultMode: "compromised",
			Mitigations: []string{"M-0951", "M-0917"},
			Vector:      "CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:H/I:H/A:N",
			Description: "HTML e-mail rendering allows script execution."},
		{ID: "V-2023-0102", ComponentType: "browser", Versions: []string{"11.2"},
			WeaknessID: "W-494", FaultMode: "compromised",
			Mitigations: []string{"M-0951", "M-0949"},
			Vector:      "CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H",
			Description: "Drive-by download without integrity check."},
		{ID: "V-2023-0103", ComponentType: "os", Versions: nil,
			WeaknessID: "W-787", FaultMode: "compromised",
			Mitigations: []string{"M-0951"},
			Vector:      "CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H",
			Description: "Local privilege escalation via heap overflow."},
		{ID: "V-2023-0104", ComponentType: "workstation", Versions: nil,
			WeaknessID: "W-287", FaultMode: "compromised",
			Mitigations: []string{"M-0801", "M-0932"},
			Vector:      "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
			Description: "Remote management interface with default credentials."},
		{ID: "V-2023-0105", ComponentType: "plc", Versions: []string{"fw2.3"},
			WeaknessID: "W-306", FaultMode: "bad_command",
			Mitigations: []string{"M-0951", "M-0807"},
			Vector:      "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:C/C:N/I:H/A:H",
			Description: "Unauthenticated write of actuator setpoints."},
		{ID: "V-2023-0106", ComponentType: "valve_controller", Versions: nil,
			WeaknessID: "W-306", FaultMode: "bad_command",
			Mitigations: []string{"M-0807"},
			Vector:      "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:H/A:N",
			Description: "Unauthenticated valve reconfiguration protocol."},
		{ID: "V-2023-0107", ComponentType: "hmi", Versions: nil,
			WeaknessID: "W-400", FaultMode: "no_signal",
			Mitigations: []string{"M-0810"},
			Vector:      "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H",
			Description: "Alarm queue exhaustion silences operator alerts."},
		{ID: "V-2023-0108", ComponentType: "scada_server", Versions: []string{"5.0"},
			WeaknessID: "W-502", FaultMode: "crash",
			Mitigations: []string{"M-0951"},
			Vector:      "CVSS:3.1/AV:N/AC:H/PR:L/UI:N/S:U/C:H/I:H/A:H",
			Description: "Unsafe deserialization in tag import."},
		{ID: "V-2023-0109", ComponentType: "historian", Versions: nil,
			WeaknessID: "W-319", FaultMode: "compromised",
			Mitigations: []string{"M-0930"},
			Vector:      "CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N",
			Description: "Cleartext historian protocol leaks process data."},
		{ID: "V-2023-0110", ComponentType: "plc", Versions: []string{"fw2.3", "fw2.4"},
			WeaknessID: "W-1188", FaultMode: "compromised",
			Mitigations: []string{"M-0951", "M-0807"},
			Vector:      "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H",
			Description: "Debug service enabled by default, reachable over the network."},
		{ID: "V-2023-0111", ComponentType: "sensor", Versions: nil,
			WeaknessID: "W-306", FaultMode: "no_signal",
			Mitigations: []string{"M-0807"},
			Vector:      "CVSS:3.1/AV:A/AC:H/PR:N/UI:N/S:U/C:N/I:L/A:H",
			Description: "Sensor bus allows unauthenticated suppression frames."},
		{ID: "V-2023-0112", ComponentType: "workstation", Versions: []string{"10"},
			WeaknessID: "W-94", FaultMode: "compromised",
			Mitigations: []string{"M-0949", "M-0917"},
			Vector:      "CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H",
			Description: "Macro execution in engineering documents."},
	}

	for _, w := range weaknesses {
		if err := k.AddWeakness(w); err != nil {
			return nil, err
		}
	}
	for _, t := range tactics {
		if err := k.AddTactic(t); err != nil {
			return nil, err
		}
	}
	for _, m := range mitigations {
		if err := k.AddMitigation(m); err != nil {
			return nil, err
		}
	}
	for _, t := range techniques {
		if err := k.AddTechnique(t); err != nil {
			return nil, err
		}
	}
	for _, p := range patterns {
		if err := k.AddPattern(p); err != nil {
			return nil, err
		}
	}
	for _, v := range vulns {
		if err := k.AddVulnerability(v); err != nil {
			return nil, err
		}
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("kb: default catalog inconsistent: %w", err)
	}
	return k, nil
}

// MustDefaultKB panics if the built-in catalog is inconsistent. The
// catalog is static, so this is a programming error, caught by tests.
func MustDefaultKB() *KB {
	k, err := DefaultKB()
	if err != nil {
		panic(err)
	}
	return k
}
