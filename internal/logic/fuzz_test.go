package logic

import "testing"

// FuzzParse: the parser must never panic, and anything it accepts must
// render back into parseable text with a stable fixpoint.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(1).",
		"a :- not b. b :- not a.",
		"{ active(F) : candidate(F) } 2.",
		"1 { q(R,C) : col(C) } 1 :- row(R).",
		"cost(C1) :- cost(C), C1 = C * 2 + 1.",
		"#minimize { W@1,F : active(F), weight(F,W) }.",
		":~ pick(a). [3@1, a]",
		`label(x, "quoted \"string\"").`,
		"time(0..5). last(T) :- time(T), not time(T+1).",
		"% comment only",
		"p :- q, r, not s, X < 3.",
		"#show p/1.",
		"p(-3). q(1-2).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		text := prog.String()
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("rendered program fails to re-parse: %v\noriginal: %q\nrendered: %q",
				err, src, text)
		}
		if prog2.String() != text {
			t.Fatalf("rendering not a fixpoint:\nfirst:  %q\nsecond: %q", text, prog2.String())
		}
	})
}
