package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunASPBudget(t *testing.T) {
	if err := run([]string{"-asp", "-budget", "40", "-nocegar"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("expected flag error")
	}
}
