package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewEmptySpecIsInert(t *testing.T) {
	inj, err := New(1, "")
	if err != nil || inj != nil {
		t.Fatalf("New(empty) = %v, %v; want nil, nil", inj, err)
	}
	// Nil injector: every method is a safe no-op.
	if err := inj.Fire("anything"); err != nil {
		t.Fatalf("nil Fire = %v", err)
	}
	inj.BindCancel(func() {})
	if inj.Fired("x") != 0 || inj.Counts() != nil {
		t.Fatal("nil injector should report nothing")
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, spec := range []string{
		"noequals",
		"site=err",          // missing @arrival
		"site=bogus@1",      // unknown action
		"site=err@0",        // arrival must be >= 1
		"site=err@-3",       //
		"site=err@x",        //
		"site=err@r0",       // random bound must be >= 1
		"a=err@1,a=panic@2", // duplicate site
		"=err@1",            // empty site
	} {
		if _, err := New(1, spec); err == nil {
			t.Errorf("New(%q): want error", spec)
		}
	}
}

func TestFireOnNthArrival(t *testing.T) {
	inj, err := New(1, "s=err@3")
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		err := inj.Fire("s")
		if (n == 3) != (err != nil) {
			t.Fatalf("arrival %d: err = %v", n, err)
		}
		if n == 3 {
			ie, ok := IsInjected(err)
			if !ok || ie.Site != "s" || ie.Arrival != 3 || ie.Torn {
				t.Fatalf("injected = %+v", ie)
			}
			if IsTransient(err) {
				t.Fatal("err action must not be transient")
			}
		}
	}
	if inj.Fired("s") != 1 {
		t.Fatalf("fired = %d", inj.Fired("s"))
	}
}

func TestFireEveryArrival(t *testing.T) {
	inj, err := New(1, "s=transient@*")
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		if err := inj.Fire("s"); !IsTransient(err) {
			t.Fatalf("arrival %d: %v", n, err)
		}
	}
}

func TestSeededArrivalDeterministic(t *testing.T) {
	pick := func(seed int64) int64 {
		inj, err := New(seed, "s=err@r10")
		if err != nil {
			t.Fatal(err)
		}
		for n := int64(1); n <= 10; n++ {
			if inj.Fire("s") != nil {
				return n
			}
		}
		t.Fatal("never fired within bound")
		return 0
	}
	a, b := pick(7), pick(7)
	if a != b {
		t.Fatalf("same seed, different arrivals: %d vs %d", a, b)
	}
	// Different sites under the same seed should not all collapse onto
	// the same arrival (spread check over a handful of sites).
	inj, err := New(7, "a=err@r1000,b=err@r1000,c=err@r1000")
	if err != nil {
		t.Fatal(err)
	}
	arrivals := map[int64]bool{}
	for _, site := range []string{"a", "b", "c"} {
		arrivals[inj.rules[site].at] = true
	}
	if len(arrivals) < 2 {
		t.Fatalf("sites all armed at the same arrival: %v", arrivals)
	}
}

func TestPanicAction(t *testing.T) {
	inj, err := New(1, "s=panic@1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	inj.Fire("s")
}

func TestCancelAction(t *testing.T) {
	inj, err := New(1, "s=cancel@2")
	if err != nil {
		t.Fatal(err)
	}
	cancelled := false
	inj.BindCancel(func() { cancelled = true })
	if err := inj.Fire("s"); err != nil || cancelled {
		t.Fatalf("arrival 1: err=%v cancelled=%v", err, cancelled)
	}
	if err := inj.Fire("s"); err != nil || !cancelled {
		t.Fatalf("arrival 2: err=%v cancelled=%v", err, cancelled)
	}
	// Unbound cancel is a no-op, not a crash.
	inj2, _ := New(1, "s=cancel@1")
	if err := inj2.Fire("s"); err != nil {
		t.Fatal(err)
	}
}

func TestTornAction(t *testing.T) {
	inj, err := New(1, "s=torn@1")
	if err != nil {
		t.Fatal(err)
	}
	err = inj.Fire("s")
	if !IsTorn(err) {
		t.Fatalf("want torn, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("torn is not transient")
	}
}

func TestConcurrentFireCountsEveryArrival(t *testing.T) {
	inj, err := New(1, "s=err@64")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var fired int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 16; n++ {
				if inj.Fire("s") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 || inj.Fired("s") != 1 {
		t.Fatalf("fired %d times (counter %d), want exactly 1", fired, inj.Fired("s"))
	}
}

func TestContextCarriage(t *testing.T) {
	inj, err := New(1, "s=err@1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWith(context.Background(), inj)
	if FromContext(ctx) != inj {
		t.Fatal("injector did not ride the context")
	}
	if FromContext(context.Background()) != nil || FromContext(nil) != nil {
		t.Fatal("missing injector must read as nil")
	}
	if got := ContextWith(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("nil injector must not be installed")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvSpec, "")
	inj, err := FromEnv()
	if inj != nil || err != nil {
		t.Fatalf("unset env: %v, %v", inj, err)
	}
	t.Setenv(EnvSpec, "s=err@2")
	t.Setenv(EnvSeed, "42")
	inj, err = FromEnv()
	if err != nil || inj == nil || inj.Seed() != 42 {
		t.Fatalf("FromEnv = %v, %v", inj, err)
	}
	t.Setenv(EnvSeed, "notanumber")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad seed must error")
	}
	t.Setenv(EnvSeed, "")
	t.Setenv(EnvSpec, "bogus")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad spec must error")
	}
}

func TestTransientWrapping(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must stay nil")
	}
	base := errors.New("boom")
	err := Transient(base)
	if !IsTransient(err) || !errors.Is(err, base) {
		t.Fatalf("wrapping broken: %v", err)
	}
	if IsTransient(base) {
		t.Fatal("unwrapped error must not read transient")
	}
	wrapped := fmt.Errorf("stage: %w", err)
	if !IsTransient(wrapped) {
		t.Fatal("IsTransient must see through wrapping")
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 3, 0, func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Retry(context.Background(), 5, 0, func() error { calls++; return perm })
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 2, 0, func() error {
		calls++
		return Transient(errors.New("always"))
	})
	if !IsTransient(err) || calls != 3 { // initial + 2 retries
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	start := time.Now()
	err := Retry(ctx, 10, time.Hour, func() error {
		calls++
		return Transient(errors.New("never"))
	})
	if !IsTransient(err) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled retry must not sleep out its backoff")
	}
}
