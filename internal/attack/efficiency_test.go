package attack

import (
	"testing"
)

func TestMostEfficientAttacks(t *testing.T) {
	m, lib, k := setup(t)
	g, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	goals := []Goal{
		{Target: "v1", Fault: "bad_command", Loss: 1000},   // deep but valuable
		{Target: "panel", Fault: "no_signal", Loss: 50},    // shallower, low loss
		{Target: "ews", Fault: "compromised", Loss: 100},   // entry-level
		{Target: "v1", Fault: "compromised", Loss: 999999}, // unreachable goal
	}
	rated := g.MostEfficientAttacks(goals)
	if len(rated) != 3 {
		t.Fatalf("rated = %d (unreachable goal must be dropped)", len(rated))
	}
	// Ranked by efficiency descending.
	for i := 1; i < len(rated); i++ {
		if rated[i-1].Efficiency < rated[i].Efficiency {
			t.Fatalf("ranking broken at %d: %v", i, rated)
		}
	}
	// Every rated attack's efficiency is loss/cost of its own attack.
	for _, r := range rated {
		if want := float64(r.Goal.Loss) / float64(r.Attack.Cost); r.Efficiency != want {
			t.Errorf("efficiency %v != %v for %v", r.Efficiency, want, r.Goal)
		}
	}
	// The high-loss physical goal dominates the low-loss shallow one.
	if rated[len(rated)-1].Goal.Target == "v1" && rated[len(rated)-1].Goal.Loss == 1000 {
		t.Errorf("valuable deep goal ranked last: %v", rated)
	}
}

func TestMostEfficientAttacksEmpty(t *testing.T) {
	m, lib, k := setup(t)
	c, _ := m.Component("ews")
	c.SetAttr("exposure", "internal")
	g, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MostEfficientAttacks([]Goal{{Target: "v1", Fault: "bad_command", Loss: 100}}); len(got) != 0 {
		t.Errorf("no entry points -> no attacks, got %v", got)
	}
}
