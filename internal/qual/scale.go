// Package qual implements the qualitative-modeling substrate of the
// framework: ordered categorical scales, quantity spaces with landmarks,
// sign algebra, and qualitative states (magnitude + trend).
//
// Qualitative modeling partitions continuous domains into clusters of
// identical or similar behaviour along landmarks and represents them by a
// discrete model at the granularity of clusters (paper §II-B). It is the
// "lingua franca" shared by the IT and OT parts of the system model and by
// the risk-evaluation machinery (O-RA categories VL..VH).
package qual

import (
	"errors"
	"fmt"
	"strings"
)

// Level is an index into an ordered Scale. Levels are ordinal: comparisons
// are meaningful, arithmetic only through the saturating Scale operations.
type Level int

// Scale is an immutable ordered categorical scale, e.g. the five-point
// O-RA scale VL < L < M < H < VH, or a workload scale
// low < medium < high < overloaded.
type Scale struct {
	name   string
	labels []string
	index  map[string]Level
}

// ErrUnknownLabel is returned when a label is not a member of the scale.
var ErrUnknownLabel = errors.New("qual: unknown scale label")

// NewScale builds a scale from ordered labels (lowest first). Labels must be
// unique and non-empty.
func NewScale(name string, labels ...string) (*Scale, error) {
	if len(labels) < 2 {
		return nil, fmt.Errorf("qual: scale %q needs at least 2 labels, got %d", name, len(labels))
	}
	index := make(map[string]Level, len(labels))
	copied := make([]string, len(labels))
	for i, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("qual: scale %q has empty label at position %d", name, i)
		}
		if _, dup := index[l]; dup {
			return nil, fmt.Errorf("qual: scale %q has duplicate label %q", name, l)
		}
		index[l] = Level(i)
		copied[i] = l
	}
	return &Scale{name: name, labels: copied, index: index}, nil
}

// MustScale is like NewScale but panics on error. Intended for package-level
// construction of well-known scales.
func MustScale(name string, labels ...string) *Scale {
	s, err := NewScale(name, labels...)
	if err != nil {
		panic(err)
	}
	return s
}

// FiveLevel returns the canonical O-RA five-point scale VL<L<M<H<VH used
// throughout the paper's risk quantization (§IV-B, Table I).
func FiveLevel() *Scale { return _fiveLevel }

var _fiveLevel = MustScale("o-ra", "VL", "L", "M", "H", "VH")

// Canonical level constants for the five-point O-RA scale.
const (
	VeryLow  Level = 0
	Low      Level = 1
	Medium   Level = 2
	High     Level = 3
	VeryHigh Level = 4
)

// Name returns the scale's name.
func (s *Scale) Name() string { return s.name }

// Size returns the number of levels.
func (s *Scale) Size() int { return len(s.labels) }

// Min returns the lowest level (always 0).
func (s *Scale) Min() Level { return 0 }

// Max returns the highest level.
func (s *Scale) Max() Level { return Level(len(s.labels) - 1) }

// Valid reports whether l is a level of this scale.
func (s *Scale) Valid(l Level) bool { return l >= 0 && int(l) < len(s.labels) }

// Label returns the label of level l, or "?" if out of range.
func (s *Scale) Label(l Level) string {
	if !s.Valid(l) {
		return "?"
	}
	return s.labels[l]
}

// Labels returns a copy of the ordered labels.
func (s *Scale) Labels() []string {
	out := make([]string, len(s.labels))
	copy(out, s.labels)
	return out
}

// Parse maps a label to its level. Matching is case-sensitive first, then
// case-insensitive as a convenience for hand-written models.
func (s *Scale) Parse(label string) (Level, error) {
	if l, ok := s.index[label]; ok {
		return l, nil
	}
	for i, candidate := range s.labels {
		if strings.EqualFold(candidate, label) {
			return Level(i), nil
		}
	}
	return 0, fmt.Errorf("%w: %q not in scale %q", ErrUnknownLabel, label, s.name)
}

// MustParse is Parse that panics; for tests and literals.
func (s *Scale) MustParse(label string) Level {
	l, err := s.Parse(label)
	if err != nil {
		panic(err)
	}
	return l
}

// Clamp saturates l into the scale's range.
func (s *Scale) Clamp(l Level) Level {
	if l < 0 {
		return 0
	}
	if l > s.Max() {
		return s.Max()
	}
	return l
}

// Add performs saturating ordinal addition of a signed step: the result of
// moving n levels up (or down for negative n) from l, clamped to the scale.
func (s *Scale) Add(l Level, n int) Level { return s.Clamp(l + Level(n)) }

// MaxOf returns the maximum of the given levels (clamped). At least one
// level must be supplied.
func (s *Scale) MaxOf(first Level, rest ...Level) Level {
	m := s.Clamp(first)
	for _, l := range rest {
		if c := s.Clamp(l); c > m {
			m = c
		}
	}
	return m
}

// MinOf returns the minimum of the given levels (clamped).
func (s *Scale) MinOf(first Level, rest ...Level) Level {
	m := s.Clamp(first)
	for _, l := range rest {
		if c := s.Clamp(l); c < m {
			m = c
		}
	}
	return m
}

// Mean returns the rounded midpoint of two levels — the standard qualitative
// combination when two ordinal factors contribute symmetrically.
func (s *Scale) Mean(a, b Level) Level {
	a, b = s.Clamp(a), s.Clamp(b)
	return (a + b + 1) / 2 // round toward the higher level (conservative)
}

// Distance returns |a-b| in levels.
func (s *Scale) Distance(a, b Level) int {
	d := int(s.Clamp(a)) - int(s.Clamp(b))
	if d < 0 {
		return -d
	}
	return d
}

// String implements fmt.Stringer.
func (s *Scale) String() string {
	return fmt.Sprintf("%s(%s)", s.name, strings.Join(s.labels, "<"))
}
