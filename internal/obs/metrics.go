package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a race-safe registry of named counters, gauges, and
// histograms — the single aggregation surface that replaces per-package
// Stats plumbing. Instruments are created on first use and live for the
// registry's lifetime; looking one up is a lock + map hit, so hot paths
// resolve their instruments once and then pay a single atomic per
// update. A nil *Registry hands out nil instruments whose methods are
// one-pointer-check no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use (nil for a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil for a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil
// for a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing race-safe counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by 1 (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a race-safe last-write-wins value.
type Gauge struct{ v atomic.Int64 }

// Set stores v (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every histogram: bucket 0
// holds observations <= 0, bucket i (i >= 1) holds values in
// [2^(i-1), 2^i), and the last bucket absorbs everything beyond. Fixed
// log-scale buckets keep Observe allocation-free and snapshots mergeable
// across runs.
const histBuckets = 64

// Histogram is a race-safe fixed-log-bucket histogram of int64
// observations (typically microseconds or counts).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0; stored as seen
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its log2 bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v)) // floor(log2(v)) + 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; races with concurrent first
		// observations are resolved by the CAS loops below.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketCount is one non-empty histogram bucket: observations v with
// Lo <= v < Hi (Lo is math.MinInt64 for the underflow bucket).
type BucketCount struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is an immutable histogram copy.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// MetricsSnapshot is a point-in-time copy of every instrument, ready for
// JSON export.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument. Nil-safe (returns nil). Concurrent
// updates during the copy land in either the snapshot or the next one;
// each individual instrument read is atomic.
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &MetricsSnapshot{}
	if len(r.counters) > 0 {
		out.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			out.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		out.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			out.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
			if hs.Count > 0 {
				hs.Min = h.min.Load()
				hs.Max = h.max.Load()
			}
			for i := range h.buckets {
				n := h.buckets[i].Load()
				if n == 0 {
					continue
				}
				b := BucketCount{Count: n}
				if i == 0 {
					b.Lo, b.Hi = math.MinInt64, 1
				} else {
					b.Lo = int64(1) << uint(i-1)
					if i == histBuckets-1 {
						b.Hi = math.MaxInt64
					} else {
						b.Hi = int64(1) << uint(i)
					}
				}
				hs.Buckets = append(hs.Buckets, b)
			}
			out.Histograms[name] = hs
		}
	}
	return out
}

// Render writes the snapshot as sorted "name value" lines, histograms as
// count/mean/min/max — the text-report projection.
func (m *MetricsSnapshot) Render() string {
	if m == nil {
		return ""
	}
	var sb strings.Builder
	names := make([]string, 0, len(m.Counters))
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-36s %d\n", n, m.Counters[n])
	}
	names = names[:0]
	for n := range m.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-36s %d\n", n, m.Gauges[n])
	}
	names = names[:0]
	for n := range m.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.Histograms[n]
		fmt.Fprintf(&sb, "  %-36s n=%d mean=%.1f min=%d max=%d\n",
			n, h.Count, h.Mean(), h.Min, h.Max)
	}
	return sb.String()
}
