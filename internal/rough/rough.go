// Package rough implements Rough Set Theory (paper §V-A, refs [29][30]):
// information/decision tables, indiscernibility partitions, lower/upper
// approximations with positive/boundary/negative regions, attribute
// dependency, reducts and core, and certain/possible decision rules. The
// framework uses it to reason with imprecise or incomplete risk-factor
// knowledge and to filter spurious solutions by examining the boundary
// region.
package rough

import (
	"fmt"
	"sort"
	"strings"
)

// Object is one row of an information system.
type Object struct {
	ID string
	// Values maps condition-attribute names to categorical values.
	Values map[string]string
	// Decision is the decision-attribute value (classification target).
	Decision string
}

// Table is a decision table: objects over condition attributes with a
// decision attribute.
type Table struct {
	Attributes []string
	Objects    []Object
}

// NewTable builds a table and validates that every object defines every
// attribute and IDs are unique.
func NewTable(attributes []string, objects []Object) (*Table, error) {
	if len(attributes) == 0 {
		return nil, fmt.Errorf("rough: no attributes")
	}
	seen := map[string]bool{}
	for _, a := range attributes {
		if seen[a] {
			return nil, fmt.Errorf("rough: duplicate attribute %q", a)
		}
		seen[a] = true
	}
	ids := map[string]bool{}
	for i, o := range objects {
		if o.ID == "" {
			return nil, fmt.Errorf("rough: object %d has empty ID", i)
		}
		if ids[o.ID] {
			return nil, fmt.Errorf("rough: duplicate object ID %q", o.ID)
		}
		ids[o.ID] = true
		for _, a := range attributes {
			if _, ok := o.Values[a]; !ok {
				return nil, fmt.Errorf("rough: object %q missing attribute %q", o.ID, a)
			}
		}
	}
	attrs := append([]string(nil), attributes...)
	objs := append([]Object(nil), objects...)
	return &Table{Attributes: attrs, Objects: objs}, nil
}

// signature renders an object's projection onto attrs.
func (t *Table) signature(o Object, attrs []string) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a + "=" + o.Values[a]
	}
	return strings.Join(parts, "|")
}

// Partition returns the indiscernibility classes (as index sets) induced
// by the attribute subset, in first-occurrence order.
func (t *Table) Partition(attrs []string) [][]int {
	groups := map[string][]int{}
	var order []string
	for i, o := range t.Objects {
		sig := t.signature(o, attrs)
		if _, ok := groups[sig]; !ok {
			order = append(order, sig)
		}
		groups[sig] = append(groups[sig], i)
	}
	out := make([][]int, 0, len(order))
	for _, sig := range order {
		out = append(out, groups[sig])
	}
	return out
}

// Approximation is the rough approximation of a target concept.
type Approximation struct {
	// Lower (positive region): objects certainly in the concept.
	Lower []string
	// Upper: objects possibly in the concept.
	Upper []string
	// Boundary = Upper \ Lower: undecidable with the given attributes.
	Boundary []string
	// Negative: objects certainly outside.
	Negative []string
}

// Approximate computes the rough approximation of the concept defined by
// member, using the indiscernibility of attrs.
func (t *Table) Approximate(attrs []string, member func(Object) bool) Approximation {
	var ap Approximation
	for _, class := range t.Partition(attrs) {
		all, any := true, false
		for _, i := range class {
			if member(t.Objects[i]) {
				any = true
			} else {
				all = false
			}
		}
		for _, i := range class {
			id := t.Objects[i].ID
			switch {
			case all:
				ap.Lower = append(ap.Lower, id)
				ap.Upper = append(ap.Upper, id)
			case any:
				ap.Upper = append(ap.Upper, id)
				ap.Boundary = append(ap.Boundary, id)
			default:
				ap.Negative = append(ap.Negative, id)
			}
		}
	}
	sort.Strings(ap.Lower)
	sort.Strings(ap.Upper)
	sort.Strings(ap.Boundary)
	sort.Strings(ap.Negative)
	return ap
}

// ApproximateDecision approximates the concept "Decision == value".
func (t *Table) ApproximateDecision(attrs []string, value string) Approximation {
	return t.Approximate(attrs, func(o Object) bool { return o.Decision == value })
}

// Accuracy is |Lower| / |Upper| (1.0 for crisp concepts, 0 when nothing is
// certain).
func (ap Approximation) Accuracy() float64 {
	if len(ap.Upper) == 0 {
		return 1.0
	}
	return float64(len(ap.Lower)) / float64(len(ap.Upper))
}

// Dependency returns gamma(attrs -> Decision): the fraction of objects in
// the positive region of the decision (i.e., classified with certainty).
func (t *Table) Dependency(attrs []string) float64 {
	if len(t.Objects) == 0 {
		return 1.0
	}
	positive := 0
	for _, class := range t.Partition(attrs) {
		dec := t.Objects[class[0]].Decision
		consistent := true
		for _, i := range class[1:] {
			if t.Objects[i].Decision != dec {
				consistent = false
				break
			}
		}
		if consistent {
			positive += len(class)
		}
	}
	return float64(positive) / float64(len(t.Objects))
}

// Reducts returns all minimal attribute subsets with the same dependency
// degree as the full attribute set, in size order then lexicographic.
// Exhaustive (2^n) — attribute counts in risk tables are small.
func (t *Table) Reducts() [][]string {
	full := t.Dependency(t.Attributes)
	n := len(t.Attributes)
	var candidates [][]string
	for mask := 1; mask < 1<<uint(n); mask++ {
		var attrs []string
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				attrs = append(attrs, t.Attributes[i])
			}
		}
		if t.Dependency(attrs) == full {
			candidates = append(candidates, attrs)
		}
	}
	// Keep minimal ones.
	var reducts [][]string
	for _, c := range candidates {
		minimal := true
		for _, other := range candidates {
			if len(other) < len(c) && subset(other, c) {
				minimal = false
				break
			}
		}
		if minimal {
			reducts = append(reducts, c)
		}
	}
	sort.Slice(reducts, func(i, j int) bool {
		if len(reducts[i]) != len(reducts[j]) {
			return len(reducts[i]) < len(reducts[j])
		}
		return strings.Join(reducts[i], ",") < strings.Join(reducts[j], ",")
	})
	return reducts
}

func subset(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// Core returns the intersection of all reducts: the indispensable
// attributes.
func (t *Table) Core() []string {
	reducts := t.Reducts()
	if len(reducts) == 0 {
		return nil
	}
	count := map[string]int{}
	for _, r := range reducts {
		for _, a := range r {
			count[a]++
		}
	}
	var core []string
	for a, c := range count {
		if c == len(reducts) {
			core = append(core, a)
		}
	}
	sort.Strings(core)
	return core
}

// Rule is an induced decision rule.
type Rule struct {
	// Conditions maps attributes to required values.
	Conditions map[string]string
	Decision   string
	// Certain rules come from lower approximations; possible rules from
	// boundary regions.
	Certain bool
	// Support counts matching objects.
	Support int
}

// String implements fmt.Stringer.
func (r Rule) String() string {
	keys := make([]string, 0, len(r.Conditions))
	for k := range r.Conditions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + r.Conditions[k]
	}
	kind := "certain"
	if !r.Certain {
		kind = "possible"
	}
	return fmt.Sprintf("if %s then %s (%s, support %d)",
		strings.Join(parts, " & "), r.Decision, kind, r.Support)
}

// DecisionRules induces rules over the given attributes: one certain rule
// per consistent indiscernibility class and one possible rule per
// (inconsistent class, decision) pair.
func (t *Table) DecisionRules(attrs []string) []Rule {
	var rules []Rule
	for _, class := range t.Partition(attrs) {
		conds := map[string]string{}
		for _, a := range attrs {
			conds[a] = t.Objects[class[0]].Values[a]
		}
		decisions := map[string]int{}
		var order []string
		for _, i := range class {
			d := t.Objects[i].Decision
			if _, ok := decisions[d]; !ok {
				order = append(order, d)
			}
			decisions[d]++
		}
		certain := len(decisions) == 1
		for _, d := range order {
			rules = append(rules, Rule{
				Conditions: conds,
				Decision:   d,
				Certain:    certain,
				Support:    decisions[d],
			})
		}
	}
	return rules
}

// Classify applies the induced rules to an observation: it returns the
// possible decisions (certain first) and whether the classification is
// certain. Unknown observations return no decisions.
func (t *Table) Classify(attrs []string, obs map[string]string) (decisions []string, certain bool) {
	rules := t.DecisionRules(attrs)
	seen := map[string]bool{}
	certain = true
	for _, r := range rules {
		match := true
		for a, v := range r.Conditions {
			if obs[a] != v {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if !r.Certain {
			certain = false
		}
		if !seen[r.Decision] {
			seen[r.Decision] = true
			decisions = append(decisions, r.Decision)
		}
	}
	if len(decisions) == 0 {
		return nil, false
	}
	if len(decisions) > 1 {
		certain = false
	}
	return decisions, certain
}
