package kb

import (
	"testing"
	"testing/quick"

	"cpsrisk/internal/qual"
)

// Reference scores cross-checked against the FIRST CVSS v3.1 calculator.
func TestBaseScoreReferenceVectors(t *testing.T) {
	tests := []struct {
		vector string
		want   float64
	}{
		// Fully critical network RCE (e.g. Log4Shell-class).
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0},
		// Classic 9.8 critical.
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8},
		// Heartbleed.
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5},
		// Stored XSS-style.
		{"CVSS:3.1/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N", 5.4},
		// Local privilege escalation.
		{"CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.8},
		// Physical, hard, no impact on integrity/availability.
		{"CVSS:3.1/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6},
		// No impact at all.
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0},
		// Scope-changed, no impact: still zero.
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:N/I:N/A:N", 0.0},
		// Adjacent DoS (typical ICS alarm flood).
		{"CVSS:3.1/AV:A/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 6.5},
		// Scope-changed low-priv.
		{"CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:C/C:H/I:H/A:H", 9.9},
		// Requires user interaction, unchanged scope.
		{"CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H", 8.8},
		// High complexity remote.
		{"CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", 8.1},
	}
	for _, tt := range tests {
		v, err := ParseCVSS31(tt.vector)
		if err != nil {
			t.Errorf("ParseCVSS31(%q): %v", tt.vector, err)
			continue
		}
		if got := v.BaseScore(); got != tt.want {
			t.Errorf("BaseScore(%q) = %.1f, want %.1f", tt.vector, got, tt.want)
		}
	}
}

func TestParseCVSSErrors(t *testing.T) {
	bad := []string{
		"",
		"CVSS:2.0/AV:N",
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H",          // missing A
		"CVSS:3.1/AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",      // bad AV
		"CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/Z:1",  // unknown metric
		"CVSS:3.1/AV:N/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // duplicate
		"CVSS:3.1/AVN",
	}
	for _, vec := range bad {
		if _, err := ParseCVSS31(vec); err == nil {
			t.Errorf("ParseCVSS31(%q) expected error", vec)
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	src := "CVSS:3.1/AV:A/AC:H/PR:L/UI:R/S:C/C:L/I:H/A:N"
	v, err := ParseCVSS31(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Vector() != src {
		t.Errorf("round trip = %q", v.Vector())
	}
}

func TestRoundup1(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{4.00, 4.0},
		{4.02, 4.1},
		{4.07, 4.1},
		{4.10, 4.1},
		{0, 0},
		{9.99999, 10.0},
		// The spec's own regression case: 8.6 * 1.08 floating artifact.
		{8.6 * 1.08, 9.3},
	}
	for _, tt := range tests {
		if got := roundup1(tt.in); got != tt.want {
			t.Errorf("roundup1(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestSeverityBuckets(t *testing.T) {
	tests := []struct {
		score float64
		want  string
		level qual.Level
	}{
		{0, "None", qual.VeryLow},
		{0.1, "Low", qual.Low},
		{3.9, "Low", qual.Low},
		{4.0, "Medium", qual.Medium},
		{6.9, "Medium", qual.Medium},
		{7.0, "High", qual.High},
		{8.9, "High", qual.High},
		{9.0, "Critical", qual.VeryHigh},
		{10.0, "Critical", qual.VeryHigh},
	}
	for _, tt := range tests {
		if got := Severity(tt.score); got != tt.want {
			t.Errorf("Severity(%v) = %q, want %q", tt.score, got, tt.want)
		}
		if got := QualLevel(tt.score); got != tt.level {
			t.Errorf("QualLevel(%v) = %v, want %v", tt.score, got, tt.level)
		}
	}
}

// Property: every valid metric combination yields a score in [0,10] with
// one decimal, and zero exactly when all three impacts are None.
func TestBaseScoreRangeProperty(t *testing.T) {
	avs := []string{"N", "A", "L", "P"}
	acs := []string{"L", "H"}
	prs := []string{"N", "L", "H"}
	uis := []string{"N", "R"}
	ss := []string{"U", "C"}
	cia := []string{"H", "L", "N"}
	count := 0
	for _, av := range avs {
		for _, ac := range acs {
			for _, pr := range prs {
				for _, ui := range uis {
					for _, s := range ss {
						for _, c := range cia {
							for _, i := range cia {
								for _, a := range cia {
									v := CVSS31{av, ac, pr, ui, s, c, i, a}
									score := v.BaseScore()
									count++
									if score < 0 || score > 10 {
										t.Fatalf("score out of range: %v -> %v", v.Vector(), score)
									}
									if r := roundup1(score); r != score {
										t.Fatalf("score not 1-decimal: %v -> %v", v.Vector(), score)
									}
									noImpact := c == "N" && i == "N" && a == "N"
									if noImpact != (score == 0) {
										t.Fatalf("zero-score rule violated: %v -> %v", v.Vector(), score)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if count != 4*2*3*2*2*27 {
		t.Fatalf("combinations covered = %d", count)
	}
}

// Property: raising any impact metric never lowers the score.
func TestBaseScoreMonotoneInImpact(t *testing.T) {
	levels := []string{"N", "L", "H"}
	rank := map[string]int{"N": 0, "L": 1, "H": 2}
	f := func(avI, acI, prI, uiI, sI uint8, c1, i1, a1, c2, i2, a2 uint8) bool {
		base := CVSS31{
			AttackVector:       []string{"N", "A", "L", "P"}[avI%4],
			AttackComplexity:   []string{"L", "H"}[acI%2],
			PrivilegesRequired: []string{"N", "L", "H"}[prI%3],
			UserInteraction:    []string{"N", "R"}[uiI%2],
			Scope:              []string{"U", "C"}[sI%2],
		}
		va, vb := base, base
		va.Confidentiality, va.Integrity, va.Availability = levels[c1%3], levels[i1%3], levels[a1%3]
		vb.Confidentiality, vb.Integrity, vb.Availability = levels[c2%3], levels[i2%3], levels[a2%3]
		aLeq := rank[va.Confidentiality] <= rank[vb.Confidentiality] &&
			rank[va.Integrity] <= rank[vb.Integrity] &&
			rank[va.Availability] <= rank[vb.Availability]
		if !aLeq {
			return true
		}
		return va.BaseScore() <= vb.BaseScore()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
