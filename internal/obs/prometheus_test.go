package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// parsePromText is a strict validator of the Prometheus text exposition
// format subset the exporter emits: optional # HELP / # TYPE lines per
// family, then `name{labels} value` samples. It checks lexical validity,
// that every sample belongs to a declared family of a known type, and
// that histogram bucket series are cumulative and monotone, ending at
// +Inf with the _count value. Returns sample name -> value.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+]+|\+Inf|-Inf|NaN)$`)
	types := map[string]string{}
	samples := map[string]float64{}
	var lastHist string
	var lastCum float64
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", i+1, line)
			}
			if !nameRe.MatchString(parts[2]) {
				t.Fatalf("line %d: bad metric name %q", i+1, parts[2])
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", i+1, parts[3])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(strings.TrimPrefix(valStr, "+"), 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("line %d: bad value %q: %v", i+1, valStr, err)
		}
		// Resolve the declaring family: histogram samples use the
		// base name with _bucket/_sum/_count suffixes.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE declaration", i+1, name)
		}
		if strings.HasSuffix(name, "_bucket") {
			if !strings.Contains(labels, `le="`) {
				t.Fatalf("line %d: bucket sample without le label: %q", i+1, line)
			}
			if name != lastHist {
				lastHist, lastCum = name, 0
			}
			if val < lastCum {
				t.Fatalf("line %d: non-monotone bucket series %q: %v < %v", i+1, name, val, lastCum)
			}
			lastCum = val
			if strings.Contains(labels, `le="+Inf"`) {
				lastHist, lastCum = "", 0
			}
		}
		samples[name+labels] = val
	}
	return samples
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sweep.scenarios").Add(42)
	r.Counter("artifact.hits").Add(3)
	r.Gauge("jobs.queue_depth").Set(7)
	h := r.Histogram("http.latency_us.assess")
	for _, v := range []int64{1, 3, 3, 100, 900, 1500, 1500, 1500, 7000, 100000} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples := parsePromText(t, text)

	if got := samples["cpsrisk_sweep_scenarios"]; got != 42 {
		t.Errorf("counter: got %v, want 42", got)
	}
	if got := samples["cpsrisk_jobs_queue_depth"]; got != 7 {
		t.Errorf("gauge: got %v, want 7", got)
	}
	if got := samples["cpsrisk_http_latency_us_assess_count"]; got != 10 {
		t.Errorf("hist count: got %v, want 10", got)
	}
	if got := samples["cpsrisk_http_latency_us_assess_sum"]; got != 112507 {
		t.Errorf("hist sum: got %v, want 112507", got)
	}
	if got := samples[`cpsrisk_http_latency_us_assess_bucket{le="+Inf"}`]; got != 10 {
		t.Errorf("hist +Inf bucket: got %v, want 10", got)
	}
	// Bucket [1,2) holds the single 1; le="1" is its inclusive bound.
	if got := samples[`cpsrisk_http_latency_us_assess_bucket{le="1"}`]; got != 1 {
		t.Errorf("hist le=1: got %v, want 1", got)
	}
	// Quantile gauges mirror the snapshot's estimates.
	hs := r.Snapshot().Histograms["http.latency_us.assess"]
	for q, want := range map[string]int64{"0.5": hs.P50, "0.95": hs.P95, "0.99": hs.P99} {
		key := fmt.Sprintf(`cpsrisk_http_latency_us_assess_quantile{quantile="%s"}`, q)
		if got := samples[key]; got != float64(want) {
			t.Errorf("quantile %s: got %v, want %d", q, got, want)
		}
	}
}

func TestWritePrometheusDeterministicAndNil(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(5)
	var one, two strings.Builder
	if err := r.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("successive expositions of an unchanged registry differ")
	}
	idx := strings.Index(one.String(), "cpsrisk_a")
	idx2 := strings.Index(one.String(), "cpsrisk_b")
	if idx < 0 || idx2 < 0 || idx > idx2 {
		t.Error("counters not emitted in sorted order")
	}
	if err := WritePrometheus(&one, nil); err != nil {
		t.Fatalf("nil snapshot: %v", err)
	}
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&one); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
}

func TestWritePrometheusOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wide")
	h.Observe(math.MaxInt64) // lands in the overflow bucket
	h.Observe(10)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if strings.Count(text, `le="+Inf"`) != 1 {
		t.Fatalf("want exactly one +Inf bucket line:\n%s", text)
	}
	parsePromText(t, text)
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	// 100 observations 1..100: exact quantiles are 50, 95, 99; log2
	// interpolation must land within the enclosing bucket (factor 2).
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["q"]
	if hs.P50 == 0 || hs.P95 == 0 || hs.P99 == 0 {
		t.Fatalf("quantile fields not populated: %+v", hs)
	}
	checks := []struct {
		q     float64
		exact int64
	}{{0.5, 50}, {0.95, 95}, {0.99, 99}}
	for _, c := range checks {
		got := hs.Quantile(c.q)
		if got < c.exact/2 || got > c.exact*2 {
			t.Errorf("Quantile(%v) = %d, want within [%d, %d]", c.q, got, c.exact/2, c.exact*2)
		}
	}
	if got := hs.Quantile(0); got != hs.Min {
		t.Errorf("Quantile(0) = %d, want Min %d", got, hs.Min)
	}
	if got := hs.Quantile(1); got != hs.Max {
		t.Errorf("Quantile(1) = %d, want Max %d", got, hs.Max)
	}
	// Monotone in q.
	prev := int64(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		v := hs.Quantile(q)
		if v < prev {
			t.Errorf("quantiles not monotone at q=%v: %d < %d", q, v, prev)
		}
		prev = v
	}
	// Empty histogram.
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// Single observation: every quantile is that value.
	r2 := NewRegistry()
	r2.Histogram("one").Observe(77)
	one := r2.Snapshot().Histograms["one"]
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := one.Quantile(q); got != 77 {
			t.Errorf("single-obs Quantile(%v) = %d, want 77", q, got)
		}
	}
}

func TestRegistryMergeSnapshot(t *testing.T) {
	job := NewRegistry()
	job.Counter("epa.runs").Add(10)
	job.Gauge("governor.capacity").Set(3)
	for _, v := range []int64{5, 50, 500} {
		job.Histogram("chunk_us").Observe(v)
	}
	global := NewRegistry()
	global.Counter("epa.runs").Add(2)
	global.Histogram("chunk_us").Observe(7)

	global.MergeSnapshot(job.Snapshot())

	snap := global.Snapshot()
	if got := snap.Counters["epa.runs"]; got != 12 {
		t.Errorf("merged counter: got %d, want 12", got)
	}
	if got := snap.Gauges["governor.capacity"]; got != 3 {
		t.Errorf("merged gauge: got %d, want 3", got)
	}
	h := snap.Histograms["chunk_us"]
	if h.Count != 4 || h.Sum != 562 {
		t.Errorf("merged histogram: count=%d sum=%d, want 4/562", h.Count, h.Sum)
	}
	if h.Min != 5 || h.Max != 500 {
		t.Errorf("merged min/max: %d/%d, want 5/500", h.Min, h.Max)
	}
	// Bucket counts must match a histogram fed the union directly.
	direct := NewRegistry()
	for _, v := range []int64{5, 50, 500, 7} {
		direct.Histogram("chunk_us").Observe(v)
	}
	want := direct.Snapshot().Histograms["chunk_us"]
	if len(h.Buckets) != len(want.Buckets) {
		t.Fatalf("merged buckets differ: %+v vs %+v", h.Buckets, want.Buckets)
	}
	for i := range h.Buckets {
		if h.Buckets[i] != want.Buckets[i] {
			t.Errorf("bucket %d: %+v vs %+v", i, h.Buckets[i], want.Buckets[i])
		}
	}
	// Merge into empty and nil safety.
	empty := NewRegistry()
	empty.MergeSnapshot(snap)
	if empty.Snapshot().Histograms["chunk_us"].Count != 4 {
		t.Error("merge into empty registry lost observations")
	}
	var nilReg *Registry
	nilReg.MergeSnapshot(snap)
	empty.MergeSnapshot(nil)
}

func TestRenderIncludesQuantiles(t *testing.T) {
	r := NewRegistry()
	for v := int64(1); v <= 32; v++ {
		r.Histogram("lat").Observe(v)
	}
	out := r.Snapshot().Render()
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p95=") || !strings.Contains(out, "p99=") {
		t.Fatalf("Render lacks quantile estimates:\n%s", out)
	}
}
