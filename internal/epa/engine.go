package epa

import (
	"fmt"
	"sort"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/sysmodel"
)

// PortKey addresses one port of one component instance.
type PortKey struct {
	Component string
	Port      string
}

// String implements fmt.Stringer.
func (k PortKey) String() string { return k.Component + "." + k.Port }

// Cause explains how an error mode arrived at a port: through a fault
// activation, a connection from another port, or an intra-component
// transfer.
type Cause struct {
	Kind string // "fault", "connection", "transfer"
	// Fault is set for fault causes.
	Fault Activation
	// From is set for connection and transfer causes: the upstream port
	// and the mode that triggered the rule.
	From     PortKey
	FromMode ErrMode
}

// portID is the dense integer index of a port in the engine's sorted
// port table. All hot-path state is portID-indexed so a propagation run
// touches slices, not string-keyed maps.
type portID = int32

// compiledTransfer is a transfer rule resolved against the port table:
// source port implied by its bucket in Engine.transfers, target port as
// a dense ID, guards kept by name (they are scenario-dependent).
type compiledTransfer struct {
	to          portID
	match, emit ErrState
	component   string
	whenFault   string
	unlessFault string
}

// seedEffect is a fault effect resolved to a concrete port.
type seedEffect struct {
	port portID
	emit ErrState
}

// compSpan is one component's contiguous range in the sorted port table.
type compSpan struct {
	component  string
	start, end portID
}

// Result is the outcome of one EPA run. It borrows the engine's
// immutable port table; the per-run state is a dense slice indexed by
// portID.
type Result struct {
	eng    *Engine
	states []ErrState
	causes map[causeKey]Cause
}

type causeKey struct {
	port portID
	mode ErrMode
}

// PortState returns the error state of a port.
func (r *Result) PortState(component, port string) ErrState {
	id, ok := r.eng.portIndex[PortKey{Component: component, Port: port}]
	if !ok {
		return OK
	}
	return r.states[id]
}

// ComponentState returns the union of the component's port states. The
// port table is sorted by component, so only the component's own span is
// scanned — not every port of the model.
func (r *Result) ComponentState(component string) ErrState {
	span, ok := r.eng.compRange[component]
	if !ok {
		return OK
	}
	var s ErrState
	for _, st := range r.states[span.start:span.end] {
		s = s.Union(st)
	}
	return s
}

// Affected lists components with a non-OK state, sorted.
func (r *Result) Affected() []string {
	var out []string
	for _, span := range r.eng.compSpans {
		for _, st := range r.states[span.start:span.end] {
			if !st.IsOK() {
				out = append(out, span.component)
				break
			}
		}
	}
	return out
}

// PathStep is one hop of an error-propagation path.
type PathStep struct {
	Port  PortKey
	Mode  ErrMode
	Cause Cause
}

// Path reconstructs the propagation path that brought mode to the port:
// from the originating fault activation down to the queried port (the
// paper's "components' error propagation path", §II-C). Returns nil when
// the mode is absent.
func (r *Result) Path(component, port string, mode ErrMode) []PathStep {
	id, ok := r.eng.portIndex[PortKey{Component: component, Port: port}]
	if !ok {
		return nil
	}
	key := causeKey{port: id, mode: mode}
	var rev []PathStep
	for guard := 0; guard < 4*len(r.states)+4; guard++ {
		cause, ok := r.causes[key]
		if !ok {
			return nil
		}
		rev = append(rev, PathStep{Port: r.eng.ports[key.port], Mode: key.mode, Cause: cause})
		if cause.Kind == "fault" {
			// Reached the origin.
			out := make([]PathStep, len(rev))
			for i := range rev {
				out[i] = rev[len(rev)-1-i]
			}
			return out
		}
		from, ok := r.eng.portIndex[cause.From]
		if !ok {
			return nil
		}
		key = causeKey{port: from, mode: cause.FromMode}
	}
	return nil // defensive: cyclic provenance cannot happen (first-cause wins)
}

// Engine runs EPA over a flattened model. NewEngine compiles the model
// and behaviour library once into dense integer-indexed tables (port
// interning, per-port connection fan-out, per-port transfer buckets,
// per-activation fault seeds); Run then only walks slices.
//
// An Engine is immutable after NewEngine and therefore safe for
// concurrent use: any number of goroutines may call Run / RunBudget on
// the same Engine simultaneously (each run owns its Result). This is
// what makes the parallel scenario sweep in internal/hazard possible.
type Engine struct {
	model *sysmodel.Model
	lib   *BehaviorLibrary

	ports     []PortKey
	behaviors map[string]*TypeBehavior // component ID -> behaviour

	// Compiled tables, all read-only after NewEngine.
	portIndex map[PortKey]portID
	outgoing  [][]portID           // connection fan-out per source port
	transfers [][]compiledTransfer // transfer rules bucketed by From port
	seeds     map[Activation][]seedEffect
	valid     map[Activation]bool // every declared (component, fault) pair
	compSpans []compSpan          // sorted by component
	compRange map[string]compSpan
}

// NewEngine prepares an engine; the model must be flat (no composites —
// call RefineAll first for hierarchical models) and valid against the
// library's types.
func NewEngine(model *sysmodel.Model, lib *BehaviorLibrary) (*Engine, error) {
	if comps := model.Composites(); len(comps) > 0 {
		return nil, fmt.Errorf("epa: model has unresolved composites %v (refine first)", comps)
	}
	if err := model.Validate(lib.Types()); err != nil {
		return nil, fmt.Errorf("epa: %w", err)
	}
	e := &Engine{
		model:     model,
		lib:       lib,
		behaviors: make(map[string]*TypeBehavior, len(model.Components)),
		seeds:     map[Activation][]seedEffect{},
		valid:     map[Activation]bool{},
		compRange: map[string]compSpan{},
	}
	for _, c := range model.Components {
		b, err := lib.For(c.Type)
		if err != nil {
			return nil, err
		}
		e.behaviors[c.ID] = b
		ct, _ := lib.Types().Get(c.Type)
		for _, p := range ct.Ports {
			e.ports = append(e.ports, PortKey{Component: c.ID, Port: p.Name})
		}
	}
	sort.Slice(e.ports, func(i, j int) bool {
		if e.ports[i].Component != e.ports[j].Component {
			return e.ports[i].Component < e.ports[j].Component
		}
		return e.ports[i].Port < e.ports[j].Port
	})
	e.portIndex = make(map[PortKey]portID, len(e.ports))
	for i, p := range e.ports {
		e.portIndex[p] = portID(i)
	}
	// Component spans over the sorted port table.
	for i := 0; i < len(e.ports); {
		j := i
		for j < len(e.ports) && e.ports[j].Component == e.ports[i].Component {
			j++
		}
		span := compSpan{component: e.ports[i].Component, start: portID(i), end: portID(j)}
		e.compSpans = append(e.compSpans, span)
		e.compRange[span.component] = span
		i = j
	}
	// Connection fan-out (quantity flows propagate both ways).
	e.outgoing = make([][]portID, len(e.ports))
	for _, conn := range model.Connections {
		from := e.portIndex[PortKey{Component: conn.From.Component, Port: conn.From.Port}]
		to := e.portIndex[PortKey{Component: conn.To.Component, Port: conn.To.Port}]
		e.outgoing[from] = append(e.outgoing[from], to)
		if conn.Flow == sysmodel.QuantityFlow {
			e.outgoing[to] = append(e.outgoing[to], from)
		}
	}
	// Transfer buckets and fault seeds.
	e.transfers = make([][]compiledTransfer, len(e.ports))
	for _, c := range model.Components {
		b := e.behaviors[c.ID]
		ct, _ := lib.Types().Get(c.Type)
		for _, tr := range b.Transfers {
			from := e.portIndex[PortKey{Component: c.ID, Port: tr.From}]
			e.transfers[from] = append(e.transfers[from], compiledTransfer{
				to:          e.portIndex[PortKey{Component: c.ID, Port: tr.To}],
				match:       tr.Match,
				emit:        tr.Emit,
				component:   c.ID,
				whenFault:   tr.WhenFault,
				unlessFault: tr.UnlessFault,
			})
		}
		for _, eff := range b.Effects {
			act := Activation{Component: c.ID, Fault: eff.Fault}
			for _, p := range e.effectPorts(c, ct, eff) {
				e.seeds[act] = append(e.seeds[act], seedEffect{port: e.portIndex[p], emit: eff.Emit})
			}
		}
		for _, fm := range ct.FaultModes {
			e.valid[Activation{Component: c.ID, Fault: fm.Name}] = true
		}
	}
	return e, nil
}

// Model returns the analyzed model.
func (e *Engine) Model() *sysmodel.Model { return e.model }

// Run computes the propagation fixpoint for a scenario. Unknown
// activations (component or fault not in the model/type) are an error —
// scenario construction bugs must not silently under-approximate.
//
// Run is safe for concurrent use on a shared Engine.
func (e *Engine) Run(scenario Scenario) (*Result, error) {
	return e.RunBudget(scenario, nil)
}

// budgetPollInterval is how many worklist pops pass between budget
// checks. Polling touches a context (and under -race, a mutex), so the
// hot loop amortizes it; 64 pops keep cancellation latency well under a
// millisecond on any realistic model.
const budgetPollInterval = 64

// RunBudget is Run with cancellation: the budget context is polled on
// entry and every budgetPollInterval worklist steps; exhaustion aborts
// with an *budget.ExhaustedError (stage "epa"). A partial fixpoint would
// under-approximate the propagation, so there is no partial-result mode
// at this granularity — callers degrade at the scenario level instead.
//
// The fixpoint is a worklist algorithm: only ports whose state changed
// are revisited, so a run is O(edges touched), not O(iterations × model
// size) like a full-rescan fixpoint.
func (e *Engine) RunBudget(scenario Scenario, bud *budget.Budget) (*Result, error) {
	if err := bud.Err("epa"); err != nil {
		return nil, err
	}
	// Chaos hook: one nil check per run when injection is off. Transient
	// injected failures here exercise the sweep's retry-with-backoff.
	if inj := bud.Injector(); inj != nil {
		if err := inj.Fire(faultinject.SiteEPARun); err != nil {
			return nil, err
		}
	}
	res := &Result{
		eng:    e,
		states: make([]ErrState, len(e.ports)),
		causes: make(map[causeKey]Cause, 4*len(scenario)+4),
	}
	queue := make([]portID, 0, 2*len(scenario)+4)
	queued := make([]bool, len(e.ports))
	push := func(p portID) {
		if !queued[p] {
			queued[p] = true
			queue = append(queue, p)
		}
	}
	// Seed: fault effects.
	for _, act := range scenario {
		if !e.valid[act] {
			comp, ok := e.model.Component(act.Component)
			if !ok {
				return nil, fmt.Errorf("epa: scenario activates unknown component %q", act.Component)
			}
			return nil, fmt.Errorf("epa: scenario activates unknown fault %q on %q (type %q)",
				act.Fault, act.Component, comp.Type)
		}
		for _, s := range e.seeds[act] {
			if res.add(s.port, s.emit, Cause{Kind: "fault", Fault: act}) {
				push(s.port)
			}
		}
	}
	// Worklist fixpoint: pop a changed port, propagate along its outgoing
	// connections and transfer rules, enqueue targets that changed. The
	// state space is finite and grows monotonically, so this terminates
	// after at most 4 state changes per port.
	for steps := 0; len(queue) > 0; steps++ {
		if steps%budgetPollInterval == 0 {
			if err := bud.Err("epa"); err != nil {
				return nil, err
			}
		}
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		queued[p] = false
		st := res.states[p]
		if st.IsOK() {
			continue
		}
		from := e.ports[p]
		// Connections.
		for _, to := range e.outgoing[p] {
			for _, m := range AllModes {
				if !st.Has(m) {
					continue
				}
				if res.add(to, StateOf(m), Cause{Kind: "connection", From: from, FromMode: m}) {
					push(to)
				}
			}
		}
		// Transfers.
		for i := range e.transfers[p] {
			tr := &e.transfers[p][i]
			if tr.whenFault != "" && !scenario.Has(tr.component, tr.whenFault) {
				continue
			}
			if tr.unlessFault != "" && scenario.Has(tr.component, tr.unlessFault) {
				continue
			}
			if !st.Intersects(tr.match) {
				continue
			}
			trigger := firstCommonMode(st, tr.match)
			if res.add(tr.to, tr.emit, Cause{Kind: "transfer", From: from, FromMode: trigger}) {
				push(tr.to)
			}
		}
	}
	return res, nil
}

func firstCommonMode(a, b ErrState) ErrMode {
	for _, m := range AllModes {
		if a.Has(m) && b.Has(m) {
			return m
		}
	}
	return 0
}

// effectPorts resolves the ports an effect touches ("" = all out/inout).
func (e *Engine) effectPorts(comp *sysmodel.Component, ct *sysmodel.ComponentType, eff FaultEffect) []PortKey {
	if eff.Port != "" {
		return []PortKey{{Component: comp.ID, Port: eff.Port}}
	}
	var out []PortKey
	for _, p := range ct.Ports {
		if p.Dir == sysmodel.Out || p.Dir == sysmodel.InOut {
			out = append(out, PortKey{Component: comp.ID, Port: p.Name})
		}
	}
	return out
}

// add merges the state into the port, recording first causes per new mode.
// It reports whether anything changed.
func (r *Result) add(p portID, st ErrState, cause Cause) bool {
	old := r.states[p]
	merged := old.Union(st)
	if merged == old {
		return false
	}
	r.states[p] = merged
	for _, m := range AllModes {
		if !st.Has(m) || old.Has(m) {
			continue
		}
		key := causeKey{port: p, mode: m}
		if _, dup := r.causes[key]; !dup {
			r.causes[key] = cause
		}
	}
	return true
}
