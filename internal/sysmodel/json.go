package sysmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalJSON customizes nothing at the Model level but repopulates the
// index on round trips; kept here so the exchange format stays in one
// place. Flow kinds and directions serialize as their string names.

// flowNames maps between FlowKind and the exchange format.
var flowNames = map[FlowKind]string{SignalFlow: "signal", QuantityFlow: "quantity"}

// MarshalJSON implements json.Marshaler.
func (f FlowKind) MarshalJSON() ([]byte, error) {
	name, ok := flowNames[f]
	if !ok {
		return nil, fmt.Errorf("sysmodel: cannot marshal flow kind %d", int(f))
	}
	return json.Marshal(name)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *FlowKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for k, name := range flowNames {
		if name == s {
			*f = k
			return nil
		}
	}
	return fmt.Errorf("sysmodel: unknown flow kind %q", s)
}

var dirNames = map[PortDir]string{In: "in", Out: "out", InOut: "inout"}

// MarshalJSON implements json.Marshaler.
func (d PortDir) MarshalJSON() ([]byte, error) {
	name, ok := dirNames[d]
	if !ok {
		return nil, fmt.Errorf("sysmodel: cannot marshal port dir %d", int(d))
	}
	return json.Marshal(name)
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *PortDir) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for k, name := range dirNames {
		if name == s {
			*d = k
			return nil
		}
	}
	return fmt.Errorf("sysmodel: unknown port dir %q", s)
}

// WriteJSON serializes the model.
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadJSON deserializes a model and rebuilds internal indexes.
func ReadJSON(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("sysmodel: decode model: %w", err)
	}
	m.rebuildIndexes()
	if err := m.checkUniqueIDs(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Model) rebuildIndexes() {
	m.index = nil
	m.ensureIndex()
	for _, c := range m.Components {
		if c.Sub != nil {
			c.Sub.rebuildIndexes()
		}
	}
}

func (m *Model) checkUniqueIDs() error {
	seen := map[string]bool{}
	for _, c := range m.Components {
		if c.ID == "" {
			return fmt.Errorf("sysmodel: component with empty ID in model %q", m.Name)
		}
		if seen[c.ID] {
			return fmt.Errorf("sysmodel: duplicate component ID %q", c.ID)
		}
		seen[c.ID] = true
		if c.Sub != nil {
			if err := c.Sub.checkUniqueIDs(); err != nil {
				return err
			}
		}
	}
	return nil
}

// TypesJSON (de)serializes a type library as a JSON array.
func (l *TypeLibrary) WriteJSON(w io.Writer) error {
	types := make([]*ComponentType, 0, len(l.order))
	for _, name := range l.order {
		types = append(types, l.types[name])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(types)
}

// ReadTypesJSON loads a type library from a JSON array.
func ReadTypesJSON(r io.Reader) (*TypeLibrary, error) {
	var types []*ComponentType
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&types); err != nil {
		return nil, fmt.Errorf("sysmodel: decode type library: %w", err)
	}
	lib := NewTypeLibrary()
	for _, ct := range types {
		if err := lib.Add(ct); err != nil {
			return nil, err
		}
	}
	return lib, nil
}
