package kb

import (
	"fmt"
	"math"
	"strings"
)

// Temporal and environmental CVSS v3.1 metric groups. The base group
// feeds the preliminary assessment; the temporal group lets an analyst
// account for exploit maturity and remediation state, and the
// environmental group re-scores a vulnerability for the concrete system
// (modified base metrics plus the C/I/A requirements of the asset) — the
// per-deployment tailoring the paper's hierarchical refinement calls for
// when component versions become known (§VI).

// Temporal holds the CVSS v3.1 temporal metrics. Zero values ("X", Not
// Defined) leave the base score unchanged.
type Temporal struct {
	ExploitCodeMaturity string // X, H, F, P, U
	RemediationLevel    string // X, U, W, T, O
	ReportConfidence    string // X, C, R, U
}

// ParseTemporal parses "E:P/RL:O/RC:C" fragments (any subset, any order).
func ParseTemporal(s string) (Temporal, error) {
	var t Temporal
	if s == "" {
		return t, nil
	}
	for _, part := range strings.Split(s, "/") {
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return t, fmt.Errorf("kb: malformed temporal metric %q", part)
		}
		switch kv[0] {
		case "E":
			if !oneOf(kv[1], "X", "H", "F", "P", "U") {
				return t, fmt.Errorf("kb: invalid E value %q", kv[1])
			}
			t.ExploitCodeMaturity = kv[1]
		case "RL":
			if !oneOf(kv[1], "X", "U", "W", "T", "O") {
				return t, fmt.Errorf("kb: invalid RL value %q", kv[1])
			}
			t.RemediationLevel = kv[1]
		case "RC":
			if !oneOf(kv[1], "X", "C", "R", "U") {
				return t, fmt.Errorf("kb: invalid RC value %q", kv[1])
			}
			t.ReportConfidence = kv[1]
		default:
			return t, fmt.Errorf("kb: unknown temporal metric %q", kv[0])
		}
	}
	return t, nil
}

func exploitMaturityWeight(m string) float64 {
	switch m {
	case "H", "X", "":
		return 1.0
	case "F":
		return 0.97
	case "P":
		return 0.94
	default: // U
		return 0.91
	}
}

func remediationWeight(m string) float64 {
	switch m {
	case "U", "X", "":
		return 1.0
	case "W":
		return 0.97
	case "T":
		return 0.96
	default: // O
		return 0.95
	}
}

func reportConfidenceWeight(m string) float64 {
	switch m {
	case "C", "X", "":
		return 1.0
	case "R":
		return 0.96
	default: // U
		return 0.92
	}
}

// TemporalScore computes the temporal score from a base score:
// Roundup(base × E × RL × RC).
func TemporalScore(base float64, t Temporal) float64 {
	return roundup1(base *
		exploitMaturityWeight(t.ExploitCodeMaturity) *
		remediationWeight(t.RemediationLevel) *
		reportConfidenceWeight(t.ReportConfidence))
}

// Environmental holds the CVSS v3.1 environmental metric group: security
// requirements of the asset plus modified base metrics ("X" or "" keeps
// the corresponding base metric).
type Environmental struct {
	ConfidentialityReq string // X, H, M, L
	IntegrityReq       string // X, H, M, L
	AvailabilityReq    string // X, H, M, L

	ModifiedAttackVector       string
	ModifiedAttackComplexity   string
	ModifiedPrivilegesRequired string
	ModifiedUserInteraction    string
	ModifiedScope              string
	ModifiedConfidentiality    string
	ModifiedIntegrity          string
	ModifiedAvailability       string
}

func requirementWeight(m string) float64 {
	switch m {
	case "H":
		return 1.5
	case "L":
		return 0.5
	default: // M, X, ""
		return 1.0
	}
}

func pick(modified, base string) string {
	if modified == "" || modified == "X" {
		return base
	}
	return modified
}

// EnvironmentalScore computes the full environmental score of a base
// vector under the environment (including the temporal factors, per the
// v3.1 specification).
func (v CVSS31) EnvironmentalScore(env Environmental, t Temporal) (float64, error) {
	m := CVSS31{
		AttackVector:       pick(env.ModifiedAttackVector, v.AttackVector),
		AttackComplexity:   pick(env.ModifiedAttackComplexity, v.AttackComplexity),
		PrivilegesRequired: pick(env.ModifiedPrivilegesRequired, v.PrivilegesRequired),
		UserInteraction:    pick(env.ModifiedUserInteraction, v.UserInteraction),
		Scope:              pick(env.ModifiedScope, v.Scope),
		Confidentiality:    pick(env.ModifiedConfidentiality, v.Confidentiality),
		Integrity:          pick(env.ModifiedIntegrity, v.Integrity),
		Availability:       pick(env.ModifiedAvailability, v.Availability),
	}
	if _, err := ParseCVSS31(m.Vector()); err != nil {
		return 0, fmt.Errorf("kb: modified metrics invalid: %w", err)
	}
	for _, r := range []string{env.ConfidentialityReq, env.IntegrityReq, env.AvailabilityReq} {
		if r != "" && !oneOf(r, "X", "H", "M", "L") {
			return 0, fmt.Errorf("kb: invalid security requirement %q", r)
		}
	}
	miss := math.Min(1-
		(1-requirementWeight(env.ConfidentialityReq)*ciaWeight(m.Confidentiality))*
			(1-requirementWeight(env.IntegrityReq)*ciaWeight(m.Integrity))*
			(1-requirementWeight(env.AvailabilityReq)*ciaWeight(m.Availability)),
		0.915)
	var modifiedImpact float64
	if m.Scope == "U" {
		modifiedImpact = 6.42 * miss
	} else {
		modifiedImpact = 7.52*(miss-0.029) - 3.25*math.Pow(miss*0.9731-0.02, 13)
	}
	modifiedExploitability := 8.22 * avWeight(m.AttackVector) * acWeight(m.AttackComplexity) *
		prWeight(m.PrivilegesRequired, m.Scope) * uiWeight(m.UserInteraction)
	if modifiedImpact <= 0 {
		return 0, nil
	}
	tFactor := exploitMaturityWeight(t.ExploitCodeMaturity) *
		remediationWeight(t.RemediationLevel) *
		reportConfidenceWeight(t.ReportConfidence)
	var score float64
	if m.Scope == "U" {
		score = roundup1(roundup1(math.Min(modifiedImpact+modifiedExploitability, 10)) * tFactor)
	} else {
		score = roundup1(roundup1(math.Min(1.08*(modifiedImpact+modifiedExploitability), 10)) * tFactor)
	}
	return score, nil
}
