// Smefactory models the paper's target user: an SME bottling plant with a
// small IT estate (office workstation, SCADA server, historian) driving an
// OT line (PLCs, HMI, filler and capper equipment). It derives the
// candidate attack surface from the built-in knowledge base, builds the
// attack graph (entry points, compromisable assets, cheapest attack to the
// physical process), runs exhaustive hazard identification, and sweeps the
// mitigation budget to produce the staged consolidation plan the paper
// motivates (§IV-D: "if a company has a limited budget let's first deal
// with the most potential and severe risk").
package main

import (
	"fmt"
	"os"
	"strings"

	"cpsrisk/internal/attack"
	"cpsrisk/internal/core"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/report"
	"cpsrisk/internal/sysmodel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smefactory:", err)
		os.Exit(1)
	}
}

// buildTypes declares component types named to match the knowledge base's
// technique/vulnerability applicability (workstation, scada_server,
// historian, plc, hmi) plus the physical line equipment.
func buildTypes() *sysmodel.TypeLibrary {
	types := sysmodel.NewTypeLibrary()
	sig := func(n string, d sysmodel.PortDir) sysmodel.PortSpec {
		return sysmodel.PortSpec{Name: n, Dir: d, Flow: sysmodel.SignalFlow}
	}
	types.MustAdd(&sysmodel.ComponentType{
		Name: "workstation", Layer: "application",
		Ports: []sysmodel.PortSpec{sig("net", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised", Likelihood: "M", AttackOnly: true}, {Name: "crash", Likelihood: "VL"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "scada_server", Layer: "technology",
		Ports: []sysmodel.PortSpec{
			sig("fromit", sysmodel.In), sig("toplc1", sysmodel.Out),
			sig("toplc2", sysmodel.Out), sig("tohist", sysmodel.Out),
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised", Likelihood: "L", AttackOnly: true}, {Name: "crash", Likelihood: "VL"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "historian", Layer: "technology",
		Ports: []sysmodel.PortSpec{sig("in", sysmodel.In)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised", Likelihood: "L", AttackOnly: true}, {Name: "crash", Likelihood: "VL"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "plc", Layer: "technology",
		Ports: []sysmodel.PortSpec{
			sig("in", sysmodel.In), sig("cmd", sysmodel.Out), sig("alarm", sysmodel.Out),
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised", Likelihood: "L", AttackOnly: true},
			{Name: "bad_command", Likelihood: "VL"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "hmi", Layer: "application",
		Ports: []sysmodel.PortSpec{sig("alarm", sysmodel.In), sig("view", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "no_signal", Likelihood: "L"}, {Name: "compromised", Likelihood: "L", AttackOnly: true},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "line_equipment", Layer: "physical",
		Ports: []sysmodel.PortSpec{sig("cmd", sysmodel.In)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "bad_command", Likelihood: "VL"}, {Name: "jam", Likelihood: "L"},
		},
	})
	return types
}

func buildModel() *sysmodel.Model {
	m := sysmodel.NewModel("sme-bottling-plant")
	add := func(id, typ string, attrs map[string]string) {
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: typ, Attrs: attrs})
	}
	add("office_ws", "workstation", map[string]string{"exposure": "public", "version": "10"})
	add("scada", "scada_server", map[string]string{"version": "5.0"})
	add("hist", "historian", nil)
	add("plc_filler", "plc", map[string]string{"version": "fw2.3"})
	add("plc_capper", "plc", map[string]string{"version": "fw2.4"})
	add("panel", "hmi", nil)
	add("filler", "line_equipment", map[string]string{"criticality": "VH"})
	add("capper", "line_equipment", map[string]string{"criticality": "H"})

	s := sysmodel.SignalFlow
	m.Connect("office_ws", "net", "scada", "fromit", s)
	m.Connect("scada", "toplc1", "plc_filler", "in", s)
	m.Connect("scada", "toplc2", "plc_capper", "in", s)
	m.Connect("scada", "tohist", "hist", "in", s)
	m.Connect("plc_filler", "cmd", "filler", "cmd", s)
	m.Connect("plc_capper", "cmd", "capper", "cmd", s)
	m.Connect("plc_filler", "alarm", "panel", "alarm", s)
	return m
}

// behaviors: compromised components emit attacker traffic; PLCs convert
// compromised or bad inputs into wrong commands; equipment reacts to
// command errors.
func buildBehaviors(types *sysmodel.TypeLibrary) *epa.BehaviorLibrary {
	lib := epa.NewBehaviorLibrary(types)
	comp := epa.StateOf(epa.ErrCompromise)
	val := epa.StateOf(epa.ErrValue)
	om := epa.StateOf(epa.ErrOmission)

	lib.MustRegister(&epa.TypeBehavior{
		Type: "workstation",
		Effects: []epa.FaultEffect{
			{Fault: "compromised", Emit: comp},
			{Fault: "crash", Emit: om},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: "scada_server",
		Effects: []epa.FaultEffect{
			{Fault: "compromised", Emit: comp},
			{Fault: "crash", Emit: om},
		},
		Transfers: append(
			fanout("fromit", comp, []string{"toplc1", "toplc2", "tohist"}, comp),
			fanout("fromit", om, []string{"toplc1", "toplc2"}, om)...),
	})
	lib.MustRegister(&epa.TypeBehavior{Type: "historian",
		Effects: []epa.FaultEffect{{Fault: "compromised", Emit: comp}, {Fault: "crash", Emit: om}}})
	lib.MustRegister(&epa.TypeBehavior{
		Type: "plc",
		Effects: []epa.FaultEffect{
			{Fault: "compromised", Emit: comp},
			{Fault: "bad_command", Port: "cmd", Emit: val},
		},
		Transfers: []epa.TransferRule{
			{From: "in", Match: comp, To: "cmd", Emit: epa.StateOf(epa.ErrValue, epa.ErrCompromise)},
			{From: "in", Match: om, To: "cmd", Emit: om},
			{From: "in", Match: comp, To: "alarm", Emit: om},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: "hmi",
		Effects: []epa.FaultEffect{
			{Fault: "no_signal", Port: "view", Emit: om},
			{Fault: "compromised", Port: "view", Emit: om},
		},
		Transfers: []epa.TransferRule{
			{From: "alarm", Match: om, To: "view", Emit: om},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{Type: "line_equipment",
		Effects: []epa.FaultEffect{{Fault: "jam", Emit: val}}})
	return lib
}

func fanout(from string, match epa.ErrState, tos []string, emit epa.ErrState) []epa.TransferRule {
	var out []epa.TransferRule
	for _, to := range tos {
		out = append(out, epa.TransferRule{From: from, Match: match, To: to, Emit: emit})
	}
	return out
}

func requirements() []hazard.Requirement {
	badCmd := func(comp string) hazard.Condition {
		return hazard.Any(
			hazard.Port(comp, "cmd", epa.ErrValue),
			hazard.Port(comp, "cmd", epa.ErrCompromise),
			hazard.Fault(comp, "jam"),
		)
	}
	return []hazard.Requirement{
		{ID: "RQ1", Description: "the filler must not receive wrong commands",
			Severity: qual.VeryHigh, Condition: badCmd("filler")},
		{ID: "RQ2", Description: "the capper must not receive wrong commands",
			Severity: qual.High, Condition: badCmd("capper")},
		{ID: "RQ3", Description: "line alarms must reach the operator",
			Severity:  qual.Medium,
			Condition: hazard.Port("panel", "view", epa.ErrOmission)},
	}
}

func run() error {
	types := buildTypes()
	m := buildModel()
	k := kb.MustDefaultKB()

	// Attack surface: graph over the KB.
	g, err := attack.Build(m, types, k, attack.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("compromisable assets: %s\n", strings.Join(g.Compromisable(), ", "))
	if atk, ok := g.CheapestAttack("filler", "bad_command"); ok {
		fmt.Printf("cheapest attack on the filler (cost %d):\n", atk.Cost)
		for _, s := range atk.Steps {
			fmt.Printf("  %s (%s)\n", s, s.Technique.Name)
		}
	}
	fmt.Println()

	// Full pipeline with optimization, unlimited budget first.
	base := core.Config{
		Model:           m,
		Types:           types,
		Behaviors:       buildBehaviors(types),
		KB:              k,
		Requirements:    requirements(),
		MutationSources: faults.AllSources(),
		MaxCardinality:  1,
		Optimize:        true,
		Budget:          -1,
	}
	a, err := core.Run(base)
	if err != nil {
		return err
	}
	fmt.Printf("candidates: %d   scenarios: %d   hazardous: %d\n\n",
		len(a.Candidates), len(a.Analysis.Scenarios), len(a.Analysis.Hazards()))
	top := a.Ranked
	if len(top) > 8 {
		top = top[:8]
	}
	fmt.Println(report.Ranked(top))

	// Budget sweep: the multi-phase consolidation strategy.
	fmt.Println("budget sweep (total = mitigation cost + residual loss):")
	for _, budget := range []int{0, 40, 80, 160, 320, -1} {
		cfg := base
		cfg.Budget = budget
		res, err := core.Run(cfg)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%d", budget)
		if budget < 0 {
			label = "unlimited"
		}
		fmt.Printf("  budget %-9s -> select [%s] cost=%d residual=%d total=%d\n",
			label, strings.Join(res.Plan.Selected, ","), res.Plan.Cost,
			res.Plan.ResidualLoss, res.Plan.Total)
	}

	// The staged plan at the unlimited budget.
	fmt.Println("\nstaged consolidation plan:")
	fmt.Println(report.Plan(a.Phases, a.Plan))
	return nil
}
