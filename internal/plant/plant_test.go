package plant

import (
	"testing"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/temporal"
)

func run(t *testing.T, injections ...Injection) *Trace {
	t.Helper()
	tr, err := Simulate(DefaultConfig(), injections)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNominalRunIsSafe(t *testing.T) {
	tr := run(t)
	if tr.Overflowed() {
		t.Fatal("nominal run must not overflow")
	}
	// The hysteresis controller keeps the level within [low-eps, high+eps].
	cfg := tr.Config
	for _, s := range tr.Steps {
		if s.Level < 0 || s.Level > cfg.Capacity {
			t.Fatalf("level %v outside tank at t=%d", s.Level, s.T)
		}
	}
	final := tr.SettledLevel()
	if final <= cfg.LowMark/2 || final >= cfg.AlertMark {
		t.Errorf("settled level = %v, expected inside control band", final)
	}
}

// F1: input valve stuck open. The output valve can out-drain the input
// (OutFlowMax > InFlowMax), so the controller still avoids overflow —
// matching paper Table II row S3 (R1 not violated under F1 alone).
func TestF1StuckOpenAloneIsControlled(t *testing.T) {
	tr := run(t, Injection{Component: CompInValve, Fault: FaultStuckOpen})
	if tr.Overflowed() {
		t.Fatal("F1 alone should be compensated by the output valve")
	}
}

// F2 alone: the healthy controller closes the input valve in time, so the
// tank does NOT physically overflow. The paper's Table II flags S4 (F2) as
// an R1 violation at the qualitative level — this run is the concrete
// evidence that the flag is an over-approximation artifact of the kind the
// paper's §VI spurious-solution discussion anticipates, and exactly what
// the CEGAR loop checks against.
func TestF2AloneCompensatedConcretely(t *testing.T) {
	tr := run(t, Injection{Component: CompOutValve, Fault: FaultStuckClosed})
	if tr.Overflowed() {
		t.Fatal("F2 alone should be compensated by closing the input valve")
	}
}

// F1+F2: both valves stuck against the controller -> the tank can only
// fill -> overflow with the alert still delivered (R1 violated, R2 holds).
func TestF1F2OverflowsWithAlert(t *testing.T) {
	tr := run(t,
		Injection{Component: CompInValve, Fault: FaultStuckOpen},
		Injection{Component: CompOutValve, Fault: FaultStuckClosed},
	)
	if !tr.Overflowed() {
		t.Fatal("F1+F2 must overflow the tank")
	}
	if !tr.AlertedAfterOverflow() {
		t.Fatal("alert must be delivered when HMI is healthy")
	}
}

// F1+F2+F3: overflow with a dead HMI -> no alert (both requirements
// violated — the paper's most severe physical combination shape).
func TestSilentOverflow(t *testing.T) {
	tr := run(t,
		Injection{Component: CompInValve, Fault: FaultStuckOpen},
		Injection{Component: CompOutValve, Fault: FaultStuckClosed},
		Injection{Component: CompHMI, Fault: FaultNoSignal},
	)
	if !tr.Overflowed() {
		t.Fatal("F1+F2+F3 must overflow")
	}
	if tr.AlertedAfterOverflow() {
		t.Fatal("dead HMI must lose the alert")
	}
}

// A sensor that dies during the filling phase freezes the controller in
// the "fill" posture -> overflow. Timing-dependent concrete hazard.
func TestSensorLossDuringFillOverflows(t *testing.T) {
	// Find a step where the nominal run is filling (inflow > 0).
	nominal := run(t)
	fillStep := -1
	for _, s := range nominal.Steps {
		if s.InFlow > 0 {
			fillStep = s.T
			break
		}
	}
	if fillStep < 0 {
		t.Fatal("nominal run never fills")
	}
	tr := run(t, Injection{Component: CompLevelSensor, Fault: FaultNoSignal, AtStep: fillStep + 1})
	if !tr.Overflowed() {
		t.Fatal("sensor loss during fill must overflow")
	}
}

// F4: compromised engineering workstation reconfigures both actuators and
// silences the HMI (Table II row S2: both requirements violated).
func TestF4CompromisedWorkstation(t *testing.T) {
	tr := run(t, Injection{Component: CompEWS, Fault: FaultCompromised})
	if !tr.Overflowed() {
		t.Fatal("compromised workstation must cause overflow")
	}
	if tr.AlertedAfterOverflow() {
		t.Fatal("compromised workstation must suppress the alert")
	}
}

// Sensor loss alone: the controller holds the last command; from the
// steady posture the tank drains empty but never overflows.
func TestSensorLossAloneNoOverflow(t *testing.T) {
	tr := run(t, Injection{Component: CompLevelSensor, Fault: FaultNoSignal})
	if tr.Overflowed() {
		t.Fatal("sensor loss alone must not overflow")
	}
}

func TestInjectionTiming(t *testing.T) {
	tr := run(t,
		Injection{Component: CompInValve, Fault: FaultStuckOpen, AtStep: 150},
		Injection{Component: CompOutValve, Fault: FaultStuckClosed, AtStep: 150},
	)
	// Overflow cannot happen before the injections become active.
	for _, s := range tr.Steps[:150] {
		if s.Overflow {
			t.Fatalf("overflow before injection at t=%d", s.T)
		}
	}
	if !tr.Overflowed() {
		t.Fatal("late stuck valves must still overflow eventually")
	}
}

func TestRequirementsOverPropTrace(t *testing.T) {
	r1 := temporal.MustParseFormula("G !state(tank,overflow)")
	r2 := temporal.MustParseFormula("G (state(tank,overflow) -> F alerted(operator))")

	safe := run(t)
	if !temporal.Eval(r1, safe.PropTrace()) || !temporal.Eval(r2, safe.PropTrace()) {
		t.Error("nominal trace must satisfy R1 and R2")
	}
	overflowAlert := run(t,
		Injection{Component: CompInValve, Fault: FaultStuckOpen},
		Injection{Component: CompOutValve, Fault: FaultStuckClosed})
	if temporal.Eval(r1, overflowAlert.PropTrace()) {
		t.Error("R1 must fail on overflow")
	}
	if !temporal.Eval(r2, overflowAlert.PropTrace()) {
		t.Error("R2 must hold when alert delivered")
	}
	silent := run(t,
		Injection{Component: CompInValve, Fault: FaultStuckOpen},
		Injection{Component: CompOutValve, Fault: FaultStuckClosed},
		Injection{Component: CompHMI, Fault: FaultNoSignal})
	if temporal.Eval(r2, silent.PropTrace()) {
		t.Error("R2 must fail on silent overflow")
	}
}

func TestQualitativeAbstraction(t *testing.T) {
	tr := run(t,
		Injection{Component: CompInValve, Fault: FaultStuckOpen},
		Injection{Component: CompOutValve, Fault: FaultStuckClosed})
	states := tr.QualTrace()
	if len(states) < 2 {
		t.Fatalf("qualitative trace too short: %v", states)
	}
	space := LevelSpace(tr.Config)
	last := states[len(states)-1]
	if space.Scale().Label(last.Magnitude) != "overflow" {
		t.Errorf("final qualitative state = %s", last.LabelIn(space.Scale()))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Area = 0 },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.DT = -1 },
		func(c *Config) { c.LowMark = 0.95 },
		func(c *Config) { c.AlertMark = 2.0 },
		func(c *Config) { c.InitialLevel = -0.1 },
		func(c *Config) { c.InFlowMax = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Simulate(cfg, nil); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestInjectionValidation(t *testing.T) {
	bad := []Injection{
		{Component: "ghost", Fault: FaultNoSignal},
		{Component: CompTank, Fault: "leak"},
		{Component: CompHMI, Fault: FaultStuckOpen},
		{Component: CompInValve, Fault: FaultStuckOpen, AtStep: -1},
	}
	for i, inj := range bad {
		if _, err := Simulate(DefaultConfig(), []Injection{inj}); err == nil {
			t.Errorf("case %d: expected injection error", i)
		}
	}
}

func TestInjectionsFromScenario(t *testing.T) {
	injs, err := InjectionsFromScenario(epa.Scenario{
		{Component: CompOutValve, Fault: FaultStuckClosed},
		{Component: CompHMI, Fault: FaultNoSignal},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 2 {
		t.Fatalf("injections = %v", injs)
	}
	if _, err := InjectionsFromScenario(epa.Scenario{
		{Component: "abstract_asset", Fault: "whatever"},
	}); err == nil {
		t.Error("unrepresentable scenario must error")
	}
}

func TestMassBalanceInvariant(t *testing.T) {
	// Water level change each step equals (qin - qout) * dt / area, within
	// clamping at the boundaries.
	tr := run(t, Injection{Component: CompOutValve, Fault: FaultStuckClosed})
	cfg := tr.Config
	prev := cfg.InitialLevel
	for _, s := range tr.Steps {
		expected := prev + (s.InFlow-s.OutFlow)*cfg.DT/cfg.Area
		if expected > cfg.Capacity {
			expected = cfg.Capacity
		}
		if expected < 0 {
			expected = 0
		}
		if diff := s.Level - expected; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("mass balance broken at t=%d: %v vs %v", s.T, s.Level, expected)
		}
		prev = s.Level
	}
}

func BenchmarkSimulate(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Steps = 1000
	injs := []Injection{{Component: CompOutValve, Fault: FaultStuckClosed, AtStep: 300}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, injs); err != nil {
			b.Fatal(err)
		}
	}
}
