package hazard

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/store"
	"cpsrisk/internal/sysmodel"
)

// setupSymmetric builds a plant with heavy redundancy: n identical
// sensors (corrupt/stuck faults) feeding one hub that propagates
// errors to its output. The requirement watches the hub only, so every
// sensor is interchangeable — the worst case for an exhaustive sweep
// and the best case for pruning.
func setupSymmetric(t testing.TB, n int) (*epa.Engine, []faults.Mutation, []Requirement) {
	t.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "sensor",
		Ports: []sysmodel.PortSpec{
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "corrupt", Likelihood: "M"}, {Name: "stuck", Likelihood: "L"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "hub",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "crash", Likelihood: "L"}},
	})
	m := sysmodel.NewModel("sym-star")
	m.MustAddComponent(&sysmodel.Component{ID: "hub", Type: "hub"})
	var muts []faults.Mutation
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%02d", i)
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: "sensor"})
		m.Connect(id, "out", "hub", "in", sysmodel.SignalFlow)
		muts = append(muts,
			faults.Mutation{Activation: epa.Activation{Component: id, Fault: "corrupt"}, Likelihood: qual.Medium},
			faults.Mutation{Activation: epa.Activation{Component: id, Fault: "stuck"}, Likelihood: qual.Low},
		)
	}
	muts = append(muts, faults.Mutation{
		Activation: epa.Activation{Component: "hub", Fault: "crash"}, Likelihood: qual.Low})
	lib := epa.NewBehaviorLibrary(types)
	lib.MustRegister(&epa.TypeBehavior{
		Type: "sensor",
		Effects: []epa.FaultEffect{
			{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrValue)},
			{Fault: "stuck", Port: "out", Emit: epa.StateOf(epa.ErrTiming)},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: "hub",
		Effects: []epa.FaultEffect{
			{Fault: "crash", Port: "out", Emit: epa.StateOf(epa.ErrOmission)},
		},
		Transfers: epa.IdentityTransfers("in", "out"),
	})
	eng, err := epa.NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Requirement{
		{ID: "R-HUB", Description: "hub output integrity", Severity: qual.High,
			Condition: Comp("hub", epa.ErrValue)},
		{ID: "R-OMIT", Description: "hub availability", Severity: qual.Medium,
			Condition: Comp("hub", epa.ErrOmission)},
	}
	return eng, muts, reqs
}

// setupNonMonotone builds a chain whose middle node can FILTER errors
// away: activating c1.filter suppresses propagation, so adding a fault
// can remove a violation. Dominance must disarm itself here.
func setupNonMonotone(t testing.TB) (*epa.Engine, []faults.Mutation, []Requirement) {
	t.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "node",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "corrupt", Likelihood: "M"}, {Name: "filter", Likelihood: "L"},
		},
	})
	m := sysmodel.NewModel("filtered-chain")
	for _, id := range []string{"c0", "c1", "c2"} {
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: "node"})
	}
	m.Connect("c0", "out", "c1", "in", sysmodel.SignalFlow)
	m.Connect("c1", "out", "c2", "in", sysmodel.SignalFlow)
	lib := epa.NewBehaviorLibrary(types)
	lib.MustRegister(&epa.TypeBehavior{
		Type:    "node",
		Effects: []epa.FaultEffect{{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrValue)}},
		Transfers: []epa.TransferRule{{
			From: "in", Match: epa.StateOf(epa.ErrValue), To: "out",
			Emit: epa.StateOf(epa.ErrValue), UnlessFault: "filter",
		}},
	})
	eng, err := epa.NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	var muts []faults.Mutation
	for _, id := range []string{"c0", "c1", "c2"} {
		muts = append(muts,
			faults.Mutation{Activation: epa.Activation{Component: id, Fault: "corrupt"}, Likelihood: qual.Medium},
			faults.Mutation{Activation: epa.Activation{Component: id, Fault: "filter"}, Likelihood: qual.Low},
		)
	}
	reqs := []Requirement{
		{ID: "R1", Severity: qual.High, Condition: Comp("c2", epa.ErrValue)},
	}
	return eng, muts, reqs
}

// TestPrunedMatchesExhaustive is the soundness anchor: the pruned sweep
// must produce a byte-identical report to the exhaustive sweep — same
// IDs, violation vectors, risks, and summary — at k <= 3 on every test
// plant, at multiple parallelism levels.
func TestPrunedMatchesExhaustive(t *testing.T) {
	plants := []struct {
		name  string
		setup func(testing.TB) (*epa.Engine, []faults.Mutation, []Requirement)
	}{
		{"wide-chain", func(t testing.TB) (*epa.Engine, []faults.Mutation, []Requirement) { return setupWide(t, 6) }},
		{"sym-star", func(t testing.TB) (*epa.Engine, []faults.Mutation, []Requirement) { return setupSymmetric(t, 5) }},
		{"non-monotone", func(t testing.TB) (*epa.Engine, []faults.Mutation, []Requirement) { return setupNonMonotone(t) }},
	}
	for _, pl := range plants {
		for _, k := range []int{1, 2, 3} {
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/k=%d/p=%d", pl.name, k, par), func(t *testing.T) {
					eng, muts, reqs := pl.setup(t)
					exhaustive, err := AnalyzeSweep(eng, muts, k, reqs, SweepConfig{Parallelism: par})
					if err != nil {
						t.Fatal(err)
					}
					pruned, err := AnalyzeSweep(eng, muts, k, reqs, SweepConfig{Parallelism: par, Prune: true})
					if err != nil {
						t.Fatal(err)
					}
					if got, want := projection(pruned), projection(exhaustive); got != want {
						t.Fatalf("pruned report diverged:\n--- pruned ---\n%s\n--- exhaustive ---\n%s", got, want)
					}
					// The sequential reference closes the triangle.
					seq, err := Analyze(eng, muts, k, reqs)
					if err != nil {
						t.Fatal(err)
					}
					if projection(seq) != projection(exhaustive) {
						t.Fatal("parallel exhaustive diverged from sequential reference")
					}
				})
			}
		}
	}
}

// TestPrunedSweepSkipsWork pins the point of the tentpole: on a
// redundant plant most scenarios are synthesized, not simulated.
func TestPrunedSweepSkipsWork(t *testing.T) {
	eng, muts, reqs := setupSymmetric(t, 5)
	a, err := AnalyzeSweep(eng, muts, 3, reqs, SweepConfig{Parallelism: 2, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	sw := a.Sweep
	if sw.Pruned == 0 {
		t.Error("dominance pruned nothing on a monotone plant with violating singletons")
	}
	if sw.OrbitHits == 0 {
		t.Error("orbit replication found nothing on a 5-way symmetric plant")
	}
	if sw.OrbitClasses == 0 {
		t.Error("no symmetry classes detected")
	}
	total := int64(len(a.Scenarios))
	if sw.Executed+sw.Pruned+sw.OrbitHits != total {
		t.Errorf("accounting: executed %d + pruned %d + orbit %d != %d scenarios",
			sw.Executed, sw.Pruned, sw.OrbitHits, total)
	}
	if sw.Executed*2 >= total {
		t.Errorf("pruning too weak: %d of %d executed", sw.Executed, total)
	}
}

// TestDominanceGates verifies the two disarm conditions: a non-monotone
// engine (UnlessFault) and a non-monotone condition (NotCond) must each
// disable dominance — and the sweep must stay correct via orbits alone.
func TestDominanceGates(t *testing.T) {
	engNM, mutsNM, reqsNM := setupNonMonotone(t)
	if p := newPruner(engNM, mutsNM, reqsNM); p.dominance {
		t.Error("dominance armed on an UnlessFault engine")
	}
	// Sanity: the plant really is non-monotone — adding c1.filter removes
	// the violation that c0.corrupt alone causes.
	r1, err := engNM.Run(epa.Scenario{{Component: "c0", Fault: "corrupt"}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := engNM.Run(epa.Scenario{
		{Component: "c0", Fault: "corrupt"}, {Component: "c1", Fault: "filter"}})
	if err != nil {
		t.Fatal(err)
	}
	if !Eval(reqsNM[0].Condition, nil, r1) || Eval(reqsNM[0].Condition, nil, r2) {
		t.Fatal("filter plant is unexpectedly monotone; the gate test is vacuous")
	}

	eng, muts, _ := setupSymmetric(t, 3)
	notReqs := []Requirement{{ID: "R-NOT", Severity: qual.High,
		Condition: Not(Comp("hub", epa.ErrValue))}}
	if p := newPruner(eng, muts, notReqs); p.dominance {
		t.Error("dominance armed on a NotCond requirement")
	}
	if p := newPruner(eng, muts, []Requirement{{ID: "R", Severity: qual.High,
		Condition: Comp("hub", epa.ErrValue)}}); !p.dominance {
		t.Error("dominance not armed on a monotone engine + condition")
	}

	// Full equivalence on the NotCond requirement set (orbit-only path).
	exhaustive, err := AnalyzeSweep(eng, muts, 2, notReqs, SweepConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := AnalyzeSweep(eng, muts, 2, notReqs, SweepConfig{Parallelism: 2, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if projection(pruned) != projection(exhaustive) {
		t.Fatal("orbit-only pruned sweep diverged on NotCond requirements")
	}
}

// TestMonotonicityContract asserts the dominance premise directly
// against the engine: on a Monotone() engine, growing the scenario can
// only grow every port's error state.
func TestMonotonicityContract(t *testing.T) {
	eng, muts, _ := setupWide(t, 5)
	if !eng.Monotone() {
		t.Fatal("wide chain must be monotone")
	}
	var scs []epa.Scenario
	faults.EnumerateStream(muts, 2, func(sc epa.Scenario) bool {
		scs = append(scs, sc)
		return true
	})
	for _, sub := range scs {
		for _, super := range scs {
			if len(sub) >= len(super) || !isSubScenario(sub, super) {
				continue
			}
			rSub, err := eng.Run(sub)
			if err != nil {
				t.Fatal(err)
			}
			rSuper, err := eng.Run(super)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				comp := fmt.Sprintf("c%d", i)
				for _, port := range []string{"in", "out"} {
					if !rSub.PortState(comp, port).Leq(rSuper.PortState(comp, port)) {
						t.Fatalf("monotonicity violated at %s.%s: %v ⊄ %v (sub %s super %s)",
							comp, port, rSub.PortState(comp, port), rSuper.PortState(comp, port),
							sub.Key(), super.Key())
					}
				}
			}
		}
	}
}

// TestSynthRecordsRestoreAcrossRuns: a pruned sweep persists
// synthesized rows as first-class cache records, so a re-run restores
// every row — executed or synthesized — without a single miss.
func TestSynthRecordsRestoreAcrossRuns(t *testing.T) {
	eng, muts, reqs := setupSymmetric(t, 4)
	dir := t.TempDir()
	ns := SweepNamespace(eng, muts)
	run := func() *Analysis {
		cache, err := store.Open(dir, ns, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		a, err := AnalyzeSweep(eng, muts, 2, reqs, SweepConfig{Parallelism: 2, Cache: cache, Prune: true})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := run()
	a2 := run()
	if projection(a1) != projection(a2) {
		t.Fatal("pruned cached rerun diverged")
	}
	if a2.Sweep.CacheMisses != 0 {
		t.Fatalf("second pruned run missed the cache %d times: %+v", a2.Sweep.CacheMisses, a2.Sweep)
	}
	if a2.Sweep.CacheHits == 0 {
		t.Fatalf("second pruned run never hit the cache: %+v", a2.Sweep)
	}
}

// TestCrashResumeWithPruning extends the PR 6 crash matrix: kill a
// PRUNED sweep mid-flight at the nastiest sites, resume with the same
// directories, and demand byte-identity with an uninterrupted pruned
// run (which TestPrunedMatchesExhaustive ties to the exhaustive one).
func TestCrashResumeWithPruning(t *testing.T) {
	eng, muts, reqs := setupSymmetric(t, 4) // 2^9 = 512 scenarios unbounded; k=3 keeps it quick
	baselineA, err := AnalyzeSweep(eng, muts, 3, reqs, SweepConfig{Parallelism: 4, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	baseline := projection(baselineA)
	ns := SweepNamespace(eng, muts)
	specs := []string{
		faultinject.SiteEPARun + "=panic@3",
		faultinject.SiteEPARun + "=cancel@5",
		faultinject.SiteSweepChunk + "=err@2",
		faultinject.SiteStoreWrite + "=torn@1",
		faultinject.SiteCheckpointWrite + "=torn@1",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			sweep := func(spec string) (*Analysis, error) {
				cache, err := store.Open(filepath.Join(dir, "cache"), ns, store.Options{FlushEvery: 8})
				if err != nil {
					t.Fatal(err)
				}
				defer cache.Close()
				ck, err := OpenCheckpoint(filepath.Join(dir, "ckpt"), 8)
				if err != nil {
					t.Fatal(err)
				}
				bud := chaosBudget(t, spec, budget.Limits{})
				return AnalyzeSweep(eng, muts, 3, reqs, SweepConfig{
					Budget: bud, Parallelism: 4, Cache: cache, Checkpoint: ck, Prune: true,
				})
			}
			a1, err1 := sweep(spec)
			_, _ = a1, err1 // any outcome is legal; the resume must repair it
			assertNoStrayTmp(t, dir)
			a2, err2 := sweep("")
			if err2 != nil {
				t.Fatalf("resume failed: %v", err2)
			}
			if a2.Truncation != nil {
				t.Fatalf("resume truncated: %v", a2.Truncation)
			}
			if got := projection(a2); got != baseline {
				t.Fatalf("resumed pruned report diverged:\n--- got ---\n%s\n--- want ---\n%s", got, baseline)
			}
			assertNoStrayTmp(t, dir)
		})
	}
}

// TestShardedSweepPartitionsAndMerges: m shard runs cover the space
// exactly once with globally consistent IDs, and a follow-up
// whole-space run over the shared cache merges their results without
// recomputing anything.
func TestShardedSweepPartitionsAndMerges(t *testing.T) {
	eng, muts, reqs := setupWide(t, 6) // 64 scenarios
	baselineA, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var baseRows []string
	for _, s := range baselineA.Scenarios {
		baseRows = append(baseRows, fmt.Sprintf("%s|%s|%v|%+v", s.ID, s.Scenario.Key(), s.Violated, s.Risk))
	}

	dir := t.TempDir()
	ns := SweepNamespace(eng, muts)
	const shards = 3
	var gotRows []string
	for i := 0; i < shards; i++ {
		cache, err := store.Open(dir, ns, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{
			Parallelism: 2, Cache: cache, ShardIndex: i, ShardCount: shards,
		})
		cache.Close()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%d/%d", i, shards); a.Sweep.Shard != want {
			t.Fatalf("shard tag = %q, want %q", a.Sweep.Shard, want)
		}
		for _, s := range a.Scenarios {
			gotRows = append(gotRows, fmt.Sprintf("%s|%s|%v|%+v", s.ID, s.Scenario.Key(), s.Violated, s.Risk))
		}
	}
	if strings.Join(gotRows, "\n") != strings.Join(baseRows, "\n") {
		t.Fatalf("shard union diverged:\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(gotRows, "\n"), strings.Join(baseRows, "\n"))
	}

	// Merge: the whole-space run over the shared cache is byte-identical
	// and recomputes nothing.
	cache, err := store.Open(dir, ns, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	merged, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{Parallelism: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if projection(merged) != projection(baselineA) {
		t.Fatal("merged report diverged from baseline")
	}
	if merged.Sweep.CacheMisses != 0 || merged.Sweep.CacheHits == 0 {
		t.Fatalf("merge recomputed scenarios: %+v", merged.Sweep)
	}
}

// TestShardedPrunedSweep: sharding composes with pruning — each pruned
// shard reports exactly its slice of the exhaustive report.
func TestShardedPrunedSweep(t *testing.T) {
	eng, muts, reqs := setupSymmetric(t, 4)
	baseline, err := AnalyzeSweep(eng, muts, 2, reqs, SweepConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got []ScenarioResult
	for i := 0; i < 2; i++ {
		a, err := AnalyzeSweep(eng, muts, 2, reqs, SweepConfig{
			Parallelism: 2, Prune: true, ShardIndex: i, ShardCount: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, a.Scenarios...)
	}
	if len(got) != len(baseline.Scenarios) {
		t.Fatalf("shard union has %d rows, want %d", len(got), len(baseline.Scenarios))
	}
	for i := range got {
		want := baseline.Scenarios[i]
		if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", want) {
			t.Fatalf("row %d diverged: %+v != %+v", i, got[i], want)
		}
	}
}

// TestShardCheckpointResume: a budget-capped shard resumes from its own
// per-shard checkpoint file and converges on its slice.
func TestShardCheckpointResume(t *testing.T) {
	eng, muts, reqs := setupWide(t, 6) // 64 scenarios; shard 1/2 = ranks [32,64)
	baseline, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ns := SweepNamespace(eng, muts)
	var a *Analysis
	runs := 0
	for ; runs < 10; runs++ {
		cache, err := store.Open(filepath.Join(dir, "cache"), ns, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ck, err := OpenCheckpointShard(filepath.Join(dir, "ckpt"), 4, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		a, err = AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{
			Budget:      budget.New(context.Background(), budget.Limits{MaxScenarios: 10}),
			Parallelism: 2, Cache: cache, Checkpoint: ck,
			ShardIndex: 1, ShardCount: 2,
		})
		cache.Close()
		if err != nil {
			t.Fatal(err)
		}
		if a.Truncation == nil {
			break
		}
		if !strings.Contains(a.Truncation.Detail, "shard 1/2") {
			t.Fatalf("run %d: truncation detail lacks shard provenance: %q", runs, a.Truncation.Detail)
		}
	}
	if a.Truncation != nil {
		t.Fatalf("shard never converged in %d runs: %v", runs, a.Truncation)
	}
	if runs == 0 {
		t.Fatal("first capped run should have truncated")
	}
	if a.Resume == nil || a.Resume.FromRank <= 32 {
		t.Fatalf("final run should resume above the shard floor: %+v", a.Resume)
	}
	want := baseline.Scenarios[32:]
	if len(a.Scenarios) != len(want) {
		t.Fatalf("shard rows = %d, want %d", len(a.Scenarios), len(want))
	}
	for i := range want {
		if fmt.Sprintf("%+v", a.Scenarios[i]) != fmt.Sprintf("%+v", want[i]) {
			t.Fatalf("row %d diverged: %+v != %+v", i, a.Scenarios[i], want[i])
		}
	}
	// The whole-space checkpoint file name stays free for a whole-space
	// sweep; the shard used its own.
	if _, err := OpenCheckpoint(filepath.Join(dir, "ckpt"), 4); err != nil {
		t.Fatal(err)
	}
}

// TestShardValidation: a bad shard index is an error, not a silent
// empty report.
func TestShardValidation(t *testing.T) {
	eng, muts, reqs := setupWide(t, 4)
	if _, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{ShardIndex: 2, ShardCount: 2}); err == nil {
		t.Error("out-of-range shard index must fail")
	}
	if _, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{ShardIndex: -1, ShardCount: 3}); err == nil {
		t.Error("negative shard index must fail")
	}
}
