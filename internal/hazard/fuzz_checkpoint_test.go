package hazard

import (
	"reflect"
	"testing"
)

// FuzzCheckpoint drives the checkpoint decoder with arbitrary bytes: it
// guards the trust boundary between on-disk state and the sweep, so it
// must never panic, and any state it accepts must survive a
// re-encode/decode cycle unchanged (no two frontiers aliasing).
func FuzzCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(ckptMagic))
	f.Add([]byte(ckptMagic + "crc:00000000\n"))
	f.Add(encodeCheckpoint(ckptState{Version: ckptVersion, Frontier: 5}))
	f.Add(encodeCheckpoint(ckptState{
		Version: ckptVersion, EngineHash: "ab", MutsHash: "cd", ReqsHash: "ef",
		MaxCard: 2, Frontier: 17, Complete: true,
		Ranges: []CardRange{{Card: 0, Upto: 1, Total: 1}},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		if st.Frontier < 0 {
			t.Fatalf("accepted negative frontier: %+v", st)
		}
		again, err := decodeCheckpoint(encodeCheckpoint(st))
		if err != nil {
			t.Fatalf("re-encode rejected: %v", err)
		}
		if !reflect.DeepEqual(again, st) {
			t.Fatalf("unstable roundtrip:\n%+v\n%+v", again, st)
		}
	})
}
