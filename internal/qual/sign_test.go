package qual

import (
	"testing"
	"testing/quick"
)

func allSigns() []Sign { return []Sign{SignUnknown, SignNeg, SignZero, SignPos} }

func TestAddSignTable(t *testing.T) {
	tests := []struct {
		a, b, want Sign
	}{
		{SignPos, SignPos, SignPos},
		{SignNeg, SignNeg, SignNeg},
		{SignPos, SignNeg, SignUnknown},
		{SignNeg, SignPos, SignUnknown},
		{SignZero, SignPos, SignPos},
		{SignPos, SignZero, SignPos},
		{SignZero, SignZero, SignZero},
		{SignZero, SignNeg, SignNeg},
		{SignUnknown, SignPos, SignUnknown},
		{SignUnknown, SignZero, SignUnknown},
		{SignUnknown, SignUnknown, SignUnknown},
	}
	for _, tt := range tests {
		if got := AddSign(tt.a, tt.b); got != tt.want {
			t.Errorf("AddSign(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMulSignTable(t *testing.T) {
	tests := []struct {
		a, b, want Sign
	}{
		{SignPos, SignPos, SignPos},
		{SignNeg, SignNeg, SignPos},
		{SignPos, SignNeg, SignNeg},
		{SignZero, SignUnknown, SignZero},
		{SignUnknown, SignZero, SignZero},
		{SignUnknown, SignPos, SignUnknown},
		{SignZero, SignPos, SignZero},
	}
	for _, tt := range tests {
		if got := MulSign(tt.a, tt.b); got != tt.want {
			t.Errorf("MulSign(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Soundness property: the qualitative operations over-approximate the
// concrete ones — for all floats x,y: SignOf(x op y) refines qualOp(SignOf).
func TestSignSoundness(t *testing.T) {
	add := func(x, y float64) bool {
		got := SignOf(x + y)
		abs := AddSign(SignOf(x), SignOf(y))
		return got.Refines(abs)
	}
	mul := func(x, y float64) bool {
		// Guard against float overflow to ±Inf changing sign semantics;
		// Inf keeps its sign so the property still holds, but NaN (0*Inf)
		// does not arise from finite x,y here.
		got := SignOf(x * y)
		abs := MulSign(SignOf(x), SignOf(y))
		return got.Refines(abs)
	}
	if err := quick.Check(add, nil); err != nil {
		t.Errorf("add soundness: %v", err)
	}
	if err := quick.Check(mul, nil); err != nil {
		t.Errorf("mul soundness: %v", err)
	}
}

func TestSignAlgebraLaws(t *testing.T) {
	for _, a := range allSigns() {
		if got := NegSign(NegSign(a)); got != a {
			t.Errorf("double negation of %v = %v", a, got)
		}
		if got := AddSign(a, SignZero); got != a {
			t.Errorf("zero identity: %v + 0 = %v", a, got)
		}
		for _, b := range allSigns() {
			if AddSign(a, b) != AddSign(b, a) {
				t.Errorf("AddSign not commutative at (%v,%v)", a, b)
			}
			if MulSign(a, b) != MulSign(b, a) {
				t.Errorf("MulSign not commutative at (%v,%v)", a, b)
			}
		}
	}
}

func TestParseSign(t *testing.T) {
	for _, s := range allSigns() {
		got, err := ParseSign(s.String())
		if err != nil {
			t.Fatalf("ParseSign(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip %v = %v", s, got)
		}
	}
	if _, err := ParseSign("++"); err == nil {
		t.Error("expected error for invalid sign")
	}
}
