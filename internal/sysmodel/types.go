// Package sysmodel implements the IT/OT system model of the framework
// (paper Fig. 1, step 1): typed components with ports, directed signal-flow
// connections for the IT part and undirected shared-quantity connections
// for the physical part (§II-B), composite components for hierarchical
// refinement (§VI), component-type libraries for reuse, aspect merging, and
// JSON model exchange.
package sysmodel

import (
	"fmt"
)

// FlowKind distinguishes the two interconnection semantics of a CPS
// (paper §II-B).
type FlowKind int

// Flow kinds.
const (
	// SignalFlow is a directed data flow between an output and an input of
	// IT components.
	SignalFlow FlowKind = iota + 1
	// QuantityFlow is an undirected shared physical quantity governed by a
	// conservation law (modeled through in-out ports).
	QuantityFlow
)

// String implements fmt.Stringer.
func (f FlowKind) String() string {
	switch f {
	case SignalFlow:
		return "signal"
	case QuantityFlow:
		return "quantity"
	default:
		return "unknown-flow"
	}
}

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	In PortDir = iota + 1
	Out
	InOut
)

// String implements fmt.Stringer.
func (d PortDir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return "unknown-dir"
	}
}

// PortSpec declares a port on a component type.
type PortSpec struct {
	Name string   `json:"name"`
	Dir  PortDir  `json:"dir"`
	Flow FlowKind `json:"flow"`
}

// FaultModeSpec declares a fault mode a component type can exhibit
// (paper §IV-A step 2: "identify fault modes of components").
type FaultModeSpec struct {
	// Name identifies the fault mode, e.g. "stuck_at_open", "no_signal".
	Name string `json:"name"`
	// Description is a human explanation.
	Description string `json:"description,omitempty"`
	// Likelihood is a qualitative O-RA label (VL..VH) of spontaneous
	// occurrence; attack-induced activation is modeled separately.
	Likelihood string `json:"likelihood,omitempty"`
	// AttackOnly marks modes that never occur spontaneously: they are
	// declared so vulnerabilities and techniques can inject them, but the
	// candidate generator does not create a spontaneous mutation (and
	// mitigation blocking therefore fully covers them).
	AttackOnly bool `json:"attackOnly,omitempty"`
}

// ComponentType is a reusable library entry (paper: "component-type
// libraries support reusing already existing sub-models").
type ComponentType struct {
	Name        string          `json:"name"`
	Description string          `json:"description,omitempty"`
	Layer       string          `json:"layer,omitempty"` // default layer
	Ports       []PortSpec      `json:"ports,omitempty"`
	FaultModes  []FaultModeSpec `json:"faultModes,omitempty"`
}

// Port returns the port spec with the given name.
func (ct *ComponentType) Port(name string) (PortSpec, bool) {
	for _, p := range ct.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return PortSpec{}, false
}

// FaultMode returns the named fault mode spec.
func (ct *ComponentType) FaultMode(name string) (FaultModeSpec, bool) {
	for _, fm := range ct.FaultModes {
		if fm.Name == name {
			return fm, true
		}
	}
	return FaultModeSpec{}, false
}

// TypeLibrary is a collection of component types.
type TypeLibrary struct {
	types map[string]*ComponentType
	order []string
}

// NewTypeLibrary builds an empty library.
func NewTypeLibrary() *TypeLibrary {
	return &TypeLibrary{types: map[string]*ComponentType{}}
}

// Add registers a type; duplicate names are an error.
func (l *TypeLibrary) Add(ct *ComponentType) error {
	if ct.Name == "" {
		return fmt.Errorf("sysmodel: component type with empty name")
	}
	if _, dup := l.types[ct.Name]; dup {
		return fmt.Errorf("sysmodel: duplicate component type %q", ct.Name)
	}
	l.types[ct.Name] = ct
	l.order = append(l.order, ct.Name)
	return nil
}

// MustAdd is Add that panics; for static libraries.
func (l *TypeLibrary) MustAdd(ct *ComponentType) {
	if err := l.Add(ct); err != nil {
		panic(err)
	}
}

// Get looks up a type by name.
func (l *TypeLibrary) Get(name string) (*ComponentType, bool) {
	ct, ok := l.types[name]
	return ct, ok
}

// Names returns the registered type names in insertion order.
func (l *TypeLibrary) Names() []string {
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// Merge adds all types of other; duplicates are an error.
func (l *TypeLibrary) Merge(other *TypeLibrary) error {
	for _, name := range other.order {
		if err := l.Add(other.types[name]); err != nil {
			return err
		}
	}
	return nil
}

// PortRef addresses a port of a component instance.
type PortRef struct {
	Component string `json:"component"`
	Port      string `json:"port"`
}

// String implements fmt.Stringer.
func (p PortRef) String() string { return p.Component + "." + p.Port }

// Connection links two ports. Signal flows connect an Out to an In port;
// quantity flows connect two InOut ports and are semantically undirected.
type Connection struct {
	From PortRef  `json:"from"`
	To   PortRef  `json:"to"`
	Flow FlowKind `json:"flow"`
	// Label is an optional human annotation, e.g. "control message".
	Label string `json:"label,omitempty"`
}

// Component is a component instance in a model.
type Component struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Type string `json:"type"`
	// Layer overrides the type's default layer (ArchiMate-style:
	// business / application / technology / physical).
	Layer string `json:"layer,omitempty"`
	// Attrs carries security and deployment metadata: exposure
	// ("public"/"internal"), software version, deployedOn, criticality...
	Attrs map[string]string `json:"attrs,omitempty"`
	// Sub is the inner model of a composite component, used by
	// hierarchical asset refinement (paper §VI, Fig. 4).
	Sub *Model `json:"sub,omitempty"`
	// Bindings map the composite's outer port names to inner ports.
	Bindings map[string]PortRef `json:"bindings,omitempty"`
}

// Attr returns the attribute value or "".
func (c *Component) Attr(key string) string {
	if c.Attrs == nil {
		return ""
	}
	return c.Attrs[key]
}

// SetAttr sets an attribute, allocating the map on first use.
func (c *Component) SetAttr(key, value string) {
	if c.Attrs == nil {
		c.Attrs = map[string]string{}
	}
	c.Attrs[key] = value
}

// IsComposite reports whether the component has an inner model.
func (c *Component) IsComposite() bool { return c.Sub != nil }

// Requirement is a system requirement: an LTLf formula over qualitative
// state propositions (paper §VII: R1, R2).
type Requirement struct {
	ID          string `json:"id"`
	Description string `json:"description,omitempty"`
	// Formula is LTLf surface syntax, e.g. "G !state(tank,overflow)".
	Formula string `json:"formula"`
	// Severity is the qualitative loss magnitude (VL..VH) of violating
	// this requirement, feeding the risk quantization step.
	Severity string `json:"severity,omitempty"`
}
