package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkS2_EPAScaling/chain10-8     	  331498	      3482 ns/op	    1296 B/op	       9 allocs/op
BenchmarkS3_ScenarioSpace/k=1/enumerate-8 	   51862	     23434 ns/op
PASS
`

func TestParseStripsProcsSuffixAndCapturesMem(t *testing.T) {
	entries, err := parse(strings.NewReader(sample), new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := entries["BenchmarkS2_EPAScaling/chain10"]
	if !ok || e.NsPerOp != 3482 || e.BytesPerOp != 1296 || e.AllocsPerOp != 9 {
		t.Fatalf("entries = %+v", entries)
	}
	if e, ok := entries["BenchmarkS3_ScenarioSpace/k=1/enumerate"]; !ok || e.NsPerOp != 23434 || e.BytesPerOp != 0 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestRunMergesLabelsAndReplacesOnRerun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sample), new(bytes.Buffer), "before", out); err != nil {
		t.Fatal(err)
	}
	after := strings.ReplaceAll(sample, "3482", "1000")
	if err := run(strings.NewReader(after), new(bytes.Buffer), "after", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var ledger map[string]map[string]Entry
	if err := json.Unmarshal(data, &ledger); err != nil {
		t.Fatal(err)
	}
	if ledger["before"]["BenchmarkS2_EPAScaling/chain10"].NsPerOp != 3482 {
		t.Errorf("before lost: %+v", ledger["before"])
	}
	if ledger["after"]["BenchmarkS2_EPAScaling/chain10"].NsPerOp != 1000 {
		t.Errorf("after wrong: %+v", ledger["after"])
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader("no benchmarks here\n"), new(bytes.Buffer), "x", out); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}
