// Package core wires the framework's pipeline (paper Fig. 1) into one
// assessment API: system model -> candidate system mutations -> reasoning
// (native EPA fixpoint or the ASP encoding) -> hazard identification ->
// optional CEGAR-styled refinement -> qualitative risk analysis ->
// mitigation solution space -> cost-benefit optimization.
package core

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"time"

	"cpsrisk/internal/artifact"
	"cpsrisk/internal/attack"
	"cpsrisk/internal/budget"
	"cpsrisk/internal/cegar"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/mitigation"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/optimize"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/store"
	"cpsrisk/internal/sysmodel"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Model is the merged system model; composites are refined before
	// analysis (the original is not modified).
	Model *sysmodel.Model
	// Types is the component-type library.
	Types *sysmodel.TypeLibrary
	// Behaviors is the EPA behaviour library; nil uses conservative
	// defaults for every type.
	Behaviors *epa.BehaviorLibrary
	// KB injects attack-induced candidates; nil analyzes spontaneous
	// faults only.
	KB *kb.KB
	// Requirements are the violation conditions checked per scenario.
	Requirements []hazard.Requirement
	// MutationSources selects candidate generation inputs; zero value with
	// a non-empty ExtraMutations analyzes exactly those.
	MutationSources faults.Options
	// ExtraMutations are hand-specified candidates merged into the set.
	ExtraMutations []faults.Mutation
	// ActiveMitigations filters blocked candidates before analysis
	// (paper Listing 1 semantics).
	ActiveMitigations map[string]bool
	// MaxCardinality bounds scenario size (negative = unbounded).
	MaxCardinality int
	// UseASP routes hazard identification through the embedded formal
	// method instead of the native fixpoint engine.
	UseASP bool
	// Optimize runs the mitigation cost-benefit step.
	Optimize bool
	// Budget caps mitigation spending (negative = unlimited); only used
	// when Optimize is set.
	Budget int
	// Oracle enables CEGAR validation of the findings when non-nil,
	// classifying hazards as confirmed/spurious/undetermined.
	Oracle cegar.Oracle
	// Resources governs computational effort: wall-clock timeout, solver
	// decision/conflict caps, grounding and scenario caps. The zero value
	// is unlimited. When a cap fires the run degrades gracefully — partial
	// results plus a Degradation report — instead of erroring out.
	Resources budget.Limits
	// Parallelism is the worker-pool size for the native scenario sweep
	// and for CEGAR counterexample validation: 0 picks GOMAXPROCS, 1
	// forces the sequential path. The results are identical either way;
	// only wall-clock time changes. When an Oracle is configured with
	// Parallelism != 1 it must be safe for concurrent Check calls.
	// It also sizes the run-wide worker-pool governor: sweep workers,
	// oracle checks, and solver portfolio helpers beyond each construct's
	// first all draw from one Parallelism-sized pool, so concurrent
	// stages cannot multiply into oversubscription.
	Parallelism int
	// SolverWorkers is the portfolio width for ASP solving: N diversified
	// CDCL engines race each query, sharing learned clauses. 0 derives a
	// width from Parallelism (capped at 4), 1 — the default via the CLI —
	// is exactly the single-engine solver. Only the ASP path (UseASP or
	// ASP-screened validation) is affected.
	SolverWorkers int
	// SolverDeterministic forces single-engine search regardless of
	// SolverWorkers, for byte-identical reports across runs.
	SolverDeterministic bool
	// TraceID is an external correlation ID for the run — the assessment
	// service stamps every request's trace ID here so logs, the JSON
	// report, and the Chrome trace export all carry the same handle.
	// Empty means unidentified; it never affects analysis results.
	TraceID string
	// Tenant scopes artifact-cache keys in multi-tenant service runs: it
	// folds into the configuration hash, so two tenants submitting the
	// same model never share warm/delta resolutions (cache isolation by
	// construction). Empty — the CLI default — is itself one tenant.
	Tenant string
	// Trace, when non-nil, collects a hierarchical span tree of the run
	// (stage -> sub-stage -> per-worker/per-chunk/per-query), snapshotted
	// into Assessment.Trace. Nil disables tracing at the cost of one
	// pointer check per instrumentation site.
	Trace *obs.Trace
	// Metrics, when non-nil, aggregates pipeline counters and histograms
	// (sweep throughput, solver effort, CEGAR verdicts), snapshotted into
	// Assessment.Metrics. Nil disables metrics collection.
	Metrics *obs.Registry
	// CacheDir, when set, persists EPA results across runs: the scenario
	// sweep memoizes state vectors keyed by (engine hash, scenario), so a
	// repeated assessment of the same plant skips completed propagation
	// work. Corrupt cache state is quarantined and recomputed, never
	// trusted and never fatal.
	CacheDir string
	// CheckpointDir, when set, makes the sweep crash-safe: the completion
	// frontier is persisted there and the next run over identical inputs
	// resumes instead of starting over, producing the identical report.
	// Unless CacheDir is also set, the result cache lives under
	// CheckpointDir/cache (resume requires the cache to restore results).
	CheckpointDir string
	// NoPrune disables sweep pruning (dominance skipping and symmetry
	// orbit replication). Pruning is on by default because it never
	// changes the report — it only skips EPA runs whose outcome is
	// already implied — but this switch forces every scenario through
	// the engine, e.g. to cross-check the pruner itself.
	NoPrune bool
	// ShardIndex / ShardCount split the scenario space by global rank
	// into ShardCount near-equal contiguous ranges and sweep only range
	// ShardIndex (0-based). Shards share the result cache (and cache
	// directory), so a final whole-space run merges their work without
	// recomputation. ShardCount <= 1 sweeps the whole space. Sharding is
	// a native-sweep feature and is rejected together with UseASP.
	ShardIndex, ShardCount int
	// ArtifactCache, when non-nil, memoizes compiled pipeline artifacts
	// (lowered model, EPA engine, finished analysis, grounded solver
	// session) across runs in this process. A repeat run of an identical
	// model+configuration returns the cached analysis without any EPA or
	// solver work ("warm"); a run whose model differs from a cached one
	// by at most MaxDeltaTouched components re-executes only the
	// invalidated scenario ranks ("delta"); anything else runs cold. The
	// resolution taken is stamped into Assessment.Artifact. The cache is
	// safe for concurrent use and may be shared by many runs; runs with
	// Faults armed bypass it entirely.
	ArtifactCache *artifact.Cache
	// Faults arms the deterministic fault-injection harness: injected
	// panics, I/O errors, torn writes and cancellations at the registered
	// sites (see faultinject). Nil — the default — costs one pointer
	// check per site. Production code never sets this; the chaos suite
	// and the CPSRISK_FAULTS env knob do.
	Faults *faultinject.Injector
}

// Assessment is the pipeline output.
type Assessment struct {
	// TraceID echoes Config.TraceID (empty when none was assigned).
	TraceID string
	// ModelStats describes the analyzed (flattened) model.
	ModelStats sysmodel.Stats
	// Candidates is the full candidate-mutation set before mitigation
	// filtering; Analyzed is the set actually analyzed.
	Candidates []faults.Mutation
	Analyzed   []faults.Mutation
	// Compromisable lists the assets an attacker can take over (attack
	// graph over the KB); nil without a KB.
	Compromisable []string
	// Analysis holds the exhaustive scenario results.
	Analysis *hazard.Analysis
	// Ranked is the risk-prioritized scenario list.
	Ranked []hazard.ScenarioResult
	// RelevantMitigations spans the mitigation solution space.
	RelevantMitigations []*kb.Mitigation
	// Plan and Phases are the optimization outputs (Optimize only).
	Plan   optimize.Plan
	Phases []optimize.Phase
	// Refinement is the CEGAR outcome (Oracle only).
	Refinement *cegar.Result
	// Artifact records how the artifact cache resolved this run (nil
	// unless Config.ArtifactCache was set and consulted).
	Artifact *ArtifactInfo
	// Degradation records every resource-driven truncation of the run.
	// Always non-nil; empty when the assessment completed exactly.
	Degradation *budget.Degradation
	// Duration is the wall-clock time of the whole pipeline run, taken
	// from the root span when tracing is on and measured directly
	// otherwise. Always populated.
	Duration time.Duration
	// Trace is the span-tree snapshot of the run (nil unless Config.Trace
	// was set).
	Trace *obs.SpanSnapshot
	// Metrics is the metrics snapshot of the run (nil unless
	// Config.Metrics was set).
	Metrics *obs.MetricsSnapshot
}

// runStage executes one pipeline stage with a panic guard: a panic inside
// any stage (a malformed behaviour library, a bad custom Condition, a
// solver bug) becomes an error naming the stage instead of crashing the
// embedding tool. Regular errors pass through unwrapped.
func runStage(name string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: stage %q panicked: %v", name, r)
		}
	}()
	return f()
}

// Run executes the pipeline without external cancellation. Resource
// limits from cfg.Resources still apply.
func Run(cfg Config) (*Assessment, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx executes the pipeline under ctx and cfg.Resources. Exhausting
// the budget is not an error: the assessment degrades stage by stage —
// hazard identification falls back to the largest fully-analyzed
// cardinality, the ASP path falls back to the native fixpoint engine,
// validation and optimization are skipped when no time remains — and
// every truncation is recorded in Assessment.Degradation.
func RunCtx(ctx context.Context, cfg Config) (*Assessment, error) {
	if cfg.Model == nil || cfg.Types == nil {
		return nil, fmt.Errorf("core: model and type library are required")
	}
	if len(cfg.Requirements) == 0 {
		return nil, fmt.Errorf("core: at least one requirement is required")
	}
	if cfg.ShardCount > 1 && cfg.UseASP {
		return nil, fmt.Errorf("core: sharding is a native-sweep feature; it cannot be combined with the ASP path")
	}
	// The fault injector rides the context like the tracing span does, so
	// every governed stage downstream reaches it through its budget. Its
	// cancel action is bound to a real cancellation of this run.
	if cfg.Faults != nil {
		var cancelInj context.CancelFunc
		ctx, cancelInj = context.WithCancel(ctx)
		defer cancelInj()
		cfg.Faults.BindCancel(cancelInj)
		ctx = faultinject.ContextWith(ctx, cfg.Faults)
	}
	// The worker-pool governor rides the context like the fault injector:
	// every budget derived downstream captures it, and every parallel
	// construct (sweep pool, oracle pool, solver portfolio) asks it for
	// slots beyond its first worker. One pool for the whole run keeps
	// concurrent stages from oversubscribing the machine. A governor
	// already installed in ctx is reused instead — that is how the
	// assessment service meters many concurrent tenants' runs against
	// one machine-wide pool.
	gov := budget.GovernorFromContext(ctx)
	if gov == nil {
		gov = budget.NewGovernor(cfg.Parallelism)
		ctx = budget.ContextWithGovernor(ctx, gov)
	}
	bud, cancel := budget.WithTimeout(ctx, cfg.Resources)
	defer cancel()

	out := &Assessment{TraceID: cfg.TraceID, Degradation: &budget.Degradation{}}

	// Observability rides the budget's context: every stage derives a
	// budget whose context carries the stage span (and the metrics
	// registry), so worker pools and solver sessions downstream attach
	// sub-spans without any API changes. With tracing and metrics off the
	// derived budget is bud itself and nothing is paid.
	start := time.Now()
	root := cfg.Trace.Root()
	baseCtx := obs.ContextWithRegistry(bud.Context(), cfg.Metrics)
	baseCtx = obs.ContextWithSpan(baseCtx, root)
	obsBud := bud
	if cfg.Trace != nil || cfg.Metrics != nil {
		obsBud = budget.New(baseCtx, bud.Limits())
	}
	stageBud := func(sp *obs.Span) *budget.Budget {
		if sp == nil {
			return obsBud
		}
		return budget.New(obs.ContextWithSpan(baseCtx, sp), bud.Limits())
	}
	stage := func(name string, f func(b *budget.Budget) error) error {
		sp := root.StartChild(name)
		defer sp.End()
		return runStage(name, func() error {
			b := stageBud(sp)
			// Stage boundaries are fault-injection sites, and transient
			// stage failures get one retry cycle — the harness's proof
			// that the pipeline shell recovers from recoverable faults.
			return faultinject.Retry(b.Context(), 2, time.Millisecond, func() error {
				if inj := b.Injector(); inj != nil {
					if err := inj.Fire(faultinject.SiteStagePrefix + name); err != nil {
						return err
					}
				}
				return f(b)
			})
		})
	}
	finish := func() {
		out.Duration = time.Since(start)
		if cfg.Metrics != nil {
			cfg.Metrics.Gauge("governor.capacity").Set(int64(gov.Capacity()))
			cfg.Metrics.Gauge("governor.granted").Set(gov.Granted())
			cfg.Metrics.Gauge("governor.denied").Set(gov.Denied())
		}
		if cfg.Trace != nil {
			cfg.Trace.Finish()
			out.Duration = root.Duration()
			out.Trace = cfg.Trace.Snapshot()
		}
		if cfg.Metrics != nil {
			out.Metrics = cfg.Metrics.Snapshot()
		}
	}

	var (
		model     *sysmodel.Model
		behaviors *epa.BehaviorLibrary
		eng       *epa.Engine
		muts      []faults.Mutation
		analyzed  []faults.Mutation
	)
	err := stage("model", func(_ *budget.Budget) error {
		model = cfg.Model.Clone()
		if err := model.RefineAll(); err != nil {
			return fmt.Errorf("core: refine: %w", err)
		}
		if err := model.Validate(cfg.Types); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		behaviors = cfg.Behaviors
		if behaviors == nil {
			behaviors = epa.NewBehaviorLibrary(cfg.Types)
		}
		out.ModelStats = model.Stats()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Step 2: candidate system mutations.
	err = stage("candidates", func(_ *budget.Budget) error {
		var err error
		muts, err = faults.Candidates(model, cfg.Types, cfg.KB, cfg.MutationSources)
		if err != nil {
			return err
		}
		muts = mergeMutations(muts, cfg.ExtraMutations)
		out.Candidates = muts

		if cfg.KB != nil {
			g, err := attack.Build(model, cfg.Types, cfg.KB, attack.Options{
				ActiveMitigations: cfg.ActiveMitigations,
			})
			if err != nil {
				return err
			}
			out.Compromisable = g.Compromisable()
		}

		analyzed = muts
		if cfg.KB != nil && len(cfg.ActiveMitigations) > 0 {
			analyzed = mitigation.Filter(cfg.KB, muts, cfg.ActiveMitigations)
		}
		out.Analyzed = analyzed
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Steps 3-4: reasoning and hazard identification. The ASP path can
	// abort wholesale (grounding or solving exhausted); when it does, the
	// native fixpoint engine takes over — it degrades per scenario rather
	// than per answer set, so a partial result is always available.
	err = stage("hazard", func(b *budget.Budget) error {
		var err error
		// Artifact-cache resolution. An exact warm hit returns the cached
		// engine and analysis with no compile, sweep, or solver work; a
		// miss falls through, possibly arming delta re-assessment below.
		ac := cfg.ArtifactCache
		var (
			fp    *sysmodel.Fingerprint
			key   artifact.Key
			entry *artifact.Entry
		)
		if ac != nil && cfg.Faults == nil {
			fp = model.Fingerprint()
			key = artifact.Key{Model: fp.ModelHash, Cfg: cfgHash(cfg)}
			out.Artifact = &ArtifactInfo{Path: "cold", ModelHash: fmt.Sprintf("%016x", fp.ModelHash)}
			if e, ok := ac.Get(key); ok && e.Complete {
				out.Artifact.Path = "warm"
				bump(cfg.Metrics, "artifact.hits")
				eng = e.Engine
				out.Analysis = e.Analysis
				out.Ranked = e.Ranked()
				return nil
			}
			bump(cfg.Metrics, "artifact.misses")
			entry = &artifact.Entry{}
		}
		// Nearest-parent resolution for delta re-assessment: the closest
		// complete entry under the same configuration, within the K gate.
		var (
			parent      *artifact.Entry
			parentDelta *sysmodel.Delta
		)
		if entry != nil && cfg.ShardCount <= 1 {
			if p, d := ac.Nearest(key.Cfg, fp); p != nil && d.Touched() <= MaxDeltaTouched {
				parent, parentDelta = p, d
			}
		}
		var affected map[string]bool
		if parent != nil && !cfg.UseASP {
			affected = affectedComponents(parent.Model, model, parentDelta)
			if len(affected) == 0 && sameScoredMutations(parent.Analyzed, analyzed) {
				// Zero-invalidation delta: the edit is invisible to the
				// engine and the candidate scoring is identical, so the
				// parent's analysis IS this run's analysis. Re-register it
				// under the child hash so successive edits keep chaining.
				out.Artifact.Path = "delta"
				out.Artifact.Touched = parentDelta.Touched()
				bump(cfg.Metrics, "artifact.delta_reassess")
				eng = parent.Engine
				out.Analysis = parent.Analysis
				out.Ranked = parent.Ranked()
				entry.Fingerprint = fp
				entry.Model = model
				entry.Engine = eng
				entry.Candidates = out.Candidates
				entry.Analyzed = analyzed
				entry.Compromisable = out.Compromisable
				entry.Analysis = out.Analysis
				entry.SetRanked(out.Ranked)
				entry.Complete = out.Analysis.Truncation == nil && !out.Degradation.Degraded()
				entry.Pins = []any{cfg.Types, cfg.Behaviors, cfg.KB}
				ac.Put(key, entry)
				if cfg.Metrics != nil {
					cfg.Metrics.Gauge("artifact.evictions").Set(ac.Stats().Evictions)
				}
				return nil
			}
		}
		if parent != nil && behaviorallyEmpty(parentDelta) {
			// A metadata-only diff compiles to an identical engine; skip
			// the recompile.
			eng = parent.Engine
		} else {
			eng, err = epa.NewEngine(model, behaviors)
			if err != nil {
				return err
			}
		}
		// Durability machinery: the persistent result cache and the sweep
		// checkpoint. Both are best-effort — an unopenable directory
		// degrades the run (recorded, sweep proceeds in-memory) rather
		// than failing an otherwise sound assessment.
		sweepCfg := hazard.SweepConfig{
			Budget: b, Parallelism: cfg.Parallelism,
			Prune:      !cfg.NoPrune,
			ShardIndex: cfg.ShardIndex, ShardCount: cfg.ShardCount,
		}
		cacheDir := cfg.CacheDir
		if cacheDir == "" && cfg.CheckpointDir != "" {
			cacheDir = filepath.Join(cfg.CheckpointDir, "cache")
		}
		if cacheDir != "" {
			cache, cerr := store.Open(cacheDir, hazard.SweepNamespace(eng, analyzed), store.Options{
				Registry: cfg.Metrics,
				Injector: b.Injector(),
			})
			if cerr != nil {
				out.Degradation.Add("hazard", "cache-unavailable", cerr.Error())
			} else {
				defer cache.Close()
				sweepCfg.Cache = cache
			}
		}
		if cfg.CheckpointDir != "" {
			ck, kerr := hazard.OpenCheckpointShard(cfg.CheckpointDir, 0, cfg.ShardIndex, cfg.ShardCount)
			if kerr != nil {
				out.Degradation.Add("hazard", "checkpoint-unavailable", kerr.Error())
			} else {
				sweepCfg.Checkpoint = ck
			}
		}
		// Delta re-assessment (native sweep, whole space): the nearest
		// complete parent under the same configuration supplies a reuse
		// oracle, so only scenarios the edit could have changed execute.
		if parent != nil && !cfg.UseASP {
			sweepCfg.Reuse = deltaOracle(parent.Analysis, affected)
			out.Artifact.Path = "delta"
			out.Artifact.Touched = parentDelta.Touched()
			out.Artifact.Affected = len(affected)
			bump(cfg.Metrics, "artifact.delta_reassess")
		}
		if cfg.UseASP {
			aspOpts := hazard.ASPOptions{
				Budget:        b,
				SolverWorkers: cfg.solverWorkers(),
				Deterministic: cfg.SolverDeterministic,
			}
			var migrated *solver.Session
			if entry != nil {
				// Retain the grounded session in the entry for future
				// deltas; migrate the parent's session when the edit is
				// invisible to the encoding (metadata-only diff, identical
				// candidate activations) — no re-grounding, learning kept.
				aspOpts.KeepSession = func(s *solver.Session) { entry.Session = s }
				if parent != nil && behaviorallyEmpty(parentDelta) &&
					sameActivations(parent.Analyzed, analyzed) {
					if migrated = parent.TakeSession(); migrated != nil {
						aspOpts.Session = migrated
						out.Artifact.Path = "delta"
						out.Artifact.Touched = parentDelta.Touched()
						bump(cfg.Metrics, "artifact.delta_reassess")
					}
				}
			}
			out.Analysis, err = hazard.AnalyzeASPOpts(eng, analyzed, cfg.MaxCardinality, cfg.Requirements, aspOpts)
			if migrated != nil && (entry == nil || entry.Session != migrated) {
				// The analysis did not retain the migrated session (error
				// or budget fallback below): it is ours to close.
				migrated.Close()
			}
			if ex, ok := budget.Exhausted(err); ok {
				t := budget.Truncation{Stage: "hazard-asp", Reason: ex.Reason,
					Detail: "ASP identification aborted; falling back to the native fixpoint engine"}
				t.Stamp(b.Context())
				out.Degradation.Record(t)
				out.Analysis, err = hazard.AnalyzeSweep(eng, analyzed, cfg.MaxCardinality, cfg.Requirements, sweepCfg)
			}
		} else {
			out.Analysis, err = hazard.AnalyzeSweep(eng, analyzed, cfg.MaxCardinality, cfg.Requirements, sweepCfg)
		}
		if err != nil {
			return err
		}
		if out.Analysis.Truncation != nil {
			out.Degradation.Record(*out.Analysis.Truncation)
		}
		out.Ranked = out.Analysis.Ranked()
		if entry != nil {
			entry.Fingerprint = fp
			entry.Model = model
			entry.Engine = eng
			entry.Candidates = out.Candidates
			entry.Analyzed = analyzed
			entry.Compromisable = out.Compromisable
			entry.Analysis = out.Analysis
			entry.SetRanked(out.Ranked)
			entry.Complete = out.Analysis.Truncation == nil && !out.Degradation.Degraded()
			entry.Pins = []any{cfg.Types, cfg.Behaviors, cfg.KB}
			ac.Put(key, entry)
			if cfg.Metrics != nil {
				cfg.Metrics.Gauge("artifact.evictions").Set(ac.Stats().Evictions)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Step 5: CEGAR-styled validation (single-level loop against the
	// configured oracle; multi-level refinement is driven via the cegar
	// package directly). Skipped entirely when the budget is already
	// spent — validating against a concrete oracle is the most expensive
	// stage and partial hazard results are still worth reporting.
	if cfg.Oracle != nil {
		if budErr := bud.Err("validate"); budErr != nil {
			if !out.Degradation.RecordError(budErr) {
				return nil, budErr
			}
			stampLast(out.Degradation, baseCtx)
		} else {
			err = stage("validate", func(b *budget.Budget) error {
				// On the ASP path the formal encoding is already the source
				// of truth, so the screened loop pre-filters counterexamples
				// through a per-level solver session before the oracle runs;
				// the native path keeps the oracle-only loop.
				loop := cegar.RunParallel
				if cfg.UseASP {
					loop = cegar.RunParallelScreened
				}
				ref, err := loop([]cegar.Level{{
					Name:         "assessment",
					Engine:       eng,
					Mutations:    analyzed,
					Requirements: cfg.Requirements,
				}}, cfg.Oracle, cfg.MaxCardinality, b, cfg.Parallelism)
				if err != nil {
					return err
				}
				out.Refinement = ref
				for _, t := range ref.Truncations {
					out.Degradation.Record(t)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}

	// Steps 6-7: mitigation space and cost-benefit optimization.
	if cfg.KB != nil {
		err = stage("mitigation", func(b *budget.Budget) error {
			out.RelevantMitigations = mitigation.Relevant(cfg.KB, muts)
			if !cfg.Optimize {
				return nil
			}
			if budErr := b.Err("optimize"); budErr != nil {
				if !out.Degradation.RecordError(budErr) {
					return budErr
				}
				stampLast(out.Degradation, b.Context())
				return nil
			}
			problem := &optimize.Problem{Budget: cfg.Budget}
			for _, m := range out.RelevantMitigations {
				problem.Options = append(problem.Options, optimize.Option{
					ID: m.ID, Cost: m.Cost + m.MaintenanceCost,
				})
			}
			problem.Scenarios = mitigation.PrepareLosses(cfg.KB, out.Analysis, muts)
			var err error
			out.Plan, err = problem.Optimal()
			if err != nil {
				return err
			}
			out.Phases, _, err = problem.MultiPhase()
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	finish()
	return out, nil
}

// solverWorkers resolves the effective portfolio width: the explicit
// SolverWorkers value, or — when 0 — a width auto-derived from
// Parallelism (GOMAXPROCS when that is 0 too), capped at 4 so the
// per-engine memory cost stays bounded on wide machines.
func (cfg Config) solverWorkers() int {
	if cfg.SolverWorkers != 0 {
		return cfg.SolverWorkers
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > 4 {
		p = 4
	}
	return p
}

// stampLast annotates the most recent degradation entry with the span
// and elapsed time from ctx (no-op when untraced or empty).
func stampLast(d *budget.Degradation, ctx context.Context) {
	if n := len(d.Truncations); n > 0 {
		d.Truncations[n-1].Stamp(ctx)
	}
}

// mergeMutations unions the extra candidates into the generated set,
// merging sources and keeping the maximum likelihood per activation.
func mergeMutations(base, extra []faults.Mutation) []faults.Mutation {
	if len(extra) == 0 {
		return base
	}
	idx := map[epa.Activation]int{}
	out := append([]faults.Mutation(nil), base...)
	for i, m := range out {
		idx[m.Activation] = i
	}
	for _, m := range extra {
		if i, ok := idx[m.Activation]; ok {
			out[i].Sources = mergeSources(out[i].Sources, m.Sources)
			if m.Likelihood > out[i].Likelihood {
				out[i].Likelihood = m.Likelihood
			}
			continue
		}
		idx[m.Activation] = len(out)
		out = append(out, m)
	}
	return out
}

func mergeSources(a, b []string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(a)+len(b))
	for _, s := range append(append([]string(nil), a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
