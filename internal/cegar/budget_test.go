package cegar

import (
	"context"
	"strings"
	"testing"

	"cpsrisk/internal/budget"
)

// cancellingOracle cancels the shared context after n checks, simulating
// the deadline firing mid-validation.
type cancellingOracle struct {
	inner  Oracle
	cancel context.CancelFunc
	left   int
}

func (o *cancellingOracle) Check(f Finding) (Verdict, error) {
	v, err := o.inner.Check(f)
	o.left--
	if o.left == 0 {
		o.cancel()
	}
	return v, err
}

func TestRunBudgetExhaustionRoutesRestToUndetermined(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bud := budget.New(ctx, budget.Limits{})
	oracle := &cancellingOracle{inner: NewPlantOracle(), cancel: cancel, left: 2}

	res, err := RunBudget(levels(t), oracle, -1, bud)
	if err != nil {
		t.Fatal(err)
	}
	// Two findings validated; everything after the cancellation must be
	// routed to expert review rather than dropped.
	und := res.Undetermined()
	if len(und) == 0 {
		t.Fatal("no findings routed to expert review after exhaustion")
	}
	validated := len(res.Findings) - len(und)
	if validated != 2 {
		t.Errorf("validated = %d, want 2", validated)
	}
	found := false
	for _, tr := range res.Truncations {
		if strings.HasSuffix(tr.Stage, "/validate") && tr.Reason == budget.ReasonCancelled {
			found = true
			if !strings.Contains(tr.Detail, "2 findings validated") {
				t.Errorf("detail = %q", tr.Detail)
			}
		}
	}
	if !found {
		t.Errorf("no validate truncation recorded: %+v", res.Truncations)
	}
	// Exhaustion stops refinement: only the first level runs.
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
}

func TestRunBudgetScenarioCapRecordsAnalysisTruncation(t *testing.T) {
	bud := budget.New(context.Background(), budget.Limits{MaxScenarios: 3})
	res, err := RunBudget(levels(t), NewPlantOracle(), -1, bud)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range res.Truncations {
		if strings.Contains(tr.Stage, "cegar/") && tr.Reason == budget.ReasonScenarios {
			found = true
		}
	}
	if !found {
		t.Errorf("no analysis truncation recorded: %+v", res.Truncations)
	}
}

func TestRunBudgetNilBudgetMatchesRun(t *testing.T) {
	want, err := Run(levels(t), NewPlantOracle(), -1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunBudget(levels(t), NewPlantOracle(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != len(want.Findings) || got.Iterations != want.Iterations {
		t.Errorf("budgeted run diverged: %d/%d findings, %d/%d iterations",
			len(got.Findings), len(want.Findings), got.Iterations, want.Iterations)
	}
	if len(got.Truncations) != 0 {
		t.Errorf("truncations = %+v", got.Truncations)
	}
}
