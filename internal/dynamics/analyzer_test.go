package dynamics

import (
	"testing"
)

// One Analyzer answers synthesis, confirmation, and what-if probes from
// the same grounding: the multi-shot path of the dynamics layer.
func TestAnalyzerSharedSession(t *testing.T) {
	sys := WaterTank()
	a, err := NewAnalyzer(sys, 12, []string{KeyF1, KeyF2, KeyF3, KeyF4}, -1, reqR1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	schedule, ok, err := a.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(schedule) != 1 || schedule[0].Key != KeyF4 {
		t.Fatalf("schedule = %v ok=%v, want single F4 injection", schedule, ok)
	}
	// Consistency re-check of the synthesized schedule on the same session.
	violates, err := a.ConfirmAttack(schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !violates {
		t.Fatal("synthesized schedule must confirm as an attack")
	}
	// A benign schedule is refuted: F2 alone is compensated by control.
	violates, err = a.ConfirmAttack(Schedule{{Key: KeyF2, AtStep: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if violates {
		t.Fatal("F2 alone must not violate R1 under the controlled dynamics")
	}
	// Mitigation probe: with F4 excluded the minimum attack is the pair.
	schedule, ok, err = a.SynthesizeAvoiding([]string{KeyF4})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, inj := range schedule {
		keys[inj.Key] = true
	}
	if !ok || len(schedule) != 2 || !keys[KeyF1] || !keys[KeyF2] {
		t.Fatalf("schedule = %v ok=%v, want the F1+F2 pair", schedule, ok)
	}
	// Excluding both pair members and F4 leaves no attack.
	_, ok, err = a.SynthesizeAvoiding([]string{KeyF4, KeyF1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("excluding F4 and F1 must prove bounded safety")
	}

	st := a.Stats()
	if st.Sessions != 1 || st.Queries != 5 || st.Adds != 0 {
		t.Fatalf("stats sessions=%d queries=%d adds=%d, want 1/5/0", st.Sessions, st.Queries, st.Adds)
	}
}

func TestAnalyzerRejectsOutOfHorizonSchedule(t *testing.T) {
	sys := WaterTank()
	a, err := NewAnalyzer(sys, 10, []string{KeyF4}, 1, reqR1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.ConfirmAttack(Schedule{{Key: KeyF4, AtStep: 10}}); err == nil {
		t.Fatal("out-of-horizon injection must error")
	}
}
