package cegar

import (
	"sort"

	"cpsrisk/internal/epa"
)

// RefinementSuggestion points the analyst at a model element whose
// abstraction is implicated in spurious findings — the "several refinement
// options ... substituting complex decisions typically made by security
// experts with easier-to-make simpler ones" of paper §II-A. Components
// appearing on the propagation paths of many spurious findings are the
// best candidates for behaviour refinement (or, if composite, for asset
// refinement).
type RefinementSuggestion struct {
	Component string
	// SpuriousFindings counts the spurious findings whose propagation
	// evidence touches the component.
	SpuriousFindings int
}

// SuggestRefinements re-runs the engine on each spurious finding's
// scenario and collects the components whose ports carry errors — the
// propagation support of the (refuted) abstract counterexample. They are
// returned most-implicated first.
func SuggestRefinements(eng *epa.Engine, spurious []Judged) ([]RefinementSuggestion, error) {
	counts := map[string]int{}
	for _, j := range spurious {
		res, err := eng.Run(j.Finding.Scenario)
		if err != nil {
			return nil, err
		}
		for _, comp := range res.Affected() {
			counts[comp]++
		}
	}
	out := make([]RefinementSuggestion, 0, len(counts))
	for comp, n := range counts {
		out = append(out, RefinementSuggestion{Component: comp, SpuriousFindings: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SpuriousFindings != out[j].SpuriousFindings {
			return out[i].SpuriousFindings > out[j].SpuriousFindings
		}
		return out[i].Component < out[j].Component
	})
	return out, nil
}
