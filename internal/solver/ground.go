// Package solver computes the stable models (answer sets) of logic
// programs: the clingo substitute of the framework. It grounds a
// logic.Program with a semi-naive instantiator and solves the ground
// program with a DPLL search over the Clark completion, lazily adding
// loop formulas for unfounded sets, plus branch-and-bound optimization
// for #minimize statements.
package solver

import (
	"fmt"
	"sort"
	"strings"

	"cpsrisk/internal/logic"
)

// AtomID identifies a ground atom in a GroundProgram. IDs start at 1.
type AtomID int

// RuleKind distinguishes ground rule forms.
type RuleKind int

// Ground rule kinds.
const (
	// KindBasic is h :- body.  An empty head (0) makes it an integrity
	// constraint.
	KindBasic RuleKind = iota + 1
	// KindChoice is lower { h1 [:c1]; ... } upper :- body. Conditions are
	// ground atoms guarding both choosability and the cardinality count.
	KindChoice
)

// GroundRule is a fully instantiated rule.
type GroundRule struct {
	Kind  RuleKind
	Head  AtomID   // KindBasic: 0 for constraints
	Heads []AtomID // KindChoice head atoms
	Conds []AtomID // KindChoice per-head guard atom (0 = unconditional)
	Lower int      // KindChoice lower bound (logic.Unbounded if none)
	Upper int      // KindChoice upper bound (logic.Unbounded if none)
	Pos   []AtomID
	Neg   []AtomID
}

// GroundMinimize is a ground optimization element: weight@priority with a
// deduplication tuple and a guard atom that holds iff the element's
// condition is satisfied.
type GroundMinimize struct {
	Weight   int
	Priority int
	Tuple    string // canonical tuple key used for deduplication
	Guard    AtomID
}

// GroundProgram is the grounder output consumed by the solve stage.
type GroundProgram struct {
	names    []string          // AtomID -> key ("" at index 0)
	ids      map[string]AtomID // key -> AtomID
	internal []bool            // auxiliary atoms (not part of answer-set output)
	Rules    []GroundRule
	Minimize []GroundMinimize
}

// NewGroundProgram creates an empty ground program.
func NewGroundProgram() *GroundProgram {
	return &GroundProgram{
		names: []string{""},
		ids:   make(map[string]AtomID),
	}
}

// AtomIDFor interns a ground atom key and returns its ID.
func (g *GroundProgram) AtomIDFor(key string) AtomID {
	if id, ok := g.ids[key]; ok {
		return id
	}
	id := AtomID(len(g.names))
	g.names = append(g.names, key)
	g.internal = append(g.internal, false)
	g.ids[key] = id
	return id
}

// LookupAtom returns the ID for key if it was interned.
func (g *GroundProgram) LookupAtom(key string) (AtomID, bool) {
	id, ok := g.ids[key]
	return id, ok
}

// NewInternalAtom creates a fresh auxiliary atom that is excluded from
// answer-set output.
func (g *GroundProgram) NewInternalAtom(hint string) AtomID {
	key := fmt.Sprintf("__aux_%s_%d", hint, len(g.names))
	id := g.AtomIDFor(key)
	g.internal[int(id)-1] = true
	return id
}

// IsInternal reports whether the atom is auxiliary.
func (g *GroundProgram) IsInternal(id AtomID) bool {
	i := int(id) - 1
	return i >= 0 && i < len(g.internal) && g.internal[i]
}

// AtomName returns the key of an atom ID.
func (g *GroundProgram) AtomName(id AtomID) string {
	if id <= 0 || int(id) >= len(g.names) {
		return "?"
	}
	return g.names[id]
}

// NumAtoms returns the number of interned atoms.
func (g *GroundProgram) NumAtoms() int { return len(g.names) - 1 }

// AddBasic appends h :- pos, not neg. A zero head is a constraint.
func (g *GroundProgram) AddBasic(head AtomID, pos, neg []AtomID) {
	g.Rules = append(g.Rules, GroundRule{Kind: KindBasic, Head: head, Pos: pos, Neg: neg})
}

// AddFact appends a fact.
func (g *GroundProgram) AddFact(head AtomID) { g.AddBasic(head, nil, nil) }

// AddConstraint appends :- pos, not neg.
func (g *GroundProgram) AddConstraint(pos, neg []AtomID) { g.AddBasic(0, pos, neg) }

// AddChoice appends lower { heads } upper :- pos, not neg.
func (g *GroundProgram) AddChoice(heads, conds []AtomID, lower, upper int, pos, neg []AtomID) {
	g.Rules = append(g.Rules, GroundRule{
		Kind: KindChoice, Heads: heads, Conds: conds,
		Lower: lower, Upper: upper, Pos: pos, Neg: neg,
	})
}

// String renders the ground program for debugging, rules sorted textually
// for determinism.
func (g *GroundProgram) String() string {
	lines := make([]string, 0, len(g.Rules))
	for _, r := range g.Rules {
		lines = append(lines, g.ruleString(r))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func (g *GroundProgram) ruleString(r GroundRule) string {
	var sb strings.Builder
	switch r.Kind {
	case KindChoice:
		if r.Lower != logic.Unbounded {
			fmt.Fprintf(&sb, "%d ", r.Lower)
		}
		sb.WriteString("{ ")
		for i, h := range r.Heads {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(g.AtomName(h))
			if r.Conds[i] != 0 {
				sb.WriteString(" : ")
				sb.WriteString(g.AtomName(r.Conds[i]))
			}
		}
		sb.WriteString(" }")
		if r.Upper != logic.Unbounded {
			fmt.Fprintf(&sb, " %d", r.Upper)
		}
	default:
		if r.Head != 0 {
			sb.WriteString(g.AtomName(r.Head))
		}
	}
	if len(r.Pos)+len(r.Neg) > 0 {
		sb.WriteString(" :- ")
		first := true
		for _, p := range r.Pos {
			if !first {
				sb.WriteString(", ")
			}
			first = false
			sb.WriteString(g.AtomName(p))
		}
		for _, n := range r.Neg {
			if !first {
				sb.WriteString(", ")
			}
			first = false
			sb.WriteString("not " + g.AtomName(n))
		}
	}
	sb.WriteByte('.')
	return sb.String()
}
