package store

import (
	"bytes"
	"testing"
)

// FuzzCacheRecord drives the record decoder with arbitrary bytes. The
// decoder guards the trust boundary between on-disk state and the
// assessment: it must never panic or over-allocate, and anything it
// accepts must re-encode to the exact bytes it consumed (no two inputs
// silently aliasing to one record).
func FuzzCacheRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{recMagic})
	f.Add(appendRecord(nil, []byte("key"), []byte("value")))
	f.Add(appendRecord(nil, nil, nil))
	f.Add(appendRecord(appendRecord(nil, []byte("a"), []byte("1")), []byte("b"), []byte("2")))
	// Length fields claiming more bytes than exist.
	f.Add([]byte{recMagic, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		key, val, rest, err := decodeRecord(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("rest grew beyond input")
		}
		consumed := data[:len(data)-len(rest)]
		re := appendRecord(nil, key, val)
		if !bytes.Equal(re, consumed) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", consumed, re)
		}
	})
}
