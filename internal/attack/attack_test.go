package attack

import (
	"strings"
	"testing"

	"cpsrisk/internal/kb"
	"cpsrisk/internal/sysmodel"
)

// setup builds the case-study-shaped IT/OT chain:
// ews (public workstation) -- plc -- hmi, with the plc driving a valve.
func setup(t testing.TB) (*sysmodel.Model, *sysmodel.TypeLibrary, *kb.KB) {
	t.Helper()
	lib := sysmodel.NewTypeLibrary()
	port := func(n string, d sysmodel.PortDir) sysmodel.PortSpec {
		return sysmodel.PortSpec{Name: n, Dir: d, Flow: sysmodel.SignalFlow}
	}
	lib.MustAdd(&sysmodel.ComponentType{Name: "workstation",
		Ports:      []sysmodel.PortSpec{port("net", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "compromised"}}})
	lib.MustAdd(&sysmodel.ComponentType{Name: "plc",
		Ports: []sysmodel.PortSpec{port("in", sysmodel.In), port("cmd", sysmodel.Out), port("tohmi", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "compromised"}, {Name: "bad_command"}}})
	lib.MustAdd(&sysmodel.ComponentType{Name: "hmi",
		Ports:      []sysmodel.PortSpec{port("in", sysmodel.In)},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "no_signal"}, {Name: "compromised"}}})
	lib.MustAdd(&sysmodel.ComponentType{Name: "valve",
		Ports:      []sysmodel.PortSpec{port("cmd", sysmodel.In)},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "bad_command"}}})

	m := sysmodel.NewModel("itot")
	m.MustAddComponent(&sysmodel.Component{ID: "ews", Type: "workstation",
		Attrs: map[string]string{"exposure": "public"}})
	m.MustAddComponent(&sysmodel.Component{ID: "plc1", Type: "plc"})
	m.MustAddComponent(&sysmodel.Component{ID: "panel", Type: "hmi"})
	m.MustAddComponent(&sysmodel.Component{ID: "v1", Type: "valve"})
	m.Connect("ews", "net", "plc1", "in", sysmodel.SignalFlow)
	m.Connect("plc1", "cmd", "v1", "cmd", sysmodel.SignalFlow)
	m.Connect("plc1", "tohmi", "panel", "in", sysmodel.SignalFlow)
	return m, lib, kb.MustDefaultKB()
}

func TestCompromisable(t *testing.T) {
	m, lib, k := setup(t)
	g, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := g.Compromisable()
	// ews enters via spearphishing (public); plc1 via T-0866 from ews;
	// panel via remote services from plc1. The valve has no "compromised"
	// fault mode technique, so it is not a foothold.
	want := []string{"ews", "panel", "plc1"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("compromisable = %v, want %v", got, want)
	}
}

func TestCompromisableBlockedWithoutEntry(t *testing.T) {
	m, lib, k := setup(t)
	c, _ := m.Component("ews")
	c.SetAttr("exposure", "internal")
	g, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Compromisable(); len(got) != 0 {
		t.Fatalf("no public asset -> nothing compromisable, got %v", got)
	}
}

func TestMitigationBlocksEntry(t *testing.T) {
	m, lib, k := setup(t)
	// Block every entry technique on the workstation: user training
	// (T-1566), endpoint security + patching (T-1189), MFA + access
	// management (T-1078).
	g, err := Build(m, lib, k, Options{ActiveMitigations: map[string]bool{
		"M-0917": true, "M-0949": true, "M-0932": true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Compromisable(); len(got) != 0 {
		t.Fatalf("all entries mitigated, got %v", got)
	}
}

func TestInducedMutations(t *testing.T) {
	m, lib, k := setup(t)
	g, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	muts := g.InducedMutations()
	has := func(comp, fault string) bool {
		for _, a := range muts {
			if a.Component == comp && a.Fault == fault {
				return true
			}
		}
		return false
	}
	if !has("ews", "compromised") {
		t.Error("ews compromise missing")
	}
	if !has("v1", "bad_command") {
		t.Error("valve impact missing (reachable from compromised plc1)")
	}
	if !has("panel", "no_signal") {
		t.Error("hmi DoS missing")
	}
	if has("v1", "compromised") {
		t.Error("valve cannot be a foothold")
	}
}

func TestInducedMutationsShrinkWithMitigations(t *testing.T) {
	m, lib, k := setup(t)
	open, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hardened, err := Build(m, lib, k, Options{ActiveMitigations: map[string]bool{
		"M-0930": true, // network segmentation blocks T-0866 etc.
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hardened.InducedMutations()) >= len(open.InducedMutations()) {
		t.Errorf("mitigations must shrink the induced set: %d vs %d",
			len(hardened.InducedMutations()), len(open.InducedMutations()))
	}
}

func TestCheapestAttack(t *testing.T) {
	m, lib, k := setup(t)
	g, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	atk, ok := g.CheapestAttack("v1", "bad_command")
	if !ok {
		t.Fatal("no attack found to the valve")
	}
	if len(atk.Steps) < 2 {
		t.Fatalf("attack = %+v", atk)
	}
	// The path must start with an entry and end on the valve.
	if atk.Steps[0].From != "" {
		t.Errorf("first step not an entry: %v", atk.Steps[0])
	}
	last := atk.Steps[len(atk.Steps)-1]
	if last.Asset != "v1" || last.Technique.FaultMode != "bad_command" {
		t.Errorf("last step = %v", last)
	}
	// Cost equals the sum of step costs.
	sum := 0
	for _, s := range atk.Steps {
		sum += s.Cost
	}
	if sum != atk.Cost {
		t.Errorf("cost %d != sum %d", atk.Cost, sum)
	}
	// Each step chains from the previous asset.
	for i := 1; i < len(atk.Steps); i++ {
		if atk.Steps[i].From != atk.Steps[i-1].Asset {
			t.Errorf("broken chain at %d: %v -> %v", i, atk.Steps[i-1], atk.Steps[i])
		}
	}
}

func TestCheapestAttackCompromiseGoal(t *testing.T) {
	m, lib, k := setup(t)
	g, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, ok := g.CheapestAttack("ews", "compromised")
	if !ok {
		t.Fatal("ews must be attackable")
	}
	deeper, ok := g.CheapestAttack("panel", "compromised")
	if !ok {
		t.Fatal("panel must be attackable")
	}
	if direct.Cost >= deeper.Cost {
		t.Errorf("deeper target must cost more: %d vs %d", direct.Cost, deeper.Cost)
	}
}

func TestCheapestAttackUnreachable(t *testing.T) {
	m, lib, k := setup(t)
	c, _ := m.Component("ews")
	c.SetAttr("exposure", "internal")
	g, err := Build(m, lib, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.CheapestAttack("v1", "bad_command"); ok {
		t.Error("attack must be impossible without an entry point")
	}
}

func TestBuildRejectsComposite(t *testing.T) {
	m, lib, k := setup(t)
	inner := sysmodel.NewModel("inner")
	inner.MustAddComponent(&sysmodel.Component{ID: "i", Type: "hmi"})
	m.MustAddComponent(&sysmodel.Component{ID: "box", Type: "hmi", Sub: inner})
	if _, err := Build(m, lib, k, Options{}); err == nil {
		t.Error("composite model must be rejected")
	}
}

func BenchmarkBuildAndCheapest(b *testing.B) {
	m, lib, k := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := Build(m, lib, k, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := g.CheapestAttack("v1", "bad_command"); !ok {
			b.Fatal("unreachable")
		}
	}
}
