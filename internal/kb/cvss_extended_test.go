package kb

import "testing"

func mustVec(t *testing.T, s string) CVSS31 {
	t.Helper()
	v, err := ParseCVSS31(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTemporalScoreReference(t *testing.T) {
	// Reference values cross-checked with the FIRST v3.1 calculator.
	base98 := mustVec(t, "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
	tests := []struct {
		tmp  string
		want float64
	}{
		{"", 9.8},
		{"E:X/RL:X/RC:X", 9.8},
		{"E:U/RL:O/RC:U", 7.8}, // 9.8*0.91*0.95*0.92 = 7.797... -> 7.8
		{"E:P/RL:T/RC:R", 8.5},
		{"E:F/RL:W/RC:C", 9.3},
	}
	for _, tt := range tests {
		tmp, err := ParseTemporal(tt.tmp)
		if err != nil {
			t.Fatalf("ParseTemporal(%q): %v", tt.tmp, err)
		}
		if got := TemporalScore(base98.BaseScore(), tmp); got != tt.want {
			t.Errorf("TemporalScore(%q) = %v, want %v", tt.tmp, got, tt.want)
		}
	}
}

func TestParseTemporalErrors(t *testing.T) {
	for _, bad := range []string{"E", "E:Z", "RL:Q", "RC:Z", "Q:H"} {
		if _, err := ParseTemporal(bad); err == nil {
			t.Errorf("ParseTemporal(%q) expected error", bad)
		}
	}
}

func TestTemporalNeverRaisesScore(t *testing.T) {
	base := mustVec(t, "CVSS:3.1/AV:N/AC:L/PR:L/UI:R/S:C/C:L/I:L/A:N").BaseScore()
	for _, e := range []string{"X", "H", "F", "P", "U"} {
		for _, rl := range []string{"X", "U", "W", "T", "O"} {
			for _, rc := range []string{"X", "C", "R", "U"} {
				tmp := Temporal{ExploitCodeMaturity: e, RemediationLevel: rl, ReportConfidence: rc}
				if got := TemporalScore(base, tmp); got > base {
					t.Fatalf("temporal raised the score: %v > %v at %+v", got, base, tmp)
				}
			}
		}
	}
}

func TestEnvironmentalScoreReference(t *testing.T) {
	// Cross-checked with the FIRST v3.1 calculator.
	base := mustVec(t, "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")

	// No modifications: environmental == base.
	got, err := base.EnvironmentalScore(Environmental{}, Temporal{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 9.8 {
		t.Errorf("neutral environmental = %v, want 9.8", got)
	}

	// Low requirements everywhere pull the score down: CR:L/IR:L/AR:L on
	// the 9.8 vector. MISS = 1-(1-0.5*0.56)^3 = 0.626752, ModifiedImpact =
	// 4.0238, ModifiedExploitability = 3.887 -> Roundup(7.911) = 8.0.
	got, err = base.EnvironmentalScore(Environmental{
		ConfidentialityReq: "L", IntegrityReq: "L", AvailabilityReq: "L",
	}, Temporal{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8.0 {
		t.Errorf("low-requirement environmental = %v, want 8.0", got)
	}

	// Modified AV physical cripples exploitability: MAV:P -> 6.8.
	got, err = base.EnvironmentalScore(Environmental{ModifiedAttackVector: "P"}, Temporal{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6.8 {
		t.Errorf("MAV:P environmental = %v, want 6.8", got)
	}

	// Zeroing every modified impact kills the score.
	got, err = base.EnvironmentalScore(Environmental{
		ModifiedConfidentiality: "N", ModifiedIntegrity: "N", ModifiedAvailability: "N",
	}, Temporal{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("no-impact environmental = %v, want 0", got)
	}
}

func TestEnvironmentalWithTemporal(t *testing.T) {
	base := mustVec(t, "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
	tmp, err := ParseTemporal("E:U/RL:O/RC:U")
	if err != nil {
		t.Fatal(err)
	}
	got, err := base.EnvironmentalScore(Environmental{}, tmp)
	if err != nil {
		t.Fatal(err)
	}
	// Same as the pure temporal score when nothing is modified.
	if want := TemporalScore(base.BaseScore(), tmp); got != want {
		t.Errorf("environmental-with-temporal = %v, want %v", got, want)
	}
}

func TestEnvironmentalValidation(t *testing.T) {
	base := mustVec(t, "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
	if _, err := base.EnvironmentalScore(Environmental{ModifiedAttackVector: "Z"}, Temporal{}); err == nil {
		t.Error("invalid modified metric must fail")
	}
	if _, err := base.EnvironmentalScore(Environmental{ConfidentialityReq: "Z"}, Temporal{}); err == nil {
		t.Error("invalid requirement must fail")
	}
}

func TestEnvironmentalRangeSweep(t *testing.T) {
	base := mustVec(t, "CVSS:3.1/AV:A/AC:H/PR:L/UI:R/S:C/C:L/I:H/A:L")
	reqs := []string{"X", "L", "M", "H"}
	for _, cr := range reqs {
		for _, ir := range reqs {
			for _, ar := range reqs {
				got, err := base.EnvironmentalScore(Environmental{
					ConfidentialityReq: cr, IntegrityReq: ir, AvailabilityReq: ar,
				}, Temporal{})
				if err != nil {
					t.Fatal(err)
				}
				if got < 0 || got > 10 || roundup1(got) != got {
					t.Fatalf("out-of-range env score %v at CR:%s IR:%s AR:%s", got, cr, ir, ar)
				}
			}
		}
	}
}
