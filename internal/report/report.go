// Package report renders analysis results as aligned text tables — the
// framework's substitute for the paper's Jupyter result inspection. It
// regenerates the paper's Table I (O-RA risk matrix) and Table II
// (case-study violation vectors) layouts, plus ranked-scenario, risk-
// derivation, hierarchical-matrix, and mitigation-plan views.
package report

import (
	"fmt"
	"strings"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/optimize"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/risk"
)

// Table renders rows under headers with padded columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", w-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// TableI renders the O-RA risk matrix in the paper's orientation: rows LM
// from VH down to VL, columns LEF from VL to VH.
func TableI() string {
	s := qual.FiveLevel()
	headers := []string{"LM\\LEF"}
	for lef := s.Min(); lef <= s.Max(); lef++ {
		headers = append(headers, s.Label(lef))
	}
	var rows [][]string
	for lm := s.Max(); ; lm-- {
		row := []string{s.Label(lm)}
		for lef := s.Min(); lef <= s.Max(); lef++ {
			row = append(row, s.Label(risk.ORARisk(lm, lef)))
		}
		rows = append(rows, row)
		if lm == s.Min() {
			break
		}
	}
	return Table(headers, rows)
}

// TableIIRow selects one analysis scenario for the Table II layout.
type TableIIRow struct {
	Label string
	// Scenario selects the row's fault combination.
	Scenario epa.Scenario
	// MitigationsActive renders the mitigation columns as Active.
	MitigationsActive bool
}

// TableII renders the paper's Table II layout: fault-mode columns (one
// per labeled candidate, "*" when active), mitigation columns
// (Active/blank), and one Violated/"-" column per requirement.
func TableII(a *hazard.Analysis, faultLabels []string, faultActs []epa.Activation,
	mitigationLabels []string, rows []TableIIRow) (string, error) {
	if len(faultLabels) != len(faultActs) {
		return "", fmt.Errorf("report: %d fault labels for %d activations",
			len(faultLabels), len(faultActs))
	}
	headers := []string{"Scenario"}
	headers = append(headers, faultLabels...)
	headers = append(headers, mitigationLabels...)
	for _, r := range a.Requirements {
		headers = append(headers, r.ID)
	}
	var out [][]string
	for _, row := range rows {
		res, ok := a.ByScenario(row.Scenario)
		if !ok {
			return "", fmt.Errorf("report: scenario %s not in analysis", row.Scenario)
		}
		cells := []string{row.Label}
		for _, act := range faultActs {
			if row.Scenario.Has(act.Component, act.Fault) {
				cells = append(cells, "*")
			} else {
				cells = append(cells, "")
			}
		}
		for range mitigationLabels {
			if row.MitigationsActive {
				cells = append(cells, "Active")
			} else {
				cells = append(cells, "")
			}
		}
		for _, r := range a.Requirements {
			if res.Violates(r.ID) {
				cells = append(cells, "Violated")
			} else {
				cells = append(cells, "-")
			}
		}
		out = append(out, cells)
	}
	return Table(headers, out), nil
}

// Ranked renders the prioritized scenario list.
func Ranked(scenarios []hazard.ScenarioResult) string {
	s := qual.FiveLevel()
	headers := []string{"Rank", "Scenario", "Faults", "Violated", "Likelihood", "Severity", "Risk"}
	var rows [][]string
	for i, sc := range scenarios {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			sc.ID,
			sc.Scenario.Key(),
			strings.Join(sc.Violated, ","),
			s.Label(sc.Risk.Likelihood),
			s.Label(sc.Risk.Severity),
			s.Label(sc.Risk.Risk),
		})
	}
	return Table(headers, rows)
}

// Derivation renders a Fig. 2-style risk-attribute derivation.
func Derivation(d risk.Derivation) string {
	s := qual.FiveLevel()
	rows := [][]string{
		{"Contact Frequency", s.Label(d.Input.ContactFrequency)},
		{"Probability of Action", s.Label(d.Input.ProbabilityOfAction)},
		{"Threat Event Frequency", s.Label(d.ThreatEventFrequency)},
		{"Threat Capability", s.Label(d.Input.ThreatCapability)},
		{"Resistance Strength", s.Label(d.Input.ResistanceStrength)},
		{"Vulnerability", s.Label(d.Vulnerability)},
		{"Loss Event Frequency", s.Label(d.LossEventFrequency)},
		{"Primary Loss", s.Label(d.Input.PrimaryLoss)},
		{"Secondary Risk", s.Label(d.SecondaryRisk)},
		{"Loss Magnitude", s.Label(d.LossMagnitude)},
		{"Risk", s.Label(d.Risk)},
	}
	return Table([]string{"Attribute", "Level"}, rows)
}

// Plan renders a mitigation plan with its phases.
func Plan(phases []optimize.Phase, plan optimize.Plan) string {
	var rows [][]string
	for i, p := range phases {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), p.MitigationID,
			fmt.Sprintf("%d", p.Cost), fmt.Sprintf("%d", p.LossReduction),
		})
	}
	out := Table([]string{"Phase", "Mitigation", "Cost", "Loss reduction"}, rows)
	out += fmt.Sprintf("\nSelected: %s\nCost: %d  Residual loss: %d  Total: %d\nBlocked scenarios: %s\n",
		strings.Join(plan.Selected, ", "), plan.Cost, plan.ResidualLoss, plan.Total,
		strings.Join(plan.Blocked, ", "))
	return out
}
