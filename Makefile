.PHONY: check test build vet fuzz bench profile chaos

# check is the canonical verification target: vet + build + race tests +
# short fuzz runs. Set FUZZTIME to change the per-target fuzz duration.
check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# bench runs the perf-tracked suite (S1-S7, the pruned-sweep arms,
# Fig. 1, obs overhead) and files the numbers into BENCH_PR10.json, with
# the S5 portfolio race additionally pinned to -cpu=1 and -cpu=4. Set
# BENCH_LABEL/BENCHTIME to override defaults.
bench:
	./scripts/bench.sh

# profile assesses the sample plant with CPU/heap profiling and tracing
# enabled; artifacts (pprof profiles, Chrome trace, report) land in
# ./profile. Inspect with `go tool pprof profile/cpu.pprof` or by loading
# profile/trace.json into chrome://tracing / Perfetto.
profile:
	mkdir -p profile
	go run ./cmd/riskassess -model models/sme-plant.json -types models/types.json \
	  -optimize -trace profile/trace.json \
	  -cpuprofile profile/cpu.pprof -memprofile profile/mem.pprof > profile/report.txt
	go run ./cmd/tracecheck profile/trace.json
	@echo "profile artifacts in ./profile"

fuzz:
	go test -run='^$$' -fuzz=FuzzParse -fuzztime=$${FUZZTIME:-5s} ./internal/logic
	go test -run='^$$' -fuzz=FuzzParseFormula -fuzztime=$${FUZZTIME:-5s} ./internal/temporal
	go test -run='^$$' -fuzz=FuzzReadJSON -fuzztime=$${FUZZTIME:-5s} ./internal/sysmodel
	go test -run='^$$' -fuzz=FuzzCacheRecord -fuzztime=$${FUZZTIME:-5s} ./internal/store
	go test -run='^$$' -fuzz=FuzzCheckpoint -fuzztime=$${FUZZTIME:-5s} ./internal/hazard

# chaos runs the crash-safety battery with a fixed seed set: fault
# injection at every site, store corruption/self-heal, the crash matrix
# under -race -cpu=1,4, and a real kill-and-resume of the CLI binary.
chaos:
	./scripts/chaos.sh
