// Watertank walks the paper's §VII case study step by step through the
// public API: hierarchical modeling and Fig. 4 asset refinement,
// exhaustive hazard identification via both the native engine and the
// embedded ASP method (Table II), error-propagation path explanation,
// CEGAR validation against the concrete plant simulator, and the
// mitigation cost-benefit plan.
package main

import (
	"fmt"
	"os"
	"strings"

	"cpsrisk/internal/cegar"
	"cpsrisk/internal/dynamics"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/temporal"
	"cpsrisk/internal/watertank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "watertank example:", err)
		os.Exit(1)
	}
}

func run() error {
	// The hierarchical model: the Engineering Workstation is a composite
	// (e-mail client -> browser -> OS — the spam-link infection chain).
	types := watertank.Types()
	m := watertank.HierarchicalModel()
	fmt.Printf("abstract model: %+v\n", m.Stats())
	if err := m.RefineAll(); err != nil {
		return err
	}
	fmt.Printf("refined model:  %+v\n\n", m.Stats())

	// Exhaustive analysis on the flat paper model (Table II).
	table, err := watertank.PaperTableII(false)
	if err != nil {
		return err
	}
	fmt.Println("Table II (native EPA engine):")
	fmt.Println(table)

	tableASP, err := watertank.PaperTableII(true)
	if err != nil {
		return err
	}
	if table != tableASP {
		return fmt.Errorf("ASP and native analyses disagree")
	}
	fmt.Println("ASP engine produced the identical table.")

	// Explain the attack: the propagation path of the compromised
	// workstation to the output valve.
	eng, err := epa.NewEngine(m, watertank.Behaviors(types))
	if err != nil {
		return err
	}
	sc := epa.Scenario{{Component: "ews.email_client", Fault: plant.FaultCompromised}}
	res, err := eng.Run(sc)
	if err != nil {
		return err
	}
	fmt.Println("\nerror propagation path of the refined phishing attack:")
	for _, step := range res.Path(plant.CompOutValve, "cmd", epa.ErrCompromise) {
		fmt.Printf("  %-28s %-12s via %s\n", step.Port, step.Mode, step.Cause.Kind)
	}

	// CEGAR: validate the abstract findings against the plant simulator.
	coarse, err := epa.NewEngine(watertank.Model(), epa.NewBehaviorLibrary(types))
	if err != nil {
		return err
	}
	fine, err := watertank.Engine()
	if err != nil {
		return err
	}
	loop, err := cegar.Run([]cegar.Level{
		{Name: "coarse (default behaviours)", Engine: coarse,
			Mutations: watertank.PaperCandidates(), Requirements: watertank.Requirements()},
		{Name: "fine (detailed behaviours)", Engine: fine,
			Mutations: watertank.PaperCandidates(), Requirements: watertank.Requirements()},
	}, cegar.NewPlantOracle(), -1)
	if err != nil {
		return err
	}
	fmt.Printf("\nCEGAR: %d levels analyzed, findings per level %v\n",
		loop.Iterations, loop.PerLevelFindings)
	fmt.Printf("confirmed: %d, spurious: %d\n",
		len(loop.Confirmed()), len(loop.Spurious()))
	for _, j := range loop.Spurious() {
		fmt.Printf("  spurious: %s (over-abstraction, per paper Fig. 1 step 5)\n", j.Finding)
	}

	// Refinement options (§II-A): which model elements the spurious
	// findings implicate.
	suggestions, err := cegar.SuggestRefinements(fine, loop.Spurious())
	if err != nil {
		return err
	}
	fmt.Println("\nsuggested refinement targets (most implicated first):")
	for i, s := range suggestions {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-20s implicated in %d spurious finding(s)\n",
			s.Component, s.SpuriousFindings)
	}

	// Parametrization support (§II-A): which likelihood estimates the
	// final ranking actually depends on.
	params, err := hazard.ParametrizationSensitivity(
		fine, watertank.PaperCandidates(), -1, watertank.Requirements())
	if err != nil {
		return err
	}
	fmt.Println("\nlikelihood estimates the prioritization depends on:")
	for _, p := range params {
		marker := "rough estimate is fine"
		if p.TopChanged {
			marker = "CRITICAL: top finding changes under +/-1 level"
		} else if p.RankDisplacement > 0 {
			marker = fmt.Sprintf("shifts top finding by up to %d ranks", p.RankDisplacement)
		}
		fmt.Printf("  %-40s %s\n", p.Mutation.Activation.String(), marker)
	}

	// Most severe confirmed scenario.
	analysis, err := hazard.Analyze(fine, watertank.PaperCandidates(), -1, watertank.Requirements())
	if err != nil {
		return err
	}
	top := analysis.Ranked()[0]
	fmt.Printf("\ntop risk: %s violating %s\n", top.Scenario.Key(), strings.Join(top.Violated, ","))

	// The dynamic qualitative model (Listing 2 / Telingo substitute):
	// replay the attack as a bounded-horizon trajectory.
	fmt.Println("\ndynamic qualitative trajectory under the F4 attack:")
	tank := dynamics.WaterTank()
	traj, err := tank.Run(10, []dynamics.Injection{{Key: dynamics.KeyF4}})
	if err != nil {
		return err
	}
	for t := 0; t < traj.Horizon; t++ {
		fmt.Printf("  t=%-2d level=%-8s mode=%-5s alert=%s\n",
			t, traj.Value(t, dynamics.VarLevel),
			traj.Value(t, dynamics.VarMode),
			traj.Value(t, dynamics.VarAlert))
	}
	fmt.Printf("overflowed=%v alerted=%v (matches the concrete simulator)\n",
		dynamics.Overflowed(traj), dynamics.Alerted(traj))

	// Attack synthesis: ask the solver WHICH schedule defeats R1.
	schedule, found, err := dynamics.Synthesize(tank, 10,
		[]string{dynamics.KeyF1, dynamics.KeyF2, dynamics.KeyF3, dynamics.KeyF4},
		2, temporal.MustParseFormula("G !holds(level,overflow)"))
	if err != nil {
		return err
	}
	if found {
		fmt.Printf("\nsynthesized minimal attack against R1: %s\n", schedule.Key())
	}
	_, found, err = dynamics.Synthesize(tank, 10,
		[]string{dynamics.KeyF1, dynamics.KeyF3}, 2,
		temporal.MustParseFormula("G !holds(level,overflow)"))
	if err != nil {
		return err
	}
	fmt.Printf("attack exists with only F1+F3 available: %v (bounded safety proof)\n", found)
	return nil
}
