package epa

import (
	"fmt"
	"reflect"
	"testing"

	"cpsrisk/internal/sysmodel"
)

// starModel builds n identical sensors feeding one hub input each:
// sensor<i>.out -> hub.in. Every sensor is interchangeable.
func starModel(t testing.TB, n int) (*sysmodel.Model, *BehaviorLibrary) {
	t.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "sensor",
		Ports: []sysmodel.PortSpec{
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "corrupt"}, {Name: "stuck"},
		},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "hub",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "crash"}},
	})
	m := sysmodel.NewModel("star")
	m.MustAddComponent(&sysmodel.Component{ID: "hub", Type: "hub"})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%02d", i)
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: "sensor"})
		m.Connect(id, "out", "hub", "in", sysmodel.SignalFlow)
	}
	lib := NewBehaviorLibrary(types)
	lib.MustRegister(&TypeBehavior{
		Type: "sensor",
		Effects: []FaultEffect{
			{Fault: "corrupt", Port: "out", Emit: StateOf(ErrValue)},
			{Fault: "stuck", Port: "out", Emit: StateOf(ErrTiming)},
		},
	})
	lib.MustRegister(&TypeBehavior{
		Type: "hub",
		Effects: []FaultEffect{
			{Fault: "crash", Port: "out", Emit: StateOf(ErrOmission)},
		},
		Transfers: IdentityTransfers("in", "out"),
	})
	return m, lib
}

func TestMonotone(t *testing.T) {
	m, lib := chainModel(t)
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Monotone() {
		t.Error("chain model has no UnlessFault guards; engine must be monotone")
	}
	// WhenFault alone keeps monotonicity; UnlessFault breaks it.
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "node",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "guard"}},
	})
	m2 := sysmodel.NewModel("guarded")
	m2.MustAddComponent(&sysmodel.Component{ID: "n", Type: "node"})
	lib2 := NewBehaviorLibrary(types)
	lib2.MustRegister(&TypeBehavior{
		Type: "node",
		Transfers: []TransferRule{{
			From: "in", Match: AnyError, To: "out", Emit: StateOf(ErrValue),
			UnlessFault: "guard",
		}},
	})
	eng2, err := NewEngine(m2, lib2)
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Monotone() {
		t.Error("UnlessFault transfer must make the engine non-monotone")
	}
}

func TestInterchangeableClassesStar(t *testing.T) {
	m, lib := starModel(t, 4)
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	classes := eng.InterchangeableClasses(nil)
	want := [][]string{{"s00", "s01", "s02", "s03"}}
	if !reflect.DeepEqual(classes, want) {
		t.Fatalf("classes = %v, want %v", classes, want)
	}
	// Protecting a member removes it from the class but keeps the rest.
	classes = eng.InterchangeableClasses(map[string]bool{"s01": true})
	want = [][]string{{"s00", "s02", "s03"}}
	if !reflect.DeepEqual(classes, want) {
		t.Fatalf("protected classes = %v, want %v", classes, want)
	}
}

func TestInterchangeableClassesChainIsAsymmetric(t *testing.T) {
	m, lib := chainModel(t)
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	// src, mid, dst share a type but occupy distinct positions in the
	// chain; no transposition is an automorphism.
	if classes := eng.InterchangeableClasses(nil); len(classes) != 0 {
		t.Fatalf("chain must have no interchangeable components, got %v", classes)
	}
}

func TestInterchangeableClassesSplitOnWiring(t *testing.T) {
	// Two sensors feed the hub, a third sensor of the same type dangles
	// unconnected: same type signature, different neighbourhood.
	m, lib := starModel(t, 2)
	m.MustAddComponent(&sysmodel.Component{ID: "s99", Type: "sensor"})
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	classes := eng.InterchangeableClasses(nil)
	want := [][]string{{"s00", "s01"}}
	if !reflect.DeepEqual(classes, want) {
		t.Fatalf("classes = %v, want %v", classes, want)
	}
}

// The soundness contract: for interchangeable a and b, results are
// equivariant — a scenario with a fault on a yields the same result as
// the renamed scenario on b, up to the renaming.
func TestSwapEquivariance(t *testing.T) {
	m, lib := starModel(t, 3)
	eng, err := NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := eng.Run(Scenario{{Component: "s00", Fault: "corrupt"}})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := eng.Run(Scenario{{Component: "s02", Fault: "corrupt"}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ra.PortState("s00", "out"), rb.PortState("s02", "out"); got != want {
		t.Fatalf("faulted-sensor states differ: %v vs %v", got, want)
	}
	if got, want := ra.PortState("hub", "out"), rb.PortState("hub", "out"); got != want {
		t.Fatalf("hub states differ: %v vs %v", got, want)
	}
	if !ra.PortState("s01", "out").IsOK() || !rb.PortState("s01", "out").IsOK() {
		t.Fatal("unfaulted sensor must stay clean")
	}
}
