package hazard

import (
	"fmt"
	"sort"
	"strings"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/risk"
	"cpsrisk/internal/solver"
)

// Requirement pairs a system requirement with its qualitative violation
// condition over the EPA outcome.
type Requirement struct {
	ID          string
	Description string
	Severity    qual.Level
	Condition   Condition
}

// ScenarioResult is the violation vector of one analyzed scenario — one
// row of the paper's Table II.
type ScenarioResult struct {
	// ID is S<n> in enumeration order (S1 = fault-free).
	ID       string
	Scenario epa.Scenario
	// Violated lists the IDs of violated requirements, sorted.
	Violated []string
	// Risk is the qualitative scenario risk.
	Risk risk.ScenarioRisk
}

// IsHazardous reports whether any requirement is violated.
func (s ScenarioResult) IsHazardous() bool { return len(s.Violated) > 0 }

// Violates reports whether the given requirement is violated.
func (s ScenarioResult) Violates(reqID string) bool {
	for _, v := range s.Violated {
		if v == reqID {
			return true
		}
	}
	return false
}

// Analysis is the outcome of exhaustive hazard identification.
type Analysis struct {
	Requirements []Requirement
	Scenarios    []ScenarioResult
}

// Analyze enumerates the scenario space (cardinality <= maxCard, negative
// = unbounded) and evaluates every requirement on every scenario with the
// native EPA engine, scoring scenario risk from the mutation likelihoods
// and requirement severities.
func Analyze(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement) (*Analysis, error) {
	if err := validateReqs(reqs); err != nil {
		return nil, err
	}
	likelihoods := faults.LikelihoodIndex(muts)
	scenarios := faults.Enumerate(muts, maxCard)
	out := &Analysis{Requirements: reqs}
	for i, sc := range scenarios {
		res, err := eng.Run(sc)
		if err != nil {
			return nil, err
		}
		sr := ScenarioResult{
			ID:       fmt.Sprintf("S%d", i+1),
			Scenario: sc,
		}
		var severities []qual.Level
		for _, r := range reqs {
			if Eval(r.Condition, sc, res) {
				sr.Violated = append(sr.Violated, r.ID)
				severities = append(severities, r.Severity)
			}
		}
		sort.Strings(sr.Violated)
		sr.Risk = risk.ScoreScenario(risk.ScenarioInput{
			ID:                 sr.ID,
			FaultLikelihoods:   scenarioLikelihoods(sc, likelihoods),
			ViolatedSeverities: severities,
		})
		out.Scenarios = append(out.Scenarios, sr)
	}
	return out, nil
}

func validateReqs(reqs []Requirement) error {
	seen := map[string]bool{}
	for _, r := range reqs {
		if r.ID == "" {
			return fmt.Errorf("hazard: requirement with empty ID")
		}
		if seen[r.ID] {
			return fmt.Errorf("hazard: duplicate requirement %q", r.ID)
		}
		seen[r.ID] = true
		if r.Condition == nil {
			return fmt.Errorf("hazard: requirement %q has no condition", r.ID)
		}
	}
	return nil
}

func scenarioLikelihoods(sc epa.Scenario, idx map[epa.Activation]qual.Level) []qual.Level {
	out := make([]qual.Level, 0, len(sc))
	for _, a := range sc {
		if l, ok := idx[a]; ok {
			out = append(out, l)
		} else {
			out = append(out, faults.DefaultLikelihood)
		}
	}
	return out
}

// AnalyzeASP performs the same exhaustive analysis through the embedded
// formal method: the EPA encoding plus the scenario-space choice plus the
// compiled violation rules, solved for all answer sets. Scenario IDs are
// assigned after sorting models into the native enumeration order so the
// two paths are directly comparable.
func AnalyzeASP(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement) (*Analysis, error) {
	if err := validateReqs(reqs); err != nil {
		return nil, err
	}
	prog, err := eng.EncodeASP()
	if err != nil {
		return nil, err
	}
	faults.EncodeChoice(prog, muts, maxCard)
	for _, r := range reqs {
		if err := EncodeViolation(prog, r.ID, r.Condition); err != nil {
			return nil, err
		}
	}
	res, err := solver.SolveProgram(prog, solver.Options{})
	if err != nil {
		return nil, err
	}
	likelihoods := faults.LikelihoodIndex(muts)
	sevByID := map[string]qual.Level{}
	for _, r := range reqs {
		sevByID[r.ID] = r.Severity
	}

	results := make([]ScenarioResult, 0, len(res.Models))
	for _, m := range res.Models {
		sc := scenarioFromModel(&m, muts)
		sr := ScenarioResult{Scenario: sc}
		for _, r := range reqs {
			if m.Contains(logic.A("violated", logic.Sym(r.ID)).Key()) {
				sr.Violated = append(sr.Violated, r.ID)
			}
		}
		sort.Strings(sr.Violated)
		results = append(results, sr)
	}
	// Deterministic order: by cardinality, then by scenario key.
	sort.Slice(results, func(i, j int) bool {
		if len(results[i].Scenario) != len(results[j].Scenario) {
			return len(results[i].Scenario) < len(results[j].Scenario)
		}
		return results[i].Scenario.Key() < results[j].Scenario.Key()
	})
	for i := range results {
		results[i].ID = fmt.Sprintf("S%d", i+1)
		var severities []qual.Level
		for _, v := range results[i].Violated {
			severities = append(severities, sevByID[v])
		}
		results[i].Risk = risk.ScoreScenario(risk.ScenarioInput{
			ID:                 results[i].ID,
			FaultLikelihoods:   scenarioLikelihoods(results[i].Scenario, likelihoods),
			ViolatedSeverities: severities,
		})
	}
	return &Analysis{Requirements: reqs, Scenarios: results}, nil
}

func scenarioFromModel(m *solver.Model, muts []faults.Mutation) epa.Scenario {
	var sc epa.Scenario
	for _, mu := range muts {
		if m.Contains(epa.ActiveAtom(mu.Component, mu.Fault).Key()) {
			sc = append(sc, mu.Activation)
		}
	}
	return sc
}

// Hazards returns the hazardous scenarios (at least one violation).
func (a *Analysis) Hazards() []ScenarioResult {
	var out []ScenarioResult
	for _, s := range a.Scenarios {
		if s.IsHazardous() {
			out = append(out, s)
		}
	}
	return out
}

// ByScenario finds the result for a scenario key.
func (a *Analysis) ByScenario(sc epa.Scenario) (ScenarioResult, bool) {
	key := sc.Key()
	for _, s := range a.Scenarios {
		if s.Scenario.Key() == key {
			return s, true
		}
	}
	return ScenarioResult{}, false
}

// Ranked returns the scenarios ordered by risk (paper §IV: prioritize by
// severity and potential impact).
func (a *Analysis) Ranked() []ScenarioResult {
	risks := make([]risk.ScenarioRisk, len(a.Scenarios))
	byID := make(map[string]ScenarioResult, len(a.Scenarios))
	for i, s := range a.Scenarios {
		risks[i] = s.Risk
		byID[s.ID] = s
	}
	ranked := risk.Rank(risks)
	out := make([]ScenarioResult, len(ranked))
	for i, r := range ranked {
		out[i] = byID[r.ID]
	}
	return out
}

// MinimalCuts returns, per requirement, the minimal hazardous scenarios:
// those violating the requirement such that no proper sub-scenario in the
// analysis also violates it (the qualitative analogue of FTA minimal cut
// sets, §III-A).
func (a *Analysis) MinimalCuts(reqID string) []ScenarioResult {
	var violating []ScenarioResult
	for _, s := range a.Scenarios {
		if s.Violates(reqID) {
			violating = append(violating, s)
		}
	}
	var out []ScenarioResult
	for _, s := range violating {
		minimal := true
		for _, other := range violating {
			if len(other.Scenario) < len(s.Scenario) && isSubScenario(other.Scenario, s.Scenario) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}

func isSubScenario(sub, super epa.Scenario) bool {
	for _, a := range sub {
		if !super.Has(a.Component, a.Fault) {
			return false
		}
	}
	return true
}

// Summary renders a compact textual overview.
func (a *Analysis) Summary() string {
	var sb strings.Builder
	hazards := a.Hazards()
	fmt.Fprintf(&sb, "%d scenarios analyzed, %d hazardous\n", len(a.Scenarios), len(hazards))
	for _, r := range a.Requirements {
		n := 0
		for _, s := range a.Scenarios {
			if s.Violates(r.ID) {
				n++
			}
		}
		fmt.Fprintf(&sb, "  %s violated in %d scenarios\n", r.ID, n)
	}
	return sb.String()
}
