// Package hazard implements hazard identification (paper Fig. 1 step 4):
// exhaustive analysis of the candidate attack scenarios against the system
// requirements, producing the violation vectors of the paper's Table II.
// Requirement-violation conditions are declarative boolean combinations
// over EPA error states and fault activations, evaluated identically by
// the native engine and by the generated ASP encoding.
package hazard

import (
	"fmt"
	"strings"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/logic"
)

// Condition is a requirement-violation condition over an EPA outcome.
type Condition interface {
	fmt.Stringer
	isCondition()
}

// CompErr holds when the component exhibits the error mode on any port.
type CompErr struct {
	Component string
	Mode      epa.ErrMode
}

// PortErr holds when the specific port exhibits the error mode.
type PortErr struct {
	Component string
	Port      string
	Mode      epa.ErrMode
}

// ActiveFault holds when the scenario activates the fault.
type ActiveFault struct {
	Component string
	Fault     string
}

// AndCond is conjunction; OrCond disjunction; NotCond negation.
type (
	// AndCond holds when all children hold.
	AndCond struct{ Subs []Condition }
	// OrCond holds when any child holds.
	OrCond struct{ Subs []Condition }
	// NotCond holds when the child does not.
	NotCond struct{ Sub Condition }
)

func (CompErr) isCondition()     {}
func (PortErr) isCondition()     {}
func (ActiveFault) isCondition() {}
func (AndCond) isCondition()     {}
func (OrCond) isCondition()      {}
func (NotCond) isCondition()     {}

// Comp builds a CompErr condition.
func Comp(component string, mode epa.ErrMode) Condition {
	return CompErr{Component: component, Mode: mode}
}

// Port builds a PortErr condition.
func Port(component, port string, mode epa.ErrMode) Condition {
	return PortErr{Component: component, Port: port, Mode: mode}
}

// Fault builds an ActiveFault condition.
func Fault(component, fault string) Condition {
	return ActiveFault{Component: component, Fault: fault}
}

// All builds a conjunction.
func All(subs ...Condition) Condition { return AndCond{Subs: subs} }

// Any builds a disjunction.
func Any(subs ...Condition) Condition { return OrCond{Subs: subs} }

// Not builds a negation.
func Not(sub Condition) Condition { return NotCond{Sub: sub} }

// String implementations.

// String implements fmt.Stringer.
func (c CompErr) String() string { return fmt.Sprintf("err(%s,%s)", c.Component, c.Mode) }

// String implements fmt.Stringer.
func (c PortErr) String() string {
	return fmt.Sprintf("err(%s.%s,%s)", c.Component, c.Port, c.Mode)
}

// String implements fmt.Stringer.
func (c ActiveFault) String() string { return fmt.Sprintf("active(%s,%s)", c.Component, c.Fault) }

// String implements fmt.Stringer.
func (c AndCond) String() string { return join(c.Subs, " & ") }

// String implements fmt.Stringer.
func (c OrCond) String() string { return join(c.Subs, " | ") }

// String implements fmt.Stringer.
func (c NotCond) String() string { return "!(" + c.Sub.String() + ")" }

func join(subs []Condition, sep string) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Eval evaluates the condition over a scenario and its EPA result.
func Eval(c Condition, sc epa.Scenario, res *epa.Result) bool {
	switch cc := c.(type) {
	case CompErr:
		return res.ComponentState(cc.Component).Has(cc.Mode)
	case PortErr:
		return res.PortState(cc.Component, cc.Port).Has(cc.Mode)
	case ActiveFault:
		return sc.Has(cc.Component, cc.Fault)
	case AndCond:
		for _, s := range cc.Subs {
			if !Eval(s, sc, res) {
				return false
			}
		}
		return true
	case OrCond:
		for _, s := range cc.Subs {
			if Eval(s, sc, res) {
				return true
			}
		}
		return false
	case NotCond:
		return !Eval(cc.Sub, sc, res)
	default:
		return false
	}
}

// compiler assigns aux predicates to condition nodes for the ASP encoding.
type compiler struct {
	prog    *logic.Program
	counter int
	prefix  string
}

// EncodeViolation compiles "violated(reqID) holds iff the condition holds"
// into ASP rules over the EPA encoding's err/comp_err/active atoms. The
// compilation is stratified: negation only applies to fully defined
// auxiliary predicates.
func EncodeViolation(prog *logic.Program, reqID string, c Condition) error {
	comp := &compiler{prog: prog, prefix: "vc_" + sanitize(reqID)}
	root, err := comp.compile(c)
	if err != nil {
		return err
	}
	prog.AddRule(logic.NormalRule(
		logic.A("violated", logic.Sym(reqID)),
		logic.Pos(logic.A(root)),
	))
	return nil
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r - 'A' + 'a')
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// compile returns a propositional predicate equivalent to the condition.
func (cp *compiler) compile(c Condition) (string, error) {
	cp.counter++
	pred := fmt.Sprintf("%s_%d", cp.prefix, cp.counter)
	head := logic.A(pred)
	switch cc := c.(type) {
	case CompErr:
		cp.prog.AddRule(logic.NormalRule(head,
			logic.Pos(epa.CompErrAtom(cc.Component, cc.Mode))))
	case PortErr:
		cp.prog.AddRule(logic.NormalRule(head,
			logic.Pos(epa.ErrAtom(cc.Component, cc.Port, cc.Mode))))
	case ActiveFault:
		cp.prog.AddRule(logic.NormalRule(head,
			logic.Pos(epa.ActiveAtom(cc.Component, cc.Fault))))
	case AndCond:
		if len(cc.Subs) == 0 {
			return "", fmt.Errorf("hazard: empty conjunction")
		}
		body := make([]logic.BodyElem, 0, len(cc.Subs))
		for _, s := range cc.Subs {
			sub, err := cp.compile(s)
			if err != nil {
				return "", err
			}
			body = append(body, logic.Pos(logic.A(sub)))
		}
		cp.prog.AddRule(logic.NormalRule(head, body...))
	case OrCond:
		if len(cc.Subs) == 0 {
			return "", fmt.Errorf("hazard: empty disjunction")
		}
		for _, s := range cc.Subs {
			sub, err := cp.compile(s)
			if err != nil {
				return "", err
			}
			cp.prog.AddRule(logic.NormalRule(head, logic.Pos(logic.A(sub))))
		}
	case NotCond:
		sub, err := cp.compile(cc.Sub)
		if err != nil {
			return "", err
		}
		cp.prog.AddRule(logic.NormalRule(head, logic.Not(logic.A(sub))))
	default:
		return "", fmt.Errorf("hazard: cannot encode condition %T", c)
	}
	return pred, nil
}
