package epa

import (
	"sort"
	"strings"
)

// Monotone reports whether the compiled propagation is monotone in the
// fault set: activating additional faults can only grow the reachable
// error states, never remove one. The single non-monotone construct in
// the behaviour language is UnlessFault (a transfer suppressed by an
// activation), so the engine is monotone exactly when no compiled
// transfer carries one. Dominance pruning in the hazard sweep is only
// sound on monotone engines.
func (e *Engine) Monotone() bool {
	for _, bucket := range e.transfers {
		for i := range bucket {
			if bucket[i].unlessFault != "" {
				return false
			}
		}
	}
	return true
}

// InterchangeableClasses partitions the model's components into classes
// whose members are pairwise interchangeable: swapping any two members
// (their ports matched by name) is an automorphism of the compiled
// propagation tables, so every EPA result is equivariant under the swap.
// Components in protected are never classed (callers exclude components
// that are distinguished elsewhere, e.g. named in hazard conditions).
//
// Soundness: each candidate is verified against its class representative
// by an exact transposition check over the compiled tables — connection
// fan-out, transfer rules, fault seeds, and declared activations must
// all be invariant as multisets. Signature bucketing (type + port
// shape) is only a pre-filter; a bucket is split whenever the exact
// check fails. Swap-vs-representative verification suffices for the
// whole class: if σ_ar and σ_br are automorphisms then so is
// σ_ab = σ_ar·σ_br·σ_ar, generating the full symmetric group.
//
// Only classes with two or more members are returned, each sorted by
// component ID, the class list sorted by its first member.
func (e *Engine) InterchangeableClasses(protected map[string]bool) [][]string {
	// Pre-filter: bucket by (component type, sorted port-name shape).
	buckets := map[string][]string{}
	var order []string
	for _, span := range e.compSpans {
		id := span.component
		if protected[id] {
			continue
		}
		comp, ok := e.model.Component(id)
		if !ok {
			continue
		}
		names := make([]string, 0, span.end-span.start)
		for _, p := range e.ports[span.start:span.end] {
			names = append(names, p.Port)
		}
		sort.Strings(names)
		sig := comp.Type + "\x00" + strings.Join(names, "\x00")
		if _, seen := buckets[sig]; !seen {
			order = append(order, sig)
		}
		buckets[sig] = append(buckets[sig], id)
	}
	var classes [][]string
	for _, sig := range order {
		ids := buckets[sig]
		sort.Strings(ids)
		var split [][]string
		for _, id := range ids {
			placed := false
			for i := range split {
				if e.isSwapAutomorphism(split[i][0], id) {
					split[i] = append(split[i], id)
					placed = true
					break
				}
			}
			if !placed {
				split = append(split, []string{id})
			}
		}
		for _, cl := range split {
			if len(cl) > 1 {
				classes = append(classes, cl)
			}
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return classes
}

// isSwapAutomorphism verifies that transposing components c1 and c2
// (ports matched by name) leaves every compiled table invariant.
func (e *Engine) isSwapAutomorphism(c1, c2 string) bool {
	s1, ok1 := e.compRange[c1]
	s2, ok2 := e.compRange[c2]
	if !ok1 || !ok2 || s1.end-s1.start != s2.end-s2.start {
		return false
	}
	// σ over port IDs: identity outside the two spans, name-matched swap
	// inside them.
	sigma := make([]portID, len(e.ports))
	for i := range sigma {
		sigma[i] = portID(i)
	}
	byName := make(map[string]portID, s2.end-s2.start)
	for id := s2.start; id < s2.end; id++ {
		byName[e.ports[id].Port] = id
	}
	for id := s1.start; id < s1.end; id++ {
		other, ok := byName[e.ports[id].Port]
		if !ok {
			return false
		}
		sigma[id] = other
		sigma[other] = id
	}
	swapComp := func(c string) string {
		switch c {
		case c1:
			return c2
		case c2:
			return c1
		}
		return c
	}
	// Connection fan-out invariance: σ(outgoing[p]) == outgoing[σ(p)].
	for p := range e.outgoing {
		if !samePortSet(mapPorts(e.outgoing[p], sigma), e.outgoing[sigma[p]]) {
			return false
		}
	}
	// Transfer invariance, with the owning component renamed through σ so
	// WhenFault/UnlessFault guards stay bound to the right activations.
	for p := range e.transfers {
		if !sameTransferSet(mapTransfers(e.transfers[p], sigma, swapComp), e.transfers[sigma[p]]) {
			return false
		}
	}
	// Declared activations and fault seeds must map onto each other.
	for act := range e.valid {
		if !e.valid[Activation{Component: swapComp(act.Component), Fault: act.Fault}] {
			return false
		}
	}
	for act, effs := range e.seeds {
		mapped := Activation{Component: swapComp(act.Component), Fault: act.Fault}
		if !sameSeedSet(mapSeeds(effs, sigma), e.seeds[mapped]) {
			return false
		}
	}
	return true
}

func mapPorts(in []portID, sigma []portID) []portID {
	out := make([]portID, len(in))
	for i, p := range in {
		out[i] = sigma[p]
	}
	return out
}

func samePortSet(a, b []portID) bool {
	if len(a) != len(b) {
		return false
	}
	bs := append([]portID(nil), b...)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range a {
		if a[i] != bs[i] {
			return false
		}
	}
	return true
}

func mapTransfers(in []compiledTransfer, sigma []portID, swapComp func(string) string) []compiledTransfer {
	out := make([]compiledTransfer, len(in))
	for i, tr := range in {
		tr.to = sigma[tr.to]
		tr.component = swapComp(tr.component)
		out[i] = tr
	}
	return out
}

func transferLess(a, b compiledTransfer) bool {
	if a.to != b.to {
		return a.to < b.to
	}
	if a.match != b.match {
		return a.match < b.match
	}
	if a.emit != b.emit {
		return a.emit < b.emit
	}
	if a.component != b.component {
		return a.component < b.component
	}
	if a.whenFault != b.whenFault {
		return a.whenFault < b.whenFault
	}
	return a.unlessFault < b.unlessFault
}

func sameTransferSet(a, b []compiledTransfer) bool {
	if len(a) != len(b) {
		return false
	}
	bs := append([]compiledTransfer(nil), b...)
	sort.Slice(a, func(i, j int) bool { return transferLess(a[i], a[j]) })
	sort.Slice(bs, func(i, j int) bool { return transferLess(bs[i], bs[j]) })
	for i := range a {
		if a[i] != bs[i] {
			return false
		}
	}
	return true
}

func mapSeeds(in []seedEffect, sigma []portID) []seedEffect {
	out := make([]seedEffect, len(in))
	for i, s := range in {
		s.port = sigma[s.port]
		out[i] = s
	}
	return out
}

func sameSeedSet(a, b []seedEffect) bool {
	if len(a) != len(b) {
		return false
	}
	bs := append([]seedEffect(nil), b...)
	less := func(x, y seedEffect) bool {
		if x.port != y.port {
			return x.port < y.port
		}
		return x.emit < y.emit
	}
	sort.Slice(a, func(i, j int) bool { return less(a[i], a[j]) })
	sort.Slice(bs, func(i, j int) bool { return less(bs[i], bs[j]) })
	for i := range a {
		if a[i] != bs[i] {
			return false
		}
	}
	return true
}
