package risk

import (
	"strings"
	"testing"

	"cpsrisk/internal/qual"
)

func TestTreatmentFor(t *testing.T) {
	tests := []struct {
		risk qual.Level
		want Treatment
	}{
		{qual.VeryHigh, TreatImmediately},
		{qual.High, TreatMitigate},
		{qual.Medium, TreatPlan},
		{qual.Low, TreatAccept},
		{qual.VeryLow, TreatAccept},
	}
	for _, tt := range tests {
		if got := TreatmentFor(tt.risk); got != tt.want {
			t.Errorf("TreatmentFor(%v) = %v, want %v", tt.risk, got, tt.want)
		}
	}
}

func TestTreatmentMonotone(t *testing.T) {
	prev := TreatAccept
	for l := qual.VeryLow; l <= qual.VeryHigh; l++ {
		cur := TreatmentFor(l)
		if cur > prev {
			t.Fatalf("treatment urgency decreased at %v", l)
		}
		prev = cur
	}
}

func TestExplain(t *testing.T) {
	clean := Explain(ScenarioRisk{ID: "S1", Risk: qual.VeryLow})
	if !strings.Contains(clean, "no requirement violated") {
		t.Errorf("clean = %q", clean)
	}
	hot := Explain(ScenarioRisk{
		ID: "S2", Violations: 2, Severity: qual.High,
		Likelihood: qual.Medium, Risk: qual.High,
	})
	for _, want := range []string{"2 requirement(s)", "severity H", "likelihood M", "risk H", "mitigate"} {
		if !strings.Contains(hot, want) {
			t.Errorf("explanation %q missing %q", hot, want)
		}
	}
}

func TestTreatmentStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, tr := range []Treatment{TreatImmediately, TreatMitigate, TreatPlan, TreatAccept} {
		s := tr.String()
		if s == "" || s == "unknown-treatment" || seen[s] {
			t.Errorf("bad treatment string %q", s)
		}
		seen[s] = true
	}
}
