package dynamics

import (
	"fmt"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/temporal"
)

// Analyzer holds one persistent multi-shot solver session over the
// attack-synthesis encoding of a system: the bounded dynamics, the
// candidate start choice, and the negated requirement are grounded once,
// then synthesis, what-if probes, and consistency re-checks are all
// assumption queries against the same session, sharing learned clauses
// and branching heuristics. Like solver.Session, an Analyzer is strictly
// single-goroutine.
type Analyzer struct {
	horizon    int
	candidates []string
	sess       *solver.Session
	bud        *budget.Budget
}

// NewAnalyzer compiles the synthesis encoding (see Synthesize for the
// semantics of horizon, candidates, maxActive, requirement) into a
// persistent session.
func NewAnalyzer(sys *System, horizon int, candidates []string, maxActive int,
	requirement temporal.Formula) (*Analyzer, error) {
	return NewAnalyzerBudget(sys, horizon, candidates, maxActive, requirement, nil)
}

// NewAnalyzerBudget is NewAnalyzer under resource governance: session
// grounding and every probe query poll the budget, and — when the
// budget's context carries a trace span or metrics registry — attach
// spans and publish cumulative solver stats on Close.
func NewAnalyzerBudget(sys *System, horizon int, candidates []string, maxActive int,
	requirement temporal.Formula, bud *budget.Budget) (*Analyzer, error) {
	prog, err := synthesisProgram(sys, horizon, candidates, maxActive, requirement)
	if err != nil {
		return nil, err
	}
	sess, err := solver.NewSession(prog, solver.Options{Budget: bud})
	if err != nil {
		return nil, err
	}
	return &Analyzer{horizon: horizon, candidates: candidates, sess: sess, bud: bud}, nil
}

// Close publishes the session's cumulative solver effort onto the
// budget's metrics registry (if any) and releases the session.
func (a *Analyzer) Close() {
	if a.bud != nil {
		st := a.sess.Stats()
		solver.PublishStats(obs.RegistryFromContext(a.bud.Context()), &st)
	}
	a.sess.Close()
}

// Stats returns the session's cumulative solver effort.
func (a *Analyzer) Stats() solver.Stats { return a.sess.Stats() }

// Synthesize searches for a minimum attack schedule violating the
// requirement. ok is false when no schedule exists within the encoding's
// bounds — a bounded proof of safety against the candidate set.
func (a *Analyzer) Synthesize() (Schedule, bool, error) {
	return a.SynthesizeAvoiding(nil)
}

// SynthesizeAvoiding synthesizes an attack that schedules none of the
// disabled candidates — the mitigation probe "is the system safe once
// these faults are excluded?" answered without re-grounding. Disabling is
// an assumption on the scheduled/1 atom, so consecutive probes reuse the
// session's learned clauses.
func (a *Analyzer) SynthesizeAvoiding(disabled []string) (Schedule, bool, error) {
	assumps := make([]solver.Assumption, 0, len(disabled))
	for _, key := range disabled {
		assumps = append(assumps, solver.AssumeFalse(logic.A("scheduled", logic.Sym(key)).Key()))
	}
	res, err := a.sess.SolveAssuming(assumps, solver.Options{Optimize: true, MaxModels: 1, Budget: a.bud})
	if err != nil {
		return nil, false, err
	}
	if len(res.Models) == 0 {
		return nil, false, nil
	}
	return a.extractSchedule(&res.Models[0]), true, nil
}

// ConfirmAttack re-checks a concrete schedule against the same session:
// the query pins exactly the given start atoms (and no others) and asks
// whether the negated requirement still holds — the consistency check
// that a synthesized or externally proposed schedule really is an attack
// under the encoded dynamics. The deterministic dynamics admit at most
// one trajectory per schedule; two models indicate a modeling error.
func (a *Analyzer) ConfirmAttack(schedule Schedule) (bool, error) {
	assumps := make([]solver.Assumption, 0, len(schedule)+1)
	for _, inj := range schedule {
		if inj.AtStep < 0 || inj.AtStep >= a.horizon {
			return false, fmt.Errorf("dynamics: injection %q at step %d outside horizon %d",
				inj.Key, inj.AtStep, a.horizon)
		}
		assumps = append(assumps,
			solver.AssumeTrue(logic.A("starts", logic.Sym(inj.Key), logic.Num(inj.AtStep)).Key()))
	}
	assumps = append(assumps, solver.AssumeCountLT("starts", len(schedule)+1))
	res, err := a.sess.SolveAssuming(assumps, solver.Options{MaxModels: 2, Budget: a.bud})
	if err != nil {
		return false, err
	}
	if len(res.Models) > 1 {
		return false, fmt.Errorf("dynamics: nondeterministic model (%d trajectories for %s)",
			len(res.Models), schedule.Key())
	}
	return len(res.Models) == 1, nil
}

func (a *Analyzer) extractSchedule(m *solver.Model) Schedule {
	var schedule Schedule
	for _, key := range a.candidates {
		for t := 0; t < a.horizon; t++ {
			if m.Contains(logic.A("starts", logic.Sym(key), logic.Num(t)).Key()) {
				schedule = append(schedule, Injection{Key: key, AtStep: t})
			}
		}
	}
	return schedule
}

// synthesisProgram builds the shared encoding: bounded dynamics, the
// attack-schedule choice over the candidates, the negated requirement,
// and the schedule-size objective.
func synthesisProgram(sys *System, horizon int, candidates []string, maxActive int,
	requirement temporal.Formula) (*logic.Program, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("dynamics: no candidate faults")
	}
	prog, err := sys.Encode(horizon, nil)
	if err != nil {
		return nil, err
	}
	// Attack-schedule choice: each candidate picks at most one start step;
	// at most maxActive candidates start at all.
	for _, key := range candidates {
		prog.AddFact(logic.A("candidate", logic.Sym(key)))
	}
	upper := logic.Unbounded
	if maxActive >= 0 {
		upper = maxActive
	}
	prog.AddRule(logic.ChoiceRule(logic.Unbounded, upper, []logic.ChoiceElem{{
		Atom: logic.A("starts", logic.Var("K"), logic.Var("T")),
		Cond: []logic.Literal{
			logic.Pos(logic.A("candidate", logic.Var("K"))),
			logic.Pos(logic.A("time", logic.Var("T"))),
		},
	}}))
	scheduled, err := logic.Parse(`
		scheduled(K) :- starts(K, T).
		:- starts(K, T1), starts(K, T2), T1 < T2.
		dyn_active(K, T2) :- starts(K, T1), time(T2), T2 >= T1.
	`)
	if err != nil {
		return nil, err
	}
	prog.Extend(scheduled)
	// The requirement must FAIL: require its negation at step 0.
	u := temporal.NewUnroller(horizon)
	if err := u.Require(prog, temporal.Not(requirement)); err != nil {
		return nil, err
	}
	// Prefer the least intrusive attack: minimize the schedule size.
	prog.AddMinimize(logic.MinimizeElem{
		Weight:   logic.Num(1),
		Priority: 1,
		Tuple:    []logic.Term{logic.Var("K")},
		Cond:     []logic.BodyElem{logic.Pos(logic.A("scheduled", logic.Var("K")))},
	})
	return prog, nil
}
