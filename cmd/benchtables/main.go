// Command benchtables regenerates every table and figure of the paper's
// evaluation as text:
//
//	-table1  O-RA risk matrix (paper Table I)
//	-table2  case-study analysis results (paper Table II)
//	-fig1    pipeline stage walk-through (paper Fig. 1)
//	-fig2    O-RA risk-attribute derivations (paper Fig. 2)
//	-fig3    hierarchical evaluation matrix (paper Fig. 3)
//	-fig4    case-study model and asset refinement (paper Fig. 4)
//	-all     everything (default when no flag is given)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cpsrisk/internal/cegar"
	"cpsrisk/internal/core"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hierarchy"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/report"
	"cpsrisk/internal/risk"
	"cpsrisk/internal/watertank"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	t1 := fs.Bool("table1", false, "Table I")
	t2 := fs.Bool("table2", false, "Table II")
	f1 := fs.Bool("fig1", false, "Fig. 1 pipeline")
	f2 := fs.Bool("fig2", false, "Fig. 2 risk attributes")
	f3 := fs.Bool("fig3", false, "Fig. 3 hierarchy matrix")
	f4 := fs.Bool("fig4", false, "Fig. 4 asset refinement")
	all := fs.Bool("all", false, "everything")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*t1 || *t2 || *f1 || *f2 || *f3 || *f4) {
		*all = true
	}
	type section struct {
		enabled bool
		title   string
		render  func() (string, error)
	}
	sections := []section{
		{*t1 || *all, "Table I — O-RA risk matrix",
			func() (string, error) { return report.TableI(), nil }},
		{*t2 || *all, "Table II — case-study analysis results",
			func() (string, error) { return watertank.PaperTableII(false) }},
		{*f1 || *all, "Fig. 1 — experimental framework pipeline", fig1},
		{*f2 || *all, "Fig. 2 — O-RA risk-attribute derivations", fig2},
		{*f3 || *all, "Fig. 3 — hierarchical evaluation matrix",
			func() (string, error) { return hierarchy.RenderMatrix(), nil }},
		{*f4 || *all, "Fig. 4 — case-study model & asset refinement", fig4},
	}
	for _, s := range sections {
		if !s.enabled {
			continue
		}
		out, err := s.render()
		if err != nil {
			return fmt.Errorf("%s: %w", s.title, err)
		}
		fmt.Printf("== %s ==\n%s\n", s.title, out)
	}
	return nil
}

// fig1 walks the Fig. 1 pipeline on the case study and reports what each
// stage produced.
func fig1() (string, error) {
	types := watertank.Types()
	a, err := core.Run(core.Config{
		Model:           watertank.Model(),
		Types:           types,
		Behaviors:       watertank.Behaviors(types),
		KB:              kb.MustDefaultKB(),
		Requirements:    watertank.Requirements(),
		ExtraMutations:  watertank.PaperCandidates(),
		MutationSources: faults.Options{},
		MaxCardinality:  -1,
		Optimize:        true,
		Budget:          -1,
		Oracle:          cegar.NewPlantOracle(),
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "1. System model:            %d components, %d connections\n",
		a.ModelStats.Components, a.ModelStats.Connections)
	fmt.Fprintf(&sb, "2. Candidate mutations:     %d candidates (%d analyzed)\n",
		len(a.Candidates), len(a.Analyzed))
	fmt.Fprintf(&sb, "3. Reasoning:               %d scenarios evaluated\n",
		len(a.Analysis.Scenarios))
	fmt.Fprintf(&sb, "4. Hazard identification:   %d hazardous scenarios\n",
		len(a.Analysis.Hazards()))
	fmt.Fprintf(&sb, "5. Model refinement (CEGAR): %d confirmed, %d spurious, %d undetermined\n",
		len(a.Refinement.Confirmed()), len(a.Refinement.Spurious()),
		len(a.Refinement.Undetermined()))
	top := a.Ranked[0]
	fmt.Fprintf(&sb, "6. Risk analysis:           top scenario %s risk %s\n",
		top.Scenario.Key(), qual.FiveLevel().Label(top.Risk.Risk))
	fmt.Fprintf(&sb, "7. Mitigation strategy:     select {%s}, cost %d, residual loss %d\n",
		strings.Join(a.Plan.Selected, ","), a.Plan.Cost, a.Plan.ResidualLoss)
	return sb.String(), nil
}

// fig2 renders the attribute-tree derivation for three archetype threat
// profiles.
func fig2() (string, error) {
	var sb strings.Builder
	profiles := []struct {
		name string
		attr risk.Attributes
	}{
		{"exposed weak asset", risk.Attributes{
			ContactFrequency: qual.High, ProbabilityOfAction: qual.High,
			ThreatCapability: qual.High, ResistanceStrength: qual.Low,
			PrimaryLoss: qual.High}},
		{"hardened asset", risk.Attributes{
			ContactFrequency: qual.High, ProbabilityOfAction: qual.Medium,
			ThreatCapability: qual.Medium, ResistanceStrength: qual.VeryHigh,
			PrimaryLoss: qual.High}},
		{"internal low-value asset", risk.Attributes{
			ContactFrequency: qual.VeryLow, ProbabilityOfAction: qual.Low,
			ThreatCapability: qual.Medium, ResistanceStrength: qual.Medium,
			PrimaryLoss: qual.Low}},
	}
	for _, p := range profiles {
		fmt.Fprintf(&sb, "-- %s --\n%s\n", p.name, report.Derivation(risk.Derive(p.attr)))
	}
	return sb.String(), nil
}

// fig4 shows the case-study model before and after the Engineering
// Workstation refinement, plus the topology view of the refined chain.
func fig4() (string, error) {
	var sb strings.Builder
	m := watertank.HierarchicalModel()
	before := m.Stats()
	fmt.Fprintf(&sb, "abstract model: %d components (%d composite, depth %d), %d connections\n",
		before.Components, before.Composites, before.Depth, before.Connections)
	tank, _ := m.Component(plant.CompTank)
	tank.SetAttr(hierarchy.CriticalityAttr, "VH")
	topo, err := hierarchy.Topology(m, []string{plant.CompEWS})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "topology from %s reaches critical: %s\n",
		plant.CompEWS, strings.Join(topo[0].Critical, ","))
	plan := hierarchy.RefinementPlan(m, topo)
	fmt.Fprintf(&sb, "refinement plan: %s\n", strings.Join(plan, ","))
	for _, id := range plan {
		if err := m.RefineComponent(id); err != nil {
			return "", err
		}
	}
	after := m.Stats()
	fmt.Fprintf(&sb, "refined model:  %d components (%d composite, depth %d), %d connections\n",
		after.Components, after.Composites, after.Depth, after.Connections)
	topo2, err := hierarchy.Topology(m, []string{"ews.email_client"})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "attack flow: email client -> ... -> %s (%d assets affected)\n",
		plant.CompTank, len(topo2[0].Affected))
	return sb.String(), nil
}
