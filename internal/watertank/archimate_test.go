package watertank

import (
	"bytes"
	"strings"
	"testing"

	"cpsrisk/internal/archimate"
	"cpsrisk/internal/hierarchy"
	"cpsrisk/internal/plant"
)

func TestArchimateViewValidatesAndLowers(t *testing.T) {
	view := ArchimateView()
	if err := view.Validate(); err != nil {
		t.Fatal(err)
	}
	lowered, lib, err := view.Lower()
	if err != nil {
		t.Fatal(err)
	}
	if err := lowered.Validate(lib); err != nil {
		t.Fatal(err)
	}
	// Composite workstation with the three-stage infection chain.
	ews, ok := lowered.Component(plant.CompEWS)
	if !ok || !ews.IsComposite() {
		t.Fatalf("ews = %+v", ews)
	}
	if got := len(ews.Sub.Components); got != 3 {
		t.Errorf("inner components = %d", got)
	}
	if ews.Attr("exposure") != "public" {
		t.Error("security metadata lost in lowering")
	}
	if len(lowered.Requirements) != 2 {
		t.Errorf("requirements = %v", lowered.Requirements)
	}
}

// The lowered ArchiMate view has the same IT-to-OT propagation shape as
// the hand-built sysmodel: the workstation reaches the tank, the HMI is a
// sink, and the sensor loop closes the cycle.
func TestArchimateViewMatchesTopology(t *testing.T) {
	view := ArchimateView()
	lowered, _, err := view.Lower()
	if err != nil {
		t.Fatal(err)
	}
	viaArchimate := lowered.BuildGraph()
	viaSysmodel := Model().BuildGraph()

	for _, from := range []string{plant.CompEWS, plant.CompController, plant.CompHMI} {
		a := viaArchimate.Reachable(from)
		s := viaSysmodel.Reachable(from)
		if strings.Join(a, ",") != strings.Join(s, ",") {
			t.Errorf("reachability from %s differs:\narchimate: %v\nsysmodel:  %v", from, a, s)
		}
	}
	if !viaArchimate.HasCycle() {
		t.Error("physical quantity loop must create a cycle")
	}
}

// Topology-based preliminary analysis works directly on the lowered view
// — the paper's entry workflow: ArchiMate model in, hazards out.
func TestArchimateViewPreliminaryAnalysis(t *testing.T) {
	lowered, _, err := ArchimateView().Lower()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hierarchy.Topology(lowered, []string{plant.CompEWS})
	if err != nil {
		t.Fatal(err)
	}
	foundTank := false
	for _, c := range topo[0].Critical {
		if c == plant.CompTank {
			foundTank = true
		}
	}
	if !foundTank {
		t.Errorf("workstation must reach the critical tank: %+v", topo[0])
	}
	if plan := hierarchy.RefinementPlan(lowered, topo); len(plan) != 1 || plan[0] != plant.CompEWS {
		t.Errorf("refinement plan = %v", plan)
	}
}

func TestArchimateViewJSONRoundTrip(t *testing.T) {
	view := ArchimateView()
	var buf bytes.Buffer
	if err := view.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	view2, err := archimate.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := view2.Lower(); err != nil {
		t.Fatalf("round-tripped view fails to lower: %v", err)
	}
}
