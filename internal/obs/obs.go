// Package obs is the pipeline's observability layer: a hierarchical span
// tracer, a race-safe metrics registry, and exporters (timing tree,
// Chrome trace_event JSON).
//
// Design contract — overhead safety: every method on a nil *Trace, nil
// *Span, nil *Registry, nil *Counter, nil *Gauge, and nil *Histogram is a
// no-op costing one pointer check, so hot paths hold possibly-nil
// handles resolved once outside their loops instead of branching on a
// "tracing enabled" flag. Disabled observability is therefore free at
// loop granularity and unmeasurable at stage granularity.
//
// Spans form a tree rooted at the trace: stage -> sub-stage ->
// per-worker/per-chunk/per-query. Starting children of the same parent
// from concurrent goroutines is safe (the trace serializes tree
// mutation); a single span's End must be called exactly once by the
// goroutine that started it (idempotent Ends are tolerated).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Hook observes span lifecycle events. Hooks run outside the trace lock
// on the goroutine that started/ended the span, so implementations used
// with parallel stages must be safe for concurrent calls.
type Hook interface {
	// SpanStart fires after the span started. The span's Name and Path
	// are safe to read; its duration is not yet defined.
	SpanStart(s *Span)
	// SpanEnd fires after the span ended; Duration is final.
	SpanEnd(s *Span)
}

// Trace is one assessment's span tree. Create with New, which also
// starts the root span; Finish ends the root and returns the wall time.
type Trace struct {
	mu    sync.Mutex
	root  *Span
	hooks []Hook
	start time.Time
}

// New starts a trace whose root span has the given name.
func New(rootName string) *Trace {
	t := &Trace{start: time.Now()}
	t.root = &Span{t: t, name: rootName, start: t.start}
	return t
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// AddHook subscribes h to span events. Not safe to call concurrently
// with running spans; install hooks before handing the trace out.
func (t *Trace) AddHook(h Hook) {
	if t == nil || h == nil {
		return
	}
	t.hooks = append(t.hooks, h)
}

// Elapsed is the wall time since the trace started (0 for nil).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Finish ends the root span (idempotent) and returns its duration.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.root.End()
	return t.root.Duration()
}

// Span is one timed node of the trace tree.
type Span struct {
	t        *Trace
	parent   *Span
	name     string
	start    time.Time
	end      time.Time // zero while open
	children []*Span
}

// StartChild starts a sub-span. Safe to call from concurrent goroutines
// on the same parent; returns nil on a nil span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	c := &Span{t: t, parent: s, name: name, start: time.Now()}
	s.children = append(s.children, c)
	t.mu.Unlock()
	for _, h := range t.hooks {
		h.SpanStart(c)
	}
	return c
}

// End closes the span. No-op on nil; idempotent (the first End wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	ended := !s.end.IsZero()
	if !ended {
		s.end = time.Now()
	}
	t.mu.Unlock()
	if ended {
		return
	}
	for _, h := range t.hooks {
		h.SpanEnd(s)
	}
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the slash-joined span path from the root, e.g.
// "assessment/hazard/sweep" ("" for nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	if s.parent == nil {
		return s.name
	}
	return s.parent.Path() + "/" + s.name
}

// Duration is the span's wall time: end-start once ended, time since
// start while open, 0 for nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	end := s.end
	s.t.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// TraceElapsed is the wall time from the trace start to now (0 for nil):
// the "when did this happen" stamp attached to degradation entries.
func (s *Span) TraceElapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.t.start)
}

// SpanSnapshot is an immutable copy of one span for export: offsets are
// microseconds relative to the trace start, so the tree is
// self-contained and stable under JSON round-trips.
type SpanSnapshot struct {
	Name     string          `json:"name"`
	StartUS  int64           `json:"startUs"`
	DurUS    int64           `json:"durUs"`
	Children []*SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the span tree. Open spans are snapshotted as if they
// ended now. Nil-safe.
func (t *Trace) Snapshot() *SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	return snapshotSpan(t.root, t.start, now)
}

func snapshotSpan(s *Span, origin, now time.Time) *SpanSnapshot {
	end := s.end
	if end.IsZero() {
		end = now
	}
	out := &SpanSnapshot{
		Name:    s.name,
		StartUS: s.start.Sub(origin).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
	}
	for _, c := range s.children {
		out.Children = append(out.Children, snapshotSpan(c, origin, now))
	}
	// Concurrent children are appended in lock order, which matches start
	// order; keep the invariant explicit for exporters.
	sort.SliceStable(out.Children, func(i, j int) bool {
		return out.Children[i].StartUS < out.Children[j].StartUS
	})
	return out
}

// Walk visits the snapshot tree depth-first, parents before children.
func (s *SpanSnapshot) Walk(f func(s *SpanSnapshot, depth int)) {
	if s == nil {
		return
	}
	var rec func(n *SpanSnapshot, d int)
	rec = func(n *SpanSnapshot, d int) {
		f(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	rec(s, 0)
}

// Tree renders the snapshot as an indented timing tree with one line per
// span: duration, share of the root, and name. Sibling spans repeated
// many times (per-chunk, per-query) are folded into one "name ×N" line
// carrying their summed duration, keeping the report readable on runs
// with thousands of spans.
func (s *SpanSnapshot) Tree() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	rootDur := s.DurUS
	if rootDur <= 0 {
		rootDur = 1
	}
	var rec func(n *SpanSnapshot, depth int)
	rec = func(n *SpanSnapshot, depth int) {
		fmt.Fprintf(&sb, "  %s%-*s %9s  %5.1f%%\n",
			strings.Repeat("  ", depth), 32-2*depth, n.Name,
			time.Duration(n.DurUS)*time.Microsecond,
			100*float64(n.DurUS)/float64(rootDur))
		for _, g := range foldChildren(n.Children) {
			if g.n == 1 {
				rec(g.first, depth+1)
				continue
			}
			fmt.Fprintf(&sb, "  %s%-*s %9s  %5.1f%%\n",
				strings.Repeat("  ", depth+1), 32-2*(depth+1),
				fmt.Sprintf("%s ×%d", g.base, g.n),
				time.Duration(g.durUS)*time.Microsecond,
				100*float64(g.durUS)/float64(rootDur))
		}
	}
	rec(s, 0)
	return sb.String()
}

type spanGroup struct {
	base  string
	n     int
	durUS int64
	first *SpanSnapshot
}

// foldChildren groups sibling spans by base name (the part before the
// first '[', '#', or '=' marker), preserving first-seen order.
func foldChildren(children []*SpanSnapshot) []spanGroup {
	var out []spanGroup
	idx := map[string]int{}
	for _, c := range children {
		base := baseName(c.Name)
		i, ok := idx[base]
		if !ok {
			i = len(out)
			idx[base] = i
			out = append(out, spanGroup{base: base, first: c})
		}
		out[i].n++
		out[i].durUS += c.DurUS
	}
	return out
}

func baseName(name string) string {
	if i := strings.IndexAny(name, "[#="); i > 0 {
		return strings.TrimRight(name[:i], " ")
	}
	return name
}

// Find returns the first span with the given name in depth-first order,
// or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	var found *SpanSnapshot
	s.Walk(func(n *SpanSnapshot, _ int) {
		if found == nil && n.Name == name {
			found = n
		}
	})
	return found
}

// Count returns how many spans in the tree carry the given name.
func (s *SpanSnapshot) Count(name string) int {
	n := 0
	s.Walk(func(sp *SpanSnapshot, _ int) {
		if sp.Name == name {
			n++
		}
	})
	return n
}
