package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export: the span tree becomes duration-event (B/E)
// pairs loadable in about:tracing / Perfetto / chrome://tracing.
//
// The format requires events within one (pid, tid) track to be properly
// nested with non-decreasing timestamps, but our span tree has genuinely
// concurrent siblings (sweep workers, CEGAR checks). The exporter
// therefore assigns each span a *lane* (rendered as a tid): a child
// shares its parent's lane while it doesn't overlap the sibling placed
// there before it, and overlapping siblings spill into auxiliary lanes
// reused greedily once free. Within every lane the emitted B/E stream is
// time-sorted and stack-matched by construction, which is exactly what
// ValidateChromeTrace (and scripts/check.sh) verifies.

// ChromeEvent is one trace_event entry.
type ChromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"` // microseconds
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	Args any    `json:"args,omitempty"`
}

// chromeFile is the JSON-object envelope form of the format.
type chromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace writes the trace's span tree (snapshotted now) as
// Chrome trace_event JSON. A nil or empty trace writes a valid file with
// no duration events.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	return WriteChromeTraceSnapshot(w, t.Snapshot())
}

// WriteChromeTraceSnapshot writes an already-captured span tree.
func WriteChromeTraceSnapshot(w io.Writer, root *SpanSnapshot) error {
	return WriteChromeTraceSnapshotArgs(w, root, nil)
}

// WriteChromeTraceSnapshotArgs writes an already-captured span tree,
// attaching args to the root span's begin event — run-level metadata
// (the per-request trace ID, the tenant) lands on the root so Perfetto
// and tracecheck can find it without a side channel.
func WriteChromeTraceSnapshotArgs(w io.Writer, root *SpanSnapshot, args map[string]any) error {
	file := chromeFile{TraceEvents: []ChromeEvent{}, DisplayTimeUnit: "ms"}
	if root != nil {
		lanes := chromeLanes(root)
		for tid, events := range lanes {
			for i, ev := range events {
				if len(args) > 0 && tid == 0 && i == 0 && ev.Ph == "B" {
					// Lane 0 opens with the root span's B event.
					ev.Args = args
				}
				ev.PID = 1
				ev.TID = tid
				file.TraceEvents = append(file.TraceEvents, ev)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// chromeLanes flattens the tree into per-lane B/E event streams. Each
// span is placed at its interval clamped into its parent's: microsecond
// truncation and End-ordering races between concurrent spans can push a
// child's nominal interval a tick past its parent's, which would break
// the format's nesting invariant.
func chromeLanes(root *SpanSnapshot) [][]ChromeEvent {
	lanes := [][]ChromeEvent{nil} // lane 0 = the root's lane
	// laneFree[l] is when auxiliary lane l (l >= 1) is free again; lane 0
	// availability is tracked recursively by the cursor below.
	laneFree := []int64{0}

	var place func(s *SpanSnapshot, lane int, start, end int64)
	place = func(s *SpanSnapshot, lane int, start, end int64) {
		lanes[lane] = append(lanes[lane], ChromeEvent{Name: s.Name, Ph: "B", TS: start})
		cursor := start
		children := append([]*SpanSnapshot(nil), s.Children...)
		sort.SliceStable(children, func(i, j int) bool { return children[i].StartUS < children[j].StartUS })
		for _, c := range children {
			cs, ce := c.StartUS, c.StartUS+c.DurUS
			if cs < start {
				cs = start
			}
			if cs > end {
				cs = end
			}
			if ce > end {
				ce = end
			}
			if ce < cs {
				ce = cs
			}
			if cs >= cursor {
				// Fits after the previous sibling in this lane: nests
				// inside the parent, stays time-sorted.
				place(c, lane, cs, ce)
				cursor = ce
				continue
			}
			// Overlaps: spill into the first free auxiliary lane.
			aux := -1
			for l := 1; l < len(laneFree); l++ {
				if laneFree[l] <= cs {
					aux = l
					break
				}
			}
			if aux == -1 {
				aux = len(laneFree)
				laneFree = append(laneFree, 0)
				lanes = append(lanes, nil)
			}
			laneFree[aux] = ce
			place(c, aux, cs, ce)
		}
		lanes[lane] = append(lanes[lane], ChromeEvent{Name: s.Name, Ph: "E", TS: end})
	}
	place(root, 0, root.StartUS, root.StartUS+root.DurUS)
	return lanes
}

// ValidateChromeTrace checks a trace_event JSON stream (object envelope
// or bare event array) for structural validity: every event carries a
// name and a known phase, and within each (pid, tid) track timestamps
// are non-decreasing and B/E events are stack-matched with matching
// names. Returns the number of duration-event pairs on success.
func ValidateChromeTrace(r io.Reader) (pairs int, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	var file chromeFile
	if err := json.Unmarshal(data, &file); err != nil {
		// Bare-array form.
		if arrErr := json.Unmarshal(data, &file.TraceEvents); arrErr != nil {
			return 0, fmt.Errorf("trace: not a trace_event file: %w", err)
		}
	}
	type track struct{ pid, tid int }
	lastTS := map[track]int64{}
	stacks := map[track][]ChromeEvent{}
	for i, ev := range file.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "M": // metadata: no timestamp ordering requirements
			continue
		case "B", "E", "X", "C", "i", "I":
		default:
			return 0, fmt.Errorf("trace: event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		tk := track{ev.PID, ev.TID}
		if prev, ok := lastTS[tk]; ok && ev.TS < prev {
			return 0, fmt.Errorf("trace: event %d (%s) goes back in time on tid %d: %d < %d",
				i, ev.Name, ev.TID, ev.TS, prev)
		}
		lastTS[tk] = ev.TS
		switch ev.Ph {
		case "B":
			stacks[tk] = append(stacks[tk], ev)
		case "E":
			st := stacks[tk]
			if len(st) == 0 {
				return 0, fmt.Errorf("trace: event %d: E %q on tid %d without open B", i, ev.Name, ev.TID)
			}
			open := st[len(st)-1]
			if open.Name != ev.Name {
				return 0, fmt.Errorf("trace: event %d: E %q does not match open B %q on tid %d",
					i, ev.Name, open.Name, ev.TID)
			}
			stacks[tk] = st[:len(st)-1]
			pairs++
		}
	}
	for tk, st := range stacks {
		if len(st) > 0 {
			return 0, fmt.Errorf("trace: tid %d ends with unclosed span %q", tk.tid, st[len(st)-1].Name)
		}
	}
	return pairs, nil
}
