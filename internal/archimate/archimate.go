// Package archimate implements the high-level engineering modeling surface
// of the framework (paper §II-C): a TOGAF/ArchiMate-flavored language of
// layered elements and relationships with security annotations, and the
// lowering of such models into the sysmodel component-port-connection
// representation the reasoner consumes. It plays the role ArchiMate plays
// in the paper: "a common language and toolkit between the analyst and the
// engineers".
package archimate

import (
	"encoding/json"
	"fmt"
	"io"

	"cpsrisk/internal/sysmodel"
)

// Layer is an ArchiMate layer.
type Layer string

// ArchiMate layers used for IT/OT modeling.
const (
	Business    Layer = "business"
	Application Layer = "application"
	Technology  Layer = "technology"
	Physical    Layer = "physical"
)

// ElementType classifies an element within its layer.
type ElementType string

// Element types (the IT/OT-relevant subset of the ArchiMate vocabulary).
const (
	BusinessProcess      ElementType = "business-process"
	BusinessActor        ElementType = "business-actor"
	ApplicationComponent ElementType = "application-component"
	ApplicationService   ElementType = "application-service"
	Node                 ElementType = "node"
	Device               ElementType = "device"
	SystemSoftware       ElementType = "system-software"
	CommunicationNetwork ElementType = "communication-network"
	Equipment            ElementType = "equipment"
	Facility             ElementType = "facility"
	Material             ElementType = "material"
)

// layerOf gives the home layer of each element type.
var layerOf = map[ElementType]Layer{
	BusinessProcess:      Business,
	BusinessActor:        Business,
	ApplicationComponent: Application,
	ApplicationService:   Application,
	Node:                 Technology,
	Device:               Technology,
	SystemSoftware:       Technology,
	CommunicationNetwork: Technology,
	Equipment:            Physical,
	Facility:             Physical,
	Material:             Physical,
}

// RelationType classifies a relationship.
type RelationType string

// Relationship types. Flow carries data (lowered to a signal connection);
// Association with the "quantity" property carries a conserved physical
// quantity (lowered to a quantity connection); Composition nests an
// element inside a composite; Assignment/Serving/Realization are
// structural annotations preserved as metadata.
const (
	Flow        RelationType = "flow"
	Association RelationType = "association"
	Composition RelationType = "composition"
	Assignment  RelationType = "assignment"
	Serving     RelationType = "serving"
	Realization RelationType = "realization"
)

// Element is an ArchiMate element with security properties (per the Open
// Group "risk and security modeling" overlay, paper ref [8]).
type Element struct {
	ID    string      `json:"id"`
	Name  string      `json:"name,omitempty"`
	Type  ElementType `json:"type"`
	Layer Layer       `json:"layer,omitempty"` // defaults from Type
	// Props carries annotations, e.g. exposure=public, version=2.3,
	// criticality=H, componentType=<sysmodel type override>.
	Props map[string]string `json:"props,omitempty"`
}

// Relation links two elements.
type Relation struct {
	Type  RelationType `json:"type"`
	From  string       `json:"from"`
	To    string       `json:"to"`
	Label string       `json:"label,omitempty"`
	// Props: quantity=true marks an association as a physical shared
	// quantity.
	Props map[string]string `json:"props,omitempty"`
}

// Model is an ArchiMate view of the system.
type Model struct {
	Name      string                 `json:"name"`
	Elements  []Element              `json:"elements"`
	Relations []Relation             `json:"relations"`
	Reqs      []sysmodel.Requirement `json:"requirements,omitempty"`
}

// AddElement appends an element.
func (m *Model) AddElement(e Element) { m.Elements = append(m.Elements, e) }

// AddRelation appends a relation.
func (m *Model) AddRelation(r Relation) { m.Relations = append(m.Relations, r) }

// Validate checks element uniqueness, known types, and relation endpoint
// resolution.
func (m *Model) Validate() error {
	ids := map[string]bool{}
	for _, e := range m.Elements {
		if e.ID == "" {
			return fmt.Errorf("archimate: element with empty ID")
		}
		if ids[e.ID] {
			return fmt.Errorf("archimate: duplicate element ID %q", e.ID)
		}
		ids[e.ID] = true
		if _, ok := layerOf[e.Type]; !ok {
			return fmt.Errorf("archimate: element %q has unknown type %q", e.ID, e.Type)
		}
	}
	for i, r := range m.Relations {
		if !ids[r.From] {
			return fmt.Errorf("archimate: relation %d references unknown element %q", i, r.From)
		}
		if !ids[r.To] {
			return fmt.Errorf("archimate: relation %d references unknown element %q", i, r.To)
		}
		switch r.Type {
		case Flow, Association, Composition, Assignment, Serving, Realization:
		default:
			return fmt.Errorf("archimate: relation %d has unknown type %q", i, r.Type)
		}
	}
	return nil
}

// ElementLayer resolves the effective layer of an element.
func (e *Element) ElementLayer() Layer {
	if e.Layer != "" {
		return e.Layer
	}
	return layerOf[e.Type]
}

// Lower transforms the ArchiMate model into a sysmodel.Model plus the
// generated component-type library. Each element becomes a component whose
// sysmodel type is the element type (or the componentType property
// override); ports are synthesized per connection:
//
//   - Flow relation a -> b: port "out<i>" (signal out) on a, "in<i>"
//     (signal in) on b, signal connection.
//   - Association with quantity property: inout quantity ports and a
//     quantity connection.
//   - Composition parent -> child: the child (with its connections inside
//     the parent's sub-model) nests under the parent composite. Only one
//     level of composition per parent is synthesized here; deeper nesting
//     comes from repeated composition relations.
//
// Assignment/Serving/Realization relations become component attributes
// ("assignedTo", "serves", "realizes") preserved for deployment-aspect
// reasoning.
func (m *Model) Lower() (*sysmodel.Model, *sysmodel.TypeLibrary, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	// Partition elements into composite children and the rest.
	parentOf := map[string]string{}
	for _, r := range m.Relations {
		if r.Type == Composition {
			if prev, dup := parentOf[r.To]; dup && prev != r.From {
				return nil, nil, fmt.Errorf("archimate: element %q composed into both %q and %q",
					r.To, prev, r.From)
			}
			parentOf[r.To] = r.From
		}
	}
	// Reject composition cycles.
	for id := range parentOf {
		seen := map[string]bool{}
		for cur := id; cur != ""; cur = parentOf[cur] {
			if seen[cur] {
				return nil, nil, fmt.Errorf("archimate: composition cycle through %q", cur)
			}
			seen[cur] = true
		}
	}

	lw := &lowerer{
		lib:      sysmodel.NewTypeLibrary(),
		models:   map[string]*sysmodel.Model{},
		elements: map[string]Element{},
		parentOf: parentOf,
		portN:    map[string]int{},
	}
	root := sysmodel.NewModel(m.Name)
	lw.models[""] = root

	for _, e := range m.Elements {
		lw.elements[e.ID] = e
	}
	// Create components in their owning (sub)model.
	for _, e := range m.Elements {
		owner := lw.modelFor(parentOf[e.ID])
		comp := &sysmodel.Component{
			ID:    e.ID,
			Name:  e.Name,
			Type:  lw.typeName(e),
			Layer: string(e.ElementLayer()),
		}
		for k, v := range e.Props {
			comp.SetAttr(k, v)
		}
		if err := owner.AddComponent(comp); err != nil {
			return nil, nil, err
		}
		lw.ensureType(e)
	}
	// Attach sub-models to their composite parents.
	for childParent, parent := range parentOf {
		_ = childParent
		parentComp, err := lw.componentOf(parent)
		if err != nil {
			return nil, nil, err
		}
		if parentComp.Sub == nil {
			parentComp.Sub = lw.models[parent]
		}
	}
	// Lower relations.
	for _, r := range m.Relations {
		if err := lw.lowerRelation(r); err != nil {
			return nil, nil, err
		}
	}
	root.Requirements = append(root.Requirements, m.Reqs...)
	if err := root.Validate(lw.lib); err != nil {
		return nil, nil, fmt.Errorf("archimate: lowered model invalid: %w", err)
	}
	return root, lw.lib, nil
}

type lowerer struct {
	lib      *sysmodel.TypeLibrary
	models   map[string]*sysmodel.Model // parent element ID ("" = root) -> model
	elements map[string]Element
	parentOf map[string]string
	portN    map[string]int // element ID -> port counter
}

func (lw *lowerer) modelFor(parent string) *sysmodel.Model {
	if m, ok := lw.models[parent]; ok {
		return m
	}
	m := sysmodel.NewModel(parent + "-sub")
	lw.models[parent] = m
	return m
}

func (lw *lowerer) componentOf(id string) (*sysmodel.Component, error) {
	owner := lw.models[lw.parentOf[id]]
	if owner == nil {
		return nil, fmt.Errorf("archimate: no model for parent of %q", id)
	}
	c, ok := owner.Component(id)
	if !ok {
		return nil, fmt.Errorf("archimate: lowered component %q missing", id)
	}
	return c, nil
}

func (lw *lowerer) typeName(e Element) string {
	if t := e.Props["componentType"]; t != "" {
		return "am:" + t
	}
	return "am:" + string(e.Type)
}

func (lw *lowerer) ensureType(e Element) {
	name := lw.typeName(e)
	if _, ok := lw.lib.Get(name); ok {
		return
	}
	lw.lib.MustAdd(&sysmodel.ComponentType{
		Name:  name,
		Layer: string(e.ElementLayer()),
	})
}

// addPort appends a fresh port to the element's component type. Types are
// shared between elements of the same kind, so ports accumulate on the
// shared type; every instance legally exposes the union (unused ports are
// simply never connected).
func (lw *lowerer) addPort(elemID string, dir sysmodel.PortDir, flow sysmodel.FlowKind) (string, error) {
	e := lw.elements[elemID]
	ctName := lw.typeName(e)
	ct, ok := lw.lib.Get(ctName)
	if !ok {
		return "", fmt.Errorf("archimate: missing type %q", ctName)
	}
	lw.portN[elemID]++
	port := fmt.Sprintf("%s%d_%s", dirPrefix(dir), lw.portN[elemID], elemID)
	if _, dup := ct.Port(port); !dup {
		ct.Ports = append(ct.Ports, sysmodel.PortSpec{Name: port, Dir: dir, Flow: flow})
	}
	return port, nil
}

func dirPrefix(d sysmodel.PortDir) string {
	switch d {
	case sysmodel.In:
		return "in"
	case sysmodel.Out:
		return "out"
	default:
		return "io"
	}
}

func (lw *lowerer) lowerRelation(r Relation) error {
	switch r.Type {
	case Composition:
		return nil // handled structurally
	case Assignment, Serving, Realization:
		from, err := lw.componentOf(r.From)
		if err != nil {
			return err
		}
		from.SetAttr(attrFor(r.Type), r.To)
		return nil
	case Flow, Association:
	default:
		return fmt.Errorf("archimate: unsupported relation %q", r.Type)
	}
	// Connections must stay within one (sub)model level.
	pf, pt := lw.parentOf[r.From], lw.parentOf[r.To]
	if pf != pt {
		return fmt.Errorf("archimate: relation %s->%s crosses composite boundary (%q vs %q); "+
			"model boundary ports explicitly in sysmodel instead", r.From, r.To, pf, pt)
	}
	owner := lw.models[pf]
	flow := sysmodel.SignalFlow
	dirFrom, dirTo := sysmodel.Out, sysmodel.In
	if r.Type == Association {
		if r.Props["quantity"] != "true" {
			// Plain associations are metadata only.
			from, err := lw.componentOf(r.From)
			if err != nil {
				return err
			}
			from.SetAttr("associatedWith", r.To)
			return nil
		}
		flow = sysmodel.QuantityFlow
		dirFrom, dirTo = sysmodel.InOut, sysmodel.InOut
	}
	fromPort, err := lw.addPort(r.From, dirFrom, flow)
	if err != nil {
		return err
	}
	toPort, err := lw.addPort(r.To, dirTo, flow)
	if err != nil {
		return err
	}
	owner.Connections = append(owner.Connections, sysmodel.Connection{
		From:  sysmodel.PortRef{Component: r.From, Port: fromPort},
		To:    sysmodel.PortRef{Component: r.To, Port: toPort},
		Flow:  flow,
		Label: r.Label,
	})
	return nil
}

func attrFor(rt RelationType) string {
	switch rt {
	case Assignment:
		return "assignedTo"
	case Serving:
		return "serves"
	case Realization:
		return "realizes"
	default:
		return string(rt)
	}
}

// WriteJSON serializes the ArchiMate model.
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadJSON deserializes an ArchiMate model.
func ReadJSON(r io.Reader) (*Model, error) {
	var m Model
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("archimate: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
