package qual

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewScaleValidation(t *testing.T) {
	tests := []struct {
		name    string
		labels  []string
		wantErr bool
	}{
		{"ok two", []string{"lo", "hi"}, false},
		{"ok five", []string{"VL", "L", "M", "H", "VH"}, false},
		{"too few", []string{"only"}, true},
		{"empty", nil, true},
		{"duplicate", []string{"a", "b", "a"}, true},
		{"empty label", []string{"a", ""}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewScale("s", tt.labels...)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewScale(%v) err=%v, wantErr=%v", tt.labels, err, tt.wantErr)
			}
		})
	}
}

func TestScaleParse(t *testing.T) {
	s := FiveLevel()
	tests := []struct {
		label string
		want  Level
		ok    bool
	}{
		{"VL", VeryLow, true},
		{"L", Low, true},
		{"M", Medium, true},
		{"H", High, true},
		{"VH", VeryHigh, true},
		{"vh", VeryHigh, true}, // case-insensitive fallback
		{"m", Medium, true},
		{"nope", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		got, err := s.Parse(tt.label)
		if tt.ok {
			if err != nil {
				t.Errorf("Parse(%q) unexpected error: %v", tt.label, err)
				continue
			}
			if got != tt.want {
				t.Errorf("Parse(%q) = %v, want %v", tt.label, got, tt.want)
			}
		} else if err == nil {
			t.Errorf("Parse(%q) expected error", tt.label)
		} else if !errors.Is(err, ErrUnknownLabel) {
			t.Errorf("Parse(%q) error %v is not ErrUnknownLabel", tt.label, err)
		}
	}
}

func TestScaleLabelRoundTrip(t *testing.T) {
	s := FiveLevel()
	for l := s.Min(); l <= s.Max(); l++ {
		got, err := s.Parse(s.Label(l))
		if err != nil {
			t.Fatalf("round trip at %d: %v", l, err)
		}
		if got != l {
			t.Errorf("round trip: Parse(Label(%d)) = %d", l, got)
		}
	}
	if s.Label(Level(99)) != "?" {
		t.Errorf("out-of-range label should be ?")
	}
	if s.Label(Level(-1)) != "?" {
		t.Errorf("negative label should be ?")
	}
}

func TestScaleClampAdd(t *testing.T) {
	s := FiveLevel()
	tests := []struct {
		start Level
		step  int
		want  Level
	}{
		{Medium, 0, Medium},
		{Medium, 1, High},
		{Medium, -1, Low},
		{Medium, 10, VeryHigh},
		{Medium, -10, VeryLow},
		{VeryHigh, 1, VeryHigh},
		{VeryLow, -1, VeryLow},
	}
	for _, tt := range tests {
		if got := s.Add(tt.start, tt.step); got != tt.want {
			t.Errorf("Add(%v,%d) = %v, want %v", tt.start, tt.step, got, tt.want)
		}
	}
}

func TestScaleMaxMinMean(t *testing.T) {
	s := FiveLevel()
	if got := s.MaxOf(Low, High, Medium); got != High {
		t.Errorf("MaxOf = %v", got)
	}
	if got := s.MinOf(Low, High, Medium); got != Low {
		t.Errorf("MinOf = %v", got)
	}
	if got := s.MaxOf(Medium); got != Medium {
		t.Errorf("MaxOf single = %v", got)
	}
	// Mean rounds up (conservative toward higher risk).
	if got := s.Mean(Low, Medium); got != Medium {
		t.Errorf("Mean(L,M) = %v, want M", got)
	}
	if got := s.Mean(VeryLow, VeryHigh); got != Medium {
		t.Errorf("Mean(VL,VH) = %v, want M", got)
	}
	if got := s.Mean(High, High); got != High {
		t.Errorf("Mean(H,H) = %v, want H", got)
	}
}

func TestScaleDistance(t *testing.T) {
	s := FiveLevel()
	if d := s.Distance(VeryLow, VeryHigh); d != 4 {
		t.Errorf("Distance = %d", d)
	}
	if d := s.Distance(High, High); d != 0 {
		t.Errorf("Distance same = %d", d)
	}
	if d := s.Distance(High, Low); d != 2 {
		t.Errorf("Distance(H,L) = %d", d)
	}
}

// Property: Add saturates within bounds and is monotone in the step.
func TestScaleAddProperties(t *testing.T) {
	s := FiveLevel()
	f := func(start int8, a, b int8) bool {
		l := Level(start)
		ra, rb := s.Add(l, int(a)), s.Add(l, int(b))
		if !s.Valid(ra) || !s.Valid(rb) {
			return false
		}
		if a <= b && ra > rb {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxOf/MinOf bound each operand.
func TestScaleMaxMinProperties(t *testing.T) {
	s := FiveLevel()
	f := func(a, b, c int8) bool {
		la, lb, lc := s.Clamp(Level(a)), s.Clamp(Level(b)), s.Clamp(Level(c))
		mx := s.MaxOf(la, lb, lc)
		mn := s.MinOf(la, lb, lc)
		return mn <= la && mn <= lb && mn <= lc && mx >= la && mx >= lb && mx >= lc && mn <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleString(t *testing.T) {
	if got := FiveLevel().String(); got != "o-ra(VL<L<M<H<VH)" {
		t.Errorf("String = %q", got)
	}
}

func TestLabelsIsCopy(t *testing.T) {
	s := FiveLevel()
	labels := s.Labels()
	labels[0] = "corrupted"
	if s.Label(0) != "VL" {
		t.Error("Labels() must return a copy")
	}
}
