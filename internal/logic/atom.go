package logic

import (
	"fmt"
	"strings"
)

// Atom is a predicate applied to terms, p(t1,...,tn). A propositional atom
// has no arguments.
type Atom struct {
	Pred string
	Args []Term
}

// A is a convenience constructor for Atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Ground reports whether all arguments are ground.
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if !t.Ground() {
			return false
		}
	}
	return true
}

// Vars appends the variables occurring in the atom to dst.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		dst = t.Vars(dst)
	}
	return dst
}

// Substitute applies a binding to all arguments.
func (a Atom) Substitute(b Bindings) Atom {
	if len(a.Args) == 0 {
		return a
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.Substitute(b)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// Eval evaluates all arguments (reducing arithmetic); the atom must be
// ground.
func (a Atom) Eval() (Atom, error) {
	if len(a.Args) == 0 {
		return a, nil
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		e, err := Eval(t)
		if err != nil {
			return Atom{}, fmt.Errorf("atom %s: %w", a, err)
		}
		args[i] = e
	}
	return Atom{Pred: a.Pred, Args: args}, nil
}

// Key renders a canonical string key for a ground, evaluated atom. It is
// the interning key for the ground atom table.
func (a Atom) Key() string { return a.String() }

// String implements fmt.Stringer.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Signature returns "pred/arity".
func (a Atom) Signature() string {
	return fmt.Sprintf("%s/%d", a.Pred, len(a.Args))
}

// Literal is an atom or its default negation ("not a").
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos constructs a positive literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Not constructs a default-negated literal.
func Not(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// String implements fmt.Stringer.
func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// CompareOp is a relational operator in a comparison body element.
type CompareOp int

// Comparison operators.
const (
	CmpEq CompareOp = iota + 1
	CmpNeq
	CmpLt
	CmpLeq
	CmpGt
	CmpGeq
)

// String implements fmt.Stringer.
func (o CompareOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNeq:
		return "!="
	case CmpLt:
		return "<"
	case CmpLeq:
		return "<="
	case CmpGt:
		return ">"
	case CmpGeq:
		return ">="
	default:
		return "?cmp"
	}
}

// Comparison is a built-in relational body element, e.g. X < Y or
// C = Cost+1. During grounding an equality with a single unbound variable
// on one side acts as an assignment.
type Comparison struct {
	Op          CompareOp
	Left, Right Term
}

// Vars appends the variables occurring in the comparison to dst.
func (c Comparison) Vars(dst []string) []string {
	return c.Right.Vars(c.Left.Vars(dst))
}

// Substitute applies a binding to both sides.
func (c Comparison) Substitute(b Bindings) Comparison {
	return Comparison{Op: c.Op, Left: c.Left.Substitute(b), Right: c.Right.Substitute(b)}
}

// Holds evaluates the comparison; both sides must be ground. Numeric
// comparisons use integer order; mixed/symbolic use the term order.
func (c Comparison) Holds() (bool, error) {
	l, err := Eval(c.Left)
	if err != nil {
		return false, fmt.Errorf("comparison %s: %w", c, err)
	}
	r, err := Eval(c.Right)
	if err != nil {
		return false, fmt.Errorf("comparison %s: %w", c, err)
	}
	cmp := Compare(l, r)
	switch c.Op {
	case CmpEq:
		return cmp == 0, nil
	case CmpNeq:
		return cmp != 0, nil
	case CmpLt:
		return cmp < 0, nil
	case CmpLeq:
		return cmp <= 0, nil
	case CmpGt:
		return cmp > 0, nil
	case CmpGeq:
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("comparison %s: unknown operator", c)
	}
}

// String implements fmt.Stringer.
func (c Comparison) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// BodyElem is a rule-body element: a Literal or a Comparison.
type BodyElem interface {
	fmt.Stringer
	isBodyElem()
}

func (Literal) isBodyElem()    {}
func (Comparison) isBodyElem() {}
