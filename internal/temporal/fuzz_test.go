package temporal

import "testing"

// FuzzParseFormula: the LTL parser must never panic, and accepted input
// must round-trip through String with a stable fixpoint.
func FuzzParseFormula(f *testing.F) {
	seeds := []string{
		"a",
		"G !overflow",
		"G(state(tank,overflow) -> F alerted(operator))",
		"a U b R c",
		"X a & WX !b | true",
		"!(a & b)",
		"((a))",
		"F F F a",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := ParseFormula(src)
		if err != nil {
			return
		}
		text := formula.String()
		formula2, err := ParseFormula(text)
		if err != nil {
			t.Fatalf("rendered formula fails to re-parse: %v\noriginal: %q\nrendered: %q",
				err, src, text)
		}
		if formula2.String() != text {
			t.Fatalf("rendering not a fixpoint: %q vs %q", text, formula2.String())
		}
	})
}
