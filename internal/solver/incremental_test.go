package solver

import (
	"strings"
	"testing"

	"cpsrisk/internal/logic"
)

func mustParse(t *testing.T, src string) *logic.Program {
	t.Helper()
	prog, err := logic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return prog
}

func newTestSession(t *testing.T, src string) *Session {
	t.Helper()
	sess, err := NewSession(mustParse(t, src), Options{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	t.Cleanup(sess.Close)
	return sess
}

// TestSessionUnsatCore checks that a failed assumption set reports the
// responsible assumptions — and only those — in Result.Core.
func TestSessionUnsatCore(t *testing.T) {
	sess := newTestSession(t, `
		p.
		q :- p.
		{ r }.
	`)
	// "r" alone is satisfiable; "not q" alone contradicts the program.
	res, err := sess.SolveAssuming([]Assumption{AssumeTrue("r"), AssumeFalse("q")}, Options{})
	if err != nil {
		t.Fatalf("SolveAssuming: %v", err)
	}
	if res.Satisfiable {
		t.Fatalf("query should be unsatisfiable under 'not q'")
	}
	if len(res.Core) != 1 || res.Core[0] != "not q" {
		t.Fatalf("core = %v, want [not q] (the irrelevant assumption must not appear)", res.Core)
	}
	// The session stays usable: the same query minus the bad assumption.
	res, err = sess.SolveAssuming([]Assumption{AssumeTrue("r")}, Options{})
	if err != nil {
		t.Fatalf("follow-up SolveAssuming: %v", err)
	}
	if !res.Satisfiable || len(res.Models) != 1 || !res.Models[0].Contains("r") {
		t.Fatalf("follow-up query: got %+v, want one model containing r", res.Models)
	}
}

// TestSessionUnsatCoreUnknownAtom: assuming an atom the program never
// derives is immediately unsatisfiable with that atom as the core.
func TestSessionUnsatCoreUnknownAtom(t *testing.T) {
	sess := newTestSession(t, `p.`)
	res, err := sess.SolveAssuming([]Assumption{AssumeTrue("ghost")}, Options{})
	if err != nil {
		t.Fatalf("SolveAssuming: %v", err)
	}
	if res.Satisfiable || len(res.Core) != 1 || res.Core[0] != "ghost" {
		t.Fatalf("got sat=%v core=%v, want unsat with core [ghost]", res.Satisfiable, res.Core)
	}
	// Assuming it false is vacuous.
	res, err = sess.SolveAssuming([]Assumption{AssumeFalse("ghost")}, Options{})
	if err != nil {
		t.Fatalf("SolveAssuming: %v", err)
	}
	if !res.Satisfiable {
		t.Fatalf("assuming an underivable atom false must be vacuous")
	}
}

// TestSessionRetention re-runs a conflict-heavy query (a pigeonhole
// subproblem selected by an assumption) and checks via Stats that the
// second run reuses clauses learned by the first and needs less search.
func TestSessionRetention(t *testing.T) {
	sess := newTestSession(t, `
		pigeon(1..4). hole(1..3).
		{ esc }.
		1 { at(P,H) : hole(H) } 1 :- pigeon(P), not esc.
		:- at(P1,H), at(P2,H), P1 < P2.
	`)
	res1, err := sess.SolveAssuming([]Assumption{AssumeFalse("esc")}, Options{})
	if err != nil {
		t.Fatalf("query 1: %v", err)
	}
	if res1.Satisfiable {
		t.Fatalf("4 pigeons in 3 holes should be unsatisfiable")
	}
	if res1.Stats.LearnedClauses == 0 {
		t.Fatalf("proving the pigeonhole core should learn clauses")
	}
	res2, err := sess.SolveAssuming([]Assumption{AssumeFalse("esc")}, Options{})
	if err != nil {
		t.Fatalf("query 2: %v", err)
	}
	if res2.Satisfiable {
		t.Fatalf("repeat query should stay unsatisfiable")
	}
	if res2.Stats.LearnedReused == 0 {
		t.Fatalf("second query should start with retained learned clauses")
	}
	d1 := res1.Stats.Decisions
	d2 := res2.Stats.Decisions - res1.Stats.Decisions
	if d2 >= d1 {
		t.Fatalf("second proof took %d decisions, first took %d: learned-clause reuse should shrink the search", d2, d1)
	}
	if res2.Stats.Queries != 2 || res2.Stats.Sessions != 1 {
		t.Fatalf("counters: queries=%d sessions=%d, want 2/1", res2.Stats.Queries, res2.Stats.Sessions)
	}
	// The escape hatch is still reachable: the learned clauses must not
	// have over-constrained the program.
	res3, err := sess.SolveAssuming([]Assumption{AssumeTrue("esc")}, Options{})
	if err != nil {
		t.Fatalf("query 3: %v", err)
	}
	if !res3.Satisfiable {
		t.Fatalf("esc assignment should be satisfiable")
	}
}

// TestSessionCardinalityAssumptions: count bounds expressed as
// assumptions select exactly the models in the cardinality band.
func TestSessionCardinalityAssumptions(t *testing.T) {
	sess := newTestSession(t, `
		d(1..4).
		{ p(X) : d(X) }.
	`)
	res, err := sess.SolveAssuming(
		[]Assumption{AssumeCountGE("p", 2), AssumeCountLT("p", 3)}, Options{})
	if err != nil {
		t.Fatalf("SolveAssuming: %v", err)
	}
	if len(res.Models) != 6 {
		t.Fatalf("got %d models, want C(4,2)=6", len(res.Models))
	}
	for _, m := range res.Models {
		if n := len(m.WithPredicate("p")); n != 2 {
			t.Fatalf("model %v has %d p-atoms, want 2", m.Atoms, n)
		}
	}
	// Impossible bound: core names the count assumption.
	res, err = sess.SolveAssuming([]Assumption{AssumeCountGE("p", 5)}, Options{})
	if err != nil {
		t.Fatalf("SolveAssuming: %v", err)
	}
	if res.Satisfiable || len(res.Core) != 1 || res.Core[0] != "#count{p} >= 5" {
		t.Fatalf("got sat=%v core=%v, want unsat with core [#count{p} >= 5]", res.Satisfiable, res.Core)
	}
	// Unbounded query still sees all 16 subsets afterwards.
	res, err = sess.SolveAssuming(nil, Options{})
	if err != nil {
		t.Fatalf("SolveAssuming: %v", err)
	}
	if len(res.Models) != 16 {
		t.Fatalf("got %d models after guard retirement, want 16", len(res.Models))
	}
}

// TestSessionAddRejectsMinimize: deltas cannot introduce objectives.
func TestSessionAddRejectsMinimize(t *testing.T) {
	sess := newTestSession(t, `{ a }.`)
	delta := mustParse(t, `{ b }. #minimize { 1 : b }.`)
	if err := sess.Add(delta); err == nil || !strings.Contains(err.Error(), "#minimize") {
		t.Fatalf("Add with #minimize: err = %v, want minimize rejection", err)
	}
}

// TestSessionConcurrentUseFailsLoudly: a Session is single-goroutine;
// overlapping use must panic rather than corrupt state.
func TestSessionConcurrentUseFailsLoudly(t *testing.T) {
	sess := newTestSession(t, `{ a }.`)
	sess.acquire() // simulate a call in flight on another goroutine
	defer sess.release()
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("overlapping SolveAssuming should panic")
		}
	}()
	sess.SolveAssuming(nil, Options{}) //nolint:errcheck // must panic first
}

// TestSessionClosed: use after Close errors.
func TestSessionClosed(t *testing.T) {
	sess, err := NewSession(mustParse(t, `{ a }.`), Options{})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	sess.Close()
	if _, err := sess.SolveAssuming(nil, Options{}); err == nil {
		t.Fatalf("SolveAssuming after Close should error")
	}
	if err := sess.Add(mustParse(t, `b.`)); err == nil {
		t.Fatalf("Add after Close should error")
	}
}

// TestSessionOptimizeQueryLocal: optimization bounds from one query must
// not leak into the next (bound clauses are guard-retired).
func TestSessionOptimizeQueryLocal(t *testing.T) {
	sess := newTestSession(t, `
		d(1..3).
		{ p(X) : d(X) }.
		:- not p(1), not p(2), not p(3).
		#minimize { 1,X : p(X) }.
	`)
	res, err := sess.SolveAssuming(nil, Options{Optimize: true})
	if err != nil {
		t.Fatalf("optimize query: %v", err)
	}
	if !res.Optimal || len(res.Models) != 3 {
		t.Fatalf("got optimal=%v models=%d, want 3 optimal singletons", res.Optimal, len(res.Models))
	}
	for _, m := range res.Models {
		if len(m.Cost) != 1 || m.Cost[0].Cost != 1 {
			t.Fatalf("model %v cost %v, want cost 1", m.Atoms, m.Cost)
		}
	}
	// A plain enumeration afterwards sees the full space again.
	res, err = sess.SolveAssuming(nil, Options{})
	if err != nil {
		t.Fatalf("enumeration query: %v", err)
	}
	if len(res.Models) != 7 {
		t.Fatalf("got %d models after optimize, want 7 (bound must not leak)", len(res.Models))
	}
	// And optimization still works on the third query.
	res, err = sess.SolveAssuming([]Assumption{AssumeFalse("p(1)")}, Options{Optimize: true})
	if err != nil {
		t.Fatalf("second optimize query: %v", err)
	}
	if !res.Optimal || len(res.Models) != 2 {
		t.Fatalf("got optimal=%v models=%d, want 2", res.Optimal, len(res.Models))
	}
}
