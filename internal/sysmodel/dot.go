package sysmodel

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the model as a GraphViz digraph: components as nodes
// grouped per layer, signal flows as solid directed edges, shared-quantity
// flows as dashed bidirectional edges, composites as double-bordered
// nodes. Output is deterministic (sorted) so it can be golden-tested and
// diffed across model revisions.
func (m *Model) WriteDOT(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("digraph \"")
	sb.WriteString(escapeDOT(m.Name))
	sb.WriteString("\" {\n  rankdir=LR;\n  node [shape=box];\n")

	byLayer := map[string][]*Component{}
	var layers []string
	for _, c := range m.Components {
		layer := c.Layer
		if layer == "" {
			layer = "unlayered"
		}
		if _, ok := byLayer[layer]; !ok {
			layers = append(layers, layer)
		}
		byLayer[layer] = append(byLayer[layer], c)
	}
	sort.Strings(layers)
	for i, layer := range layers {
		comps := byLayer[layer]
		sort.Slice(comps, func(a, b int) bool { return comps[a].ID < comps[b].ID })
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=\"%s\";\n", i, escapeDOT(layer))
		for _, c := range comps {
			label := c.ID
			if c.Name != "" {
				label = c.Name
			}
			attrs := fmt.Sprintf("label=\"%s\\n(%s)\"", escapeDOT(label), escapeDOT(c.Type))
			if c.IsComposite() {
				attrs += " peripheries=2"
			}
			if c.Attr("exposure") == "public" {
				attrs += " style=filled fillcolor=lightcoral"
			} else if crit := c.Attr("criticality"); crit == "H" || crit == "VH" {
				attrs += " style=filled fillcolor=lightgoldenrod"
			}
			fmt.Fprintf(&sb, "    \"%s\" [%s];\n", escapeDOT(c.ID), attrs)
		}
		sb.WriteString("  }\n")
	}

	edges := make([]string, 0, len(m.Connections))
	for _, conn := range m.Connections {
		attrs := fmt.Sprintf("label=\"%s\"", escapeDOT(conn.From.Port+">"+conn.To.Port))
		if conn.Flow == QuantityFlow {
			attrs += " dir=both style=dashed"
		}
		if conn.Label != "" {
			attrs = fmt.Sprintf("label=\"%s\"", escapeDOT(conn.Label))
			if conn.Flow == QuantityFlow {
				attrs += " dir=both style=dashed"
			}
		}
		edges = append(edges, fmt.Sprintf("  \"%s\" -> \"%s\" [%s];\n",
			escapeDOT(conn.From.Component), escapeDOT(conn.To.Component), attrs))
	}
	sort.Strings(edges)
	for _, e := range edges {
		sb.WriteString(e)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
