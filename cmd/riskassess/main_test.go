package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRunOnSampleModel(t *testing.T) {
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-optimize",
		"-maxcard", "1",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMitigations(t *testing.T) {
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-mitigations", "M-0917,M-0949,M-0932",
		"-maxcard", "1",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingArgs(t *testing.T) {
	if err := run(nil, io.Discard); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunMissingFiles(t *testing.T) {
	if err := run([]string{"-model", "nope.json", "-types", "nope.json"}, io.Discard); err == nil {
		t.Fatal("expected file error")
	}
}

func TestRunJSONAndDot(t *testing.T) {
	dot := t.TempDir() + "/model.dot"
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-json",
		"-dot", dot,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("dot output = %q", data)
	}
}

// rankedCount counts data rows ("<rank> S<id> ...") in the
// "Risk-prioritized scenarios" table.
func rankedCount(out string) int {
	_, tail, ok := strings.Cut(out, "== Risk-prioritized scenarios ==")
	if !ok {
		return -1
	}
	n := 0
	for _, line := range strings.Split(tail, "\n") {
		f := strings.Fields(line)
		if len(f) < 2 || !strings.HasPrefix(f[1], "S") {
			continue
		}
		if _, err := strconv.Atoi(f[0]); err == nil {
			n++
		}
	}
	return n
}

func TestRunTopFlagLimitsRanking(t *testing.T) {
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
	}
	var all, top5 bytes.Buffer
	if err := run(append(base, "-top", "0"), &all); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-top", "5"), &top5); err != nil {
		t.Fatal(err)
	}
	nAll, n5 := rankedCount(all.String()), rankedCount(top5.String())
	if n5 != 5 {
		t.Errorf("-top 5 printed %d scenarios", n5)
	}
	if nAll <= 20 {
		t.Fatalf("fixture too small to exercise -top 0: %d scenarios", nAll)
	}
}

func TestRunTimeoutDegradesGracefully(t *testing.T) {
	const timeout = 50 * time.Millisecond
	var out bytes.Buffer
	start := time.Now()
	// The decision cap guarantees the ASP search is interrupted even on a
	// machine fast enough to finish inside the deadline; the deadline
	// bounds the wall clock either way.
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "-1",
		"-asp",
		"-timeout", timeout.String(),
		"-max-decisions", "50",
	}, &out)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// ~2x the deadline plus scheduling slack: budget polls sit between
	// units of work, not inside them.
	if elapsed > 2*timeout+2*time.Second {
		t.Errorf("run took %v with -timeout %v", elapsed, timeout)
	}
	text := out.String()
	if !strings.Contains(text, "== Degraded results ==") {
		t.Fatalf("no degradation summary in output:\n%s", text)
	}
	// The completed ranked scenarios must still be reported.
	if !strings.Contains(text, "== Risk-prioritized scenarios ==") {
		t.Error("ranked scenarios missing from degraded output")
	}
}

func TestRunJSONCarriesSolverStatsAndDegradation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-asp",
		"-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Solver *struct {
			Decisions  int64 `json:"decisions"`
			Restarts   int64 `json:"restarts"`
			DurationMS int64 `json:"durationMs"`
			Sessions   int64 `json:"sessions"`
			Queries    int64 `json:"queries"`
		} `json:"solver"`
		Degradation []struct {
			Stage  string `json:"stage"`
			Reason string `json:"reason"`
		} `json:"degradation"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Solver == nil {
		t.Fatal("no solver stats in -asp -json output")
	}
	if sum.Solver.Decisions <= 0 {
		t.Errorf("solver stats = %+v", sum.Solver)
	}
	// The ASP path is multi-shot: one session answering one query per
	// cardinality level (0 and 1 with -maxcard 1).
	if sum.Solver.Sessions != 1 || sum.Solver.Queries != 2 {
		t.Errorf("multi-shot counters sessions=%d queries=%d, want 1/2", sum.Solver.Sessions, sum.Solver.Queries)
	}
	// The CDCL counters must be present as JSON keys even when zero for
	// this small model.
	for _, key := range []string{`"learnedClauses"`, `"backjumps"`, `"dbReductions"`, `"restarts"`} {
		if !bytes.Contains(out.Bytes(), []byte(key)) {
			t.Errorf("solver summary missing %s key:\n%s", key, out.String())
		}
	}
	if len(sum.Degradation) != 0 {
		t.Errorf("unexpected degradation: %+v", sum.Degradation)
	}

	// A scenario cap must surface in the JSON degradation list.
	out.Reset()
	err = run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
		"-max-scenarios", "3",
		"-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Degradation) == 0 {
		t.Fatal("scenario cap not reported in JSON degradation")
	}
	if sum.Degradation[0].Reason != "scenario-cap" {
		t.Errorf("degradation = %+v", sum.Degradation)
	}
}

// stripTiming removes the report lines that carry wall-clock numbers so
// the rest can be compared byte for byte.
func stripTiming(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "sweep:") || strings.Contains(line, "assessed in") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestRunSolverDetIsByteIdentical(t *testing.T) {
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-asp",
	}
	var single, det bytes.Buffer
	if err := run(append(base, "-solver-workers", "1"), &single); err != nil {
		t.Fatal(err)
	}
	// -solver-det must collapse a 4-engine request back to the exact
	// single-engine code path: same decisions, conflicts, and models, so
	// the whole report matches byte for byte once timing lines are gone.
	if err := run(append(base, "-solver-workers", "4", "-solver-det"), &det); err != nil {
		t.Fatal(err)
	}
	if stripTiming(single.String()) != stripTiming(det.String()) {
		t.Error("-solver-workers 4 -solver-det output differs from -solver-workers 1")
	}
}

func TestRunSolverWorkersCarriesPortfolioStats(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-asp",
		"-json",
		"-parallel", "4",
		"-solver-workers", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Solver *struct {
			Queries          int64 `json:"queries"`
			PortfolioWorkers int64 `json:"portfolioWorkers"`
		} `json:"solver"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Solver == nil {
		t.Fatal("no solver stats in -asp -json output")
	}
	// Two queries (cardinality 0 and 1), two helpers each: the governor
	// has 4 slots, so every helper launch is granted.
	if sum.Solver.PortfolioWorkers != 2*sum.Solver.Queries {
		t.Errorf("portfolioWorkers = %d with %d queries, want %d",
			sum.Solver.PortfolioWorkers, sum.Solver.Queries, 2*sum.Solver.Queries)
	}
}

func TestRunParallelFlagIsDeterministic(t *testing.T) {
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
	}
	var seq, par bytes.Buffer
	if err := run(append(base, "-parallel", "1"), &seq); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-parallel", "4"), &par); err != nil {
		t.Fatal(err)
	}
	// Strip the throughput and duration lines: they carry wall-clock
	// numbers.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "sweep:") || strings.Contains(line, "assessed in") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(seq.String()) != strip(par.String()) {
		t.Error("-parallel 4 output differs from -parallel 1")
	}

	var out bytes.Buffer
	if err := run(append(base, "-parallel", "4", "-json"), &out); err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Sweep *struct {
			Workers   int `json:"workers"`
			Scenarios int `json:"scenarios"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Sweep == nil || sum.Sweep.Workers != 4 || sum.Sweep.Scenarios == 0 {
		t.Errorf("sweep stats = %+v", sum.Sweep)
	}
}

// jsonRun executes the CLI with -json and decodes the summary fields the
// pruning/sharding tests care about.
func jsonRun(t *testing.T, extra ...string) (scenarios []json.RawMessage, sweep struct {
	Executed     int64  `json:"executed"`
	Pruned       int64  `json:"pruned"`
	OrbitHits    int64  `json:"orbitHits"`
	OrbitClasses int    `json:"orbitClasses"`
	Shard        string `json:"shard"`
	CacheHits    int64  `json:"cacheHits"`
	CacheMisses  int64  `json:"cacheMisses"`
}) {
	t.Helper()
	args := append([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
		"-parallel", "2", // force the sweep path even on 1-CPU machines
		"-json",
	}, extra...)
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Scenarios []json.RawMessage `json:"scenarios"`
		Sweep     json.RawMessage   `json:"sweep"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Sweep != nil {
		if err := json.Unmarshal(sum.Sweep, &sweep); err != nil {
			t.Fatal(err)
		}
	}
	return sum.Scenarios, sweep
}

// scenarioSet renders scenario rows for comparison. The JSON export
// lists scenarios risk-ranked, so rows are sorted to compare runs that
// cover the space in different shard orders.
func scenarioSet(rows []json.RawMessage) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = string(r)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestRunNoPruneFlag: pruning is on by default and never changes the
// report; -no-prune forces every scenario through the engine.
func TestRunNoPruneFlag(t *testing.T) {
	prunedRows, pruned := jsonRun(t)
	plainRows, plain := jsonRun(t, "-no-prune")
	if scenarioSet(prunedRows) != scenarioSet(plainRows) {
		t.Fatal("pruned and unpruned CLI runs disagree on scenarios")
	}
	if plain.Pruned != 0 || plain.OrbitHits != 0 {
		t.Errorf("-no-prune still pruned: %+v", plain)
	}
	if plain.Executed != int64(len(plainRows)) {
		t.Errorf("-no-prune executed %d of %d scenarios", plain.Executed, len(plainRows))
	}
	if pruned.Executed+pruned.Pruned+pruned.OrbitHits != int64(len(prunedRows)) {
		t.Errorf("pruned-run accounting off: %+v over %d rows", pruned, len(prunedRows))
	}
}

// TestRunShardFlag: two shard runs over a shared cache partition the
// space, and a whole-space run merges them without recomputation.
func TestRunShardFlag(t *testing.T) {
	baseRows, _ := jsonRun(t)
	cache := t.TempDir()
	var shardRows []json.RawMessage
	for i := 0; i < 2; i++ {
		spec := strconv.Itoa(i) + "/2"
		rows, sw := jsonRun(t, "-shard", spec, "-cache", cache)
		if sw.Shard != spec {
			t.Fatalf("sweep.shard = %q, want %q", sw.Shard, spec)
		}
		shardRows = append(shardRows, rows...)
	}
	if scenarioSet(shardRows) != scenarioSet(baseRows) {
		t.Fatal("shard union diverged from the whole-space report")
	}
	mergedRows, merged := jsonRun(t, "-cache", cache)
	if scenarioSet(mergedRows) != scenarioSet(baseRows) {
		t.Fatal("merged run diverged from the whole-space report")
	}
	if merged.CacheHits == 0 || merged.CacheMisses != 0 {
		t.Errorf("merge recomputed scenarios: %+v", merged)
	}
}

// TestRunShardFlagValidation: malformed or out-of-range shard specs and
// the ASP combination fail fast.
func TestRunShardFlagValidation(t *testing.T) {
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
	}
	for _, spec := range []string{"2/2", "-1/3", "x/y", "1", "1/0"} {
		if err := run(append(base, "-shard", spec), io.Discard); err == nil {
			t.Errorf("-shard %q accepted", spec)
		}
	}
	if err := run(append(base, "-shard", "0/2", "-asp"), io.Discard); err == nil {
		t.Error("-shard with -asp accepted")
	}
}

// editModel reads a model JSON, applies f to the decoded document, and
// writes it to path.
func editModel(t *testing.T, src, dst string, f func(map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if f != nil {
		f(doc)
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// annotatePanel stamps a metadata-only attr on the panel component — an
// edit the EPA engine cannot observe, so delta re-assessment reuses
// every scenario row.
func annotatePanel(note string) func(map[string]any) {
	return func(doc map[string]any) {
		for _, c := range doc["components"].([]any) {
			comp := c.(map[string]any)
			if comp["id"] == "panel" {
				comp["attrs"] = map[string]any{"note": note}
			}
		}
	}
}

// TestRunDeltaFlag: -delta warms the artifact cache with the baseline
// model and the main assessment resolves incrementally, reporting the
// same scenarios as a cold run of the edited model.
func TestRunDeltaFlag(t *testing.T) {
	dir := t.TempDir()
	oldPath, newPath := dir+"/old.json", dir+"/new.json"
	editModel(t, "../../models/sme-plant.json", oldPath, nil)
	editModel(t, "../../models/sme-plant.json", newPath, annotatePanel("rewired cabinet"))

	base := []string{"-types", "../../models/types.json", "-maxcard", "2", "-json"}
	var deltaOut, coldOut bytes.Buffer
	if err := run(append(base, "-model", newPath, "-delta", oldPath), &deltaOut); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-model", newPath), &coldOut); err != nil {
		t.Fatal(err)
	}

	type summary struct {
		Scenarios []json.RawMessage `json:"scenarios"`
		Artifact  *struct {
			Path      string `json:"path"`
			ModelHash string `json:"modelHash"`
		} `json:"artifact"`
	}
	var delta, cold summary
	if err := json.Unmarshal(deltaOut.Bytes(), &delta); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(coldOut.Bytes(), &cold); err != nil {
		t.Fatal(err)
	}
	if delta.Artifact == nil || delta.Artifact.Path != "delta" {
		t.Fatalf("artifact = %+v, want delta", delta.Artifact)
	}
	if delta.Artifact.ModelHash == "" {
		t.Error("artifact lacks the model hash")
	}
	if cold.Artifact != nil {
		t.Errorf("cold run without -delta stamped artifact %+v", cold.Artifact)
	}
	if scenarioSet(delta.Scenarios) != scenarioSet(cold.Scenarios) {
		t.Fatal("-delta scenarios diverged from a cold run of the same model")
	}
}

// TestRunDeltaFlagBadBaseline: an unreadable baseline fails fast.
func TestRunDeltaFlagBadBaseline(t *testing.T) {
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-delta", "no-such-file.json",
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "delta baseline") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunWatchFlag: -watch re-assesses the model when the file changes;
// the first run is cold and the re-run resolves against the cache.
func TestRunWatchFlag(t *testing.T) {
	dir := t.TempDir()
	modelPath := dir + "/plant.json"
	editModel(t, "../../models/sme-plant.json", modelPath, nil)

	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-model", modelPath,
			"-types", "../../models/types.json",
			"-maxcard", "1",
			"-watch",
			"-watch-interval", "20ms",
			"-watch-max", "2",
		}, &out)
	}()

	// Let the first assessment land, then edit the model to trigger the
	// second; retry the edit until the watcher consumes it.
	deadline := time.After(30 * time.Second)
	for i := 0; ; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			text := out.String()
			for _, want := range []string{"== watch run 1 ==", "== watch run 2 ==", "artifact: cold run", "artifact: delta run"} {
				if !strings.Contains(text, want) {
					t.Fatalf("watch output lacks %q:\n%s", want, text)
				}
			}
			return
		case <-deadline:
			t.Fatal("watch did not complete two runs in 30s")
		case <-time.After(100 * time.Millisecond):
			editModel(t, "../../models/sme-plant.json", modelPath, annotatePanel("edit "+strconv.Itoa(i)))
		}
	}
}
