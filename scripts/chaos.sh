#!/bin/sh
# chaos.sh is the crash-safety battery: every fault-injection,
# corruption, and crash/resume test in the tree, run under the race
# detector with a fixed seed set so failures reproduce exactly. It ends
# with a real kill-and-resume of the CLI binary driven purely through
# the CPSRISK_FAULTS environment, diffing the resumed report against an
# undisturbed baseline. `make chaos` and scripts/check.sh run this.
set -eu

cd "$(dirname "$0")/.."

echo "== injector unit tests (-race) =="
go test -race -count=1 ./internal/faultinject

echo "== store corruption + self-heal battery (-race) =="
go test -race -count=1 ./internal/store

echo "== crash matrix: kill/resume at every injection point (-race -cpu=1,4) =="
go test -race -cpu=1,4 -count=1 \
  -run 'TestCrashMatrix|TestBudgetTruncatedSweepMakesProgress|TestTransientRecoveredInFlight|TestCacheReuseAcrossRuns' \
  ./internal/hazard

echo "== CLI chaos tests (-race) =="
go test -race -count=1 \
  -run 'TestChaosResumeMatchesBaseline|TestResumeProvenanceInOutputs|TestCacheFlagSpeedsSecondRun' \
  ./cmd/riskassess

# End-to-end: crash the real binary mid-sweep with an env-armed fault,
# resume with the same checkpoint directory, and demand the resumed
# report match the baseline after stripping wall-clock/provenance lines.
echo "== end-to-end kill/resume (env-armed, seed 42) =="
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
strip='/assessed in|sweep:|cache:|retries:|resumed from checkpoint/d'
args="-model models/sme-plant.json -types models/types.json -maxcard 2 -parallel 4"

go run ./cmd/riskassess $args > "$work/baseline.txt"

for spec in "epa.run=panic@9" "store.write=torn@1" "hazard.checkpoint=torn@1"; do
  ckpt="$work/ckpt-$(echo "$spec" | tr '=@.' '___')"
  # Crash run: failure is the point; a degraded exit is also legal.
  CPSRISK_FAULTS="$spec" CPSRISK_FAULT_SEED=42 \
    go run ./cmd/riskassess $args -checkpoint "$ckpt" >/dev/null 2>&1 || true
  if find "$ckpt" -name '*.tmp' 2>/dev/null | grep -q .; then
    echo "FAIL: stray temp files after $spec" >&2
    exit 1
  fi
  # Clean resume must reproduce the baseline byte for byte.
  go run ./cmd/riskassess $args -checkpoint "$ckpt" > "$work/resumed.txt"
  sed -E "$strip" "$work/baseline.txt" > "$work/baseline.stripped"
  sed -E "$strip" "$work/resumed.txt" > "$work/resumed.stripped"
  if ! diff "$work/baseline.stripped" "$work/resumed.stripped" >&2; then
    echo "FAIL: resumed report diverged from baseline after $spec" >&2
    exit 1
  fi
  echo "   $spec: resumed byte-identical"
done

echo "CHAOS OK"
