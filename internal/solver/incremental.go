package solver

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/obs"
)

// Session is a persistent multi-shot solver, the clingo-style counterpart
// to single-shot SolveProgram: the base program is grounded and translated
// once, incremental deltas are grounded only against the new frontier of
// the persistent atom pool, and a stream of queries is answered under
// assumptions while learned clauses, EVSIDS activities, and saved phases
// carry over from query to query.
//
// A Session is strictly single-goroutine: concurrent use panics. Callers
// that parallelize (hazard sweeps, CEGAR oracles) keep one session per
// worker.
type Session struct {
	gr   *grounder
	tr   *translation
	opts Options

	inUse  atomic.Bool
	broken error // set when an Add/solve error leaves the state inconsistent
	closed bool

	// Cached cardinality circuits: predicate -> at-least-k literal
	// function over the predicate's ground atoms. Dropped whenever an Add
	// emits non-constraint rules (the predicate's atom set may grow).
	cardFns map[string]func(int) lit

	// Cumulative session counters and engine counters banked from
	// translations discarded by slow-path rebuilds.
	queries, adds               int64
	groundReused, learnedReused int64
	accum                       Stats
}

// Assumption fixes a literal for the duration of one SolveAssuming call
// without changing the program. Either Atom or Count is set:
//
//   - Atom names a ground atom key (e.g. "active(c1,stuck)"); the query
//     is restricted to answer sets where it is True (or false).
//   - Count names a predicate; the query is restricted to answer sets
//     with at least K true atoms of that predicate (True), or fewer than
//     K (False). The cardinality circuit is built lazily per predicate
//     and shared by all bounds.
//
// Assumptions are decisions, not axioms: clauses learned under them are
// consequences of the program alone and stay valid for later queries.
type Assumption struct {
	Atom  string
	Count string
	K     int
	True  bool
}

// AssumeTrue restricts a query to answer sets containing the atom.
func AssumeTrue(atom string) Assumption { return Assumption{Atom: atom, True: true} }

// AssumeFalse restricts a query to answer sets excluding the atom.
func AssumeFalse(atom string) Assumption { return Assumption{Atom: atom} }

// AssumeCountGE restricts a query to answer sets with at least k true
// atoms of the predicate.
func AssumeCountGE(pred string, k int) Assumption {
	return Assumption{Count: pred, K: k, True: true}
}

// AssumeCountLT restricts a query to answer sets with fewer than k true
// atoms of the predicate.
func AssumeCountLT(pred string, k int) Assumption {
	return Assumption{Count: pred, K: k}
}

func (a Assumption) describe() string {
	if a.Count != "" {
		if a.True {
			return fmt.Sprintf("#count{%s} >= %d", a.Count, a.K)
		}
		return fmt.Sprintf("#count{%s} < %d", a.Count, a.K)
	}
	if a.True {
		return a.Atom
	}
	return "not " + a.Atom
}

// NewSession grounds and translates the base program into a persistent
// solver. opts supplies the default budget and solve options for queries;
// MaxModels/Optimize can be overridden per SolveAssuming call. #minimize
// statements are allowed only in the base program.
func NewSession(prog *logic.Program, opts Options) (*Session, error) {
	if err := prog.CheckSafety(); err != nil {
		return nil, err
	}
	sp := startSpan(opts.Budget, "session-ground")
	defer sp.End()
	gr := newSessionGrounder(opts.Budget)
	if _, err := gr.addRules(prog.Rules); err != nil {
		return nil, err
	}
	if err := gr.groundMinimize(prog.Minimize); err != nil {
		return nil, err
	}
	tr, err := translate(gr.out)
	if err != nil {
		return nil, err
	}
	return &Session{
		gr:      gr,
		tr:      tr,
		opts:    opts,
		cardFns: map[string]func(int) lit{},
	}, nil
}

func (s *Session) acquire() {
	if !s.inUse.CompareAndSwap(false, true) {
		panic("solver: concurrent use of Session (a Session is single-goroutine; use one per worker)")
	}
}

func (s *Session) release() { s.inUse.Store(false) }

func (s *Session) usable() error {
	if s.closed {
		return fmt.Errorf("solver: session is closed")
	}
	return s.broken
}

func (s *Session) fail(err error) {
	s.broken = fmt.Errorf("solver: session unusable after error: %w", err)
}

// Close releases the session. Further calls error.
func (s *Session) Close() {
	s.acquire()
	defer s.release()
	s.closed = true
	s.gr = nil
	s.tr = nil
	s.cardFns = nil
}

// Add grounds a program delta into the live session. The delta is
// classified by what it actually grounds to:
//
//   - constraints only: each lands as a single clause through the
//     backjump-then-add path — no restart, full search state retained
//     (the hot path of iterated enumeration);
//   - every new rule head first interned by this delta: the existing
//     completion clauses stay exact, so the translation is extended in
//     place at decision level 0, keeping learned clauses, activities,
//     and phases;
//   - anything else (new support for an existing atom, or a choice
//     instantiation whose element set grew, forcing a retraction): the
//     translation is rebuilt, carrying per-atom activities and phases
//     but dropping learned clauses.
//
// Deltas cannot introduce #minimize statements.
func (s *Session) Add(prog *logic.Program) error {
	s.acquire()
	defer s.release()
	if err := s.usable(); err != nil {
		return err
	}
	if len(prog.Minimize) > 0 {
		return fmt.Errorf("solver: session Add cannot introduce #minimize statements")
	}
	if err := prog.CheckSafety(); err != nil {
		return err
	}
	s.adds++
	asp := startSpan(s.opts.Budget, "add#%d", s.adds)
	defer asp.End()
	s.groundReused += s.gr.numPossible
	prevKnown := s.tr.knownAtoms
	retracted, err := s.gr.addRules(prog.Rules)
	if err != nil {
		s.fail(err)
		return err
	}
	if retracted {
		s.cardFns = map[string]func(int) lit{}
		if err := s.rebuildTranslation(); err != nil {
			s.fail(err)
			return err
		}
		return nil
	}
	constraintsOnly, freshHeads := true, true
	for _, r := range s.tr.gp.Rules[s.tr.translatedRules:] {
		switch r.Kind {
		case KindBasic:
			if r.Head != 0 {
				constraintsOnly = false
				if int(r.Head) <= prevKnown {
					freshHeads = false
				}
			}
		case KindChoice:
			constraintsOnly = false
			for _, h := range r.Heads {
				if int(h) <= prevKnown {
					freshHeads = false
				}
			}
		default:
			constraintsOnly, freshHeads = false, false
		}
	}
	if constraintsOnly {
		s.tr.addConstraintsInSearch()
		return nil
	}
	s.cardFns = map[string]func(int) lit{}
	if freshHeads {
		s.tr.s.cancelUntil(0)
		if err := s.tr.extendTranslation(); err != nil {
			s.fail(err)
			return err
		}
		return nil
	}
	if err := s.rebuildTranslation(); err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// rebuildTranslation retranslates the (compacted) ground program from
// scratch, banking the old engine's statistics and carrying each atom's
// branching activity and saved phase into the new engine. Learned clauses
// are dropped: after a retraction they may no longer be consequences of
// the program.
func (s *Session) rebuildTranslation() error {
	old := s.tr
	var tmp Stats
	old.fillStats(&tmp)
	addEngineStats(&s.accum, &tmp)
	ntr, err := translate(old.gp)
	if err != nil {
		return err
	}
	oldS, newS := old.s, ntr.s
	newS.varInc = oldS.varInc
	for id := 1; id <= old.knownAtoms; id++ {
		ov, nv := old.atomVar[id], ntr.atomVar[id]
		newS.activity[nv] = oldS.activity[ov]
		if v := oldS.assign[ov]; v != 0 {
			newS.phase[nv] = v
		} else if oldS.phase[ov] != 0 {
			newS.phase[nv] = oldS.phase[ov]
		}
	}
	// Restore the heap invariant under the carried activities.
	for i := len(newS.heap)/2 - 1; i >= 0; i-- {
		newS.heapDown(i)
	}
	s.tr = ntr
	return nil
}

func addEngineStats(dst, src *Stats) {
	dst.Decisions += src.Decisions
	dst.Conflicts += src.Conflicts
	dst.Propagations += src.Propagations
	dst.LoopClauses += src.LoopClauses
	dst.StableChecks += src.StableChecks
	dst.Restarts += src.Restarts
	dst.LearnedClauses += src.LearnedClauses
	dst.Backjumps += src.Backjumps
	dst.DBReductions += src.DBReductions
}

// countFn returns (building and caching on first use) the at-least-k
// literal function over the predicate's ground atoms, in atom-id order.
// Must be called at decision level 0.
func (s *Session) countFn(pred string) func(int) lit {
	if fn, ok := s.cardFns[pred]; ok {
		return fn
	}
	tr := s.tr
	gp := tr.gp
	var lits []lit
	for id := AtomID(1); id <= AtomID(gp.NumAtoms()); id++ {
		if gp.IsInternal(id) {
			continue
		}
		name := gp.AtomName(id)
		if len(name) >= len(pred) && name[:len(pred)] == pred &&
			(len(name) == len(pred) || name[len(pred)] == '(') {
			lits = append(lits, tr.atomLit(id))
		}
	}
	fn := tr.seqCounter(lits, len(lits))
	s.cardFns[pred] = fn
	return fn
}

// assumptionLit maps one assumption to the literal to assert. known is
// false when the assumption names an atom absent from the ground program:
// such an atom is false in every answer set, so assuming it false is
// vacuous and assuming it true is immediately unsatisfiable.
func (s *Session) assumptionLit(a Assumption) (l lit, known bool) {
	if a.Count != "" {
		l = s.countFn(a.Count)(a.K)
		if !a.True {
			l = -l
		}
		return l, true
	}
	id, ok := s.tr.gp.LookupAtom(a.Atom)
	if !ok {
		return 0, false
	}
	l = s.tr.atomLit(id)
	if !a.True {
		l = -l
	}
	return l, true
}

// SolveAssuming answers one query under the given assumptions, retaining
// all search state for the next one. Enumerated models, optimization
// bounds, and blocking clauses are query-local (guarded by a per-query
// literal and retired afterwards); loop formulas and learned clauses are
// program consequences and persist. An unsatisfiable assumption set
// reports the responsible subset in Result.Core.
func (s *Session) SolveAssuming(assumptions []Assumption, opts Options) (*Result, error) {
	s.acquire()
	defer s.release()
	if err := s.usable(); err != nil {
		return nil, err
	}
	start := time.Now()
	if opts.Budget == nil {
		opts.Budget = s.opts.Budget
	}
	st := s.tr.s
	st.applyBudget(opts.Budget)
	s.queries++
	qsp := startSpan(opts.Budget, "query#%d", s.queries)
	defer qsp.End()
	defer func() {
		obs.RegistryFromContext(opts.Budget.Context()).
			Histogram("solver.query_us").Observe(time.Since(start).Microseconds())
	}()
	s.learnedReused += int64(len(st.learnts))
	res := &Result{}
	if st.unsatRoot {
		s.finishStats(res, start)
		return res, nil
	}
	st.cancelUntil(0)
	lits := make([]lit, 0, len(assumptions)+1)
	names := map[lit]string{}
	for _, a := range assumptions {
		l, known := s.assumptionLit(a)
		if !known {
			if a.True {
				res.Core = []string{a.describe()}
				s.finishStats(res, start)
				return res, nil
			}
			continue
		}
		lits = append(lits, l)
		if _, ok := names[l]; !ok {
			names[l] = a.describe()
		}
	}
	qg := lit(st.newVar())
	st.assumps = append([]lit{-qg}, lits...)
	st.assumpFailed = false
	st.finalCore = nil

	var err error
	if opts.Optimize && len(s.tr.gp.Minimize) > 0 {
		qg, err = s.solveOptimizeSession(opts, res, qg)
	} else {
		err = s.enumerate(opts, res, -1, qg)
	}

	// Wind the query down: clear the assumption state, drop any leftover
	// objective bound, and retire this query's guarded clauses by fixing
	// the guard true (restoring the enumeration space for later queries).
	core, failed := st.finalCore, st.assumpFailed
	st.assumps = nil
	st.assumpFailed = false
	st.finalCore = nil
	st.pruning = false
	st.bound = 1 << 62
	st.costGuard = 0
	st.addClause([]lit{qg})
	if err != nil {
		s.fail(err)
		return nil, err
	}
	if len(res.Models) == 0 && failed {
		for _, l := range core {
			if l.variable() == qg.variable() {
				continue
			}
			if n, ok := names[l]; ok {
				res.Core = append(res.Core, n)
			}
		}
		sort.Strings(res.Core)
	}
	res.Satisfiable = len(res.Models) > 0
	s.finishStats(res, start)
	return res, nil
}

// enumerate is the session counterpart of solveEnumerate: blocking
// clauses (and, when exactCost >= 0, objective-bound clauses) carry the
// query guard so they can be retired afterwards.
func (s *Session) enumerate(opts Options, res *Result, exactCost int64, qg lit) error {
	tr := s.tr
	st := tr.s
	if exactCost >= 0 {
		st.pruning = true
		st.bound = exactCost + 1
		st.costGuard = qg
	}
	var searchErr error
	onTotal := func() bool {
		if err := st.validateTotal(); err != nil {
			searchErr = err
			return true
		}
		if u := tr.unfoundedSet(); len(u) > 0 {
			tr.loopAdds++
			tr.addSearchClause(tr.loopClause(u))
			return false
		}
		if exactCost >= 0 && st.curCost != exactCost {
			tr.addSearchClause(append(tr.blockingClause(), qg))
			return false
		}
		res.Models = append(res.Models, tr.extractModel())
		if opts.MaxModels > 0 && len(res.Models) >= opts.MaxModels {
			return true
		}
		tr.addSearchClause(append(tr.blockingClause(), qg))
		return false
	}
	err := st.search(onTotal)
	if ex, ok := budget.Exhausted(err); ok {
		res.Interrupted = true
		res.InterruptReason = ex.Reason
		err = nil
	}
	if err != nil {
		return err
	}
	return searchErr
}

// solveOptimizeSession runs in-session branch-and-bound, then
// re-enumerates at exactly the optimal cost. Both passes are query-local:
// pass 1's bound clauses are guarded by qg and retired before pass 2 runs
// under a fresh guard (they would otherwise prune the optimum itself).
// Returns the guard active at the end, for final retirement.
func (s *Session) solveOptimizeSession(opts Options, res *Result, qg lit) (lit, error) {
	tr := s.tr
	st := tr.s
	st.pruning = true
	st.bound = 1 << 62
	st.costGuard = qg
	var best int64
	var incumbent Model
	found := false
	var searchErr error
	onTotal := func() bool {
		if err := st.validateTotal(); err != nil {
			searchErr = err
			return true
		}
		if u := tr.unfoundedSet(); len(u) > 0 {
			tr.loopAdds++
			tr.addSearchClause(tr.loopClause(u))
			return false
		}
		found = true
		best = st.curCost
		incumbent = tr.extractModel()
		st.bound = best // require strictly better from now on
		return false
	}
	err := st.search(onTotal)
	if ex, ok := budget.Exhausted(err); ok {
		res.Interrupted = true
		res.InterruptReason = ex.Reason
		if found {
			res.Models = []Model{incumbent}
		}
		return qg, nil
	}
	if err != nil {
		return qg, err
	}
	if searchErr != nil {
		return qg, searchErr
	}
	if !found {
		// Unsatisfiable under the assumptions; finalCore (if any) is
		// harvested by the caller.
		return qg, nil
	}
	// Optimum proven. Retire pass 1's bound clauses and re-enumerate all
	// models at exactly the optimal cost under a fresh guard.
	st.pruning = false
	st.costGuard = 0
	st.bound = 1 << 62
	st.addClause([]lit{qg})
	qg2 := lit(st.newVar())
	st.assumps[0] = -qg2
	st.assumpFailed = false
	st.finalCore = nil
	if err := s.enumerate(opts, res, best, qg2); err != nil {
		return qg2, err
	}
	if res.Interrupted && len(res.Models) == 0 {
		// Enumeration could not rediscover the optimum in the leftover
		// budget: fall back to the incumbent.
		res.Models = []Model{incumbent}
	}
	res.Optimal = !res.Interrupted
	return qg2, nil
}

func (s *Session) finishStats(res *Result, start time.Time) {
	s.tr.fillStats(&res.Stats)
	addEngineStats(&res.Stats, &s.accum)
	res.Stats.Duration = time.Since(start)
	res.Stats.Sessions = 1
	res.Stats.Queries = s.queries
	res.Stats.Adds = s.adds
	res.Stats.GroundAtomsReused = s.groundReused
	res.Stats.LearnedReused = s.learnedReused
}

// Stats returns a cumulative snapshot of the session's effort counters.
func (s *Session) Stats() Stats {
	s.acquire()
	defer s.release()
	var st Stats
	if s.tr != nil {
		s.tr.fillStats(&st)
	}
	addEngineStats(&st, &s.accum)
	st.Sessions = 1
	st.Queries = s.queries
	st.Adds = s.adds
	st.GroundAtomsReused = s.groundReused
	st.LearnedReused = s.learnedReused
	return st
}
