// Package plant implements a discrete-time simulator of the paper's §VII
// water-tank system (inspired by the Tennessee Eastman Process benchmark):
// a tank with input/output valve actuators and their controllers, a water
// level sensor, a hysteresis tank controller, an HMI alert channel, and an
// engineering workstation that can be compromised to reconfigure the
// actuators. It is the concrete oracle the CEGAR loop validates abstract
// counterexamples against, and the ground truth for the EPA
// over-approximation property ("no actual hazardous attack is
// overlooked").
package plant

import (
	"fmt"
	"math"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/temporal"
)

// Component names shared with the water-tank system model.
const (
	CompTank        = "tank"
	CompLevelSensor = "level_sensor"
	CompController  = "tank_controller"
	CompInValveCtl  = "in_valve_ctrl"
	CompOutValveCtl = "out_valve_ctrl"
	CompInValve     = "input_valve"
	CompOutValve    = "output_valve"
	CompHMI         = "hmi"
	CompEWS         = "ews"
)

// Fault mode names shared with the system model (paper §VII: F1..F4).
const (
	FaultStuckOpen   = "stuck_at_open"   // F1 on input valve
	FaultStuckClosed = "stuck_at_closed" // F2 on output valve
	FaultNoSignal    = "no_signal"       // F3 on HMI / sensor
	FaultCompromised = "compromised"     // F4 on engineering workstation
	FaultBadCommand  = "bad_command"     // attacker reconfigures a valve controller
)

// Config parameterizes the physics and control.
type Config struct {
	// Area is the tank cross-section (m^2); Capacity the level at which
	// water spills (m).
	Area     float64
	Capacity float64
	// InFlowMax / OutFlowMax are full-open volumetric flows (m^3/s).
	InFlowMax  float64
	OutFlowMax float64
	// LowMark / HighMark are the hysteresis thresholds of the controller.
	LowMark  float64
	HighMark float64
	// AlertMark is the level at which the controller raises an operator
	// alert through the HMI.
	AlertMark float64
	// DT is the simulation step (s); Steps the horizon.
	DT    float64
	Steps int
	// InitialLevel is the starting water level.
	InitialLevel float64
}

// DefaultConfig returns the case-study parameterization: a 1 m tall tank
// controlled between 0.3 and 0.7 m, alert at 0.9 m, inflow able to
// overfill the tank if unopposed.
func DefaultConfig() Config {
	return Config{
		Area:         1.0,
		Capacity:     1.0,
		InFlowMax:    0.05,
		OutFlowMax:   0.06,
		LowMark:      0.3,
		HighMark:     0.7,
		AlertMark:    0.9,
		DT:           1.0,
		Steps:        200,
		InitialLevel: 0.5,
	}
}

// Validate rejects nonphysical configurations.
func (c Config) Validate() error {
	switch {
	case c.Area <= 0, c.Capacity <= 0, c.DT <= 0, c.Steps <= 0:
		return fmt.Errorf("plant: non-positive physical parameter: %+v", c)
	case c.InFlowMax < 0 || c.OutFlowMax < 0:
		return fmt.Errorf("plant: negative flow bound")
	case !(c.LowMark < c.HighMark && c.HighMark < c.AlertMark && c.AlertMark <= c.Capacity):
		return fmt.Errorf("plant: marks must satisfy low < high < alert <= capacity")
	case c.InitialLevel < 0 || c.InitialLevel > c.Capacity:
		return fmt.Errorf("plant: initial level outside tank")
	}
	return nil
}

// Injection activates a fault from a given step onward (0 = from start).
type Injection struct {
	Component string
	Fault     string
	AtStep    int
}

// Step is one recorded simulation step.
type Step struct {
	T        int
	Level    float64
	InFlow   float64
	OutFlow  float64
	Overflow bool // level at capacity with net inflow spilling
	Alerted  bool // operator saw an alert this step
}

// Trace is a recorded simulation run.
type Trace struct {
	Steps  []Step
	Config Config
}

// Levels extracts the level waveform.
func (tr *Trace) Levels() []float64 {
	out := make([]float64, len(tr.Steps))
	for i, s := range tr.Steps {
		out[i] = s.Level
	}
	return out
}

// Overflowed reports whether the tank ever spilled (R1 violation ground
// truth).
func (tr *Trace) Overflowed() bool {
	for _, s := range tr.Steps {
		if s.Overflow {
			return true
		}
	}
	return false
}

// AlertedAfterOverflow reports whether an operator alert was delivered at
// or after the first overflow (R2 ground truth: an alert must be sent in
// case of overflow).
func (tr *Trace) AlertedAfterOverflow() bool {
	seen := false
	for _, s := range tr.Steps {
		if s.Overflow {
			seen = true
		}
		if seen && s.Alerted {
			return true
		}
	}
	return false
}

// LevelSpace is the qualitative quantity space of the tank level used to
// abstract traces for the reasoner (paper §II-B).
func LevelSpace(cfg Config) *qual.QuantitySpace {
	return qual.MustQuantitySpace("level",
		[]float64{cfg.LowMark / 3, cfg.LowMark, cfg.HighMark, cfg.AlertMark},
		[]string{"empty", "low", "normal", "high", "overflow"})
}

// PropTrace abstracts the run into an LTLf trace over the propositions
// state(tank,overflow) and alerted(operator).
func (tr *Trace) PropTrace() temporal.Trace {
	out := make(temporal.Trace, len(tr.Steps))
	for i, s := range tr.Steps {
		st := temporal.State{}
		if s.Overflow {
			st["state(tank,overflow)"] = true
		}
		if s.Alerted {
			st["alerted(operator)"] = true
		}
		out[i] = st
	}
	return out
}

// QualTrace abstracts the level waveform into qualitative states.
func (tr *Trace) QualTrace() []qual.State {
	qs := LevelSpace(tr.Config)
	return qual.AbstractTrace(qs, tr.Levels(), 1e-9)
}

// Simulate runs the plant under the fault injections.
func Simulate(cfg Config, injections []Injection) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, inj := range injections {
		if err := validateInjection(inj); err != nil {
			return nil, err
		}
	}
	active := func(t int, comp, fault string) bool {
		for _, inj := range injections {
			if inj.Component == comp && inj.Fault == fault && t >= inj.AtStep {
				return true
			}
		}
		return false
	}

	tr := &Trace{Config: cfg, Steps: make([]Step, 0, cfg.Steps)}
	level := cfg.InitialLevel
	inOpen, outOpen := 0.0, 1.0 // steady-state posture around the setpoint
	lastReading := level

	for t := 0; t < cfg.Steps; t++ {
		ewsCompromised := active(t, CompEWS, FaultCompromised)

		// Sensor.
		sensorDead := active(t, CompLevelSensor, FaultNoSignal)
		if !sensorDead {
			lastReading = level
		}

		// Tank controller: hysteresis on the last good reading.
		var cmdIn, cmdOut float64 = inOpen, outOpen
		switch {
		case lastReading <= cfg.LowMark:
			cmdIn, cmdOut = 1, 0
		case lastReading >= cfg.HighMark:
			cmdIn, cmdOut = 0, 1
		}

		// Valve controllers: forward commands unless reconfigured by the
		// attacker (directly or through the compromised workstation, which
		// "can cause F1, F2, and F3" per the paper).
		inCtlBad := active(t, CompInValveCtl, FaultBadCommand) || ewsCompromised
		outCtlBad := active(t, CompOutValveCtl, FaultBadCommand) || ewsCompromised
		if inCtlBad {
			cmdIn = 1 // attacker forces filling
		}
		if outCtlBad {
			cmdOut = 0 // attacker blocks draining
		}

		// Valves: physical stuck-at faults dominate commands.
		inOpen, outOpen = cmdIn, cmdOut
		if active(t, CompInValve, FaultStuckOpen) {
			inOpen = 1
		}
		if active(t, CompInValve, FaultStuckClosed) {
			inOpen = 0
		}
		if active(t, CompOutValve, FaultStuckOpen) {
			outOpen = 1
		}
		if active(t, CompOutValve, FaultStuckClosed) {
			outOpen = 0
		}

		// Physics.
		qin := inOpen * cfg.InFlowMax
		qout := outOpen * cfg.OutFlowMax
		if level <= 0 && qout > qin {
			qout = qin // cannot drain an empty tank below zero
		}
		next := level + (qin-qout)*cfg.DT/cfg.Area
		overflow := false
		if next >= cfg.Capacity {
			overflow = next > cfg.Capacity || qin > qout
			next = cfg.Capacity
		}
		if next < 0 {
			next = 0
		}
		level = next

		// Alerting: the controller raises an alert from the reading; a
		// dead HMI (or one silenced through the compromised workstation)
		// loses it.
		hmiDead := active(t, CompHMI, FaultNoSignal) || ewsCompromised
		alertRaised := !sensorDead && lastReading >= cfg.AlertMark
		alerted := alertRaised && !hmiDead

		tr.Steps = append(tr.Steps, Step{
			T: t, Level: level, InFlow: qin, OutFlow: qout,
			Overflow: overflow, Alerted: alerted,
		})
	}
	return tr, nil
}

func validateInjection(inj Injection) error {
	valid := map[string][]string{
		CompInValve:     {FaultStuckOpen, FaultStuckClosed},
		CompOutValve:    {FaultStuckOpen, FaultStuckClosed},
		CompLevelSensor: {FaultNoSignal},
		CompHMI:         {FaultNoSignal},
		CompEWS:         {FaultCompromised},
		CompInValveCtl:  {FaultBadCommand},
		CompOutValveCtl: {FaultBadCommand},
	}
	faults, ok := valid[inj.Component]
	if !ok {
		return fmt.Errorf("plant: cannot inject into component %q", inj.Component)
	}
	for _, f := range faults {
		if f == inj.Fault {
			if inj.AtStep < 0 {
				return fmt.Errorf("plant: negative injection step %d", inj.AtStep)
			}
			return nil
		}
	}
	return fmt.Errorf("plant: component %q has no fault %q", inj.Component, inj.Fault)
}

// InjectionsFromScenario converts an EPA scenario over the water-tank
// model into plant injections active from step 0. Activations the plant
// cannot represent (e.g. faults of abstract assets without physics) are
// reported as errors so callers never silently drop attack content.
func InjectionsFromScenario(s epa.Scenario) ([]Injection, error) {
	out := make([]Injection, 0, len(s))
	for _, a := range s {
		inj := Injection{Component: a.Component, Fault: a.Fault}
		if err := validateInjection(inj); err != nil {
			return nil, err
		}
		out = append(out, inj)
	}
	return out, nil
}

// SettledLevel returns the final level of the run.
func (tr *Trace) SettledLevel() float64 {
	if len(tr.Steps) == 0 {
		return math.NaN()
	}
	return tr.Steps[len(tr.Steps)-1].Level
}
