package temporal

import (
	"testing"

	"cpsrisk/internal/logic"
)

// Convenience: a trace over propositions "a" and "b" given as strings like
// "ab", "a", "", "b".
func mkTrace(steps ...string) Trace {
	tr := make(Trace, len(steps))
	for i, s := range steps {
		st := State{}
		for _, c := range s {
			st[string(c)] = true
		}
		tr[i] = st
	}
	return tr
}

func TestEvalBasics(t *testing.T) {
	a, b := P("a"), P("b")
	tests := []struct {
		name string
		f    Formula
		tr   Trace
		want bool
	}{
		{"prop holds", a, mkTrace("a"), true},
		{"prop fails", a, mkTrace("b"), false},
		{"true", T(), mkTrace(""), true},
		{"false", F(), mkTrace("a"), false},
		{"not", Not(a), mkTrace("b"), true},
		{"and", And(a, b), mkTrace("ab"), true},
		{"and fails", And(a, b), mkTrace("a"), false},
		{"or", Or(a, b), mkTrace("b"), true},
		{"implies vacuous", Implies(a, b), mkTrace("b"), true},
		{"implies holds", Implies(a, b), mkTrace("ab"), true},
		{"implies fails", Implies(a, b), mkTrace("a"), false},
		{"next", Next(a), mkTrace("b", "a"), true},
		{"next at end fails", Next(a), mkTrace("a"), false},
		{"weak next at end holds", WeakNext(a), mkTrace("a"), true},
		{"weak next holds", WeakNext(a), mkTrace("b", "a"), true},
		{"weak next fails", WeakNext(a), mkTrace("b", "b"), false},
		{"finally", Finally(a), mkTrace("", "", "a"), true},
		{"finally fails", Finally(a), mkTrace("", "", ""), false},
		{"globally", Globally(a), mkTrace("a", "a", "a"), true},
		{"globally fails", Globally(a), mkTrace("a", "", "a"), false},
		{"until", Until(a, b), mkTrace("a", "a", "b"), true},
		{"until immediate", Until(a, b), mkTrace("b"), true},
		{"until gap fails", Until(a, b), mkTrace("a", "", "b"), false},
		{"until never fails", Until(a, b), mkTrace("a", "a", "a"), false},
		{"release held", Release(a, b), mkTrace("b", "b", "b"), true},
		{"release released", Release(a, b), mkTrace("b", "ab", ""), true},
		{"release fails", Release(a, b), mkTrace("b", "", ""), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Eval(tt.f, tt.tr); got != tt.want {
				t.Errorf("Eval(%s, %v) = %v, want %v", tt.f, tt.tr, got, tt.want)
			}
		})
	}
}

func TestEmptyTraceSemantics(t *testing.T) {
	a := P("a")
	if !Eval(Globally(a), Trace{}) {
		t.Error("G a must hold on the empty trace")
	}
	if Eval(Finally(a), Trace{}) {
		t.Error("F a must fail on the empty trace")
	}
	if Eval(a, Trace{}) {
		t.Error("a must fail on the empty trace")
	}
	if !Eval(WeakNext(a), Trace{}) {
		t.Error("WX a must hold on the empty trace")
	}
	if !Eval(Release(a, a), Trace{}) {
		t.Error("a R a must hold on the empty trace")
	}
}

func TestPaperRequirements(t *testing.T) {
	// R1: the water tank should not overflow: G !overflow
	// R2: alert must be sent in case of overflow: G(overflow -> F alerted)
	r1 := Globally(Not(P("overflow")))
	r2 := Globally(Implies(P("overflow"), Finally(P("alerted"))))

	safe := TraceFromKeys([]string{}, []string{}, []string{})
	overflowAlert := TraceFromKeys([]string{}, []string{"overflow"}, []string{"overflow", "alerted"})
	overflowSilent := TraceFromKeys([]string{}, []string{"overflow"}, []string{"overflow"})

	if !Eval(r1, safe) || !Eval(r2, safe) {
		t.Error("safe trace must satisfy R1 and R2")
	}
	if Eval(r1, overflowAlert) {
		t.Error("R1 must be violated on overflow")
	}
	if !Eval(r2, overflowAlert) {
		t.Error("R2 must hold when the alert arrives")
	}
	if Eval(r2, overflowSilent) {
		t.Error("R2 must be violated when no alert ever arrives")
	}
}

func TestParseFormula(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"a", "a"},
		{"!a", "!a"},
		{"a & b", "a & b"},
		{"a | b & c", "a | (b & c)"},
		{"a -> b -> c", "a -> (b -> c)"},
		{"G !overflow", "G !overflow"},
		{"G(overflow -> F alerted)", "G (overflow -> (F alerted))"},
		{"a U b", "a U b"},
		{"a R b", "a R b"},
		{"X a & WX b", "(X a) & (WX b)"},
		{"state(tank,high)", "state(tank,high)"},
		{"true & false", "true & false"},
		{"a U b U c", "a U (b U c)"},
	}
	for _, tt := range tests {
		f, err := ParseFormula(tt.src)
		if err != nil {
			t.Errorf("ParseFormula(%q): %v", tt.src, err)
			continue
		}
		if got := f.String(); got != tt.want {
			t.Errorf("ParseFormula(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParseFormulaRoundTrip(t *testing.T) {
	srcs := []string{
		"G (state(tank,overflow) -> F alerted(operator))",
		"!(a & b) | (X c U d)",
		"(a R b) & WX (c | !d)",
	}
	for _, src := range srcs {
		f1, err := ParseFormula(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		f2, err := ParseFormula(f1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", f1.String(), err)
		}
		if f1.String() != f2.String() {
			t.Errorf("round trip %q -> %q -> %q", src, f1, f2)
		}
	}
}

func TestParseFormulaErrors(t *testing.T) {
	for _, src := range []string{"", "(a", "a &", "& a", "a b", "G", "state(tank,X)", "a )"} {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("ParseFormula(%q) expected error", src)
		}
	}
}

func TestProps(t *testing.T) {
	f := MustParseFormula("G(overflow -> F alerted) & X overflow")
	ps := Props(f)
	if len(ps) != 2 || ps[0].Pred != "overflow" || ps[1].Pred != "alerted" {
		t.Errorf("Props = %v", ps)
	}
}

func TestKind(t *testing.T) {
	if Kind(MustParseFormula("G !overflow")) != "invariant" {
		t.Error("G is invariant")
	}
	if Kind(MustParseFormula("F done")) != "liveness" {
		t.Error("F is liveness")
	}
}

func TestPropWithTerms(t *testing.T) {
	f := P("state", logic.Sym("tank"), logic.Sym("high"))
	tr := TraceFromKeys([]string{"state(tank,high)"})
	if !Eval(f, tr) {
		t.Error("compound prop evaluation failed")
	}
}
