package budget

import (
	"context"
	"runtime"
	"sync/atomic"
)

// Governor is the global worker-pool semaphore: one per pipeline run,
// shared by every component that spawns helper goroutines (scenario-sweep
// workers, CEGAR oracle checkers, portfolio solver helpers). It bounds
// the *extra* concurrency beyond each call site's own goroutine so that a
// k-way sweep with portfolio queries underneath cannot oversubscribe the
// machine to k×N runnable workers.
//
// The contract is best-effort and non-blocking: AcquireUpTo never waits,
// it grants however many slots are free (possibly zero). Call sites must
// therefore be written so that zero grants still make progress on the
// calling goroutine — the governor throttles parallelism, never liveness,
// and in particular can never deadlock a nested acquirer.
//
// A nil *Governor is valid and unlimited — every method is nil-receiver
// safe, matching the Budget/Injector conventions.
type Governor struct {
	capacity int64
	inUse    atomic.Int64
	granted  atomic.Int64 // slots handed out over the run
	denied   atomic.Int64 // slots requested but refused (pool full)
}

// NewGovernor creates a governor for a run allowed `limit` total
// workers. A non-positive limit defaults to GOMAXPROCS, mirroring how
// the sweep picks its worker count.
//
// The pool holds limit-1 slots: each call site's own goroutine is the
// implicit first worker (it never acquires, so zero grants still make
// progress), and the pool meters only the extras. In particular
// limit=1 — a sequential run, or a single-core machine — yields an
// empty pool: every helper request is denied and all constructs
// collapse to their sequential paths instead of time-sharing one core.
func NewGovernor(limit int) *Governor {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Governor{capacity: int64(limit - 1)}
}

// AcquireUpTo grants between 0 and n slots without blocking and returns
// the grant. The caller owes Release for exactly the returned count. A
// nil governor grants everything requested.
func (g *Governor) AcquireUpTo(n int) int {
	if n <= 0 {
		return 0
	}
	if g == nil {
		return n
	}
	for {
		used := g.inUse.Load()
		free := g.capacity - used
		if free <= 0 {
			g.denied.Add(int64(n))
			return 0
		}
		take := int64(n)
		if take > free {
			take = free
		}
		if g.inUse.CompareAndSwap(used, used+take) {
			g.granted.Add(take)
			if take < int64(n) {
				g.denied.Add(int64(n) - take)
			}
			return int(take)
		}
	}
}

// Release returns n previously granted slots to the pool.
func (g *Governor) Release(n int) {
	if g == nil || n <= 0 {
		return
	}
	if g.inUse.Add(-int64(n)) < 0 {
		panic("budget: governor released more slots than acquired")
	}
}

// Capacity returns the extra-worker slot capacity (0 for a nil
// governor = unlimited).
func (g *Governor) Capacity() int {
	if g == nil {
		return 0
	}
	return int(g.capacity)
}

// InUse returns the currently held slot count.
func (g *Governor) InUse() int {
	if g == nil {
		return 0
	}
	return int(g.inUse.Load())
}

// Granted returns the cumulative slots handed out over the run.
func (g *Governor) Granted() int64 {
	if g == nil {
		return 0
	}
	return g.granted.Load()
}

// Denied returns the cumulative slots refused because the pool was full.
func (g *Governor) Denied() int64 {
	if g == nil {
		return 0
	}
	return g.denied.Load()
}

type governorKey struct{}

// ContextWithGovernor attaches g to ctx so nested stages — and the
// budgets they derive — share one worker pool.
func ContextWithGovernor(ctx context.Context, g *Governor) context.Context {
	if g == nil {
		return ctx
	}
	return context.WithValue(ctx, governorKey{}, g)
}

// GovernorFromContext returns the governor carried by ctx, or nil.
func GovernorFromContext(ctx context.Context) *Governor {
	if ctx == nil {
		return nil
	}
	g, _ := ctx.Value(governorKey{}).(*Governor)
	return g
}

// Governor returns the worker-pool governor captured from the budget's
// context (nil for a nil budget or an ungoverned run).
func (b *Budget) Governor() *Governor {
	if b == nil {
		return nil
	}
	return b.gov
}
