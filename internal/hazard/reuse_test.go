package hazard

import (
	"context"
	"fmt"
	"testing"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/store"
)

// oracleFrom builds a Reuse oracle answering from a finished analysis,
// restricted to scenarios accepted by keep (nil = all).
func oracleFrom(a *Analysis, keep func(epa.Scenario) bool) func(epa.Scenario) ([]string, bool) {
	rows := make(map[string][]string, len(a.Scenarios))
	for _, s := range a.Scenarios {
		rows[s.Scenario.Key()] = s.Violated
	}
	return func(sc epa.Scenario) ([]string, bool) {
		if keep != nil && !keep(sc) {
			return nil, false
		}
		v, ok := rows[sc.Key()]
		return v, ok
	}
}

// TestReuseOracle: rows the delta oracle answers are synthesized without
// EPA runs, and the report is byte-identical to a full sweep.
func TestReuseOracle(t *testing.T) {
	eng, muts, reqs := setupWide(t, 6) // 64 scenarios
	parent, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := projection(parent)

	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("full/p=%d", par), func(t *testing.T) {
			a, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{
				Parallelism: par, Reuse: oracleFrom(parent, nil),
			})
			if err != nil {
				t.Fatal(err)
			}
			if projection(a) != want {
				t.Fatal("reused report diverged from parent")
			}
			if a.Sweep.Reused != 64 || a.Sweep.Executed != 0 {
				t.Fatalf("reused/executed = %d/%d, want 64/0", a.Sweep.Reused, a.Sweep.Executed)
			}
		})
	}

	t.Run("partial", func(t *testing.T) {
		a, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{
			Parallelism: 2,
			Reuse:       oracleFrom(parent, func(sc epa.Scenario) bool { return len(sc) < 3 }),
		})
		if err != nil {
			t.Fatal(err)
		}
		if projection(a) != want {
			t.Fatal("partially reused report diverged from parent")
		}
		// C(6,0)+C(6,1)+C(6,2) = 22 reusable rows; the rest execute.
		if a.Sweep.Reused != 22 || a.Sweep.Executed != 42 {
			t.Fatalf("reused/executed = %d/%d, want 22/42", a.Sweep.Reused, a.Sweep.Executed)
		}
	})

	// Reused rows are free under MaxScenarios: with a full oracle even a
	// tiny cap completes the whole space.
	t.Run("cap-exempt", func(t *testing.T) {
		a, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{
			Parallelism: 2,
			Budget:      budget.New(context.Background(), budget.Limits{MaxScenarios: 10}),
			Reuse:       oracleFrom(parent, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		if a.Truncation != nil {
			t.Fatalf("fully reused capped run truncated: %v", a.Truncation)
		}
		if len(a.Scenarios) != 64 {
			t.Fatalf("kept %d rows, want 64", len(a.Scenarios))
		}
	})
}

// TestCapChargesExecutedOnly is the pruning-aware MaxScenarios fix: the
// cap charges executed-equivalent scenarios only, so a pruned run under
// the same cap reaches at least as far as the exhaustive run — and on a
// plant where pruning finds nothing, exactly as far.
func TestCapChargesExecutedOnly(t *testing.T) {
	// The pruned sweep executes only ~16 of the 232-row space, so the
	// cap must sit below that to bind on both runs.
	const cap = 10
	eng, muts, reqs := setupSymmetric(t, 5) // 11 muts; k=3 space = 232
	capBud := func() *budget.Budget {
		return budget.New(context.Background(), budget.Limits{MaxScenarios: cap})
	}

	noPrune, err := AnalyzeSweep(eng, muts, 3, reqs, SweepConfig{
		Parallelism: 1, Budget: capBud(), Cache: openMem(t), // cache forces the parallel path
	})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := AnalyzeSweep(eng, muts, 3, reqs, SweepConfig{
		Parallelism: 1, Budget: capBud(), Prune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range map[string]*Analysis{"no-prune": noPrune, "pruned": pruned} {
		if a.Truncation == nil || a.Truncation.Reason != budget.ReasonScenarios {
			t.Fatalf("%s: truncation = %v, want scenario cap", name, a.Truncation)
		}
	}
	// Same cap, same executed work — but implied rows ride free, so the
	// pruned run keeps strictly more of the space on this redundant
	// plant.
	if len(pruned.Scenarios) <= len(noPrune.Scenarios) {
		t.Fatalf("pruned kept %d rows, exhaustive %d — pruning paid for synthesized rows",
			len(pruned.Scenarios), len(noPrune.Scenarios))
	}
	// The kept prefix agrees row for row.
	for i, s := range noPrune.Scenarios {
		if fmt.Sprintf("%+v", pruned.Scenarios[i]) != fmt.Sprintf("%+v", s) {
			t.Fatalf("row %d diverged under the cap", i)
		}
	}

	// On a plant where pruning can imply nothing (dominance disarmed, no
	// orbits), the truncation point is pinned equal across -no-prune.
	engNM, mutsNM, reqsNM := setupNonMonotone(t)
	nmNoPrune, err := AnalyzeSweep(engNM, mutsNM, 3, reqsNM, SweepConfig{
		Parallelism: 1, Budget: capBud(), Cache: openMem(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	nmPruned, err := AnalyzeSweep(engNM, mutsNM, 3, reqsNM, SweepConfig{
		Parallelism: 1, Budget: capBud(), Prune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if projection(nmPruned) != projection(nmNoPrune) {
		t.Fatal("un-prunable plant: capped pruned report diverged from -no-prune")
	}
}

// TestCapDeterministicAcrossParallelismAndWarmth: the shadow accountant
// makes the cap's truncation rank a pure function of the stream, so the
// capped pruned report is byte-identical across worker counts and cache
// warmth.
func TestCapDeterministicAcrossParallelismAndWarmth(t *testing.T) {
	eng, muts, reqs := setupSymmetric(t, 5)
	dir := t.TempDir()
	ns := SweepNamespace(eng, muts)
	run := func(par int, withCache bool) string {
		cfg := SweepConfig{
			Parallelism: par, Prune: true,
			Budget: budget.New(context.Background(), budget.Limits{MaxScenarios: 25}),
		}
		if withCache {
			cache, err := store.Open(dir, ns, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer cache.Close()
			cfg.Cache = cache
		}
		a, err := AnalyzeSweep(eng, muts, 3, reqs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return projection(a)
	}
	want := run(1, false)
	if got := run(4, false); got != want {
		t.Fatal("capped pruned report varies with parallelism")
	}
	if got := run(2, true); got != want { // cold cache
		t.Fatal("capped pruned report varies with a cache attached")
	}
	if got := run(2, true); got != want { // warm cache + seeded pruner
		t.Fatal("capped pruned report varies with cache warmth")
	}
}

// TestSeedFromCache is the cross-shard dominance-starvation fix: a
// mid-space shard seeded from the cache records of earlier shards prunes
// from rank one instead of rediscovering its dominance index.
func TestSeedFromCache(t *testing.T) {
	eng, muts, reqs := setupSymmetric(t, 5)
	ns := SweepNamespace(eng, muts)
	runShard1 := func(dir string) *Analysis {
		cache, err := store.Open(dir, ns, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		a, err := AnalyzeSweep(eng, muts, 3, reqs, SweepConfig{
			Parallelism: 2, Prune: true, Cache: cache, ShardIndex: 1, ShardCount: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	cold := runShard1(t.TempDir()) // unseeded baseline: empty cache

	shared := t.TempDir()
	cache, err := store.Open(shared, ns, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeSweep(eng, muts, 3, reqs, SweepConfig{
		Parallelism: 2, Prune: true, Cache: cache, ShardIndex: 0, ShardCount: 2,
	}); err != nil {
		t.Fatal(err)
	}
	cache.Close()

	// Unit-level: the seeded pruner really ingests shard 0's records.
	cache, err = store.Open(shared, ns, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr := newPruner(eng, muts, reqs)
	if n := pr.seedFromCache(cache, eng, muts, (len(muts)+7)/8); n == 0 {
		t.Fatal("seedFromCache ingested nothing from a populated cache")
	}
	cache.Close()

	seeded := runShard1(shared)
	if projection(seeded) != projection(cold) {
		t.Fatal("seeded shard report diverged")
	}
	if seeded.Sweep.Executed >= cold.Sweep.Executed {
		t.Fatalf("seeding did not reduce work: executed %d seeded vs %d cold (pruned %d vs %d)",
			seeded.Sweep.Executed, cold.Sweep.Executed, seeded.Sweep.Pruned, cold.Sweep.Pruned)
	}
}

// openMem opens a throwaway cache in a temp dir — used to force the
// chunked parallel path at parallelism 1.
func openMem(t *testing.T) *store.Cache {
	t.Helper()
	c, err := store.Open(t.TempDir(), 1, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}
