package risk

import (
	"strings"
	"testing"
	"testing/quick"

	"cpsrisk/internal/qual"
)

// TestTableIMatchesPaper checks every cell of the O-RA matrix against the
// paper's Table I.
func TestTableIMatchesPaper(t *testing.T) {
	s := qual.FiveLevel()
	// Rows: LM from VH down to VL as printed in the paper; columns LEF
	// VL..VH.
	paper := map[string][5]string{
		"VH": {"M", "H", "VH", "VH", "VH"},
		"H":  {"L", "M", "H", "VH", "VH"},
		"M":  {"VL", "L", "M", "H", "VH"},
		"L":  {"VL", "VL", "L", "M", "H"},
		"VL": {"VL", "VL", "VL", "L", "M"},
	}
	for lmLabel, row := range paper {
		lm := s.MustParse(lmLabel)
		for lefIdx, want := range row {
			got := ORARisk(lm, qual.Level(lefIdx))
			if s.Label(got) != want {
				t.Errorf("Risk(LM=%s, LEF=%s) = %s, want %s",
					lmLabel, s.Label(qual.Level(lefIdx)), s.Label(got), want)
			}
		}
	}
}

// The matrix coincides with the closed form clamp(LM+LEF-2); assert it so
// the table cannot silently drift.
func TestTableIClosedForm(t *testing.T) {
	s := qual.FiveLevel()
	for lm := s.Min(); lm <= s.Max(); lm++ {
		for lef := s.Min(); lef <= s.Max(); lef++ {
			want := s.Clamp(lm + lef - 2)
			if got := ORARisk(lm, lef); got != want {
				t.Errorf("closed form mismatch at (%v,%v): %v vs %v", lm, lef, got, want)
			}
		}
	}
}

// Monotonicity: raising LM or LEF never lowers the risk.
func TestORAMonotone(t *testing.T) {
	f := func(lm1, lef1, lm2, lef2 uint8) bool {
		s := qual.FiveLevel()
		a1, b1 := s.Clamp(qual.Level(lm1%5)), s.Clamp(qual.Level(lef1%5))
		a2, b2 := s.Clamp(qual.Level(lm2%5)), s.Clamp(qual.Level(lef2%5))
		if a1 <= a2 && b1 <= b2 {
			return ORARisk(a1, b1) <= ORARisk(a2, b2)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The exact sensitivity example of paper §V-A: with LEF=L, LM ∈ {VL,L}
// both give Risk=VL (insensitive); LM ranging L..VH changes the output.
func TestPaperSectionVAExample(t *testing.T) {
	s := qual.FiveLevel()
	lef := qual.Low
	if ORARisk(qual.VeryLow, lef) != qual.VeryLow || ORARisk(qual.Low, lef) != qual.VeryLow {
		t.Error("paper example: Risk must stay VL for LM in {VL, L} at LEF=L")
	}
	seen := map[qual.Level]bool{}
	for lm := qual.Low; lm <= qual.VeryHigh; lm++ {
		seen[ORARisk(lm, lef)] = true
	}
	if len(seen) < 2 {
		t.Errorf("paper example: Risk must vary when LM ranges L..VH, got %v", seen)
	}
	_ = s
}

func TestSusceptibility(t *testing.T) {
	tests := []struct {
		tcap, rs, want qual.Level
	}{
		{qual.Medium, qual.Medium, qual.Medium},
		{qual.VeryHigh, qual.VeryLow, qual.VeryHigh},
		{qual.VeryLow, qual.VeryHigh, qual.VeryLow},
		{qual.High, qual.Medium, qual.High},
		{qual.Medium, qual.High, qual.Low},
	}
	for _, tt := range tests {
		if got := Susceptibility(tt.tcap, tt.rs); got != tt.want {
			t.Errorf("Susceptibility(%v,%v) = %v, want %v", tt.tcap, tt.rs, got, tt.want)
		}
	}
}

func TestDeriveTree(t *testing.T) {
	// A public asset frequently contacted by capable attackers with weak
	// resistance and high primary loss must derive a high risk.
	hot := Derive(Attributes{
		ContactFrequency:    qual.High,
		ProbabilityOfAction: qual.High,
		ThreatCapability:    qual.High,
		ResistanceStrength:  qual.Low,
		PrimaryLoss:         qual.High,
	})
	if hot.Risk < qual.High {
		t.Errorf("hot asset risk = %v (%s)", hot.Risk, hot)
	}
	// A cold asset: rare contact, strong resistance, negligible loss.
	cold := Derive(Attributes{
		ContactFrequency:    qual.VeryLow,
		ProbabilityOfAction: qual.VeryLow,
		ThreatCapability:    qual.Low,
		ResistanceStrength:  qual.VeryHigh,
		PrimaryLoss:         qual.VeryLow,
	})
	if cold.Risk != qual.VeryLow {
		t.Errorf("cold asset risk = %v (%s)", cold.Risk, cold)
	}
	// Secondary losses can dominate the loss magnitude.
	sec := Derive(Attributes{
		ContactFrequency:            qual.High,
		ProbabilityOfAction:         qual.High,
		ThreatCapability:            qual.High,
		ResistanceStrength:          qual.Low,
		PrimaryLoss:                 qual.VeryLow,
		SecondaryLossEventFrequency: qual.VeryHigh,
		SecondaryLossMagnitude:      qual.VeryHigh,
	})
	if sec.LossMagnitude < qual.High {
		t.Errorf("secondary branch ignored: %s", sec)
	}
}

// Derivation consistency: the tree is monotone in every leaf except
// ResistanceStrength (anti-monotone).
func TestDeriveMonotoneInLeaves(t *testing.T) {
	base := Attributes{
		ContactFrequency:            qual.Medium,
		ProbabilityOfAction:         qual.Medium,
		ThreatCapability:            qual.Medium,
		ResistanceStrength:          qual.Medium,
		PrimaryLoss:                 qual.Medium,
		SecondaryLossEventFrequency: qual.Low,
		SecondaryLossMagnitude:      qual.Low,
	}
	raise := []struct {
		name  string
		bump  func(*Attributes)
		lower bool // expect risk to not increase
	}{
		{"contact", func(a *Attributes) { a.ContactFrequency = qual.VeryHigh }, false},
		{"action", func(a *Attributes) { a.ProbabilityOfAction = qual.VeryHigh }, false},
		{"capability", func(a *Attributes) { a.ThreatCapability = qual.VeryHigh }, false},
		{"resistance", func(a *Attributes) { a.ResistanceStrength = qual.VeryHigh }, true},
		{"primary", func(a *Attributes) { a.PrimaryLoss = qual.VeryHigh }, false},
		{"secondary", func(a *Attributes) {
			a.SecondaryLossMagnitude = qual.VeryHigh
			a.SecondaryLossEventFrequency = qual.VeryHigh
		}, false},
	}
	baseRisk := Derive(base).Risk
	for _, tt := range raise {
		a := base
		tt.bump(&a)
		got := Derive(a).Risk
		if tt.lower && got > baseRisk {
			t.Errorf("%s: raising resistance increased risk %v -> %v", tt.name, baseRisk, got)
		}
		if !tt.lower && got < baseRisk {
			t.Errorf("%s: raising leaf decreased risk %v -> %v", tt.name, baseRisk, got)
		}
	}
}

func TestIECMatrix(t *testing.T) {
	tests := []struct {
		l    Likelihood
		c    Consequence
		want Class
	}{
		{Frequent, Catastrophic, ClassI},
		{Frequent, Negligible, ClassII},
		{Probable, Marginal, ClassII},
		{Occasional, Critical, ClassII},
		{Remote, Catastrophic, ClassII},
		{Remote, Negligible, ClassIV},
		{Improbable, Catastrophic, ClassIII},
		{Incredible, Catastrophic, ClassIV},
		{Incredible, Negligible, ClassIV},
	}
	for _, tt := range tests {
		got, err := IECClass(tt.l, tt.c)
		if err != nil {
			t.Fatalf("IECClass(%v,%v): %v", tt.l, tt.c, err)
		}
		if got != tt.want {
			t.Errorf("IECClass(%v,%v) = %v, want %v", tt.l, tt.c, got, tt.want)
		}
	}
	if _, err := IECClass(Likelihood(0), Catastrophic); err == nil {
		t.Error("invalid likelihood must fail")
	}
	if _, err := IECClass(Frequent, Consequence(9)); err == nil {
		t.Error("invalid consequence must fail")
	}
}

// IEC matrix monotonicity: more likely or more severe never lowers the
// class (classes ordered I worst .. IV best).
func TestIECMonotone(t *testing.T) {
	for l := Frequent; l <= Incredible; l++ {
		for c := Catastrophic; c <= Negligible; c++ {
			here, _ := IECClass(l, c)
			if l < Incredible {
				lower, _ := IECClass(l+1, c)
				if lower < here {
					t.Errorf("less likely got worse class at (%v,%v)", l, c)
				}
			}
			if c < Negligible {
				lighter, _ := IECClass(l, c+1)
				if lighter < here {
					t.Errorf("lighter consequence got worse class at (%v,%v)", l, c)
				}
			}
		}
	}
}

func TestScoreScenario(t *testing.T) {
	// Single likely fault violating a high-severity requirement.
	one := ScoreScenario(ScenarioInput{
		ID:                 "S4",
		FaultLikelihoods:   []qual.Level{qual.Medium},
		ViolatedSeverities: []qual.Level{qual.High},
	})
	if one.Likelihood != qual.Medium || one.Severity != qual.High {
		t.Errorf("one = %+v", one)
	}
	if one.Risk != ORARisk(qual.High, qual.Medium) {
		t.Errorf("risk = %v", one.Risk)
	}
	// No violations: VL risk.
	clean := ScoreScenario(ScenarioInput{ID: "S1",
		FaultLikelihoods: []qual.Level{qual.High}})
	if clean.Risk != qual.VeryLow {
		t.Errorf("clean risk = %v", clean.Risk)
	}
	// Simultaneity discount: two faults at M -> joint likelihood L.
	two := ScoreScenario(ScenarioInput{
		ID:                 "S5",
		FaultLikelihoods:   []qual.Level{qual.Medium, qual.Medium},
		ViolatedSeverities: []qual.Level{qual.High, qual.High},
	})
	if two.Likelihood != qual.Low {
		t.Errorf("joint likelihood = %v", two.Likelihood)
	}
}

// The §VII claim: S5 (F2+F3) and S7 (F1+F2+F3) violate the same
// requirements, but the simultaneous occurrence of all three faults is
// less probable, so S5 outranks S7.
func TestS5OutranksS7(t *testing.T) {
	sev := []qual.Level{qual.High, qual.High} // R1, R2 both violated
	s5 := ScoreScenario(ScenarioInput{ID: "S5",
		FaultLikelihoods:   []qual.Level{qual.Medium, qual.Medium},
		ViolatedSeverities: sev})
	s7 := ScoreScenario(ScenarioInput{ID: "S7",
		FaultLikelihoods:   []qual.Level{qual.Medium, qual.Medium, qual.Medium},
		ViolatedSeverities: sev})
	if s5.Likelihood <= s7.Likelihood {
		t.Errorf("S5 likelihood %v must exceed S7 %v", s5.Likelihood, s7.Likelihood)
	}
	ranked := Rank([]ScenarioRisk{s7, s5})
	if ranked[0].ID != "S5" {
		t.Errorf("ranking = %v", []string{ranked[0].ID, ranked[1].ID})
	}
	// Even when the joint likelihood saturates at VL (all physical faults
	// rated L, as in the case study), the ranking still prefers the
	// scenario with fewer simultaneous faults.
	s5sat := ScoreScenario(ScenarioInput{ID: "S5",
		FaultLikelihoods:   []qual.Level{qual.Low, qual.Low},
		ViolatedSeverities: sev})
	s7sat := ScoreScenario(ScenarioInput{ID: "S7",
		FaultLikelihoods:   []qual.Level{qual.Low, qual.Low, qual.Low},
		ViolatedSeverities: sev})
	rankedSat := Rank([]ScenarioRisk{s7sat, s5sat})
	if rankedSat[0].ID != "S5" {
		t.Errorf("saturated ranking = %v", []string{rankedSat[0].ID, rankedSat[1].ID})
	}
}

func TestRankDeterministicAndComplete(t *testing.T) {
	in := []ScenarioRisk{
		{ID: "b", Risk: qual.Medium, Severity: qual.Medium, Likelihood: qual.Medium, Faults: 2},
		{ID: "a", Risk: qual.Medium, Severity: qual.Medium, Likelihood: qual.Medium, Faults: 2},
		{ID: "c", Risk: qual.VeryHigh, Severity: qual.VeryHigh, Likelihood: qual.High, Faults: 1},
		{ID: "d", Risk: qual.Medium, Severity: qual.High, Likelihood: qual.Low, Faults: 1},
	}
	got := Rank(in)
	if len(got) != 4 {
		t.Fatalf("rank dropped items: %v", got)
	}
	order := []string{got[0].ID, got[1].ID, got[2].ID, got[3].ID}
	want := []string{"c", "d", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Input must be untouched.
	if in[0].ID != "b" {
		t.Error("Rank mutated its input")
	}
}

func BenchmarkDerive(b *testing.B) {
	a := Attributes{
		ContactFrequency:    qual.High,
		ProbabilityOfAction: qual.Medium,
		ThreatCapability:    qual.High,
		ResistanceStrength:  qual.Medium,
		PrimaryLoss:         qual.High,
	}
	for i := 0; i < b.N; i++ {
		if Derive(a).Risk > qual.VeryHigh {
			b.Fatal("impossible")
		}
	}
}

func TestIECStringers(t *testing.T) {
	wantL := map[Likelihood]string{
		Frequent: "frequent", Probable: "probable", Occasional: "occasional",
		Remote: "remote", Improbable: "improbable", Incredible: "incredible",
	}
	for l, want := range wantL {
		if l.String() != want {
			t.Errorf("Likelihood(%d) = %q, want %q", int(l), l.String(), want)
		}
	}
	wantC := map[Consequence]string{
		Catastrophic: "catastrophic", Critical: "critical",
		Marginal: "marginal", Negligible: "negligible",
	}
	for c, want := range wantC {
		if c.String() != want {
			t.Errorf("Consequence(%d) = %q, want %q", int(c), c.String(), want)
		}
	}
	wantCl := map[Class]string{ClassI: "I", ClassII: "II", ClassIII: "III", ClassIV: "IV"}
	for cl, want := range wantCl {
		if cl.String() != want {
			t.Errorf("Class(%d) = %q, want %q", int(cl), cl.String(), want)
		}
	}
	for _, bad := range []string{Likelihood(0).String(), Consequence(0).String(), Class(0).String()} {
		if !strings.Contains(bad, "unknown") && bad != "?" {
			t.Errorf("zero-value stringer = %q", bad)
		}
	}
}

func TestMatrixAccessorsAgree(t *testing.T) {
	m := Matrix()
	s := qual.FiveLevel()
	for lm := s.Min(); lm <= s.Max(); lm++ {
		for lef := s.Min(); lef <= s.Max(); lef++ {
			if m[lm][lef] != ORARisk(lm, lef) {
				t.Fatalf("Matrix()[%d][%d] disagrees with ORARisk", lm, lef)
			}
		}
	}
	iec := IECMatrix()
	for l := Frequent; l <= Incredible; l++ {
		for c := Catastrophic; c <= Negligible; c++ {
			got, err := IECClass(l, c)
			if err != nil {
				t.Fatal(err)
			}
			if iec[l-Frequent][c-Catastrophic] != got {
				t.Fatalf("IECMatrix()[%v][%v] disagrees with IECClass", l, c)
			}
		}
	}
}

func TestDerivationString(t *testing.T) {
	d := Derive(Attributes{
		ContactFrequency:    qual.High,
		ProbabilityOfAction: qual.Medium,
		ThreatCapability:    qual.High,
		ResistanceStrength:  qual.Low,
		PrimaryLoss:         qual.High,
	})
	out := d.String()
	for _, want := range []string{"TEF", "LEF", "LM=", "Risk="} {
		if !strings.Contains(out, want) {
			t.Errorf("derivation string %q missing %q", out, want)
		}
	}
}
