package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"cpsrisk/internal/obs"
	"cpsrisk/internal/sysmodel"
)

const (
	modelPath = "../../models/sme-plant.json"
	typesPath = "../../models/types.json"
)

func loadTypes(t *testing.T) *sysmodel.TypeLibrary {
	t.Helper()
	f, err := os.Open(typesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	types, err := sysmodel.ReadTypesJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return types
}

// newTestServer builds a server with fast-test defaults; mutate tweaks
// the options before construction.
func newTestServer(t *testing.T, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{
		Types:          loadTypes(t),
		MaxCardinality: 1,
		JobWorkers:     2,
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// submit POSTs the sample model and returns the accepted job status.
func submit(t *testing.T, ts *httptest.Server, traceID, tenant string) JobStatus {
	t.Helper()
	st, code := trySubmit(t, ts, traceID, tenant)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	return st
}

func trySubmit(t *testing.T, ts *httptest.Server, traceID, tenant string) (JobStatus, int) {
	t.Helper()
	body, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/assess", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// wait polls the job until it reaches a terminal state.
func wait(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestAssessLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submit(t, ts, "trace-abc", "acme")
	if st.State != JobQueued || st.ID == "" {
		t.Fatalf("accepted status = %+v", st)
	}
	if st.TraceID != "trace-abc" || st.Tenant != "acme" {
		t.Errorf("correlation fields = %q/%q", st.TraceID, st.Tenant)
	}

	final := wait(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("final = %+v", final)
	}
	if final.ArtifactPath != "cold" {
		t.Errorf("first run artifact = %q, want cold", final.ArtifactPath)
	}
	if final.Scenarios == 0 || final.Hazardous == 0 {
		t.Errorf("summary counts = %+v", final)
	}

	// JSON report carries the trace ID and the scenario table.
	code, body := get(t, ts.URL+"/v1/jobs/"+st.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("report status %d", code)
	}
	var sum struct {
		TraceID   string            `json:"traceId"`
		Scenarios []json.RawMessage `json:"scenarios"`
		Trace     json.RawMessage   `json:"trace"`
		Artifact  *struct {
			Path string `json:"path"`
		} `json:"artifact"`
	}
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.TraceID != "trace-abc" || len(sum.Scenarios) == 0 {
		t.Errorf("report: traceId=%q scenarios=%d", sum.TraceID, len(sum.Scenarios))
	}
	if sum.Trace != nil {
		t.Error("default report must strip the trace block (CLI parity)")
	}
	if sum.Artifact == nil || sum.Artifact.Path != "cold" {
		t.Errorf("report artifact = %+v", sum.Artifact)
	}

	// ?full=1 keeps the trace and metrics blocks.
	code, body = get(t, ts.URL+"/v1/jobs/"+st.ID+"/report?full=1")
	if code != http.StatusOK {
		t.Fatalf("full report status %d", code)
	}
	if !bytes.Contains(body, []byte(`"trace"`)) || !bytes.Contains(body, []byte(`"metrics"`)) {
		t.Error("full report lacks trace/metrics blocks")
	}

	// Text report is the CLI's text deliverable.
	code, body = get(t, ts.URL+"/v1/jobs/"+st.ID+"/report?format=text")
	if code != http.StatusOK {
		t.Fatalf("text report status %d", code)
	}
	for _, want := range []string{"SYSTEM", "HAZARD IDENTIFICATION", "== Risk-prioritized scenarios =="} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("text report lacks %q", want)
		}
	}
}

func TestTracePropagationAndExport(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// The response echoes an inbound X-Trace-Id on every route.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Trace-Id", "fixed-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "fixed-id-1" {
		t.Errorf("echoed trace ID = %q", got)
	}

	// Without one, the server mints a trace ID.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("no minted trace ID")
	}

	st := submit(t, ts, "fixed-id-2", "acme")
	wait(t, ts, st.ID)

	code, body := get(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace status %d", code)
	}
	// The export is a valid Chrome trace carrying the correlation ID in
	// the root span's args.
	if _, err := obs.ValidateChromeTrace(bytes.NewReader(body)); err != nil {
		t.Fatalf("trace export invalid: %v", err)
	}
	var envelope struct {
		TraceEvents []obs.ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range envelope.TraceEvents {
		if args, ok := ev.Args.(map[string]any); ok {
			if args["traceId"] == "fixed-id-2" && args["tenant"] == "acme" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no event carries traceId/tenant args")
	}
}

// TestMultiTenantBurst drives concurrent submissions from distinct
// tenants through the shared cache and governor: the first wave resolves
// cold per tenant, the repeat wave warm — tenants never share entries.
func TestMultiTenantBurst(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) {
		o.JobWorkers = 4
	})
	tenants := []string{"acme", "globex", "initech"}

	runWave := func(wave string, wantPath string) {
		var wg sync.WaitGroup
		ids := make([]string, len(tenants))
		for i, tenant := range tenants {
			wg.Add(1)
			go func(i int, tenant string) {
				defer wg.Done()
				st := submit(t, ts, fmt.Sprintf("%s-%s", wave, tenant), tenant)
				ids[i] = st.ID
			}(i, tenant)
		}
		wg.Wait()
		for i, id := range ids {
			st := wait(t, ts, id)
			if st.State != JobDone {
				t.Fatalf("wave %s tenant %s: %+v", wave, tenants[i], st)
			}
			if st.ArtifactPath != wantPath {
				t.Errorf("wave %s tenant %s: artifact %q, want %q",
					wave, tenants[i], st.ArtifactPath, wantPath)
			}
		}
	}

	// Wave 1: every tenant's first run compiles from scratch — the cache
	// is partitioned per tenant, so no tenant rides another's entry.
	runWave("w1", "cold")
	// Wave 2: repeat submissions hit each tenant's own warm entry.
	runWave("w2", "warm")
}

func TestReadyzFlipsOnSLOBreach(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	var mu sync.Mutex
	s, ts := newTestServer(t, func(o *Options) {
		o.SLOThreshold = 2
		o.SLOWindow = time.Hour
		o.Clock = func() time.Time { mu.Lock(); defer mu.Unlock(); return clk.t }
	})

	code, _ := get(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("fresh readyz = %d", code)
	}

	s.SLO().Record(EventPanic, "t1", "", "boom")
	s.SLO().Record(EventServerError, "t2", "", "bang")

	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("breached readyz = %d: %s", code, body)
	}
	code, body = get(t, ts.URL+"/v1/slo")
	if code != http.StatusOK {
		t.Fatalf("slo status %d", code)
	}
	var rep SLOReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Compliant || rep.WindowCount != 2 || len(rep.Recent) != 2 {
		t.Errorf("slo report = %+v", rep)
	}
	if rep.ByClass[EventPanic] != 1 || rep.ByClass[EventServerError] != 1 {
		t.Errorf("byClass = %v", rep.ByClass)
	}

	// Events age out; readiness recovers on its own.
	mu.Lock()
	clk.advance(2 * time.Hour)
	mu.Unlock()
	code, _ = get(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("recovered readyz = %d", code)
	}
	// Liveness never flips on SLO state.
	code, _ = get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
}

// TestMetricsExposition scrapes /metrics after a finished job and checks
// the Prometheus text format: counters for the HTTP layer and the job
// pipeline, histogram series with the le label, and quantile gauges.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submit(t, ts, "", "")
	wait(t, ts, st.ID)

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"cpsrisk_http_requests_assess ",
		"cpsrisk_jobs_submitted 1",
		"cpsrisk_jobs_completed 1",
		"cpsrisk_jobs_artifact_cold 1",
		"cpsrisk_jobs_duration_us_bucket{le=",
		"cpsrisk_jobs_duration_us_quantile{quantile=\"0.95\"}",
		"cpsrisk_artifact_cache_len 1",
		"cpsrisk_governor_capacity ",
		"cpsrisk_slo_window_events 0",
		// Per-job pipeline metrics merged into the server registry.
		"cpsrisk_sweep_scenarios ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestAssessRejections(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/assess", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}

	// Valid model without critical components: no requirements derivable.
	resp, err = http.Post(ts.URL+"/v1/assess", "application/json",
		strings.NewReader(`{"components":[{"id":"a","type":"plc"}],"connections":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("requirement-free model: status %d", resp.StatusCode)
	}

	// Unknown job.
	code, _ := get(t, ts.URL+"/v1/jobs/zzz")
	if code != http.StatusNotFound {
		t.Errorf("unknown job: status %d", code)
	}
	code, _ = get(t, ts.URL+"/v1/jobs/zzz/report")
	if code != http.StatusNotFound {
		t.Errorf("unknown job report: status %d", code)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s, err := New(Options{Types: loadTypes(t), MaxCardinality: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	st := submit(t, ts, "", "")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job finished before the drain returned.
	final := wait(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("drained job = %+v", final)
	}
	// New submissions are refused once draining.
	if _, code := trySubmit(t, ts, "", ""); code != http.StatusServiceUnavailable {
		t.Errorf("submit while drained: status %d", code)
	}
	code, _ := get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("readyz while drained: status %d", code)
	}
}
