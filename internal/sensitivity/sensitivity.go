// Package sensitivity implements qualitative sensitivity analysis (paper
// §V-A and §II-A): given uncertain qualitative factors with candidate
// value ranges, it examines how the analysis output varies over them,
// classifies each factor as sensitive or insensitive, ranks factors
// tornado-style by output spread, and enumerates the joint solution space.
// The framework uses it both to guide expert estimation ("if a factor of
// the risk is sensitive, further evaluation is required") and to highlight
// the critical modeling decisions during parametrization.
package sensitivity

import (
	"fmt"
	"sort"

	"cpsrisk/internal/qual"
)

// Factor is an uncertain input with its candidate levels (the uncertainty
// range, e.g. LM ∈ {VL, L}).
type Factor struct {
	Name   string
	Levels []qual.Level
}

// Assignment maps factor names to levels.
type Assignment map[string]qual.Level

// Output is the analyzed function: a qualitative output over a complete
// assignment.
type Output func(Assignment) qual.Level

// FactorResult is the one-at-a-time sensitivity of a single factor.
type FactorResult struct {
	Name string
	// Outputs are the distinct outputs observed while the factor sweeps
	// its range (others fixed at the base assignment), sorted ascending.
	Outputs []qual.Level
	// Spread is max(Outputs) - min(Outputs) in levels.
	Spread int
	// Sensitive is true when more than one distinct output occurs.
	Sensitive bool
}

// Analyze performs one-at-a-time sensitivity analysis over the factors,
// holding all other inputs at base. Factors must be non-empty and have at
// least one level; base must cover every factor the output reads.
func Analyze(base Assignment, factors []Factor, f Output) ([]FactorResult, error) {
	out := make([]FactorResult, 0, len(factors))
	for _, factor := range factors {
		if factor.Name == "" || len(factor.Levels) == 0 {
			return nil, fmt.Errorf("sensitivity: factor %q has no levels", factor.Name)
		}
		seen := map[qual.Level]bool{}
		for _, level := range factor.Levels {
			trial := cloneAssignment(base)
			trial[factor.Name] = level
			seen[f(trial)] = true
		}
		levels := make([]qual.Level, 0, len(seen))
		for l := range seen {
			levels = append(levels, l)
		}
		sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
		fr := FactorResult{
			Name:      factor.Name,
			Outputs:   levels,
			Sensitive: len(levels) > 1,
		}
		if len(levels) > 0 {
			fr.Spread = int(levels[len(levels)-1] - levels[0])
		}
		out = append(out, fr)
	}
	return out, nil
}

// Tornado ranks factor results by spread descending (ties by name) — the
// classic tornado-diagram ordering highlighting the critical parameters.
func Tornado(results []FactorResult) []FactorResult {
	out := append([]FactorResult(nil), results...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Spread != out[j].Spread {
			return out[i].Spread > out[j].Spread
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// JointResult is the exhaustive joint analysis over all uncertain factors.
type JointResult struct {
	// Outputs are the distinct outputs over the whole cartesian space.
	Outputs []qual.Level
	// Combinations is the size of the explored space.
	Combinations int
	// WorstCase / BestCase are the extreme outputs.
	WorstCase qual.Level
	BestCase  qual.Level
}

// Joint exhaustively enumerates the cartesian product of the factors'
// ranges (the "estimation of the solution space" the paper attributes to
// QR, §II-B) and reports the reachable outputs.
func Joint(base Assignment, factors []Factor, f Output) (JointResult, error) {
	for _, factor := range factors {
		if factor.Name == "" || len(factor.Levels) == 0 {
			return JointResult{}, fmt.Errorf("sensitivity: factor %q has no levels", factor.Name)
		}
	}
	seen := map[qual.Level]bool{}
	combos := 0
	trial := cloneAssignment(base)
	var rec func(i int)
	rec = func(i int) {
		if i == len(factors) {
			combos++
			seen[f(trial)] = true
			return
		}
		saved, had := trial[factors[i].Name]
		for _, level := range factors[i].Levels {
			trial[factors[i].Name] = level
			rec(i + 1)
		}
		if had {
			trial[factors[i].Name] = saved
		} else {
			delete(trial, factors[i].Name)
		}
	}
	rec(0)
	levels := make([]qual.Level, 0, len(seen))
	for l := range seen {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	res := JointResult{Outputs: levels, Combinations: combos}
	if len(levels) > 0 {
		res.BestCase = levels[0]
		res.WorstCase = levels[len(levels)-1]
	}
	return res, nil
}

func cloneAssignment(a Assignment) Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}
