package core

// Artifact-cache resolution for the pipeline: configuration hashing,
// the delta-soundness closure, and the reuse oracle that answers
// unaffected scenario rows from a cached parent analysis.
//
// A run with Config.ArtifactCache set resolves to one of three paths:
//
//   - warm:  an entry exists for (model hash, config hash) and is
//     complete — the stored engine and analysis are returned as-is and
//     no EPA or solver work runs at all.
//   - delta: a complete entry exists under the same config hash whose
//     model diff touches at most MaxDeltaTouched components — the sweep
//     runs with a reuse oracle that answers every scenario provably
//     unaffected by the edit from the parent's rows, so only the
//     invalidated ranks execute. On the ASP path a behaviorally empty
//     diff instead migrates the parent's grounded solver session.
//   - cold:  anything else. The decision is stamped into
//     Assessment.Artifact either way.
//
// Delta soundness: faults are the only error sources in EPA, so a
// scenario's violation vector depends only on the behaviors and edges
// its errors can traverse — the forward closure from its activation
// components. A scenario is answered from the parent iff none of its
// activation components can reach an edited part of the model (signal
// edges directed, quantity edges bidirectional, over the union of the
// old and new graphs), and its activation set was analyzed by the
// parent. Metadata-only component edits (attrs, layer, display name)
// seed nothing: they are invisible to the EPA engine, and risk scoring
// is recomputed from the fresh candidate set either way.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/sysmodel"
)

// MaxDeltaTouched is the K gate for incremental re-assessment: a diff
// touching more components than this falls back to a cold run — with a
// wide edit the affected closure usually swallows the scenario space
// anyway, and diffing cost scales with the touched set.
const MaxDeltaTouched = 8

// ArtifactInfo records how the artifact cache resolved a run.
type ArtifactInfo struct {
	// Path is the resolution taken: "cold" (full compile and sweep),
	// "warm" (exact hit, everything reused), or "delta" (incremental
	// re-assessment against a cached parent).
	Path string
	// ModelHash is the canonical model content hash, in hex.
	ModelHash string
	// Touched is the number of components the edit touched (delta only).
	Touched int
	// Affected is the size of the invalidated component closure — the
	// components whose scenarios had to re-execute (delta only).
	Affected int
}

// cfgHash digests every assessment-relevant configuration input outside
// the model itself, so an artifact key collision implies an identical
// report. Libraries (types, behaviors, KB) are identified by pointer —
// sound because cached entries pin them (artifact.Entry.Pins). Inputs
// that change only wall-clock or effort statistics — Parallelism, the
// timeout, tracing, cache/checkpoint directories — are deliberately
// excluded; deterministic caps that change the report's content are in.
func cfgHash(cfg Config) uint64 {
	h := fnv.New64a()
	str := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	num := func(v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	str(fmt.Sprintf("%p/%p/%p", cfg.Types, cfg.Behaviors, cfg.KB))
	// Tenant scoping: folding the tenant into the configuration hash
	// partitions the artifact cache per tenant — warm hits, delta parents,
	// and session migration never cross tenants sharing one cache.
	str("tenant")
	str(cfg.Tenant)
	str("reqs")
	for _, r := range cfg.Requirements {
		str(r.ID)
		str(r.Description)
		num(int64(r.Severity))
		if r.Condition != nil {
			str(r.Condition.String())
		}
	}
	str("sources")
	str(fmt.Sprintf("%+v", cfg.MutationSources))
	str("extra")
	for _, m := range cfg.ExtraMutations {
		str(m.Activation.String())
		num(int64(m.Likelihood))
		for _, s := range m.Sources {
			str(s)
		}
	}
	str("mitigations")
	ids := make([]string, 0, len(cfg.ActiveMitigations))
	for id, on := range cfg.ActiveMitigations {
		if on {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		str(id)
	}
	str("bounds")
	num(int64(cfg.MaxCardinality))
	if cfg.UseASP {
		num(1)
	} else {
		num(0)
	}
	if cfg.SolverDeterministic {
		num(1)
	} else {
		num(0)
	}
	num(int64(cfg.SolverWorkers))
	num(int64(cfg.ShardIndex))
	num(int64(cfg.ShardCount))
	num(cfg.Resources.MaxDecisions)
	num(cfg.Resources.MaxConflicts)
	num(int64(cfg.Resources.MaxGroundRules))
	num(int64(cfg.Resources.MaxScenarios))
	return h.Sum64()
}

// affectedComponents computes the invalidated closure of a delta: the
// edited components (behaviorally — metadata edits excluded) plus the
// endpoints of changed connections, plus every component that can reach
// one of those through the propagation graph. Signal flows carry errors
// From -> To; quantity flows are undirected. The closure runs over the
// union of the parent's and the child's connection lists so both
// removed and added edges invalidate their upstream cones.
func affectedComponents(parent, child *sysmodel.Model, d *sysmodel.Delta) map[string]bool {
	seeds := map[string]bool{}
	for _, ids := range [][]string{d.Added, d.Removed, d.ChangedBehavior} {
		for _, id := range ids {
			seeds[id] = true
		}
	}
	changed := make(map[string]bool, len(d.ConnsChanged))
	for _, k := range d.ConnsChanged {
		changed[k] = true
	}
	// back[x] lists the components whose errors flow directly into x —
	// walking back from a seed enumerates everything that can reach it.
	back := map[string][]string{}
	scan := func(conns []sysmodel.Connection) {
		for _, c := range conns {
			from, to := c.From.Component, c.To.Component
			if changed[c.Key()] {
				seeds[from] = true
				seeds[to] = true
			}
			back[to] = append(back[to], from)
			if c.Flow == sysmodel.QuantityFlow {
				back[from] = append(back[from], to)
			}
		}
	}
	scan(parent.Connections)
	scan(child.Connections)

	affected := make(map[string]bool, len(seeds))
	queue := make([]string, 0, len(seeds))
	for id := range seeds {
		affected[id] = true
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, pred := range back[id] {
			if !affected[pred] {
				affected[pred] = true
				queue = append(queue, pred)
			}
		}
	}
	return affected
}

// deltaOracle builds the sweep's reuse oracle from a parent analysis: a
// scenario is answered iff none of its activations sits in the affected
// closure and the parent analyzed the identical activation set. The
// returned function is read-only and safe for concurrent workers.
func deltaOracle(parent *hazard.Analysis, affected map[string]bool) func(epa.Scenario) ([]string, bool) {
	rows := make(map[string][]string, len(parent.Scenarios))
	for _, s := range parent.Scenarios {
		rows[s.Scenario.Key()] = s.Violated
	}
	return func(sc epa.Scenario) ([]string, bool) {
		for _, a := range sc {
			if affected[a.Component] {
				return nil, false
			}
		}
		v, ok := rows[sc.Key()]
		return v, ok
	}
}

// behaviorallyEmpty reports a delta the compiled EPA engine and the ASP
// encoding cannot observe: only component metadata changed.
func behaviorallyEmpty(d *sysmodel.Delta) bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 &&
		len(d.ChangedBehavior) == 0 && len(d.ConnsChanged) == 0 &&
		!d.RequirementsChanged
}

// sameActivations reports whether two candidate sets activate the same
// faults in the same order — the condition under which the ASP encoding
// (choice rules over the candidate list) is textually identical and a
// grounded session can migrate between entries. Likelihoods may differ:
// they score risk after solving and never enter the encoding.
func sameActivations(a, b []faults.Mutation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Activation != b[i].Activation {
			return false
		}
	}
	return true
}

// sameScoredMutations reports whether two candidate sets are identical
// in activation, order, and likelihood — the condition under which a
// parent's finished analysis rows carry the exact risk scores the child
// run would recompute. Stricter than sameActivations: likelihood changes
// (a new vulnerability match after a version-attr edit, say) keep the
// violation vectors valid but invalidate the scoring.
func sameScoredMutations(a, b []faults.Mutation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Activation != b[i].Activation || a[i].Likelihood != b[i].Likelihood {
			return false
		}
	}
	return true
}

// bump increments a named counter when a registry is configured.
func bump(reg *obs.Registry, name string) {
	if reg != nil {
		reg.Counter(name).Add(1)
	}
}
