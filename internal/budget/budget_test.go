package budget

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Err("any"); err != nil {
		t.Fatalf("nil budget Err = %v", err)
	}
	if got := b.Limits(); !got.IsZero() {
		t.Fatalf("nil budget limits = %+v", got)
	}
	if b.Context() == nil {
		t.Fatal("nil budget context must not be nil")
	}
}

func TestErrOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(ctx, Limits{})
	err := b.Err("solve")
	if err == nil {
		t.Fatal("expected error for cancelled context")
	}
	e, ok := Exhausted(err)
	if !ok {
		t.Fatalf("not an ExhaustedError: %v", err)
	}
	if e.Stage != "solve" || e.Reason != ReasonCancelled {
		t.Errorf("e = %+v", e)
	}
}

func TestWithTimeoutInstallsDeadline(t *testing.T) {
	b, cancel := WithTimeout(context.Background(), Limits{Timeout: time.Nanosecond})
	defer cancel()
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		if b.Err("hazard") != nil {
			break
		}
	}
	err := b.Err("hazard")
	if e, ok := Exhausted(err); !ok || e.Reason != ReasonDeadline {
		t.Fatalf("err = %v", err)
	}
}

func TestWithTimeoutZeroIsUnbounded(t *testing.T) {
	b, cancel := WithTimeout(context.Background(), Limits{})
	defer cancel()
	if err := b.Err("x"); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestExhaustedErrorMessage(t *testing.T) {
	e := &ExhaustedError{Stage: "ground", Reason: ReasonGroundRules, Detail: "10000 rules"}
	msg := e.Error()
	for _, want := range []string{"ground", ReasonGroundRules, "10000 rules"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q misses %q", msg, want)
		}
	}
	if _, ok := Exhausted(fmt.Errorf("wrap: %w", e)); !ok {
		t.Error("Exhausted must unwrap wrapped errors")
	}
	if _, ok := Exhausted(fmt.Errorf("plain")); ok {
		t.Error("plain error must not match")
	}
}

func TestDegradationReport(t *testing.T) {
	d := &Degradation{}
	if d.Degraded() {
		t.Fatal("fresh report must not be degraded")
	}
	if d.Summary() != "" {
		t.Fatalf("summary = %q", d.Summary())
	}
	d.Add("hazard", ReasonDeadline, "completed cardinality <= 1")
	d.Record(Truncation{Stage: "solve", Reason: ReasonDecisions})
	if !d.RecordError(&ExhaustedError{Stage: "ground", Reason: ReasonGroundRules}) {
		t.Fatal("RecordError must accept ExhaustedError")
	}
	if d.RecordError(fmt.Errorf("not a budget error")) {
		t.Fatal("RecordError must reject other errors")
	}
	if len(d.Truncations) != 3 {
		t.Fatalf("truncations = %+v", d.Truncations)
	}
	sum := d.Summary()
	for _, want := range []string{"hazard", "deadline", "cardinality", "solve", "ground"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q misses %q", sum, want)
		}
	}
	if lines := strings.Split(sum, "\n"); len(lines) != 3 {
		t.Errorf("summary lines = %d", len(lines))
	}
}

func TestDegradedNilReceiver(t *testing.T) {
	var d *Degradation
	if d.Degraded() {
		t.Fatal("nil report must not be degraded")
	}
	if d.Summary() != "" {
		t.Fatal("nil summary must be empty")
	}
}
