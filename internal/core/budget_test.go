package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/cegar"
)

func TestRunCtxCancelledContextDegradesInsteadOfHanging(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := caseStudyConfig()
	cfg.MaxCardinality = -1
	start := time.Now()
	a, err := RunCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancelled run did not return promptly")
	}
	if a.Degradation == nil || !a.Degradation.Degraded() {
		t.Fatalf("degradation = %+v", a.Degradation)
	}
	reasonSeen := false
	for _, tr := range a.Degradation.Truncations {
		if tr.Reason == budget.ReasonCancelled {
			reasonSeen = true
		}
	}
	if !reasonSeen {
		t.Errorf("no cancellation truncation: %s", a.Degradation.Summary())
	}
	if a.Analysis == nil {
		t.Fatal("degraded run must still return an analysis")
	}
}

func TestRunCtxScenarioCapKeepsCompletedCardinality(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.MaxCardinality = -1
	// 4 candidates: 1 + 4 + 6 + 4 + 1 = 16 scenarios; cap at 7 lands
	// inside cardinality 2 -> fall back to cardinality <= 1 (5 scenarios).
	cfg.Resources = budget.Limits{MaxScenarios: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Degradation.Degraded() {
		t.Fatal("expected degradation")
	}
	if len(a.Analysis.Scenarios) != 5 {
		t.Errorf("scenarios = %d, want 5", len(a.Analysis.Scenarios))
	}
	if len(a.Ranked) != len(a.Analysis.Scenarios) {
		t.Error("ranking must cover the partial result")
	}
	if !strings.Contains(a.Degradation.Summary(), budget.ReasonScenarios) {
		t.Errorf("summary = %q", a.Degradation.Summary())
	}
}

func TestRunCtxASPFallsBackToNativeEngine(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.UseASP = true
	cfg.Resources = budget.Limits{MaxGroundRules: 10}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fallback := false
	for _, tr := range a.Degradation.Truncations {
		if tr.Stage == "hazard-asp" && tr.Reason == budget.ReasonGroundRules {
			fallback = true
		}
	}
	if !fallback {
		t.Fatalf("no ASP fallback recorded: %s", a.Degradation.Summary())
	}
	// The native engine completed the identification exactly.
	if a.Analysis == nil || a.Analysis.Truncation != nil {
		t.Errorf("analysis = %+v", a.Analysis)
	}
	if a.Analysis.SolverStats != nil {
		t.Error("native fallback must not carry ASP solver stats")
	}
	if len(a.Analysis.Scenarios) != 11 {
		t.Errorf("scenarios = %d", len(a.Analysis.Scenarios))
	}
}

func TestRunCtxExhaustedBudgetSkipsOptimization(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := caseStudyConfig()
	cfg.Optimize = true
	cfg.Budget = -1
	a, err := RunCtx(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Plan.Selected) != 0 {
		t.Errorf("optimization ran on an exhausted budget: %+v", a.Plan)
	}
	skipped := false
	for _, tr := range a.Degradation.Truncations {
		if tr.Stage == "optimize" {
			skipped = true
		}
	}
	if !skipped {
		t.Errorf("no optimize truncation: %s", a.Degradation.Summary())
	}
}

func TestRunCompleteRunReportsNoDegradation(t *testing.T) {
	a, err := Run(caseStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Degradation == nil {
		t.Fatal("Degradation must always be non-nil")
	}
	if a.Degradation.Degraded() {
		t.Errorf("unexpected degradation: %s", a.Degradation.Summary())
	}
}

// panickyOracle stands in for user-supplied validation code that blows up.
type panickyOracle struct{}

func (panickyOracle) Check(f cegar.Finding) (cegar.Verdict, error) {
	panic("oracle exploded on " + f.String())
}

func TestRunPanicInStageBecomesError(t *testing.T) {
	cfg := caseStudyConfig()
	cfg.Oracle = panickyOracle{}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("panic must surface as an error")
	}
	if !strings.Contains(err.Error(), `stage "validate" panicked`) {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "oracle exploded") {
		t.Errorf("err = %v", err)
	}
}
