// Quickstart: model a three-component IT/OT chain, declare a requirement,
// and run the assessment pipeline — the smallest end-to-end use of the
// library.
package main

import (
	"fmt"
	"os"

	"cpsrisk/internal/core"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/report"
	"cpsrisk/internal/sysmodel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Component types: a sensor feeding a controller driving a pump.
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "sensor",
		Ports: []sysmodel.PortSpec{
			{Name: "reading", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "no_signal", Likelihood: "L"}},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "controller",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "crash", Likelihood: "VL"}},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "pump",
		Ports: []sysmodel.PortSpec{
			{Name: "cmd", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "stuck", Likelihood: "L"}},
	})

	// 2. System model: sensor -> controller -> pump.
	m := sysmodel.NewModel("quickstart")
	m.MustAddComponent(&sysmodel.Component{ID: "s1", Type: "sensor"})
	m.MustAddComponent(&sysmodel.Component{ID: "c1", Type: "controller"})
	m.MustAddComponent(&sysmodel.Component{ID: "p1", Type: "pump"})
	m.Connect("s1", "reading", "c1", "in", sysmodel.SignalFlow)
	m.Connect("c1", "out", "p1", "cmd", sysmodel.SignalFlow)

	// 3. Requirement: the pump must never receive erroneous or missing
	// commands (conservative default behaviours propagate everything).
	reqs := []hazard.Requirement{{
		ID:          "R1",
		Description: "pump command integrity",
		Severity:    qual.High,
		Condition: hazard.Any(
			hazard.Port("p1", "cmd", epa.ErrValue),
			hazard.Port("p1", "cmd", epa.ErrOmission),
			hazard.Fault("p1", "stuck"),
		),
	}}

	// 4. Run the pipeline: spontaneous fault modes, scenarios up to two
	// simultaneous faults.
	a, err := core.Run(core.Config{
		Model:           m,
		Types:           types,
		Requirements:    reqs,
		MutationSources: faults.Options{IncludeSpontaneous: true},
		MaxCardinality:  2,
	})
	if err != nil {
		return err
	}

	fmt.Printf("candidates: %d, scenarios: %d, hazardous: %d\n\n",
		len(a.Candidates), len(a.Analysis.Scenarios), len(a.Analysis.Hazards()))
	fmt.Println(report.Ranked(a.Ranked))

	// 5. Minimal cut sets: the smallest fault combinations violating R1.
	fmt.Println("minimal cuts for R1:")
	for _, cut := range a.Analysis.MinimalCuts("R1") {
		fmt.Printf("  %s\n", cut.Scenario.Key())
	}
	return nil
}
