// Package risk implements the qualitative risk quantization of the
// framework (paper §IV-B): the Open FAIR O-RA 5×5 risk matrix (paper
// Table I), the O-RA risk-attribute derivation tree (paper Fig. 2), the
// IEC 61508 qualitative hazard matrix, and scenario risk scoring /
// prioritization used on the hazard-identification output.
package risk

import (
	"fmt"

	"cpsrisk/internal/qual"
)

// oraMatrix is paper Table I verbatim: rows indexed by Loss Magnitude
// (VL..VH), columns by Loss Event Frequency (VL..VH).
var oraMatrix = [5][5]qual.Level{
	// LEF:      VL             L              M              H              VH
	/* LM VL */ {qual.VeryLow, qual.VeryLow, qual.VeryLow, qual.Low, qual.Medium},
	/* LM L  */ {qual.VeryLow, qual.VeryLow, qual.Low, qual.Medium, qual.High},
	/* LM M  */ {qual.VeryLow, qual.Low, qual.Medium, qual.High, qual.VeryHigh},
	/* LM H  */ {qual.Low, qual.Medium, qual.High, qual.VeryHigh, qual.VeryHigh},
	/* LM VH */ {qual.Medium, qual.High, qual.VeryHigh, qual.VeryHigh, qual.VeryHigh},
}

// ORARisk evaluates the O-RA risk matrix (paper Table I): the qualitative
// risk of a Loss Magnitude / Loss Event Frequency pair.
func ORARisk(lm, lef qual.Level) qual.Level {
	s := qual.FiveLevel()
	return oraMatrix[s.Clamp(lm)][s.Clamp(lef)]
}

// Matrix returns a copy of the O-RA matrix, LM-major. Used by the Table I
// regeneration harness.
func Matrix() [5][5]qual.Level { return oraMatrix }

// Attributes are the leaf inputs of the O-RA risk-attribute tree (paper
// Fig. 2). Each is a level on the five-point scale.
type Attributes struct {
	// ContactFrequency: how often threat agents touch the asset.
	ContactFrequency qual.Level
	// ProbabilityOfAction: how likely contact turns into an attempt.
	ProbabilityOfAction qual.Level
	// ThreatCapability: attacker skill and resources.
	ThreatCapability qual.Level
	// ResistanceStrength: the asset's ability to resist the attempt.
	ResistanceStrength qual.Level
	// PrimaryLoss: direct loss magnitude of the event.
	PrimaryLoss qual.Level
	// SecondaryLossEventFrequency and SecondaryLossMagnitude capture the
	// secondary-stakeholder branch of the tree.
	SecondaryLossEventFrequency qual.Level
	SecondaryLossMagnitude      qual.Level
}

// Derivation records the full derivation of a risk value through the
// attribute tree — every intermediate node, for the explainability the
// paper requires of SME-facing results (§II-A).
type Derivation struct {
	Input Attributes

	ThreatEventFrequency qual.Level // TEF = contact × action
	Vulnerability        qual.Level // V = capability vs resistance
	LossEventFrequency   qual.Level // LEF = TEF × V
	SecondaryRisk        qual.Level // from the secondary branch
	LossMagnitude        qual.Level // LM = primary ⊔ secondary
	Risk                 qual.Level // Table I (LM, LEF)
}

// Derive evaluates the O-RA attribute tree (Fig. 2):
//
//	TEF  = combine(ContactFrequency, ProbabilityOfAction)
//	V    = susceptibility(ThreatCapability vs ResistanceStrength)
//	LEF  = combine(TEF, V)
//	SecR = combine(SecondaryLM, SecondaryLEF)
//	LM   = max(PrimaryLoss, SecR)
//	Risk = Table I (LM, LEF)
//
// "combine" is the Table I matrix reused as the generic qualitative
// AND-combination of a magnitude-like and a frequency-like factor.
func Derive(a Attributes) Derivation {
	d := Derivation{Input: a}
	d.ThreatEventFrequency = ORARisk(a.ProbabilityOfAction, a.ContactFrequency)
	d.Vulnerability = Susceptibility(a.ThreatCapability, a.ResistanceStrength)
	d.LossEventFrequency = ORARisk(d.Vulnerability, d.ThreatEventFrequency)
	d.SecondaryRisk = ORARisk(a.SecondaryLossMagnitude, a.SecondaryLossEventFrequency)
	d.LossMagnitude = qual.FiveLevel().MaxOf(a.PrimaryLoss, d.SecondaryRisk)
	d.Risk = ORARisk(d.LossMagnitude, d.LossEventFrequency)
	return d
}

// Susceptibility maps the threat-capability / resistance-strength duel to
// a vulnerability level: equal strength is Medium; each level of attacker
// advantage raises it one step, each level of defender advantage lowers it.
func Susceptibility(threatCapability, resistanceStrength qual.Level) qual.Level {
	s := qual.FiveLevel()
	diff := int(s.Clamp(threatCapability)) - int(s.Clamp(resistanceStrength))
	return s.Add(qual.Medium, diff)
}

// String renders the derivation as an explanation chain.
func (d Derivation) String() string {
	s := qual.FiveLevel()
	return fmt.Sprintf(
		"TEF(%s×%s)=%s  V(%s vs %s)=%s  LEF=%s  SecRisk=%s  LM=%s  Risk=%s",
		s.Label(d.Input.ContactFrequency), s.Label(d.Input.ProbabilityOfAction),
		s.Label(d.ThreatEventFrequency),
		s.Label(d.Input.ThreatCapability), s.Label(d.Input.ResistanceStrength),
		s.Label(d.Vulnerability),
		s.Label(d.LossEventFrequency),
		s.Label(d.SecondaryRisk),
		s.Label(d.LossMagnitude),
		s.Label(d.Risk))
}
