package solver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/logic"
)

func parseSource(t *testing.T, src string) (*logic.Program, error) {
	t.Helper()
	return logic.Parse(src)
}

// pigeonhole builds the classic UNSAT pigeonhole program: pigeons+1 birds
// into pigeons holes. Chronological backtracking needs exponential effort
// to refute it, which makes it the canonical budget-interruption workload.
func pigeonhole(holes int) string {
	return fmt.Sprintf(`
		hole(1..%d). pigeon(1..%d).
		1 { at(P,H) : hole(H) } 1 :- pigeon(P).
		:- at(P1,H), at(P2,H), P1 < P2.
	`, holes, holes+1)
}

func TestSolveInterruptedByDecisionCap(t *testing.T) {
	bud := budget.New(context.Background(), budget.Limits{MaxDecisions: 10})
	res, err := SolveSource(pigeonhole(7), Options{Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatalf("expected interruption, got %+v", res)
	}
	if res.InterruptReason != budget.ReasonDecisions {
		t.Errorf("reason = %q", res.InterruptReason)
	}
	if res.Stats.Decisions < 10 {
		t.Errorf("partial stats missing: %+v", res.Stats)
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("duration not populated: %+v", res.Stats)
	}
}

func TestSolveInterruptedByConflictCap(t *testing.T) {
	bud := budget.New(context.Background(), budget.Limits{MaxConflicts: 5})
	res, err := SolveSource(pigeonhole(7), Options{Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.InterruptReason != budget.ReasonConflicts {
		t.Fatalf("res = %+v", res)
	}
}

func TestSolveInterruptedByCancelledContext(t *testing.T) {
	prog, err := parseSource(t, pigeonhole(9))
	if err != nil {
		t.Fatal(err)
	}
	gp, err := Ground(prog)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bud := budget.New(ctx, budget.Limits{})
	start := time.Now()
	res, err := Solve(gp, Options{Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled solve took %v", elapsed)
	}
	if !res.Interrupted || res.InterruptReason != budget.ReasonCancelled {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Models) != 0 {
		t.Errorf("cancelled-before-start solve returned models: %d", len(res.Models))
	}
}

func TestSolveEnumerationKeepsPartialModels(t *testing.T) {
	// A satisfiable choice program with many models: a small decision cap
	// interrupts enumeration but keeps whatever was found first.
	src := `item(1..8). { pick(I) : item(I) }.`
	bud := budget.New(context.Background(), budget.Limits{MaxDecisions: 30})
	res, err := SolveSource(src, Options{Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatalf("expected interruption, got %d models", len(res.Models))
	}
	if len(res.Models) == 0 {
		t.Fatal("no partial models preserved")
	}
	if !res.Satisfiable {
		t.Error("partial models must mark the result satisfiable")
	}
}

func TestSolveOptimizeInterruptedReturnsIncumbent(t *testing.T) {
	// Optimization over the pick-set; interrupting branch-and-bound must
	// return the best (possibly non-optimal) model found so far.
	src := `
		item(1..6). cost(1,3). cost(2,1). cost(3,4). cost(4,1). cost(5,5). cost(6,2).
		1 { pick(I) : item(I) }.
		#minimize { C@1,I : pick(I), cost(I,C) }.
	`
	bud := budget.New(context.Background(), budget.Limits{MaxDecisions: 8})
	res, err := SolveSource(src, Options{Budget: bud, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Skip("solver found the optimum inside the cap; nothing to assert")
	}
	if res.Optimal {
		t.Error("interrupted optimization must not claim optimality")
	}
}

func TestGroundBudgetRuleCap(t *testing.T) {
	// num(1..40) x num(1..40) pairs: 1600+ instantiations of p/2.
	src := `
		num(1..40).
		p(X,Y) :- num(X), num(Y).
	`
	bud := budget.New(context.Background(), budget.Limits{MaxGroundRules: 100})
	_, err := SolveSource(src, Options{Budget: bud})
	ex, ok := budget.Exhausted(err)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if ex.Stage != "ground" || ex.Reason != budget.ReasonGroundRules {
		t.Errorf("ex = %+v", ex)
	}
}

func TestGroundBudgetCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bud := budget.New(ctx, budget.Limits{})
	src := `num(1..100). p(X,Y) :- num(X), num(Y).`
	_, err := SolveSource(src, Options{Budget: bud})
	if ex, ok := budget.Exhausted(err); !ok || ex.Stage != "ground" {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveUnbudgetedPopulatesNewStats(t *testing.T) {
	res, err := SolveSource(`a :- not b. b :- not a.`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("unbudgeted solve must not be interrupted")
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("duration = %v", res.Stats.Duration)
	}
	if res.Stats.Restarts < 0 {
		t.Errorf("restarts = %d", res.Stats.Restarts)
	}
}
