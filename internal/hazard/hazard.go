package hazard

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/risk"
	"cpsrisk/internal/solver"
)

// Requirement pairs a system requirement with its qualitative violation
// condition over the EPA outcome.
type Requirement struct {
	ID          string
	Description string
	Severity    qual.Level
	Condition   Condition
}

// ScenarioResult is the violation vector of one analyzed scenario — one
// row of the paper's Table II.
type ScenarioResult struct {
	// ID is S<n> in enumeration order (S1 = fault-free).
	ID       string
	Scenario epa.Scenario
	// Violated lists the IDs of violated requirements, sorted.
	Violated []string
	// Risk is the qualitative scenario risk.
	Risk risk.ScenarioRisk
}

// IsHazardous reports whether any requirement is violated.
func (s ScenarioResult) IsHazardous() bool { return len(s.Violated) > 0 }

// Violates reports whether the given requirement is violated. Violated
// is sorted by construction (both analysis paths sort it), so this is a
// binary search — it sits inside every per-requirement loop over the
// scenario space (Summary, MinimalCuts, mitigation loss preparation).
func (s ScenarioResult) Violates(reqID string) bool {
	i := sort.SearchStrings(s.Violated, reqID)
	return i < len(s.Violated) && s.Violated[i] == reqID
}

// Analysis is the outcome of exhaustive hazard identification.
type Analysis struct {
	Requirements []Requirement
	Scenarios    []ScenarioResult
	// Truncation is set when resource governance cut the analysis short.
	// The degradation policy keeps the answer interpretable: Scenarios
	// then holds every fully completed cardinality (partial cardinalities
	// are dropped) and the truncation records the skipped frontier.
	Truncation *budget.Truncation
	// SolverStats reports ASP-path solver effort (nil on the native path).
	SolverStats *solver.Stats
	// Sweep reports how the native scenario sweep executed (nil on the
	// ASP path). Duration is wall clock and therefore not deterministic;
	// everything else in the Analysis is.
	Sweep *SweepStats
	// Resume is set when the sweep restarted from a persisted checkpoint
	// — provenance for the report, not a change in the results: a resumed
	// sweep produces exactly the Analysis an uninterrupted run would.
	Resume *ResumeInfo
}

// ResumeInfo records that a sweep continued from a checkpoint.
type ResumeInfo struct {
	// FromRank is the stream rank the checkpoint certified complete;
	// ranks below it were restored through the result cache.
	FromRank int `json:"fromRank"`
}

// SweepStats describes the execution of one native scenario sweep.
type SweepStats struct {
	// Workers is the worker-pool size (1 = sequential).
	Workers int
	// Scenarios counts the scenario results kept in the analysis.
	Scenarios int
	// Duration is the sweep wall-clock time.
	Duration time.Duration
	// CacheHits / CacheMisses count persistent result-cache lookups
	// (both zero when the sweep ran without a cache).
	CacheHits, CacheMisses int64
	// Retries counts transient per-scenario failures recovered by the
	// retry-with-backoff path.
	Retries int64
	// Restored is the checkpoint frontier the sweep resumed from
	// (0 = fresh sweep).
	Restored int
	// Executed counts scenarios evaluated against a full EPA result —
	// an engine run or a cached state vector (0 on the sequential path,
	// which neither caches nor prunes).
	Executed int64
	// Pruned counts rows synthesized by dominance: the scenario had a
	// recorded violating subset for every requirement, so its outcome
	// was implied without an EPA run. Includes synthesized-result
	// records restored from the persistent cache.
	Pruned int64
	// OrbitHits counts rows replicated from a symmetry-orbit sibling
	// (an interchangeable-component permutation of an evaluated
	// scenario).
	OrbitHits int64
	// OrbitClasses is the number of refined interchangeable-component
	// classes the sweep used (0 = no symmetry or pruning off).
	OrbitClasses int
	// Reused counts rows answered by the delta re-assessment oracle
	// (SweepConfig.Reuse): the violated set was carried over from a
	// cached parent analysis without an EPA run.
	Reused int64
	// Shard labels the rank range this sweep covered, as
	// "index/count" ("" = the whole space).
	Shard string
}

// Throughput returns scenarios per second (0 for an instant sweep).
func (s *SweepStats) Throughput() float64 {
	if s == nil || s.Duration <= 0 {
		return 0
	}
	return float64(s.Scenarios) / s.Duration.Seconds()
}

// Analyze enumerates the scenario space (cardinality <= maxCard, negative
// = unbounded) and evaluates every requirement on every scenario with the
// native EPA engine, scoring scenario risk from the mutation likelihoods
// and requirement severities.
func Analyze(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement) (*Analysis, error) {
	return AnalyzeBudget(eng, muts, maxCard, reqs, nil)
}

// AnalyzeBudget is Analyze under resource governance. Scenarios stream in
// cardinality order and the budget is checked per scenario; when the
// deadline, a cancellation, or the scenario cap trips, the analysis falls
// back to the largest fully completed cardinality: results of the
// in-flight cardinality are dropped (they would silently bias the ranking
// toward lexicographically early candidates) and the skipped frontier is
// reported in Analysis.Truncation.
func AnalyzeBudget(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, bud *budget.Budget) (*Analysis, error) {
	if err := validateReqs(reqs); err != nil {
		return nil, err
	}
	start := time.Now()
	likelihoods := faults.LikelihoodIndex(muts)
	limits := bud.Limits()
	out := &Analysis{Requirements: reqs}

	// Observability: one span around the whole sweep, counters batched
	// after the loop — the per-scenario hot path is untouched.
	obsCtx, sweepSpan := obs.StartSpan(bud.Context(), "sweep")
	defer sweepSpan.End()
	reg := obs.RegistryFromContext(obsCtx)

	var trunc *budget.Truncation
	var runErr error
	processed := 0
	faults.EnumerateStream(muts, maxCard, func(sc epa.Scenario) bool {
		if limits.MaxScenarios > 0 && processed >= limits.MaxScenarios {
			trunc = &budget.Truncation{Stage: "hazard", Reason: budget.ReasonScenarios}
			trunc.Stamp(obsCtx)
			return false
		}
		if err := bud.Err("hazard"); err != nil {
			ex, _ := budget.Exhausted(err)
			trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
			trunc.Stamp(obsCtx)
			return false
		}
		res, err := eng.RunBudget(sc, bud)
		if err != nil {
			if ex, ok := budget.Exhausted(err); ok {
				trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
				trunc.Stamp(obsCtx)
				return false
			}
			runErr = err
			return false
		}
		// The stream never skips, so the 1-based scenario ID is the
		// stream position — the invariant the parallel sweep relies on.
		out.Scenarios = append(out.Scenarios, scoreResult(processed, sc, res, reqs, likelihoods))
		processed++
		return true
	})
	if runErr != nil {
		return nil, runErr
	}
	if trunc != nil {
		out.Truncation = trunc
		out.truncateToCompletedCardinality(muts, maxCard)
	}
	out.Sweep = &SweepStats{Workers: 1, Scenarios: len(out.Scenarios), Duration: time.Since(start)}
	publishSweep(reg, out.Sweep, processed)
	return out, nil
}

// publishSweep files one sweep's effort onto the metrics registry
// (no-op without a registry).
func publishSweep(reg *obs.Registry, sw *SweepStats, epaRuns int) {
	if reg == nil {
		return
	}
	reg.Counter("sweep.scenarios").Add(int64(sw.Scenarios))
	reg.Counter("epa.runs").Add(int64(epaRuns))
	reg.Gauge("sweep.workers").Set(int64(sw.Workers))
	reg.Histogram("sweep.duration_us").Observe(sw.Duration.Microseconds())
	if sw.Retries > 0 {
		reg.Counter("sweep.retries").Add(sw.Retries)
	}
	if sw.Restored > 0 {
		reg.Counter("sweep.restored").Add(int64(sw.Restored))
	}
	if sw.Executed > 0 {
		reg.Counter("sweep.executed").Add(sw.Executed)
	}
	if sw.Pruned > 0 {
		reg.Counter("sweep.pruned").Add(sw.Pruned)
	}
	if sw.OrbitHits > 0 {
		reg.Counter("sweep.orbit_hits").Add(sw.OrbitHits)
	}
	if sw.Reused > 0 {
		reg.Counter("sweep.reused").Add(sw.Reused)
	}
	if sw.OrbitClasses > 0 {
		reg.Gauge("sweep.orbit_classes").Set(int64(sw.OrbitClasses))
	}
}

// scoreResult evaluates every requirement on one EPA outcome and scores
// the scenario risk. seq is the 0-based enumeration position; the
// scenario ID is S<seq+1> (S1 = fault-free), identical for the
// sequential and parallel sweeps.
func scoreResult(seq int, sc epa.Scenario, res *epa.Result, reqs []Requirement, likelihoods map[epa.Activation]qual.Level) ScenarioResult {
	sr := ScenarioResult{
		ID:       fmt.Sprintf("S%d", seq+1),
		Scenario: sc,
	}
	var severities []qual.Level
	for _, r := range reqs {
		if Eval(r.Condition, sc, res) {
			sr.Violated = append(sr.Violated, r.ID)
			severities = append(severities, r.Severity)
		}
	}
	sort.Strings(sr.Violated)
	sr.Risk = risk.ScoreScenario(risk.ScenarioInput{
		ID:                 sr.ID,
		FaultLikelihoods:   scenarioLikelihoods(sc, likelihoods),
		ViolatedSeverities: severities,
	})
	return sr
}

// truncateToCompletedCardinality implements the graceful-degradation
// policy after an interruption: drop results of the cardinality that was
// in flight (it is only partially covered) and describe the kept frontier
// in the truncation detail.
func (a *Analysis) truncateToCompletedCardinality(muts []faults.Mutation, maxCard int) {
	n := len(muts)
	if maxCard < 0 || maxCard > n {
		maxCard = n
	}
	kept := len(a.Scenarios)
	completed := -1
	if kept > 0 {
		// The stream is cardinality-ordered, so cardinality c is complete
		// iff all C(n, c) scenarios of that size were produced.
		count := 0
		last := 0
		for _, s := range a.Scenarios {
			if len(s.Scenario) != last {
				count = 0
				last = len(s.Scenario)
			}
			count++
		}
		completed = last
		if count < binomialSat(n, last) {
			completed = last - 1
			for kept > 0 && len(a.Scenarios[kept-1].Scenario) > completed {
				kept--
			}
			a.Scenarios = a.Scenarios[:kept]
		}
	}
	total, totalOK := faults.SpaceSize(n, maxCard)
	var detail string
	if completed < 0 {
		detail = "no cardinality completed"
	} else {
		detail = fmt.Sprintf("completed cardinality <= %d of %d", completed, maxCard)
	}
	if totalOK {
		detail += fmt.Sprintf("; analyzed %d of %d scenarios", kept, total)
	} else {
		detail += fmt.Sprintf("; analyzed %d scenarios of an overflowing space", kept)
	}
	a.Truncation.Detail = detail
}

// binomialSat computes C(n, k), saturating at math.MaxInt/2 (enough for
// completion checks: a partial prefix is always strictly smaller).
func binomialSat(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		if c > math.MaxInt/64 {
			return math.MaxInt / 2
		}
		c = c * (n - i) / (i + 1)
	}
	return c
}

func validateReqs(reqs []Requirement) error {
	seen := map[string]bool{}
	for _, r := range reqs {
		if r.ID == "" {
			return fmt.Errorf("hazard: requirement with empty ID")
		}
		if seen[r.ID] {
			return fmt.Errorf("hazard: duplicate requirement %q", r.ID)
		}
		seen[r.ID] = true
		if r.Condition == nil {
			return fmt.Errorf("hazard: requirement %q has no condition", r.ID)
		}
	}
	return nil
}

func scenarioLikelihoods(sc epa.Scenario, idx map[epa.Activation]qual.Level) []qual.Level {
	out := make([]qual.Level, 0, len(sc))
	for _, a := range sc {
		if l, ok := idx[a]; ok {
			out = append(out, l)
		} else {
			out = append(out, faults.DefaultLikelihood)
		}
	}
	return out
}

// AnalyzeASP performs the same exhaustive analysis through the embedded
// formal method: the EPA encoding plus the scenario-space choice plus the
// compiled violation rules, solved for all answer sets. Scenario IDs are
// assigned after sorting models into the native enumeration order so the
// two paths are directly comparable.
func AnalyzeASP(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement) (*Analysis, error) {
	return AnalyzeASPBudget(eng, muts, maxCard, reqs, nil)
}

// AnalyzeASPBudget is AnalyzeASP under resource governance. The budget
// caps grounding (aborting with *budget.ExhaustedError — callers fall
// back to the native engine) and the answer-set search (returning the
// answer sets found so far with Analysis.Truncation set). MaxScenarios
// bounds the number of enumerated answer sets.
//
// The analysis is multi-shot: the encoding is grounded once with an
// unbounded fault choice, then one persistent solver session sweeps the
// cardinality levels 0..maxCard, each level selected by exactly-k count
// assumptions on the active/2 predicate. Assumptions only filter stable
// models, so the union over the sweep equals the single bounded solve it
// replaces, while learned clauses and branching heuristics carry from one
// cardinality to the next and an interruption keeps a clean
// cardinality-ordered prefix.
func AnalyzeASPBudget(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, bud *budget.Budget) (*Analysis, error) {
	return AnalyzeASPOpts(eng, muts, maxCard, reqs, ASPOptions{Budget: bud})
}

// ASPOptions parameterizes the ASP analysis beyond the budget.
type ASPOptions struct {
	// Budget governs grounding and search effort (nil = unlimited).
	Budget *budget.Budget
	// SolverWorkers > 1 races that many diversified solver engines per
	// query (portfolio search with clause sharing); <= 1 is the exact
	// single-engine solver. Extra engines beyond the first draw launch
	// slots from the budget's worker-pool governor when one is present.
	SolverWorkers int
	// Deterministic forces single-engine search regardless of
	// SolverWorkers, for byte-identical reports across runs.
	Deterministic bool
	// Session, when non-nil, is a live multi-shot session already
	// grounded for exactly this engine + mutation set + requirement
	// encoding (an artifact-cache holdover — the caller must guarantee
	// the match, which the cache key's model and config hashes do). The
	// analysis then skips encoding and grounding entirely and queries
	// the session directly. Ownership stays with the caller unless
	// KeepSession also fires.
	Session *solver.Session
	// KeepSession, when non-nil, receives the session the analysis used
	// (freshly grounded or passed in) on success, instead of the session
	// being closed on return — the artifact cache retains it, learning
	// and all, for the next warm query. On error a session the analysis
	// created is closed as usual.
	KeepSession func(*solver.Session)
}

// AnalyzeASPOpts is AnalyzeASPBudget with solver portfolio control: the
// multi-shot session races SolverWorkers diversified engines per
// cardinality query. The answer-set union is identical for any worker
// count; only wall-clock time changes.
func AnalyzeASPOpts(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, o ASPOptions) (*Analysis, error) {
	bud := o.Budget
	if err := validateReqs(reqs); err != nil {
		return nil, err
	}
	start := time.Now()
	// One span wraps the whole multi-shot analysis; the session attaches
	// its grounding and per-query sub-spans through the derived budget.
	obsCtx, aspSpan := obs.StartSpan(bud.Context(), "asp")
	defer aspSpan.End()
	abud := bud
	if aspSpan != nil {
		abud = budget.New(obsCtx, bud.Limits())
	}
	sess := o.Session
	if sess == nil {
		prog, err := eng.EncodeASP()
		if err != nil {
			return nil, err
		}
		faults.EncodeChoice(prog, muts, -1)
		for _, r := range reqs {
			if err := EncodeViolation(prog, r.ID, r.Condition); err != nil {
				return nil, err
			}
		}
		sess, err = solver.NewSession(prog, solver.Options{
			Budget:        abud,
			Workers:       o.SolverWorkers,
			Deterministic: o.Deterministic,
		})
		if err != nil {
			return nil, err
		}
	}
	// Session lifetime: on success KeepSession (when set) takes
	// ownership — the session outlives this analysis, warm for the next
	// query stream. Otherwise a session this analysis grounded is closed
	// here, and a caller-provided one is left alone.
	kept := false
	defer func() {
		if !kept && o.Session == nil {
			sess.Close()
		}
	}()

	kmax := maxCard
	if kmax < 0 || kmax > len(muts) {
		kmax = len(muts)
	}
	maxScen := bud.Limits().MaxScenarios
	var models []solver.Model
	var trunc *budget.Truncation
	for k := 0; k <= kmax; k++ {
		opts := solver.Options{Budget: abud}
		if maxScen > 0 {
			opts.MaxModels = maxScen - len(models)
		}
		res, err := sess.SolveAssuming([]solver.Assumption{
			solver.AssumeCountGE("active", k),
			solver.AssumeCountLT("active", k+1),
		}, opts)
		if err != nil {
			return nil, err
		}
		models = append(models, res.Models...)
		if res.Interrupted {
			trunc = &budget.Truncation{
				Stage: "hazard-asp", Reason: res.InterruptReason,
				Detail: fmt.Sprintf("%d answer sets enumerated before interruption", len(models)),
			}
			trunc.Stamp(obsCtx)
			break
		}
		if maxScen > 0 && len(models) >= maxScen {
			trunc = &budget.Truncation{
				Stage: "hazard-asp", Reason: budget.ReasonScenarios,
				Detail: fmt.Sprintf("first %d answer sets kept", len(models)),
			}
			trunc.Stamp(obsCtx)
			break
		}
	}

	likelihoods := faults.LikelihoodIndex(muts)
	sevByID := map[string]qual.Level{}
	for _, r := range reqs {
		sevByID[r.ID] = r.Severity
	}

	results := make([]ScenarioResult, 0, len(models))
	for _, m := range models {
		sc := scenarioFromModel(&m, muts)
		sr := ScenarioResult{Scenario: sc}
		for _, r := range reqs {
			if m.Contains(logic.A("violated", logic.Sym(r.ID)).Key()) {
				sr.Violated = append(sr.Violated, r.ID)
			}
		}
		sort.Strings(sr.Violated)
		results = append(results, sr)
	}
	// Deterministic order: by cardinality, then by scenario key.
	sort.Slice(results, func(i, j int) bool {
		if len(results[i].Scenario) != len(results[j].Scenario) {
			return len(results[i].Scenario) < len(results[j].Scenario)
		}
		return results[i].Scenario.Key() < results[j].Scenario.Key()
	})
	for i := range results {
		results[i].ID = fmt.Sprintf("S%d", i+1)
		var severities []qual.Level
		for _, v := range results[i].Violated {
			severities = append(severities, sevByID[v])
		}
		results[i].Risk = risk.ScoreScenario(risk.ScenarioInput{
			ID:                 results[i].ID,
			FaultLikelihoods:   scenarioLikelihoods(results[i].Scenario, likelihoods),
			ViolatedSeverities: severities,
		})
	}
	out := &Analysis{Requirements: reqs, Scenarios: results, Truncation: trunc}
	st := sess.Stats()
	st.Duration = time.Since(start)
	out.SolverStats = &st
	solver.PublishStats(obs.RegistryFromContext(obsCtx), &st)
	if o.KeepSession != nil {
		kept = true
		o.KeepSession(sess)
	}
	return out, nil
}

func scenarioFromModel(m *solver.Model, muts []faults.Mutation) epa.Scenario {
	var sc epa.Scenario
	for _, mu := range muts {
		if m.Contains(epa.ActiveAtom(mu.Component, mu.Fault).Key()) {
			sc = append(sc, mu.Activation)
		}
	}
	return sc
}

// Hazards returns the hazardous scenarios (at least one violation).
func (a *Analysis) Hazards() []ScenarioResult {
	var out []ScenarioResult
	for _, s := range a.Scenarios {
		if s.IsHazardous() {
			out = append(out, s)
		}
	}
	return out
}

// ByScenario finds the result for a scenario key.
func (a *Analysis) ByScenario(sc epa.Scenario) (ScenarioResult, bool) {
	key := sc.Key()
	for _, s := range a.Scenarios {
		if s.Scenario.Key() == key {
			return s, true
		}
	}
	return ScenarioResult{}, false
}

// Ranked returns the scenarios ordered by risk (paper §IV: prioritize by
// severity and potential impact).
func (a *Analysis) Ranked() []ScenarioResult {
	risks := make([]risk.ScenarioRisk, len(a.Scenarios))
	byID := make(map[string]ScenarioResult, len(a.Scenarios))
	for i, s := range a.Scenarios {
		risks[i] = s.Risk
		byID[s.ID] = s
	}
	ranked := risk.Rank(risks)
	out := make([]ScenarioResult, len(ranked))
	for i, r := range ranked {
		out[i] = byID[r.ID]
	}
	return out
}

// MinimalCuts returns, per requirement, the minimal hazardous scenarios:
// those violating the requirement such that no proper sub-scenario in the
// analysis also violates it (the qualitative analogue of FTA minimal cut
// sets, §III-A).
func (a *Analysis) MinimalCuts(reqID string) []ScenarioResult {
	var violating []ScenarioResult
	for _, s := range a.Scenarios {
		if s.Violates(reqID) {
			violating = append(violating, s)
		}
	}
	var out []ScenarioResult
	for _, s := range violating {
		minimal := true
		for _, other := range violating {
			if len(other.Scenario) < len(s.Scenario) && isSubScenario(other.Scenario, s.Scenario) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}

func isSubScenario(sub, super epa.Scenario) bool {
	for _, a := range sub {
		if !super.Has(a.Component, a.Fault) {
			return false
		}
	}
	return true
}

// Summary renders a compact textual overview.
func (a *Analysis) Summary() string {
	var sb strings.Builder
	hazards := a.Hazards()
	fmt.Fprintf(&sb, "%d scenarios analyzed, %d hazardous\n", len(a.Scenarios), len(hazards))
	for _, r := range a.Requirements {
		n := 0
		for _, s := range a.Scenarios {
			if s.Violates(r.ID) {
				n++
			}
		}
		fmt.Fprintf(&sb, "  %s violated in %d scenarios\n", r.ID, n)
	}
	return sb.String()
}
