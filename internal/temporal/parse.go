package temporal

import (
	"fmt"
	"strings"

	"cpsrisk/internal/logic"
)

// ParseFormula parses an LTLf formula:
//
//	G(state(tank,overflow) -> F alerted(operator))
//	!overflow U alarm
//	X p & WX q
//
// Grammar (loosest to tightest): "->" (right-assoc) < "|" < "&" <
// "U"/"R" (right-assoc) < unary ("!", "X", "WX", "F", "G") < atoms.
// Atomic propositions are ground logic atoms; "true"/"false" are
// constants. The unary operator names are reserved words.
func ParseFormula(src string) (Formula, error) {
	p := &fparser{src: src}
	p.skipWS()
	f, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("temporal: trailing input %q", p.src[p.pos:])
	}
	return f, nil
}

// MustParseFormula panics on error; for static requirement libraries.
func MustParseFormula(src string) Formula {
	f, err := ParseFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}

type fparser struct {
	src string
	pos int
}

func (p *fparser) skipWS() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *fparser) peek(tok string) bool {
	p.skipWS()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		return false
	}
	// Word tokens must not swallow identifier prefixes (e.g. "U" in
	// "Until" or "G" in "Gate" — but our props are lowercase; operators are
	// uppercase or symbols. Still guard against identifier continuation).
	if isWordTok(tok) {
		end := p.pos + len(tok)
		if end < len(p.src) && isIdentChar(p.src[end]) {
			return false
		}
	}
	return true
}

func isWordTok(tok string) bool {
	c := tok[0]
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z'
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (p *fparser) accept(tok string) bool {
	if p.peek(tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *fparser) parseImplies() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept("->") {
		r, err := p.parseImplies() // right associative
		if err != nil {
			return nil, err
		}
		return ImpliesF{L: l, R: r}, nil
	}
	return l, nil
}

func (p *fparser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("|") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = OrF{L: l, R: r}
	}
	return l, nil
}

func (p *fparser) parseAnd() (Formula, error) {
	l, err := p.parseUntil()
	if err != nil {
		return nil, err
	}
	for p.accept("&") {
		r, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		l = AndF{L: l, R: r}
	}
	return l, nil
}

func (p *fparser) parseUntil() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("U"):
		r, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		return UntilF{L: l, R: r}, nil
	case p.accept("R"):
		r, err := p.parseUntil()
		if err != nil {
			return nil, err
		}
		return ReleaseF{L: l, R: r}, nil
	}
	return l, nil
}

func (p *fparser) parseUnary() (Formula, error) {
	switch {
	case p.accept("!"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NotF{Sub: f}, nil
	case p.accept("WX"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return WeakNextF{Sub: f}, nil
	case p.accept("X"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NextF{Sub: f}, nil
	case p.accept("F"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return FinallyF{Sub: f}, nil
	case p.accept("G"):
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return GloballyF{Sub: f}, nil
	}
	return p.parsePrimary()
}

func (p *fparser) parsePrimary() (Formula, error) {
	p.skipWS()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("temporal: unexpected end of formula")
	}
	if p.accept("(") {
		f, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if !p.accept(")") {
			return nil, fmt.Errorf("temporal: missing ) at offset %d", p.pos)
		}
		return f, nil
	}
	if p.accept("true") {
		return TrueF{}, nil
	}
	if p.accept("false") {
		return FalseF{}, nil
	}
	// Atomic proposition: identifier with optional balanced-paren argument
	// list, delegated to the logic parser.
	start := p.pos
	c := p.src[p.pos]
	if !(c == '_' || c >= 'a' && c <= 'z') {
		return nil, fmt.Errorf("temporal: unexpected %q at offset %d", c, p.pos)
	}
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		depth := 0
		for p.pos < len(p.src) {
			switch p.src[p.pos] {
			case '(':
				depth++
			case ')':
				depth--
			}
			p.pos++
			if depth == 0 {
				break
			}
		}
		if depth != 0 {
			return nil, fmt.Errorf("temporal: unbalanced parentheses in proposition")
		}
	}
	text := p.src[start:p.pos]
	prog, err := logic.Parse(text + ".")
	if err != nil {
		return nil, fmt.Errorf("temporal: invalid proposition %q: %w", text, err)
	}
	atom := *prog.Rules[0].Head
	if !atom.Ground() {
		return nil, fmt.Errorf("temporal: proposition %q must be ground", text)
	}
	return Prop{Atom: atom}, nil
}
